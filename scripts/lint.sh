#!/usr/bin/env bash
# lint.sh — run the sunmap invariant analyzer suite over the repository.
#
# Usage:
#   scripts/lint.sh                 # whole repo, all analyzers
#   scripts/lint.sh ./internal/...  # restrict the package patterns
#   scripts/lint.sh -only hotpath   # restrict the analyzers (see -list)
#
# Exit status follows go vet's convention: 0 clean, 1 driver error,
# 2 diagnostics reported. The tool is built to a temp dir and exec'd
# (not `go run`, which collapses every nonzero exit to 1). Extra
# arguments are passed to sunmap-lint verbatim; with none, the tool
# defaults to ./... .
set -euo pipefail
cd "$(dirname "$0")/.."
tool="$(mktemp -d)/sunmap-lint"
trap 'rm -rf "$(dirname "$tool")"' EXIT
go build -o "$tool" ./cmd/sunmap-lint
"$tool" "$@"
