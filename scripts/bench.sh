#!/usr/bin/env sh
# scripts/bench.sh — run the tracked micro-benchmarks and emit a
# machine-readable snapshot (BENCH_<PR>.json) so the performance
# trajectory is comparable across PRs.
#
# Usage:
#   scripts/bench.sh [output.json] [benchtime]
#
# Defaults: output BENCH_5.json in the repo root, -benchtime 50x (fixed
# iteration counts keep runtimes bounded and comparable on CI-class
# machines; raise it locally for tighter numbers).
set -eu

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_5.json}"
BENCHTIME="${2:-50x}"

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# The tracked set: the mapping/routing hot-path benches, the fault
# subsystem's survivability sweep, plus the whole-pipeline selection
# sweep the acceptance criteria quote.
go test -run '^$' -bench 'BenchmarkMap$|BenchmarkRouteViaMapper$' \
    -benchmem -benchtime "$BENCHTIME" ./internal/mapping | tee -a "$RAW"
go test -run '^$' -bench 'BenchmarkRoute$' \
    -benchmem -benchtime "$BENCHTIME" ./internal/route | tee -a "$RAW"
go test -run '^$' -bench 'BenchmarkFaultSweep$' \
    -benchmem -benchtime "$BENCHTIME" ./internal/fault | tee -a "$RAW"
go test -run '^$' -bench 'BenchmarkSelect$' \
    -benchmem -benchtime 5x . | tee -a "$RAW"

# Fold `pkg:` headers and `BenchmarkX-N iter value unit [value unit]...`
# rows into JSON.
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN { print "{"; printf "  \"generated\": \"%s\",\n", date; print "  \"results\": [" }
/^pkg: / { pkg = $2 }
/^cpu: / { sub(/^cpu: /, ""); if (cpu == "") cpu = $0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    if (n++) printf ",\n"
    printf "    {\"pkg\": \"%s\", \"name\": \"%s\", \"iterations\": %s", pkg, name, $2
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9%\/-]/, "_", unit)
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
}
END { print "\n  ],"; printf "  \"cpu\": \"%s\"\n}\n", cpu }
' "$RAW" >"$OUT"

echo "wrote $OUT"
