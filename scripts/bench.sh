#!/usr/bin/env sh
# scripts/bench.sh — run the tracked micro-benchmarks and emit a
# machine-readable snapshot (BENCH_<PR>.json) so the performance
# trajectory is comparable across PRs.
#
# Usage:
#   scripts/bench.sh [output.json] [benchtime]
#
# Defaults: output BENCH_9.json in the repo root, -benchtime 0.5s for
# the micro-benchmarks. Time-based benchtime matters for the ns-scale
# rows: at a fixed 50x a single scheduler preemption doubles the
# number, and snapshot diffs (scripts/bench_compare.sh) drown in noise.
# The whole-pipeline benches below pin small fixed counts instead to
# bound runtime.
set -eu

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_9.json}"
BENCHTIME="${2:-0.5s}"

# The snapshot records GOMAXPROCS so speedup numbers are interpretable:
# a 1.0x "speedup" on a 1-core box is expected, not a regression. On a
# single-core box the parallel rows measure nothing at all, so the
# snapshot says so machine-readably ("parallel_valid": false) instead of
# publishing a 1.0x speedup that reads like an engine regression.
MAXPROCS="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)}"
if [ "$MAXPROCS" -ge 2 ]; then
    PARALLEL_VALID=true
else
    PARALLEL_VALID=false
    cat >&2 <<'EOF'
================================================================
WARNING: single-core box — parallel benchmark rows are INVALID.
Speedup/workers/limiter-wait numbers below measure scheduling on
one core, not the engine's scaling. The snapshot will carry
"parallel_valid": false; do not compare its parallel rows.
================================================================
EOF
fi

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# The tracked set: the mapping/routing hot-path benches, the fault
# subsystem's survivability sweep, the annealing topology search
# (whole-run evals/sec and single candidate-evaluation latency), plus
# the whole-pipeline selection sweep the acceptance criteria quote.
go test -run '^$' -bench 'BenchmarkMap$|BenchmarkRouteViaMapper$' \
    -benchmem -benchtime "$BENCHTIME" ./internal/mapping | tee -a "$RAW"
go test -run '^$' -bench 'BenchmarkRoute$' \
    -benchmem -benchtime "$BENCHTIME" ./internal/route | tee -a "$RAW"
go test -run '^$' -bench 'BenchmarkFaultSweep$' \
    -benchmem -benchtime "$BENCHTIME" ./internal/fault | tee -a "$RAW"
go test -run '^$' -bench 'BenchmarkSearch$' \
    -benchmem -benchtime 5x ./internal/search | tee -a "$RAW"
go test -run '^$' -bench 'BenchmarkSearchEval$' \
    -benchmem -benchtime "$BENCHTIME" ./internal/search | tee -a "$RAW"
# Job-store durability: submit throughput (fsync'd journal appends) and
# journal replay rate on reopen.
go test -run '^$' -bench 'BenchmarkSubmitReplay$' \
    -benchmem -benchtime "$BENCHTIME" ./internal/jobs | tee -a "$RAW"
# The selection sweep runs at 1 and 4 procs when the box has the cores,
# so the snapshot captures the scaling claim, not just one point.
if [ "$MAXPROCS" -ge 4 ]; then
    SELECT_CPU="-cpu 1,4"
else
    SELECT_CPU=""
fi
# shellcheck disable=SC2086  # SELECT_CPU is intentionally word-split
go test -run '^$' -bench 'BenchmarkSelect$' \
    -benchmem -benchtime 5x $SELECT_CPU . | tee -a "$RAW"
# Observability overhead: the same cold selection sweep untraced vs
# traced. The parallel Select rows above already carry the limiter-wait
# and span-duration summary fields (blocked-acquires, limiter-wait-ms,
# evaluate-span-ms) reported by the bench itself.
go test -run '^$' -bench 'BenchmarkSelectOverhead$' \
    -benchmem -benchtime 5x . | tee -a "$RAW"

# Fold `pkg:` headers and `BenchmarkX-N iter value unit [value unit]...`
# rows into JSON. The `-N` name suffix is Go's GOMAXPROCS marker (absent
# at 1): it becomes the row's "gomaxprocs" field instead of polluting
# the name.
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v hostprocs="$MAXPROCS" -v parvalid="$PARALLEL_VALID" '
BEGIN { print "{"; printf "  \"generated\": \"%s\",\n", date; print "  \"results\": [" }
/^pkg: / { pkg = $2 }
/^cpu: / { sub(/^cpu: /, ""); if (cpu == "") cpu = $0 }
/^Benchmark/ {
    name = $1; procs = 1
    if (match(name, /-[0-9]+$/)) {
        procs = substr(name, RSTART + 1)
        name = substr(name, 1, RSTART - 1)
    }
    if (n++) printf ",\n"
    printf "    {\"pkg\": \"%s\", \"name\": \"%s\", \"gomaxprocs\": %s, \"iterations\": %s", pkg, name, procs, $2
    for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9%\/-]/, "_", unit)
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
}
END { print "\n  ],"; printf "  \"cpu\": \"%s\",\n  \"gomaxprocs\": %s,\n  \"parallel_valid\": %s\n}\n", cpu, hostprocs, parvalid }
' "$RAW" >"$OUT"

echo "wrote $OUT"
