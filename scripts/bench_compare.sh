#!/usr/bin/env sh
# scripts/bench_compare.sh — diff two BENCH_*.json snapshots and fail on
# ns/op regressions, so the performance trajectory the snapshots record
# is a gate and not just a log.
#
# Usage:
#   scripts/bench_compare.sh [old.json new.json]
#
# With no arguments the two newest snapshots in the repo root (by PR
# number in the filename) are compared. Rows are matched by
# (pkg, name, gomaxprocs); a matched row whose ns/op grew by more than
# the threshold (BENCH_REGRESSION_PCT, default 20) fails the run.
# Parallel rows are skipped when either snapshot says
# "parallel_valid": false — a single-core box's parallel numbers gate
# nothing. Exit codes: 0 ok, 1 regression, 2 usage/missing snapshots.
set -eu

cd "$(dirname "$0")/.."
THRESHOLD="${BENCH_REGRESSION_PCT:-20}"

if [ $# -eq 2 ]; then
    OLD=$1
    NEW=$2
elif [ $# -eq 0 ]; then
    # shellcheck disable=SC2046  # filenames are repo-controlled, no spaces
    set -- $(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n)
    if [ $# -lt 2 ]; then
        echo "bench_compare: need at least two BENCH_*.json snapshots" >&2
        exit 2
    fi
    while [ $# -gt 2 ]; do shift; done
    OLD=$1
    NEW=$2
else
    echo "usage: scripts/bench_compare.sh [old.json new.json]" >&2
    exit 2
fi
[ -f "$OLD" ] && [ -f "$NEW" ] || { echo "bench_compare: missing $OLD or $NEW" >&2; exit 2; }

echo "comparing $OLD (base) -> $NEW (new), threshold ${THRESHOLD}%"

awk -v threshold="$THRESHOLD" -v oldf="$OLD" -v newf="$NEW" '
# Pull a numeric field out of one JSON result row.
function num(line, key,    v) {
    if (!match(line, "\"" key "\": [0-9.e+-]+")) return ""
    v = substr(line, RSTART, RLENGTH)
    sub(/^.*: /, "", v)
    return v
}
# Pull a quoted string field out of one JSON result row.
function str(line, key,    v) {
    if (!match(line, "\"" key "\": \"[^\"]*\"")) return ""
    v = substr(line, RSTART, RLENGTH)
    sub(/^[^:]*: "/, "", v)
    sub(/"$/, "", v)
    return v
}
/"parallel_valid": false/ { parinvalid = 1 }
/"name":/ {
    ns = num($0, "ns/op")
    if (ns == "") next
    key = str($0, "pkg") "|" str($0, "name") "|" num($0, "gomaxprocs")
    if (FILENAME == oldf) { old[key] = ns } else { new[key] = ns; order[++n] = key }
}
END {
    if (parinvalid) print "note: a snapshot is marked parallel_valid=false; parallel rows are not gated"
    worst = 0
    for (i = 1; i <= n; i++) {
        key = order[i]
        if (!(key in old)) continue
        if (parinvalid && (key ~ /parallel/ || key ~ /\|[0-9][0-9]*$/ && key !~ /\|1$/)) continue
        pct = (new[key] - old[key]) * 100 / old[key]
        dir = "ok"
        if (pct > threshold) { dir = "REGRESSION"; failed++ }
        if (pct > worst) worst = pct
        printf "%-70s %14.0f -> %14.0f ns/op  %+7.1f%%  %s\n", key, old[key], new[key], pct, dir
    }
    if (n == 0) { print "bench_compare: no comparable rows"; exit 2 }
    if (failed) { printf "FAIL: %d row(s) regressed more than %d%%\n", failed, threshold; exit 1 }
    printf "ok: no row regressed more than %d%% (worst %+.1f%%)\n", threshold, worst
}
' "$OLD" "$NEW"
