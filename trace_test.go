package sunmap_test

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"sunmap"
)

// TestTracedReportsByteIdentical is the tracing acceptance criterion:
// attaching a Trace changes nothing observable — the marshaled reports
// of the mixed batch workload stay byte-identical between sequential and
// parallel execution with tracing enabled, exactly as they do without.
func TestTracedReportsByteIdentical(t *testing.T) {
	var blobs [][]byte
	var traces []*sunmap.Trace
	for _, par := range []int{1, 4} {
		tr := sunmap.NewTrace()
		sess, err := sunmap.NewSession(sunmap.WithParallelism(par), sunmap.WithTrace(tr))
		if err != nil {
			t.Fatal(err)
		}
		reports, err := sess.Batch(context.Background(), batchRequests())
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		blob, err := json.Marshal(reports)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
		traces = append(traces, tr)
	}
	if string(blobs[0]) != string(blobs[1]) {
		t.Errorf("traced reports differ between parallelism 1 and 4:\nseq: %s\npar: %s", blobs[0], blobs[1])
	}

	// Both traces saw real activity. Span counts may legitimately differ
	// across parallelism (racing cache misses, limiter waits) — only the
	// reports are pinned byte-identical.
	for i, tr := range traces {
		snap := tr.Snapshot()
		if len(snap.Stages) == 0 {
			t.Fatalf("trace %d recorded no stages", i)
		}
		if snap.CacheMisses == 0 {
			t.Errorf("trace %d saw no evaluation-cache misses on a cold session", i)
		}
	}
}

// TestTraceStagesAndRendering checks the trace sees the expected stages
// for a known workload and that WriteText renders every recorded row.
func TestTraceStagesAndRendering(t *testing.T) {
	tr := sunmap.NewTrace()
	sess, err := sunmap.NewSession(sunmap.WithParallelism(2), sunmap.WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Select(context.Background(), sunmap.SelectRequest{
		App:     sunmap.AppSpec{Name: "vopd"},
		Mapping: sunmap.MapSpec{Routing: "MP", Objective: "delay", CapacityMBps: 500},
	}); err != nil {
		t.Fatal(err)
	}
	snap := tr.Snapshot()
	got := make(map[string]uint64)
	for _, st := range snap.Stages {
		got[st.Stage] = st.Count
	}
	if got["select"] != 1 {
		t.Errorf("select span count = %d, want 1", got["select"])
	}
	if got["evaluate"] == 0 {
		t.Error("no evaluate spans recorded under select")
	}
	if snap.CacheMisses == 0 {
		t.Error("no cache misses recorded on a cold select")
	}

	var sb strings.Builder
	tr.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"stage", "select", "evaluate", "cache hits/misses"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

// TestTracePerCallContext binds a trace to one call tree via
// Trace.Context on an untraced session — the per-request form.
func TestTracePerCallContext(t *testing.T) {
	sess, err := sunmap.NewSession(sunmap.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	tr := sunmap.NewTrace()
	if _, err := sess.Map(tr.Context(context.Background()), sunmap.MapRequest{
		App: sunmap.AppSpec{Name: "dsp"}, Topology: "mesh-2x3",
		Mapping: sunmap.MapSpec{CapacityMBps: 1000},
	}); err != nil {
		t.Fatal(err)
	}
	snap := tr.Snapshot()
	found := false
	for _, st := range snap.Stages {
		if st.Stage == "map" && st.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("context-bound trace missed the map span: %+v", snap.Stages)
	}

	// An untraced call on the same session records nothing new.
	before := len(tr.Snapshot().Stages)
	if _, err := sess.Map(context.Background(), sunmap.MapRequest{
		App: sunmap.AppSpec{Name: "dsp"}, Topology: "mesh-3x3",
		Mapping: sunmap.MapSpec{CapacityMBps: 1000},
	}); err != nil {
		t.Fatal(err)
	}
	if after := len(tr.Snapshot().Stages); after != before {
		t.Errorf("untraced call leaked into the trace: %d stages -> %d", before, after)
	}
}

// TestTraceNilSafe pins the disabled path: a nil *Trace is inert
// everywhere it can be passed.
func TestTraceNilSafe(t *testing.T) {
	var tr *sunmap.Trace
	if snap := tr.Snapshot(); len(snap.Stages) != 0 {
		t.Error("nil trace has stages")
	}
	ctx := context.Background()
	if tr.Context(ctx) != ctx {
		t.Error("nil trace rebound the context")
	}
	var sb strings.Builder
	tr.WriteText(&sb)
	if !strings.Contains(sb.String(), "stage") {
		t.Error("nil trace WriteText wrote no header")
	}
	sess, err := sunmap.NewSession(sunmap.WithTrace(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Map(ctx, sunmap.MapRequest{
		App: sunmap.AppSpec{Name: "dsp"}, Topology: "mesh-2x3",
		Mapping: sunmap.MapSpec{CapacityMBps: 1000},
	}); err != nil {
		t.Fatal(err)
	}
}
