package sunmap_test

// Cross-module integration tests: full SUNMAP flows on synthetic
// applications across the whole topology library, checking the invariants
// that individual package tests cannot see end to end.

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"sunmap"
	"sunmap/internal/apps"
	"sunmap/internal/mapping"
	"sunmap/internal/route"
	"sunmap/internal/sim"
	"sunmap/internal/topology"
	"sunmap/internal/traffic"
)

// TestFullFlowSyntheticApps runs selection end to end on random apps of
// several sizes and validates structural invariants of every candidate.
func TestFullFlowSyntheticApps(t *testing.T) {
	for _, n := range []int{4, 7, 12} {
		n := n
		t.Run(fmt.Sprintf("cores=%d", n), func(t *testing.T) {
			app := apps.Synthetic(n, 0.2, 450, int64(100+n))
			sel, err := sunmap.Select(sunmap.SelectConfig{
				App: app,
				Mapping: sunmap.MapOptions{
					Routing:      sunmap.SplitMin,
					Objective:    sunmap.MinPower,
					CapacityMBps: 500,
				},
				EscalateRouting: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range sel.Candidates {
				if c.Result == nil {
					continue
				}
				r := c.Result
				// Mapping is injective onto valid terminals.
				seen := make(map[int]bool)
				for _, term := range r.Assign {
					if term < 0 || term >= r.Topology.NumTerminals() || seen[term] {
						t.Fatalf("%s: invalid assignment %v", r.Topology.Name(), r.Assign)
					}
					seen[term] = true
				}
				// Conservation: routed traffic equals the app total.
				if math.Abs(r.Route.TotalMBps-app.TotalBandwidthMBps()) > 1e-6 {
					t.Errorf("%s: routed %g MB/s, app has %g",
						r.Topology.Name(), r.Route.TotalMBps, app.TotalBandwidthMBps())
				}
				// Metrics are physical.
				if r.AvgHops < 1 || r.DesignAreaMM2 <= 0 || r.PowerMW <= 0 {
					t.Errorf("%s: non-physical metrics hops=%g area=%g power=%g",
						r.Topology.Name(), r.AvgHops, r.DesignAreaMM2, r.PowerMW)
				}
				// Feasibility flag consistent with the measured max load.
				if r.BandwidthOK != (r.Route.MaxLinkLoad <= 500+1e-6) {
					t.Errorf("%s: BandwidthOK=%v but max load %g",
						r.Topology.Name(), r.BandwidthOK, r.Route.MaxLinkLoad)
				}
			}
		})
	}
}

// TestMappedDesignSimulates closes the loop: every feasible VOPD candidate
// must be simulable with trace traffic derived from its own mapping, and
// the simulator must conserve packets (delivered + unfinished = created).
func TestMappedDesignSimulates(t *testing.T) {
	app := apps.VOPD()
	sel, err := sunmap.Select(sunmap.SelectConfig{
		App: app,
		Mapping: sunmap.MapOptions{
			Routing:      sunmap.MinPath,
			Objective:    sunmap.MinDelay,
			CapacityMBps: 500,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tested := 0
	for _, c := range sel.Candidates {
		if c.Result == nil || !c.Feasible() || tested >= 4 {
			continue
		}
		r := c.Result
		rt, err := sim.BuildRoutesFromResult(r.Topology, r.Assign, r.Route)
		if err != nil {
			t.Fatalf("%s: %v", r.Topology.Name(), err)
		}
		tr, err := traffic.NewTrace(app, r.Assign)
		if err != nil {
			t.Fatalf("%s: %v", r.Topology.Name(), err)
		}
		st, err := sim.RunContext(context.Background(), sim.Config{
			Topo:            r.Topology,
			Routes:          rt,
			Pattern:         tr,
			SourceShare:     tr.SourceShare(),
			ActiveTerminals: r.Assign,
			InjectionRate:   0.1,
			Seed:            5,
			WarmupCycles:    300,
			MeasureCycles:   1000,
			DrainCycles:     3000,
		})
		if err != nil {
			t.Fatalf("%s: %v", r.Topology.Name(), err)
		}
		if st.MeasuredPackets == 0 {
			t.Errorf("%s: no packets delivered", r.Topology.Name())
		}
		if st.UnfinishedPackets < 0 {
			t.Errorf("%s: negative unfinished count %d", r.Topology.Name(), st.UnfinishedPackets)
		}
		// At 10% offered load a feasible mapping must not saturate.
		if st.Saturated {
			t.Errorf("%s: saturated at 10%% load", r.Topology.Name())
		}
		tested++
	}
	if tested == 0 {
		t.Fatal("no candidates simulated")
	}
}

// TestGenerateForEveryFamily exercises Phase 3 against one mapping of each
// topology family, including the extras.
func TestGenerateForEveryFamily(t *testing.T) {
	app := apps.Synthetic(8, 0.25, 300, 77)
	lib, err := sunmap.Library(8, sunmap.LibraryOptions{IncludeExtras: true})
	if err != nil {
		t.Fatal(err)
	}
	families := make(map[topology.Kind]bool)
	for _, topo := range lib {
		if families[topo.Kind()] {
			continue
		}
		families[topo.Kind()] = true
		res, err := sunmap.Map(app, topo, sunmap.MapOptions{
			Routing:      sunmap.MinPath,
			CapacityMBps: 0,
		})
		if err != nil {
			t.Fatalf("%s: %v", topo.Name(), err)
		}
		gen, err := sunmap.Generate(app, res, sunmap.Tech100nm())
		if err != nil {
			t.Fatalf("%s: %v", topo.Name(), err)
		}
		top := gen.Files[gen.TopModule+".cpp"]
		if !strings.Contains(top, "sc_main") {
			t.Errorf("%s: top module missing sc_main", topo.Name())
		}
		// Every router instantiated.
		for r := 0; r < topo.NumRouters(); r++ {
			if !strings.Contains(top, fmt.Sprintf("sw%d(\"sw%d\")", r, r)) {
				t.Errorf("%s: switch %d missing from netlist", topo.Name(), r)
			}
		}
	}
	if len(families) < 7 {
		t.Errorf("only %d families exercised", len(families))
	}
}

// TestRoutingEscalationConsistency verifies that escalation never reports
// a routing function under which the winner would be infeasible.
func TestRoutingEscalationConsistency(t *testing.T) {
	app := apps.MPEG4()
	sel, err := sunmap.Select(sunmap.SelectConfig{
		App: app,
		Mapping: sunmap.MapOptions{
			Routing:      route.DimensionOrdered,
			Objective:    mapping.MinDelay,
			CapacityMBps: 500,
		},
		EscalateRouting: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best == nil {
		t.Fatal("escalation failed to find a feasible mapping")
	}
	// Re-map the winner under the reported routing function: it must
	// still be feasible (determinism check across the escalation loop).
	again, err := sunmap.Map(app, sel.Best.Topology, sunmap.MapOptions{
		Routing:      sel.RoutingUsed,
		Objective:    mapping.MinDelay,
		CapacityMBps: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !again.BandwidthOK {
		t.Errorf("winner %s infeasible when re-mapped under %v",
			sel.Best.Topology.Name(), sel.RoutingUsed)
	}
	if again.AvgHops != sel.Best.AvgHops {
		t.Errorf("non-deterministic re-map: hops %g vs %g", again.AvgHops, sel.Best.AvgHops)
	}
}
