package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"sunmap"
	"sunmap/serve"
	"sunmap/serve/client"
)

// newJobServer builds the full lifecycle-owning Server (durable job
// store, cache persistence) behind an httptest listener.
func newJobServer(t *testing.T, opts serve.Options, sessOpts ...sunmap.SessionOption) (*httptest.Server, *serve.Server, *sunmap.Session) {
	t.Helper()
	sess, err := sunmap.NewSession(sessOpts...)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := serve.NewServer(context.Background(), sess, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sv.Handler())
	t.Cleanup(func() {
		srv.Close()
		if err := sv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return srv, sv, sess
}

// TestServeJobLifecycle drives the async path end to end over the wire:
// submit returns 202 with a queued/running snapshot, Wait observes the
// terminal state, and the fetched result equals the same request run
// synchronously in-process.
func TestServeJobLifecycle(t *testing.T) {
	srv, _, _ := newJobServer(t, serve.Options{JobsDir: t.TempDir()})
	cl := client.New(srv.URL, client.Options{Seed: 1})
	ctx := context.Background()

	req := sunmap.Request{
		ID: "async-map",
		Op: sunmap.OpMap,
		Map: &sunmap.MapRequest{
			App: sunmap.AppSpec{Name: "dsp"}, Topology: "mesh-2x3",
			Mapping: sunmap.MapSpec{Routing: "MP", CapacityMBps: 1000},
		},
	}
	jb, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if jb.ID == "" || jb.State.Terminal() {
		t.Fatalf("submitted job snapshot: %+v", jb)
	}
	list, err := cl.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, j := range list {
		found = found || j.ID == jb.ID
	}
	if !found {
		t.Fatalf("job %s missing from list %+v", jb.ID, list)
	}

	fin, err := cl.Wait(ctx, jb.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "done" {
		t.Fatalf("job ended %s (%s)", fin.State, fin.Error)
	}
	rep, err := cl.Result(ctx, jb.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "async-map" || rep.Err() != nil || rep.Map == nil {
		t.Fatalf("job report: %+v", rep)
	}

	inProc, err := sunmap.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	want := inProc.Do(ctx, req)
	got, _ := json.Marshal(rep)
	exp, _ := json.Marshal(want)
	if !bytes.Equal(got, exp) {
		t.Errorf("async report differs from sync:\n%s\n%s", got, exp)
	}
}

// TestServeJobErrors covers the failure statuses of the job API: unknown
// IDs are 404 on every job route, results of unfinished jobs are 409
// with a Retry-After hint, cancelled jobs are 410, and a structurally
// invalid submission never enters the store.
func TestServeJobErrors(t *testing.T) {
	srv, sv, _ := newJobServer(t, serve.Options{JobsDir: t.TempDir()})

	for _, path := range []string{"/v1/jobs/j-999", "/v1/jobs/j-999/result"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	status, body := post(t, srv.URL+"/v1/jobs", []byte(`{"op":"frobnicate"}`))
	if status != http.StatusBadRequest {
		t.Errorf("invalid submission: status %d, body %s", status, body)
	}
	if sv.Handler() == nil {
		t.Fatal("no handler")
	}

	// A search job is slow enough to catch mid-flight: its result must be
	// 409 + Retry-After while running, 410 after cancellation.
	blob, _ := json.Marshal(sunmap.Request{
		Op: sunmap.OpSearch,
		Search: &sunmap.SearchRequest{
			App:     sunmap.AppSpec{Name: "mpeg4"},
			Mapping: sunmap.MapSpec{Routing: "MP", CapacityMBps: 1000},
			Search:  sunmap.SearchOptions{Budget: 200000, Seed: 3},
		},
	})
	status, body = post(t, srv.URL+"/v1/jobs", blob)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", status, body)
	}
	var jb struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &jb); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/v1/jobs/" + jb.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || resp.Header.Get("Retry-After") == "" {
		t.Errorf("running result: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	del, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+jb.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", dresp.StatusCode)
	}
	cl := client.New(srv.URL, client.Options{Seed: 1})
	fin, err := cl.Wait(context.Background(), jb.ID, 20*time.Millisecond)
	if err != nil || fin.State != "cancelled" {
		t.Fatalf("cancelled job settled as %+v (%v)", fin, err)
	}
	resp, err = http.Get(srv.URL + "/v1/jobs/" + jb.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Errorf("cancelled result: status %d", resp.StatusCode)
	}
}

// TestServeSheddingAndClientBackoff is the overload acceptance
// criterion: with the evaluation pool saturated past MaxQueueDepth,
// synchronous requests are shed with 429 + Retry-After — and a
// serve/client caller rides its backoff through the congestion and
// completes once capacity frees up.
func TestServeSheddingAndClientBackoff(t *testing.T) {
	srv, _, sess := newJobServer(t, serve.Options{
		MaxQueueDepth:  1,
		RequestTimeout: 1500 * time.Millisecond,
	}, sunmap.WithParallelism(1))

	// Saturate: slow Monte Carlo fault sweeps pile onto the single
	// evaluation slot until their 1.5s budgets expire.
	slow, _ := json.Marshal(sunmap.Request{
		Op: sunmap.OpSelect,
		Select: &sunmap.SelectRequest{
			App: sunmap.AppSpec{Name: "netproc"}, Mapping: sunmap.MapSpec{},
			Fault: &sunmap.FaultSpec{K: 3, Samples: 1 << 17},
		},
	})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/do", "application/json", bytes.NewReader(slow))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	defer wg.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for sess.Load().Waiting < 1 {
		if time.Now().After(deadline) {
			t.Fatal("pool never saturated")
		}
		time.Sleep(time.Millisecond)
	}

	quick, _ := json.Marshal(sunmap.Request{
		ID: "shed-me",
		Op: sunmap.OpMap,
		Map: &sunmap.MapRequest{
			App: sunmap.AppSpec{Name: "dsp"}, Topology: "mesh-2x3",
			Mapping: sunmap.MapSpec{CapacityMBps: 1000},
		},
	})
	resp, err := http.Post(srv.URL+"/v1/do", "application/json", bytes.NewReader(quick))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After %q", resp.Header.Get("Retry-After"))
	}

	// The retrying client absorbs the sheds and completes the same
	// request once the slow work drains.
	cl := client.New(srv.URL, client.Options{
		Seed: 7, MaxAttempts: 40,
		BaseBackoff: 50 * time.Millisecond, MaxBackoff: 500 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var req sunmap.Request
	if err := json.Unmarshal(quick, &req); err != nil {
		t.Fatal(err)
	}
	rep, err := cl.Do(ctx, req)
	if err != nil {
		t.Fatalf("client never got through the sheds: %v", err)
	}
	if rep.Err() != nil || rep.Map == nil {
		t.Fatalf("post-congestion report: %+v", rep)
	}

	// The batch health envelope reports the sheds.
	wg.Wait()
	batch, _ := json.Marshal(serve.BatchRequest{Requests: []sunmap.Request{req}})
	status, body := post(t, srv.URL+"/v1/batch", batch)
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, body)
	}
	var br serve.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Serve == nil || br.Serve.Shed == 0 {
		t.Errorf("shed count not surfaced: %+v", br.Serve)
	}
	if br.Serve != nil && br.Serve.Load.Capacity != 1 {
		t.Errorf("load capacity %d, want 1", br.Serve.Load.Capacity)
	}
}

// TestServeCacheFileWarmStart: a server Close persists the eval cache,
// and a fresh server over the same file answers repeat work from the
// spill instead of recomputing.
func TestServeCacheFileWarmStart(t *testing.T) {
	cacheFile := t.TempDir() + "/cache.jsonl"
	req := sunmap.Request{
		Op: sunmap.OpMap,
		Map: &sunmap.MapRequest{
			App: sunmap.AppSpec{Name: "dsp"}, Topology: "mesh-2x3",
			Mapping: sunmap.MapSpec{CapacityMBps: 1000},
		},
	}
	blob, _ := json.Marshal(req)

	sess1, err := sunmap.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	sv1, err := serve.NewServer(context.Background(), sess1, serve.Options{CacheFile: cacheFile})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(sv1.Handler())
	status, first := post(t, srv1.URL+"/v1/do", blob)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	srv1.Close()
	if err := sv1.Close(); err != nil {
		t.Fatal(err)
	}

	sess2, err := sunmap.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	sv2, err := serve.NewServer(context.Background(), sess2, serve.Options{CacheFile: cacheFile})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(sv2.Handler())
	defer srv2.Close()
	defer sv2.Close()
	status, second := post(t, srv2.URL+"/v1/do", blob)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("warm-start report differs:\n%s\n%s", first, second)
	}
	st := sess2.CacheStats()
	if st.SpillHits == 0 {
		t.Errorf("repeat request not served from the cache spill: %+v", st)
	}
}

// TestServeBatchTimeoutClampEdges pins the clamp's boundary behavior:
// negative budgets pass through to validation (bad_request, not
// silently repaired), a budget exactly at the server default is kept,
// and a budget above it is clamped down so the batch still returns
// promptly.
func TestServeBatchTimeoutClampEdges(t *testing.T) {
	srv, _ := newServer(t, serve.Options{RequestTimeout: 50 * time.Millisecond})
	slowSel := &sunmap.SelectRequest{
		App: sunmap.AppSpec{Name: "netproc"}, Mapping: sunmap.MapSpec{},
		Fault: &sunmap.FaultSpec{K: 3, Samples: 1 << 17},
	}
	batch := serve.BatchRequest{Requests: []sunmap.Request{
		{ID: "neg", Op: sunmap.OpSelect, TimeoutMS: -5, Select: slowSel},
		{ID: "at-def", Op: sunmap.OpSelect, TimeoutMS: 50, Select: slowSel},
		{ID: "huge", Op: sunmap.OpSelect, TimeoutMS: 24 * 60 * 60 * 1000, Select: slowSel},
	}}
	blob, _ := json.Marshal(batch)
	start := time.Now()
	status, body := post(t, srv.URL+"/v1/batch", blob)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("batch ran %v — clamp did not bound the huge budget", elapsed)
	}
	var resp serve.BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Reports) != 3 {
		t.Fatalf("%d reports", len(resp.Reports))
	}
	if resp.Reports[0].ErrorKind != sunmap.ErrorKindBadRequest {
		t.Errorf("negative timeout report: %+v", resp.Reports[0])
	}
	for _, i := range []int{1, 2} {
		if resp.Reports[i].ErrorKind != sunmap.ErrorKindCanceled {
			t.Errorf("report %s: kind %q, want canceled", resp.Reports[i].ID, resp.Reports[i].ErrorKind)
		}
	}
}

// TestServeBodySizeCapExact pins readBody's boundary: a body of exactly
// MaxBodyBytes is processed, one byte more is rejected as oversized.
func TestServeBodySizeCapExact(t *testing.T) {
	const capBytes = 512
	srv, _ := newServer(t, serve.Options{MaxBodyBytes: capBytes})
	mk := func(pad int) []byte {
		req := sunmap.Request{
			ID: string(bytes.Repeat([]byte("x"), pad)),
			Op: sunmap.OpMap,
			Map: &sunmap.MapRequest{
				App: sunmap.AppSpec{Name: "dsp"}, Topology: "mesh-2x3",
				Mapping: sunmap.MapSpec{CapacityMBps: 1000},
			},
		}
		blob, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	// One pad byte adds one body byte, but pad 0 drops the whole
	// omitempty id field — so calibrate against a one-byte pad.
	base := len(mk(1)) - 1
	exact := mk(capBytes - base)
	if len(exact) != capBytes {
		t.Fatalf("padded body is %d bytes, want %d", len(exact), capBytes)
	}
	status, body := post(t, srv.URL+"/v1/do", exact)
	if status != http.StatusOK {
		t.Errorf("exact-cap body: status %d, body %s", status, body)
	}
	over := mk(capBytes - base + 1)
	status, body = post(t, srv.URL+"/v1/do", over)
	if status != http.StatusBadRequest || !bytes.Contains(body, []byte("exceeds")) {
		t.Errorf("cap+1 body: status %d, body %s", status, body)
	}
}
