package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sunmap"
	"sunmap/serve"
)

func newServer(t *testing.T, opts serve.Options, sessOpts ...sunmap.SessionOption) (*httptest.Server, *sunmap.Session) {
	t.Helper()
	sess, err := sunmap.NewSession(sessOpts...)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(serve.NewHandler(sess, opts))
	t.Cleanup(srv.Close)
	return srv, sess
}

func post(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestServeSelectMatchesInProcess is the acceptance criterion: a Request
// marshaled to JSON, POSTed to a sunmap serve test server, and decoded
// back as a Report selects the same topology as the equivalent in-process
// Session.Select call.
func TestServeSelectMatchesInProcess(t *testing.T) {
	srv, _ := newServer(t, serve.Options{})

	req := sunmap.Request{
		ID: "acceptance",
		Op: sunmap.OpSelect,
		Select: &sunmap.SelectRequest{
			App:     sunmap.AppSpec{Name: "vopd"},
			Mapping: sunmap.MapSpec{Routing: "MP", Objective: "delay", CapacityMBps: 500},
		},
	}
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	status, body := post(t, srv.URL+"/v1/do", blob)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	rep, err := sunmap.ParseReport(body)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "acceptance" || rep.Err() != nil {
		t.Fatalf("report: %+v", rep)
	}

	inProc, err := sunmap.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	want, err := inProc.Select(context.Background(), *req.Select)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Select.Topology != want.Topology {
		t.Errorf("served selection %q != in-process selection %q", rep.Select.Topology, want.Topology)
	}
	if rep.Select.Topology == "" {
		t.Error("no topology selected")
	}
	if len(rep.Select.Rows) != len(want.Rows) {
		t.Errorf("served %d rows, in-process %d", len(rep.Select.Rows), len(want.Rows))
	}
}

// TestServeFaultSweepMatchesInProcess is the fault-subsystem acceptance
// criterion's service half: a FaultSweep POSTed over the wire returns a
// report byte-identical to the in-process Session.FaultSweep call.
func TestServeFaultSweepMatchesInProcess(t *testing.T) {
	srv, _ := newServer(t, serve.Options{})

	req := sunmap.Request{
		ID: "fault",
		Op: sunmap.OpFaultSweep,
		FaultSweep: &sunmap.FaultSweepRequest{
			App:      sunmap.AppSpec{Name: "vopd"},
			Topology: "mesh-3x4",
			Mapping:  sunmap.MapSpec{Routing: "MP", CapacityMBps: 500},
			Fault:    sunmap.FaultSpec{K: 2, Elements: "both"},
		},
	}
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	status, body := post(t, srv.URL+"/v1/do", blob)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	rep, err := sunmap.ParseReport(body)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "fault" || rep.Err() != nil {
		t.Fatalf("report: %+v", rep)
	}
	if rep.FaultSweep == nil || rep.FaultSweep.Scenarios == 0 {
		t.Fatalf("empty fault report: %+v", rep.FaultSweep)
	}

	inProc, err := sunmap.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	want, err := inProc.FaultSweep(context.Background(), *req.FaultSweep)
	if err != nil {
		t.Fatal(err)
	}
	served, _ := json.Marshal(rep.FaultSweep)
	local, _ := json.Marshal(want)
	if !bytes.Equal(served, local) {
		t.Errorf("served fault report differs from in-process:\n%s\n%s", served, local)
	}
}

func TestServeBatch(t *testing.T) {
	srv, sess := newServer(t, serve.Options{})
	batch := serve.BatchRequest{Requests: []sunmap.Request{
		{ID: "a", Op: sunmap.OpMap, Map: &sunmap.MapRequest{
			App: sunmap.AppSpec{Name: "dsp"}, Topology: "mesh-2x3",
			Mapping: sunmap.MapSpec{CapacityMBps: 1000},
		}},
		{ID: "b", Op: "frobnicate"},
		{ID: "c", Op: sunmap.OpSimulate, Simulate: &sunmap.SimRequest{
			Topology: "mesh-2x2", Rates: []float64{0.1},
			WarmupCycles: 100, MeasureCycles: 300, DrainCycles: 500,
		}},
	}}
	blob, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	status, body := post(t, srv.URL+"/v1/batch", blob)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp serve.BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Reports) != 3 {
		t.Fatalf("%d reports", len(resp.Reports))
	}
	if resp.Reports[0].ID != "a" || resp.Reports[0].Map == nil {
		t.Errorf("report a: %+v", resp.Reports[0])
	}
	if resp.Reports[1].ErrorKind != sunmap.ErrorKindBadRequest {
		t.Errorf("report b: %+v", resp.Reports[1])
	}
	if resp.Reports[2].Simulate == nil || len(resp.Reports[2].Simulate.Rows) != 1 {
		t.Errorf("report c: %+v", resp.Reports[2])
	}
	if resp.Cache.Misses == 0 {
		t.Errorf("cache stats not reported: %+v", resp.Cache)
	}
	if got := sess.CacheStats(); got.Misses == 0 {
		t.Errorf("session cache untouched: %+v", got)
	}
}

func TestServeRejectsBadBodies(t *testing.T) {
	srv, _ := newServer(t, serve.Options{MaxBatch: 2, MaxBodyBytes: 1 << 20})
	cases := []struct {
		name, path, body string
	}{
		{"garbage do", "/v1/do", "{"},
		{"invalid request", "/v1/do", `{"op":"nope"}`},
		{"garbage batch", "/v1/batch", "not json"},
		{"empty batch", "/v1/batch", `{"requests":[]}`},
		{"oversized batch", "/v1/batch", `{"requests":[{"op":"select"},{"op":"select"},{"op":"select"}]}`},
	}
	for _, tc := range cases {
		status, body := post(t, srv.URL+tc.path, []byte(tc.body))
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, body %s", tc.name, status, body)
		}
		var eb struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: error body %q", tc.name, body)
		}
	}
	// A huge body is cut off at the transport boundary, not panicked on.
	big := fmt.Sprintf(`{"op":"select","id":%q}`, bytes.Repeat([]byte("x"), 2<<20))
	status, _ := post(t, srv.URL+"/v1/do", []byte(big))
	if status != http.StatusBadRequest {
		t.Errorf("oversized body: status %d", status)
	}
}

func TestServeHealthz(t *testing.T) {
	srv, _ := newServer(t, serve.Options{})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

func TestServePerRequestTimeout(t *testing.T) {
	srv, _ := newServer(t, serve.Options{RequestTimeout: time.Minute})
	// The request must reliably outlast its 1ms budget no matter how fast
	// the mapper gets, so pile a large Monte Carlo fault sweep (every
	// feasible candidate × 1<<17 scenarios) on top of the selection.
	req := sunmap.Request{
		Op:        sunmap.OpSelect,
		TimeoutMS: 1,
		Select: &sunmap.SelectRequest{
			App: sunmap.AppSpec{Name: "netproc"}, Mapping: sunmap.MapSpec{},
			Fault: &sunmap.FaultSpec{K: 3, Samples: 1 << 17},
		},
	}
	blob, _ := json.Marshal(req)
	status, body := post(t, srv.URL+"/v1/do", blob)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	rep, err := sunmap.ParseReport(body)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ErrorKind != sunmap.ErrorKindCanceled {
		t.Errorf("timed-out request kind %q (%+v)", rep.ErrorKind, rep)
	}
}

// TestServeTimeoutCappedByServer: a client cannot widen the operator's
// per-request budget — a huge timeout_ms is clamped to RequestTimeout.
func TestServeTimeoutCappedByServer(t *testing.T) {
	// A nanosecond budget is already expired when processing starts, so
	// the clamp must fire no matter how fast the mapper gets — the test
	// asserts the server-side cap wins, not any particular sweep runtime.
	srv, _ := newServer(t, serve.Options{RequestTimeout: time.Nanosecond})
	req := sunmap.Request{
		Op:        sunmap.OpSelect,
		TimeoutMS: 24 * 60 * 60 * 1000, // a day
		Select: &sunmap.SelectRequest{
			App: sunmap.AppSpec{Name: "netproc"}, Mapping: sunmap.MapSpec{},
		},
	}
	blob, _ := json.Marshal(req)
	start := time.Now()
	status, body := post(t, srv.URL+"/v1/do", blob)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("request ran %v — server budget not enforced", elapsed)
	}
	rep, err := sunmap.ParseReport(body)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ErrorKind != sunmap.ErrorKindCanceled {
		t.Errorf("kind %q (%+v)", rep.ErrorKind, rep)
	}
}

// TestListenAndServeGracefulShutdown drives the real listener: the server
// answers, then shuts down cleanly when its context is cancelled.
func TestListenAndServeGracefulShutdown(t *testing.T) {
	sess, err := sunmap.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- serve.ListenAndServe(ctx, "127.0.0.1:0", sess, serve.Options{}, time.Second)
	}()
	// The port is random; this test only checks the lifecycle: cancel must
	// end ListenAndServe without error within the drain budget.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("ListenAndServe returned %v after cancel", err)
		}
	case <-time.After(5 * time.Second):
		t.Error("ListenAndServe did not return after cancel")
	}
}

// TestServeSearchRoundTrip drives the search op over the wire: the
// discovered topology must come back with its structure and full
// evaluation, and — because the winner registers in the serving session's
// scope — a follow-up map request on the same server must resolve the
// discovered name.
func TestServeSearchRoundTrip(t *testing.T) {
	srv, _ := newServer(t, serve.Options{})

	req := sunmap.Request{
		ID: "discover",
		Op: sunmap.OpSearch,
		Search: &sunmap.SearchRequest{
			App:     sunmap.AppSpec{Name: "mpeg4"},
			Mapping: sunmap.MapSpec{Routing: "MP", Objective: "delay", CapacityMBps: 1000},
			Search:  sunmap.SearchOptions{Budget: 2000, Seed: 1},
		},
	}
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	status, body := post(t, srv.URL+"/v1/do", blob)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	rep, err := sunmap.ParseReport(body)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "discover" || rep.Err() != nil {
		t.Fatalf("report: %+v", rep)
	}
	sr := rep.Search
	if sr == nil || sr.Topology == "" || sr.Best == nil || len(sr.BiLinks) == 0 {
		t.Fatalf("incomplete search report: %+v", sr)
	}
	if !sr.Best.Feasible {
		t.Fatalf("served search winner infeasible: %+v", sr.Best)
	}

	follow := sunmap.Request{
		ID: "follow",
		Op: sunmap.OpMap,
		Map: &sunmap.MapRequest{
			App:      sunmap.AppSpec{Name: "mpeg4"},
			Topology: sr.Topology,
			Mapping:  sunmap.MapSpec{Routing: "MP", CapacityMBps: 1000},
		},
	}
	blob, err = json.Marshal(follow)
	if err != nil {
		t.Fatal(err)
	}
	status, body = post(t, srv.URL+"/v1/do", blob)
	if status != http.StatusOK {
		t.Fatalf("follow-up status %d: %s", status, body)
	}
	frep, err := sunmap.ParseReport(body)
	if err != nil {
		t.Fatal(err)
	}
	if frep.Err() != nil {
		t.Fatalf("follow-up map on %s failed: %v", sr.Topology, frep.Err())
	}
	if frep.Map.Topology != sr.Topology {
		t.Errorf("follow-up mapped %q, want %q", frep.Map.Topology, sr.Topology)
	}
}
