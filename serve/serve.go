// Package serve puts an HTTP/JSON front-end on a sunmap.Session: the
// batch optimization service the `sunmap serve` subcommand runs. Requests
// and responses use exactly the serializable Request/Report schema of the
// root package, so a client can marshal a sunmap.Request, POST it, and
// decode the body back as a sunmap.Report with no service-specific types.
//
// Synchronous endpoints:
//
//	POST /v1/do     one Request  -> one Report
//	POST /v1/batch  {"requests": [...]} -> {"reports": [...], "cache": {...}, "serve": {...}}
//	GET  /healthz   liveness probe
//
// Asynchronous job endpoints (NewServer with a jobs store):
//
//	POST   /v1/jobs             one Request -> 202 + job snapshot
//	GET    /v1/jobs             list live jobs
//	GET    /v1/jobs/{id}        poll one job
//	GET    /v1/jobs/{id}/result fetch a terminal job's Report
//	DELETE /v1/jobs/{id}        cancel
//
// Jobs are journaled by internal/jobs: a crash or restart re-queues
// interrupted jobs, and search jobs resume from their latest annealing
// checkpoint with bit-identical results. Overload policy: when the
// session's evaluation pool has more blocked callers than the queue-depth
// threshold, synchronous requests are shed with 429 + Retry-After
// (health probes and job submissions are never shed — the async path is
// the pressure relief); a job runner panicking repeatedly opens a
// circuit breaker that sheds submissions with 503 + Retry-After.
//
// Error mapping: structurally invalid bodies are HTTP 400; valid requests
// whose operation fails still return 200 with Report.Error/ErrorKind set
// (an infeasible selection is a result, not a transport failure). Every
// request is bounded by a per-request timeout, and ListenAndServe shuts
// down gracefully when its context is cancelled.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sunmap"
	"sunmap/internal/jobs"
	"sunmap/internal/obs"
)

// Options tunes the HTTP front-end. The zero value is production-safe.
type Options struct {
	// RequestTimeout bounds each request's processing time when the
	// Request itself does not carry a tighter TimeoutMS (default 2m).
	RequestTimeout time.Duration
	// MaxBatch caps the request count of one /v1/batch call (default 256).
	MaxBatch int
	// MaxBodyBytes caps the request body size (default 8 MiB).
	MaxBodyBytes int64
	// MaxQueueDepth is the admission-control threshold: synchronous
	// requests are shed with 429 once this many callers are blocked
	// waiting for an evaluation slot. 0 selects 4x the session's
	// parallelism; negative disables shedding.
	MaxQueueDepth int
	// JobsDir is the job journal directory; empty keeps the job store
	// memory-only (jobs do not survive a restart).
	JobsDir string
	// JobWorkers bounds concurrent job executions (default 2).
	JobWorkers int
	// JobRetention is how long terminal jobs stay fetchable (default 1h).
	JobRetention time.Duration
	// CheckpointEvery is the annealing-evaluation interval between
	// journaled search checkpoints (default 500).
	CheckpointEvery int
	// CacheFile, when set, persists the session's eval cache: loaded on
	// NewServer, saved on Close, so a restarted server is warm.
	CacheFile string
	// OnListen, when set, receives the bound address before serving
	// starts — the way a ":0" server's actual port becomes observable.
	OnListen func(net.Addr)
	// ErrorLog receives response-write failures and other degraded-path
	// notices. When nil those notices go to Logger instead; set it only
	// for log-capture compatibility.
	ErrorLog *log.Logger
	// Logger receives the server's structured diagnostics, each line
	// carrying request-id (and job-id) correlation fields. Nil selects a
	// text logger on stderr at Info.
	Logger *slog.Logger
	// EnableMetrics registers GET /metrics: the process-wide and
	// per-server registries in Prometheus text format. The scrape path
	// reads only atomics and never takes a lock request admission could
	// be queued behind.
	EnableMetrics bool
	// EnablePprof registers the /debug/pprof/* profiling endpoints.
	// Opt-in: profiles expose internals and cost CPU while sampling, so
	// they have no place on an exposed listener by default.
	EnablePprof bool
	// breaker tuning for tests; zero selects the jobs package defaults.
	jobBreakerThreshold int
	jobBreakerCooldown  time.Duration
}

func (o Options) withDefaults() Options {
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 2 * time.Minute
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	if o.JobWorkers <= 0 {
		o.JobWorkers = 2
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 500
	}
	return o
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Requests []sunmap.Request `json:"requests"`
}

// ServeStats is the service-health envelope returned alongside batch
// reports: the session pool's pressure, requests shed so far, and the
// count of responses whose write failed after the header was committed
// (the failures writeJSON can no longer surface to that client).
type ServeStats struct {
	Load          sunmap.LoadStats `json:"load"`
	Shed          uint64           `json:"shed,omitempty"`
	WriteFailures uint64           `json:"write_failures,omitempty"`
	Jobs          *jobs.Stats      `json:"jobs,omitempty"`
}

// BatchResponse is the body of a /v1/batch reply: one Report per Request
// at the same index, plus a snapshot of the session cache and the serve
// layer's own health counters — the telemetry a load balancer or
// dashboard scrapes.
type BatchResponse struct {
	Reports []sunmap.Report       `json:"reports"`
	Cache   sunmap.EvalCacheStats `json:"cache"`
	Serve   *ServeStats           `json:"serve,omitempty"`
}

// errorBody is the JSON shape of transport-level failures (HTTP 4xx/5xx).
type errorBody struct {
	Error string `json:"error"`
}

// Server is the serving front-end with a lifecycle: it owns the durable
// job store and the persisted eval cache. Create with NewServer, serve
// its Handler, Close on the way out.
type Server struct {
	sess       *sunmap.Session
	opts       Options
	store      *jobs.Store // nil when jobs are disabled (NewHandler path)
	mux        *http.ServeMux
	root       http.Handler // mux wrapped in the request-id middleware
	reg        *obs.Registry
	writeFails atomic.Uint64
	shedCount  atomic.Uint64
	closeOnce  sync.Once
	closeErr   error
}

// NewServer builds a Server: loads the eval-cache spill (Options.
// CacheFile), opens the job store (journal replay re-queues interrupted
// jobs), and registers all endpoints. ctx scopes construction; the job
// workers run until Close.
func NewServer(ctx context.Context, s *sunmap.Session, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	sv := &Server{sess: s, opts: opts}
	if opts.CacheFile != "" {
		if n, err := s.Cache().LoadFile(opts.CacheFile); err != nil {
			sv.logf("serve: cache spill not loaded: %v", err)
		} else if n > 0 {
			sv.logf("serve: warm start: %d cached evaluations from %s", n, opts.CacheFile)
		}
	}
	store, err := jobs.Open(ctx, jobs.Options{
		Dir:              opts.JobsDir,
		Workers:          opts.JobWorkers,
		Retention:        opts.JobRetention,
		BreakerThreshold: opts.jobBreakerThreshold,
		BreakerCooldown:  opts.jobBreakerCooldown,
		Logger:           sv.logger(),
	}, sv.runJob)
	if err != nil {
		return nil, err
	}
	sv.store = store
	sv.buildMux()
	return sv, nil
}

// Handler returns the server's HTTP handler (the route mux wrapped in
// the request-id middleware).
func (sv *Server) Handler() http.Handler {
	if sv.root != nil {
		return sv.root
	}
	return sv.mux
}

// Close stops the job store (interrupted jobs stay re-runnable in the
// journal) and saves the eval-cache spill.
func (sv *Server) Close() error {
	sv.closeOnce.Do(func() {
		var errs []error
		if sv.store != nil {
			if err := sv.store.Close(); err != nil {
				errs = append(errs, err)
			}
		}
		if sv.opts.CacheFile != "" {
			if _, err := sv.sess.Cache().SaveFile(sv.opts.CacheFile); err != nil {
				errs = append(errs, err)
			}
		}
		sv.closeErr = errors.Join(errs...)
	})
	return sv.closeErr
}

// NewHandler builds the HTTP handler serving a session synchronously —
// the lifecycle-free compatibility surface (no durable jobs, no cache
// persistence). Use NewServer for the full service.
func NewHandler(s *sunmap.Session, opts Options) http.Handler {
	sv := &Server{sess: s, opts: opts.withDefaults()}
	sv.buildMux()
	return sv.Handler()
}

// defaultLogger is the fallback structured logger shared by servers
// whose Options carry neither a Logger nor an ErrorLog.
var defaultLogger = obs.NewLogger(os.Stderr, slog.LevelInfo)

// logger resolves the server's structured logger. Resolution is by
// method, not construction, so a zero-built Server (tests) logs too.
func (sv *Server) logger() *slog.Logger {
	if sv.opts.Logger != nil {
		return sv.opts.Logger
	}
	return defaultLogger
}

// logf reports a degraded-path notice: to ErrorLog when configured
// (log-capture compatibility), else to the structured logger at Warn.
func (sv *Server) logf(format string, args ...any) {
	if sv.opts.ErrorLog != nil {
		sv.opts.ErrorLog.Printf(format, args...)
		return
	}
	sv.logger().Warn(fmt.Sprintf(format, args...))
}

func (sv *Server) buildMux() {
	mux := http.NewServeMux()
	sv.mux = mux
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Health probes are never shed: a saturated server is alive.
		sv.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /v1/do", func(w http.ResponseWriter, r *http.Request) {
		if sv.shed(w) {
			return
		}
		body, err := readBody(r, sv.opts.MaxBodyBytes)
		if err != nil {
			sv.writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		req, err := sunmap.ParseRequest(body)
		if err != nil {
			sv.writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		ctx, cancel := requestContext(r.Context(), *req, sv.opts.RequestTimeout)
		defer cancel()
		sv.writeJSON(w, http.StatusOK, sv.sess.Do(ctx, *req))
	})
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		if sv.shed(w) {
			return
		}
		body, err := readBody(r, sv.opts.MaxBodyBytes)
		if err != nil {
			sv.writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		var batch BatchRequest
		if err := json.Unmarshal(body, &batch); err != nil {
			sv.writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("invalid request: %v", err)})
			return
		}
		if len(batch.Requests) == 0 {
			sv.writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid request: empty batch"})
			return
		}
		if len(batch.Requests) > sv.opts.MaxBatch {
			sv.writeJSON(w, http.StatusBadRequest, errorBody{
				Error: fmt.Sprintf("invalid request: batch of %d exceeds the %d cap", len(batch.Requests), sv.opts.MaxBatch),
			})
			return
		}
		// Each request gets its own processing budget, clocked from when a
		// batch worker dequeues it (Do applies TimeoutMS at dispatch), so a
		// request's budget does not shrink with its queue position. As on
		// /v1/do, a client may tighten the operator's default but never
		// widen it.
		// (negative timeouts are left alone so validation rejects them)
		defMS := int(sv.opts.RequestTimeout / time.Millisecond)
		for i := range batch.Requests {
			if t := batch.Requests[i].TimeoutMS; t == 0 || t > defMS {
				batch.Requests[i].TimeoutMS = defMS
			}
		}
		reports, _ := sv.sess.Batch(r.Context(), batch.Requests) // per-request failures live in the reports
		sv.writeJSON(w, http.StatusOK, BatchResponse{
			Reports: reports,
			Cache:   sv.sess.CacheStats(),
			Serve:   sv.stats(),
		})
	})
	if sv.store != nil {
		sv.registerJobRoutes(mux)
	}
	sv.registerObsRoutes(mux)
	sv.root = sv.withRequestID(mux)
}

func (sv *Server) registerJobRoutes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		// Submissions are never queue-depth shed: enqueueing is cheap and
		// the async path is exactly where overloaded clients belong. The
		// panic breaker still applies.
		body, err := readBody(r, sv.opts.MaxBodyBytes)
		if err != nil {
			sv.writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		req, err := sunmap.ParseRequest(body)
		if err != nil {
			sv.writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		if err := req.Validate(); err != nil {
			sv.writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		jb, err := sv.store.SubmitTagged(r.Context(), req.Op, body, requestID(r.Context()))
		if err != nil {
			var open *jobs.BreakerOpenError
			if errors.As(err, &open) {
				w.Header().Set("Retry-After", strconv.Itoa(retrySeconds(open.RetryAfter)))
				sv.writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
				return
			}
			sv.writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
			return
		}
		sv.writeJSON(w, http.StatusAccepted, jb)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		sv.writeJSON(w, http.StatusOK, map[string][]jobs.Job{"jobs": sv.store.List()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		jb, err := sv.store.Get(r.PathValue("id"))
		if err != nil {
			sv.writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
			return
		}
		sv.writeJSON(w, http.StatusOK, jb)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		res, jb, err := sv.store.Result(r.PathValue("id"))
		switch {
		case errors.Is(err, jobs.ErrUnknownJob):
			sv.writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		case errors.Is(err, jobs.ErrNotTerminal):
			w.Header().Set("Retry-After", "2")
			sv.writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
		case err != nil:
			sv.writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		case jb.State == jobs.StateDone:
			// The result bytes are a marshaled sunmap.Report; pass through.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			if _, werr := w.Write(res); werr != nil {
				sv.writeFails.Add(1)
				sv.logf("serve: writing job result: %v", werr)
			}
		case jb.State == jobs.StateCancelled:
			sv.writeJSON(w, http.StatusGone, errorBody{Error: "job cancelled: " + jb.Error})
		default: // failed
			sv.writeJSON(w, http.StatusInternalServerError, errorBody{Error: "job failed: " + jb.Error})
		}
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		jb, err := sv.store.Cancel(r.PathValue("id"))
		if err != nil {
			sv.writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
			return
		}
		sv.writeJSON(w, http.StatusOK, jb)
	})
}

// stats snapshots the serve-layer health envelope.
func (sv *Server) stats() *ServeStats {
	st := &ServeStats{
		Load:          sv.sess.Load(),
		Shed:          sv.shedCount.Load(),
		WriteFailures: sv.writeFails.Load(),
	}
	if sv.store != nil {
		js := sv.store.Stats()
		st.Jobs = &js
	}
	return st
}

// shed applies admission control to a synchronous request: when more
// callers are blocked on the session's evaluation pool than the
// threshold allows, reply 429 with a Retry-After estimate instead of
// joining a queue the request's own deadline would likely outlive.
func (sv *Server) shed(w http.ResponseWriter) bool {
	if sv.opts.MaxQueueDepth < 0 {
		return false
	}
	ld := sv.sess.Load()
	depth := sv.opts.MaxQueueDepth
	if depth == 0 {
		depth = 4 * ld.Capacity
		if depth <= 0 {
			depth = 64
		}
	}
	if ld.Waiting < depth {
		return false
	}
	sv.shedCount.Add(1)
	cap := ld.Capacity
	if cap < 1 {
		cap = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(1+ld.Waiting/cap))
	sv.writeJSON(w, http.StatusTooManyRequests, errorBody{
		Error: fmt.Sprintf("overloaded: %d requests queued on %d evaluation slots; retry later or submit to /v1/jobs", ld.Waiting, ld.Capacity),
	})
	return true
}

// runJob executes one journaled job: the payload is the original POST
// /v1/jobs body (a sunmap.Request), the result a marshaled
// sunmap.Report. Search requests run with the checkpoint conduit wired
// to the job's journal; on shutdown the context error propagates so the
// store re-queues instead of recording a bogus terminal state.
func (sv *Server) runJob(ctx context.Context, kind string, payload []byte, ck *jobs.Checkpoint) ([]byte, error) {
	req, err := sunmap.ParseRequest(payload)
	if err != nil {
		return nil, err
	}
	var cp *sunmap.SearchCheckpoints
	if req.Op == sunmap.OpSearch {
		cp = sv.searchConduit(ck)
	}
	rep := sv.sess.DoCheckpointed(ctx, *req, cp)
	if err := ctx.Err(); err != nil {
		return nil, err // interrupted: no terminal result
	}
	return json.Marshal(rep)
}

// searchConduit adapts the job checkpoint handle to the search layer's
// per-chain checkpoint stream: the latest checkpoint of every chain is
// folded into one blob (sorted by chain index — the journal payload is
// deterministic) and saved on each emission; on resume the blob is
// decoded back into per-chain seeds.
func (sv *Server) searchConduit(ck *jobs.Checkpoint) *sunmap.SearchCheckpoints {
	cp := &sunmap.SearchCheckpoints{Every: sv.opts.CheckpointEvery}
	latest := map[int]sunmap.SearchCheckpoint{}
	if raw := ck.Latest(); raw != nil {
		var chains []sunmap.SearchCheckpoint
		if err := json.Unmarshal(raw, &chains); err == nil {
			cp.Resume = chains
			for _, c := range chains {
				latest[c.Chain] = c
			}
		}
	}
	var mu sync.Mutex
	cp.Sink = func(c sunmap.SearchCheckpoint) {
		mu.Lock()
		latest[c.Chain] = c
		blob := make([]sunmap.SearchCheckpoint, 0, len(latest))
		for _, v := range latest {
			blob = append(blob, v)
		}
		sort.Slice(blob, func(i, j int) bool { return blob[i].Chain < blob[j].Chain })
		raw, err := json.Marshal(blob)
		mu.Unlock()
		if err != nil {
			return
		}
		if err := ck.Save(raw); err != nil {
			sv.logf("serve: checkpoint not durable: %v", err)
		}
	}
	return cp
}

// retrySeconds rounds a cooldown up to whole seconds, minimum 1.
func retrySeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// requestContext derives the processing context for one request: the
// request's own TimeoutMS when set, capped by the serve default — a
// client may tighten the operator's budget but never widen it.
func requestContext(parent context.Context, req sunmap.Request, def time.Duration) (context.Context, context.CancelFunc) {
	d := def
	if t := time.Duration(req.TimeoutMS) * time.Millisecond; req.TimeoutMS > 0 && t < d {
		d = t
	}
	return context.WithTimeout(parent, d)
}

func readBody(r *http.Request, maxBytes int64) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBytes+1))
	if err != nil {
		return nil, fmt.Errorf("invalid request: %w", err)
	}
	if int64(len(body)) > maxBytes {
		return nil, fmt.Errorf("invalid request: body exceeds %d bytes", maxBytes)
	}
	return body, nil
}

// writeJSON writes a JSON response. An Encode failure after WriteHeader
// cannot reach this client anymore; it is counted (surfaced in the
// /v1/batch serve envelope) and logged instead of dropped.
func (sv *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		sv.writeFails.Add(1)
		sv.logf("serve: writing response: %v", err)
	}
}

// ListenAndServe runs the service on addr until ctx is cancelled, then
// shuts down gracefully: listeners close immediately, in-flight requests
// get drainTimeout to finish, then the job store and cache spill are
// closed. The listener is opened explicitly before serving and reported
// through Options.OnListen, so ":0" servers can discover their port.
func ListenAndServe(ctx context.Context, addr string, s *sunmap.Session, opts Options, drainTimeout time.Duration) error {
	if drainTimeout <= 0 {
		drainTimeout = 10 * time.Second
	}
	sv, err := NewServer(ctx, s, opts)
	if err != nil {
		return err
	}
	defer sv.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	if opts.OnListen != nil {
		opts.OnListen(ln.Addr())
	}
	srv := &http.Server{
		Handler:           sv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		//sunmap:detached graceful drain: the trigger is the canceled ctx itself, so the drain deadline cannot descend from it
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("serve: shutdown: %w", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
