// Package serve puts an HTTP/JSON front-end on a sunmap.Session: the
// batch optimization service the `sunmap serve` subcommand runs. Requests
// and responses use exactly the serializable Request/Report schema of the
// root package, so a client can marshal a sunmap.Request, POST it, and
// decode the body back as a sunmap.Report with no service-specific types.
//
// Endpoints:
//
//	POST /v1/do     one Request  -> one Report
//	POST /v1/batch  {"requests": [...]} -> {"reports": [...], "cache": {...}}
//	GET  /healthz   liveness probe
//
// Error mapping: structurally invalid bodies are HTTP 400; valid requests
// whose operation fails still return 200 with Report.Error/ErrorKind set
// (an infeasible selection is a result, not a transport failure). Every
// request is bounded by a per-request timeout, and ListenAndServe shuts
// down gracefully when its context is cancelled.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"sunmap"
)

// Options tunes the HTTP front-end. The zero value is production-safe.
type Options struct {
	// RequestTimeout bounds each request's processing time when the
	// Request itself does not carry a tighter TimeoutMS (default 2m).
	RequestTimeout time.Duration
	// MaxBatch caps the request count of one /v1/batch call (default 256).
	MaxBatch int
	// MaxBodyBytes caps the request body size (default 8 MiB).
	MaxBodyBytes int64
}

func (o Options) withDefaults() Options {
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 2 * time.Minute
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	return o
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Requests []sunmap.Request `json:"requests"`
}

// BatchResponse is the body of a /v1/batch reply: one Report per Request
// at the same index, plus a snapshot of the session cache — the
// effectiveness telemetry a load balancer or dashboard scrapes.
type BatchResponse struct {
	Reports []sunmap.Report       `json:"reports"`
	Cache   sunmap.EvalCacheStats `json:"cache"`
}

// errorBody is the JSON shape of transport-level failures (HTTP 4xx/5xx).
type errorBody struct {
	Error string `json:"error"`
}

// NewHandler builds the HTTP handler serving a session.
func NewHandler(s *sunmap.Session, opts Options) http.Handler {
	opts = opts.withDefaults()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /v1/do", func(w http.ResponseWriter, r *http.Request) {
		body, err := readBody(r, opts.MaxBodyBytes)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		req, err := sunmap.ParseRequest(body)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		ctx, cancel := requestContext(r.Context(), *req, opts.RequestTimeout)
		defer cancel()
		writeJSON(w, http.StatusOK, s.Do(ctx, *req))
	})
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		body, err := readBody(r, opts.MaxBodyBytes)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		var batch BatchRequest
		if err := json.Unmarshal(body, &batch); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("invalid request: %v", err)})
			return
		}
		if len(batch.Requests) == 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid request: empty batch"})
			return
		}
		if len(batch.Requests) > opts.MaxBatch {
			writeJSON(w, http.StatusBadRequest, errorBody{
				Error: fmt.Sprintf("invalid request: batch of %d exceeds the %d cap", len(batch.Requests), opts.MaxBatch),
			})
			return
		}
		// Each request gets its own processing budget, clocked from when a
		// batch worker dequeues it (Do applies TimeoutMS at dispatch), so a
		// request's budget does not shrink with its queue position. As on
		// /v1/do, a client may tighten the operator's default but never
		// widen it.
		// (negative timeouts are left alone so validation rejects them)
		defMS := int(opts.RequestTimeout / time.Millisecond)
		for i := range batch.Requests {
			if t := batch.Requests[i].TimeoutMS; t == 0 || t > defMS {
				batch.Requests[i].TimeoutMS = defMS
			}
		}
		reports, _ := s.Batch(r.Context(), batch.Requests) // per-request failures live in the reports
		writeJSON(w, http.StatusOK, BatchResponse{Reports: reports, Cache: s.CacheStats()})
	})
	return mux
}

// requestContext derives the processing context for one request: the
// request's own TimeoutMS when set, capped by the serve default — a
// client may tighten the operator's budget but never widen it.
func requestContext(parent context.Context, req sunmap.Request, def time.Duration) (context.Context, context.CancelFunc) {
	d := def
	if t := time.Duration(req.TimeoutMS) * time.Millisecond; req.TimeoutMS > 0 && t < d {
		d = t
	}
	return context.WithTimeout(parent, d)
}

func readBody(r *http.Request, maxBytes int64) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBytes+1))
	if err != nil {
		return nil, fmt.Errorf("invalid request: %w", err)
	}
	if int64(len(body)) > maxBytes {
		return nil, fmt.Errorf("invalid request: body exceeds %d bytes", maxBytes)
	}
	return body, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// ListenAndServe runs the service on addr until ctx is cancelled, then
// shuts down gracefully: listeners close immediately, in-flight requests
// get drainTimeout to finish.
func ListenAndServe(ctx context.Context, addr string, s *sunmap.Session, opts Options, drainTimeout time.Duration) error {
	if drainTimeout <= 0 {
		drainTimeout = 10 * time.Second
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           NewHandler(s, opts),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		//sunmap:detached graceful drain: the trigger is the canceled ctx itself, so the drain deadline cannot descend from it
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("serve: shutdown: %w", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
