package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetryOnOverload: 429 and 503 back off and retry until the server
// recovers; the successful body comes back untouched.
func TestRetryOnOverload(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "0")
			http.Error(w, "overloaded", http.StatusTooManyRequests)
		case 2:
			http.Error(w, "breaker open", http.StatusServiceUnavailable)
		default:
			w.Write([]byte(`{"status":"ok"}`))
		}
	}))
	defer srv.Close()
	cl := New(srv.URL, Options{Seed: 1, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond})
	if err := cl.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3", got)
	}
}

// TestNoRetryOnClientError: a 4xx other than 429 is the caller's
// mistake — it surfaces immediately as *HTTPError without retries.
func TestNoRetryOnClientError(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad request", http.StatusBadRequest)
	}))
	defer srv.Close()
	cl := New(srv.URL, Options{Seed: 1, BaseBackoff: time.Millisecond})
	err := cl.Health(context.Background())
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusBadRequest {
		t.Fatalf("err = %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("client retried a 400: %d calls", got)
	}
}

// TestExhaustedAttemptsSurfaceLastError: a server that never recovers
// exhausts MaxAttempts and the final error carries the HTTP status.
func TestExhaustedAttemptsSurfaceLastError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "still overloaded", http.StatusTooManyRequests)
	}))
	defer srv.Close()
	cl := New(srv.URL, Options{Seed: 1, MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	err := cl.Health(context.Background())
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v", err)
	}
}

// TestRetryAfterFloorsBackoff: the server's Retry-After hint raises the
// sleep between attempts above the jittered exponential schedule.
func TestRetryAfterFloorsBackoff(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()
	cl := New(srv.URL, Options{Seed: 1, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	start := time.Now()
	if err := cl.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Errorf("retried after %v — Retry-After: 1 not honored", elapsed)
	}
}

// TestContextCancelsBackoff: cancellation during the between-attempt
// sleep returns promptly with the context's error.
func TestContextCancelsBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		http.Error(w, "overloaded", http.StatusTooManyRequests)
	}))
	defer srv.Close()
	cl := New(srv.URL, Options{Seed: 1, BaseBackoff: time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := cl.Health(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}

// TestTransportErrorsRetry: a connection-refused transport failure is
// retryable — pointing the client at a dead port exhausts attempts
// rather than panicking or hanging.
func TestTransportErrorsRetry(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // dead listener: every dial fails
	cl := New(srv.URL, Options{Seed: 1, MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	err := cl.Health(context.Background())
	if err == nil {
		t.Fatal("expected transport failure")
	}
	var he *HTTPError
	if errors.As(err, &he) {
		t.Fatalf("transport failure surfaced as HTTP error: %v", err)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{{"", 0}, {"2", 2 * time.Second}, {"0", 0}, {"-3", 0}, {"Wed, 21 Oct 2015 07:28:00 GMT", 0}}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.in); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
