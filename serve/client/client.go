// Package client is the Go client for the serve package's HTTP API,
// wrapping the synchronous and async-job endpoints with context-aware,
// jittered exponential backoff. Overload responses (429 from admission
// shedding, 503 from the job breaker) and transport failures retry
// automatically, honoring the server's Retry-After hint, so a client
// pointed at a saturated or restarting server completes its work once
// capacity returns instead of surfacing every shed.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"sunmap"
	"sunmap/internal/jobs"
)

// Options tunes retry behavior. The zero value is production-safe.
type Options struct {
	// HTTPClient overrides the transport (default http.DefaultClient).
	HTTPClient *http.Client
	// MaxAttempts bounds tries per call, including the first (default 8).
	MaxAttempts int
	// BaseBackoff and MaxBackoff bound the jittered exponential sleep
	// between attempts (defaults 100ms and 5s). The server's Retry-After
	// raises the floor when present.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed fixes the jitter stream for reproducible tests; 0 seeds from
	// the wall clock.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 8
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	return o
}

// HTTPError is a non-retryable (or retry-exhausted) HTTP failure.
type HTTPError struct {
	Status int
	Body   string
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("client: HTTP %d: %s", e.Status, strings.TrimSpace(e.Body))
}

// Client talks to one serve base URL. Safe for concurrent use.
type Client struct {
	base string
	opts Options
	mu   sync.Mutex // guards rng
	rng  *rand.Rand
}

// New builds a client for a base URL like "http://127.0.0.1:8080".
//
//sunmap:wallclock
func New(baseURL string, opts Options) *Client {
	opts = opts.withDefaults()
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano() // jitter decorrelation, not determinism
	}
	return &Client{
		base: strings.TrimRight(baseURL, "/"),
		opts: opts,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Health probes GET /healthz, retrying with backoff — also the reconnect
// primitive: it returns nil as soon as a (re)started server answers.
func (c *Client) Health(ctx context.Context) error {
	_, err := c.do(ctx, http.MethodGet, "/healthz", nil)
	return err
}

// Do executes one synchronous request via POST /v1/do.
func (c *Client) Do(ctx context.Context, req sunmap.Request) (*sunmap.Report, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	raw, err := c.do(ctx, http.MethodPost, "/v1/do", body)
	if err != nil {
		return nil, err
	}
	return sunmap.ParseReport(raw)
}

// Submit enqueues a durable job via POST /v1/jobs and returns its
// snapshot (ID, state).
func (c *Client) Submit(ctx context.Context, req sunmap.Request) (jobs.Job, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return jobs.Job{}, fmt.Errorf("client: encoding request: %w", err)
	}
	return c.jobCall(ctx, http.MethodPost, "/v1/jobs", body)
}

// Job polls one job's snapshot.
func (c *Client) Job(ctx context.Context, id string) (jobs.Job, error) {
	return c.jobCall(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
}

// Cancel requests job cancellation.
func (c *Client) Cancel(ctx context.Context, id string) (jobs.Job, error) {
	return c.jobCall(ctx, http.MethodDelete, "/v1/jobs/"+id, nil)
}

// Jobs lists live jobs.
func (c *Client) Jobs(ctx context.Context) ([]jobs.Job, error) {
	raw, err := c.do(ctx, http.MethodGet, "/v1/jobs", nil)
	if err != nil {
		return nil, err
	}
	var out struct {
		Jobs []jobs.Job `json:"jobs"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("client: decoding job list: %w", err)
	}
	return out.Jobs, nil
}

// Result fetches a terminal job's Report.
func (c *Client) Result(ctx context.Context, id string) (*sunmap.Report, error) {
	raw, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	return sunmap.ParseReport(raw)
}

// Wait polls until the job reaches a terminal state or ctx is done.
// poll <= 0 selects 500ms. Transient transport failures (including a
// server restart mid-wait) are absorbed by the per-call retries.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (jobs.Job, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	for {
		jb, err := c.Job(ctx, id)
		if err != nil {
			return jb, err
		}
		if jb.State.Terminal() {
			return jb, nil
		}
		if err := sleep(ctx, poll); err != nil {
			return jb, err
		}
	}
}

func (c *Client) jobCall(ctx context.Context, method, path string, body []byte) (jobs.Job, error) {
	raw, err := c.do(ctx, method, path, body)
	if err != nil {
		return jobs.Job{}, err
	}
	var jb jobs.Job
	if err := json.Unmarshal(raw, &jb); err != nil {
		return jobs.Job{}, fmt.Errorf("client: decoding job: %w", err)
	}
	return jb, nil
}

// do issues one HTTP call with retries: transport errors, 429 and 503
// back off (jittered exponential, floored by Retry-After) and try
// again; other non-2xx statuses return an *HTTPError immediately.
func (c *Client) do(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := sleep(ctx, c.backoff(attempt, lastErr)); err != nil {
				return nil, err
			}
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return nil, fmt.Errorf("client: %w", err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.opts.HTTPClient.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = fmt.Errorf("client: %w", err)
			continue
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = fmt.Errorf("client: reading response: %w", err)
			continue
		}
		switch {
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			return raw, nil
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			lastErr = &retryableError{
				err:        &HTTPError{Status: resp.StatusCode, Body: string(raw)},
				retryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
			}
		default:
			return nil, &HTTPError{Status: resp.StatusCode, Body: string(raw)}
		}
	}
	if re, ok := lastErr.(*retryableError); ok {
		lastErr = re.err
	}
	return nil, fmt.Errorf("client: %d attempts exhausted: %w", c.opts.MaxAttempts, lastErr)
}

// retryableError carries the server's Retry-After hint between attempts.
type retryableError struct {
	err        error
	retryAfter time.Duration
}

func (e *retryableError) Error() string { return e.err.Error() }

// backoff computes the pre-attempt sleep: exponential with equal
// jitter, capped, floored by the server's Retry-After when one came
// back on the previous response.
func (c *Client) backoff(attempt int, lastErr error) time.Duration {
	d := c.opts.BaseBackoff << (attempt - 1)
	if d > c.opts.MaxBackoff || d <= 0 {
		d = c.opts.MaxBackoff
	}
	c.mu.Lock()
	jittered := d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.mu.Unlock()
	if re, ok := lastErr.(*retryableError); ok && re.retryAfter > jittered {
		// Respect the server's hint, but never sleep past the cap by
		// more than the hint itself demands.
		jittered = re.retryAfter
	}
	return jittered
}

func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if s, err := strconv.Atoi(h); err == nil && s >= 0 {
		return time.Duration(s) * time.Second
	}
	return 0
}

// sleep is a context-aware time.Sleep.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
