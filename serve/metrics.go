package serve

import (
	"context"
	"log/slog"
	"net/http"
	"net/http/pprof"

	"sunmap/internal/obs"
)

// Observability endpoints. GET /metrics merges two registries: the
// process-wide obs.Default (monotone totals — request/op counters,
// limiter and cache outcomes, journal fsync latency) and this server's
// own registry (instantaneous gauges over the session pool and the
// serve counters). Everything a scrape reads is an atomic load or a
// channel len — never a lock that request admission could be queued
// behind, so a slow scraper cannot back-pressure the service.

// reqIDKey carries the per-request correlation id through context.
type reqIDKey struct{}

// requestID returns the request-correlation id bound by the middleware
// ("" outside a served request).
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// withRequestID is the edge middleware: every request gets a process-
// unique id (client-provided X-Request-Id wins, so a gateway's id
// follows the request in), echoed on the response and bound into the
// context for handlers, logs, and job journal records downstream.
func (sv *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = obs.NextReqID()
		}
		w.Header().Set("X-Request-Id", id)
		lg := sv.logger()
		if lg.Enabled(r.Context(), slog.LevelDebug) {
			lg.Debug("http request", obs.KeyReqID, id, "method", r.Method, "path", r.URL.Path)
		}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), reqIDKey{}, id)))
	})
}

// initMetrics builds the per-server registry: gauges over the session's
// admission pool plus the serve layer's own counters. Per-server (not
// Default) because two servers in one process must not fight over one
// gauge; /metrics writes Default first, then these.
func (sv *Server) initMetrics() {
	reg := obs.NewRegistry()
	reg.GaugeFunc("sunmap_serve_queue_waiting", "callers blocked waiting for an evaluation slot", func() float64 {
		return float64(sv.sess.Load().Waiting)
	})
	reg.GaugeFunc("sunmap_serve_inflight", "evaluation slots currently held", func() float64 {
		return float64(sv.sess.Load().InFlight)
	})
	reg.GaugeFunc("sunmap_serve_capacity", "evaluation slots configured", func() float64 {
		return float64(sv.sess.Load().Capacity)
	})
	reg.CounterFunc("sunmap_serve_shed_total", "synchronous requests shed with 429 by admission control", func() float64 {
		return float64(sv.shedCount.Load())
	})
	reg.CounterFunc("sunmap_serve_write_failures_total", "responses whose write failed after the header was committed", func() float64 {
		return float64(sv.writeFails.Load())
	})
	sv.reg = reg
}

// handleMetrics serves the merged exposition document.
func (sv *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WriteAll(w, obs.Default, sv.reg)
}

// registerObsRoutes wires the opt-in observability endpoints.
func (sv *Server) registerObsRoutes(mux *http.ServeMux) {
	if sv.opts.EnableMetrics {
		sv.initMetrics()
		mux.HandleFunc("GET /metrics", sv.handleMetrics)
	}
	if sv.opts.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}
