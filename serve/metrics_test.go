package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"sunmap"
	"sunmap/serve"
)

// promSample matches one Prometheus text-format sample line:
// name{labels} value. Kept deliberately strict — a malformed line here
// is a malformed line to every real scraper.
var promSample = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (NaN|[+-]?Inf|[+-]?[0-9][^ ]*)$`)

// parseProm validates a Prometheus text exposition and returns its
// samples keyed by full series (name plus label set). Every line must be
// a comment or a well-formed sample, and every sample's family (with the
// histogram _bucket/_sum/_count suffixes folded away) must have been
// declared by a preceding # TYPE line.
func parseProm(body string) (map[string]float64, error) {
	samples := make(map[string]float64)
	typed := make(map[string]bool)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return nil, fmt.Errorf("malformed TYPE line: %q", line)
			}
			typed[fields[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("malformed sample line: %q", line)
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("unparseable value in %q: %v", line, err)
		}
		declared := typed[m[1]]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			declared = declared || typed[strings.TrimSuffix(m[1], suffix)]
		}
		if !declared {
			return nil, fmt.Errorf("sample %q has no preceding # TYPE", line)
		}
		samples[m[1]+m[2]] = v
	}
	return samples, nil
}

// scrapeOnce fetches and validates /metrics; safe for worker goroutines
// (returns errors instead of failing the test).
func scrapeOnce(baseURL string) (map[string]float64, error) {
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return nil, fmt.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	return parseProm(string(body))
}

// TestMetricsExposition is the format acceptance test: after real
// traffic, GET /metrics serves a well-formed Prometheus document
// carrying the op, engine, limiter, jobs and serve families.
func TestMetricsExposition(t *testing.T) {
	srv, _ := newServer(t, serve.Options{EnableMetrics: true})

	req := sunmap.Request{
		ID: "m1",
		Op: sunmap.OpMap,
		Map: &sunmap.MapRequest{
			App: sunmap.AppSpec{Name: "dsp"}, Topology: "mesh-2x3",
			Mapping: sunmap.MapSpec{CapacityMBps: 1000},
		},
	}
	blob, _ := json.Marshal(req)
	if status, body := post(t, srv.URL+"/v1/do", blob); status != http.StatusOK {
		t.Fatalf("priming request: %d: %s", status, body)
	}

	samples, err := scrapeOnce(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`sunmap_op_total{op="map",outcome="ok"}`,
		`sunmap_op_seconds_count{op="map"}`,
		`sunmap_evaluate_seconds_count`,
		`sunmap_evalcache_lookups_total{outcome="miss"}`,
		`sunmap_limiter_acquire_total{outcome="immediate"}`,
		`sunmap_jobs_total{event="submitted"}`,
		`sunmap_journal_fsync_seconds_count`,
		`sunmap_serve_queue_waiting`,
		`sunmap_serve_inflight`,
		`sunmap_serve_capacity`,
		`sunmap_serve_shed_total`,
		`sunmap_serve_write_failures_total`,
	} {
		if _, ok := samples[want]; !ok {
			t.Errorf("exposition missing %s", want)
		}
	}
	if v := samples[`sunmap_op_total{op="map",outcome="ok"}`]; v < 1 {
		t.Errorf("op counter did not count the priming request: %v", v)
	}
	if v := samples[`sunmap_serve_capacity`]; v < 1 {
		t.Errorf("capacity gauge = %v, want >= 1", v)
	}
	// Histogram self-consistency: the +Inf bucket equals the count.
	inf := samples[`sunmap_evaluate_seconds_bucket{le="+Inf"}`]
	if n := samples[`sunmap_evaluate_seconds_count`]; inf != n {
		t.Errorf("evaluate histogram +Inf bucket %v != count %v", inf, n)
	}
}

// TestMetricsOptIn pins the default-off contract: without EnableMetrics
// the route does not exist.
func TestMetricsOptIn(t *testing.T) {
	srv, _ := newServer(t, serve.Options{})
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /metrics without EnableMetrics: %d, want 404", resp.StatusCode)
	}
}

// TestRequestIDPropagation: every response carries an X-Request-Id, and
// a client-provided one wins (a gateway's id follows the request in).
func TestRequestIDPropagation(t *testing.T) {
	srv, _ := newServer(t, serve.Options{})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-Id"); id == "" {
		t.Error("no X-Request-Id assigned")
	}

	req, _ := http.NewRequest("GET", srv.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "gw-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-Id"); id != "gw-42" {
		t.Errorf("client request id not echoed: got %q, want gw-42", id)
	}
}

// TestMetricsScrapeUnderLoad hammers the synchronous and async APIs from
// many goroutines while scrapers hit /metrics and /healthz concurrently
// — the race-detector gate for the whole observability plane. Counters
// observed by one scraper must be monotone across its scrapes, and every
// scrape must complete while the store and session are under load.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	ctx := context.Background()
	sess, err := sunmap.NewSession(sunmap.WithParallelism(2), sunmap.WithTrace(sunmap.NewTrace()))
	if err != nil {
		t.Fatal(err)
	}
	sv, err := serve.NewServer(ctx, sess, serve.Options{
		EnableMetrics: true,
		JobsDir:       t.TempDir(),
		JobWorkers:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sv.Handler())
	t.Cleanup(func() {
		srv.Close()
		sv.Close()
	})

	batch, _ := json.Marshal([]sunmap.Request{
		{ID: "a", Op: sunmap.OpMap, Map: &sunmap.MapRequest{
			App: sunmap.AppSpec{Name: "dsp"}, Topology: "mesh-2x3",
			Mapping: sunmap.MapSpec{CapacityMBps: 1000},
		}},
		{ID: "b", Op: "nonsense"},
	})
	job, _ := json.Marshal(sunmap.Request{
		ID: "j", Op: sunmap.OpMap, Map: &sunmap.MapRequest{
			App: sunmap.AppSpec{Name: "dsp"}, Topology: "mesh-2x3",
			Mapping: sunmap.MapSpec{CapacityMBps: 1000},
		},
	})

	const (
		loaders = 4
		iters   = 8
	)
	var wg sync.WaitGroup
	errs := make(chan error, loaders*2+2)
	hammer := func(path string, body []byte) {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(string(body)))
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	for g := 0; g < loaders; g++ {
		wg.Add(2)
		go hammer("/v1/batch", batch)
		go hammer("/v1/jobs", job)
	}
	// Two concurrent scrapers: /metrics plus the stats/healthz envelope
	// and the in-process load snapshot.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastOps, lastJobs float64
			for i := 0; i < iters*2; i++ {
				samples, err := scrapeOnce(srv.URL)
				if err != nil {
					errs <- err
					return
				}
				ops := samples[`sunmap_op_total{op="map",outcome="ok"}`]
				jobs := samples[`sunmap_jobs_total{event="submitted"}`]
				if ops < lastOps || jobs < lastJobs {
					errs <- fmt.Errorf("counters went backwards: ops %v->%v jobs %v->%v", lastOps, ops, lastJobs, jobs)
					return
				}
				lastOps, lastJobs = ops, jobs
				resp, err := http.Get(srv.URL + "/healthz")
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				_ = sess.Load()
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
