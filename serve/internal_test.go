package serve

import (
	"bytes"
	"errors"
	"log"
	"net/http"
	"strings"
	"testing"
	"time"

	"sunmap"
)

// brokenWriter is a ResponseWriter whose body writes fail after the
// header is committed — the client hung up mid-response.
type brokenWriter struct {
	hdr    http.Header
	status int
}

func (w *brokenWriter) Header() http.Header {
	if w.hdr == nil {
		w.hdr = http.Header{}
	}
	return w.hdr
}
func (w *brokenWriter) WriteHeader(status int)    { w.status = status }
func (w *brokenWriter) Write([]byte) (int, error) { return 0, errors.New("peer reset") }

// TestWriteJSONFailuresCounted: response-write failures (the errors
// writeJSON can no longer surface to that client) are counted into the
// serve stats envelope and logged, never silently dropped.
func TestWriteJSONFailuresCounted(t *testing.T) {
	sess, err := sunmap.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	var logged bytes.Buffer
	sv := &Server{sess: sess, opts: Options{ErrorLog: log.New(&logged, "", 0)}.withDefaults()}

	sv.writeJSON(&brokenWriter{}, http.StatusOK, map[string]string{"status": "ok"})
	if got := sv.writeFails.Load(); got != 1 {
		t.Fatalf("write failures = %d, want 1", got)
	}
	if !strings.Contains(logged.String(), "writing response") {
		t.Errorf("failure not logged: %q", logged.String())
	}

	// Encode failures on an otherwise healthy writer count too.
	rec := &recordingWriter{}
	sv.writeJSON(rec, http.StatusOK, map[string]any{"bad": make(chan int)})
	if got := sv.writeFails.Load(); got != 2 {
		t.Fatalf("write failures = %d, want 2", got)
	}

	st := sv.stats()
	if st.WriteFailures != 2 {
		t.Errorf("stats envelope reports %d write failures, want 2", st.WriteFailures)
	}
}

// recordingWriter accepts writes; only the payload's encodability can
// fail.
type recordingWriter struct {
	hdr    http.Header
	status int
	body   bytes.Buffer
}

func (w *recordingWriter) Header() http.Header {
	if w.hdr == nil {
		w.hdr = http.Header{}
	}
	return w.hdr
}
func (w *recordingWriter) WriteHeader(status int)      { w.status = status }
func (w *recordingWriter) Write(p []byte) (int, error) { return w.body.Write(p) }

func TestRetrySeconds(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{{"0s", 1}, {"1s", 1}, {"1001ms", 2}, {"30s", 30}}
	for _, tc := range cases {
		d, err := time.ParseDuration(tc.in)
		if err != nil {
			t.Fatal(err)
		}
		if got := retrySeconds(d); got != tc.want {
			t.Errorf("retrySeconds(%s) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
