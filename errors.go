package sunmap

import (
	"errors"
	"fmt"

	"sunmap/internal/apps"
	"sunmap/internal/topology"
)

// Sentinel errors returned (wrapped) by the public API. Match them with
// errors.Is; the wrapping message carries the offending name or request
// detail.
var (
	// ErrUnknownApp reports a built-in application name that does not
	// exist. Returned by AppByName and by requests referencing an app by
	// name.
	ErrUnknownApp = errors.New("unknown application")
	// ErrUnknownTopology reports a topology name that neither parses as a
	// library configuration nor resolves in the custom-topology registry.
	// Returned by TopologyByName and by requests referencing a topology by
	// name.
	ErrUnknownTopology = errors.New("unknown topology")
	// ErrInfeasible reports a selection in which no candidate satisfied
	// the bandwidth/area/aspect constraints. Session.Select returns it
	// alongside the evaluated report, so callers can both inspect the
	// candidate table and branch on errors.Is(err, ErrInfeasible).
	ErrInfeasible = errors.New("no feasible topology")
	// ErrBadRequest reports a structurally invalid Request (unknown op,
	// missing payload, malformed JSON). The serve layer maps it to HTTP
	// 400; everything else surfaces as 500-class.
	ErrBadRequest = errors.New("invalid request")
	// ErrInternal reports a server-side failure with no more specific
	// classification — the sentinel behind the wire kind "internal".
	// Report.Err wraps it when a remote Report carries an unrecognized
	// (or internal) error kind, so even those errors remain matchable
	// with errors.Is instead of vanishing into an opaque string.
	ErrInternal = errors.New("internal error")
)

// AppByName returns a built-in benchmark application ("vopd", "mpeg4",
// "netproc" or "dsp"). Unknown names return an error wrapping
// ErrUnknownApp. It is the error-returning replacement for the deprecated,
// panicking App.
func AppByName(name string) (*CoreGraph, error) {
	g, err := apps.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("sunmap: %w %q (want one of %v)", ErrUnknownApp, name, apps.Names())
	}
	return g, nil
}

// TopologyByName rebuilds a topology from its canonical name
// (e.g. "mesh-3x4", "butterfly-4ary2fly", "clos-m4n4r4"), including
// synthesized topologies registered by SynthCandidates or a Select run
// with Synth enabled. Unresolvable names return an error wrapping
// ErrUnknownTopology.
func TopologyByName(name string) (Topology, error) {
	t, err := topology.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("sunmap: %w %q", ErrUnknownTopology, name)
	}
	return t, nil
}
