// Custom application: define a core graph in SUNMAP's text format (the
// kind of file a user would write for their own SoC), embed it in a
// request, and explore objectives across technology nodes — the
// design-space exploration the paper's Section 1 advertises. One Session
// hosts the whole 3x3 sweep; Batch fans the nine selections across the
// engine pool and returns them in request order.
package main

import (
	"context"
	"fmt"
	"log"

	"sunmap"
)

const design = `
app camera-pipeline
core sensor   area=2.0
core isp      area=5.0  soft
core scaler   area=3.0  soft aspect=0.5,2
core encoder  area=6.0  soft
core dram     area=8.0
core cpu      area=5.5
core dma      area=1.5  soft
core usb      area=2.0

flow sensor -> isp     450
flow isp -> scaler     300
flow scaler -> encoder 250
flow encoder -> dram   180
flow dram -> encoder   120
flow cpu -> dram       200
flow dram -> cpu       200
flow dma -> dram       150
flow dram -> usb       90
flow cpu -> dma        20
`

func main() {
	ctx := context.Background()
	sess, err := sunmap.NewSession()
	if err != nil {
		log.Fatal(err)
	}

	objectives := []string{"delay", "area", "power"}
	nodes := []string{"130nm", "100nm", "65nm"}

	// One Request per (node, objective) pair; Batch preserves order, so
	// reports[i] matches requests[i].
	var requests []sunmap.Request
	for _, node := range nodes {
		for _, obj := range objectives {
			requests = append(requests, sunmap.Request{
				ID: node + "/" + obj,
				Op: sunmap.OpSelect,
				Select: &sunmap.SelectRequest{
					App: sunmap.AppSpec{Text: design},
					Mapping: sunmap.MapSpec{
						Routing:      "MP",
						Objective:    obj,
						CapacityMBps: 500,
						Tech:         node,
					},
				},
			})
		}
	}
	reports, err := sess.Batch(ctx, requests)
	if err != nil {
		log.Fatal(err)
	}

	i := 0
	for _, node := range nodes {
		fmt.Printf("\n--- %s ---\n", node)
		for _, obj := range objectives {
			rep := reports[i]
			i++
			if rep.Error != "" {
				fmt.Printf("%-10s %s\n", "min-"+obj, rep.Error)
				continue
			}
			b := rep.Select.Best
			fmt.Printf("%-10s -> %-22s hops %.2f, %.1f mm2, %.1f mW\n",
				"min-"+obj, rep.Select.Topology, b.AvgHops, b.DesignAreaMM2, b.PowerMW)
		}
	}
	fmt.Printf("\ncache after the sweep: %+v\n", sess.CacheStats())
}
