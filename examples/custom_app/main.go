// Custom application: define a core graph in SUNMAP's text format (the
// kind of file a user would write for their own SoC), load it, and explore
// objectives across technology nodes — the design-space exploration the
// paper's Section 1 advertises.
package main

import (
	"fmt"
	"log"
	"strings"

	"sunmap"
	"sunmap/internal/mapping"
	"sunmap/internal/tech"
)

const design = `
app camera-pipeline
core sensor   area=2.0
core isp      area=5.0  soft
core scaler   area=3.0  soft aspect=0.5,2
core encoder  area=6.0  soft
core dram     area=8.0
core cpu      area=5.5
core dma      area=1.5  soft
core usb      area=2.0

flow sensor -> isp     450
flow isp -> scaler     300
flow scaler -> encoder 250
flow encoder -> dram   180
flow dram -> encoder   120
flow cpu -> dram       200
flow dram -> cpu       200
flow dma -> dram       150
flow dram -> usb       90
flow cpu -> dma        20
`

func main() {
	app, err := sunmap.LoadApp(strings.NewReader(design))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("loaded:", app)

	objectives := []struct {
		name string
		obj  mapping.Objective
	}{
		{"min-delay", sunmap.MinDelay},
		{"min-area", sunmap.MinArea},
		{"min-power", sunmap.MinPower},
	}
	nodes := []sunmap.Tech{tech.Tech130nm(), tech.Tech100nm(), tech.Tech65nm()}

	for _, node := range nodes {
		fmt.Printf("\n--- %s ---\n", node.Name)
		for _, o := range objectives {
			sel, err := sunmap.Select(sunmap.SelectConfig{
				App: app,
				Mapping: sunmap.MapOptions{
					Routing:      sunmap.MinPath,
					Objective:    o.obj,
					CapacityMBps: 500,
					Tech:         node,
				},
			})
			if err != nil {
				log.Fatal(err)
			}
			if sel.Best == nil {
				fmt.Printf("%-10s no feasible topology\n", o.name)
				continue
			}
			b := sel.Best
			fmt.Printf("%-10s -> %-22s hops %.2f, %.1f mm2, %.1f mW\n",
				o.name, b.Topology.Name(), b.AvgHops, b.DesignAreaMM2, b.PowerMW)
		}
	}
}
