// Quickstart: run the full SUNMAP flow on the VOPD benchmark through the
// Session API — select the best topology under a min-delay objective with
// 500 MB/s links, print the winning mapping, and generate the SystemC
// design (Section 6.1 of the paper; the butterfly wins).
package main

import (
	"context"
	"fmt"
	"log"

	"sunmap"
)

func main() {
	ctx := context.Background()
	sess, err := sunmap.NewSession()
	if err != nil {
		log.Fatal(err)
	}

	rep, err := sess.Select(ctx, sunmap.SelectRequest{
		App: sunmap.AppSpec{Name: "vopd"},
		Mapping: sunmap.MapSpec{
			Routing:      "MP",
			Objective:    "delay",
			CapacityMBps: 500,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %8s %9s %10s\n", "topology", "avg hops", "area mm2", "power mW")
	for _, r := range rep.Rows {
		fmt.Printf("%-22s %8.2f %9.2f %10.1f\n", r.Topology, r.AvgHops, r.AreaMM2, r.PowerMW)
	}

	best := rep.Best
	fmt.Printf("\nselected: %s (avg hops %.2f, %.1f mW)\n", rep.Topology, best.AvgHops, best.PowerMW)
	for _, a := range best.Assign {
		fmt.Printf("  %-8s -> terminal %d\n", a.Core, a.Terminal)
	}

	// Phase 3: generate the SystemC network description. The mapping
	// replays from the session cache — no re-evaluation.
	gen, err := sess.Generate(ctx, sunmap.GenerateRequest{
		App:      sunmap.AppSpec{Name: "vopd"},
		Topology: rep.Topology,
		Mapping:  sunmap.MapSpec{CapacityMBps: 500},
	})
	if err != nil {
		log.Fatal(err)
	}
	names := make([]string, 0, len(gen.Files))
	for _, f := range gen.Files {
		names = append(names, f.Name)
	}
	fmt.Printf("\ngenerated SystemC files: %v\n", names)
}
