// Quickstart: run the full SUNMAP flow on the VOPD benchmark — select the
// best topology under a min-delay objective with 500 MB/s links and print
// the winning mapping (Section 6.1 of the paper; the butterfly wins).
package main

import (
	"fmt"
	"log"

	"sunmap"
)

func main() {
	app := sunmap.App("vopd")
	fmt.Println("application:", app)

	sel, err := sunmap.Select(sunmap.SelectConfig{
		App: app,
		Mapping: sunmap.MapOptions{
			Routing:      sunmap.MinPath,
			Objective:    sunmap.MinDelay,
			CapacityMBps: 500,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %8s %9s %10s\n", "topology", "avg hops", "area mm2", "power mW")
	for _, r := range sel.Summaries() {
		fmt.Printf("%-22s %8.2f %9.2f %10.1f\n", r.Topology, r.AvgHops, r.AreaMM2, r.PowerMW)
	}

	best := sel.Best
	fmt.Printf("\nselected: %s (avg hops %.2f, %.1f mW)\n",
		best.Topology.Name(), best.AvgHops, best.PowerMW)
	for c, term := range best.Assign {
		fmt.Printf("  %-8s -> terminal %d\n", app.Core(c).Name, term)
	}

	// Phase 3: generate the SystemC network description.
	gen, err := sunmap.Generate(app, best, sunmap.Tech100nm())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngenerated SystemC files: %v\n", gen.FileNames())
}
