// Topology search: machine-discovered networks versus the library for
// the MPEG-4 decoder at fixed link bandwidth.
//
// SUNMAP picks the best of a fixed topology library; the search engine
// (internal/search) anneals the network itself — an arbitrary digraph
// edge set under radix, connectivity and deadlock-freedom constraints.
// This example runs both at the same 1000 MB/s link capacity: a full
// library selection, then a seeded annealing search, and compares the
// winning costs. The discovered topology lands in the session's scope,
// so the follow-up fault sweep addresses it by name like any library
// network. Finally it drops the capacity to 500 MB/s — where every
// library candidate is bandwidth-infeasible (MPEG-4 carries a 910 MB/s
// flow, and single-path routing cannot split it) — and shows the search
// still finding a feasible network by co-locating the heavy flow's
// endpoints on one switch.
//
// Run with:
//
//	go run ./examples/topology_search
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"sunmap"
)

func main() {
	ctx := context.Background()
	sess, err := sunmap.NewSession()
	if err != nil {
		log.Fatal(err)
	}

	app := sunmap.AppSpec{Name: "mpeg4"}
	mapping := sunmap.MapSpec{Routing: "MP", Objective: "delay", CapacityMBps: 1000}

	// Phase 1/2 baseline: the best the fixed library can do at 1000 MB/s.
	sel, err := sess.Select(ctx, sunmap.SelectRequest{App: app, Mapping: mapping})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("library best at 1000 MB/s: %s, cost %.4f (avg hops %.3f)\n",
		sel.Topology, sel.Best.Cost, sel.Best.AvgHops)

	// The annealing search over arbitrary digraphs, same capacity. The
	// result is deterministic for the seed at any session parallelism.
	rep, err := sess.Search(ctx, sunmap.SearchRequest{
		App:     app,
		Mapping: mapping,
		Search:  sunmap.SearchOptions{Budget: 100000, Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search (seed %d, %d evaluations): %s\n", rep.Seed, rep.Evaluations, rep.Topology)
	fmt.Printf("  %d switches, links %v\n", rep.Routers, rep.BiLinks)
	fmt.Printf("  cost %.4f (avg hops %.3f, max link %.0f MB/s) — %.1f%% below the library\n",
		rep.Best.Cost, rep.Best.AvgHops, rep.Best.MaxLinkLoadMBps,
		100*(sel.Best.Cost-rep.Best.Cost)/sel.Best.Cost)

	// The discovered name resolves in this session like a library name:
	// sweep every single-channel failure of the discovered network.
	frep, err := sess.FaultSweep(ctx, sunmap.FaultSweepRequest{
		App:      app,
		Topology: rep.Topology,
		Mapping:  mapping,
		Fault:    sunmap.FaultSpec{K: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  survivability under single channel faults: %.3f over %d scenarios\n",
		frep.Survivability, frep.Scenarios)

	// At 500 MB/s the whole library is bandwidth-infeasible — but a
	// discovered topology can put the 910 MB/s producer and consumer on
	// the same switch, where their flow crosses no link at all.
	tight := mapping
	tight.CapacityMBps = 500
	if _, err := sess.Select(ctx, sunmap.SelectRequest{App: app, Mapping: tight}); !errors.Is(err, sunmap.ErrInfeasible) {
		log.Fatalf("expected the library to be infeasible at 500 MB/s, got %v", err)
	}
	fmt.Println("library at 500 MB/s: nothing feasible")
	rep2, err := sess.Search(ctx, sunmap.SearchRequest{
		App:     app,
		Mapping: tight,
		Search:  sunmap.SearchOptions{Budget: 100000, Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search at 500 MB/s: %s feasible, cost %.4f, max link %.0f MB/s\n",
		rep2.Topology, rep2.Best.Cost, rep2.Best.MaxLinkLoadMBps)
}
