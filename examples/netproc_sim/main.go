// NetProc latency study: reproduce Fig. 8(b) — simulate the 16-node
// network processor's candidate topologies under adversarial traffic and
// watch the Clos network's path diversity win at high injection rates.
// Each topology is one Session.Simulate request sweeping the full rate
// list.
package main

import (
	"context"
	"fmt"
	"log"

	"sunmap"
)

func main() {
	ctx := context.Background()
	rates := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5}
	names := []string{"mesh-4x4", "torus-4x4", "clos-m4n4r4", "butterfly-4ary2fly"}

	sess, err := sunmap.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	curves := make(map[string]*sunmap.SimReport)
	for _, name := range names {
		rep, err := sess.Simulate(ctx, sunmap.SimRequest{
			Topology:      name,
			Pattern:       "adversarial",
			Rates:         rates,
			Seed:          7,
			WarmupCycles:  1000,
			MeasureCycles: 4000,
			DrainCycles:   6000,
		})
		if err != nil {
			log.Fatal(err)
		}
		curves[name] = rep
	}

	fmt.Printf("avg packet latency (cycles), adversarial traffic per topology\n")
	fmt.Printf("%-6s", "rate")
	for _, n := range names {
		fmt.Printf(" %20s", n)
	}
	fmt.Println()
	for i, rate := range rates {
		fmt.Printf("%-6.2f", rate)
		for _, n := range names {
			row := curves[n].Rows[i]
			cell := fmt.Sprintf("%.1f", row.AvgLatencyCycles)
			if row.Saturated {
				cell += " (sat)"
			}
			fmt.Printf(" %20s", cell)
		}
		fmt.Println()
	}
	fmt.Println("\nthe clos stays low where single-path topologies saturate (Fig. 8b)")
}
