// NetProc latency study: reproduce Fig. 8(b) — simulate the 16-node
// network processor's candidate topologies under adversarial traffic and
// watch the Clos network's path diversity win at high injection rates.
package main

import (
	"fmt"
	"log"

	"sunmap"
	"sunmap/internal/sim"
)

func main() {
	rates := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5}
	names := []string{"mesh-4x4", "torus-4x4", "clos-m4n4r4", "butterfly-4ary2fly"}

	curves := make(map[string][]*sunmap.SimStats)
	for _, name := range names {
		topo, err := sunmap.TopologyByName(name)
		if err != nil {
			log.Fatal(err)
		}
		routes, err := sunmap.BuildRoutes(topo)
		if err != nil {
			log.Fatal(err)
		}
		stats, err := sim.Sweep(sunmap.SimConfig{
			Topo:          topo,
			Routes:        routes,
			Pattern:       sunmap.AdversarialPattern(topo),
			Seed:          7,
			WarmupCycles:  1000,
			MeasureCycles: 4000,
			DrainCycles:   6000,
		}, rates)
		if err != nil {
			log.Fatal(err)
		}
		curves[name] = stats
	}

	fmt.Printf("avg packet latency (cycles), adversarial traffic per topology\n")
	fmt.Printf("%-6s", "rate")
	for _, n := range names {
		fmt.Printf(" %20s", n)
	}
	fmt.Println()
	for i, rate := range rates {
		fmt.Printf("%-6.2f", rate)
		for _, n := range names {
			st := curves[n][i]
			cell := fmt.Sprintf("%.1f", st.AvgLatencyCycles)
			if st.Saturated {
				cell += " (sat)"
			}
			fmt.Printf(" %20s", cell)
		}
		fmt.Println()
	}
	fmt.Println("\nthe clos stays low where single-path topologies saturate (Fig. 8b)")
}
