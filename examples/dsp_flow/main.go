// DSP end-to-end flow: reproduce Section 6.4 — run SUNMAP on the 6-core
// DSP filter, verify the butterfly wins, print its floorplan (Fig. 10b),
// simulate the mapped design with trace-driven traffic (Fig. 10c) and
// emit the SystemC network (Fig. 11's artifact) to ./dsp_noc/. The whole
// flow drives one Session, so the selection, the trace simulation's
// mapping and the generation all share memoized design points.
package main

import (
	"context"
	"fmt"
	"log"

	"sunmap"
)

func main() {
	ctx := context.Background()
	sess, err := sunmap.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	app := sunmap.AppSpec{Name: "dsp"}
	mapping := sunmap.MapSpec{
		Routing:      "MP",
		Objective:    "delay",
		CapacityMBps: 1000, // the DSP spine runs at 600 MB/s
	}

	rep, err := sess.Select(ctx, sunmap.SelectRequest{App: app, Mapping: mapping})
	if err != nil {
		log.Fatal(err)
	}
	best := rep.Best
	fmt.Printf("selected: %s (avg hops %.2f)\n", rep.Topology, best.AvgHops)

	// Fig. 10(b): the butterfly floorplan.
	if fp := best.Floorplan; fp != nil {
		fmt.Printf("floorplan: chip %.2f x %.2f mm\n", fp.ChipWMM, fp.ChipHMM)
		for _, b := range fp.Blocks {
			fmt.Printf("  %-14s at (%5.2f, %5.2f) %5.2f x %5.2f mm\n", b.Name, b.X, b.Y, b.W, b.H)
		}
	}

	// Fig. 10(c): trace-driven cycle-accurate latency of the mapping. The
	// "trace" pattern re-maps the app onto the topology (a session-cache
	// hit) and replays its flows with bandwidth-proportional injection.
	simRep, err := sess.Simulate(ctx, sunmap.SimRequest{
		Topology: rep.Topology,
		Pattern:  "trace",
		App:      &app,
		Mapping:  &mapping,
		Rates:    []float64{0.15},
		Seed:     11,
	})
	if err != nil {
		log.Fatal(err)
	}
	row := simRep.Rows[0]
	fmt.Printf("trace-driven avg packet latency: %.1f cycles over %d packets\n",
		row.AvgLatencyCycles, row.MeasuredPackets)

	// Fig. 11: generate the SystemC design.
	gen, err := sess.Generate(ctx, sunmap.GenerateRequest{
		App:      app,
		Topology: rep.Topology,
		Mapping:  mapping,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := gen.WriteTo("dsp_noc"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SystemC design written to dsp_noc/ (%d files, top module %s)\n",
		len(gen.Files), gen.TopModule)
}
