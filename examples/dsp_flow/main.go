// DSP end-to-end flow: reproduce Section 6.4 — run SUNMAP on the 6-core
// DSP filter, verify the butterfly wins, print its floorplan (Fig. 10b),
// simulate the mapped design with trace-driven traffic (Fig. 10c) and
// emit the SystemC network (Fig. 11's artifact) to ./dsp_noc/.
package main

import (
	"fmt"
	"log"

	"sunmap"
	"sunmap/internal/sim"
	"sunmap/internal/traffic"
)

func main() {
	app := sunmap.App("dsp")
	sel, err := sunmap.Select(sunmap.SelectConfig{
		App: app,
		Mapping: sunmap.MapOptions{
			Routing:      sunmap.MinPath,
			Objective:    sunmap.MinDelay,
			CapacityMBps: 1000, // the DSP spine runs at 600 MB/s
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	best := sel.Best
	fmt.Printf("selected: %s (avg hops %.2f)\n", best.Topology.Name(), best.AvgHops)

	// Fig. 10(b): the butterfly floorplan.
	if fp := best.Floorplan; fp != nil {
		fmt.Printf("floorplan: chip %.2f x %.2f mm\n", fp.ChipWMM, fp.ChipHMM)
		for _, b := range fp.Blocks {
			fmt.Printf("  %-14s at (%5.2f, %5.2f) %5.2f x %5.2f mm\n", b.Name, b.X, b.Y, b.W, b.H)
		}
	}

	// Fig. 10(c): trace-driven cycle-accurate latency of the mapping.
	routes, err := sim.BuildRoutesFromResult(best.Topology, best.Assign, best.Route)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := traffic.NewTrace(app, best.Assign)
	if err != nil {
		log.Fatal(err)
	}
	st, err := sunmap.Simulate(sunmap.SimConfig{
		Topo:            best.Topology,
		Routes:          routes,
		Pattern:         trace,
		SourceShare:     trace.SourceShare(),
		ActiveTerminals: best.Assign,
		InjectionRate:   0.15,
		Seed:            11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace-driven avg packet latency: %.1f cycles over %d packets\n",
		st.AvgLatencyCycles, st.MeasuredPackets)

	// Fig. 11: generate the SystemC design.
	gen, err := sunmap.Generate(app, best, sunmap.Tech100nm())
	if err != nil {
		log.Fatal(err)
	}
	if err := gen.WriteTo("dsp_noc"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SystemC design written to dsp_noc/ (%d files, top module %s)\n",
		len(gen.Files), gen.TopModule)
}
