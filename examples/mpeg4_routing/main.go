// MPEG4 routing exploration: reproduce the Section 6.3 study — the MPEG4
// decoder's 910 MB/s SDRAM flow defeats every single-path routing function
// on a mesh; only traffic splitting fits under 500 MB/s links. The program
// prints the Fig. 9(a) bandwidth bars and the Fig. 9(b) area-power Pareto
// points.
package main

import (
	"fmt"
	"log"

	"sunmap"
)

func main() {
	app := sunmap.App("mpeg4")
	mesh, err := sunmap.TopologyByName("mesh-3x4")
	if err != nil {
		log.Fatal(err)
	}

	// Fig. 9(a): minimum required link bandwidth per routing function.
	rows, err := sunmap.RoutingSweep(app, mesh, sunmap.MapOptions{
		Objective:    sunmap.MinDelay,
		CapacityMBps: 500,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("minimum required link bandwidth on", mesh.Name())
	for _, r := range rows {
		marker := ""
		if r.FeasibleAt500 {
			marker = "  <- fits the 500 MB/s links"
		}
		fmt.Printf("  %-3v %8.1f MB/s%s\n", r.Function, r.RequiredMBps, marker)
	}

	// Fig. 9(b): area-power trade-off points under split routing.
	pts, err := sunmap.ParetoExplore(app, mesh, sunmap.MapOptions{
		Routing:      sunmap.SplitMin,
		CapacityMBps: 500,
	}, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\narea-power design points (P = Pareto-optimal):")
	for _, p := range pts {
		mark := " "
		if p.Dominant {
			mark = "P"
		}
		fmt.Printf("  %s area %6.2f mm2  power %6.1f mW  hops %.2f\n",
			mark, p.AreaMM2, p.PowerMW, p.AvgHops)
	}
}
