// MPEG4 routing exploration: reproduce the Section 6.3 study — the MPEG4
// decoder's 910 MB/s SDRAM flow defeats every single-path routing function
// on a mesh; only traffic splitting fits under 500 MB/s links. The program
// prints the Fig. 9(a) bandwidth bars and the Fig. 9(b) area-power Pareto
// points, both through one Session so the explorations share the
// evaluation cache.
package main

import (
	"context"
	"fmt"
	"log"

	"sunmap"
)

func main() {
	ctx := context.Background()
	sess, err := sunmap.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	app := sunmap.AppSpec{Name: "mpeg4"}

	// Fig. 9(a): minimum required link bandwidth per routing function.
	sweep, err := sess.RoutingSweep(ctx, sunmap.SweepRequest{
		App:      app,
		Topology: "mesh-3x4",
		Mapping:  sunmap.MapSpec{Objective: "delay", CapacityMBps: 500},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("minimum required link bandwidth on", sweep.Topology)
	for _, r := range sweep.Rows {
		marker := ""
		if r.FeasibleAtCap {
			marker = fmt.Sprintf("  <- fits the %.0f MB/s links", sweep.CapacityMBps)
		}
		fmt.Printf("  %-3s %8.1f MB/s%s\n", r.Function, r.RequiredMBps, marker)
	}

	// Fig. 9(b): area-power trade-off points under split routing.
	pareto, err := sess.ParetoExplore(ctx, sunmap.ParetoRequest{
		App:      app,
		Topology: "mesh-3x4",
		Mapping:  sunmap.MapSpec{Routing: "SM", CapacityMBps: 500},
		Steps:    4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\narea-power design points (P = Pareto-optimal):")
	for _, p := range pareto.Points {
		mark := " "
		if p.Dominant {
			mark = "P"
		}
		fmt.Printf("  %s area %6.2f mm2  power %6.1f mW  hops %.2f\n",
			mark, p.AreaMM2, p.PowerMW, p.AvgHops)
	}
}
