// Fault sweep: survivability of a library topology versus a synthesized
// application-specific one for the MPEG-4 decoder.
//
// A denser network costs area and power but leaves more surviving paths
// when links wear out. This example maps MPEG-4 onto the 3x4 mesh and
// onto a min-cut cluster topology synthesized for it, sweeps every
// single and double channel failure (exhaustive k <= 2 enumeration),
// and compares survivability and degradation. It then runs a
// reliability-aware selection (WithFault), where the survivability score
// joins the ranking, and finishes with a cycle-accurate fault injection:
// the worst-case failure strikes mid-run and delivered throughput is
// measured before and after.
//
// Run with:
//
//	go run ./examples/fault_sweep
package main

import (
	"context"
	"fmt"
	"log"

	"sunmap"
)

func main() {
	ctx := context.Background()

	// Synthesis-enabled session with a session-default failure model:
	// selections rank with the reliability axis, sweeps inherit nothing
	// (FaultSweep requests carry their own spec).
	sess, err := sunmap.NewSession(
		sunmap.WithSynth(sunmap.SynthOptions{}),
		sunmap.WithFault(sunmap.FaultSpec{K: 1}),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Register the synthesized candidates so they are addressable by
	// name, and pick the cluster topology.
	app, err := sunmap.AppByName("mpeg4")
	if err != nil {
		log.Fatal(err)
	}
	cands, err := sunmap.SynthCandidates(app, sunmap.SynthOptions{})
	if err != nil {
		log.Fatal(err)
	}
	synthName := cands[0].Name()

	// Survivability head-to-head: library mesh vs synthesized clusters,
	// single and double channel faults.
	mapping := sunmap.MapSpec{Routing: "MP", Objective: "delay", CapacityMBps: 1000}
	fmt.Printf("%-26s %2s %10s %14s %10s %14s\n",
		"topology", "k", "scenarios", "survivability", "connected", "worst MB/s")
	for _, topo := range []string{"mesh-3x4", synthName} {
		for k := 1; k <= 2; k++ {
			rep, err := sess.FaultSweep(ctx, sunmap.FaultSweepRequest{
				App:      sunmap.AppSpec{Name: "mpeg4"},
				Topology: topo,
				Mapping:  mapping,
				Fault:    sunmap.FaultSpec{K: k},
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-26s %2d %10d %14.3f %10.3f %14.1f\n",
				rep.Topology, rep.K, rep.Scenarios, rep.Survivability,
				rep.ConnectedFrac, rep.WorstMaxLoadMBps)
		}
	}

	// Reliability-aware selection: the WithFault session default sweeps
	// every feasible candidate and folds survivability into Phase 2.
	sel, err := sess.Select(ctx, sunmap.SelectRequest{
		App:     sunmap.AppSpec{Name: "mpeg4"},
		Mapping: mapping,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreliability-aware selection: %s (%d candidates, %d feasible)\n",
		sel.Topology, sel.Candidates, sel.Feasible)
	for _, r := range sel.Rows {
		if !r.Feasible || r.Survivability == nil {
			continue
		}
		fmt.Printf("  %-26s survivability %.3f, avg hops %.2f, %.1f mW\n",
			r.Topology, *r.Survivability, r.AvgHops, r.PowerMW)
	}

	// Cycle-accurate fault injection on the selected design: the worst
	// surviving failure strikes at cycle 3000; packets injected after it
	// use degraded-mode reroutes.
	frep, err := sess.FaultSweep(ctx, sunmap.FaultSweepRequest{
		App:      sunmap.AppSpec{Name: "mpeg4"},
		Topology: sel.Topology,
		Mapping:  mapping,
		Fault:    sunmap.FaultSpec{K: 1},
		SimRate:  0.15,
	})
	if err != nil {
		log.Fatal(err)
	}
	if s := frep.Sim; s != nil {
		fmt.Printf("\nfault injection on %s at cycle %d (links %v):\n",
			frep.Topology, s.FaultCycle, s.FailedLinks)
		fmt.Printf("  throughput %.3f -> %.3f flits/cycle/terminal, %d packets stranded\n",
			s.PreFaultFPC, s.PostFaultFPC, s.UnfinishedPackets)
	}
}
