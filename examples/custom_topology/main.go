// Custom topology synthesis: generate application-specific candidates for
// the MPEG-4 decoder and let them compete with the standard library in one
// Select call.
//
// The MPEG-4 core graph is hub-shaped: three SDRAM flows (910, 670 and
// 600 MB/s) exceed any 700 MB/s link, so under single-path routing no
// library topology is feasible — every one must carry the 910 MB/s flow on
// some link. Min-cut clustering puts the hub and its heaviest neighbour on
// the same switch, turning that flow into a zero-link, intra-switch route;
// the synthesized cluster topologies become the only feasible designs and
// win the selection outright, the central result of the topology-synthesis
// follow-on literature (e.g. arXiv:1402.2462).
//
// Run with:
//
//	go run ./examples/custom_topology
package main

import (
	"context"
	"fmt"
	"log"

	"sunmap"
)

func main() {
	ctx := context.Background()
	app, err := sunmap.AppByName("mpeg4")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("application:", app)

	// Inspect the synthesized candidates on their own first.
	cands, err := sunmap.SynthCandidates(app, sunmap.SynthOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsynthesized candidates (switch radix <= 4):\n")
	for _, c := range cands {
		fmt.Printf("  %-26s %2d switches, %2d physical links, %2d terminals\n",
			c.Name(), c.NumRouters(), sunmap.PhysicalLinks(c), c.NumTerminals())
	}

	// One Select request on a synthesis-enabled session: the full standard
	// library plus the synthesized candidates, 700 MB/s links, min-delay.
	sess, err := sunmap.NewSession(sunmap.WithSynth(sunmap.SynthOptions{}))
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sess.Select(ctx, sunmap.SelectRequest{
		App: sunmap.AppSpec{Name: "mpeg4"},
		Mapping: sunmap.MapSpec{
			Routing:      "MP",
			Objective:    "delay",
			CapacityMBps: 700,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d candidates (%d synthesized), %d feasible at 700 MB/s links\n",
		rep.Candidates, rep.Synthesized, rep.Feasible)
	fmt.Printf("%-26s %8s %9s %10s %9s %9s\n",
		"topology", "avg hops", "area mm2", "power mW", "max MB/s", "feasible")
	for _, r := range rep.Rows {
		fmt.Printf("%-26s %8.2f %9.2f %10.1f %9.1f %9v\n",
			r.Topology, r.AvgHops, r.AreaMM2, r.PowerMW, r.MaxLoadMBps, r.Feasible)
	}

	best := rep.Best
	fmt.Printf("\nselected: %s (avg hops %.2f, %.2f mm^2, %.1f mW)\n",
		rep.Topology, best.AvgHops, best.DesignAreaMM2, best.PowerMW)

	// Synthesized winners flow through the rest of the pipeline unchanged:
	// the Select run registered the winner in the topology name registry,
	// so a simulate request can reference it by name.
	simRep, err := sess.Simulate(ctx, sunmap.SimRequest{
		Topology:      rep.Topology,
		Pattern:       "uniform",
		Rates:         []float64{0.1},
		Seed:          7,
		WarmupCycles:  1000,
		MeasureCycles: 4000,
		DrainCycles:   6000,
	})
	if err != nil {
		log.Fatal(err)
	}
	row := simRep.Rows[0]
	fmt.Printf("simulated %s at 0.1 flits/cycle/terminal: avg latency %.1f cycles, throughput %.3f flits/cycle/terminal\n",
		simRep.Topology, row.AvgLatencyCycles, row.ThroughputFPC)
}
