package sunmap_test

// End-to-end tests of the FaultSweep request kind and the reliability
// axis on Select/ParetoExplore — the Session surface of internal/fault.

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"sunmap"
)

func faultSweepRequest() sunmap.FaultSweepRequest {
	return sunmap.FaultSweepRequest{
		App:      sunmap.AppSpec{Name: "vopd"},
		Topology: "mesh-3x4",
		Mapping:  sunmap.MapSpec{Routing: "MP", CapacityMBps: 500},
		Fault:    sunmap.FaultSpec{K: 1},
	}
}

// TestFaultSweepEndToEnd runs a FaultSweep through Session.Do and checks
// the report's internal consistency.
func TestFaultSweepEndToEnd(t *testing.T) {
	sess, err := sunmap.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	req := faultSweepRequest()
	rep := sess.Do(context.Background(), sunmap.Request{
		ID: "fs", Op: sunmap.OpFaultSweep, FaultSweep: &req,
	})
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	fr := rep.FaultSweep
	if fr == nil {
		t.Fatal("no fault-sweep payload")
	}
	if fr.App != "vopd" || fr.Topology != "mesh-3x4" || fr.K != 1 || fr.Elements != "links" {
		t.Errorf("header wrong: %+v", fr)
	}
	if fr.Routing != "MP" {
		t.Errorf("degraded routing %q, want MP", fr.Routing)
	}
	if !fr.Exhaustive || fr.Scenarios != 17 { // 3x4 mesh: 17 channels
		t.Errorf("scenarios %d (exhaustive=%v), want 17 exhaustive", fr.Scenarios, fr.Exhaustive)
	}
	if fr.Survivability < 0 || fr.Survivability > 1 || fr.ConnectedFrac < fr.Survivability {
		t.Errorf("implausible survivability %g / connected %g", fr.Survivability, fr.ConnectedFrac)
	}
	if fr.BaselineMaxLoadMBps <= 0 || fr.WorstMaxLoadMBps < fr.BaselineMaxLoadMBps {
		t.Errorf("degradation inverted: baseline %g, worst %g", fr.BaselineMaxLoadMBps, fr.WorstMaxLoadMBps)
	}
	if fr.ExpectedMaxLoadMBps > fr.WorstMaxLoadMBps {
		t.Errorf("expected load %g above worst %g", fr.ExpectedMaxLoadMBps, fr.WorstMaxLoadMBps)
	}
	if len(fr.WorstLinks) == 0 {
		t.Error("no worst-case scenario identified")
	}
	if fr.Sim != nil {
		t.Error("sim report present without sim_rate")
	}
}

// TestFaultSweepSimInjection runs the optional cycle-accurate fault
// injection and checks the throughput split.
func TestFaultSweepSimInjection(t *testing.T) {
	sess, err := sunmap.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	req := faultSweepRequest()
	req.SimRate = 0.2
	req.SimCycle = 2000
	fr, err := sess.FaultSweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Sim == nil {
		t.Fatal("no sim report despite sim_rate")
	}
	if fr.Sim.FaultCycle != 2000 || fr.Sim.Rate != 0.2 || !fr.Sim.Rerouted {
		t.Errorf("sim header wrong: %+v", fr.Sim)
	}
	if !reflect.DeepEqual(fr.Sim.FailedLinks, fr.WorstLinks) {
		t.Errorf("sim failed links %v != worst-case links %v", fr.Sim.FailedLinks, fr.WorstLinks)
	}
	if fr.Sim.PreFaultFPC <= 0 {
		t.Errorf("no pre-fault throughput: %+v", fr.Sim)
	}
	if fr.Sim.PostFaultFPC <= 0 {
		t.Errorf("degraded rerouting delivered nothing post-fault: %+v", fr.Sim)
	}
}

// TestFaultSweepDeterministicAcrossParallelism pins byte-identical
// reports for sequential and parallel sessions.
func TestFaultSweepDeterministicAcrossParallelism(t *testing.T) {
	req := faultSweepRequest()
	req.Fault.K = 2
	req.Fault.Elements = "both"
	var reports []*sunmap.FaultReport
	for _, par := range []int{1, 8} {
		sess, err := sunmap.NewSession(sunmap.WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		fr, err := sess.FaultSweep(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, fr)
	}
	a, _ := json.Marshal(reports[0])
	b, _ := json.Marshal(reports[1])
	if string(a) != string(b) {
		t.Errorf("reports differ across parallelism:\n%s\n%s", a, b)
	}
}

// TestFaultSweepValidation checks the bad-input paths classify as
// bad_request on the wire.
func TestFaultSweepValidation(t *testing.T) {
	sess, err := sunmap.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	cases := []func(*sunmap.FaultSweepRequest){
		func(r *sunmap.FaultSweepRequest) { r.Fault.K = -1 },
		func(r *sunmap.FaultSweepRequest) { r.Fault.Elements = "gremlins" },
		func(r *sunmap.FaultSweepRequest) { r.Fault.K = 10000 },
		func(r *sunmap.FaultSweepRequest) { r.SimRate = 1.5 },
		func(r *sunmap.FaultSweepRequest) { r.SimRate = 0.1; r.SimCycle = -5 },
		func(r *sunmap.FaultSweepRequest) { r.SimRate = 0.1; r.SimCycle = 8500 },
		func(r *sunmap.FaultSweepRequest) { r.Topology = "nope-7x7" },
	}
	for i, mutate := range cases {
		req := faultSweepRequest()
		mutate(&req)
		rep := sess.Do(context.Background(), sunmap.Request{Op: sunmap.OpFaultSweep, FaultSweep: &req})
		if rep.Error == "" {
			t.Errorf("case %d: bad request accepted", i)
			continue
		}
		if rep.ErrorKind != sunmap.ErrorKindBadRequest {
			t.Errorf("case %d: error kind %q, want bad_request (%s)", i, rep.ErrorKind, rep.Error)
		}
	}
}

// TestSelectWithFaultAxis checks the reliability axis reaches the wire:
// rows carry survivability only when a fault model is active, whether
// per-request or as the WithFault session default.
func TestSelectWithFaultAxis(t *testing.T) {
	plain, err := sunmap.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	sreq := sunmap.SelectRequest{
		App:     sunmap.AppSpec{Name: "vopd"},
		Mapping: sunmap.MapSpec{Routing: "MP", CapacityMBps: 500},
	}
	rep, err := plain.Select(context.Background(), sreq)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Rows {
		if r.Survivability != nil {
			t.Fatal("fault-free selection reports survivability")
		}
	}

	faulty, err := sunmap.NewSession(sunmap.WithFault(sunmap.FaultSpec{K: 1}))
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := faulty.Select(context.Background(), sreq)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Topology == "" {
		t.Fatal("no selection under fault model")
	}
	scored := 0
	for _, r := range rep2.Rows {
		if r.Survivability != nil {
			scored++
			if *r.Survivability < 0 || *r.Survivability > 1 {
				t.Errorf("%s: survivability %g outside [0,1]", r.Topology, *r.Survivability)
			}
		} else if r.Feasible {
			t.Errorf("%s: feasible row missing survivability", r.Topology)
		}
	}
	if scored == 0 {
		t.Fatal("no row carries survivability")
	}

	// The session default must be a valid spec.
	if _, err := sunmap.NewSession(sunmap.WithFault(sunmap.FaultSpec{Elements: "bogus"})); err == nil {
		t.Error("invalid WithFault spec accepted")
	}
}

// TestParetoWithFaultAxis checks survivability on Pareto rows.
func TestParetoWithFaultAxis(t *testing.T) {
	sess, err := sunmap.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.ParetoExplore(context.Background(), sunmap.ParetoRequest{
		App:      sunmap.AppSpec{Name: "vopd"},
		Topology: "mesh-3x4",
		Mapping:  sunmap.MapSpec{Routing: "MP", CapacityMBps: 500},
		Steps:    3,
		Fault:    &sunmap.FaultSpec{K: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) == 0 {
		t.Fatal("no design points")
	}
	for _, p := range rep.Points {
		if p.Survivability == nil {
			t.Fatalf("point missing survivability: %+v", p)
		}
	}
}

// TestFaultSweepRequestStrictDecoding pins the wire contract of the new
// request kind: strict JSON decoding, op/payload matching, round trips.
func TestFaultSweepRequestStrictDecoding(t *testing.T) {
	good := `{"op":"fault-sweep","fault_sweep":{"app":{"name":"vopd"},"topology":"mesh-3x4","mapping":{"routing":"MP","capacity_mbps":500},"fault":{"k":2,"elements":"both","samples":64,"seed":9}}}`
	req, err := sunmap.ParseRequest([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if req.FaultSweep == nil || req.FaultSweep.Fault.K != 2 || req.FaultSweep.Fault.Elements != "both" {
		t.Fatalf("decoded request wrong: %+v", req.FaultSweep)
	}
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sunmap.ParseRequest(blob); err != nil {
		t.Fatalf("round trip rejected: %v", err)
	}

	bad := []string{
		`{"op":"fault-sweep"}`, // missing payload
		`{"op":"select","fault_sweep":{"app":{"name":"vopd"},"topology":"mesh-3x4"}}`,  // op mismatch
		`{"op":"fault-sweep","fault_sweep":{"app":{"name":"vopd"},"unknown_field":1}}`, // strictness
		`{"op":"fault-sweep","fault_sweep":{"fault":{"k":"two"}}}`,                     // type error
	}
	for _, s := range bad {
		if _, err := sunmap.ParseRequest([]byte(s)); err == nil {
			t.Errorf("accepted %s", s)
		} else if !strings.Contains(err.Error(), "invalid request") && !errorsIsBadRequest(err) {
			t.Errorf("%s: error %v does not classify as bad request", s, err)
		}
	}
}

func errorsIsBadRequest(err error) bool {
	return err != nil && strings.Contains(err.Error(), sunmap.ErrBadRequest.Error())
}
