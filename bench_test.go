// Package sunmap_test hosts the benchmark harness: one testing.B benchmark
// per table/figure of the paper's evaluation (Section 6). Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark regenerates its artifact end to end (mapping, models,
// floorplanning, simulation) and logs the reproduced table once, so the
// bench run doubles as the experiment log (see EXPERIMENTS.md).
package sunmap_test

import (
	"context"
	"sync"
	"testing"

	"sunmap/internal/exp"
)

// bgctx saves threading context.Background() through every benchmark
// body; benchmarks run to completion, so cancellation is moot.
var bgctx = context.Background()

// logOnce prints each experiment's table a single time per bench run.
var logOnce sync.Map

func logTable(b *testing.B, key, table string) {
	if _, done := logOnce.LoadOrStore(key, true); !done {
		b.Log("\n" + table)
	}
}

// BenchmarkFig3dVOPDMeshTorus regenerates the motivating mesh-vs-torus
// comparison of Fig. 3(d).
func BenchmarkFig3dVOPDMeshTorus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Runner{}.Fig3d(bgctx)
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, "fig3d", r.String())
	}
}

// BenchmarkFig6VOPDTopologies regenerates the VOPD per-topology
// characteristics of Fig. 6(a-d): hops, resources, area and power.
func BenchmarkFig6VOPDTopologies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Runner{}.Fig6(bgctx)
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, "fig6", r.String())
	}
}

// BenchmarkFig7bMPEG4 regenerates the MPEG4 mapping table of Fig. 7(b),
// including the routing escalation to split traffic and the butterfly's
// infeasibility.
func BenchmarkFig7bMPEG4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Runner{}.Fig7b(bgctx)
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, "fig7b", r.String())
	}
}

// BenchmarkFig8bNetProcLatency regenerates the latency-vs-injection curves
// of Fig. 8(b) with the cycle-accurate simulator (shortened rate axis per
// iteration; run sunexp for the full sweep).
func BenchmarkFig8bNetProcLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Runner{}.Fig8b(bgctx, []float64{0.1, 0.3, 0.5})
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, "fig8b", r.String())
	}
}

// BenchmarkFig8cdNetProcAreaPower regenerates the NetProc area/power bars
// of Fig. 8(c, d).
func BenchmarkFig8cdNetProcAreaPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Runner{}.Fig8cd(bgctx)
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, "fig8cd", r.String())
	}
}

// BenchmarkFig9aRoutingFunctions regenerates the minimum-bandwidth bars of
// Fig. 9(a) for MPEG4 on a mesh under DO/MP/SM/SA.
func BenchmarkFig9aRoutingFunctions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Runner{}.Fig9a(bgctx)
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, "fig9a", r.String())
	}
}

// BenchmarkFig9bParetoExploration regenerates the area-power Pareto
// exploration of Fig. 9(b).
func BenchmarkFig9bParetoExploration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Runner{}.Fig9b(bgctx)
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, "fig9b", r.String())
	}
}

// BenchmarkFig10DSPFlow regenerates the DSP filter case study of
// Fig. 10: selection, floorplan and trace-driven simulated latency.
func BenchmarkFig10DSPFlow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Runner{}.Fig10(bgctx)
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, "fig10", r.String())
	}
}

// BenchmarkFig11SystemCGeneration regenerates the SystemC artifact whose
// simulation Fig. 11 snapshots.
func BenchmarkFig11SystemCGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Runner{}.Fig11(bgctx)
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, "fig11", r.String())
	}
}

// BenchmarkFullFlowAllApps times the complete SUNMAP pass (selection over
// the whole library) for every benchmark application — the paper's "few
// minutes on a 1 GHz SUN workstation" claim (Section 6.4).
func BenchmarkFullFlowAllApps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, f := range []func() error{
			func() error { _, err := exp.Runner{}.Fig6(bgctx); return err },   // VOPD
			func() error { _, err := exp.Runner{}.Fig7b(bgctx); return err },  // MPEG4
			func() error { _, err := exp.Runner{}.Fig8cd(bgctx); return err }, // NetProc
			func() error { _, err := exp.Runner{}.Fig10(bgctx); return err },  // DSP
		} {
			if err := f(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
