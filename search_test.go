package sunmap_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"testing"

	"sunmap"
)

func searchReq(budget int) sunmap.SearchRequest {
	return sunmap.SearchRequest{
		App:     sunmap.AppSpec{Name: "mpeg4"},
		Mapping: sunmap.MapSpec{Routing: "MP", Objective: "delay", CapacityMBps: 1000},
		Search:  sunmap.SearchOptions{Budget: budget, Seed: 1},
	}
}

// TestSearchIdenticalAcrossParallelism is the determinism acceptance
// criterion at the wire level: the marshaled SearchReport must be
// byte-identical at parallelism 1, 4 and GOMAXPROCS — same topology name,
// same structure, same costs, same statistics.
func TestSearchIdenticalAcrossParallelism(t *testing.T) {
	var ref []byte
	for _, p := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		sess, err := sunmap.NewSession(sunmap.WithParallelism(p))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sess.Search(context.Background(), searchReq(6000))
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		blob, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = blob
			continue
		}
		if !bytes.Equal(ref, blob) {
			t.Errorf("parallelism %d report differs:\nwant %s\ngot  %s", p, ref, blob)
		}
	}
}

// TestSearchScopeIsolation is the regression test for the registry fix:
// discovered topologies live in the owning session's scope — resolvable
// by that session's follow-up requests, invisible to other sessions and
// to the process-wide registry a serve process would otherwise leak
// names into.
func TestSearchScopeIsolation(t *testing.T) {
	sess, err := sunmap.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.Search(context.Background(), searchReq(2000))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Topology == "" || rep.Best == nil || rep.Best.Topology != rep.Topology {
		t.Fatalf("inconsistent report: %+v", rep)
	}

	// The owning session resolves the name for follow-up operations.
	des, err := sess.Map(context.Background(), sunmap.MapRequest{
		App:      sunmap.AppSpec{Name: "mpeg4"},
		Topology: rep.Topology,
		Mapping:  sunmap.MapSpec{Routing: "MP", CapacityMBps: 1000},
	})
	if err != nil {
		t.Fatalf("owning session cannot map onto %s: %v", rep.Topology, err)
	}
	if des.Topology != rep.Topology {
		t.Errorf("mapped %q, want %q", des.Topology, rep.Topology)
	}

	// The process-wide registry must not have been touched.
	if _, err := sunmap.TopologyByName(rep.Topology); !errors.Is(err, sunmap.ErrUnknownTopology) {
		t.Errorf("discovered topology leaked into the process-wide registry: %v", err)
	}

	// A different session must not see it either.
	other, err := sunmap.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	_, err = other.Map(context.Background(), sunmap.MapRequest{
		App:      sunmap.AppSpec{Name: "mpeg4"},
		Topology: rep.Topology,
		Mapping:  sunmap.MapSpec{},
	})
	if !errors.Is(err, sunmap.ErrUnknownTopology) {
		t.Errorf("foreign session resolved a scoped topology: %v", err)
	}
}

// TestSearchErrorClassification pins the wire-level error kinds: bad
// options are bad requests, and Do must carry the kind.
func TestSearchErrorClassification(t *testing.T) {
	sess, err := sunmap.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	req := searchReq(100)
	req.Search.MaxRadix = 1
	if _, err := sess.Search(context.Background(), req); !errors.Is(err, sunmap.ErrBadRequest) {
		t.Errorf("MaxRadix 1: got %v, want ErrBadRequest", err)
	}

	rep := sess.Do(context.Background(), sunmap.Request{Op: sunmap.OpSearch, Search: &req})
	if rep.ErrorKind != sunmap.ErrorKindBadRequest {
		t.Errorf("Do error kind %q, want %q (%s)", rep.ErrorKind, sunmap.ErrorKindBadRequest, rep.Error)
	}
}
