package sunmap_test

import (
	"strings"
	"testing"

	"sunmap"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	app := sunmap.App("vopd")
	if app.NumCores() != 12 {
		t.Fatalf("vopd has %d cores", app.NumCores())
	}
	sel, err := sunmap.Select(sunmap.SelectConfig{
		App: app,
		Mapping: sunmap.MapOptions{
			Routing:      sunmap.MinPath,
			Objective:    sunmap.MinDelay,
			CapacityMBps: 500,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best == nil {
		t.Fatal("no feasible topology")
	}
	if !strings.HasPrefix(sel.Best.Topology.Name(), "butterfly") {
		t.Errorf("selected %s, want the butterfly (paper Section 6.1)", sel.Best.Topology.Name())
	}
	gen, err := sunmap.Generate(app, sel.Best, sunmap.Tech100nm())
	if err != nil {
		t.Fatal(err)
	}
	if len(gen.Files) < 5 {
		t.Errorf("only %d generated files", len(gen.Files))
	}
}

func TestPublicAPILoadApp(t *testing.T) {
	src := `
app tiny
core a area=2
core b area=3
flow a -> b 100
`
	app, err := sunmap.LoadApp(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := sunmap.TopologyByName("mesh-1x2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sunmap.Map(app, topo, sunmap.MapOptions{
		Routing:      sunmap.MinPath,
		CapacityMBps: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgHops != 2 {
		t.Errorf("two adjacent cores: hops = %g, want 2", res.AvgHops)
	}
}

func TestPublicAPISimulation(t *testing.T) {
	topo, err := sunmap.TopologyByName("mesh-4x4")
	if err != nil {
		t.Fatal(err)
	}
	routes, err := sunmap.BuildRoutes(topo)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sunmap.Simulate(sunmap.SimConfig{
		Topo:          topo,
		Routes:        routes,
		Pattern:       sunmap.UniformPattern(),
		InjectionRate: 0.1,
		Seed:          1,
		WarmupCycles:  200,
		MeasureCycles: 1000,
		DrainCycles:   2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.MeasuredPackets == 0 || st.AvgLatencyCycles <= 0 {
		t.Errorf("degenerate sim stats: %+v", st)
	}
	if sunmap.AdversarialPattern(topo).Name() == "" {
		t.Error("adversarial pattern unnamed")
	}
}

func TestPublicAPILibrary(t *testing.T) {
	lib, err := sunmap.Library(12, sunmap.LibraryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(lib) < 5 {
		t.Errorf("library has %d configs", len(lib))
	}
	if len(sunmap.AppNames()) != 4 {
		t.Errorf("AppNames = %v", sunmap.AppNames())
	}
	sweep, err := sunmap.RoutingSweep(sunmap.App("mpeg4"), lib[0], sunmap.MapOptions{CapacityMBps: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 4 {
		t.Errorf("routing sweep has %d rows", len(sweep))
	}
}
