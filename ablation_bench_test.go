package sunmap_test

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// quadrant-graph restriction (paper Section 4.1 claims "large
// computational time savings"), the pairwise-swap budget, the traffic-
// splitting granularity, and in-loop exact floorplanning. Run with
//
//	go test -bench=Ablation -benchmem
//
// Quality deltas (hops, max load) are reported as benchmark metrics so
// speed and quality can be read off one run.

import (
	"context"
	"fmt"
	"testing"

	"sunmap/internal/apps"
	"sunmap/internal/mapping"
	"sunmap/internal/route"
	"sunmap/internal/topology"
)

// benchTopo unwraps a topology constructor result; a failure here is a
// programming error in the benchmark itself.
func benchTopo(t topology.Topology, err error) topology.Topology {
	if err != nil {
		panic(err)
	}
	return t
}

// identity assigns core i to terminal i.
func identity(n int) []int {
	a := make([]int, n)
	for i := range a {
		a[i] = i
	}
	return a
}

// BenchmarkAblationQuadrantOn routes a large synthetic workload on a big
// mesh with the quadrant restriction (the paper's design).
func BenchmarkAblationQuadrantOn(b *testing.B) {
	benchQuadrant(b, false)
}

// BenchmarkAblationQuadrantOff repeats the routing over the full router
// graph; the time ratio to QuadrantOn quantifies Section 4.1's claim.
func BenchmarkAblationQuadrantOff(b *testing.B) {
	benchQuadrant(b, true)
}

func benchQuadrant(b *testing.B, disable bool) {
	topo := benchTopo(topology.NewMesh(8, 8))
	app := apps.Synthetic(64, 0.1, 400, 99)
	comms := app.Commodities()
	assign := identity(64)
	b.ResetTimer()
	var hops float64
	for i := 0; i < b.N; i++ {
		res, err := route.Route(topo, assign, comms, route.Options{
			Function:        route.MinPath,
			DisableQuadrant: disable,
		})
		if err != nil {
			b.Fatal(err)
		}
		hops = res.AvgHops()
	}
	b.ReportMetric(hops, "avg-hops")
}

// BenchmarkAblationSwapPasses1 runs the paper's single improvement sweep.
func BenchmarkAblationSwapPasses1(b *testing.B) { benchSwap(b, 1) }

// BenchmarkAblationSwapPassesConverged iterates sweeps to convergence
// (this repo's default); compare avg-hops to Passes1 for the quality gain.
func BenchmarkAblationSwapPassesConverged(b *testing.B) { benchSwap(b, 16) }

func benchSwap(b *testing.B, passes int) {
	topo := benchTopo(topology.NewMesh(3, 4))
	app := apps.VOPD()
	b.ResetTimer()
	var hops float64
	for i := 0; i < b.N; i++ {
		res, err := mapping.MapContext(context.Background(), app, topo, mapping.Options{
			Routing:      route.MinPath,
			Objective:    mapping.MinDelay,
			CapacityMBps: apps.DefaultCapacityMBps,
			SwapPasses:   passes,
		})
		if err != nil {
			b.Fatal(err)
		}
		hops = res.AvgHops
	}
	b.ReportMetric(hops, "avg-hops")
}

// BenchmarkAblationSplitChunks8/32/128 vary the water-filling granularity
// of split routing on MPEG4; max-load shows the feasibility margin bought
// per unit of routing time.
func BenchmarkAblationSplitChunks8(b *testing.B)   { benchChunks(b, 8) }
func BenchmarkAblationSplitChunks32(b *testing.B)  { benchChunks(b, 32) }
func BenchmarkAblationSplitChunks128(b *testing.B) { benchChunks(b, 128) }

func benchChunks(b *testing.B, chunks int) {
	topo := benchTopo(topology.NewMesh(3, 4))
	app := apps.MPEG4()
	b.ResetTimer()
	var maxLoad float64
	for i := 0; i < b.N; i++ {
		res, err := mapping.MapContext(context.Background(), app, topo, mapping.Options{
			Routing:      route.SplitMin,
			Objective:    mapping.MinDelay,
			CapacityMBps: apps.DefaultCapacityMBps,
			Chunks:       chunks,
		})
		if err != nil {
			b.Fatal(err)
		}
		maxLoad = res.Route.MaxLinkLoad
	}
	b.ReportMetric(maxLoad, "max-load-MBps")
}

// BenchmarkAblationFloorplanEstimate uses the fast length estimator inside
// the swap loop (this repo's default).
func BenchmarkAblationFloorplanEstimate(b *testing.B) { benchFloorplan(b, false) }

// BenchmarkAblationFloorplanExact runs the LP floorplanner inside every
// swap evaluation (the paper's step 7); the time ratio shows what the
// estimator buys.
func BenchmarkAblationFloorplanExact(b *testing.B) { benchFloorplan(b, true) }

func benchFloorplan(b *testing.B, exact bool) {
	topo := benchTopo(topology.NewMesh(2, 3))
	app := apps.DSPFilter()
	b.ResetTimer()
	var area float64
	for i := 0; i < b.N; i++ {
		res, err := mapping.MapContext(context.Background(), app, topo, mapping.Options{
			Routing:              route.MinPath,
			Objective:            mapping.MinPower,
			CapacityMBps:         apps.DSPCapacityMBps,
			ExactFloorplanInLoop: exact,
			SwapPasses:           2,
		})
		if err != nil {
			b.Fatal(err)
		}
		area = res.DesignAreaMM2
	}
	b.ReportMetric(area, "area-mm2")
}

// BenchmarkAblationLibraryBreadth sweeps library size: paper five-family
// library vs extras (octagon + star), showing the cost of a wider Phase 1.
func BenchmarkAblationLibraryBreadth(b *testing.B) {
	app := apps.DSPFilter()
	for _, extras := range []bool{false, true} {
		name := "paper-library"
		if extras {
			name = "with-extras"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lib, err := topology.Library(app.NumCores(), topology.LibraryOptions{IncludeExtras: extras})
				if err != nil {
					b.Fatal(err)
				}
				for _, t := range lib {
					if _, err := mapping.MapContext(context.Background(), app, t, mapping.Options{
						Routing:      route.MinPath,
						CapacityMBps: apps.DSPCapacityMBps,
					}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkMappingScaling maps growing synthetic apps onto matching
// meshes, charting the Fig. 5 heuristic's scaling.
func BenchmarkMappingScaling(b *testing.B) {
	for _, n := range []int{8, 16, 25} {
		rows := 2
		for rows*rows < n {
			rows++
		}
		app := apps.Synthetic(n, 0.15, 400, int64(n))
		topo := benchTopo(topology.NewMesh(rows, (n+rows-1)/rows))
		b.Run(fmt.Sprintf("n%d-%s", n, topo.Name()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mapping.MapContext(context.Background(), app, topo, mapping.Options{
					Routing:      route.MinPath,
					CapacityMBps: 0,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
