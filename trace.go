package sunmap

import (
	"context"
	"io"

	"sunmap/internal/obs"
)

// Trace collects an execution trace of the pipeline stages a session
// runs on behalf of its caller: per-stage span counts and durations
// (select, map, evaluate, limiter-wait, ...), evaluation-cache hit/miss
// counts, and limiter acquisition outcomes. A Trace is safe for
// concurrent use and is purely additive: tracing never changes what an
// operation computes, and Reports stay byte-identical across every
// parallelism setting with a Trace attached.
//
// Attach one session-wide with WithTrace, or per call tree with
// Trace.Context. Timing comes from the audited obs clock and lives only
// in the trace — never in a Report.
type Trace struct {
	rec *obs.Recorder
}

// TraceSnapshot is a Trace's folded view: stages in fixed pipeline
// order plus the cache and limiter counters.
type TraceSnapshot = obs.TraceSnapshot

// NewTrace returns an empty trace collector.
func NewTrace() *Trace { return &Trace{rec: obs.NewRecorder()} }

// Snapshot folds the trace so far. Deterministically ordered: stages
// appear in pipeline order regardless of the concurrency that recorded
// them. Safe to call while operations are still running.
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	return t.rec.Snapshot()
}

// WriteText renders the trace as a human-readable per-stage table (the
// CLI's -trace output).
func (t *Trace) WriteText(w io.Writer) {
	obs.FormatSnapshot(w, t.Snapshot())
}

// Context binds the trace into ctx, so any session operation run under
// the returned context records into t — the per-request form of
// WithTrace. A nil Trace returns ctx unchanged.
func (t *Trace) Context(ctx context.Context) context.Context {
	if t == nil {
		return ctx
	}
	return obs.WithRecorder(ctx, t.rec)
}

// WithTrace attaches a trace collector to every operation the session
// runs. A context-bound Trace (Trace.Context) takes precedence for the
// calls under it. Tracing costs two atomic adds and two monotonic clock
// reads per stage — nothing on the per-swap hot paths — and a nil or
// absent Trace costs one branch.
func WithTrace(t *Trace) SessionOption {
	return func(c *sessionConfig) error {
		c.trace = t
		return nil
	}
}

// Per-op rates and latencies in the process-wide registry. Children are
// resolved once here with constant labels (the obslabel contract); Do
// selects among them with one map lookup per operation — far off any
// hot path.
type opMetrics struct {
	seconds *obs.Histogram
	ok, err *obs.Counter
}

var (
	opSeconds = obs.Default.HistogramVec("sunmap_op_seconds", "operation latency by op", nil, "op")
	opTotal   = obs.Default.CounterVec("sunmap_op_total", "operations executed by op and outcome", "op", "outcome")

	opMetricsByOp = map[string]opMetrics{
		OpSelect:       {opSeconds.With(OpSelect), opTotal.With(OpSelect, "ok"), opTotal.With(OpSelect, "error")},
		OpMap:          {opSeconds.With(OpMap), opTotal.With(OpMap, "ok"), opTotal.With(OpMap, "error")},
		OpRoutingSweep: {opSeconds.With(OpRoutingSweep), opTotal.With(OpRoutingSweep, "ok"), opTotal.With(OpRoutingSweep, "error")},
		OpPareto:       {opSeconds.With(OpPareto), opTotal.With(OpPareto, "ok"), opTotal.With(OpPareto, "error")},
		OpSimulate:     {opSeconds.With(OpSimulate), opTotal.With(OpSimulate, "ok"), opTotal.With(OpSimulate, "error")},
		OpGenerate:     {opSeconds.With(OpGenerate), opTotal.With(OpGenerate, "ok"), opTotal.With(OpGenerate, "error")},
		OpFaultSweep:   {opSeconds.With(OpFaultSweep), opTotal.With(OpFaultSweep, "ok"), opTotal.With(OpFaultSweep, "error")},
		OpSearch:       {opSeconds.With(OpSearch), opTotal.With(OpSearch, "ok"), opTotal.With(OpSearch, "error")},
	}
)

// traceCtx resolves the effective recorder for one operation: an
// explicit context binding wins, else the session-wide Trace is bound,
// else the context passes through untouched (the disabled fast path).
func (s *Session) traceCtx(ctx context.Context) context.Context {
	if s.trace == nil || obs.FromContext(ctx) != nil {
		return ctx
	}
	return obs.WithRecorder(ctx, s.trace.rec)
}
