package sunmap_test

// Documentation enforcement: these tests keep the docs layer honest and
// back the CI "docs" job. They verify every package carries a package
// comment, every example directory ships a README linked from the root
// README, and the Go code blocks in the READMEs still parse — full
// programs are additionally compiled against the current API.

import (
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestPackageComments fails when any package in the module lacks a
// package-level godoc comment on at least one of its files.
func TestPackageComments(t *testing.T) {
	var pkgDirs []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
			return filepath.SkipDir
		}
		ms, _ := filepath.Glob(filepath.Join(path, "*.go"))
		for _, m := range ms {
			if !strings.HasSuffix(m, "_test.go") {
				pkgDirs = append(pkgDirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, dir := range pkgDirs {
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		documented := false
		for _, f := range files {
			if strings.HasSuffix(f, "_test.go") {
				continue
			}
			af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				t.Errorf("%s: %v", f, err)
				continue
			}
			if af.Doc != nil && strings.TrimSpace(af.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			t.Errorf("package %s has no package-level godoc comment on any file", dir)
		}
	}
}

// TestExamplesHaveReadmes fails when an example directory lacks a README
// or the root README does not link it.
func TestExamplesHaveReadmes(t *testing.T) {
	root, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := filepath.Glob("examples/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no example directories found")
	}
	for _, dir := range dirs {
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			continue
		}
		readme := filepath.Join(dir, "README.md")
		if _, err := os.Stat(readme); err != nil {
			t.Errorf("%s: missing README.md", dir)
			continue
		}
		if !strings.Contains(string(root), readme) {
			t.Errorf("root README.md does not link %s", readme)
		}
	}
}

var (
	fencedGo = regexp.MustCompile("(?s)```go\n(.*?)```")
	goRunRef = regexp.MustCompile(`go run (\./[\w./-]+)`)
)

// TestReadmeCodeBlocksBuild extracts the fenced Go code blocks of every
// README (and docs/*.md) and checks they still match the API: complete
// programs are compiled inside the module, fragments are syntax-checked.
// `go run ./...` references in shell blocks must point at real packages.
func TestReadmeCodeBlocksBuild(t *testing.T) {
	docs := []string{"README.md"}
	for _, pat := range []string{"docs/*.md", "examples/*/README.md"} {
		ms, err := filepath.Glob(pat)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, ms...)
	}
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		text := string(data)
		for _, ref := range goRunRef.FindAllStringSubmatch(text, -1) {
			ms, err := filepath.Glob(filepath.Join(ref[1], "*.go"))
			if err != nil || len(ms) == 0 {
				t.Errorf("%s: `go run %s` points at a directory with no Go files", doc, ref[1])
			}
		}
		for i, m := range fencedGo.FindAllStringSubmatch(text, -1) {
			block := m[1]
			if strings.Contains(block, "package main") {
				buildProgram(t, doc, i, block)
				continue
			}
			fset := token.NewFileSet()
			if _, err := parser.ParseFile(fset, "block.go", block, 0); err == nil {
				continue
			}
			wrapped := "package readme\nfunc _() {\n" + block + "\n}\n"
			if _, err := parser.ParseFile(fset, "block.go", wrapped, 0); err != nil {
				t.Errorf("%s: go block %d does not parse as a file or statement list: %v", doc, i, err)
			}
		}
	}
}

// buildProgram compiles a complete README program inside the module so
// imports resolve against the current public API.
func buildProgram(t *testing.T, doc string, i int, src string) {
	t.Helper()
	dir, err := os.MkdirTemp(".", "readmeblock")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "build", "-o", os.DevNull, "./"+dir)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Errorf("%s: go block %d no longer builds:\n%s", doc, i, out)
	}
}
