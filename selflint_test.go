package sunmap_test

import (
	"testing"

	"sunmap/internal/analysis"
	"sunmap/internal/analysis/suite"
)

// TestRepoLintClean is the self-lint gate: the repository must carry
// zero diagnostics from its own invariant analyzers. This is the same
// check CI runs via `go run ./cmd/sunmap-lint ./...`, kept inside the
// test suite so a plain `go test ./...` also refuses to pass a tree
// that violates the concurrency, determinism, or hot-path contracts.
//
// Every intentional exception in the tree is visible as a //sunmap:*
// annotation at the violation site, so "zero diagnostics" means
// "every exception is audited", not "no exceptions exist".
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("self-lint type-checks the whole repository; skipped in -short")
	}
	diags, err := analysis.Run(".", suite.All(), "./...")
	if err != nil {
		t.Fatalf("running analyzer suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		t.Errorf("%d diagnostic(s); fix the violation or audit it with the matching //sunmap: annotation", len(diags))
	}
}
