package sunmap

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"sunmap/internal/core"
	"sunmap/internal/engine"
	"sunmap/internal/fault"
	"sunmap/internal/graph"
	"sunmap/internal/mapping"
	"sunmap/internal/obs"
	"sunmap/internal/pool"
	"sunmap/internal/route"
	"sunmap/internal/search"
	"sunmap/internal/sim"
	"sunmap/internal/tech"
	"sunmap/internal/topology"
	"sunmap/internal/traffic"
	"sunmap/internal/xpipes"
)

// Session is the context-first handle onto the SUNMAP pipeline. It owns
// the engine resources that matter at scale — the evaluation cache and a
// session-wide admission pool bounding in-flight mapping work — for its
// lifetime, and exposes every pipeline stage as a method taking
// (ctx, request). Requests and Reports are JSON-round-trippable, Batch
// fans a request list across the engine with per-request isolation and
// deterministic result ordering, and the serve package serves the same
// schema over HTTP.
//
// A Session is safe for concurrent use. The zero value is not usable;
// construct with NewSession.
type Session struct {
	parallelism int
	cache       *engine.Cache
	progress    engine.Progress
	libOpts     topology.LibraryOptions
	synth       *SynthOptions
	fault       *FaultSpec
	tech        tech.Tech
	limit       *pool.Limiter
	trace       *Trace
	// scope holds machine-discovered topologies registered by Search —
	// session-local so serve processes never leak or collide names across
	// tenants the way the process-wide registry would.
	scope *topology.Scope
}

// SessionOption configures a Session at construction time.
type SessionOption func(*sessionConfig) error

type sessionConfig struct {
	Session
	cacheSet bool
}

// WithParallelism bounds the session's evaluation pool: at most n mapping
// evaluations run at once across all concurrent calls and batch requests.
// 0 (the default) selects GOMAXPROCS; 1 forces fully sequential
// evaluation. Results are identical at every setting.
func WithParallelism(n int) SessionOption {
	return func(c *sessionConfig) error {
		if n < 0 {
			return fmt.Errorf("%w: negative parallelism %d", ErrBadRequest, n)
		}
		c.parallelism = n
		return nil
	}
}

// WithCache installs a caller-owned evaluation cache, sharing memoized
// design points across sessions. Passing nil disables memoization. By
// default each session owns a fresh cache for its lifetime.
func WithCache(cache *EvalCache) SessionOption {
	return func(c *sessionConfig) error {
		c.cache = cache
		c.cacheSet = true
		return nil
	}
}

// WithProgress streams one event per evaluated candidate. Callbacks are
// serialized session-wide (never concurrent), even across the concurrent
// requests of a Batch.
func WithProgress(p Progress) SessionOption {
	return func(c *sessionConfig) error {
		c.progress = p
		return nil
	}
}

// WithLibrary tunes the default topology-library enumeration backing
// Select requests (mesh/torus aspect bounds, butterfly radix, Clos
// fan-in, octagon/star extras).
func WithLibrary(opts LibraryOptions) SessionOption {
	return func(c *sessionConfig) error {
		c.libOpts = opts
		return nil
	}
}

// WithSynth turns on application-specific topology synthesis for every
// Select in the session: synthesized candidates (min-cut clusters,
// trimmed mesh, sparse Hamming) compete with the library on equal terms.
// A request-level SelectRequest.Synth overrides it per call.
func WithSynth(opts SynthOptions) SessionOption {
	return func(c *sessionConfig) error {
		c.synth = &opts
		return nil
	}
}

// WithFault installs a session-default failure model: every Select gains
// the reliability axis (feasible candidates are swept under the model
// and ranked by the fault-aware composite score) and every ParetoExplore
// marks its front in the three-objective (area, power, survivability)
// space. A request-level SelectRequest.Fault / ParetoRequest.Fault
// overrides it per call; FaultSweep requests always carry their own
// spec.
func WithFault(spec FaultSpec) SessionOption {
	return func(c *sessionConfig) error {
		if _, err := spec.model(); err != nil {
			return err
		}
		c.fault = &spec
		return nil
	}
}

// WithTech sets the session's default technology operating point for the
// area/power models (default Tech100nm, the paper's 0.1 µm node). A
// request-level MapSpec.Tech overrides it per call.
func WithTech(t Tech) SessionOption {
	return func(c *sessionConfig) error {
		c.tech = t
		return nil
	}
}

// NewSession builds a Session from functional options.
func NewSession(opts ...SessionOption) (*Session, error) {
	var c sessionConfig
	c.tech = tech.Tech100nm()
	for _, o := range opts {
		if err := o(&c); err != nil {
			return nil, err
		}
	}
	if !c.cacheSet {
		c.cache = engine.NewCache()
	}
	s := c.Session
	s.limit = pool.NewLimiter(s.parallelism)
	s.scope = topology.NewScope(topology.DefaultScopeLimit)
	if p := s.progress; p != nil {
		// Serialize callbacks across the session's concurrent engine runs
		// (the engine only serializes within one run).
		var mu sync.Mutex
		s.progress = func(ev ProgressEvent) {
			mu.Lock()
			defer mu.Unlock()
			p(ev)
		}
	}
	return &s, nil
}

// Parallelism returns the session's configured evaluation-pool bound
// (0 = GOMAXPROCS).
func (s *Session) Parallelism() int { return s.parallelism }

// Cache returns the session's evaluation cache (nil when memoization is
// disabled via WithCache(nil)).
func (s *Session) Cache() *EvalCache { return s.cache }

// CacheStats snapshots the session cache's effectiveness counters.
func (s *Session) CacheStats() EvalCacheStats { return s.cache.Stats() }

// LoadStats snapshots the session's admission-pool pressure: Capacity
// is the limiter bound, InFlight the held slots, Waiting the callers
// blocked in line for one. The serve layer's admission controller sheds
// on Waiting.
type LoadStats struct {
	Capacity int `json:"capacity"`
	InFlight int `json:"in_flight"`
	Waiting  int `json:"waiting"`
}

// Load snapshots the session's evaluation-pool pressure.
func (s *Session) Load() LoadStats {
	return LoadStats{
		Capacity: s.limit.Cap(),
		InFlight: s.limit.InFlight(),
		Waiting:  s.limit.Waiting(),
	}
}

// workers resolves the session's parallelism to a concrete worker count
// for n units of work.
func (s *Session) workers(n int) int {
	w := s.parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// topologyByName resolves a topology name for this session: machine-
// discovered topologies registered in the session scope take precedence,
// then the process-wide library/custom registry. Scope names can never
// shadow library names (Scope.Register rejects the library grammar), so
// the precedence is safe.
func (s *Session) topologyByName(name string) (Topology, error) {
	if s.scope != nil {
		if t, ok := s.scope.Lookup(name); ok {
			return t, nil
		}
	}
	return TopologyByName(name)
}

// Select runs SUNMAP Phases 1 and 2 for one request: map the application
// onto every candidate topology, evaluate, and pick the best feasible
// network. When nothing is feasible it returns the evaluated report
// together with an error wrapping ErrInfeasible, so callers can both
// branch on errors.Is and inspect the candidate table.
func (s *Session) Select(ctx context.Context, req SelectRequest) (*SelectReport, error) {
	ctx = s.traceCtx(ctx)
	defer obs.FromContext(ctx).Start(obs.StageSelect).End()
	app, err := req.App.resolve()
	if err != nil {
		return nil, err
	}
	opts, err := req.Mapping.options(s.tech)
	if err != nil {
		return nil, err
	}
	synthOpts := s.synth
	if req.Synth != nil {
		o := req.Synth.options()
		synthOpts = &o
	}
	cfg := s.coreConfig(app, opts, req.Escalate, synthOpts)
	if err := applyFaultSpec(&cfg, s.faultSpec(req.Fault)); err != nil {
		return nil, err
	}
	sel, err := core.SelectContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	rep := buildSelectReport(app, sel)
	if sel.Best == nil {
		return rep, fmt.Errorf("sunmap: select %s: %w under routing %v (try escalate or a higher capacity)",
			app.Name(), ErrInfeasible, sel.RoutingUsed)
	}
	return rep, nil
}

// Map maps the application onto one named topology and evaluates the
// design point. Infeasible mappings are reported, not errors: the
// report's feasibility flags carry the verdict.
func (s *Session) Map(ctx context.Context, req MapRequest) (*DesignReport, error) {
	ctx = s.traceCtx(ctx)
	defer obs.FromContext(ctx).Start(obs.StageMap).End()
	app, err := req.App.resolve()
	if err != nil {
		return nil, err
	}
	opts, err := req.Mapping.options(s.tech)
	if err != nil {
		return nil, err
	}
	topo, err := s.topologyByName(req.Topology)
	if err != nil {
		return nil, err
	}
	res, err := s.evalMap(ctx, app, topo, opts)
	if err != nil {
		return nil, err
	}
	return buildDesignReport(app, res), nil
}

// evalMap runs one mapping evaluation through the engine, so single-
// topology requests share the session cache and admission pool like
// full sweeps do.
func (s *Session) evalMap(ctx context.Context, app *graph.CoreGraph, topo Topology, opts mapping.Options) (*mapping.Result, error) {
	outcomes, err := engine.Evaluate(ctx, app, []engine.Job{{Topo: topo, Opts: opts}}, engine.Options{
		Parallelism: 1, Cache: s.cache, Progress: s.progress, Limit: s.limit,
	})
	if err != nil {
		return nil, err
	}
	if err := outcomes[0].Err; err != nil {
		if errors.Is(err, engine.ErrPanic) {
			return nil, fmt.Errorf("sunmap: map %s onto %s: %w", app.Name(), topo.Name(), err)
		}
		// Structural mapping failures (e.g. more cores than terminals) are
		// client-input problems, not server faults — classify accordingly.
		return nil, fmt.Errorf("%w: map %s onto %s: %w", ErrBadRequest, app.Name(), topo.Name(), err)
	}
	return outcomes[0].Result, nil
}

// RoutingSweep maps the application onto the named topology once per
// routing function (DO, MP, SM, SA) and reports the minimum required link
// bandwidth of each — the bars of Fig. 9(a). Feasibility is judged
// against the request capacity (500 MB/s when unset).
func (s *Session) RoutingSweep(ctx context.Context, req SweepRequest) (*SweepReport, error) {
	ctx = s.traceCtx(ctx)
	defer obs.FromContext(ctx).Start(obs.StageRoutingSweep).End()
	app, err := req.App.resolve()
	if err != nil {
		return nil, err
	}
	opts, err := req.Mapping.options(s.tech)
	if err != nil {
		return nil, err
	}
	topo, err := s.topologyByName(req.Topology)
	if err != nil {
		return nil, err
	}
	rows, err := core.RoutingSweepContext(ctx, app, topo, opts, s.explore())
	if err != nil {
		return nil, err
	}
	capMBps := opts.CapacityMBps
	if capMBps <= 0 {
		capMBps = 500
	}
	rep := &SweepReport{App: app.Name(), Topology: topo.Name(), CapacityMBps: capMBps}
	for _, r := range rows {
		rep.Rows = append(rep.Rows, SweepRow{
			Function:      r.Function.String(),
			RequiredMBps:  r.RequiredMBps,
			AvgHops:       r.AvgHops,
			FeasibleAtCap: r.RequiredMBps <= capMBps+1e-6,
		})
	}
	return rep, nil
}

// ParetoExplore sweeps weighted objectives and buffer depths over the
// named topology and reports the area-power design points with the
// Pareto front marked — Fig. 9(b).
func (s *Session) ParetoExplore(ctx context.Context, req ParetoRequest) (*ParetoReport, error) {
	ctx = s.traceCtx(ctx)
	defer obs.FromContext(ctx).Start(obs.StagePareto).End()
	app, err := req.App.resolve()
	if err != nil {
		return nil, err
	}
	opts, err := req.Mapping.options(s.tech)
	if err != nil {
		return nil, err
	}
	topo, err := s.topologyByName(req.Topology)
	if err != nil {
		return nil, err
	}
	var fm *fault.Model
	if spec := s.faultSpec(req.Fault); spec != nil {
		m, err := spec.model()
		if err != nil {
			return nil, err
		}
		fm = &m
	}
	pts, err := core.ParetoExploreFault(ctx, app, topo, opts, req.Steps, fm, s.explore())
	if err != nil {
		return nil, err
	}
	rep := &ParetoReport{App: app.Name(), Topology: topo.Name()}
	for _, p := range pts {
		row := ParetoPointRow{
			WeightDelay: p.Weights.Delay,
			WeightArea:  p.Weights.Area,
			WeightPower: p.Weights.Power,
			AreaMM2:     p.AreaMM2,
			PowerMW:     p.PowerMW,
			AvgHops:     p.AvgHops,
			Dominant:    p.Dominant,
		}
		if p.HasSurvivability {
			surv := p.Survivability
			row.Survivability = &surv
		}
		rep.Points = append(rep.Points, row)
	}
	return rep, nil
}

func (s *Session) explore() core.ExploreOptions {
	return core.ExploreOptions{Parallelism: s.parallelism, Cache: s.cache, Progress: s.progress, Limit: s.limit}
}

// coreConfig assembles a selection config carrying the session's engine
// resources — the single place session knobs map onto core.Config.
func (s *Session) coreConfig(app *graph.CoreGraph, opts mapping.Options, escalate bool, synthOpts *SynthOptions) core.Config {
	return core.Config{
		App:             app,
		LibraryOpts:     s.libOpts,
		Synth:           synthOpts,
		Mapping:         opts,
		EscalateRouting: escalate,
		Parallelism:     s.parallelism,
		Cache:           s.cache,
		Progress:        s.progress,
		Limit:           s.limit,
	}
}

// faultSpec resolves the failure model for one request: the request's
// own spec when given, the session default otherwise (nil = no
// reliability axis).
func (s *Session) faultSpec(req *FaultSpec) *FaultSpec {
	if req != nil {
		return req
	}
	return s.fault
}

// applyFaultSpec lowers a failure spec onto a selection config.
func applyFaultSpec(cfg *core.Config, spec *FaultSpec) error {
	if spec == nil {
		return nil
	}
	m, err := spec.model()
	if err != nil {
		return err
	}
	cfg.Fault = &m
	cfg.ReliabilityWeight = spec.ReliabilityWeight
	return nil
}

// Simulate sweeps the request's injection rates over the named topology
// with the cycle-accurate simulator. Per-rate runs evaluate concurrently
// within the session's parallelism; results are deterministic for a given
// seed at every setting.
func (s *Session) Simulate(ctx context.Context, req SimRequest) (*SimReport, error) {
	ctx = s.traceCtx(ctx)
	defer obs.FromContext(ctx).Start(obs.StageSimulate).End()
	topo, err := s.topologyByName(req.Topology)
	if err != nil {
		return nil, err
	}
	if len(req.Rates) == 0 {
		return nil, fmt.Errorf("%w: simulate wants at least one injection rate", ErrBadRequest)
	}
	for _, r := range req.Rates {
		if r <= 0 || r > 1 {
			return nil, fmt.Errorf("%w: injection rate %g outside (0, 1]", ErrBadRequest, r)
		}
	}
	cfg := sim.Config{
		Topo:          topo,
		PacketFlits:   req.PacketFlits,
		BufDepthFlits: req.BufDepthFlits,
		ChannelDelay:  req.ChannelDelay,
		RouterDelay:   req.RouterDelay,
		WarmupCycles:  req.WarmupCycles,
		MeasureCycles: req.MeasureCycles,
		DrainCycles:   req.DrainCycles,
		Seed:          req.Seed,
	}
	pattern := req.Pattern
	if pattern == "" {
		pattern = "uniform"
	}
	if pattern == "trace" {
		if req.App == nil {
			return nil, fmt.Errorf("%w: trace-driven simulation wants an app", ErrBadRequest)
		}
		app, err := req.App.resolve()
		if err != nil {
			return nil, err
		}
		spec := MapSpec{}
		if req.Mapping != nil {
			spec = *req.Mapping
		}
		opts, err := spec.options(s.tech)
		if err != nil {
			return nil, err
		}
		res, err := s.evalMap(ctx, app, topo, opts)
		if err != nil {
			return nil, err
		}
		routes, err := sim.BuildRoutesFromResult(topo, res.Assign, res.Route)
		if err != nil {
			return nil, fmt.Errorf("sunmap: simulate: %w", err)
		}
		trace, err := traffic.NewTrace(app, res.Assign)
		if err != nil {
			return nil, fmt.Errorf("sunmap: simulate: %w", err)
		}
		cfg.Routes = routes
		cfg.Pattern = trace
		cfg.SourceShare = trace.SourceShare()
		cfg.ActiveTerminals = res.Assign
	} else {
		pat, err := patternByName(pattern, req, topo)
		if err != nil {
			return nil, err
		}
		routes, err := sim.BuildRoutes(topo)
		if err != nil {
			return nil, fmt.Errorf("sunmap: simulate: %w", err)
		}
		cfg.Routes = routes
		cfg.Pattern = pat
	}
	stats, err := sim.SweepLimited(ctx, cfg, req.Rates, s.parallelism, s.limit)
	if err != nil {
		return nil, err
	}
	rep := &SimReport{Topology: topo.Name(), Pattern: cfg.Pattern.Name()}
	for i, st := range stats {
		rep.Rows = append(rep.Rows, SimRow{
			Rate:              req.Rates[i],
			AvgLatencyCycles:  st.AvgLatencyCycles,
			P95LatencyCycles:  st.P95LatencyCycles,
			ThroughputFPC:     st.ThroughputFPC,
			MeasuredPackets:   st.MeasuredPackets,
			UnfinishedPackets: st.UnfinishedPackets,
			Saturated:         st.Saturated,
		})
	}
	return rep, nil
}

// patternByName resolves a synthetic traffic pattern (everything except
// "trace", which Simulate handles itself).
func patternByName(name string, req SimRequest, topo Topology) (TrafficPattern, error) {
	switch name {
	case "uniform":
		return traffic.Uniform{}, nil
	case "transpose":
		return traffic.Transpose{}, nil
	case "tornado":
		return traffic.Tornado{}, nil
	case "bit-complement":
		return traffic.BitComplement{}, nil
	case "bit-reverse":
		return traffic.BitReverse{}, nil
	case "shuffle":
		return traffic.Shuffle{}, nil
	case "hotspot":
		frac := req.HotspotFrac
		if frac <= 0 {
			frac = 0.3
		}
		return traffic.Hotspot{Node: req.HotspotNode, Frac: frac}, nil
	case "adversarial":
		return traffic.Adversarial(topo), nil
	}
	return nil, fmt.Errorf("%w: unknown traffic pattern %q", ErrBadRequest, name)
}

// Generate emits the SystemC description of a mapped design (Phase 3).
// With an empty Topology, a full selection chooses the network first —
// reusing any design points the session cache already holds.
func (s *Session) Generate(ctx context.Context, req GenerateRequest) (*GenerateReport, error) {
	ctx = s.traceCtx(ctx)
	defer obs.FromContext(ctx).Start(obs.StageGenerate).End()
	app, err := req.App.resolve()
	if err != nil {
		return nil, err
	}
	opts, err := req.Mapping.options(s.tech)
	if err != nil {
		return nil, err
	}
	var res *mapping.Result
	if req.Topology == "" {
		cfg := s.coreConfig(app, opts, req.Escalate, s.synth)
		if err := applyFaultSpec(&cfg, s.fault); err != nil {
			return nil, err
		}
		sel, err := core.SelectContext(ctx, cfg)
		if err != nil {
			return nil, err
		}
		if sel.Best == nil {
			return nil, fmt.Errorf("sunmap: generate %s: %w", app.Name(), ErrInfeasible)
		}
		res = sel.Best
	} else {
		topo, err := s.topologyByName(req.Topology)
		if err != nil {
			return nil, err
		}
		if res, err = s.evalMap(ctx, app, topo, opts); err != nil {
			return nil, err
		}
	}
	gen, err := xpipes.Generate(app, res, opts.Tech)
	if err != nil {
		return nil, fmt.Errorf("sunmap: generate: %w", err)
	}
	rep := &GenerateReport{App: app.Name(), Topology: res.Topology.Name(), TopModule: gen.TopModule}
	for _, name := range gen.FileNames() {
		rep.Files = append(rep.Files, GeneratedFile{Name: name, Content: gen.Files[name]})
	}
	return rep, nil
}

// FaultSweep maps the application onto the named topology (through the
// session cache, like Map) and analyzes its survivability: every failure
// scenario of the request's fault model is rerouted in degraded mode —
// masked, allocation-free replays on the routing scratch — and folded
// into a FaultReport. With SimRate set, the worst-case connected
// scenario is additionally injected into the cycle-accurate simulator
// mid-measurement, with degraded routes installed at the fault cycle, to
// measure delivered throughput before and after the failure.
func (s *Session) FaultSweep(ctx context.Context, req FaultSweepRequest) (*FaultReport, error) {
	ctx = s.traceCtx(ctx)
	defer obs.FromContext(ctx).Start(obs.StageFaultSweep).End()
	app, err := req.App.resolve()
	if err != nil {
		return nil, err
	}
	opts, err := req.Mapping.options(s.tech)
	if err != nil {
		return nil, err
	}
	topo, err := s.topologyByName(req.Topology)
	if err != nil {
		return nil, err
	}
	model, err := req.Fault.model()
	if err != nil {
		return nil, err
	}
	if req.SimRate < 0 || req.SimRate > 1 {
		return nil, fmt.Errorf("%w: sim rate %g outside [0, 1]", ErrBadRequest, req.SimRate)
	}
	// The injection cycle must land inside the measurement window, or
	// the before/after throughput split is vacuously zero on one side.
	if end := sim.DefaultWarmupCycles + sim.DefaultMeasureCycles; req.SimCycle < 0 || req.SimCycle >= end {
		if req.SimCycle != 0 {
			return nil, fmt.Errorf("%w: sim cycle %d outside the measurement window [1, %d)", ErrBadRequest, req.SimCycle, end)
		}
	}
	res, err := s.evalMap(ctx, app, topo, opts)
	if err != nil {
		return nil, err
	}
	ropts := fault.Degraded(opts.RouteOptions())
	scenarios, exhaustive, err := fault.Scenarios(topo, model)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	comms := app.Commodities()
	frep, err := fault.SweepContext(ctx, topo, res.Assign, comms, ropts, scenarios, exhaustive, s.parallelism, s.limit)
	if err != nil {
		return nil, err
	}
	k := model.K
	if k <= 0 {
		k = 1
	}
	rep := &FaultReport{
		App:                 app.Name(),
		Topology:            topo.Name(),
		Routing:             ropts.Function.String(),
		K:                   k,
		Elements:            model.Elements.String(),
		Scenarios:           frep.Scenarios,
		Exhaustive:          frep.Exhaustive,
		Survivability:       frep.Survivability(),
		ConnectedFrac:       frep.ConnectedFrac(),
		BaselineMaxLoadMBps: frep.Baseline.MaxLinkLoadMBps,
		WorstMaxLoadMBps:    frep.WorstMaxLinkLoadMBps,
		ExpectedMaxLoadMBps: frep.ExpMaxLinkLoadMBps,
		BaselineAvgHops:     frep.Baseline.AvgHops,
		WorstAvgHops:        frep.WorstAvgHops,
		ExpectedAvgHops:     frep.ExpAvgHops,
		WorstLinks:          frep.WorstCase.Links,
		WorstSwitches:       frep.WorstCase.Switches,
	}
	if d := frep.Disconnecting; d != nil {
		rep.DisconnectingLinks = d.Links
		rep.DisconnectingSwitches = d.Switches
	}
	if req.SimRate > 0 && frep.Connected > 0 {
		sim, err := s.faultSim(ctx, app, res, ropts, frep.WorstCase, req)
		if err != nil {
			return nil, err
		}
		rep.Sim = sim
	}
	return rep, nil
}

// faultSim runs the cycle-accurate fault-injection experiment for a
// sweep's worst-case connected scenario: trace traffic over the
// optimized mapping, the scenario's links failed mid-measurement, and a
// degraded-mode route table (masked rerouting of every commodity)
// installed for packets injected after the fault.
func (s *Session) faultSim(ctx context.Context, app *graph.CoreGraph, res *mapping.Result, ropts route.Options, worst fault.Scenario, req FaultSweepRequest) (*FaultSimReport, error) {
	topo := res.Topology
	routes, err := sim.BuildRoutesFromResult(topo, res.Assign, res.Route)
	if err != nil {
		return nil, fmt.Errorf("sunmap: fault sim: %w", err)
	}
	// Degraded routes: reroute every commodity with the scenario masked,
	// this time collecting paths for the route table.
	mask := make([]bool, len(topo.Links()))
	for _, id := range worst.Links {
		mask[id] = true
	}
	dopts := ropts
	dopts.LoadsOnly = false
	dopts.DownLinks = mask
	rerouted, err := route.Route(topo, res.Assign, app.Commodities(), dopts)
	if err != nil {
		// The sweep proved this scenario connected; a failure here is an
		// internal inconsistency, not bad input.
		return nil, fmt.Errorf("sunmap: fault sim: rerouting worst case: %w", err)
	}
	faultRoutes, err := sim.BuildRoutesFromResult(topo, res.Assign, rerouted)
	if err != nil {
		return nil, fmt.Errorf("sunmap: fault sim: %w", err)
	}
	trace, err := traffic.NewTrace(app, res.Assign)
	if err != nil {
		return nil, fmt.Errorf("sunmap: fault sim: %w", err)
	}
	cfg := sim.Config{
		Topo:            topo,
		Routes:          routes,
		FaultRoutes:     faultRoutes,
		FaultLinks:      worst.Links,
		Pattern:         trace,
		SourceShare:     trace.SourceShare(),
		ActiveTerminals: res.Assign,
		InjectionRate:   req.SimRate,
		Seed:            req.Fault.Seed,
	}
	// Default injection point: midway through the measurement window.
	cfg.FaultCycle = sim.DefaultWarmupCycles + sim.DefaultMeasureCycles/2
	if req.SimCycle > 0 {
		cfg.FaultCycle = req.SimCycle
	}
	st, err := sim.RunContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return &FaultSimReport{
		Rate:              req.SimRate,
		FaultCycle:        cfg.FaultCycle,
		FailedLinks:       worst.Links,
		Rerouted:          true,
		PreFaultFPC:       st.PreFaultFPC,
		PostFaultFPC:      st.PostFaultFPC,
		AvgLatencyCycles:  st.AvgLatencyCycles,
		MeasuredPackets:   st.MeasuredPackets,
		UnfinishedPackets: st.UnfinishedPackets,
		Saturated:         st.Saturated,
	}, nil
}

// Search discovers an application-specific topology by simulated
// annealing over arbitrary digraph edge sets (see internal/search),
// registers the winner in the session's topology scope, and reports its
// full mapped evaluation. Follow-up requests on the same session can
// address the discovered network by the reported name exactly like a
// library topology. The result is deterministic for a fixed seed at
// every parallelism setting.
func (s *Session) Search(ctx context.Context, req SearchRequest) (*SearchReport, error) {
	return s.SearchCheckpointed(ctx, req, nil)
}

// SearchCheckpoint is one annealing chain's serializable resume point —
// see the checkpoint/resume determinism contract in internal/search.
type SearchCheckpoint = search.ChainCheckpoint

// SearchCheckpoints plumbs durable checkpointing into a search run:
// Sink receives a checkpoint every Every evaluations of each chain
// (concurrently — it must be safe and fast), and Resume seeds chains
// from previously captured checkpoints. A resumed run must repeat the
// original request's seed, budget, restarts, bounds and application.
type SearchCheckpoints struct {
	Every  int
	Sink   func(SearchCheckpoint)
	Resume []SearchCheckpoint
}

// SearchCheckpointed is Search with a checkpoint conduit: the jobs
// layer uses it to journal annealing progress and to resume interrupted
// searches with bit-identical results.
func (s *Session) SearchCheckpointed(ctx context.Context, req SearchRequest, cp *SearchCheckpoints) (*SearchReport, error) {
	ctx = s.traceCtx(ctx)
	defer obs.FromContext(ctx).Start(obs.StageSearch).End()
	app, err := req.App.resolve()
	if err != nil {
		return nil, err
	}
	mopts, err := req.Mapping.options(s.tech)
	if err != nil {
		return nil, err
	}
	opts := search.Options{
		Budget:            req.Search.Budget,
		Restarts:          req.Search.Restarts,
		Seed:              req.Search.Seed,
		MaxRadix:          req.Search.MaxRadix,
		MaxCoresPerSwitch: req.Search.MaxCoresPerSwitch,
		MaxSwitches:       req.Search.MaxSwitches,
		Mapping:           mopts,
		Parallelism:       s.parallelism,
		Limit:             s.limit,
	}
	if cp != nil {
		opts.CheckpointEvery = cp.Every
		opts.Checkpoint = cp.Sink
		opts.Resume = cp.Resume
	}
	if spec := s.faultSpec(req.Fault); spec != nil {
		m, err := spec.model()
		if err != nil {
			return nil, err
		}
		opts.Fault = &m
		opts.ReliabilityWeight = spec.ReliabilityWeight
	}
	res, err := search.Run(ctx, app, opts)
	if err != nil {
		switch {
		case errors.Is(err, search.ErrBadOptions):
			return nil, fmt.Errorf("sunmap: %w: %w", ErrBadRequest, err)
		case errors.Is(err, search.ErrNoFeasible):
			return nil, fmt.Errorf("sunmap: search %s: %w within budget (try a larger budget or capacity)",
				app.Name(), ErrInfeasible)
		default:
			return nil, err
		}
	}
	best := res.Best
	topo := best.Evaluated.Topology
	if err := s.scope.Register(topo); err != nil {
		return nil, fmt.Errorf("sunmap: search %s: registering %s: %w", app.Name(), topo.Name(), err)
	}
	rep := &SearchReport{
		App:         app.Name(),
		Topology:    topo.Name(),
		Seed:        res.Seed,
		Budget:      res.Budget,
		Evaluations: res.Evaluations,
		Accepted:    res.Accepted,
		Chains:      res.Chains,
		Routers:     best.Routers,
		Links:       2 * len(best.BiLinks),
		BiLinks:     best.BiLinks,
		Fitness:     best.Fitness,
		Best:        buildDesignReport(app, best.Evaluated),
	}
	if best.HasSurvivability {
		sv := best.Survivability
		rep.Survivability = &sv
	}
	return rep, nil
}

// Do executes one Request and always returns a Report: operation failures
// land in Report.Error/ErrorKind instead of propagating, panics are
// recovered into internal-error reports, and Request.TimeoutMS bounds the
// call. Do never panics on bad input — the isolation contract Batch and
// the serve layer rely on.
func (s *Session) Do(ctx context.Context, req Request) Report {
	return s.DoCheckpointed(ctx, req, nil)
}

// DoCheckpointed is Do with a checkpoint conduit for search operations:
// cp (optional) plumbs periodic annealing checkpoints and resume state
// through to SearchCheckpointed, and is ignored by every other op. It
// is the hook the serve layer's durable job runner executes through.
func (s *Session) DoCheckpointed(ctx context.Context, req Request, cp *SearchCheckpoints) (rep Report) {
	rep = Report{ID: req.ID, Op: req.Op}
	// Declared before the recover defer (LIFO), so the observed outcome
	// includes panics the recover turned into error reports.
	opStart := obs.Now()
	defer func() {
		m, ok := opMetricsByOp[req.Op]
		if !ok {
			return // unknown op: Validate already rejected it
		}
		m.seconds.ObserveSeconds(int64(obs.Since(opStart)))
		if rep.Error == "" {
			m.ok.Inc()
		} else {
			m.err.Inc()
		}
	}()
	defer func() {
		if r := recover(); r != nil {
			rep.Error = fmt.Sprintf("panic: %v", r)
			rep.ErrorKind = ErrorKindInternal
		}
	}()
	if err := req.Validate(); err != nil {
		rep.Error = err.Error()
		rep.ErrorKind = ErrorKindBadRequest
		return rep
	}
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	var err error
	switch req.Op {
	case OpSelect:
		rep.Select, err = s.Select(ctx, *req.Select)
	case OpMap:
		rep.Map, err = s.Map(ctx, *req.Map)
	case OpRoutingSweep:
		rep.RoutingSweep, err = s.RoutingSweep(ctx, *req.RoutingSweep)
	case OpPareto:
		rep.Pareto, err = s.ParetoExplore(ctx, *req.Pareto)
	case OpSimulate:
		rep.Simulate, err = s.Simulate(ctx, *req.Simulate)
	case OpGenerate:
		rep.Generate, err = s.Generate(ctx, *req.Generate)
	case OpFaultSweep:
		rep.FaultSweep, err = s.FaultSweep(ctx, *req.FaultSweep)
	case OpSearch:
		rep.Search, err = s.SearchCheckpointed(ctx, *req.Search, cp)
	}
	if err != nil {
		rep.Error = err.Error()
		rep.ErrorKind = classifyError(err)
	}
	return rep
}

// classifyError buckets an operation error into a wire-stable kind.
func classifyError(err error) string {
	switch {
	case errors.Is(err, ErrBadRequest), errors.Is(err, ErrUnknownApp), errors.Is(err, ErrUnknownTopology):
		return ErrorKindBadRequest
	case errors.Is(err, ErrInfeasible):
		return ErrorKindInfeasible
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return ErrorKindCanceled
	default:
		return ErrorKindInternal
	}
}

// Batch executes the requests concurrently on the session pool and
// returns one Report per Request, at the same index — result order is
// deterministic and, for deterministic operations, the reports are
// byte-identical across every parallelism setting. Requests are isolated
// from each other: one bad or panicking request yields an error Report
// without disturbing its neighbors. Cancelling ctx aborts in-flight
// evaluations; requests that never produced a report are marked canceled,
// and the context's error is returned alongside the partial results.
func (s *Session) Batch(ctx context.Context, reqs []Request) ([]Report, error) {
	reports := make([]Report, len(reqs))
	pool.ForEach(ctx, len(reqs), s.workers(len(reqs)), func(i int) {
		reports[i] = s.Do(ctx, reqs[i])
	})
	if err := ctx.Err(); err != nil {
		for i := range reports {
			if reports[i].Op == "" && reports[i].Error == "" {
				reports[i] = Report{
					ID: reqs[i].ID, Op: reqs[i].Op,
					Error:     err.Error(),
					ErrorKind: ErrorKindCanceled,
				}
			}
		}
		return reports, err
	}
	return reports, nil
}

// buildSelectReport lowers a core.Selection onto the wire schema.
func buildSelectReport(app *graph.CoreGraph, sel *Selection) *SelectReport {
	rep := &SelectReport{
		App:         app.Name(),
		RoutingUsed: sel.RoutingUsed.String(),
		Candidates:  len(sel.Candidates),
		Feasible:    sel.FeasibleCount(),
		Synthesized: sel.SynthCount(),
	}
	for _, r := range sel.Summaries() {
		row := TopologyRow{
			Topology:    r.Topology,
			Kind:        r.Kind.String(),
			AvgHops:     r.AvgHops,
			AreaMM2:     r.AreaMM2,
			PowerMW:     r.PowerMW,
			Switches:    r.Switches,
			Links:       r.Links,
			MaxLoadMBps: r.MaxLoadMBps,
			Feasible:    r.Feasible,
		}
		if r.HasSurvivability {
			surv := r.Survivability
			row.Survivability = &surv
		}
		rep.Rows = append(rep.Rows, row)
	}
	if sel.Best != nil {
		rep.Topology = sel.Best.Topology.Name()
		rep.Best = buildDesignReport(app, sel.Best)
	}
	return rep
}

// buildDesignReport lowers a mapping result onto the wire schema.
func buildDesignReport(app *graph.CoreGraph, res *mapping.Result) *DesignReport {
	rep := &DesignReport{
		Topology:        res.Topology.Name(),
		AvgHops:         res.AvgHops,
		DesignAreaMM2:   res.DesignAreaMM2,
		ChipAreaMM2:     res.ChipAreaMM2,
		NetworkAreaMM2:  res.NetworkAreaMM2,
		PowerMW:         res.PowerMW,
		MaxLinkLoadMBps: res.Route.MaxLinkLoad,
		Cost:            res.Cost,
		BandwidthOK:     res.BandwidthOK,
		AreaOK:          res.AreaOK,
		AspectOK:        res.AspectOK,
		Feasible:        res.Feasible(),
		SwapsApplied:    res.SwapsApplied,
	}
	for c, term := range res.Assign {
		rep.Assign = append(rep.Assign, AssignRow{
			Core:     app.Core(c).Name,
			Terminal: term,
			Router:   res.Topology.InjectRouter(term),
		})
	}
	if fp := res.Floorplan; fp != nil {
		fpRep := &FloorplanReport{ChipWMM: fp.ChipWMM, ChipHMM: fp.ChipHMM}
		for _, b := range fp.Blocks {
			fpRep.Blocks = append(fpRep.Blocks, BlockRow{Name: b.Name, X: b.X, Y: b.Y, W: b.W, H: b.H})
		}
		sort.Slice(fpRep.Blocks, func(i, j int) bool { return fpRep.Blocks[i].Name < fpRep.Blocks[j].Name })
		rep.Floorplan = fpRep
	}
	return rep
}
