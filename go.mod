module sunmap

go 1.24
