package sunmap_test

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"sunmap"
)

// TestRequestJSONRoundTrip: a Request survives marshal -> ParseRequest
// unchanged, for every op.
func TestRequestJSONRoundTrip(t *testing.T) {
	reqs := []sunmap.Request{
		{ID: "1", Op: sunmap.OpSelect, TimeoutMS: 5000, Select: &sunmap.SelectRequest{
			App: sunmap.AppSpec{Name: "vopd"},
			Mapping: sunmap.MapSpec{
				Routing: "MP", Objective: "delay", CapacityMBps: 500, Tech: "100nm",
			},
			Escalate: true,
			Synth:    &sunmap.SynthSpec{MaxRadix: 6, ClusterSizes: []int{2, 4}},
		}},
		{Op: sunmap.OpMap, Map: &sunmap.MapRequest{
			App: sunmap.AppSpec{
				Label: "tiny",
				Cores: []sunmap.CoreSpec{{Name: "a", AreaMM2: 2, Soft: true, MinAspect: 0.5, MaxAspect: 2}},
				Flows: []sunmap.FlowSpec{{From: "a", To: "a", MBps: 1}},
			},
			Topology: "mesh-2x2",
		}},
		{Op: sunmap.OpRoutingSweep, RoutingSweep: &sunmap.SweepRequest{
			App:      sunmap.AppSpec{Text: "app t\ncore a area=1\ncore b area=1\nflow a -> b 10\n"},
			Topology: "mesh-1x2",
		}},
		{Op: sunmap.OpPareto, Pareto: &sunmap.ParetoRequest{
			App: sunmap.AppSpec{Name: "mpeg4"}, Topology: "mesh-3x4",
			Mapping: sunmap.MapSpec{Routing: "SM", Objective: "weighted", WeightDelay: 0.5, WeightArea: 0.3, WeightPower: 0.2},
			Steps:   3,
		}},
		{Op: sunmap.OpSimulate, Simulate: &sunmap.SimRequest{
			Topology: "clos-m4n4r4", Pattern: "hotspot", HotspotNode: 3, HotspotFrac: 0.4,
			Rates: []float64{0.1, 0.2}, PacketFlits: 8, Seed: 42,
		}},
		{Op: sunmap.OpGenerate, Generate: &sunmap.GenerateRequest{
			App: sunmap.AppSpec{Name: "dsp"}, Topology: "butterfly-3ary2fly",
		}},
	}
	for _, req := range reqs {
		blob, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		back, err := sunmap.ParseRequest(blob)
		if err != nil {
			t.Fatalf("op %s: %v\n%s", req.Op, err, blob)
		}
		if !reflect.DeepEqual(*back, req) {
			t.Errorf("op %s: round trip changed the request:\nin:  %+v\nout: %+v", req.Op, req, *back)
		}
	}
}

func TestParseRequestRejects(t *testing.T) {
	cases := []struct {
		name, body string
	}{
		{"garbage", "{"},
		{"unknown field", `{"op":"select","select":{"app":{"name":"vopd"}},"bogus":1}`},
		{"unknown op", `{"op":"frobnicate","select":{"app":{"name":"vopd"}}}`},
		{"no payload", `{"op":"select"}`},
		{"mismatched payload", `{"op":"select","map":{"app":{"name":"vopd"},"topology":"mesh-2x2"}}`},
		{"two payloads", `{"op":"select","select":{"app":{"name":"vopd"}},"map":{"app":{"name":"vopd"},"topology":"mesh-2x2"}}`},
		{"negative timeout", `{"op":"select","timeout_ms":-1,"select":{"app":{"name":"vopd"}}}`},
		{"trailing data", `{"op":"select","select":{"app":{"name":"vopd"}}}{"op":"map"}`},
	}
	for _, tc := range cases {
		if _, err := sunmap.ParseRequest([]byte(tc.body)); !errors.Is(err, sunmap.ErrBadRequest) {
			t.Errorf("%s: err = %v, want ErrBadRequest", tc.name, err)
		}
	}
}

// TestReportJSONRoundTrip: a Report (including an error report) survives
// marshal -> ParseReport unchanged.
func TestReportJSONRoundTrip(t *testing.T) {
	reports := []sunmap.Report{
		{ID: "x", Op: sunmap.OpSelect, Select: &sunmap.SelectReport{
			App: "vopd", Topology: "butterfly-4ary2fly", RoutingUsed: "MP",
			Candidates: 9, Feasible: 4,
			Rows: []sunmap.TopologyRow{{Topology: "mesh-3x4", Kind: "mesh", AvgHops: 2.5, Feasible: true}},
			Best: &sunmap.DesignReport{
				Topology: "butterfly-4ary2fly", AvgHops: 3, Feasible: true,
				Assign:    []sunmap.AssignRow{{Core: "vld", Terminal: 2, Router: 0}},
				Floorplan: &sunmap.FloorplanReport{ChipWMM: 7, ChipHMM: 8, Blocks: []sunmap.BlockRow{{Name: "vld", W: 1, H: 2}}},
			},
		}},
		{Op: sunmap.OpSimulate, Error: "boom", ErrorKind: sunmap.ErrorKindInternal},
	}
	for _, rep := range reports {
		blob, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		back, err := sunmap.ParseReport(blob)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(*back, rep) {
			t.Errorf("round trip changed the report:\nin:  %+v\nout: %+v", rep, *back)
		}
	}
}

// TestGenerateReportWriteToRejectsTraversal: file names in a Report are
// wire data and must not escape the target directory.
func TestGenerateReportWriteToRejectsTraversal(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"../escape.txt", "/abs.txt", `a\b.txt`, "sub/dir.txt", ".."} {
		rep := sunmap.GenerateReport{Files: []sunmap.GeneratedFile{{Name: name, Content: "x"}}}
		if err := rep.WriteTo(dir); err == nil {
			t.Errorf("WriteTo accepted unsafe name %q", name)
		}
	}
	ok := sunmap.GenerateReport{Files: []sunmap.GeneratedFile{{Name: "top.cpp", Content: "x"}}}
	if err := ok.WriteTo(dir); err != nil {
		t.Errorf("WriteTo rejected a plain name: %v", err)
	}
}

func TestReportErr(t *testing.T) {
	ok := sunmap.Report{Op: sunmap.OpSelect}
	if err := ok.Err(); err != nil {
		t.Errorf("successful report Err() = %v", err)
	}
	inf := sunmap.Report{Op: sunmap.OpSelect, Error: "nothing fits", ErrorKind: sunmap.ErrorKindInfeasible}
	if err := inf.Err(); !errors.Is(err, sunmap.ErrInfeasible) {
		t.Errorf("infeasible report Err() = %v, want ErrInfeasible", err)
	}
	bad := sunmap.Report{Op: sunmap.OpSelect, Error: "nope", ErrorKind: sunmap.ErrorKindBadRequest}
	if err := bad.Err(); !errors.Is(err, sunmap.ErrBadRequest) {
		t.Errorf("bad-request report Err() = %v, want ErrBadRequest", err)
	}
}
