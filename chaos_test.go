package sunmap_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"testing"
	"time"

	"sunmap"
	"sunmap/serve"
	"sunmap/serve/client"
)

// This file is the service-level half of the chaos harness (the store-
// level half lives in internal/jobs): a real listener is torn down
// mid-search — the SIGKILL-equivalent for the job, since no terminal
// record is written — and restarted over the same journal directory.
// The acceptance criterion: the interrupted job resumes from its
// journaled checkpoint and its final SearchReport is bit-identical to
// an uninterrupted run of the same request.

// startJobServer runs serve.ListenAndServe on a random port over dir
// and returns the base URL plus the server's error channel.
func startJobServer(t *testing.T, ctx context.Context, dir string) (string, chan error) {
	t.Helper()
	sess, err := sunmap.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan net.Addr, 1)
	opts := serve.Options{
		JobsDir:         dir,
		JobWorkers:      1,
		CheckpointEvery: 50,
		OnListen:        func(a net.Addr) { addrCh <- a },
	}
	done := make(chan error, 1)
	go func() {
		done <- serve.ListenAndServe(ctx, "127.0.0.1:0", sess, opts, time.Second)
	}()
	select {
	case addr := <-addrCh:
		return fmt.Sprintf("http://%s", addr), done
	case err := <-done:
		t.Fatalf("server died before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never listened")
	}
	return "", nil
}

func TestServerKillRestartResumesSearchBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second kill/restart harness")
	}
	dir := t.TempDir()
	req := sunmap.Request{
		ID: "durable-search",
		Op: sunmap.OpSearch,
		Search: &sunmap.SearchRequest{
			App:     sunmap.AppSpec{Name: "vopd"},
			Mapping: sunmap.MapSpec{Routing: "MP", Objective: "delay", CapacityMBps: 1000},
			Search:  sunmap.SearchOptions{Budget: 20000, Seed: 42},
		},
	}

	// Phase 1: submit, wait for the first durable checkpoint, kill.
	ctx1, kill := context.WithCancel(context.Background())
	url1, done1 := startJobServer(t, ctx1, dir)
	cl1 := client.New(url1, client.Options{Seed: 1})
	jb, err := cl1.Submit(context.Background(), req)
	if err != nil {
		kill()
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		snap, err := cl1.Job(context.Background(), jb.ID)
		if err != nil {
			kill()
			t.Fatal(err)
		}
		if snap.State.Terminal() {
			kill()
			t.Fatalf("job finished before the kill — raise the budget (state %s)", snap.State)
		}
		if snap.HasCheckpoint {
			break
		}
		if time.Now().After(deadline) {
			kill()
			t.Fatal("no checkpoint ever became durable")
		}
		time.Sleep(5 * time.Millisecond)
	}
	kill()
	select {
	case err := <-done1:
		if err != nil {
			t.Fatalf("server teardown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server never shut down")
	}

	// Phase 2: restart over the same journal; the replayed job must
	// resume (attempt 2) and complete.
	ctx2, stop := context.WithCancel(context.Background())
	defer stop()
	url2, done2 := startJobServer(t, ctx2, dir)
	cl2 := client.New(url2, client.Options{Seed: 2})
	got, err := cl2.Job(context.Background(), jb.ID)
	if err != nil {
		t.Fatalf("job lost across restart: %v", err)
	}
	if !got.HasCheckpoint {
		t.Fatal("checkpoint lost across restart")
	}
	waitCtx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	fin, err := cl2.Wait(waitCtx, jb.ID, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "done" {
		t.Fatalf("recovered job ended %s (%s)", fin.State, fin.Error)
	}
	if fin.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one interrupted, one resumed)", fin.Attempts)
	}
	rep, err := cl2.Result(context.Background(), jb.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err() != nil || rep.Search == nil {
		t.Fatalf("recovered report: %+v", rep)
	}

	// Phase 3: the same request, uninterrupted and in-process, must
	// produce a bit-identical SearchReport.
	sess, err := sunmap.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	want := sess.Do(context.Background(), req)
	if want.Err() != nil {
		t.Fatal(want.Err())
	}
	gotJSON, _ := json.Marshal(rep.Search)
	wantJSON, _ := json.Marshal(want.Search)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("resumed search differs from uninterrupted run:\n%s\n%s", gotJSON, wantJSON)
	}

	stop()
	select {
	case err := <-done2:
		if err != nil {
			t.Errorf("second server teardown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Error("second server never shut down")
	}
}
