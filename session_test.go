package sunmap_test

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"sunmap"
)

// batchRequests is a mixed workload exercising every deterministic op.
func batchRequests() []sunmap.Request {
	dsp := sunmap.AppSpec{Name: "dsp"}
	return []sunmap.Request{
		{ID: "sel", Op: sunmap.OpSelect, Select: &sunmap.SelectRequest{
			App: dsp, Mapping: sunmap.MapSpec{CapacityMBps: 1000},
		}},
		{ID: "map", Op: sunmap.OpMap, Map: &sunmap.MapRequest{
			App: dsp, Topology: "mesh-2x3", Mapping: sunmap.MapSpec{CapacityMBps: 1000},
		}},
		{ID: "sweep", Op: sunmap.OpRoutingSweep, RoutingSweep: &sunmap.SweepRequest{
			App: dsp, Topology: "mesh-2x3", Mapping: sunmap.MapSpec{CapacityMBps: 1000},
		}},
		{ID: "pareto", Op: sunmap.OpPareto, Pareto: &sunmap.ParetoRequest{
			App: dsp, Topology: "mesh-2x3", Mapping: sunmap.MapSpec{Routing: "SM", CapacityMBps: 1000}, Steps: 2,
		}},
		{ID: "sim", Op: sunmap.OpSimulate, Simulate: &sunmap.SimRequest{
			Topology: "mesh-2x2", Rates: []float64{0.1, 0.2}, Seed: 3,
			WarmupCycles: 100, MeasureCycles: 300, DrainCycles: 500,
		}},
		{ID: "gen", Op: sunmap.OpGenerate, Generate: &sunmap.GenerateRequest{
			App: dsp, Topology: "mesh-2x3", Mapping: sunmap.MapSpec{CapacityMBps: 1000},
		}},
		{ID: "bad", Op: "nonsense"},
	}
}

// TestBatchDeterministicAcrossParallelism is the satellite determinism
// guarantee: the marshaled reports of a Batch are byte-identical between
// the sequential path and the default parallel pool.
func TestBatchDeterministicAcrossParallelism(t *testing.T) {
	var blobs [][]byte
	for _, par := range []int{1, 0} {
		sess, err := sunmap.NewSession(sunmap.WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		reports, err := sess.Batch(context.Background(), batchRequests())
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if len(reports) != len(batchRequests()) {
			t.Fatalf("parallelism %d: %d reports", par, len(reports))
		}
		blob, err := json.Marshal(reports)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
	}
	if string(blobs[0]) != string(blobs[1]) {
		t.Errorf("reports differ between sequential and parallel batches:\nseq: %s\npar: %s", blobs[0], blobs[1])
	}
}

func TestBatchResultsAndIsolation(t *testing.T) {
	sess, err := sunmap.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	reqs := batchRequests()
	reports, err := sess.Batch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reports {
		if rep.ID != reqs[i].ID {
			t.Errorf("report %d: ID %q, want %q (order not preserved)", i, rep.ID, reqs[i].ID)
		}
	}
	if topo := reports[0].Select.Topology; !strings.HasPrefix(topo, "butterfly") {
		t.Errorf("dsp selection chose %q, want a butterfly (Section 6.4)", topo)
	}
	if reports[1].Map == nil || reports[1].Map.Topology != "mesh-2x3" {
		t.Errorf("map report: %+v", reports[1].Map)
	}
	if len(reports[2].RoutingSweep.Rows) != 4 {
		t.Errorf("routing sweep has %d rows", len(reports[2].RoutingSweep.Rows))
	}
	if len(reports[3].Pareto.Points) == 0 {
		t.Error("pareto explore returned no points")
	}
	if len(reports[4].Simulate.Rows) != 2 {
		t.Errorf("simulate returned %d rows", len(reports[4].Simulate.Rows))
	}
	if len(reports[5].Generate.Files) < 5 {
		t.Errorf("generate returned %d files", len(reports[5].Generate.Files))
	}
	// The malformed request is isolated: an error report, not a panic or a
	// batch failure.
	if reports[6].ErrorKind != sunmap.ErrorKindBadRequest {
		t.Errorf("bad request report: %+v", reports[6])
	}
	if err := reports[6].Err(); !errors.Is(err, sunmap.ErrBadRequest) {
		t.Errorf("reconstructed error %v does not unwrap to ErrBadRequest", err)
	}
}

// TestBatchCancellationAbortsInFlight is the satellite cancellation
// guarantee: cancelling mid-batch aborts evaluations already running on
// the engine pool and marks every unfinished request canceled.
func TestBatchCancellationAbortsInFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	sess, err := sunmap.NewSession(
		sunmap.WithParallelism(2),
		// Cancel as soon as the first candidate of the first select
		// finishes: both selects are then mid-sweep.
		sunmap.WithProgress(func(sunmap.ProgressEvent) { once.Do(cancel) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []sunmap.Request{
		{ID: "a", Op: sunmap.OpSelect, Select: &sunmap.SelectRequest{
			App: sunmap.AppSpec{Name: "vopd"}, Mapping: sunmap.MapSpec{CapacityMBps: 500},
		}},
		{ID: "b", Op: sunmap.OpSelect, Select: &sunmap.SelectRequest{
			App: sunmap.AppSpec{Name: "netproc"}, Mapping: sunmap.MapSpec{},
		}},
	}
	start := time.Now()
	reports, err := sess.Batch(ctx, reqs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Batch err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cancellation took %v — in-flight work not aborted", elapsed)
	}
	if len(reports) != len(reqs) {
		t.Fatalf("%d reports", len(reports))
	}
	for i, rep := range reports {
		if rep.ErrorKind != sunmap.ErrorKindCanceled {
			t.Errorf("report %d: kind %q, want canceled (%+v)", i, rep.ErrorKind, rep)
		}
	}
}

func TestRequestTimeout(t *testing.T) {
	sess, err := sunmap.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	// The deadline is already expired when Do dispatches, so the timeout
	// fires deterministically — a warm netproc selection finishes in
	// under a millisecond, which a small TimeoutMS would race (and
	// sometimes lose to).
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	rep := sess.Do(ctx, sunmap.Request{
		Op:        sunmap.OpSelect,
		TimeoutMS: 1,
		Select: &sunmap.SelectRequest{
			App: sunmap.AppSpec{Name: "netproc"}, Mapping: sunmap.MapSpec{},
		},
	})
	if rep.ErrorKind != sunmap.ErrorKindCanceled {
		t.Errorf("timed-out request: kind %q (%+v)", rep.ErrorKind, rep)
	}
}

// TestSessionSharedCache shows the session cache working across methods:
// a Select warms the cache, the equivalent Map replays from it.
func TestSessionSharedCache(t *testing.T) {
	sess, err := sunmap.NewSession(sunmap.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rep, err := sess.Select(ctx, sunmap.SelectRequest{
		App: sunmap.AppSpec{Name: "dsp"}, Mapping: sunmap.MapSpec{CapacityMBps: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	before := sess.CacheStats()
	des, err := sess.Map(ctx, sunmap.MapRequest{
		App: sunmap.AppSpec{Name: "dsp"}, Topology: rep.Topology,
		Mapping: sunmap.MapSpec{CapacityMBps: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	after := sess.CacheStats()
	if after.Hits <= before.Hits {
		t.Errorf("Map after Select missed the session cache: %+v -> %+v", before, after)
	}
	if des.AvgHops != rep.Best.AvgHops || des.PowerMW != rep.Best.PowerMW {
		t.Errorf("cached replay differs: %+v vs %+v", des, rep.Best)
	}
}

func TestSessionOptionValidation(t *testing.T) {
	if _, err := sunmap.NewSession(sunmap.WithParallelism(-1)); err == nil {
		t.Error("negative parallelism accepted")
	}
	// WithCache(nil) disables memoization without breaking calls.
	sess, err := sunmap.NewSession(sunmap.WithCache(nil))
	if err != nil {
		t.Fatal(err)
	}
	if sess.Cache() != nil {
		t.Error("WithCache(nil) kept a cache")
	}
	if _, err := sess.Map(context.Background(), sunmap.MapRequest{
		App: sunmap.AppSpec{Name: "dsp"}, Topology: "mesh-2x3",
		Mapping: sunmap.MapSpec{CapacityMBps: 1000},
	}); err != nil {
		t.Errorf("cacheless session: %v", err)
	}
}

// TestInlineGraphSources checks the three AppSpec sources agree.
func TestInlineGraphSources(t *testing.T) {
	sess, err := sunmap.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	text := "app tiny\ncore a area=2\ncore b area=3\nflow a -> b 100\n"
	structured := sunmap.AppSpec{
		Label: "tiny",
		Cores: []sunmap.CoreSpec{{Name: "a", AreaMM2: 2}, {Name: "b", AreaMM2: 3}},
		Flows: []sunmap.FlowSpec{{From: "a", To: "b", MBps: 100}},
	}
	fromText, err := sess.Map(ctx, sunmap.MapRequest{
		App: sunmap.AppSpec{Text: text}, Topology: "mesh-1x2",
		Mapping: sunmap.MapSpec{CapacityMBps: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	fromStruct, err := sess.Map(ctx, sunmap.MapRequest{
		App: structured, Topology: "mesh-1x2",
		Mapping: sunmap.MapSpec{CapacityMBps: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fromText.AvgHops != 2 || fromStruct.AvgHops != fromText.AvgHops {
		t.Errorf("inline sources disagree: text %+v vs structured %+v", fromText, fromStruct)
	}
}
