package sunmap

// Test-only stand-ins for the removed pre-Session wrappers. The library
// no longer ships a ctx-less surface (ctxdiscipline forbids minting
// contexts outside package main), but the root tests exercise the
// internal pipeline through these thin typed entry points, which read
// better than threading context.Background() through every call site.
// Being declared in a _test.go file, they exist only in the test binary
// and are invisible to both importers and the analyzers.

import (
	"context"

	"sunmap/internal/core"
	"sunmap/internal/mapping"
	"sunmap/internal/sim"
	"sunmap/internal/xpipes"
)

// App returns a built-in benchmark application, panicking on unknown
// names — acceptable in tests, forbidden in the library.
func App(name string) *CoreGraph {
	g, err := AppByName(name)
	if err != nil {
		panic(err)
	}
	return g
}

// Select runs Phases 1 and 2 without cancellation.
func Select(cfg SelectConfig) (*Selection, error) {
	return core.SelectContext(context.Background(), cfg)
}

// SelectContext is Select with cancellation.
func SelectContext(ctx context.Context, cfg SelectConfig) (*Selection, error) {
	return core.SelectContext(ctx, cfg)
}

// Map runs the Fig. 5 mapping algorithm on one topology.
func Map(app *CoreGraph, topo Topology, opts MapOptions) (*MapResult, error) {
	return mapping.MapContext(context.Background(), app, topo, opts)
}

// RoutingSweep reports the minimum required link bandwidth per routing
// function (Fig. 9a).
func RoutingSweep(app *CoreGraph, topo Topology, opts MapOptions) ([]RoutingSweepRow, error) {
	return core.RoutingSweepContext(context.Background(), app, topo, opts, ExploreOptions{})
}

// RoutingSweepContext is RoutingSweep on the engine pool.
func RoutingSweepContext(ctx context.Context, app *CoreGraph, topo Topology, opts MapOptions, xo ExploreOptions) ([]RoutingSweepRow, error) {
	return core.RoutingSweepContext(ctx, app, topo, opts, xo)
}

// ParetoExploreContext sweeps weighted objectives on the engine pool.
func ParetoExploreContext(ctx context.Context, app *CoreGraph, topo Topology, opts MapOptions, steps int, xo ExploreOptions) ([]ParetoPoint, error) {
	return core.ParetoExploreContext(ctx, app, topo, opts, steps, xo)
}

// Generate emits the SystemC description of a mapped design (Phase 3).
func Generate(app *CoreGraph, res *MapResult, t Tech) (*SystemC, error) {
	return xpipes.Generate(app, res, t)
}

// Simulate runs the cycle-accurate simulator.
func Simulate(cfg SimConfig) (*SimStats, error) {
	return sim.RunContext(context.Background(), cfg)
}
