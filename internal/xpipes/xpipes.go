// Package xpipes implements SUNMAP's Phase 3 (Section 3): generation of
// the selected network as SystemC soft macros in the style of the ×pipes
// architecture [17] and ×pipesCompiler [18]. Given a mapped design it
// emits parameterized switch, link and network-interface modules plus a
// top-level netlist binding the cores to the network, alongside a DOT
// rendering and a floorplan report. The emitted SystemC is structural and
// cycle-oriented like ×pipes; it is not tested against a SystemC
// toolchain (this repository's cycle-accurate runs use internal/sim — see
// DESIGN.md).
package xpipes

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"sunmap/internal/graph"
	"sunmap/internal/mapping"
	"sunmap/internal/tech"
)

// Output is a generated SystemC design.
type Output struct {
	// Files maps relative file names to contents.
	Files map[string]string
	// TopModule is the name of the top-level module.
	TopModule string
}

// FileNames returns the generated names in sorted order.
func (o *Output) FileNames() []string {
	names := make([]string, 0, len(o.Files))
	for n := range o.Files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteTo materializes the generated files under dir, creating it if
// needed.
func (o *Output) WriteTo(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("xpipes: %w", err)
	}
	for name, content := range o.Files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return fmt.Errorf("xpipes: %w", err)
		}
	}
	return nil
}

// Generate emits the SystemC description of a mapped design.
func Generate(g *graph.CoreGraph, res *mapping.Result, t tech.Tech) (*Output, error) {
	if g == nil || res == nil {
		return nil, fmt.Errorf("xpipes: nil design")
	}
	if len(res.Assign) != g.NumCores() {
		return nil, fmt.Errorf("xpipes: mapping covers %d cores, graph has %d", len(res.Assign), g.NumCores())
	}
	topo := res.Topology
	out := &Output{
		Files:     make(map[string]string),
		TopModule: sanitize(g.Name()) + "_noc",
	}
	out.Files["xpipes_switch.h"] = switchHeader(res)
	out.Files["xpipes_link.h"] = linkHeader()
	out.Files["xpipes_ni.h"] = niHeader(t)
	out.Files[out.TopModule+".cpp"] = topModule(g, res, out.TopModule)
	out.Files["design.dot"] = designDOT(g, res)
	if res.Floorplan != nil {
		out.Files["floorplan.txt"] = floorplanReport(res)
	}
	out.Files["README.txt"] = fmt.Sprintf(
		"SUNMAP-generated NoC for application %q\ntopology: %s\nswitches: %d  links: %d  cores: %d\n"+
			"avg hops: %.3f  design area: %.2f mm^2  power: %.1f mW\n",
		g.Name(), topo.Name(), topo.NumRouters(), len(topo.Links()), g.NumCores(),
		res.AvgHops, res.DesignAreaMM2, res.PowerMW)
	return out, nil
}

// switchHeader emits the parameterized ×pipes switch soft macro with one
// specialization comment per instantiated configuration.
func switchHeader(res *mapping.Result) string {
	var sb strings.Builder
	sb.WriteString(`// xpipes_switch.h -- parameterized xpipes switch soft macro (generated)
#ifndef XPIPES_SWITCH_H
#define XPIPES_SWITCH_H
#include <systemc.h>

// Input-buffered wormhole switch with round-robin allocation and
// credit-based flow control, after the xpipes architecture (ICCD'03).
template <int NIN, int NOUT, int BUF_DEPTH, int FLIT_BITS>
SC_MODULE(xpipes_switch) {
    sc_in<bool>                clock;
    sc_in<bool>                reset;
    sc_in<sc_uint<FLIT_BITS> > flit_in[NIN];
    sc_in<bool>                req_in[NIN];
    sc_out<bool>               ack_in[NIN];
    sc_out<sc_uint<FLIT_BITS> > flit_out[NOUT];
    sc_out<bool>               req_out[NOUT];
    sc_in<bool>                ack_out[NOUT];

    sc_uint<FLIT_BITS> buffer[NIN][BUF_DEPTH];
    int head[NIN], tail[NIN], credits[NOUT], owner[NOUT], rr;

    void arbitrate();
    void traverse();

    SC_CTOR(xpipes_switch) : rr(0) {
        SC_METHOD(arbitrate); sensitive << clock.pos();
        SC_METHOD(traverse);  sensitive << clock.pos();
    }
};
`)
	// Unique configurations, for the library report.
	uniq := make(map[string]int)
	for _, c := range res.SwitchConfigs {
		uniq[fmt.Sprintf("xpipes_switch<%d, %d, %d, %d>", c.In, c.Out, c.BufDepthFlits, c.FlitBits)]++
	}
	keys := make([]string, 0, len(uniq))
	for k := range uniq {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sb.WriteString("\n// Switch configurations instantiated by this design:\n")
	for _, k := range keys {
		fmt.Fprintf(&sb, "//   %s  x%d\n", k, uniq[k])
	}
	sb.WriteString("\n#endif // XPIPES_SWITCH_H\n")
	return sb.String()
}

func linkHeader() string {
	return `// xpipes_link.h -- pipelined link soft macro (generated)
#ifndef XPIPES_LINK_H
#define XPIPES_LINK_H
#include <systemc.h>

// Latency-insensitive pipelined link: N_STAGES relay stages decouple the
// switch clock from wire delay (xpipes' latency-insensitive operation).
template <int N_STAGES, int FLIT_BITS>
SC_MODULE(xpipes_link) {
    sc_in<bool>                 clock;
    sc_in<sc_uint<FLIT_BITS> >  flit_in;
    sc_in<bool>                 req_in;
    sc_out<bool>                ack_in;
    sc_out<sc_uint<FLIT_BITS> > flit_out;
    sc_out<bool>                req_out;
    sc_in<bool>                 ack_out;

    sc_uint<FLIT_BITS> stage[N_STAGES];

    void relay();
    SC_CTOR(xpipes_link) { SC_METHOD(relay); sensitive << clock.pos(); }
};

#endif // XPIPES_LINK_H
`
}

func niHeader(t tech.Tech) string {
	return fmt.Sprintf(`// xpipes_ni.h -- network interface soft macro (generated)
#ifndef XPIPES_NI_H
#define XPIPES_NI_H
#include <systemc.h>

// Network interface: packetizes OCP-like core transactions into %d-bit
// flits and reassembles them at the target (xpipesCompiler, DATE'04).
template <int FLIT_BITS>
SC_MODULE(xpipes_ni) {
    sc_in<bool>                 clock;
    sc_in<bool>                 reset;
    // core side
    sc_in<sc_uint<64> >         core_data_in;
    sc_in<bool>                 core_valid_in;
    sc_out<sc_uint<64> >        core_data_out;
    sc_out<bool>                core_valid_out;
    // network side
    sc_out<sc_uint<FLIT_BITS> > flit_out;
    sc_out<bool>                req_out;
    sc_in<bool>                 ack_out;
    sc_in<sc_uint<FLIT_BITS> >  flit_in;
    sc_in<bool>                 req_in;
    sc_out<bool>                ack_in;

    void packetize();
    void reassemble();

    SC_CTOR(xpipes_ni) {
        SC_METHOD(packetize);  sensitive << clock.pos();
        SC_METHOD(reassemble); sensitive << clock.pos();
    }
};

#endif // XPIPES_NI_H
`, t.FlitBits)
}

// topModule emits the structural netlist.
func topModule(g *graph.CoreGraph, res *mapping.Result, name string) string {
	topo := res.Topology
	var sb strings.Builder
	fmt.Fprintf(&sb, `// %s.cpp -- SUNMAP-generated top level (application %q on %s)
#include <systemc.h>
#include "xpipes_switch.h"
#include "xpipes_link.h"
#include "xpipes_ni.h"

int sc_main(int argc, char* argv[]) {
    sc_clock clock("clock", 10, SC_NS);
    sc_signal<bool> reset;

`, name, g.Name(), topo.Name())
	// Switches.
	sb.WriteString("    // switches\n")
	for r := 0; r < topo.NumRouters(); r++ {
		c := res.SwitchConfigs[r]
		fmt.Fprintf(&sb, "    xpipes_switch<%d, %d, %d, %d> sw%d(\"sw%d\");\n",
			c.In, c.Out, c.BufDepthFlits, c.FlitBits, r, r)
		fmt.Fprintf(&sb, "    sw%d.clock(clock); sw%d.reset(reset);\n", r, r)
	}
	// Links with per-link signal bundles.
	sb.WriteString("\n    // inter-switch links\n")
	for _, l := range topo.Links() {
		fmt.Fprintf(&sb, "    sc_signal<sc_uint<%d> > flit_l%d; sc_signal<bool> req_l%d, ack_l%d;\n",
			res.SwitchConfigs[0].FlitBits, l.ID, l.ID, l.ID)
		fmt.Fprintf(&sb, "    xpipes_link<1, %d> link%d(\"link%d\"); // sw%d -> sw%d\n",
			res.SwitchConfigs[0].FlitBits, l.ID, l.ID, l.From, l.To)
	}
	// NIs and core bindings.
	sb.WriteString("\n    // network interfaces (one per core)\n")
	cores := g.Cores()
	for i, c := range cores {
		term := res.Assign[i]
		fmt.Fprintf(&sb, "    xpipes_ni<%d> ni_%s(\"ni_%s\"); // core %q on terminal %d (inject sw%d, eject sw%d)\n",
			res.SwitchConfigs[0].FlitBits, sanitize(c.Name), sanitize(c.Name), c.Name, term,
			topo.InjectRouter(term), topo.EjectRouter(term))
	}
	fmt.Fprintf(&sb, `
    sc_start(-1);
    return 0;
}
`)
	return sb.String()
}

// designDOT renders the mapped network for graphviz.
func designDOT(g *graph.CoreGraph, res *mapping.Result) string {
	topo := res.Topology
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n", g.Name()+"-on-"+topo.Name())
	for r := 0; r < topo.NumRouters(); r++ {
		c := res.SwitchConfigs[r]
		fmt.Fprintf(&sb, "  sw%d [shape=diamond, label=\"sw%d\\n%dx%d\"];\n", r, r, c.In, c.Out)
	}
	for _, l := range topo.Links() {
		fmt.Fprintf(&sb, "  sw%d -> sw%d;\n", l.From, l.To)
	}
	cores := g.Cores()
	for i, c := range cores {
		term := res.Assign[i]
		fmt.Fprintf(&sb, "  %q [shape=box];\n", c.Name)
		fmt.Fprintf(&sb, "  %q -> sw%d [style=dashed];\n", c.Name, topo.InjectRouter(term))
		if topo.EjectRouter(term) != topo.InjectRouter(term) {
			fmt.Fprintf(&sb, "  sw%d -> %q [style=dashed];\n", topo.EjectRouter(term), c.Name)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// floorplanReport prints the block placements (Fig. 10b-style).
func floorplanReport(res *mapping.Result) string {
	fp := res.Floorplan
	var sb strings.Builder
	fmt.Fprintf(&sb, "floorplan: chip %.2f x %.2f mm (%.2f mm^2, aspect %.2f)\n",
		fp.ChipWMM, fp.ChipHMM, fp.ChipAreaMM2(), fp.AspectRatio())
	fmt.Fprintf(&sb, "%-16s %8s %8s %8s %8s\n", "block", "x(mm)", "y(mm)", "w(mm)", "h(mm)")
	for _, b := range fp.Blocks {
		fmt.Fprintf(&sb, "%-16s %8.2f %8.2f %8.2f %8.2f\n", b.Name, b.X, b.Y, b.W, b.H)
	}
	fmt.Fprintf(&sb, "avg link length: %.2f mm\n", fp.AvgLinkLengthMM())
	return sb.String()
}

func sanitize(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "design"
	}
	return sb.String()
}
