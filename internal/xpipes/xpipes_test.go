package xpipes

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sunmap/internal/apps"
	"sunmap/internal/mapping"
	"sunmap/internal/route"
	"sunmap/internal/tech"
	"sunmap/internal/topology"
)

func generateVOPDMesh(t *testing.T) (*Output, *mapping.Result) {
	t.Helper()
	g := apps.VOPD()
	topo, err := topology.NewMesh(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapping.MapContext(context.Background(), g, topo, mapping.Options{
		Routing:      route.MinPath,
		Objective:    mapping.MinDelay,
		CapacityMBps: apps.DefaultCapacityMBps,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Generate(g, res, tech.Tech100nm())
	if err != nil {
		t.Fatal(err)
	}
	return out, res
}

func TestGenerateProducesAllFiles(t *testing.T) {
	out, _ := generateVOPDMesh(t)
	for _, want := range []string{
		"xpipes_switch.h", "xpipes_link.h", "xpipes_ni.h",
		"vopd_noc.cpp", "design.dot", "floorplan.txt", "README.txt",
	} {
		if _, ok := out.Files[want]; !ok {
			t.Errorf("missing generated file %s (have %v)", want, out.FileNames())
		}
	}
	if out.TopModule != "vopd_noc" {
		t.Errorf("top module = %s", out.TopModule)
	}
}

func TestTopModuleInstantiatesEverything(t *testing.T) {
	out, res := generateVOPDMesh(t)
	top := out.Files["vopd_noc.cpp"]
	// One switch instance per router.
	for r := 0; r < res.Topology.NumRouters(); r++ {
		if !strings.Contains(top, fmt.Sprintf("sw%d(\"sw%d\")", r, r)) {
			t.Errorf("switch sw%d not instantiated", r)
		}
	}
	// One link module per directed link.
	if got := strings.Count(top, "xpipes_link<"); got != len(res.Topology.Links()) {
		t.Errorf("%d link instances, want %d", got, len(res.Topology.Links()))
	}
	// One NI per core, bound to the mapped terminal.
	for _, name := range []string{"ni_vld", "ni_idct", "ni_arm"} {
		if !strings.Contains(top, name) {
			t.Errorf("missing %s", name)
		}
	}
	// Switch template parameters must reflect the derived configurations
	// (mesh corners are 3x3 with an attached core).
	if !strings.Contains(top, "xpipes_switch<3, 3,") {
		t.Error("no 3x3 corner switch instantiated")
	}
	if !strings.Contains(top, "xpipes_switch<5, 5,") {
		t.Error("no 5x5 interior switch instantiated")
	}
}

func TestSwitchHeaderListsConfigs(t *testing.T) {
	out, _ := generateVOPDMesh(t)
	h := out.Files["xpipes_switch.h"]
	if !strings.Contains(h, "SC_MODULE(xpipes_switch)") {
		t.Error("switch module missing")
	}
	if !strings.Contains(h, "// Switch configurations instantiated by this design:") {
		t.Error("configuration inventory missing")
	}
}

func TestDesignDOTStructure(t *testing.T) {
	out, res := generateVOPDMesh(t)
	dot := out.Files["design.dot"]
	if got := strings.Count(dot, "[shape=diamond"); got != res.Topology.NumRouters() {
		t.Errorf("%d router nodes in DOT, want %d", got, res.Topology.NumRouters())
	}
	if !strings.Contains(dot, "\"idct\"") {
		t.Error("core idct missing from DOT")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := generateVOPDMesh(t)
	b, _ := generateVOPDMesh(t)
	for name := range a.Files {
		if a.Files[name] != b.Files[name] {
			t.Errorf("file %s differs between runs", name)
		}
	}
}

func TestWriteTo(t *testing.T) {
	out, _ := generateVOPDMesh(t)
	dir := filepath.Join(t.TempDir(), "gen")
	if err := out.WriteTo(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range out.FileNames() {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("reading %s: %v", name, err)
			continue
		}
		if string(data) != out.Files[name] {
			t.Errorf("file %s content mismatch", name)
		}
	}
}

func TestGenerateIndirectTopology(t *testing.T) {
	g := apps.VOPD()
	topo, err := topology.NewButterfly(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapping.MapContext(context.Background(), g, topo, mapping.Options{
		Routing:      route.MinPath,
		CapacityMBps: apps.DefaultCapacityMBps,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Generate(g, res, tech.Tech100nm())
	if err != nil {
		t.Fatal(err)
	}
	dot := out.Files["design.dot"]
	// Indirect topologies draw separate inject and eject NI edges.
	if strings.Count(dot, "style=dashed") < 2*g.NumCores() {
		t.Error("butterfly DOT missing eject-side NI edges")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(nil, nil, tech.Tech100nm()); err == nil {
		t.Error("nil design accepted")
	}
	g := apps.VOPD()
	if _, err := Generate(g, &mapping.Result{Assign: []int{1, 2}}, tech.Tech100nm()); err == nil {
		t.Error("mismatched mapping accepted")
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("dsp-filter"); got != "dsp_filter" {
		t.Errorf("sanitize = %s", got)
	}
	if got := sanitize(""); got != "design" {
		t.Errorf("sanitize empty = %s", got)
	}
}
