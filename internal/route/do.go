package route

import (
	"fmt"

	"sunmap/internal/graph"
	"sunmap/internal/topology"
)

// routeDO routes one commodity with the oblivious dimension-ordered
// discipline: XY on grids (columns first, then rows; tori take the shorter
// wrap direction, ties resolved toward increasing coordinates), ascending
// bit order on hypercubes, and a terminal-determined middle switch on Clos
// networks. Topologies with a unique or hub path (butterfly, star) fall
// back to their single path; other kinds route load-obliviously on a
// minimum-hop path.
func routeDO(topo topology.Topology, srcT, dstT int, c graph.Commodity, res *Result) error {
	src, dst := topo.InjectRouter(srcT), topo.EjectRouter(dstT)
	var verts []int
	switch tt := topo.(type) {
	case topology.GridLike:
		rows, cols := tt.GridDims()
		verts = gridDOPath(src, dst, rows, cols, topo.Kind() == topology.Torus)
	case topology.CubeLike:
		verts = cubeDOPath(src, dst, tt.Dim())
	case topology.ClosLike:
		m, _, r := tt.Params()
		mid := r + (srcT+dstT)%m
		verts = []int{src, mid, dst}
	default:
		// Butterfly (unique path), star (hub) and any future kinds:
		// oblivious minimum-hop routing, deterministic by construction.
		v, arcs, ok := shortest(topo, src, dst, graph.UnitWeight, topo.Quadrant(srcT, dstT))
		if !ok {
			return fmt.Errorf("route: DO found no path for commodity %d on %s", c.ID, topo.Name())
		}
		commit(res, c, 1.0, v, arcs)
		return nil
	}
	arcs, err := arcsAlong(topo, verts)
	if err != nil {
		return fmt.Errorf("route: DO commodity %d on %s: %v", c.ID, topo.Name(), err)
	}
	commit(res, c, 1.0, verts, arcs)
	return nil
}

// gridDOPath walks column-first then row-first from src to dst on a
// rows x cols grid, using wrap-around steps on tori when strictly shorter.
func gridDOPath(src, dst, rows, cols int, wrap bool) []int {
	sr, sc := src/cols, src%cols
	dr, dc := dst/cols, dst%cols
	verts := []int{src}
	stepToward := func(cur, want, n int) int {
		if !wrap {
			if cur < want {
				return cur + 1
			}
			return cur - 1
		}
		fwd := (want - cur + n) % n
		bwd := (cur - want + n) % n
		if fwd <= bwd {
			return (cur + 1) % n
		}
		return (cur - 1 + n) % n
	}
	r, col := sr, sc
	for col != dc {
		col = stepToward(col, dc, cols)
		verts = append(verts, r*cols+col)
	}
	for r != dr {
		r = stepToward(r, dr, rows)
		verts = append(verts, r*cols+col)
	}
	return verts
}

// cubeDOPath fixes differing address bits from least to most significant.
func cubeDOPath(src, dst, dim int) []int {
	verts := []int{src}
	cur := src
	for b := 0; b < dim; b++ {
		if (cur^dst)&(1<<b) != 0 {
			cur ^= 1 << b
			verts = append(verts, cur)
		}
	}
	return verts
}

// arcsAlong resolves the link IDs for a router walk.
func arcsAlong(topo topology.Topology, verts []int) ([]int, error) {
	arcs := make([]int, 0, len(verts)-1)
	g := topo.Graph()
	for i := 0; i+1 < len(verts); i++ {
		found := -1
		for _, a := range g.Out(verts[i]) {
			if a.To == verts[i+1] {
				found = a.ID
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("no link %d->%d", verts[i], verts[i+1])
		}
		arcs = append(arcs, found)
	}
	return arcs, nil
}
