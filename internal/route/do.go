package route

import (
	"fmt"

	"sunmap/internal/graph"
	"sunmap/internal/topology"
)

// routeDO routes one commodity with the oblivious dimension-ordered
// discipline and commits the result. DO cannot adapt: when the active
// failed-link mask covers any arc of its fixed path, the commodity is
// undeliverable and the call errors (degraded-mode sweeps reroute with
// an adaptive function instead — see fault.Degraded).
func (rt *Router) routeDO(srcT, dstT int, c graph.Commodity, res *Result, collect bool) error {
	verts, arcs, err := rt.PathDO(srcT, dstT, c)
	if err != nil {
		return err
	}
	if rt.down != nil {
		for _, id := range arcs {
			if rt.down[id] {
				return fmt.Errorf("route: DO path of commodity %d crosses down link %d on %s", //sunmap:alloc error path
					c.ID, id, rt.topo.Name())
			}
		}
	}
	commit(res, c, 1.0, verts, arcs, collect)
	return nil
}

// PathDO computes the oblivious dimension-ordered path of commodity c from
// terminal srcT to dstT: XY on grids (columns first, then rows; tori take
// the shorter wrap direction, ties resolved toward increasing coordinates),
// ascending bit order on hypercubes, and a terminal-determined middle
// switch on Clos networks. Topologies with a unique or hub path (butterfly,
// star) fall back to their single path; other kinds route load-obliviously
// on a minimum-hop path. The path never depends on link loads, which is
// what lets the mapper's delta evaluator splice unaffected DO commodities
// without re-routing them. The returned slices alias Router scratch.
func (rt *Router) PathDO(srcT, dstT int, c graph.Commodity) (verts, arcs []int, err error) {
	topo := rt.topo
	src, dst := topo.InjectRouter(srcT), topo.EjectRouter(dstT)
	switch tt := topo.(type) {
	case topology.GridLike:
		rows, cols := tt.GridDims()
		verts = rt.gridDOPath(src, dst, rows, cols, topo.Kind() == topology.Torus)
	case topology.CubeLike:
		verts = rt.cubeDOPath(src, dst, tt.Dim())
	case topology.ClosLike:
		m, _, r := tt.Params()
		mid := r + (srcT+dstT)%m
		rt.verts = append(rt.verts[:0], src, mid, dst)
		verts = rt.verts
	default:
		// Butterfly (unique path), star (hub) and any future kinds:
		// oblivious minimum-hop routing, deterministic by construction.
		v, a, ok := rt.shortest(src, dst, graph.UnitWeight, rt.Quadrant(srcT, dstT))
		if !ok {
			return nil, nil, fmt.Errorf("route: DO found no path for commodity %d on %s", c.ID, topo.Name()) //sunmap:alloc error path
		}
		return v, a, nil
	}
	arcs, err = rt.arcsAlong(verts)
	if err != nil {
		return nil, nil, fmt.Errorf("route: DO commodity %d on %s: %w", c.ID, topo.Name(), err) //sunmap:alloc error path
	}
	return verts, arcs, nil
}

// gridDOPath walks column-first then row-first from src to dst on a
// rows x cols grid, using wrap-around steps on tori when strictly shorter.
// The walk is built in the Router's vertex scratch.
func (rt *Router) gridDOPath(src, dst, rows, cols int, wrap bool) []int {
	sr, sc := src/cols, src%cols
	dr, dc := dst/cols, dst%cols
	verts := append(rt.verts[:0], src)
	stepToward := func(cur, want, n int) int { //sunmap:alloc non-escaping closure, stack-allocated
		if !wrap {
			if cur < want {
				return cur + 1
			}
			return cur - 1
		}
		fwd := (want - cur + n) % n
		bwd := (cur - want + n) % n
		if fwd <= bwd {
			return (cur + 1) % n
		}
		return (cur - 1 + n) % n
	}
	r, col := sr, sc
	for col != dc {
		col = stepToward(col, dc, cols)
		verts = append(verts, r*cols+col) //sunmap:alloc amortized growth of router vertex scratch
	}
	for r != dr {
		r = stepToward(r, dr, rows)
		verts = append(verts, r*cols+col) //sunmap:alloc amortized growth of router vertex scratch
	}
	rt.verts = verts
	return verts
}

// cubeDOPath fixes differing address bits from least to most significant.
func (rt *Router) cubeDOPath(src, dst, dim int) []int {
	verts := append(rt.verts[:0], src)
	cur := src
	for b := 0; b < dim; b++ {
		if (cur^dst)&(1<<b) != 0 {
			cur ^= 1 << b
			verts = append(verts, cur) //sunmap:alloc amortized growth of router vertex scratch
		}
	}
	rt.verts = verts
	return verts
}

// arcsAlong resolves the link IDs for a router walk into the arc scratch.
func (rt *Router) arcsAlong(verts []int) ([]int, error) {
	arcs := rt.arcs[:0]
	g := rt.topo.Graph()
	for i := 0; i+1 < len(verts); i++ {
		found := -1
		for _, a := range g.Out(verts[i]) {
			if a.To == verts[i+1] {
				found = a.ID
				break
			}
		}
		if found < 0 {
			rt.arcs = arcs
			return nil, fmt.Errorf("no link %d->%d", verts[i], verts[i+1]) //sunmap:alloc error path
		}
		arcs = append(arcs, found) //sunmap:alloc amortized growth of router arc scratch
	}
	rt.arcs = arcs
	return arcs, nil
}
