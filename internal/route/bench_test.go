package route

import (
	"testing"

	"sunmap/internal/apps"
	"sunmap/internal/graph"
	"sunmap/internal/topology"
)

// BenchmarkRoute times one full commodity-set routing of the ISSUE-4
// tracked apps on a 3x4 mesh, comparing the allocating public entry point
// (Route, collecting FlowPaths) against the scratch router in loads-only
// mode — the configuration the mapper's swap loop runs. The scratch/MP
// case must report 0 allocs/op once warm. Run with:
//
//	go test -bench BenchmarkRoute -benchmem ./internal/route
func BenchmarkRoute(b *testing.B) {
	for _, app := range []struct {
		name string
		g    *graph.CoreGraph
	}{{"vopd", apps.VOPD()}, {"mpeg4", apps.MPEG4()}} {
		topo := mustTopo(topology.NewMesh(3, 4))
		assign := identityAssign(app.g.NumCores())
		comms := app.g.Commodities()
		for _, fn := range []Function{MinPath, DimensionOrdered, SplitMin} {
			opts := Options{Function: fn, CapacityMBps: 500}
			b.Run(app.name+"/"+fn.String()+"/alloc", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Route(topo, assign, comms, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(app.name+"/"+fn.String()+"/scratch", func(b *testing.B) {
				rt := NewRouter()
				var res Result
				scratchOpts := opts
				scratchOpts.LoadsOnly = true
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := rt.RouteInto(&res, topo, assign, comms, scratchOpts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
