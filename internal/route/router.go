// Router: reusable scratch state for the routing hot path.
//
// The mapper's pairwise-swap improvement loop evaluates thousands of
// candidate mappings, each of which re-routes commodities. With the plain
// Route entry point every one of those evaluations allocates dist/prev
// arrays, a priority queue, path slices and a fresh quadrant mask per
// commodity. A Router owns all of that scratch — a graph.SPSolver, path
// buffers, a per-terminal-pair quadrant-mask cache and the split-routing
// accumulator arena — so steady-state routing work allocates nothing.
//
// Ownership contract: a Router is single-goroutine state. The mapper owns
// one per Map call (or borrows one through mapping.Scratch), and
// internal/engine keeps a free list handing each evaluation worker its own.
// Slices returned by the path primitives (PathMP, PathDO) alias the
// Router's buffers and are valid only until the next call on the same
// Router.
package route

import (
	"fmt"

	"sunmap/internal/graph"
	"sunmap/internal/topology"
)

// Router holds preallocated routing scratch. The zero value is not usable;
// call NewRouter.
type Router struct {
	sp *graph.SPSolver

	// Path scratch shared by the single-path primitives.
	verts, arcs []int

	// Congestion weight state for the load-aware searches: per-link loads
	// plus a commodity-scaled tie-break bias, consumed inline by the
	// solver's specialized DijkstraLoads (no per-arc closure call).
	loads []float64
	bias  float64

	// Split-routing (SM/SA) merged-path arena.
	accs []accum

	// dag, when non-nil, restricts load-aware searches to the active
	// minimum-hop arc mask (SM routing).
	dag []bool

	// down, when non-nil, is the active failed-link mask
	// (Options.DownLinks): both weight closures treat masked arcs as
	// unreachable, so every weight-based search reroutes around them.
	down []bool

	// chunkAcc records, for the last split-routed commodity, which merged
	// accumulator each chunk landed on (in chunk order) — the structure
	// the mapper's delta evaluator replays for spliced commodities.
	chunkAcc []int

	// Quadrant-mask and min-hop-DAG caches for the bound topology,
	// indexed src*T+dst. Entries are computed lazily and shared read-only
	// with the solver; both depend only on the terminal pair, never on
	// loads.
	topo  topology.Topology
	quads [][]bool
	dags  [][]bool
}

// NewRouter returns a Router with empty scratch; buffers grow on first use.
func NewRouter() *Router {
	return &Router{sp: graph.NewSPSolver()}
}

// Bind points the Router's quadrant cache at topo, clearing it when the
// topology changes. Routing entry points call it implicitly.
func (rt *Router) Bind(topo topology.Topology) {
	if rt.topo == topo {
		return
	}
	rt.topo = topo
	n := topo.NumTerminals() * topo.NumTerminals()
	if cap(rt.quads) < n {
		rt.quads = make([][]bool, n) //sunmap:alloc first-bind growth, recycled across topologies
		rt.dags = make([][]bool, n)  //sunmap:alloc first-bind growth, recycled across topologies
	}
	rt.quads = rt.quads[:n]
	rt.dags = rt.dags[:n]
	for i := range rt.quads {
		rt.quads[i] = nil
		rt.dags[i] = nil
	}
}

// Quadrant returns the cached minimum-path mask for the terminal pair,
// computing it on first use. The mask is shared and must not be mutated.
func (rt *Router) Quadrant(srcT, dstT int) []bool {
	i := srcT*rt.topo.NumTerminals() + dstT
	if rt.quads[i] == nil {
		rt.quads[i] = rt.topo.Quadrant(srcT, dstT)
	}
	return rt.quads[i]
}

// MinHopDAG returns the cached dense arc mask of the terminal pair's
// minimum-hop path DAG (the SM flow-splitting region), computing it on
// first use. The mask is shared and must not be mutated.
func (rt *Router) MinHopDAG(srcT, dstT int) []bool {
	i := srcT*rt.topo.NumTerminals() + dstT
	if rt.dags[i] == nil {
		mask := rt.Quadrant(srcT, dstT)
		src, dst := rt.topo.InjectRouter(srcT), rt.topo.EjectRouter(dstT)
		arcSet := rt.topo.Graph().AllMinHopArcs(src, dst, mask)
		dense := make([]bool, len(rt.topo.Links())) //sunmap:alloc once-per-terminal-pair cache fill, cold after warmup
		for id := range arcSet {
			dense[id] = true
		}
		rt.dags[i] = dense
	}
	return rt.dags[i]
}

// PathMP computes the congestion-aware shortest path of commodity c from
// terminal srcT to dstT given the current per-link loads — the Fig. 5
// minimum-path step, restricted to the quadrant graph when useQuadrant is
// set. The returned slices alias Router scratch.
func (rt *Router) PathMP(srcT, dstT int, c graph.Commodity, linkLoads []float64, useQuadrant bool) (verts, arcs []int, err error) {
	var mask []bool
	if useQuadrant {
		mask = rt.Quadrant(srcT, dstT)
	}
	src, dst := rt.topo.InjectRouter(srcT), rt.topo.EjectRouter(dstT)
	rt.loads = linkLoads
	rt.bias = hopBiasFor(c.ValueMBps)
	verts, arcs, ok := rt.shortestLoads(src, dst, nil, mask)
	rt.loads = nil
	if !ok {
		return nil, nil, fmt.Errorf("route: no path for commodity %d (terminals %d->%d) on %s", //sunmap:alloc error path
			c.ID, srcT, dstT, rt.topo.Name())
	}
	return verts, arcs, nil
}

func (rt *Router) clearLoads() { rt.loads = nil }

// shortest runs the solver over the bound topology's router graph, handling
// the degenerate case where inject and eject are the same router (a
// one-router path, as on the star hub). The search stops once dst settles.
func (rt *Router) shortest(src, dst int, w graph.WeightFunc, mask []bool) (verts, arcs []int, ok bool) {
	if src == dst {
		rt.verts = append(rt.verts[:0], src)
		rt.arcs = rt.arcs[:0]
		return rt.verts, rt.arcs, true
	}
	rt.sp.DijkstraTo(rt.topo.Graph(), src, dst, w, mask)
	rt.verts, rt.arcs, ok = rt.sp.PathTo(src, dst, rt.verts, rt.arcs)
	return rt.verts, rt.arcs, ok
}

// shortestLoads is shortest specialized to the congestion weight
// loads+bias (rt.loads/rt.bias), optionally restricted to a minimum-hop
// dag arc mask and always honoring the active down-link mask. It drives
// the solver's closure-free fast path; results are bit-identical to the
// generic search under the equivalent WeightFunc.
func (rt *Router) shortestLoads(src, dst int, dag, mask []bool) (verts, arcs []int, ok bool) {
	if src == dst {
		rt.verts = append(rt.verts[:0], src)
		rt.arcs = rt.arcs[:0]
		return rt.verts, rt.arcs, true
	}
	rt.sp.DijkstraLoads(rt.topo.Graph(), src, dst, rt.loads, rt.bias, dag, rt.down, mask)
	rt.verts, rt.arcs, ok = rt.sp.PathTo(src, dst, rt.verts, rt.arcs)
	return rt.verts, rt.arcs, ok
}

// resizeFloats returns buf resized to n with every element zeroed.
func resizeFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n) //sunmap:alloc first-use growth, recycled
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// Reset prepares res for re-accumulation over a topology with the given
// link and router counts, reusing its slices. Both RouteInto and the
// mapper's delta evaluator start every routing replay here.
func (r *Result) Reset(numLinks, numRouters int) {
	r.LinkLoads = resizeFloats(r.LinkLoads, numLinks)
	r.RouterLoads = resizeFloats(r.RouterLoads, numRouters)
	r.Paths = r.Paths[:0]
	r.MaxLinkLoad = 0
	r.HopSumMBps = 0
	r.TotalMBps = 0
	r.Feasible = false
}

// FinalizeLoads derives MaxLinkLoad and the feasibility verdict from the
// accumulated LinkLoads — the closing step of every routing run, shared so
// scratch-based callers fold loads exactly like Route does.
func FinalizeLoads(res *Result, capacityMBps float64) {
	res.MaxLinkLoad = 0
	for _, l := range res.LinkLoads {
		if l > res.MaxLinkLoad {
			res.MaxLinkLoad = l
		}
	}
	res.Feasible = capacityMBps <= 0 || res.MaxLinkLoad <= capacityMBps+feasTolerance
}

// RouteInto routes every commodity like Route, but reuses res's slices and
// the Router's scratch so steady-state calls allocate nothing (Paths
// excepted — see Options.LoadsOnly). res is reset first; on error it holds
// partially accumulated state and must not be read.
//
//sunmap:hotpath
func (rt *Router) RouteInto(res *Result, topo topology.Topology, assign []int, comms []graph.Commodity, opts Options) error {
	opts = opts.withDefaults()
	rt.Bind(topo)
	if opts.DownLinks != nil && len(opts.DownLinks) != len(topo.Links()) {
		return fmt.Errorf("route: DownLinks mask has %d entries for %d links of %s", //sunmap:alloc error path
			len(opts.DownLinks), len(topo.Links()), topo.Name())
	}
	rt.down = opts.DownLinks
	defer func() { rt.down = nil }() //sunmap:alloc non-escaping deferred closure, stack-allocated
	res.Reset(len(topo.Links()), topo.NumRouters())
	collect := !opts.LoadsOnly
	for _, c := range comms {
		if c.Src < 0 || c.Src >= len(assign) || c.Dst < 0 || c.Dst >= len(assign) {
			return fmt.Errorf("route: commodity %d endpoints (%d,%d) outside assignment of %d cores", //sunmap:alloc error path
				c.ID, c.Src, c.Dst, len(assign))
		}
		srcT, dstT := assign[c.Src], assign[c.Dst]
		if srcT < 0 || srcT >= topo.NumTerminals() || dstT < 0 || dstT >= topo.NumTerminals() {
			return fmt.Errorf("route: commodity %d mapped to invalid terminals (%d,%d)", c.ID, srcT, dstT) //sunmap:alloc error path
		}
		if srcT == dstT {
			return fmt.Errorf("route: commodity %d has source and destination on terminal %d", c.ID, srcT) //sunmap:alloc error path
		}
		var err error
		switch opts.Function {
		case DimensionOrdered:
			err = rt.routeDO(srcT, dstT, c, res, collect)
		case MinPath:
			// With links down, a surviving path need not stay inside the
			// quadrant (which only bounds fault-free minimum paths), so
			// masked MP searches the full router graph.
			err = rt.routeSingle(srcT, dstT, c, res, !opts.DisableQuadrant && rt.down == nil, collect)
		case SplitMin:
			err = rt.routeSplit(srcT, dstT, c, res, opts.Chunks, true, collect)
		case SplitAll:
			err = rt.routeSplit(srcT, dstT, c, res, opts.Chunks, false, collect)
		default:
			err = fmt.Errorf("route: unknown routing function %v", opts.Function) //sunmap:alloc error path
		}
		if err != nil {
			return err
		}
	}
	FinalizeLoads(res, opts.CapacityMBps)
	return nil
}
