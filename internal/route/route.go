// Package route implements SUNMAP's routing functions: dimension-ordered
// (DO), minimum-path (MP), traffic splitting across minimum paths (SM) and
// traffic splitting across all paths (SA), as enumerated in Sections 1 and
// 6.3 of the paper.
//
// Given a topology, a core-to-terminal assignment and the commodity set,
// Route produces per-link and per-router traffic loads, the flow paths (for
// power estimation and for the simulator's route tables) and the bandwidth
// feasibility verdict: the mapping is feasible when no link carries more
// than its capacity (footnote 1 of the paper treats capacity as a tool
// input).
package route

import (
	"fmt"
	"slices"

	"sunmap/internal/graph"
	"sunmap/internal/topology"
)

// Function selects one of the paper's routing functions.
type Function int

const (
	// DimensionOrdered routes obliviously: XY on meshes and tori,
	// bit-ordered on hypercubes, a terminal-determined middle on Clos.
	DimensionOrdered Function = iota
	// MinPath routes each commodity, in decreasing bandwidth order, on a
	// single congestion-aware shortest path inside its quadrant graph
	// (the Fig. 5 algorithm).
	MinPath
	// SplitMin splits each commodity across the minimum-hop path DAG.
	SplitMin
	// SplitAll splits each commodity across arbitrary paths.
	SplitAll
)

// String returns the paper's abbreviation for the routing function.
func (f Function) String() string {
	switch f {
	case DimensionOrdered:
		return "DO"
	case MinPath:
		return "MP"
	case SplitMin:
		return "SM"
	case SplitAll:
		return "SA"
	default:
		return fmt.Sprintf("Function(%d)", int(f))
	}
}

// ParseFunction converts the paper's abbreviation to a Function.
func ParseFunction(s string) (Function, error) {
	switch s {
	case "DO", "do":
		return DimensionOrdered, nil
	case "MP", "mp":
		return MinPath, nil
	case "SM", "sm":
		return SplitMin, nil
	case "SA", "sa":
		return SplitAll, nil
	}
	return 0, fmt.Errorf("route: unknown routing function %q (want DO, MP, SM or SA)", s)
}

// Options configures Route.
type Options struct {
	// Function is the routing function (default DimensionOrdered, the
	// zero value; callers usually set MinPath or a splitting variant).
	Function Function
	// CapacityMBps is the uniform link capacity used for the feasibility
	// verdict. Zero or negative means unconstrained (the "relaxed
	// bandwidth constraints" mode of Section 6.2).
	CapacityMBps float64
	// Chunks is the splitting granularity for SM and SA: each commodity
	// is divided into this many equal chunks, each routed on the least
	// loaded (remaining) path. Default 32.
	Chunks int
	// DisableQuadrant searches the full router graph instead of the
	// quadrant graph for MP routing. The paper restricts Dijkstra to
	// quadrants for "large computational time savings" (Section 4.1);
	// this knob exists for the ablation benchmark quantifying that claim.
	DisableQuadrant bool
	// LoadsOnly skips FlowPath collection: Result.Paths stays empty while
	// every load, hop and feasibility aggregate is still maintained. The
	// mapper's swap loop sets it — candidate evaluations only consume the
	// aggregates, and the per-path slice copies dominate its allocations.
	LoadsOnly bool
	// DownLinks marks failed links by link ID; masked links are unusable
	// by every routing function. The congestion-aware functions (MP, SA)
	// route around them — MP additionally searches the full router graph
	// instead of the quadrant, since with links down a surviving path need
	// not stay inside it — while the oblivious DO discipline fails with an
	// error when its fixed path crosses a down link, and SM fails when the
	// fault cuts its minimum-hop DAG. A non-nil mask must have one entry
	// per topology link. The fault subsystem sets this per failure
	// scenario, reusing one mask buffer across evaluations.
	DownLinks []bool
}

// DefaultChunks is the traffic-splitting granularity used when
// Options.Chunks is unset.
const DefaultChunks = 32

func (o Options) withDefaults() Options {
	if o.Chunks <= 0 {
		o.Chunks = DefaultChunks
	}
	return o
}

// FlowPath is one routed fraction of a commodity.
type FlowPath struct {
	// Commodity identifies the flow being carried.
	Commodity graph.Commodity
	// Fraction is the share of the commodity's bandwidth on this path.
	Fraction float64
	// Routers is the router sequence from inject to eject router.
	Routers []int
	// LinkIDs are the traversed link IDs; len(LinkIDs) = len(Routers)-1.
	LinkIDs []int
}

// Hops returns the number of routers traversed (the paper's hop count).
func (p FlowPath) Hops() int { return len(p.Routers) }

// Result is the outcome of routing every commodity.
type Result struct {
	// LinkLoads holds the traffic on each link, indexed by link ID.
	LinkLoads []float64
	// RouterLoads holds the traffic through each router (every flit both
	// enters and leaves a router once, so this counts each flow once per
	// traversed router); the power model multiplies it by the switch bit
	// energy.
	RouterLoads []float64
	// Paths lists every flow path with its bandwidth fraction.
	Paths []FlowPath
	// MaxLinkLoad is the largest entry of LinkLoads: the minimum link
	// capacity that would make this routing feasible (Fig. 9a's metric).
	MaxLinkLoad float64
	// HopSumMBps is the bandwidth-weighted hop total Σ vl(d)·hops(d).
	HopSumMBps float64
	// TotalMBps is the summed commodity bandwidth.
	TotalMBps float64
	// Feasible reports MaxLinkLoad <= capacity (true when capacity is
	// unconstrained).
	Feasible bool
}

// AvgHops returns the bandwidth-weighted average hop count, the paper's
// "average communication delay" metric (Fig. 3d, Fig. 6a, Fig. 7b).
func (r *Result) AvgHops() float64 {
	if r.TotalMBps == 0 {
		return 0
	}
	return r.HopSumMBps / r.TotalMBps
}

// feasTolerance absorbs float accumulation error in the capacity check.
const feasTolerance = 1e-6

// Clone returns a deep, independently owned copy of r. All FlowPath
// vertex and arc sequences are packed into two flat backing arrays, so
// the copy costs six allocations regardless of path count — this is how
// scratch-based evaluations (whose Result and Paths alias reused
// buffers) hand a result to a caller that outlives the scratch.
func (r *Result) Clone() *Result {
	out := &Result{
		LinkLoads:   append([]float64(nil), r.LinkLoads...),
		RouterLoads: append([]float64(nil), r.RouterLoads...),
		MaxLinkLoad: r.MaxLinkLoad,
		HopSumMBps:  r.HopSumMBps,
		TotalMBps:   r.TotalMBps,
		Feasible:    r.Feasible,
	}
	if len(r.Paths) == 0 {
		return out
	}
	nv, na := 0, 0
	for i := range r.Paths {
		nv += len(r.Paths[i].Routers)
		na += len(r.Paths[i].LinkIDs)
	}
	verts := make([]int, 0, nv)
	arcs := make([]int, 0, na)
	out.Paths = make([]FlowPath, len(r.Paths))
	for i := range r.Paths {
		p := &r.Paths[i]
		v0, a0 := len(verts), len(arcs)
		verts = append(verts, p.Routers...)
		arcs = append(arcs, p.LinkIDs...)
		out.Paths[i] = FlowPath{
			Commodity: p.Commodity,
			Fraction:  p.Fraction,
			Routers:   verts[v0:len(verts):len(verts)],
			LinkIDs:   arcs[a0:len(arcs):len(arcs)],
		}
	}
	return out
}

// Route routes every commodity over topo under the given core-to-terminal
// assignment. assign[c] is the terminal hosting core c; every commodity's
// endpoints must be assigned. Commodities are processed in the given order,
// which per Fig. 5 should be decreasing bandwidth (graph.Commodities
// guarantees it).
func Route(topo topology.Topology, assign []int, comms []graph.Commodity, opts Options) (*Result, error) {
	res := &Result{}
	if err := NewRouter().RouteInto(res, topo, assign, comms, opts); err != nil {
		return nil, err
	}
	return res, nil
}

// commit records one flow path carrying fraction f of commodity c. When
// collect is false the FlowPath record (and its slice copies) is skipped;
// every aggregate update is identical either way. Collected FlowPath
// entries reuse the buffers of whatever path occupied the same Paths slot
// before the last Reset, so a steady-state RouteInto caller collects
// paths without allocating; Clone makes an owned snapshot.
func commit(res *Result, c graph.Commodity, f float64, verts, arcs []int, collect bool) {
	bw := c.ValueMBps * f
	for _, id := range arcs {
		res.LinkLoads[id] += bw
	}
	for _, r := range verts {
		res.RouterLoads[r] += bw
	}
	res.HopSumMBps += bw * float64(len(verts))
	res.TotalMBps += bw
	if collect {
		var p *FlowPath
		if n := len(res.Paths); n < cap(res.Paths) {
			res.Paths = res.Paths[:n+1]
			p = &res.Paths[n]
		} else {
			res.Paths = append(res.Paths, FlowPath{}) //sunmap:alloc arena growth; steady-state reuses capacity (cap-check branch above)
			p = &res.Paths[len(res.Paths)-1]
		}
		p.Commodity = c
		p.Fraction = f
		p.Routers = append(p.Routers[:0], verts...)
		p.LinkIDs = append(p.LinkIDs[:0], arcs...)
	}
}

// hopBiasFor scales the tie-breaking bias to the commodity sizes in play so
// it never dominates a real load difference.
func hopBiasFor(comms float64) float64 {
	if comms <= 0 {
		return 1e-9
	}
	return comms * 1e-9
}

// routeSingle routes the whole commodity on one congestion-aware shortest
// path, restricted to the quadrant graph when useQuadrant is set.
func (rt *Router) routeSingle(srcT, dstT int, c graph.Commodity, res *Result, useQuadrant, collect bool) error {
	verts, arcs, err := rt.PathMP(srcT, dstT, c, res.LinkLoads, useQuadrant)
	if err != nil {
		return err
	}
	commit(res, c, 1.0, verts, arcs, collect)
	return nil
}

// accum is one merged chunk path of a split-routed commodity. Its slices
// live in the Router's arena and are reused across calls.
type accum struct {
	verts, arcs []int
	fraction    float64
}

// routeSplit divides the commodity into chunks and water-fills them over
// the minimum-hop DAG (SM) or the whole router graph (SA), recording the
// merged structure in the Router's arena (see RouteSplitOne).
func (rt *Router) routeSplit(srcT, dstT int, c graph.Commodity, res *Result, chunks int, minOnly, collect bool) error {
	topo := rt.topo
	src, dst := topo.InjectRouter(srcT), topo.EjectRouter(dstT)
	var mask []bool
	rt.dag = nil
	if minOnly {
		mask = rt.Quadrant(srcT, dstT)
		rt.dag = rt.MinHopDAG(srcT, dstT)
	}
	rt.loads = res.LinkLoads
	rt.bias = hopBiasFor(c.ValueMBps)
	defer rt.clearLoads()
	// Accumulate identical consecutive chunk paths into one FlowPath to
	// keep Paths compact; loads must still be updated per chunk so later
	// chunks see the congestion earlier ones created.
	frac := 1.0 / float64(chunks)
	acc := rt.accs[:0]
	rt.chunkAcc = rt.chunkAcc[:0]
	for i := 0; i < chunks; i++ {
		verts, arcs, ok := rt.shortestLoads(src, dst, rt.dag, mask)
		if !ok {
			rt.accs = acc
			return fmt.Errorf("route: no path for commodity %d chunk %d on %s", c.ID, i, topo.Name()) //sunmap:alloc error path
		}
		bw := c.ValueMBps * frac
		for _, id := range arcs {
			res.LinkLoads[id] += bw
		}
		merged := -1
		for j := range acc {
			if slices.Equal(acc[j].arcs, arcs) {
				acc[j].fraction += frac
				merged = j
				break
			}
		}
		if merged == -1 {
			// Grow into the arena, copying the path out of the shared
			// scratch the next chunk's search will overwrite.
			if len(acc) < cap(acc) {
				acc = acc[:len(acc)+1]
			} else {
				acc = append(acc, accum{}) //sunmap:alloc arena growth; steady-state reuses capacity (cap-check branch above)
			}
			a := &acc[len(acc)-1]
			a.verts = append(a.verts[:0], verts...)
			a.arcs = append(a.arcs[:0], arcs...)
			a.fraction = frac
			merged = len(acc) - 1
		}
		rt.chunkAcc = append(rt.chunkAcc, merged) //sunmap:alloc amortized growth of chunk-merge scratch, reset per commodity
	}
	// Loads for links were applied per chunk above; undo and let commit
	// re-apply once per merged path so bookkeeping has a single source of
	// truth for router loads and hop sums.
	for _, a := range acc {
		bw := c.ValueMBps * a.fraction
		for _, id := range a.arcs {
			res.LinkLoads[id] -= bw
		}
	}
	for i := range acc {
		commit(res, c, acc[i].fraction, acc[i].verts, acc[i].arcs, collect)
	}
	rt.accs = acc
	return nil
}

// RouteSplitOne routes one commodity with traffic splitting against res
// (loads only, no FlowPath collection), updating every aggregate exactly
// like the public routing path, and returns the number of merged paths.
// The merged structure is readable through SplitPath/SplitChunkAcc until
// the next split routing on this Router; the mapper's delta evaluator
// copies it out as the commodity's baseline record.
func (rt *Router) RouteSplitOne(res *Result, srcT, dstT int, c graph.Commodity, chunks int, minOnly bool) (int, error) {
	if chunks <= 0 {
		chunks = DefaultChunks
	}
	if err := rt.routeSplit(srcT, dstT, c, res, chunks, minOnly, false); err != nil {
		return 0, err
	}
	return len(rt.accs), nil
}

// SplitPath returns merged path i of the last split routing. The slices
// alias Router scratch.
func (rt *Router) SplitPath(i int) (verts, arcs []int, fraction float64) {
	a := &rt.accs[i]
	return a.verts, a.arcs, a.fraction
}

// SplitChunkAcc returns, per chunk of the last split routing, the merged
// path index the chunk was folded into (chunk order). The slice aliases
// Router scratch.
func (rt *Router) SplitChunkAcc() []int { return rt.chunkAcc }

// RequiredBandwidth maps the commodity set with the given function and
// returns the minimum uniform link capacity that makes it feasible — the
// metric of Fig. 9(a).
func RequiredBandwidth(topo topology.Topology, assign []int, comms []graph.Commodity, fn Function) (float64, error) {
	res, err := Route(topo, assign, comms, Options{Function: fn})
	if err != nil {
		return 0, err
	}
	return res.MaxLinkLoad, nil
}
