// Package route implements SUNMAP's routing functions: dimension-ordered
// (DO), minimum-path (MP), traffic splitting across minimum paths (SM) and
// traffic splitting across all paths (SA), as enumerated in Sections 1 and
// 6.3 of the paper.
//
// Given a topology, a core-to-terminal assignment and the commodity set,
// Route produces per-link and per-router traffic loads, the flow paths (for
// power estimation and for the simulator's route tables) and the bandwidth
// feasibility verdict: the mapping is feasible when no link carries more
// than its capacity (footnote 1 of the paper treats capacity as a tool
// input).
package route

import (
	"fmt"
	"math"

	"sunmap/internal/graph"
	"sunmap/internal/topology"
)

// Function selects one of the paper's routing functions.
type Function int

const (
	// DimensionOrdered routes obliviously: XY on meshes and tori,
	// bit-ordered on hypercubes, a terminal-determined middle on Clos.
	DimensionOrdered Function = iota
	// MinPath routes each commodity, in decreasing bandwidth order, on a
	// single congestion-aware shortest path inside its quadrant graph
	// (the Fig. 5 algorithm).
	MinPath
	// SplitMin splits each commodity across the minimum-hop path DAG.
	SplitMin
	// SplitAll splits each commodity across arbitrary paths.
	SplitAll
)

// String returns the paper's abbreviation for the routing function.
func (f Function) String() string {
	switch f {
	case DimensionOrdered:
		return "DO"
	case MinPath:
		return "MP"
	case SplitMin:
		return "SM"
	case SplitAll:
		return "SA"
	default:
		return fmt.Sprintf("Function(%d)", int(f))
	}
}

// ParseFunction converts the paper's abbreviation to a Function.
func ParseFunction(s string) (Function, error) {
	switch s {
	case "DO", "do":
		return DimensionOrdered, nil
	case "MP", "mp":
		return MinPath, nil
	case "SM", "sm":
		return SplitMin, nil
	case "SA", "sa":
		return SplitAll, nil
	}
	return 0, fmt.Errorf("route: unknown routing function %q (want DO, MP, SM or SA)", s)
}

// Options configures Route.
type Options struct {
	// Function is the routing function (default DimensionOrdered, the
	// zero value; callers usually set MinPath or a splitting variant).
	Function Function
	// CapacityMBps is the uniform link capacity used for the feasibility
	// verdict. Zero or negative means unconstrained (the "relaxed
	// bandwidth constraints" mode of Section 6.2).
	CapacityMBps float64
	// Chunks is the splitting granularity for SM and SA: each commodity
	// is divided into this many equal chunks, each routed on the least
	// loaded (remaining) path. Default 32.
	Chunks int
	// DisableQuadrant searches the full router graph instead of the
	// quadrant graph for MP routing. The paper restricts Dijkstra to
	// quadrants for "large computational time savings" (Section 4.1);
	// this knob exists for the ablation benchmark quantifying that claim.
	DisableQuadrant bool
}

func (o Options) withDefaults() Options {
	if o.Chunks <= 0 {
		o.Chunks = 32
	}
	return o
}

// FlowPath is one routed fraction of a commodity.
type FlowPath struct {
	// Commodity identifies the flow being carried.
	Commodity graph.Commodity
	// Fraction is the share of the commodity's bandwidth on this path.
	Fraction float64
	// Routers is the router sequence from inject to eject router.
	Routers []int
	// LinkIDs are the traversed link IDs; len(LinkIDs) = len(Routers)-1.
	LinkIDs []int
}

// Hops returns the number of routers traversed (the paper's hop count).
func (p FlowPath) Hops() int { return len(p.Routers) }

// Result is the outcome of routing every commodity.
type Result struct {
	// LinkLoads holds the traffic on each link, indexed by link ID.
	LinkLoads []float64
	// RouterLoads holds the traffic through each router (every flit both
	// enters and leaves a router once, so this counts each flow once per
	// traversed router); the power model multiplies it by the switch bit
	// energy.
	RouterLoads []float64
	// Paths lists every flow path with its bandwidth fraction.
	Paths []FlowPath
	// MaxLinkLoad is the largest entry of LinkLoads: the minimum link
	// capacity that would make this routing feasible (Fig. 9a's metric).
	MaxLinkLoad float64
	// HopSumMBps is the bandwidth-weighted hop total Σ vl(d)·hops(d).
	HopSumMBps float64
	// TotalMBps is the summed commodity bandwidth.
	TotalMBps float64
	// Feasible reports MaxLinkLoad <= capacity (true when capacity is
	// unconstrained).
	Feasible bool
}

// AvgHops returns the bandwidth-weighted average hop count, the paper's
// "average communication delay" metric (Fig. 3d, Fig. 6a, Fig. 7b).
func (r *Result) AvgHops() float64 {
	if r.TotalMBps == 0 {
		return 0
	}
	return r.HopSumMBps / r.TotalMBps
}

// feasTolerance absorbs float accumulation error in the capacity check.
const feasTolerance = 1e-6

// Route routes every commodity over topo under the given core-to-terminal
// assignment. assign[c] is the terminal hosting core c; every commodity's
// endpoints must be assigned. Commodities are processed in the given order,
// which per Fig. 5 should be decreasing bandwidth (graph.Commodities
// guarantees it).
func Route(topo topology.Topology, assign []int, comms []graph.Commodity, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{
		LinkLoads:   make([]float64, len(topo.Links())),
		RouterLoads: make([]float64, topo.NumRouters()),
	}
	for _, c := range comms {
		if c.Src < 0 || c.Src >= len(assign) || c.Dst < 0 || c.Dst >= len(assign) {
			return nil, fmt.Errorf("route: commodity %d endpoints (%d,%d) outside assignment of %d cores",
				c.ID, c.Src, c.Dst, len(assign))
		}
		srcT, dstT := assign[c.Src], assign[c.Dst]
		if srcT < 0 || srcT >= topo.NumTerminals() || dstT < 0 || dstT >= topo.NumTerminals() {
			return nil, fmt.Errorf("route: commodity %d mapped to invalid terminals (%d,%d)", c.ID, srcT, dstT)
		}
		if srcT == dstT {
			return nil, fmt.Errorf("route: commodity %d has source and destination on terminal %d", c.ID, srcT)
		}
		var err error
		switch opts.Function {
		case DimensionOrdered:
			err = routeDO(topo, srcT, dstT, c, res)
		case MinPath:
			err = routeSingle(topo, srcT, dstT, c, res, !opts.DisableQuadrant)
		case SplitMin:
			err = routeSplit(topo, srcT, dstT, c, res, opts.Chunks, true)
		case SplitAll:
			err = routeSplit(topo, srcT, dstT, c, res, opts.Chunks, false)
		default:
			err = fmt.Errorf("route: unknown routing function %v", opts.Function)
		}
		if err != nil {
			return nil, err
		}
	}
	for _, l := range res.LinkLoads {
		if l > res.MaxLinkLoad {
			res.MaxLinkLoad = l
		}
	}
	res.Feasible = opts.CapacityMBps <= 0 || res.MaxLinkLoad <= opts.CapacityMBps+feasTolerance
	return res, nil
}

// commit records one flow path carrying fraction f of commodity c.
func commit(res *Result, c graph.Commodity, f float64, verts, arcs []int) {
	bw := c.ValueMBps * f
	for _, id := range arcs {
		res.LinkLoads[id] += bw
	}
	for _, r := range verts {
		res.RouterLoads[r] += bw
	}
	res.HopSumMBps += bw * float64(len(verts))
	res.TotalMBps += bw
	res.Paths = append(res.Paths, FlowPath{
		Commodity: c,
		Fraction:  f,
		Routers:   append([]int(nil), verts...),
		LinkIDs:   append([]int(nil), arcs...),
	})
}

// loadWeight builds the congestion-aware weight of Fig. 5: the accumulated
// load on each link, plus a small per-hop bias so that among equally loaded
// alternatives shorter paths win deterministically.
func loadWeight(res *Result, hopBias float64) graph.WeightFunc {
	return func(_ int, a graph.Arc) float64 {
		return res.LinkLoads[a.ID] + hopBias
	}
}

// hopBiasFor scales the tie-breaking bias to the commodity sizes in play so
// it never dominates a real load difference.
func hopBiasFor(comms float64) float64 {
	if comms <= 0 {
		return 1e-9
	}
	return comms * 1e-9
}

// routeSingle routes the whole commodity on one congestion-aware shortest
// path, restricted to the quadrant graph when useQuadrant is set.
func routeSingle(topo topology.Topology, srcT, dstT int, c graph.Commodity, res *Result, useQuadrant bool) error {
	var mask []bool
	if useQuadrant {
		mask = topo.Quadrant(srcT, dstT)
	}
	src, dst := topo.InjectRouter(srcT), topo.EjectRouter(dstT)
	verts, arcs, ok := shortest(topo, src, dst, loadWeight(res, hopBiasFor(c.ValueMBps)), mask)
	if !ok {
		return fmt.Errorf("route: no path for commodity %d (terminals %d->%d) on %s",
			c.ID, srcT, dstT, topo.Name())
	}
	commit(res, c, 1.0, verts, arcs)
	return nil
}

// routeSplit divides the commodity into chunks and water-fills them over
// the minimum-hop DAG (SM) or the whole router graph (SA).
func routeSplit(topo topology.Topology, srcT, dstT int, c graph.Commodity, res *Result, chunks int, minOnly bool) error {
	src, dst := topo.InjectRouter(srcT), topo.EjectRouter(dstT)
	var mask []bool
	var dagArcs map[int]bool
	if minOnly {
		mask = topo.Quadrant(srcT, dstT)
		dagArcs = topo.Graph().AllMinHopArcs(src, dst, mask)
	}
	bias := hopBiasFor(c.ValueMBps)
	base := loadWeight(res, bias)
	w := base
	if minOnly {
		w = func(from int, a graph.Arc) float64 {
			if !dagArcs[a.ID] {
				return math.Inf(1)
			}
			return base(from, a)
		}
	}
	// Accumulate identical consecutive chunk paths into one FlowPath to
	// keep Paths compact; loads must still be updated per chunk so later
	// chunks see the congestion earlier ones created.
	frac := 1.0 / float64(chunks)
	type accum struct {
		verts, arcs []int
		fraction    float64
	}
	var acc []accum
	for i := 0; i < chunks; i++ {
		verts, arcs, ok := shortest(topo, src, dst, w, mask)
		if !ok {
			return fmt.Errorf("route: no path for commodity %d chunk %d on %s", c.ID, i, topo.Name())
		}
		bw := c.ValueMBps * frac
		for _, id := range arcs {
			res.LinkLoads[id] += bw
		}
		merged := false
		for j := range acc {
			if equalInts(acc[j].arcs, arcs) {
				acc[j].fraction += frac
				merged = true
				break
			}
		}
		if !merged {
			acc = append(acc, accum{verts: verts, arcs: arcs, fraction: frac})
		}
	}
	// Loads for links were applied per chunk above; undo and let commit
	// re-apply once per merged path so bookkeeping has a single source of
	// truth for router loads and hop sums.
	for _, a := range acc {
		bw := c.ValueMBps * a.fraction
		for _, id := range a.arcs {
			res.LinkLoads[id] -= bw
		}
	}
	for _, a := range acc {
		commit(res, c, a.fraction, a.verts, a.arcs)
	}
	return nil
}

// shortest wraps Digraph.ShortestPath handling the degenerate star case
// where inject and eject are the same router (a one-router path).
func shortest(topo topology.Topology, src, dst int, w graph.WeightFunc, mask []bool) (verts, arcs []int, ok bool) {
	if src == dst {
		return []int{src}, nil, true
	}
	return topo.Graph().ShortestPath(src, dst, w, mask)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RequiredBandwidth maps the commodity set with the given function and
// returns the minimum uniform link capacity that makes it feasible — the
// metric of Fig. 9(a).
func RequiredBandwidth(topo topology.Topology, assign []int, comms []graph.Commodity, fn Function) (float64, error) {
	res, err := Route(topo, assign, comms, Options{Function: fn})
	if err != nil {
		return 0, err
	}
	return res.MaxLinkLoad, nil
}
