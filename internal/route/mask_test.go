package route

// Masked-rerouting tests: the failed-link behavior the fault subsystem's
// survivability sweep depends on. They pin that congestion-aware routing
// reroutes around DownLinks (leaving masked links untouched), that split
// routing keeps every chunk off masked links, that the oblivious DO
// discipline and a cut SM DAG fail loudly, and that a malformed mask is
// rejected.

import (
	"strings"
	"testing"

	"sunmap/internal/graph"
	"sunmap/internal/topology"
)

// maskFor returns an all-false mask sized for topo with the given link
// IDs marked down.
func maskFor(topo topology.Topology, down ...int) []bool {
	m := make([]bool, len(topo.Links()))
	for _, id := range down {
		m[id] = true
	}
	return m
}

// linkID finds the directed link u->v.
func linkID(t *testing.T, topo topology.Topology, u, v int) int {
	t.Helper()
	for _, l := range topo.Links() {
		if l.From == u && l.To == v {
			return l.ID
		}
	}
	t.Fatalf("no link %d->%d in %s", u, v, topo.Name())
	return -1
}

// assertAvoids fails when any routed path crosses a masked link.
func assertAvoids(t *testing.T, res *Result, mask []bool) {
	t.Helper()
	for _, p := range res.Paths {
		for _, id := range p.LinkIDs {
			if mask[id] {
				t.Errorf("commodity %d routed over down link %d", p.Commodity.ID, id)
			}
		}
	}
	for id, down := range mask {
		if down && res.LinkLoads[id] != 0 {
			t.Errorf("down link %d carries %g MB/s", id, res.LinkLoads[id])
		}
	}
}

// TestMinPathReroutesAroundDownLink fails the direct channel between two
// adjacent mesh routers and checks MP finds the detour (and that the
// detour really is longer).
func TestMinPathReroutesAroundDownLink(t *testing.T) {
	topo := mustTopo(topology.NewMesh(2, 2))
	comms := []graph.Commodity{comm(0, 0, 1, 100)}
	assign := identityAssign(4)

	base, err := Route(topo, assign, comms, Options{Function: MinPath})
	if err != nil {
		t.Fatal(err)
	}
	if got := base.Paths[0].Hops(); got != 2 {
		t.Fatalf("fault-free path has %d hops, want 2", got)
	}

	mask := maskFor(topo, linkID(t, topo, 0, 1))
	res, err := Route(topo, assign, comms, Options{Function: MinPath, DownLinks: mask})
	if err != nil {
		t.Fatalf("masked MP routing failed: %v", err)
	}
	assertAvoids(t, res, mask)
	checkConservation(t, topo, comms, res)
	if got := res.Paths[0].Hops(); got != 4 {
		t.Errorf("detour has %d hops, want 4 (0->2->3->1)", got)
	}
}

// TestMinPathMaskedDisconnected cuts every link out of the source router
// and checks the failure is reported as a routing error, not a panic or
// a silent partial result.
func TestMinPathMaskedDisconnected(t *testing.T) {
	topo := mustTopo(topology.NewMesh(2, 2))
	var down []int
	for _, l := range topo.Links() {
		if l.From == 0 || l.To == 0 {
			down = append(down, l.ID)
		}
	}
	_, err := Route(topo, identityAssign(4), []graph.Commodity{comm(0, 0, 3, 50)},
		Options{Function: MinPath, DownLinks: maskFor(topo, down...)})
	if err == nil {
		t.Fatal("routing out of an isolated router succeeded")
	}
}

// TestSplitRoutingRespectsMask pins the split-routing path of the sweep:
// SA must water-fill every chunk onto surviving links only, with loads
// conserved, even when the heaviest fault-free path is down.
func TestSplitRoutingRespectsMask(t *testing.T) {
	topo := mustTopo(topology.NewMesh(3, 3))
	comms := []graph.Commodity{comm(0, 0, 8, 320), comm(1, 2, 6, 160)}
	assign := identityAssign(9)

	base, err := Route(topo, assign, comms, Options{Function: SplitAll, Chunks: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Fail the busiest link of the fault-free split routing.
	worst := 0
	for id, l := range base.LinkLoads {
		if l > base.LinkLoads[worst] {
			worst = id
		}
	}
	mask := maskFor(topo, worst)
	res, err := Route(topo, assign, comms, Options{Function: SplitAll, Chunks: 8, DownLinks: mask})
	if err != nil {
		t.Fatalf("masked SA routing failed: %v", err)
	}
	assertAvoids(t, res, mask)
	checkConservation(t, topo, comms, res)
}

// TestSplitMinFailsWhenDAGCut verifies SM's documented fragility: when
// the fault severs the minimum-hop DAG the commodity is confined to, SM
// reports an error instead of silently leaving the DAG.
func TestSplitMinFailsWhenDAGCut(t *testing.T) {
	// On a 1x3 mesh path graph the min-hop DAG from terminal 0 to 2 is
	// the unique chain 0->1->2; failing 0->1 cuts it.
	topo := mustTopo(topology.NewMesh(1, 3))
	mask := maskFor(topo, linkID(t, topo, 0, 1))
	_, err := Route(topo, identityAssign(3), []graph.Commodity{comm(0, 0, 2, 100)},
		Options{Function: SplitMin, DownLinks: mask})
	if err == nil {
		t.Fatal("SM routed across a cut minimum-hop DAG")
	}
}

// TestDOFailsOnDownLink verifies the oblivious discipline cannot adapt:
// a DO path crossing a down link is an error naming the link.
func TestDOFailsOnDownLink(t *testing.T) {
	topo := mustTopo(topology.NewMesh(2, 2))
	// DO (XY, columns first) routes 0->3 via 0->1->3.
	id := linkID(t, topo, 0, 1)
	_, err := Route(topo, identityAssign(4), []graph.Commodity{comm(0, 0, 3, 100)},
		Options{Function: DimensionOrdered, DownLinks: maskFor(topo, id)})
	if err == nil {
		t.Fatal("DO routed over a down link")
	}
	if !strings.Contains(err.Error(), "down link") {
		t.Errorf("error %q does not name the down link", err)
	}
	// A fault off the DO path leaves DO untouched.
	other := linkID(t, topo, 2, 0)
	res, err := Route(topo, identityAssign(4), []graph.Commodity{comm(0, 0, 3, 100)},
		Options{Function: DimensionOrdered, DownLinks: maskFor(topo, other)})
	if err != nil {
		t.Fatalf("DO failed on an untouched path: %v", err)
	}
	if got := res.Paths[0].Hops(); got != 3 {
		t.Errorf("DO path has %d hops, want 3", got)
	}
}

// TestDownLinksLengthValidated rejects a mask that does not cover the
// topology's links.
func TestDownLinksLengthValidated(t *testing.T) {
	topo := mustTopo(topology.NewMesh(2, 2))
	_, err := Route(topo, identityAssign(4), []graph.Commodity{comm(0, 0, 3, 10)},
		Options{Function: MinPath, DownLinks: make([]bool, 3)})
	if err == nil {
		t.Fatal("short DownLinks mask accepted")
	}
}

// TestMaskedRouterReuse checks a Router's mask never leaks across calls:
// a masked RouteInto followed by an unmasked one must reproduce the
// fault-free result exactly.
func TestMaskedRouterReuse(t *testing.T) {
	topo := mustTopo(topology.NewMesh(2, 2))
	comms := []graph.Commodity{comm(0, 0, 1, 100)}
	assign := identityAssign(4)
	rt := NewRouter()
	var masked, clean, ref Result
	if err := rt.RouteInto(&ref, topo, assign, comms, Options{Function: MinPath}); err != nil {
		t.Fatal(err)
	}
	mask := maskFor(topo, linkID(t, topo, 0, 1))
	if err := rt.RouteInto(&masked, topo, assign, comms, Options{Function: MinPath, DownLinks: mask}); err != nil {
		t.Fatal(err)
	}
	if err := rt.RouteInto(&clean, topo, assign, comms, Options{Function: MinPath}); err != nil {
		t.Fatal(err)
	}
	if clean.MaxLinkLoad != ref.MaxLinkLoad || clean.HopSumMBps != ref.HopSumMBps {
		t.Errorf("post-mask routing diverged: max load %g vs %g, hop sum %g vs %g",
			clean.MaxLinkLoad, ref.MaxLinkLoad, clean.HopSumMBps, ref.HopSumMBps)
	}
	if masked.HopSumMBps == ref.HopSumMBps {
		t.Error("masked routing did not detour (hop sums equal)")
	}
}
