package route

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sunmap/internal/graph"
	"sunmap/internal/topology"
)

func identityAssign(n int) []int {
	a := make([]int, n)
	for i := range a {
		a[i] = i
	}
	return a
}

func comm(id, src, dst int, bw float64) graph.Commodity {
	return graph.Commodity{ID: id, Src: src, Dst: dst, ValueMBps: bw}
}

// mustTopo unwraps a topology constructor result, panicking on error;
// constructor failures here are programming errors in the test itself.
func mustTopo(topo topology.Topology, err error) topology.Topology {
	if err != nil {
		panic(err)
	}
	return topo
}

// checkConservation verifies the accounting invariants every routing
// result must satisfy.
func checkConservation(t *testing.T, topo topology.Topology, comms []graph.Commodity, res *Result) {
	t.Helper()
	var want float64
	for _, c := range comms {
		want += c.ValueMBps
	}
	if math.Abs(res.TotalMBps-want) > 1e-6 {
		t.Errorf("TotalMBps = %g, want %g", res.TotalMBps, want)
	}
	// Per-commodity fractions must sum to 1.
	frac := make(map[int]float64)
	for _, p := range res.Paths {
		frac[p.Commodity.ID] += p.Fraction
		if len(p.Routers) != len(p.LinkIDs)+1 {
			t.Errorf("path for commodity %d: %d routers, %d links",
				p.Commodity.ID, len(p.Routers), len(p.LinkIDs))
		}
		// Path must follow actual links.
		links := topo.Links()
		for i, id := range p.LinkIDs {
			l := links[id]
			if l.From != p.Routers[i] || l.To != p.Routers[i+1] {
				t.Errorf("commodity %d link %d does not match router walk", p.Commodity.ID, id)
			}
		}
	}
	for _, c := range comms {
		if math.Abs(frac[c.ID]-1) > 1e-9 {
			t.Errorf("commodity %d fractions sum to %g", c.ID, frac[c.ID])
		}
	}
	// Link loads must equal the sum over paths.
	loads := make([]float64, len(topo.Links()))
	for _, p := range res.Paths {
		for _, id := range p.LinkIDs {
			loads[id] += p.Commodity.ValueMBps * p.Fraction
		}
	}
	for i := range loads {
		if math.Abs(loads[i]-res.LinkLoads[i]) > 1e-6 {
			t.Errorf("link %d load = %g, recomputed %g", i, res.LinkLoads[i], loads[i])
		}
	}
}

func TestMinPathOnMeshTakesShortestRoute(t *testing.T) {
	topo := mustTopo(topology.NewMesh(3, 3))
	comms := []graph.Commodity{comm(0, 0, 8, 100)}
	res, err := Route(topo, identityAssign(9), comms, Options{Function: MinPath})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Paths[0].Hops(); got != 5 {
		t.Errorf("hops = %d, want 5 (corner to corner of 3x3)", got)
	}
	if res.MaxLinkLoad != 100 {
		t.Errorf("MaxLinkLoad = %g, want 100", res.MaxLinkLoad)
	}
	checkConservation(t, topo, comms, res)
}

func TestMinPathSpreadsCongestion(t *testing.T) {
	// Two equal flows between the same corner pair: the second should
	// avoid the first's links where possible, halving the peak load
	// compared to naive overlap on interior links.
	topo := mustTopo(topology.NewMesh(3, 3))
	comms := []graph.Commodity{comm(0, 0, 8, 100), comm(1, 1, 8, 100)}
	res, err := Route(topo, identityAssign(9), comms, Options{Function: MinPath})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLinkLoad > 100+1e-9 {
		t.Errorf("MaxLinkLoad = %g; congestion-aware routing should keep flows apart", res.MaxLinkLoad)
	}
	checkConservation(t, topo, comms, res)
}

func TestMinPathStaysInsideQuadrant(t *testing.T) {
	topo := mustTopo(topology.NewMesh(3, 4))
	comms := []graph.Commodity{comm(0, 1, 11, 50)}
	res, err := Route(topo, identityAssign(12), comms, Options{Function: MinPath})
	if err != nil {
		t.Fatal(err)
	}
	q := topo.Quadrant(1, 11)
	for _, r := range res.Paths[0].Routers {
		if !q[r] {
			t.Errorf("router %d outside quadrant", r)
		}
	}
}

func TestDOMeshIsXY(t *testing.T) {
	topo := mustTopo(topology.NewMesh(3, 3))
	comms := []graph.Commodity{comm(0, 0, 8, 10)}
	res, err := Route(topo, identityAssign(9), comms, Options{Function: DimensionOrdered})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 5, 8} // columns first, then rows
	got := res.Paths[0].Routers
	if len(got) != len(want) {
		t.Fatalf("DO path = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DO path = %v, want %v", got, want)
		}
	}
}

func TestDOTorusUsesWrap(t *testing.T) {
	topo := mustTopo(topology.NewTorus(4, 4))
	comms := []graph.Commodity{comm(0, 0, 3, 10)}
	res, err := Route(topo, identityAssign(16), comms, Options{Function: DimensionOrdered})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Paths[0].Hops(); got != 2 {
		t.Errorf("torus DO 0->3 hops = %d, want 2 (wrap)", got)
	}
}

func TestDOHypercubeFixesBitsInOrder(t *testing.T) {
	topo := mustTopo(topology.NewHypercube(3))
	comms := []graph.Commodity{comm(0, 0, 7, 10)}
	res, err := Route(topo, identityAssign(8), comms, Options{Function: DimensionOrdered})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 3, 7}
	got := res.Paths[0].Routers
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("cube DO path = %v, want %v", got, want)
		}
	}
}

func TestDOClosDeterministicMiddle(t *testing.T) {
	topo := mustTopo(topology.NewClos(4, 2, 4))
	comms := []graph.Commodity{comm(0, 0, 7, 10)}
	res1, err := Route(topo, identityAssign(8), comms, Options{Function: DimensionOrdered})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Route(topo, identityAssign(8), comms, Options{Function: DimensionOrdered})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Paths[0].Routers[1] != res2.Paths[0].Routers[1] {
		t.Error("clos DO middle not deterministic")
	}
	if got := res1.Paths[0].Hops(); got != 3 {
		t.Errorf("clos hops = %d, want 3", got)
	}
}

func TestSplitMinHalvesOversizedFlow(t *testing.T) {
	// A 910 MB/s flow between opposite corners of a 2x2 mesh has two
	// minimum paths; SM must split it so no link exceeds ~455.
	topo := mustTopo(topology.NewMesh(2, 2))
	comms := []graph.Commodity{comm(0, 0, 3, 910)}
	res, err := Route(topo, identityAssign(4), comms, Options{Function: SplitMin, CapacityMBps: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLinkLoad > 500 {
		t.Errorf("SM MaxLinkLoad = %g, want <= 500 after splitting", res.MaxLinkLoad)
	}
	if !res.Feasible {
		t.Error("SM routing infeasible despite path diversity")
	}
	if len(res.Paths) < 2 {
		t.Errorf("SM produced %d paths, want >= 2", len(res.Paths))
	}
	checkConservation(t, topo, comms, res)
	// All SM paths must be minimum-hop.
	for _, p := range res.Paths {
		if p.Hops() != topo.MinHops(0, 3) {
			t.Errorf("SM path has %d hops, want %d", p.Hops(), topo.MinHops(0, 3))
		}
	}
}

func TestSplitAllUsesNonMinimalPaths(t *testing.T) {
	// Between adjacent nodes of a ring-like torus row there is only one
	// minimum path; SA may detour. Check that a huge flow between
	// adjacent 1D neighbours gets spread below its full value.
	topo := mustTopo(topology.NewTorus(3, 3))
	comms := []graph.Commodity{comm(0, 0, 1, 900)}
	res, err := Route(topo, identityAssign(9), comms, Options{Function: SplitAll})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLinkLoad >= 900-1e-6 {
		t.Errorf("SA MaxLinkLoad = %g, want < 900 (detours available)", res.MaxLinkLoad)
	}
	checkConservation(t, topo, comms, res)
}

func TestButterflyNoPathDiversity(t *testing.T) {
	// Splitting cannot help a butterfly: SM and SA must both put the whole
	// flow on the unique path (Section 6.1's MPEG4 argument).
	topo := mustTopo(topology.NewButterfly(2, 3))
	comms := []graph.Commodity{comm(0, 0, 7, 910)}
	for _, fn := range []Function{MinPath, SplitMin} {
		res, err := Route(topo, identityAssign(8), comms, Options{Function: fn, CapacityMBps: 500})
		if err != nil {
			t.Fatalf("%v: %v", fn, err)
		}
		if res.MaxLinkLoad < 910-1e-6 {
			t.Errorf("%v: MaxLinkLoad = %g, want 910 on the unique path", fn, res.MaxLinkLoad)
		}
		if res.Feasible {
			t.Errorf("%v: butterfly reported feasible despite 910 > 500", fn)
		}
	}
}

func TestClosSplitUsesMiddleDiversity(t *testing.T) {
	topo := mustTopo(topology.NewClos(4, 2, 4))
	comms := []graph.Commodity{comm(0, 0, 7, 910)}
	res, err := Route(topo, identityAssign(8), comms, Options{Function: SplitMin, CapacityMBps: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLinkLoad > 910.0/4+1e-6 {
		t.Errorf("clos SM MaxLinkLoad = %g, want %g with 4 middles", res.MaxLinkLoad, 910.0/4)
	}
	if !res.Feasible {
		t.Error("clos SM infeasible")
	}
}

func TestStarRouting(t *testing.T) {
	topo := mustTopo(topology.NewStar(5))
	comms := []graph.Commodity{comm(0, 0, 4, 100)}
	res, err := Route(topo, identityAssign(5), comms, Options{Function: MinPath})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Paths[0].Hops(); got != 1 {
		t.Errorf("star hops = %d, want 1", got)
	}
	if res.RouterLoads[0] != 100 {
		t.Errorf("hub load = %g, want 100", res.RouterLoads[0])
	}
}

func TestRouteErrors(t *testing.T) {
	topo := mustTopo(topology.NewMesh(2, 2))
	if _, err := Route(topo, []int{0}, []graph.Commodity{comm(0, 0, 3, 1)}, Options{}); err == nil {
		t.Error("out-of-range commodity endpoint accepted")
	}
	if _, err := Route(topo, []int{0, 0}, []graph.Commodity{comm(0, 0, 1, 1)}, Options{}); err == nil {
		t.Error("two cores on one terminal accepted")
	}
	if _, err := Route(topo, []int{0, 9}, []graph.Commodity{comm(0, 0, 1, 1)}, Options{}); err == nil {
		t.Error("invalid terminal accepted")
	}
}

func TestRequiredBandwidthOrdering(t *testing.T) {
	// Splitting variants gain routing freedom over single-path variants,
	// so their required bandwidth must not exceed MP's on any instance.
	// (DO vs MP is instance-dependent: both are single-path, and the
	// greedy order can make either win; the paper's Fig. 9a shape
	// DO >= MP emerges after mapping optimization and is asserted in the
	// experiment harness, not here.)
	topo := mustTopo(topology.NewMesh(3, 3))
	comms := []graph.Commodity{
		comm(0, 0, 8, 900),
		comm(1, 2, 6, 600),
		comm(2, 1, 7, 300),
	}
	assign := identityAssign(9)
	var req [4]float64
	for i, fn := range []Function{DimensionOrdered, MinPath, SplitMin, SplitAll} {
		v, err := RequiredBandwidth(topo, assign, comms, fn)
		if err != nil {
			t.Fatalf("%v: %v", fn, err)
		}
		req[i] = v
	}
	if !(req[1] >= req[2]-1e-6 && req[2] >= req[3]-1e-6) {
		t.Errorf("required BW not monotone: MP=%g SM=%g SA=%g", req[1], req[2], req[3])
	}
	if req[2] >= 900 {
		t.Errorf("SM did not split the 900 flow: %g", req[2])
	}
	if req[0] < 900-1e-6 {
		t.Errorf("DO = %g, want >= 900 (single path carries the whole flow)", req[0])
	}
}

func TestFunctionStringAndParse(t *testing.T) {
	for _, fn := range []Function{DimensionOrdered, MinPath, SplitMin, SplitAll} {
		got, err := ParseFunction(fn.String())
		if err != nil || got != fn {
			t.Errorf("ParseFunction(%s) = %v, %v", fn, got, err)
		}
	}
	if _, err := ParseFunction("XX"); err == nil {
		t.Error("bad function name accepted")
	}
}

// Property: on random meshes with random commodities, every routing
// function conserves traffic and respects per-commodity fraction sums.
func TestRoutingConservationProperty(t *testing.T) {
	fns := []Function{DimensionOrdered, MinPath, SplitMin, SplitAll}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 2+rng.Intn(3), 2+rng.Intn(3)
		topo, err := topology.NewMesh(rows, cols)
		if err != nil {
			return false
		}
		n := topo.NumTerminals()
		var comms []graph.Commodity
		for i := 0; i < 5; i++ {
			s, d := rng.Intn(n), rng.Intn(n)
			if s == d {
				continue
			}
			comms = append(comms, comm(len(comms), s, d, 1+rng.Float64()*800))
		}
		if len(comms) == 0 {
			return true
		}
		for _, fn := range fns {
			res, err := Route(topo, identityAssign(n), comms, Options{Function: fn})
			if err != nil {
				return false
			}
			var want float64
			for _, c := range comms {
				want += c.ValueMBps
			}
			if math.Abs(res.TotalMBps-want) > 1e-6 {
				return false
			}
			frac := make(map[int]float64)
			for _, p := range res.Paths {
				frac[p.Commodity.ID] += p.Fraction
			}
			for _, c := range comms {
				if math.Abs(frac[c.ID]-1) > 1e-9 {
					return false
				}
			}
			// Hop sum must be at least the min-hop lower bound.
			var lower float64
			for _, c := range comms {
				lower += c.ValueMBps * float64(topo.MinHops(c.Src, c.Dst))
			}
			if res.HopSumMBps < lower-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
