// Package search discovers application-specific NoC topologies by
// seeded, deterministic simulated annealing over arbitrary digraph edge
// sets — the step past SUNMAP's fixed library (Murali & De Micheli, DAC
// 2004) that NetSmith-style machine search takes: instead of picking the
// best of a handful of hand-designed families, anneal the edge set
// itself under radix, connectivity and deadlock-freedom constraints.
//
// The search runs Restarts independent annealing chains, each seeded
// from a different synthesized starting point (KL clustering, trimmed
// mesh, sparse Hamming, path/ring fallbacks) and decorrelated by a
// splitmix of (Seed, chain index). A chain's inner loop is
// allocation-free: mutate the candidate edge set in place (edge
// add/remove/swap, node split/merge), reject candidates violating the
// hard constraints, route all commodities with congestion-aware
// minimum-path search, reject cyclic channel-dependency graphs, and
// accept by the Metropolis rule under a geometric cooling schedule.
// Chain winners are materialized through topology.NewCustom, fully
// mapped (placement, floorplan, power), optionally swept for fault
// survivability, and folded sequentially into one best design.
//
// Determinism contract: for a fixed (Seed, Budget, Restarts) the result
// is byte-identical at every parallelism, because chains are independent
// units with fixed per-chain budgets and seeds, results are
// index-addressed, and the final fold is a sequential reduction with
// total tie-breaks. Cancellation returns the partial best found so far
// alongside the context's error.
package search

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"strings"

	"sunmap/internal/core"
	"sunmap/internal/engine"
	"sunmap/internal/fault"
	"sunmap/internal/graph"
	"sunmap/internal/mapping"
	"sunmap/internal/pool"
	"sunmap/internal/synth"
	"sunmap/internal/topology"
)

// Sentinel errors, matched with errors.Is by the session layer to
// classify failures onto the wire schema.
var (
	// ErrBadOptions reports invalid search options or an application the
	// search cannot operate on.
	ErrBadOptions = errors.New("invalid search options")
	// ErrNoFeasible reports a run whose budget expired without any chain
	// producing a feasible, fully evaluated topology.
	ErrNoFeasible = errors.New("no feasible topology within budget")
)

// Options tunes one search run. The zero value of every field selects a
// sensible default.
type Options struct {
	// Budget is the total number of candidate evaluations across all
	// chains (default 20000). Every mutate→evaluate→accept iteration
	// charges one evaluation, so the budget fixes the iteration count
	// exactly — part of the determinism contract.
	Budget int
	// Restarts is the number of independent annealing chains (default 4).
	Restarts int
	// Seed drives all randomness. The same seed always explores the same
	// candidate sequence.
	Seed int64
	// MaxRadix caps the undirected inter-router links per switch
	// (default 4; must be >= 2).
	MaxRadix int
	// MaxCoresPerSwitch caps the terminals attached to one switch
	// (default 4; must be >= 1).
	MaxCoresPerSwitch int
	// MaxSwitches caps the router count (default: the core count).
	MaxSwitches int
	// Mapping configures the full evaluation of chain winners and the
	// link capacity/objective the fitness function mirrors.
	Mapping mapping.Options
	// Fault, when non-nil, scores chain winners' survivability and folds
	// it into the final ranking via core.ReliabilityScore.
	Fault *fault.Model
	// ReliabilityWeight is the w of the composite reliability score
	// (non-positive selects 1); only consulted when Fault is set.
	ReliabilityWeight float64
	// Parallelism bounds the chain fan-out (0 selects GOMAXPROCS).
	Parallelism int
	// Limit, when non-nil, is the session's shared admission semaphore:
	// each chain holds one slot; nested fault-sweep workers only borrow
	// idle slots by TryAcquire.
	Limit *pool.Limiter
	// CheckpointEvery, when > 0 together with Checkpoint, emits a durable
	// ChainCheckpoint every CheckpointEvery evaluations of each chain (at
	// step boundaries). The callback runs on chain goroutines and may be
	// invoked concurrently; implementations must be safe for concurrent
	// use and should return quickly (journal the bytes, don't fsync per
	// chain step).
	CheckpointEvery int
	Checkpoint      func(ChainCheckpoint)
	// Resume seeds chains from previously captured checkpoints, matched
	// by chain index; chains without a matching entry start fresh. A
	// resumed run must use the same Seed, Budget, Restarts, bounds and
	// application as the run that captured the checkpoints — the
	// determinism contract (resume(seed, step N) == uninterrupted run)
	// only holds when the remaining schedule is identical.
	Resume []ChainCheckpoint
}

func (o Options) withDefaults(terms int) (Options, bounds, error) {
	if o.Budget <= 0 {
		o.Budget = 20000
	}
	if o.Restarts <= 0 {
		o.Restarts = 4
	}
	if o.MaxRadix == 0 {
		o.MaxRadix = 4
	}
	if o.MaxRadix < 2 {
		return o, bounds{}, fmt.Errorf("search: %w: MaxRadix %d (want 0 for the default, or >= 2)", ErrBadOptions, o.MaxRadix)
	}
	if o.MaxCoresPerSwitch == 0 {
		o.MaxCoresPerSwitch = 4
	}
	if o.MaxCoresPerSwitch < 1 {
		return o, bounds{}, fmt.Errorf("search: %w: MaxCoresPerSwitch %d (want 0 for the default, or >= 1)", ErrBadOptions, o.MaxCoresPerSwitch)
	}
	if o.MaxSwitches == 0 {
		o.MaxSwitches = terms
	}
	b := bounds{maxRadix: o.MaxRadix, maxCores: o.MaxCoresPerSwitch, maxR: o.MaxSwitches}
	b.minR = (terms + b.maxCores - 1) / b.maxCores
	if b.minR < 2 {
		b.minR = 2
	}
	if b.maxR < b.minR {
		return o, bounds{}, fmt.Errorf("search: %w: MaxSwitches %d cannot host %d cores at %d per switch (need >= %d)",
			ErrBadOptions, b.maxR, terms, b.maxCores, b.minR)
	}
	return o, b, nil
}

// Candidate is one evaluated design point of the search.
type Candidate struct {
	// Routers, BiLinks and Terminals are the structure: undirected
	// router pairs (sorted, endpoints ascending) and the terminal→router
	// attachment.
	Routers   int
	BiLinks   [][2]int
	Terminals []int
	// Fitness is the inner-loop score (lower is better): bandwidth-
	// weighted average hops, overload penalty, structural terms.
	Fitness float64
	// Evaluated is the full mapping of the materialized topology —
	// placement, floorplan, area, power, cost. Nil when the run was
	// canceled before this candidate reached full evaluation.
	Evaluated *mapping.Result
	// Survivability is the fault-sweep score when Options.Fault was set.
	Survivability    float64
	HasSurvivability bool
}

// Result is one completed (or canceled) search run.
type Result struct {
	// Best is the winning candidate of the sequential fold.
	Best Candidate
	// Evaluations counts candidate evaluations actually performed;
	// Accepted counts Metropolis acceptances.
	Evaluations int
	Accepted    int
	// Chains is the number of annealing chains; Seed and Budget echo the
	// resolved options.
	Chains int
	Seed   int64
	Budget int
}

// chainResult is one chain's contribution, index-addressed for
// determinism.
type chainResult struct {
	chain           int
	init, best      Candidate
	evals, accepted int
	err             error
}

// Run executes the search. On context cancellation it returns the
// partial best found so far together with the context's error; the
// partial best may lack a full evaluation (Best.Evaluated == nil).
func Run(ctx context.Context, app *graph.CoreGraph, opts Options) (*Result, error) {
	if app == nil {
		return nil, fmt.Errorf("search: %w: nil application", ErrBadOptions)
	}
	if err := app.Validate(); err != nil {
		return nil, fmt.Errorf("search: %w: %w", ErrBadOptions, err)
	}
	terms := app.NumCores()
	if terms < 2 {
		return nil, fmt.Errorf("search: %w: need at least 2 cores, got %d", ErrBadOptions, terms)
	}
	if app.NumEdges() == 0 {
		return nil, fmt.Errorf("search: %w: application %q has no flows", ErrBadOptions, app.Name())
	}
	o, b, err := opts.withDefaults(terms)
	if err != nil {
		return nil, err
	}

	comms := app.Commodities()
	inits := initialCandidates(app, terms, b)
	chains := o.Restarts
	per, rem := o.Budget/chains, o.Budget%chains
	results := make([]*chainResult, chains)
	scratch := pool.NewFree(mapping.NewScratch)
	sweepers := pool.NewFree(fault.NewSweeper)
	eo := engine.Options{Parallelism: o.Parallelism, Limit: o.Limit}
	intra := eo.IntraParallelism()
	fanErr := engine.Fan(ctx, chains, eo, func(i int) error {
		budget := per
		if i < rem {
			budget++
		}
		cr := runChain(ctx, comms, terms, o, b, i, budget, inits[i%len(inits)])
		if cr.err == nil && ctx.Err() == nil {
			finishChain(ctx, app, comms, o, cr, scratch, sweepers, intra)
		}
		results[i] = cr
		return cr.err
	})
	res := fold(results, o, chains)
	if ctxErr := ctx.Err(); ctxErr != nil {
		return res, ctxErr
	}
	if fanErr != nil {
		return nil, fanErr
	}
	if res.Best.Evaluated == nil {
		return nil, fmt.Errorf("search: %w %d", ErrNoFeasible, o.Budget)
	}
	return res, nil
}

// chainSeed decorrelates per-chain RNG streams from (seed, chain) by a
// splitmix64-style finalizer, so chains never share a random sequence
// even for adjacent seeds.
func chainSeed(seed int64, chain int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(chain+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// chain is one annealing restart's mutable state.
type chain struct {
	rng *rand.Rand
	// src is the counting source underneath rng: its draw count is the
	// serializable RNG position checkpoints capture.
	src             *countingSource
	ev              *evaluator
	cur, next, best *cand
	curFit, bestFit float64
	temp, cool      float64
	evals, accepted int
}

// step runs one mutate→evaluate→accept iteration. Every call charges one
// evaluation (a no-op mutation or a constraint rejection still consumed
// its slice of the budget); this is what makes iteration counts — and
// therefore results — a pure function of (seed, budget).
//
//sunmap:hotpath
func (ch *chain) step() {
	ch.evals++
	ch.temp *= ch.cool
	ch.next.copyFrom(ch.cur)
	if !ch.next.mutate(ch.rng, ch.ev.b) {
		return
	}
	fit, ok := ch.ev.eval(ch.next)
	if !ok {
		return
	}
	if d := fit - ch.curFit; d > 0 && ch.rng.Float64() >= math.Exp(-d/ch.temp) {
		return
	}
	ch.cur, ch.next = ch.next, ch.cur
	ch.curFit = fit
	ch.accepted++
	if fit < ch.bestFit {
		ch.best.copyFrom(ch.cur)
		ch.bestFit = fit
	}
}

func runChain(ctx context.Context, comms []graph.Commodity, terms int, o Options, b bounds, idx, budget int, init *cand) *chainResult {
	cr := &chainResult{chain: idx}
	src := newCountingSource(chainSeed(o.Seed, idx))
	ch := &chain{
		rng:  rand.New(src),
		src:  src,
		ev:   newEvaluator(comms, terms, b, o.Mapping),
		cur:  newCand(b.maxR, terms),
		next: newCand(b.maxR, terms),
		best: newCand(b.maxR, terms),
	}
	if cs := resumeFor(o.Resume, idx); cs != nil {
		if cs.Evals > budget {
			cr.err = fmt.Errorf("search: chain %d: checkpoint at %d evaluations exceeds the chain budget %d", idx, cs.Evals, budget)
			return cr
		}
		if err := ch.restore(*cs, terms, b); err != nil {
			cr.err = fmt.Errorf("search: chain %d: resuming: %w", idx, err)
			return cr
		}
		cr.init = Candidate{
			Routers:   cs.Init.Routers,
			BiLinks:   append([][2]int(nil), cs.Init.Edges...),
			Terminals: append([]int(nil), cs.Init.Terminals...),
			Fitness:   math.Float64frombits(cs.InitFitBits),
		}
	} else {
		ch.cur.copyFrom(init)
		fit, ok := ch.ev.eval(ch.cur)
		ch.evals++
		if !ok {
			// The synthesized seed violates a constraint under these bounds
			// (e.g. its routed CDG is cyclic); fall back to the path seed,
			// whose tree routes are deadlock-free by construction.
			ch.cur.copyFrom(pathInit(terms, b))
			fit, ok = ch.ev.eval(ch.cur)
			ch.evals++
			if !ok {
				cr.err = fmt.Errorf("search: chain %d: no valid starting candidate", idx)
				return cr
			}
		}
		ch.curFit, ch.bestFit = fit, fit
		ch.best.copyFrom(ch.cur)
		cr.init = snapshot(ch.cur, fit)
		// Geometric cooling from a quarter of the initial fitness down three
		// decades across the chain's budget.
		ch.temp = 0.25 * fit
		if ch.temp < 1e-6 {
			ch.temp = 1e-6
		}
		steps := budget - ch.evals
		ch.cool = 1.0
		if steps > 0 {
			ch.cool = math.Pow(1e-3, 1/float64(steps))
		}
	}
	for ch.evals < budget {
		if ch.evals%64 == 0 && ctx.Err() != nil {
			break
		}
		ch.step()
		if o.Checkpoint != nil && o.CheckpointEvery > 0 && ch.evals%o.CheckpointEvery == 0 {
			o.Checkpoint(ch.checkpoint(idx, cr.init))
		}
	}
	cr.best = snapshot(ch.best, ch.bestFit)
	cr.evals, cr.accepted = ch.evals, ch.accepted
	return cr
}

// resumeFor finds the checkpoint matching a chain index, if any.
func resumeFor(rs []ChainCheckpoint, idx int) *ChainCheckpoint {
	for i := range rs {
		if rs[i].Chain == idx {
			return &rs[i]
		}
	}
	return nil
}

// snapshot captures a candidate's structure in canonical form (edges
// sorted lexicographically).
func snapshot(c *cand, fit float64) Candidate {
	edges := make([][2]int, len(c.edges))
	copy(edges, c.edges)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	return Candidate{
		Routers:   c.nR,
		BiLinks:   edges,
		Terminals: append([]int(nil), c.att...),
		Fitness:   fit,
	}
}

// finishChain materializes and fully maps the chain's starting point and
// fitness-best candidate, keeps the better of the two as the chain
// winner (so a chain can never regress below its seed — the search
// matches or beats the synthesized baselines by construction), and
// scores its survivability when a fault model is configured. The fault
// sweep's inner scenario loop fans across intra workers that only
// TryAcquire idle limiter slots, per the session's two-level
// decomposition.
func finishChain(ctx context.Context, app *graph.CoreGraph, comms []graph.Commodity, o Options, cr *chainResult, scratch *pool.Free[mapping.Scratch], sweepers *pool.Free[fault.Sweeper], intra int) {
	evalOne := func(c *Candidate) bool {
		topo, err := materialize(app, o.Seed, *c)
		if err != nil {
			cr.err = fmt.Errorf("search: chain %d: %w", cr.chain, err)
			return false
		}
		sc := scratch.Get()
		res, err := mapping.MapContextWith(ctx, app, topo, o.Mapping, sc)
		scratch.Put(sc)
		if err != nil {
			if ctx.Err() == nil {
				cr.err = fmt.Errorf("search: chain %d: mapping %s: %w", cr.chain, topo.Name(), err)
			}
			return false
		}
		c.Evaluated = res
		return true
	}
	if !evalOne(&cr.init) {
		return
	}
	if structEqual(cr.init, cr.best) {
		cr.best.Evaluated = cr.init.Evaluated
	} else if !evalOne(&cr.best) {
		return
	}
	if fullBetter(&cr.init, &cr.best) {
		cr.best = cr.init
	}
	if o.Fault == nil {
		return
	}
	r := cr.best.Evaluated
	scenarios, exhaustive, err := fault.Scenarios(r.Topology, *o.Fault)
	if err != nil {
		cr.err = fmt.Errorf("search: chain %d: %w", cr.chain, err)
		return
	}
	sw := sweepers.Get()
	rep, err := sw.SweepContext(ctx, r.Topology, r.Assign, comms, fault.Degraded(o.Mapping.RouteOptions()), scenarios, exhaustive, intra, o.Limit)
	sweepers.Put(sw)
	if err != nil {
		if ctx.Err() == nil {
			cr.err = fmt.Errorf("search: chain %d: %w", cr.chain, err)
		}
		return
	}
	cr.best.Survivability = rep.Survivability()
	cr.best.HasSurvivability = true
}

func structEqual(a, b Candidate) bool {
	if a.Routers != b.Routers || len(a.BiLinks) != len(b.BiLinks) || len(a.Terminals) != len(b.Terminals) {
		return false
	}
	for i := range a.BiLinks {
		if a.BiLinks[i] != b.BiLinks[i] {
			return false
		}
	}
	for i := range a.Terminals {
		if a.Terminals[i] != b.Terminals[i] {
			return false
		}
	}
	return true
}

// fullBetter reports whether a's full evaluation strictly beats b's:
// feasibility first, then objective cost.
func fullBetter(a, b *Candidate) bool {
	ra, rb := a.Evaluated, b.Evaluated
	if ra == nil || rb == nil {
		return rb == nil && ra != nil
	}
	if ra.Feasible() != rb.Feasible() {
		return ra.Feasible()
	}
	return ra.Cost < rb.Cost-1e-12
}

// fold reduces the index-addressed chain results sequentially into the
// final Result. Ranking tiers: fully evaluated feasible candidates (by
// cost, or by the composite reliability score when a fault model ran),
// then fully evaluated infeasible ones (by cost), then fitness-only
// partials from canceled chains. Ties break toward fewer routers, fewer
// links, then the lower chain index — a total order, so the fold is
// parallelism-independent.
func fold(results []*chainResult, o Options, chains int) *Result {
	res := &Result{Chains: chains, Seed: o.Seed, Budget: o.Budget}
	bestCost := math.Inf(1)
	for _, cr := range results {
		if cr == nil || cr.err != nil {
			continue
		}
		if r := cr.best.Evaluated; r != nil && r.Feasible() && r.Cost < bestCost {
			bestCost = r.Cost
		}
	}
	rank := func(c *Candidate) (tier int, score float64) {
		switch {
		case c.Evaluated != nil && c.Evaluated.Feasible():
			if o.Fault != nil {
				return 0, core.ReliabilityScore(c.Evaluated.Cost, bestCost, c.Survivability, o.ReliabilityWeight)
			}
			return 0, c.Evaluated.Cost
		case c.Evaluated != nil:
			return 1, c.Evaluated.Cost
		default:
			return 2, c.Fitness
		}
	}
	const tol = 1e-12
	winner, wTier, wScore := -1, 0, 0.0
	for i, cr := range results {
		if cr == nil || cr.err != nil {
			continue
		}
		res.Evaluations += cr.evals
		res.Accepted += cr.accepted
		tier, score := rank(&cr.best)
		take := winner == -1 ||
			tier < wTier ||
			(tier == wTier && score < wScore-tol)
		if !take && tier == wTier && score <= wScore+tol {
			b, w := &cr.best, &results[winner].best
			take = b.Routers < w.Routers ||
				(b.Routers == w.Routers && len(b.BiLinks) < len(w.BiLinks))
		}
		if take {
			winner, wTier, wScore = i, tier, score
		}
	}
	if winner >= 0 {
		res.Best = results[winner].best
	}
	return res
}

// materialize builds the durable topology.Topology of a candidate via
// topology.NewCustom, so discovered networks flow through Select, Pareto
// exploration and fault sweeps exactly like library or synthesized ones.
// The name embeds the app, the seed and a structural digest, making it
// stable across parallelism and unique per discovered structure.
func materialize(app *graph.CoreGraph, seed int64, c Candidate) (topology.Topology, error) {
	routerPos := make([][2]float64, c.Routers)
	for i := range routerPos {
		x, y := gridPos(i, c.Routers)
		routerPos[i] = [2]float64{x, y}
	}
	termPos := make([][2]float64, len(c.Terminals))
	nth := make([]int, c.Routers)
	for t, r := range c.Terminals {
		k := nth[r]
		nth[r]++
		termPos[t] = [2]float64{
			routerPos[r][0] + 0.5*float64(k%2) - 0.25,
			routerPos[r][1] + 0.5*float64(k/2) - 0.25,
		}
	}
	spec := topology.CustomSpec{
		Name:        fmt.Sprintf("search-%s-s%d-%08x", sanitizeName(app.Name()), seed, structDigest(c)),
		NumRouters:  c.Routers,
		BiLinks:     c.BiLinks,
		Terminals:   c.Terminals,
		RouterPos:   routerPos,
		TerminalPos: termPos,
	}
	return topology.NewCustom(spec)
}

func sanitizeName(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('-')
		}
	}
	if sb.Len() == 0 {
		return "app"
	}
	return sb.String()
}

// structDigest hashes the canonical structure (router count, attachment,
// sorted edges) — identical structures get identical names regardless of
// which chain or parallelism level discovered them.
func structDigest(c Candidate) uint32 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(x int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		h.Write(buf[:])
	}
	put(c.Routers)
	put(len(c.Terminals))
	for _, r := range c.Terminals {
		put(r)
	}
	for _, e := range c.BiLinks {
		put(e[0])
		put(e[1])
	}
	s := h.Sum64()
	return uint32(s ^ (s >> 32))
}

// initialCandidates builds the chain seed pool: the synthesized
// generators first (so chain 0 starts from — and its winner can only
// improve on — the strongest heuristic baseline), then the always-valid
// path and ring fallbacks. Chain i seeds from entry i mod len.
func initialCandidates(app *graph.CoreGraph, terms int, b bounds) []*cand {
	var inits []*cand
	addTopo := func(t topology.Topology, err error) {
		if err != nil {
			return
		}
		if c, ok := candFromTopology(t, terms, b); ok {
			inits = append(inits, c)
		}
	}
	addTopo(synth.Cluster(app, b.maxCores, b.maxRadix))
	addTopo(synth.TrimmedMesh(app))
	if b.maxCores >= 2 {
		addTopo(synth.Cluster(app, 2, b.maxRadix))
	}
	addTopo(synth.SparseHamming(app, b.maxRadix))
	inits = append(inits, pathInit(terms, b))
	inits = append(inits, ringInit(terms, b))
	return inits
}

// candFromTopology converts a synthesized topology into candidate form;
// ok is false when the topology does not fit the search bounds (radix,
// terminal caps, switch window) or is not a plain bidirectional network
// with coincident inject/eject routers.
func candFromTopology(t topology.Topology, terms int, b bounds) (*cand, bool) {
	if t.NumTerminals() != terms || t.NumRouters() < b.minR || t.NumRouters() > b.maxR {
		return nil, false
	}
	c := newCand(b.maxR, terms)
	c.nR = t.NumRouters()
	for i := 0; i < terms; i++ {
		r := t.InjectRouter(i)
		if t.EjectRouter(i) != r {
			return nil, false
		}
		c.att[i] = r
		c.tcnt[r]++
		if c.tcnt[r] > b.maxCores {
			return nil, false
		}
	}
	links := t.Links()
	for _, ch := range topology.Channels(t) {
		if len(ch) != 2 {
			return nil, false // unidirectional channel: not in this search space
		}
		l := links[ch[0]]
		if c.hasEdge(l.From, l.To) {
			return nil, false
		}
		if c.deg[l.From] >= b.maxRadix || c.deg[l.To] >= b.maxRadix {
			return nil, false
		}
		c.addEdge(l.From, l.To)
	}
	return c, true
}

// pathInit attaches terminals contiguously to a path of routers — a tree,
// so its minimum-path routes always have an acyclic channel-dependency
// graph. It is the guaranteed-valid fallback seed.
func pathInit(terms int, b bounds) *cand {
	n := b.minR
	c := newCand(b.maxR, terms)
	c.nR = n
	for t := 0; t < terms; t++ {
		r := t * n / terms
		c.att[t] = r
		c.tcnt[r]++
	}
	for i := 0; i+1 < n; i++ {
		c.addEdge(i, i+1)
	}
	return c
}

// ringInit is pathInit plus the closing link (when 3+ routers and radix
// headroom allow), a denser seed for diversity.
func ringInit(terms int, b bounds) *cand {
	c := pathInit(terms, b)
	if c.nR >= 3 && c.deg[0] < b.maxRadix && c.deg[c.nR-1] < b.maxRadix {
		c.addEdge(0, c.nR-1)
	}
	return c
}
