package search

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"sunmap/internal/apps"
	"sunmap/internal/mapping"
	"sunmap/internal/route"
	"sunmap/internal/topology"
)

func mpeg4Opts() mapping.Options {
	return mapping.Options{
		Routing:      route.MinPath,
		Objective:    mapping.MinDelay,
		CapacityMBps: 1000,
	}
}

// TestSearchBeatsLibraryOnMPEG4 is the acceptance criterion: with a
// 100k-evaluation budget the search must return a feasible, deadlock-free
// topology for mpeg4 whose objective cost matches or beats the best
// library candidate at the same link capacity. The match-or-beat half
// holds by construction (every chain full-evaluates its synthesized seed
// and keeps the better), so a regression here means the seeds stopped
// converting or the annealer broke feasibility.
func TestSearchBeatsLibraryOnMPEG4(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-evaluation budget")
	}
	app, err := apps.ByName("mpeg4")
	if err != nil {
		t.Fatal(err)
	}
	mopts := mpeg4Opts()
	res, err := Run(context.Background(), app, Options{
		Budget:  100000,
		Seed:    1,
		Mapping: mopts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 100000 {
		t.Errorf("charged %d evaluations, want exactly the budget 100000", res.Evaluations)
	}
	best := res.Best
	if best.Evaluated == nil || !best.Evaluated.Feasible() {
		t.Fatalf("winner not feasible: %+v", best)
	}
	if err := CheckInvariants(best.Evaluated.Topology, app, 4, true); err != nil {
		t.Fatalf("winner violates invariants: %v", err)
	}

	lib, err := topology.Library(app.NumCores(), topology.LibraryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bestLib := ""
	bestLibCost := 0.0
	for _, topo := range lib {
		r, err := mapping.MapContext(context.Background(), app, topo, mopts)
		if err != nil || !r.Feasible() {
			continue
		}
		if bestLib == "" || r.Cost < bestLibCost {
			bestLib, bestLibCost = topo.Name(), r.Cost
		}
	}
	if bestLib == "" {
		t.Fatal("no feasible library topology at 1000 MB/s — test premise broken")
	}
	if best.Evaluated.Cost > bestLibCost+1e-9 {
		t.Errorf("search cost %.6f worse than best library %s at %.6f",
			best.Evaluated.Cost, bestLib, bestLibCost)
	}
	t.Logf("search %.6f (routers %d, links %d) vs library %s %.6f",
		best.Evaluated.Cost, best.Routers, len(best.BiLinks), bestLib, bestLibCost)
}

// TestSearchDeterministicAcrossParallelism pins the determinism contract
// at the Result level: the same (seed, budget, restarts) must produce a
// deeply identical result at parallelism 1, 4 and GOMAXPROCS.
func TestSearchDeterministicAcrossParallelism(t *testing.T) {
	app, err := apps.ByName("mpeg4")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Budget: 4000, Seed: 42, Mapping: mpeg4Opts()}
	var ref *Result
	for _, p := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		opts.Parallelism = p
		res, err := Run(context.Background(), app, opts)
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		res.Best.Evaluated = nil // pointer-laden; structure+fitness is the contract
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(ref, res) {
			t.Errorf("parallelism %d diverged:\nwant %+v\ngot  %+v", p, ref, res)
		}
	}
}

// TestSearchCancellationMidAnneal verifies a canceled search returns
// cleanly — promptly, with the context's error and the partial best found
// so far — rather than running out its (here effectively unbounded)
// budget.
func TestSearchCancellationMidAnneal(t *testing.T) {
	app, err := apps.ByName("mpeg4")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := Run(ctx, app, Options{Budget: 1 << 30, Seed: 3, Mapping: mpeg4Opts()})
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
	if res == nil {
		t.Fatal("canceled run returned no partial result")
	}
	if res.Evaluations == 0 || res.Best.Routers == 0 {
		t.Errorf("partial result carries no best-so-far: %+v", res)
	}
	if res.Evaluations >= 1<<30 {
		t.Error("run consumed the whole budget despite cancellation")
	}
}

// TestSearchInnerLoopAllocBudget gates the steady-state allocation count
// of one mutate→evaluate→accept iteration: the hot loop must stay within
// a small fixed budget (route scratch growth amortizes to zero; the only
// tolerated allocations are rare slice growths inside the router).
func TestSearchInnerLoopAllocBudget(t *testing.T) {
	app, err := apps.ByName("mpeg4")
	if err != nil {
		t.Fatal(err)
	}
	terms := app.NumCores()
	o, b, err := Options{Seed: 7, Mapping: mpeg4Opts()}.withDefaults(terms)
	if err != nil {
		t.Fatal(err)
	}
	ch := &chain{
		ev:   newEvaluator(app.Commodities(), terms, b, o.Mapping),
		cur:  newCand(b.maxR, terms),
		next: newCand(b.maxR, terms),
		best: newCand(b.maxR, terms),
	}
	ch.cur.copyFrom(pathInit(terms, b))
	fit, ok := ch.ev.eval(ch.cur)
	if !ok {
		t.Fatal("path seed rejected")
	}
	ch.curFit, ch.bestFit = fit, fit
	ch.best.copyFrom(ch.cur)
	ch.temp, ch.cool = 0.25*fit, 0.9999
	ch.rng = rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ { // warm every growth path
		ch.step()
	}
	avg := testing.AllocsPerRun(500, func() { ch.step() })
	if avg > 8 {
		t.Errorf("inner loop allocates %.1f objects/iteration, budget 8", avg)
	}
}

// BenchmarkSearch reports whole-search throughput in evaluations/second.
func BenchmarkSearch(bm *testing.B) {
	app, err := apps.ByName("mpeg4")
	if err != nil {
		bm.Fatal(err)
	}
	opts := Options{Budget: 20000, Seed: 1, Mapping: mpeg4Opts()}
	bm.ReportAllocs()
	bm.ResetTimer()
	evals := 0
	for i := 0; i < bm.N; i++ {
		res, err := Run(context.Background(), app, opts)
		if err != nil {
			bm.Fatal(err)
		}
		evals += res.Evaluations
	}
	bm.ReportMetric(float64(evals)/bm.Elapsed().Seconds(), "evals/s")
}

// BenchmarkSearchEval reports single candidate-evaluation latency —
// structure check, full reroute, CDG acyclicity, fitness.
func BenchmarkSearchEval(bm *testing.B) {
	app, err := apps.ByName("mpeg4")
	if err != nil {
		bm.Fatal(err)
	}
	terms := app.NumCores()
	o, b, err := Options{Mapping: mpeg4Opts()}.withDefaults(terms)
	if err != nil {
		bm.Fatal(err)
	}
	_ = o
	ev := newEvaluator(app.Commodities(), terms, b, o.Mapping)
	c := ringInit(terms, b)
	if _, ok := ev.eval(c); !ok {
		bm.Fatal("ring seed rejected")
	}
	bm.ReportAllocs()
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		if _, ok := ev.eval(c); !ok {
			bm.Fatal("eval rejected")
		}
	}
}
