package search

import (
	"context"
	"fmt"
	"testing"

	"sunmap/internal/graph"
	"sunmap/internal/synth"
	"sunmap/internal/topology"
)

// maker produces one topology for an app — a search-mutation output or an
// internal/synth generator — together with the strictness CheckInvariants
// holds it to (search winners must have an acyclic routed CDG outright;
// generator outputs may fall back to the up*/down* escape discipline).
type maker struct {
	name   string
	strict bool
	build  func(app *graph.CoreGraph, seed int64) (topology.Topology, error)
}

const propMaxRadix = 4

// searchWinner runs one short annealing chain over the app and
// materializes its fitness-best candidate — the exact artifact the full
// search would hand to the mapper, without the (slow) full evaluation the
// invariants don't depend on.
func searchWinner(app *graph.CoreGraph, seed int64) (topology.Topology, error) {
	terms := app.NumCores()
	o, b, err := Options{Seed: seed, MaxRadix: propMaxRadix}.withDefaults(terms)
	if err != nil {
		return nil, err
	}
	inits := initialCandidates(app, terms, b)
	cr := runChain(context.Background(), app.Commodities(), terms, o, b, 0, 400, inits[int(seed)%len(inits)])
	if cr.err != nil {
		return nil, cr.err
	}
	return materialize(app, seed, cr.best)
}

func propMakers() []maker {
	return []maker{
		{"search-chain", true, searchWinner},
		{"synth-cluster", false, func(app *graph.CoreGraph, _ int64) (topology.Topology, error) {
			return synth.Cluster(app, 4, propMaxRadix)
		}},
		{"synth-trimmed-mesh", false, func(app *graph.CoreGraph, _ int64) (topology.Topology, error) {
			return synth.TrimmedMesh(app)
		}},
		{"synth-sparse-hamming", false, func(app *graph.CoreGraph, _ int64) (topology.Topology, error) {
			return synth.SparseHamming(app, propMaxRadix)
		}},
	}
}

// TestPropertyInvariants is the property-test harness of the acceptance
// criteria: over >= 1000 generated app-graph/topology pairs (16- and
// 64-core seeded random task graphs × search-mutation outputs and every
// internal/synth generator), every emitted topology must satisfy the
// radix, used-channel-connectivity and deadlock-freedom invariants. A
// failure shrinks the offending app by greedy flow removal and reports
// the minimal counterexample: the seed, the surviving flows and the
// topology's edge set.
func TestPropertyInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("thousand-pair property sweep")
	}
	makers := propMakers()
	pairs := 0
	check := func(n int, seeds int) {
		for s := 0; s < seeds; s++ {
			seed := int64(s)
			app := RandomApp(seed, n)
			for _, m := range makers {
				topo, err := m.build(app, seed)
				if err != nil {
					// Generators may legitimately decline an app (e.g. a core
					// count without a mesh shape); that is not an invariant
					// violation, just not a pair.
					continue
				}
				pairs++
				if err := CheckInvariants(topo, app, propMaxRadix, m.strict); err != nil {
					shrinkAndReport(t, m, app, seed, err)
				}
			}
		}
	}
	check(16, 200)
	check(64, 70)
	if pairs < 1000 {
		t.Errorf("property sweep covered only %d app/topology pairs, want >= 1000", pairs)
	}
	t.Logf("checked %d app/topology pairs", pairs)
}

// shrinkAndReport minimizes a failing app by greedy flow removal — drop
// any single flow whose removal keeps the maker failing, repeat until no
// removal helps — then fails the test with the seed, the minimal flow
// list and the offending topology's edge set.
func shrinkAndReport(t *testing.T, m maker, app *graph.CoreGraph, seed int64, firstErr error) {
	t.Helper()
	fails := func(g *graph.CoreGraph) error {
		topo, err := m.build(g, seed)
		if err != nil {
			return nil // maker declined: shrank too far
		}
		return CheckInvariants(topo, g, propMaxRadix, m.strict)
	}
	cur, curErr := app, firstErr
	for {
		shrunk := false
		for i := 0; i < cur.NumEdges(); i++ {
			cand := withoutFlow(cur, i)
			if cand == nil {
				continue
			}
			if err := fails(cand); err != nil {
				cur, curErr, shrunk = cand, err, true
				break
			}
		}
		if !shrunk {
			break
		}
	}
	var edges string
	if topo, err := m.build(cur, seed); err == nil {
		edges = fmt.Sprintf("%v", topo.Links())
	}
	t.Fatalf("%s violates invariants for seed %d (%d cores): %v\nminimal flows: %v\ntopology edges: %s",
		m.name, seed, cur.NumCores(), curErr, cur.Edges(), edges)
}

// withoutFlow rebuilds the app minus its i-th flow (nil when the result
// would have no flows left — the search refuses flowless apps anyway).
func withoutFlow(g *graph.CoreGraph, i int) *graph.CoreGraph {
	edges := g.Edges()
	if len(edges) <= 1 {
		return nil
	}
	out := graph.NewCoreGraph(g.Name())
	for _, c := range g.Cores() {
		out.MustAddCore(c)
	}
	for j, e := range edges {
		if j == i {
			continue
		}
		out.MustConnect(g.Core(e.From).Name, g.Core(e.To).Name, e.BandwidthMBps)
	}
	return out
}

// TestRandomAppDeterministic pins the generator the harness is seeded by:
// the same (seed, n) must produce the identical graph.
func TestRandomAppDeterministic(t *testing.T) {
	a, b := RandomApp(11, 16), RandomApp(11, 16)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}
