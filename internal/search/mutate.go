package search

import "math/rand"

// bounds are the hard design rules every candidate must satisfy.
type bounds struct {
	maxRadix int // max undirected inter-router links per router
	maxCores int // max terminals attached to one router
	minR     int // minimum switch count
	maxR     int // maximum switch count (also the matrix dimension)
}

// mutate applies one randomly drawn operator in place and reports whether
// the candidate changed. A false return still consumes the draw — the
// annealing loop charges every iteration one evaluation either way, which
// is what keeps the budget accounting (and therefore the result)
// independent of how often operators happen to no-op.
func (c *cand) mutate(rng *rand.Rand, b bounds) bool {
	switch pick := rng.Intn(10); {
	case pick < 3:
		return c.edgeAdd(rng, b)
	case pick < 5:
		return c.edgeRemove(rng)
	case pick < 8:
		return c.edgeSwap(rng, b)
	case pick < 9:
		return c.nodeSplit(rng, b)
	default:
		return c.nodeMerge(rng, b)
	}
}

// edgeAdd inserts a random absent link whose endpoints have radix
// headroom, sampling up to 8 pairs.
func (c *cand) edgeAdd(rng *rand.Rand, b bounds) bool {
	for try := 0; try < 8; try++ {
		u, v := rng.Intn(c.nR), rng.Intn(c.nR)
		if u == v || c.hasEdge(u, v) || c.deg[u] >= b.maxRadix || c.deg[v] >= b.maxRadix {
			continue
		}
		c.addEdge(u, v)
		return true
	}
	return false
}

// edgeRemove deletes a random link. The removal may disconnect the router
// graph; the evaluator's structure check rejects such candidates.
func (c *cand) edgeRemove(rng *rand.Rand) bool {
	if len(c.edges) == 0 {
		return false
	}
	e := c.edges[rng.Intn(len(c.edges))]
	c.removeEdge(e[0], e[1])
	return true
}

// edgeSwap removes a random link and re-adds one elsewhere, keeping the
// link count — the budget-neutral rewiring move. If no replacement spot
// is found the original link is restored.
func (c *cand) edgeSwap(rng *rand.Rand, b bounds) bool {
	if len(c.edges) == 0 {
		return false
	}
	e := c.edges[rng.Intn(len(c.edges))]
	c.removeEdge(e[0], e[1])
	if !c.edgeAdd(rng, b) {
		c.addEdge(e[0], e[1])
		return false
	}
	return true
}

// nodeSplit introduces a new router, hands it every second terminal and
// every second link of a random existing router, and connects the two —
// the move that grows capacity where a switch is congested or over-radix.
func (c *cand) nodeSplit(rng *rand.Rand, b bounds) bool {
	if c.nR >= b.maxR {
		return false
	}
	r := rng.Intn(c.nR)
	s := c.nR
	c.nR++
	c.deg[s] = 0
	c.tcnt[s] = 0
	j := 0
	for t, rt := range c.att {
		if rt != r {
			continue
		}
		if j&1 == 1 {
			c.att[t] = s
			c.tcnt[r]--
			c.tcnt[s]++
		}
		j++
	}
	c.nbr = c.neighbors(r, c.nbr[:0])
	for i, x := range c.nbr {
		if i&1 == 1 {
			c.removeEdge(r, x)
			c.addEdge(s, x)
		}
	}
	c.addEdge(r, s)
	return true
}

// nodeMerge collapses a random link's endpoints into one router: the
// higher endpoint's terminals and links move to the lower one (links that
// would duplicate or exceed the radix are dropped) and the last router is
// renumbered into the freed slot, keeping router indices dense.
func (c *cand) nodeMerge(rng *rand.Rand, b bounds) bool {
	if c.nR <= b.minR || len(c.edges) == 0 {
		return false
	}
	e := c.edges[rng.Intn(len(c.edges))]
	u, v := e[0], e[1] // u < v
	if c.tcnt[u]+c.tcnt[v] > b.maxCores {
		return false
	}
	c.removeEdge(u, v)
	c.nbr = c.neighbors(v, c.nbr[:0])
	for _, x := range c.nbr {
		c.removeEdge(v, x)
		if x != u && !c.hasEdge(u, x) && c.deg[u] < b.maxRadix && c.deg[x] < b.maxRadix {
			c.addEdge(u, x)
		}
	}
	for t, rt := range c.att {
		if rt == v {
			c.att[t] = u
			c.tcnt[v]--
			c.tcnt[u]++
		}
	}
	last := c.nR - 1
	if v != last {
		c.nbr = c.neighbors(last, c.nbr[:0])
		for _, x := range c.nbr {
			c.removeEdge(last, x)
			c.addEdge(v, x)
		}
		for t, rt := range c.att {
			if rt == last {
				c.att[t] = v
			}
		}
		c.tcnt[v] = c.tcnt[last]
		c.tcnt[last] = 0
	}
	c.nR--
	return true
}
