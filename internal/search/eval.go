package search

import (
	"sunmap/internal/graph"
	"sunmap/internal/mapping"
	"sunmap/internal/route"
)

// overloadPenalty scales the fitness penalty per unit of relative link
// overload; it must dwarf any hop-count difference so the annealer never
// trades feasibility for delay.
const overloadPenalty = 10.0

// evaluator owns all scratch of one chain's mutate→evaluate→accept cycle.
// Evaluation is three stages, each rejecting outright (a rejected
// candidate is never accepted, making radix bounds, connectivity and
// deadlock freedom hard constraints rather than penalty terms):
//
//  1. structural design rules: switch-count window, per-router radix and
//     terminal caps, whole-graph connectivity;
//  2. routability: congestion-aware minimum-path routing of every
//     commodity (identity core→terminal assignment);
//  3. deadlock freedom: the channel-dependency graph of the exact routes
//     just installed must be acyclic.
//
// Everything is rebuilt in place per evaluation; steady state allocates
// nothing (see TestSearchInnerLoopAllocBudget).
type evaluator struct {
	b      bounds
	topo   *searchTopo
	rt     *route.Router
	res    route.Result
	ropts  route.Options
	comms  []graph.Commodity
	assign []int

	// fitness shaping
	alphaEdge   float64 // cost per bidirectional link
	alphaRouter float64 // cost per switch

	// connectivity scratch (epoch-stamped visited marks)
	seen  []int32
	queue []int32
	epoch int32

	// channel-dependency-graph scratch (Kahn's algorithm)
	succ  [][]int32
	indeg []int32
	cq    []int32
}

func newEvaluator(comms []graph.Commodity, terms int, b bounds, mopts mapping.Options) *evaluator {
	ev := &evaluator{
		b:     b,
		topo:  newSearchTopo(b.maxR, terms),
		rt:    route.NewRouter(),
		comms: comms,
		ropts: route.Options{
			Function:        route.MinPath,
			CapacityMBps:    mopts.CapacityMBps,
			DisableQuadrant: true,
		},
		assign: make([]int, terms),
		seen:   make([]int32, b.maxR),
		queue:  make([]int32, 0, b.maxR),
	}
	for i := range ev.assign {
		ev.assign[i] = i
	}
	// The inner loop cannot afford a full map (placement + floorplan +
	// power) per candidate, so fitness is the routing core of the
	// objective — bandwidth-weighted average hops under congestion-aware
	// MP — plus small structural terms steering toward cheaper networks.
	// Under the delay objective the structural terms are tie-breaks; under
	// area/power they carry real weight, since links and switches are what
	// those objectives charge for.
	if mopts.Objective == mapping.MinDelay {
		ev.alphaEdge, ev.alphaRouter = 0.002, 0.001
	} else {
		ev.alphaEdge, ev.alphaRouter = 0.05, 0.02
	}
	return ev
}

// eval scores a candidate, reporting ok=false when any hard constraint
// fails.
func (ev *evaluator) eval(c *cand) (fit float64, ok bool) {
	if !ev.checkStructure(c) {
		return 0, false
	}
	ev.topo.rebuild(c)
	if err := ev.rt.RouteInto(&ev.res, ev.topo, ev.assign, ev.comms, ev.ropts); err != nil {
		return 0, false
	}
	if !ev.acyclicCDG(ev.res.Paths, len(ev.topo.links)) {
		return 0, false
	}
	return ev.fitness(c), true
}

func (ev *evaluator) fitness(c *cand) float64 {
	f := ev.res.AvgHops()
	if capMBps := ev.ropts.CapacityMBps; capMBps > 0 && ev.res.MaxLinkLoad > capMBps {
		f += overloadPenalty * (ev.res.MaxLinkLoad/capMBps - 1)
	}
	return f + ev.alphaEdge*float64(len(c.edges)) + ev.alphaRouter*float64(c.nR)
}

// checkStructure verifies the pure design rules: switch-count window,
// per-router radix and terminal-attachment caps, and router-graph
// connectivity.
func (ev *evaluator) checkStructure(c *cand) bool {
	if c.nR < ev.b.minR || c.nR > ev.b.maxR {
		return false
	}
	for r := 0; r < c.nR; r++ {
		if c.deg[r] > ev.b.maxRadix || c.tcnt[r] > ev.b.maxCores {
			return false
		}
	}
	if len(c.edges) < c.nR-1 {
		return false
	}
	return ev.connected(c)
}

func (ev *evaluator) connected(c *cand) bool {
	if c.nR <= 1 {
		return true
	}
	ev.epoch++
	ev.queue = append(ev.queue[:0], 0)
	ev.seen[0] = ev.epoch
	visited := 1
	for len(ev.queue) > 0 {
		u := int(ev.queue[len(ev.queue)-1])
		ev.queue = ev.queue[:len(ev.queue)-1]
		row := u * c.maxR
		for v := 0; v < c.nR; v++ {
			if c.eidx[row+v] >= 0 && ev.seen[v] != ev.epoch {
				ev.seen[v] = ev.epoch
				visited++
				ev.queue = append(ev.queue, int32(v)) //sunmap:alloc amortized BFS queue growth, reused across evals
			}
		}
	}
	return visited == c.nR
}

// acyclicCDG reports whether the channel-dependency graph of the routed
// paths — a node per directed link, an arc for every consecutive link
// pair some flow traverses — is acyclic (Kahn's algorithm over reused
// buffers). An acyclic CDG is Dally/Seitz deadlock freedom for the exact
// routes the network would install.
func (ev *evaluator) acyclicCDG(paths []route.FlowPath, numLinks int) bool {
	if cap(ev.succ) < numLinks {
		grown := make([][]int32, numLinks) //sunmap:alloc first-use growth of CDG successor arena, recycled
		copy(grown, ev.succ[:cap(ev.succ)])
		ev.succ = grown
	}
	ev.succ = ev.succ[:numLinks]
	for i := range ev.succ {
		ev.succ[i] = ev.succ[i][:0]
	}
	if cap(ev.indeg) < numLinks {
		ev.indeg = make([]int32, numLinks) //sunmap:alloc first-use growth of CDG indegree scratch, recycled
	}
	ev.indeg = ev.indeg[:numLinks]
	for i := range ev.indeg {
		ev.indeg[i] = 0
	}
	for _, p := range paths {
		for i := 0; i+1 < len(p.LinkIDs); i++ {
			a, b := p.LinkIDs[i], p.LinkIDs[i+1]
			ev.succ[a] = append(ev.succ[a], int32(b)) //sunmap:alloc amortized per-link successor growth, reused across evals
			ev.indeg[b]++
		}
	}
	ev.cq = ev.cq[:0]
	for i := 0; i < numLinks; i++ {
		if ev.indeg[i] == 0 {
			ev.cq = append(ev.cq, int32(i)) //sunmap:alloc amortized Kahn queue growth, reused across evals
		}
	}
	processed := 0
	for len(ev.cq) > 0 {
		u := ev.cq[len(ev.cq)-1]
		ev.cq = ev.cq[:len(ev.cq)-1]
		processed++
		for _, v := range ev.succ[u] {
			ev.indeg[v]--
			if ev.indeg[v] == 0 {
				ev.cq = append(ev.cq, v) //sunmap:alloc amortized Kahn queue growth, reused across evals
			}
		}
	}
	return processed == numLinks
}
