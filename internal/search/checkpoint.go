package search

import (
	"fmt"
	"math"
	"math/rand"
)

// This file is the durable half of the annealing engine: a chain's full
// mutable state — candidate edge sets, Metropolis temperature, budget
// accounting and the exact RNG position — captured as a serializable
// ChainCheckpoint and restored bit-identically. The contract the jobs
// layer builds on: a chain resumed from a checkpoint at step N walks
// exactly the candidate sequence the uninterrupted chain would have
// walked, so resume(seed, N) and an uninterrupted run fold to the same
// Result at every parallelism.

// CandidateState is the serializable structure of one annealing
// candidate. Edges are recorded in the candidate's internal (insertion)
// order, not canonically sorted: the mutation operators index the edge
// list by RNG draw, so the order is part of the deterministic state.
type CandidateState struct {
	Routers   int      `json:"routers"`
	Edges     [][2]int `json:"edges"`
	Terminals []int    `json:"terminals"`
}

// ChainCheckpoint is one chain's complete resume point. Floating-point
// fields travel as IEEE-754 bit patterns, not decimal floats, so a
// checkpoint round-tripped through JSON restores the exact temperature
// and fitness the chain had — decimal formatting is round-trip safe in
// Go, but bits make the bit-identity contract self-evident and
// decoder-independent.
type ChainCheckpoint struct {
	// Chain is the restart index; Evals/Accepted the budget accounting at
	// the capture point; Draws the number of RNG source advances consumed
	// (the rng fast-forwards by exactly this many draws on resume).
	Chain    int    `json:"chain"`
	Evals    int    `json:"evals"`
	Accepted int    `json:"accepted"`
	Draws    uint64 `json:"draws"`
	// Metropolis state, as float64 bit patterns.
	TempBits    uint64 `json:"temp_bits"`
	CoolBits    uint64 `json:"cool_bits"`
	CurFitBits  uint64 `json:"cur_fit_bits"`
	BestFitBits uint64 `json:"best_fit_bits"`
	InitFitBits uint64 `json:"init_fit_bits"`
	// Init is the chain's evaluated starting point (finishChain
	// re-evaluates it as the match-or-beat floor); Cur/Best the current
	// and incumbent candidates.
	Init CandidateState `json:"init"`
	Cur  CandidateState `json:"cur"`
	Best CandidateState `json:"best"`
}

// countingSource wraps a rand.Source64 and counts state advances. Both
// Int63 and Uint64 advance math/rand's generator by exactly one step, so
// the count alone pins the generator position: fast-forwarding a fresh
// source by n draws reproduces the wrapped state exactly, regardless of
// which mix of Rand methods consumed the originals.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// fastForward advances the source to draw position n.
func (c *countingSource) fastForward(n uint64) {
	for c.n < n {
		c.n++
		c.src.Uint64()
	}
}

// state captures a candidate in serializable form, preserving internal
// edge order.
func (c *cand) state() CandidateState {
	return CandidateState{
		Routers:   c.nR,
		Edges:     append([][2]int(nil), c.edges...),
		Terminals: append([]int(nil), c.att...),
	}
}

// restoreCand rebuilds a cand from its serialized state under bounds b.
// Edges are re-added in recorded order, reproducing the exact edge-list
// layout (and therefore the exact response to future mutation draws) of
// the checkpointed candidate.
func restoreCand(cs CandidateState, terms int, b bounds) (*cand, error) {
	if cs.Routers < 2 || cs.Routers > b.maxR {
		return nil, fmt.Errorf("checkpoint candidate has %d routers outside [2, %d]", cs.Routers, b.maxR)
	}
	if len(cs.Terminals) != terms {
		return nil, fmt.Errorf("checkpoint candidate attaches %d terminals, app has %d", len(cs.Terminals), terms)
	}
	c := newCand(b.maxR, terms)
	c.nR = cs.Routers
	for t, r := range cs.Terminals {
		if r < 0 || r >= cs.Routers {
			return nil, fmt.Errorf("checkpoint terminal %d attached to router %d outside [0, %d)", t, r, cs.Routers)
		}
		c.att[t] = r
		c.tcnt[r]++
	}
	for _, e := range cs.Edges {
		u, v := e[0], e[1]
		if u < 0 || v < 0 || u >= cs.Routers || v >= cs.Routers || u == v || c.hasEdge(u, v) {
			return nil, fmt.Errorf("checkpoint edge (%d,%d) invalid for %d routers", u, v, cs.Routers)
		}
		c.addEdge(u, v)
	}
	return c, nil
}

// restore rebuilds the chain's mutable state from a checkpoint: the
// candidate edge lists in their exact recorded order, the Metropolis
// temperature and fitnesses from their bit patterns, and the RNG
// fast-forwarded to the recorded draw position. After restore the
// chain's next step is indistinguishable from the uninterrupted
// original's.
func (ch *chain) restore(cs ChainCheckpoint, terms int, b bounds) error {
	cur, err := restoreCand(cs.Cur, terms, b)
	if err != nil {
		return fmt.Errorf("current candidate: %w", err)
	}
	best, err := restoreCand(cs.Best, terms, b)
	if err != nil {
		return fmt.Errorf("best candidate: %w", err)
	}
	ch.cur, ch.best = cur, best
	ch.evals, ch.accepted = cs.Evals, cs.Accepted
	ch.temp = math.Float64frombits(cs.TempBits)
	ch.cool = math.Float64frombits(cs.CoolBits)
	ch.curFit = math.Float64frombits(cs.CurFitBits)
	ch.bestFit = math.Float64frombits(cs.BestFitBits)
	ch.src.fastForward(cs.Draws)
	return nil
}

// checkpoint snapshots the chain's complete state at a step boundary.
func (ch *chain) checkpoint(idx int, init Candidate) ChainCheckpoint {
	return ChainCheckpoint{
		Chain:       idx,
		Evals:       ch.evals,
		Accepted:    ch.accepted,
		Draws:       ch.src.n,
		TempBits:    math.Float64bits(ch.temp),
		CoolBits:    math.Float64bits(ch.cool),
		CurFitBits:  math.Float64bits(ch.curFit),
		BestFitBits: math.Float64bits(ch.bestFit),
		InitFitBits: math.Float64bits(init.Fitness),
		Init: CandidateState{
			Routers:   init.Routers,
			Edges:     append([][2]int(nil), init.BiLinks...),
			Terminals: append([]int(nil), init.Terminals...),
		},
		Cur:  ch.cur.state(),
		Best: ch.best.state(),
	}
}
