package search

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"sunmap/internal/apps"
)

// TestCountingSourcePinsPosition verifies the premise the checkpoint
// contract stands on: the draw count alone pins the generator position,
// so fast-forwarding a fresh source by n draws reproduces the state of a
// source that consumed n draws through any mix of Rand methods.
func TestCountingSourcePinsPosition(t *testing.T) {
	a := newCountingSource(99)
	ra := rand.New(a)
	for i := 0; i < 1000; i++ {
		switch i % 3 {
		case 0:
			ra.Intn(17)
		case 1:
			ra.Float64()
		case 2:
			ra.Intn(1 << 30)
		}
	}
	b := newCountingSource(99)
	b.fastForward(a.n)
	rb := rand.New(b)
	for i := 0; i < 1000; i++ {
		if x, y := ra.Intn(1<<20), rb.Intn(1<<20); x != y {
			t.Fatalf("draw %d diverged after fast-forward: %d vs %d", i, x, y)
		}
	}
	if a.n != b.n {
		t.Fatalf("draw counts diverged: %d vs %d", a.n, b.n)
	}
}

// TestSearchResumeBitIdentical is the tentpole determinism gate at the
// search layer: a run resumed from mid-anneal checkpoints must walk
// exactly the tail of the uninterrupted run — every later checkpoint
// bit-identical, and the folded Result deeply equal.
func TestSearchResumeBitIdentical(t *testing.T) {
	app, err := apps.ByName("mpeg4")
	if err != nil {
		t.Fatal(err)
	}
	const resumeAt = 500
	type ckKey struct{ chain, evals int }

	var mu sync.Mutex
	full := map[ckKey]ChainCheckpoint{}
	opts := Options{
		Budget:          4000,
		Seed:            42,
		Mapping:         mpeg4Opts(),
		CheckpointEvery: 250,
		Checkpoint: func(cs ChainCheckpoint) {
			mu.Lock()
			full[ckKey{cs.Chain, cs.Evals}] = cs
			mu.Unlock()
		},
	}
	ref, err := Run(context.Background(), app, opts)
	if err != nil {
		t.Fatal(err)
	}

	var resume []ChainCheckpoint
	for k, cs := range full {
		if k.evals == resumeAt {
			resume = append(resume, cs)
		}
	}
	if len(resume) != 4 {
		t.Fatalf("captured %d checkpoints at %d evaluations, want one per chain (4)", len(resume), resumeAt)
	}

	tail := map[ckKey]ChainCheckpoint{}
	minEvals := 1 << 30
	opts.Resume = resume
	opts.Checkpoint = func(cs ChainCheckpoint) {
		mu.Lock()
		tail[ckKey{cs.Chain, cs.Evals}] = cs
		if cs.Evals < minEvals {
			minEvals = cs.Evals
		}
		mu.Unlock()
	}
	res, err := Run(context.Background(), app, opts)
	if err != nil {
		t.Fatal(err)
	}

	// The resumed run must not redo pre-checkpoint work: its first
	// emitted checkpoint sits past the resume point.
	if minEvals <= resumeAt {
		t.Errorf("resumed run emitted a checkpoint at %d evaluations — it restarted instead of resuming", minEvals)
	}
	// Every post-resume checkpoint must be bit-identical to the
	// uninterrupted run's at the same (chain, evals) boundary.
	for k, cs := range tail {
		want, ok := full[k]
		if !ok {
			t.Errorf("resumed run emitted checkpoint at chain %d evals %d the full run never reached", k.chain, k.evals)
			continue
		}
		if !reflect.DeepEqual(want, cs) {
			t.Errorf("chain %d checkpoint at %d evaluations diverged:\nwant %+v\ngot  %+v", k.chain, k.evals, want, cs)
		}
	}
	ref.Best.Evaluated = nil // pointer-laden; structure+fitness is the contract
	res.Best.Evaluated = nil
	if !reflect.DeepEqual(ref, res) {
		t.Errorf("resumed result diverged:\nwant %+v\ngot  %+v", ref, res)
	}
}

// TestSearchResumeRejectsCorrupt pins the validation surface: damaged
// checkpoints must fail the run with a descriptive error, never resume
// into an inconsistent chain.
func TestSearchResumeRejectsCorrupt(t *testing.T) {
	app, err := apps.ByName("mpeg4")
	if err != nil {
		t.Fatal(err)
	}
	var ck ChainCheckpoint
	var mu sync.Mutex
	base := Options{
		Budget:          2000,
		Seed:            7,
		Mapping:         mpeg4Opts(),
		CheckpointEvery: 200,
		Checkpoint: func(cs ChainCheckpoint) {
			mu.Lock()
			if cs.Chain == 0 && ck.Evals == 0 {
				ck = cs
			}
			mu.Unlock()
		},
	}
	if _, err := Run(context.Background(), app, base); err != nil {
		t.Fatal(err)
	}
	if ck.Evals == 0 {
		t.Fatal("no checkpoint captured for chain 0")
	}
	base.Checkpoint, base.CheckpointEvery = nil, 0

	corrupt := func(name string, mut func(*ChainCheckpoint)) {
		cs := ck
		cs.Cur.Edges = append([][2]int(nil), ck.Cur.Edges...)
		cs.Cur.Terminals = append([]int(nil), ck.Cur.Terminals...)
		mut(&cs)
		o := base
		o.Resume = []ChainCheckpoint{cs}
		if _, err := Run(context.Background(), app, o); err == nil {
			t.Errorf("%s: corrupt checkpoint accepted", name)
		}
	}
	corrupt("evals-over-budget", func(cs *ChainCheckpoint) { cs.Evals = 1 << 20 })
	corrupt("routers-out-of-bounds", func(cs *ChainCheckpoint) { cs.Cur.Routers = 999 })
	corrupt("terminal-miscount", func(cs *ChainCheckpoint) { cs.Cur.Terminals = cs.Cur.Terminals[:1] })
	corrupt("terminal-out-of-range", func(cs *ChainCheckpoint) { cs.Cur.Terminals[0] = -1 })
	corrupt("duplicate-edge", func(cs *ChainCheckpoint) { cs.Cur.Edges = append(cs.Cur.Edges, cs.Cur.Edges[0]) })
}
