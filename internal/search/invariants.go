package search

import (
	"fmt"

	"sunmap/internal/graph"
	"sunmap/internal/route"
	"sunmap/internal/topology"
)

// CheckInvariants verifies the safety contract every topology this
// package emits — and every topology the internal/synth generators emit
// — must satisfy under app's traffic:
//
//  1. radix bounds: no router has more than maxRadix inter-router input
//     or output channels;
//  2. strong connectivity: the channel graph lets every router reach
//     every other router (forward and reverse), so any core placement is
//     routable — not just the one the current traffic exercises;
//  3. deadlock freedom: the channel-dependency graph of the installed
//     congestion-aware minimum-path routes is acyclic — or, when strict
//     is false, the topology admits an up*/down* escape routing whose
//     dependency graph is verified acyclic (Duato's criterion: adaptive
//     routes may form cycles if a connected, cycle-free escape
//     subnetwork exists).
//
// Search-accepted candidates must pass with strict=true — the annealer
// rejects cyclic CDGs outright — while generator outputs (e.g. a trimmed
// mesh whose adaptive min-path routes can cycle) are held to the escape
// discipline.
//
// The returned error describes the first violated invariant, naming the
// offending routers/links so a shrinking harness can print the minimal
// counterexample.
func CheckInvariants(topo topology.Topology, app *graph.CoreGraph, maxRadix int, strict bool) error {
	for r := 0; r < topo.NumRouters(); r++ {
		in, out := topo.RouterDegree(r)
		if in > maxRadix || out > maxRadix {
			return fmt.Errorf("router %d degree (in %d, out %d) exceeds radix bound %d", r, in, out, maxRadix)
		}
	}
	if topo.NumTerminals() < app.NumCores() {
		return fmt.Errorf("%d terminals cannot host %d cores", topo.NumTerminals(), app.NumCores())
	}
	assign := make([]int, app.NumCores())
	for i := range assign {
		assign[i] = i
	}
	if err := stronglyConnected(topo); err != nil {
		return err
	}
	// Route under the exact discipline the search evaluator certifies:
	// congestion-aware minimum-path with quadrant pruning off (quadrant
	// masks assume positional regularity arbitrary digraphs lack, and
	// would check different paths than the ones the annealer accepted).
	res, err := route.Route(topo, assign, app.Commodities(), route.Options{
		Function:        route.MinPath,
		DisableQuadrant: true,
	})
	if err != nil {
		return fmt.Errorf("routing failed despite connectivity: %w", err)
	}
	if acyclicPaths(res.Paths, len(topo.Links())) {
		return nil
	}
	if strict {
		return fmt.Errorf("channel-dependency graph of installed routes is cyclic")
	}
	if err := upDownEscapeAcyclic(topo); err != nil {
		return fmt.Errorf("routed CDG is cyclic and no escape discipline holds: %w", err)
	}
	return nil
}

// stronglyConnected checks invariant 2: a BFS over the forward channel
// graph and one over its reverse must each span every router.
func stronglyConnected(topo topology.Topology) error {
	n := topo.NumRouters()
	if n <= 1 {
		return nil
	}
	fwd := make([][]int, n)
	rev := make([][]int, n)
	for _, l := range topo.Links() {
		fwd[l.From] = append(fwd[l.From], l.To)
		rev[l.To] = append(rev[l.To], l.From)
	}
	for dir, adj := range [2][][]int{fwd, rev} {
		seen := make([]bool, n)
		seen[0] = true
		queue := []int{0}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		for r := 0; r < n; r++ {
			if !seen[r] {
				what := "reach"
				if dir == 1 {
					what = "be reached from"
				}
				return fmt.Errorf("router %d cannot %s router 0: channel graph is not strongly connected", r, what)
			}
		}
	}
	return nil
}

// acyclicPaths is the test-path variant of the evaluator's CDG check.
func acyclicPaths(paths []route.FlowPath, numLinks int) bool {
	var ev evaluator
	return ev.acyclicCDG(paths, numLinks)
}

// upDownEscapeAcyclic verifies the up*/down* escape discipline: build a
// BFS spanning tree from router 0, route every ordered router pair up to
// the pair's meeting point and down to the destination, and check the
// dependency graph of those tree routes. On a connected bidirectional
// network this must always pass (tree links split into up/down classes
// with dependencies only up→up, up→down, down→down); verifying it
// concretely is the property the harness pins.
func upDownEscapeAcyclic(topo topology.Topology) error {
	n := topo.NumRouters()
	g := topo.Graph()
	parent := make([]int, n)
	parentLink := make([]int, n) // link child->parent
	childLink := make([]int, n)  // link parent->child
	depth := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[0] = 0
	queue := []int{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range g.Out(u) {
			if parent[a.To] != -1 || a.To == 0 {
				continue
			}
			parent[a.To] = u
			childLink[a.To] = a.ID
			depth[a.To] = depth[u] + 1
			rev := -1
			for _, b := range g.Out(a.To) {
				if b.To == u {
					rev = b.ID
					break
				}
			}
			if rev == -1 {
				return fmt.Errorf("link %d->%d has no reverse channel", u, a.To)
			}
			parentLink[a.To] = rev
			queue = append(queue, a.To)
		}
	}
	for r := 0; r < n; r++ {
		if parent[r] == -1 {
			return fmt.Errorf("router %d unreachable from router 0", r)
		}
	}
	var paths []route.FlowPath
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			var ids []int
			// climb both endpoints to their meeting point
			su, du := s, d
			var downIDs []int
			for su != du {
				if depth[su] >= depth[du] {
					ids = append(ids, parentLink[su])
					su = parent[su]
				} else {
					downIDs = append(downIDs, childLink[du])
					du = parent[du]
				}
			}
			for i := len(downIDs) - 1; i >= 0; i-- {
				ids = append(ids, downIDs[i])
			}
			paths = append(paths, route.FlowPath{LinkIDs: ids})
		}
	}
	if !acyclicPaths(paths, len(topo.Links())) {
		return fmt.Errorf("up*/down* escape routes have a cyclic dependency graph")
	}
	return nil
}
