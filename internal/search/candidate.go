package search

import (
	"math"

	"sunmap/internal/graph"
	"sunmap/internal/topology"
)

// cand is one point of the search space: an undirected inter-router edge
// set over nR routers plus a terminal→router attachment. The layout is
// chosen so every mutation operator and the structural constraint check
// run without allocating: adjacency is a dense maxR×maxR edge-index
// matrix (eidx, -1 when absent) mirrored by a swap-remove edge list with
// endpoints normalized u < v.
type cand struct {
	maxR  int
	nR    int
	att   []int    // terminal -> router
	tcnt  []int    // router -> attached terminal count (len maxR)
	deg   []int    // router -> undirected inter-router degree (len maxR)
	eidx  []int32  // maxR*maxR -> index into edges, -1 when absent
	edges [][2]int // undirected edges, u < v
	nbr   []int    // mutation scratch (not part of the candidate state)
}

func newCand(maxR, terms int) *cand {
	c := &cand{
		maxR:  maxR,
		att:   make([]int, terms),
		tcnt:  make([]int, maxR),
		deg:   make([]int, maxR),
		eidx:  make([]int32, maxR*maxR),
		edges: make([][2]int, 0, 4*maxR),
	}
	for i := range c.eidx {
		c.eidx[i] = -1
	}
	return c
}

// copyFrom overwrites c with o's state, reusing c's buffers. The nbr
// scratch is intentionally not copied.
func (c *cand) copyFrom(o *cand) {
	c.maxR = o.maxR
	c.nR = o.nR
	c.att = append(c.att[:0], o.att...)
	c.tcnt = append(c.tcnt[:0], o.tcnt...)
	c.deg = append(c.deg[:0], o.deg...)
	c.eidx = append(c.eidx[:0], o.eidx...)
	c.edges = append(c.edges[:0], o.edges...)
}

func (c *cand) hasEdge(u, v int) bool { return c.eidx[u*c.maxR+v] >= 0 }

func (c *cand) addEdge(u, v int) {
	if u > v {
		u, v = v, u
	}
	i := int32(len(c.edges))
	c.edges = append(c.edges, [2]int{u, v}) //sunmap:alloc amortized edge-list growth; capacity bounded by maxR*(maxR-1)/2
	c.eidx[u*c.maxR+v] = i
	c.eidx[v*c.maxR+u] = i
	c.deg[u]++
	c.deg[v]++
}

func (c *cand) removeEdge(u, v int) {
	if u > v {
		u, v = v, u
	}
	i := c.eidx[u*c.maxR+v]
	last := len(c.edges) - 1
	moved := c.edges[last]
	c.edges[i] = moved
	c.eidx[moved[0]*c.maxR+moved[1]] = i
	c.eidx[moved[1]*c.maxR+moved[0]] = i
	c.edges = c.edges[:last]
	c.eidx[u*c.maxR+v] = -1
	c.eidx[v*c.maxR+u] = -1
	c.deg[u]--
	c.deg[v]--
}

// neighbors appends r's adjacent routers (ascending) to dst and returns it.
func (c *cand) neighbors(r int, dst []int) []int {
	row := r * c.maxR
	for v := 0; v < c.nR; v++ {
		if c.eidx[row+v] >= 0 {
			dst = append(dst, v) //sunmap:alloc amortized growth into caller-owned neighbor scratch
		}
	}
	return dst
}

// searchTopo is the throwaway topology.Topology the annealing inner loop
// routes over. It is rebuilt in place from the current candidate before
// every evaluation — legal because the loop routes with MinPath +
// DisableQuadrant, so the Router consults none of its topology-keyed
// caches (quadrant masks, min-hop DAGs) and its Bind identity check can
// keep short-circuiting on the stable pointer. It must never escape the
// chain that owns it; winners are materialized through topology.NewCustom
// instead.
type searchTopo struct {
	terms int
	g     *graph.Digraph
	links []topology.Link
	att   []int
	deg   []int
}

func newSearchTopo(maxR, terms int) *searchTopo {
	return &searchTopo{terms: terms, g: graph.NewDigraph(maxR)}
}

func (st *searchTopo) rebuild(c *cand) {
	st.g.Reset(c.nR)
	st.links = st.links[:0]
	// Walk the adjacency matrix in (u, v) order rather than the edge
	// list's churned insertion order: link IDs and arc order are then
	// canonical — identical to the sorted BiLinks the winner is
	// materialized with — so the route set (and hence the CDG this loop
	// certifies acyclic) transfers exactly to the NewCustom topology.
	for u := 0; u < c.nR; u++ {
		row := u * c.maxR
		for v := u + 1; v < c.nR; v++ {
			if c.eidx[row+v] < 0 {
				continue
			}
			id := len(st.links)
			st.links = append(st.links, //sunmap:alloc amortized link-arena growth, reused across materializations
				topology.Link{ID: id, From: u, To: v},
				topology.Link{ID: id + 1, From: v, To: u})
			st.g.AddArc(u, v, id)
			st.g.AddArc(v, u, id+1)
		}
	}
	st.att = append(st.att[:0], c.att...)
	st.deg = append(st.deg[:0], c.deg[:c.nR]...)
}

func (st *searchTopo) Name() string                     { return "search-cand" }
func (st *searchTopo) Kind() topology.Kind              { return topology.Synth }
func (st *searchTopo) NumTerminals() int                { return st.terms }
func (st *searchTopo) NumRouters() int                  { return st.g.NumVertices() }
func (st *searchTopo) Links() []topology.Link           { return st.links }
func (st *searchTopo) Graph() *graph.Digraph            { return st.g }
func (st *searchTopo) InjectRouter(t int) int           { return st.att[t] }
func (st *searchTopo) EjectRouter(t int) int            { return st.att[t] }
func (st *searchTopo) RouterDegree(r int) (in, out int) { return st.deg[r], st.deg[r] }

// Quadrant returns the full router set: the inner loop routes with
// quadrant restriction disabled, so the mask only exists to satisfy the
// interface (and allocates — it must stay off the hot path).
func (st *searchTopo) Quadrant(src, dst int) []bool {
	mask := make([]bool, st.g.NumVertices())
	for i := range mask {
		mask[i] = true
	}
	return mask
}

func (st *searchTopo) MinHops(src, dst int) int {
	d := st.g.BFSDistances(st.att[src], false)[st.att[dst]]
	if d < 0 {
		return -1
	}
	return d + 1
}

func (st *searchTopo) Position(r int) (x, y float64) {
	return gridPos(r, st.g.NumVertices())
}

func (st *searchTopo) TerminalPosition(t int) (x, y float64) {
	x, y = gridPos(st.att[t], st.g.NumVertices())
	return x + 0.25, y + 0.25
}

// gridPos places index i on a near-square grid with 2-unit pitch, the
// placement idiom the synthesized-topology constructors use to seed the
// floorplanner.
func gridPos(i, n int) (x, y float64) {
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	if cols < 1 {
		cols = 1
	}
	return 2 * float64(i%cols), 2 * float64(i/cols)
}
