package search

import (
	"fmt"
	"math/rand"

	"sunmap/internal/graph"
)

// RandomApp builds a seeded random application task graph with n cores:
// a random-ancestor backbone (guaranteeing weak connectivity, the shape
// of streaming task graphs) plus n extra random flows, bandwidths drawn
// in [50, 450) MB/s and core areas in [1, 4) mm². The same (seed, n)
// always yields the same graph — the property-test harness drives the
// invariant checks over hundreds of these.
func RandomApp(seed int64, n int) *graph.CoreGraph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewCoreGraph(fmt.Sprintf("rand%d-s%d", n, seed))
	for i := 0; i < n; i++ {
		g.MustAddCore(graph.Core{
			Name:    fmt.Sprintf("c%d", i),
			AreaMM2: 1 + 3*rng.Float64(),
		})
	}
	name := func(i int) string { return fmt.Sprintf("c%d", i) }
	bw := func() float64 { return 50 + 400*rng.Float64() }
	for i := 1; i < n; i++ {
		g.MustConnect(name(rng.Intn(i)), name(i), bw())
	}
	for k := 0; k < n; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		// duplicate flows between the same pair are legal (they sum), so
		// no dedup is needed for the harness's purposes
		g.MustConnect(name(i), name(j), bw())
	}
	return g
}
