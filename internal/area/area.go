// Package area implements SUNMAP's analytical switch area models
// (Section 5 of the paper): crossbar, buffer and control/logic area per
// switch configuration, plus link wiring area. The models account for
// per-port scaling so that, e.g., the 3x3 corner switches of a mesh cost
// less than the 5x5 interior switches — the effect behind the mesh-vs-torus
// area gap of Fig. 3(d).
package area

import (
	"fmt"

	"sunmap/internal/tech"
	"sunmap/internal/topology"
)

// SwitchConfig describes one switch instance. In and Out include core
// ports: a mesh interior switch with a mapped core is 5x5.
type SwitchConfig struct {
	// In and Out are the input and output port counts.
	In, Out int
	// BufDepthFlits is the per-input buffer depth.
	BufDepthFlits int
	// FlitBits is the datapath width.
	FlitBits int
}

// String renders the configuration as "5x5/4x32b".
func (c SwitchConfig) String() string {
	return fmt.Sprintf("%dx%d/%dx%db", c.In, c.Out, c.BufDepthFlits, c.FlitBits)
}

// SwitchAreaMM2 returns the silicon area of one switch: crossbar area
// grows with In*Out and the square of the flit width, buffers with
// In*depth*width, logic with total ports.
func SwitchAreaMM2(c SwitchConfig, t tech.Tech) float64 {
	if c.In <= 0 || c.Out <= 0 {
		return 0
	}
	w := float64(c.FlitBits) / 32.0
	xbar := t.XbarAreaMM2 * float64(c.In*c.Out) * w * w
	buf := t.BufAreaMM2 * float64(c.In*c.BufDepthFlits) * w
	logic := t.LogicAreaMM2 * float64(c.In+c.Out)
	return xbar + buf + logic
}

// SwitchConfigs derives the per-router switch configurations of a mapped
// design: each router's inter-router degree plus one input and one output
// port per core mapped to one of its terminals. assign[c] = terminal of
// core c; pass nil to size every switch as if all terminals were occupied.
func SwitchConfigs(topo topology.Topology, assign []int, t tech.Tech) []SwitchConfig {
	coreIn := make([]int, topo.NumRouters())  // cores injecting at router
	coreOut := make([]int, topo.NumRouters()) // cores ejecting at router
	if assign == nil {
		for term := 0; term < topo.NumTerminals(); term++ {
			coreIn[topo.InjectRouter(term)]++
			coreOut[topo.EjectRouter(term)]++
		}
	} else {
		for _, term := range assign {
			coreIn[topo.InjectRouter(term)]++
			coreOut[topo.EjectRouter(term)]++
		}
	}
	cfgs := make([]SwitchConfig, topo.NumRouters())
	for r := range cfgs {
		in, out := topo.RouterDegree(r)
		cfgs[r] = SwitchConfig{
			In:            in + coreIn[r],
			Out:           out + coreOut[r],
			BufDepthFlits: t.BufDepthFlits,
			FlitBits:      t.FlitBits,
		}
	}
	return cfgs
}

// NetworkSwitchAreaMM2 sums the switch areas of a mapped design.
func NetworkSwitchAreaMM2(topo topology.Topology, assign []int, t tech.Tech) float64 {
	var sum float64
	for _, c := range SwitchConfigs(topo, assign, t) {
		sum += SwitchAreaMM2(c, t)
	}
	return sum
}

// LinkAreaMM2 returns the wiring area of the links given their lengths in
// millimetres (indexed by link ID).
func LinkAreaMM2(linkLengthsMM []float64, t tech.Tech) float64 {
	var sum float64
	w := float64(t.FlitBits) / 32.0
	for _, l := range linkLengthsMM {
		sum += t.LinkAreaMM2PerMM * l * w
	}
	return sum
}
