package area

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sunmap/internal/tech"
	"sunmap/internal/topology"
)

func cfg(in, out int) SwitchConfig {
	t := tech.Tech100nm()
	return SwitchConfig{In: in, Out: out, BufDepthFlits: t.BufDepthFlits, FlitBits: t.FlitBits}
}

func TestSwitchAreaReferencePoint(t *testing.T) {
	// The 5x5 reference switch at 0.1 um should land near 0.74 mm²
	// (crossbar 0.30 + buffers 0.36 + logic 0.08), keeping the VOPD mesh
	// in the paper's ~55 mm² design-area range.
	got := SwitchAreaMM2(cfg(5, 5), tech.Tech100nm())
	if got < 0.5 || got > 1.0 {
		t.Errorf("5x5 switch area = %g mm², want ~0.74", got)
	}
}

func TestSwitchAreaMonotonicity(t *testing.T) {
	tc := tech.Tech100nm()
	if !(SwitchAreaMM2(cfg(3, 3), tc) < SwitchAreaMM2(cfg(4, 4), tc) &&
		SwitchAreaMM2(cfg(4, 4), tc) < SwitchAreaMM2(cfg(5, 5), tc)) {
		t.Error("area not monotone in port count")
	}
	deep := cfg(5, 5)
	deep.BufDepthFlits *= 2
	if SwitchAreaMM2(deep, tc) <= SwitchAreaMM2(cfg(5, 5), tc) {
		t.Error("area not monotone in buffer depth")
	}
	wide := cfg(5, 5)
	wide.FlitBits *= 2
	if SwitchAreaMM2(wide, tc) <= SwitchAreaMM2(cfg(5, 5), tc) {
		t.Error("area not monotone in flit width")
	}
	if SwitchAreaMM2(SwitchConfig{}, tc) != 0 {
		t.Error("degenerate switch has nonzero area")
	}
}

func mustTopo(topo topology.Topology, err error) topology.Topology {
	if err != nil {
		panic(err)
	}
	return topo
}

func TestSwitchConfigsMesh(t *testing.T) {
	// A fully occupied 3x3 mesh: corner switches 3x3 (2 links + core),
	// edge 4x4, interior 5x5 — Section 4.2's degree structure plus the
	// core port.
	topo := mustTopo(topology.NewMesh(3, 3))
	assign := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
	cfgs := SwitchConfigs(topo, assign, tech.Tech100nm())
	want := map[int]int{0: 3, 1: 4, 2: 3, 3: 4, 4: 5, 5: 4, 6: 3, 7: 4, 8: 3}
	for r, w := range want {
		if cfgs[r].In != w || cfgs[r].Out != w {
			t.Errorf("router %d config %s, want %dx%d", r, cfgs[r], w, w)
		}
	}
}

func TestSwitchConfigsPartialOccupancy(t *testing.T) {
	// Only cores on terminals 0 and 8: other routers get no core port.
	topo := mustTopo(topology.NewMesh(3, 3))
	cfgs := SwitchConfigs(topo, []int{0, 8}, tech.Tech100nm())
	if cfgs[0].In != 3 || cfgs[4].In != 4 || cfgs[8].In != 3 {
		t.Errorf("partial occupancy configs: r0=%s r4=%s r8=%s", cfgs[0], cfgs[4], cfgs[8])
	}
}

func TestSwitchConfigsButterflyAllFourByFour(t *testing.T) {
	// A fully occupied 4-ary 2-fly has only 4x4 switches — the property
	// Section 6.1 credits for the butterfly's area/power savings.
	topo := mustTopo(topology.NewButterfly(4, 2))
	cfgs := SwitchConfigs(topo, nil, tech.Tech100nm())
	for r, c := range cfgs {
		if c.In != 4 || c.Out != 4 {
			t.Errorf("butterfly router %d is %s, want 4x4", r, c)
		}
	}
}

func TestNetworkSwitchAreaMeshVsTorus(t *testing.T) {
	// Same shape, but the torus upgrades every edge switch to 5x5, so its
	// switch area must exceed the mesh's (Fig. 3d: mesh saves ~5% design
	// area).
	tc := tech.Tech100nm()
	mesh := mustTopo(topology.NewMesh(3, 4))
	torus := mustTopo(topology.NewTorus(3, 4))
	assign := make([]int, 12)
	for i := range assign {
		assign[i] = i
	}
	am := NetworkSwitchAreaMM2(mesh, assign, tc)
	at := NetworkSwitchAreaMM2(torus, assign, tc)
	if am >= at {
		t.Errorf("mesh switch area %g >= torus %g", am, at)
	}
	if ratio := at / am; ratio < 1.1 || ratio > 2.0 {
		t.Errorf("torus/mesh switch area ratio = %g, want within (1.1, 2.0)", ratio)
	}
}

func TestLinkArea(t *testing.T) {
	tc := tech.Tech100nm()
	got := LinkAreaMM2([]float64{1, 2, 3}, tc)
	want := 6 * tc.LinkAreaMM2PerMM
	if got != want {
		t.Errorf("LinkAreaMM2 = %g, want %g", got, want)
	}
	if LinkAreaMM2(nil, tc) != 0 {
		t.Error("empty link list has nonzero area")
	}
}

// Property: switch area is strictly increasing when any one dimension
// (ports, depth, width) grows.
func TestAreaMonotoneProperty(t *testing.T) {
	tc := tech.Tech100nm()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := SwitchConfig{
			In:            1 + rng.Intn(10),
			Out:           1 + rng.Intn(10),
			BufDepthFlits: 1 + rng.Intn(8),
			FlitBits:      8 * (1 + rng.Intn(8)),
		}
		a := SwitchAreaMM2(c, tc)
		c2 := c
		c2.In++
		if SwitchAreaMM2(c2, tc) <= a {
			return false
		}
		c3 := c
		c3.BufDepthFlits++
		if SwitchAreaMM2(c3, tc) <= a {
			return false
		}
		c4 := c
		c4.FlitBits += 8
		return SwitchAreaMM2(c4, tc) > a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
