// Package power implements SUNMAP's bit-energy power models (Section 5):
// ORION-style switch energies (buffer write + read, crossbar traversal
// scaling with the port product, arbitration scaling with fan-in) and
// per-millimetre link energies from wire parameters. Design power is the
// traffic-weighted sum over switches and links — the quantity plotted in
// Figs. 3(d), 6(d), 7(b) and 8(d).
package power

import (
	"fmt"

	"sunmap/internal/area"
	"sunmap/internal/tech"
)

// MWPerMBpsPJ converts (MB/s x pJ/bit) to mW:
// 1 MB/s = 8e6 bit/s; 8e6 bit/s x 1e-12 J/bit = 8e-6 W = 0.008 mW.
const MWPerMBpsPJ = 0.008

// SwitchBitEnergyPJ returns the energy one bit dissipates traversing a
// switch: one buffer write and read plus crossbar and arbitration shares.
// The crossbar term scales with In*Out relative to the 5x5 reference, the
// arbiter with fan-in — larger switches cost more per bit, which is why
// the all-4x4 butterfly beats the 5x5-switch mesh for VOPD (Section 6.1).
func SwitchBitEnergyPJ(c area.SwitchConfig, t tech.Tech) float64 {
	if c.In <= 0 || c.Out <= 0 {
		return 0
	}
	return t.BufWritePJ + t.BufReadPJ +
		t.XbarPJ*float64(c.In*c.Out)/25.0 +
		t.ArbPJ*float64(c.In)/5.0
}

// LinkBitEnergyPJ returns the energy one bit dissipates on a link of the
// given length.
func LinkBitEnergyPJ(lengthMM float64, t tech.Tech) float64 {
	return t.LinkPJPerMM * lengthMM
}

// NetworkPowerMW computes design power from per-router traffic (MB/s
// through each switch), per-link traffic and link lengths (mm, indexed by
// link ID).
func NetworkPowerMW(cfgs []area.SwitchConfig, routerLoadsMBps, linkLoadsMBps, linkLengthsMM []float64, t tech.Tech) (float64, error) {
	if len(cfgs) != len(routerLoadsMBps) {
		return 0, fmt.Errorf("power: %d switch configs vs %d router loads", len(cfgs), len(routerLoadsMBps))
	}
	if len(linkLoadsMBps) != len(linkLengthsMM) {
		return 0, fmt.Errorf("power: %d link loads vs %d link lengths", len(linkLoadsMBps), len(linkLengthsMM))
	}
	var mw float64
	for i, cfg := range cfgs {
		mw += routerLoadsMBps[i] * SwitchBitEnergyPJ(cfg, t) * MWPerMBpsPJ
	}
	for i, load := range linkLoadsMBps {
		mw += load * LinkBitEnergyPJ(linkLengthsMM[i], t) * MWPerMBpsPJ
	}
	return mw, nil
}

// Breakdown separates switch and link power for reporting; Section 6.1
// argues from exactly this split ("link power dissipation is much lower
// than the switch power dissipation").
type Breakdown struct {
	SwitchMW float64
	LinkMW   float64
}

// TotalMW returns the summed power.
func (b Breakdown) TotalMW() float64 { return b.SwitchMW + b.LinkMW }

// NetworkPowerBreakdown computes the switch/link power split.
func NetworkPowerBreakdown(cfgs []area.SwitchConfig, routerLoadsMBps, linkLoadsMBps, linkLengthsMM []float64, t tech.Tech) (Breakdown, error) {
	if len(cfgs) != len(routerLoadsMBps) {
		return Breakdown{}, fmt.Errorf("power: %d switch configs vs %d router loads", len(cfgs), len(routerLoadsMBps))
	}
	if len(linkLoadsMBps) != len(linkLengthsMM) {
		return Breakdown{}, fmt.Errorf("power: %d link loads vs %d link lengths", len(linkLoadsMBps), len(linkLengthsMM))
	}
	var b Breakdown
	for i, cfg := range cfgs {
		b.SwitchMW += routerLoadsMBps[i] * SwitchBitEnergyPJ(cfg, t) * MWPerMBpsPJ
	}
	for i, load := range linkLoadsMBps {
		b.LinkMW += load * LinkBitEnergyPJ(linkLengthsMM[i], t) * MWPerMBpsPJ
	}
	return b, nil
}
