package power

import (
	"math"
	"testing"

	"sunmap/internal/area"
	"sunmap/internal/tech"
)

func cfg(in, out int) area.SwitchConfig {
	t := tech.Tech100nm()
	return area.SwitchConfig{In: in, Out: out, BufDepthFlits: t.BufDepthFlits, FlitBits: t.FlitBits}
}

func TestSwitchBitEnergyReference(t *testing.T) {
	// 5x5 at 0.1 um should be ~5 pJ/bit (1+1 buffers, 2.4 crossbar,
	// 0.6 arbiter), the calibration that puts VOPD mesh power near the
	// paper's 372 mW.
	got := SwitchBitEnergyPJ(cfg(5, 5), tech.Tech100nm())
	if math.Abs(got-5.0) > 0.5 {
		t.Errorf("5x5 bit energy = %g pJ, want ~5", got)
	}
}

func TestSwitchBitEnergyMonotone(t *testing.T) {
	tc := tech.Tech100nm()
	e3 := SwitchBitEnergyPJ(cfg(3, 3), tc)
	e4 := SwitchBitEnergyPJ(cfg(4, 4), tc)
	e5 := SwitchBitEnergyPJ(cfg(5, 5), tc)
	if !(e3 < e4 && e4 < e5) {
		t.Errorf("bit energy not monotone: %g %g %g", e3, e4, e5)
	}
	if SwitchBitEnergyPJ(area.SwitchConfig{}, tc) != 0 {
		t.Error("degenerate switch has nonzero energy")
	}
}

func TestUnitConversion(t *testing.T) {
	// 1000 MB/s through a 1 pJ/bit stage dissipates 8 mW.
	if got := 1000 * 1.0 * MWPerMBpsPJ; math.Abs(got-8.0) > 1e-12 {
		t.Errorf("1000 MB/s @ 1 pJ/bit = %g mW, want 8", got)
	}
}

func TestNetworkPowerComposition(t *testing.T) {
	tc := tech.Tech100nm()
	cfgs := []area.SwitchConfig{cfg(5, 5), cfg(3, 3)}
	routerLoads := []float64{1000, 500}
	linkLoads := []float64{800}
	linkLens := []float64{2.0}
	total, err := NetworkPowerMW(cfgs, routerLoads, linkLoads, linkLens, tc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NetworkPowerBreakdown(cfgs, routerLoads, linkLoads, linkLens, tc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-b.TotalMW()) > 1e-9 {
		t.Errorf("total %g != breakdown %g", total, b.TotalMW())
	}
	wantSwitch := 1000*SwitchBitEnergyPJ(cfgs[0], tc)*MWPerMBpsPJ +
		500*SwitchBitEnergyPJ(cfgs[1], tc)*MWPerMBpsPJ
	if math.Abs(b.SwitchMW-wantSwitch) > 1e-9 {
		t.Errorf("switch power = %g, want %g", b.SwitchMW, wantSwitch)
	}
	wantLink := 800 * 2.0 * tc.LinkPJPerMM * MWPerMBpsPJ
	if math.Abs(b.LinkMW-wantLink) > 1e-9 {
		t.Errorf("link power = %g, want %g", b.LinkMW, wantLink)
	}
	// In a typical design, switch power dominates link power (the
	// paper's Section 6.1 argument for the butterfly win).
	if b.SwitchMW <= b.LinkMW {
		t.Errorf("switch power %g <= link power %g in reference scenario", b.SwitchMW, b.LinkMW)
	}
}

func TestNetworkPowerShapeErrors(t *testing.T) {
	tc := tech.Tech100nm()
	if _, err := NetworkPowerMW([]area.SwitchConfig{cfg(2, 2)}, []float64{1, 2}, nil, nil, tc); err == nil {
		t.Error("mismatched router loads accepted")
	}
	if _, err := NetworkPowerMW(nil, nil, []float64{1}, nil, tc); err == nil {
		t.Error("mismatched link lengths accepted")
	}
	if _, err := NetworkPowerBreakdown([]area.SwitchConfig{cfg(2, 2)}, []float64{1, 2}, nil, nil, tc); err == nil {
		t.Error("breakdown mismatched router loads accepted")
	}
	if _, err := NetworkPowerBreakdown(nil, nil, []float64{1}, nil, tc); err == nil {
		t.Error("breakdown mismatched link lengths accepted")
	}
}

func TestZeroTrafficZeroPower(t *testing.T) {
	tc := tech.Tech100nm()
	got, err := NetworkPowerMW([]area.SwitchConfig{cfg(5, 5)}, []float64{0}, []float64{0}, []float64{3}, tc)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("idle network dissipates %g mW in the traffic model", got)
	}
}
