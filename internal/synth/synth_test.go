package synth

import (
	"testing"

	"sunmap/internal/apps"
	"sunmap/internal/graph"
	"sunmap/internal/sim"
	"sunmap/internal/topology"
)

// app fetches a built-in benchmark application or fails the test.
func app(t *testing.T, name string) *graph.CoreGraph {
	t.Helper()
	g, err := apps.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCandidatesProperties is the synthesized-topology contract: every
// candidate of every generator, across all benchmark apps and several
// option sets, is fully connected, honors the switch-radix bound, and
// round-trips through the simulator's route builder with a usable path for
// every ordered terminal pair.
func TestCandidatesProperties(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		// radix is the effective inter-router degree bound candidates
		// must respect (the defaulted MaxRadix).
		radix int
	}{
		{name: "defaults", opts: Options{}, radix: 4},
		{name: "radix3", opts: Options{MaxRadix: 3}, radix: 3},
		{name: "radix6", opts: Options{MaxRadix: 6}, radix: 6},
		{name: "ring", opts: Options{MaxRadix: 2}, radix: 2},
		{name: "cluster3", opts: Options{ClusterSizes: []int{3}}, radix: 4},
	}
	for _, appName := range []string{"vopd", "mpeg4", "netproc", "dsp"} {
		for _, tc := range cases {
			t.Run(appName+"/"+tc.name, func(t *testing.T) {
				g := app(t, appName)
				cands, err := Candidates(g, tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				if len(cands) == 0 {
					t.Fatal("no candidates synthesized")
				}
				for _, topo := range cands {
					if topo.Kind() != topology.Synth {
						t.Errorf("%s: kind = %v, want synth", topo.Name(), topo.Kind())
					}
					if topo.NumTerminals() < g.NumCores() {
						t.Errorf("%s: %d terminals cannot host %d cores",
							topo.Name(), topo.NumTerminals(), g.NumCores())
					}
					if err := topology.Validate(topo); err != nil {
						t.Errorf("%s: %v", topo.Name(), err)
					}
					assertConnected(t, topo)
					assertRadixBound(t, topo, tc.radix)
					assertRoutesRoundTrip(t, topo)
				}
			})
		}
	}
}

// assertConnected checks every ordered router pair is reachable.
func assertConnected(t *testing.T, topo topology.Topology) {
	t.Helper()
	for u := 0; u < topo.NumRouters(); u++ {
		dist := topo.Graph().BFSDistances(u, false)
		for v, d := range dist {
			if d < 0 {
				t.Errorf("%s: router %d cannot reach router %d", topo.Name(), u, v)
				return
			}
		}
	}
}

// assertRadixBound checks no router exceeds the inter-router degree bound.
func assertRadixBound(t *testing.T, topo topology.Topology, radix int) {
	t.Helper()
	for r := 0; r < topo.NumRouters(); r++ {
		in, out := topo.RouterDegree(r)
		if in > radix || out > radix {
			t.Errorf("%s: router %d degree %d/%d exceeds radix bound %d",
				topo.Name(), r, in, out, radix)
		}
	}
}

// assertRoutesRoundTrip builds the simulator route table and checks every
// ordered terminal pair got at least one path.
func assertRoutesRoundTrip(t *testing.T, topo topology.Topology) {
	t.Helper()
	rt, err := sim.BuildRoutes(topo)
	if err != nil {
		t.Errorf("%s: BuildRoutes: %v", topo.Name(), err)
		return
	}
	for s := 0; s < topo.NumTerminals(); s++ {
		for d := 0; d < topo.NumTerminals(); d++ {
			if s == d {
				continue
			}
			// Same-router pairs legitimately traverse zero links; their
			// single path may be empty. Distinct routers need a real path.
			if topo.InjectRouter(s) == topo.EjectRouter(d) {
				continue
			}
			if len(rt.Paths(s, d)) == 0 {
				t.Errorf("%s: no route for terminal pair %d->%d", topo.Name(), s, d)
				return
			}
		}
	}
}

// TestCandidatesDeterministic asserts synthesis is a pure function of the
// application and options: two runs produce identical names, link lists
// and terminal attachments (the property that keeps Select results
// independent of parallelism and cache state).
func TestCandidatesDeterministic(t *testing.T) {
	g := app(t, "mpeg4")
	a, err := Candidates(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Candidates(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("candidate counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name() != b[i].Name() {
			t.Fatalf("candidate %d name %q vs %q", i, a[i].Name(), b[i].Name())
		}
		la, lb := a[i].Links(), b[i].Links()
		if len(la) != len(lb) {
			t.Fatalf("%s: link counts differ: %d vs %d", a[i].Name(), len(la), len(lb))
		}
		for j := range la {
			if la[j] != lb[j] {
				t.Fatalf("%s: link %d differs: %v vs %v", a[i].Name(), j, la[j], lb[j])
			}
		}
		for term := 0; term < a[i].NumTerminals(); term++ {
			if a[i].InjectRouter(term) != b[i].InjectRouter(term) {
				t.Fatalf("%s: terminal %d attachment differs", a[i].Name(), term)
			}
		}
	}
}

// TestCandidatesRegistered asserts every synthesized candidate resolves
// through the topology name registry.
func TestCandidatesRegistered(t *testing.T) {
	g := app(t, "vopd")
	cands, err := Candidates(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		got, err := topology.ByName(c.Name())
		if err != nil {
			t.Errorf("ByName(%q): %v", c.Name(), err)
			continue
		}
		if got.NumRouters() != c.NumRouters() || len(got.Links()) != len(c.Links()) {
			t.Errorf("ByName(%q) returned a different structure", c.Name())
		}
	}
}

// TestOptionsValidation covers the explicit-invalid-value contract.
func TestOptionsValidation(t *testing.T) {
	g := app(t, "vopd")
	for _, opts := range []Options{
		{MaxRadix: 1},
		{MaxRadix: -2},
		{ClusterSizes: []int{0}},
		{ClusterSizes: []int{2, -1}},
	} {
		if _, err := Candidates(g, opts); err == nil {
			t.Errorf("Candidates(%+v) accepted invalid options", opts)
		}
	}
}

// TestSmallRadixSkipsMeshDerived: with a radix budget below the mesh's 4,
// the mesh-derived generators must be skipped, not violated.
func TestSmallRadixSkipsMeshDerived(t *testing.T) {
	g := app(t, "mpeg4")
	cands, err := Candidates(g, Options{MaxRadix: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("expected at least the cluster candidates")
	}
	for _, c := range cands {
		assertRadixBound(t, c, 2)
	}
}

// TestClusterKeepsHeavyPairsTogether: the defining property of min-cut
// clustering — the heaviest-communicating pair of the MPEG-4 hub design
// (sdram <-> upsamp at 910 MB/s) must land in one cluster, making their
// flow a zero-link, single-router route.
func TestClusterKeepsHeavyPairsTogether(t *testing.T) {
	g := app(t, "mpeg4")
	topo, err := Cluster(g, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	sdram, _ := g.CoreIndex("sdram")
	upsamp, _ := g.CoreIndex("upsamp")
	// Terminal t hosts core t by construction in the cluster generator.
	if topo.InjectRouter(sdram) != topo.InjectRouter(upsamp) {
		t.Errorf("sdram (router %d) and upsamp (router %d) split across clusters despite 910 MB/s flow",
			topo.InjectRouter(sdram), topo.InjectRouter(upsamp))
	}
	if hops := topo.MinHops(sdram, upsamp); hops != 1 {
		t.Errorf("same-cluster MinHops = %d, want 1", hops)
	}
}
