// Package synth generates application-specific candidate topologies from
// a core graph — SUNMAP's follow-on direction: instead of only choosing
// among the fixed library of Definition 2, synthesize networks shaped by
// the application's communication structure and let Phase 2 judge them
// against the standard families on equal terms (cf. "Floorplanning and
// Topology Generation for Application-Specific Network-on-Chip",
// arXiv:1402.2462, and "Sparse Hamming Graph", arXiv:2211.13980).
//
// Three deterministic generators are provided:
//
//   - Cluster: recursive Kernighan–Lin-style min-cut bipartitioning of the
//     communication graph into core clusters mapped onto switches, wired
//     by a degree-bounded maximum-bandwidth spanning tree plus direct
//     links for the heaviest inter-cluster flows.
//   - TrimmedMesh: the squarest mesh for the core count with every link
//     the application's dimension-ordered flow paths never touch deleted
//     (connectivity preserving).
//   - SparseHamming: a dense two-dimensional Hamming (rook's) graph pruned
//     to a switch-radix bound by deleting the links the application uses
//     least.
//
// Every candidate implements topology.Topology via topology.NewCustom
// (Kind Synth), registers in the topology name registry, and carries the
// structural digest internal/engine keys its evaluation cache on — so
// synthesized candidates flow through Library/Select, the concurrent
// engine, the cache and the simulator exactly like library members.
// Synthesis is pure and deterministic: the same core graph and options
// always produce byte-identical candidates, keeping Select results
// independent of parallelism and cache state.
package synth

import (
	"fmt"

	"sunmap/internal/graph"
	"sunmap/internal/topology"
)

// Options tunes candidate synthesis. The zero value selects the defaults.
type Options struct {
	// MaxRadix bounds the inter-router links per synthesized switch
	// (default 4, mesh-class switches). 0 selects the default; values
	// below 2 are invalid. Generators whose structure cannot honor a small
	// bound are skipped rather than violating it: TrimmedMesh needs a
	// budget of at least 4 (its base mesh has radix-4 interior routers)
	// and SparseHamming at least 3 (its spanning skeleton).
	MaxRadix int
	// ClusterSizes lists the cores-per-switch targets the Cluster
	// generator synthesizes one candidate for (default {2, 4}). Sizes that
	// would collapse the application into a single cluster are skipped.
	ClusterSizes []int
}

func (o Options) withDefaults() (Options, error) {
	switch {
	case o.MaxRadix == 0:
		o.MaxRadix = 4
	case o.MaxRadix < 2:
		return o, fmt.Errorf("synth: MaxRadix %d is invalid (want 0 for the default, or >= 2)", o.MaxRadix)
	}
	if len(o.ClusterSizes) == 0 {
		o.ClusterSizes = []int{2, 4}
	}
	for _, s := range o.ClusterSizes {
		if s < 1 {
			return o, fmt.Errorf("synth: cluster size %d is invalid (want >= 1)", s)
		}
	}
	return o, nil
}

// Candidates synthesizes every applicable candidate topology for the
// application and registers each in the topology name registry (so
// topology.ByName resolves them for the rest of the process). Candidates
// are returned in deterministic order: cluster candidates in ClusterSizes
// order, then the trimmed mesh, then the sparse Hamming graph. Candidates
// whose names repeat (e.g. duplicate cluster sizes) are emitted once.
func Candidates(g *graph.CoreGraph, opts Options) ([]topology.Topology, error) {
	if g == nil {
		return nil, fmt.Errorf("synth: nil application")
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("synth: %w", err)
	}
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	var out []topology.Topology
	seen := make(map[string]bool)
	add := func(t topology.Topology, err error) error {
		if err != nil {
			return err
		}
		if seen[t.Name()] {
			return nil
		}
		if err := topology.Register(t); err != nil {
			return err
		}
		seen[t.Name()] = true
		out = append(out, t)
		return nil
	}
	for _, s := range opts.ClusterSizes {
		if (g.NumCores()+s-1)/s < 2 {
			continue // a single cluster is no network
		}
		if err := add(Cluster(g, s, opts.MaxRadix)); err != nil {
			return nil, err
		}
	}
	if opts.MaxRadix >= 4 {
		if err := add(TrimmedMesh(g)); err != nil {
			return nil, err
		}
	}
	if opts.MaxRadix >= 3 {
		if err := add(SparseHamming(g, opts.MaxRadix)); err != nil {
			return nil, err
		}
	}
	return out, nil
}
