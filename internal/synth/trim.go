package synth

import (
	"fmt"

	"sunmap/internal/graph"
	"sunmap/internal/topology"
)

// TrimmedMesh synthesizes a degree-bounded "trimmed mesh": the squarest
// mesh holding the application's cores, minus every link the application's
// flows never use. Cores are placed greedily (heaviest communicators
// closest together), every flow is walked along its dimension-ordered
// (XY) path, and unused links are then deleted in deterministic order —
// each removal only committed when the router graph stays connected. The
// result keeps the mesh's routability and placement template while
// shedding the area and leakage of the links a star- or pipeline-shaped
// application never exercises.
//
// Router degree never exceeds the mesh's 4, so the generator requires (and
// Candidates only invokes it under) a radix budget of at least 4.
func TrimmedMesh(g *graph.CoreGraph) (topology.Topology, error) {
	n := g.NumCores()
	if n < 2 {
		return nil, fmt.Errorf("synth: %s has %d cores; need at least 2", g.Name(), n)
	}
	rows, cols := gridShape(n)
	nR := rows * cols

	manhattan := func(a, b int) int {
		ar, ac := a/cols, a%cols
		br, bc := b/cols, b%cols
		return absInt(ar-br) + absInt(ac-bc)
	}
	center := (rows/2)*cols + cols/2
	place := placeCores(g, nR, center, manhattan)

	// Accumulate per-link usage along each flow's XY path.
	usage := make(map[[2]int]float64)
	for _, c := range g.Commodities() {
		path := xyPath(place[c.Src], place[c.Dst], cols)
		for i := 0; i+1 < len(path); i++ {
			usage[linkKey(path[i], path[i+1])] += c.ValueMBps
		}
	}

	// Full mesh link set, then delete unused links while connected.
	links := make(map[[2]int]bool)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			u := r*cols + c
			if c+1 < cols {
				links[linkKey(u, u+1)] = true
			}
			if r+1 < rows {
				links[linkKey(u, u+cols)] = true
			}
		}
	}
	for _, l := range sortedLinks(links) {
		if usage[l] > 0 {
			continue
		}
		delete(links, l)
		if !connectedWithout(nR, links) {
			links[l] = true // removal would disconnect; keep it
		}
	}

	terminals := make([]int, nR)
	routerPos := make([][2]float64, nR)
	termPos := make([][2]float64, nR)
	for u := 0; u < nR; u++ {
		terminals[u] = u
		routerPos[u] = [2]float64{float64(u % cols), float64(u / cols)}
		termPos[u] = routerPos[u]
	}
	return topology.NewCustom(topology.CustomSpec{
		Name:        fmt.Sprintf("synth-trim%dx%d-%s", rows, cols, g.Name()),
		NumRouters:  nR,
		BiLinks:     sortedLinks(links),
		Terminals:   terminals,
		RouterPos:   routerPos,
		TerminalPos: termPos,
	})
}

// xyPath walks column-first then row-first between two routers of a
// cols-wide grid, the dimension-ordered discipline internal/route uses on
// meshes.
func xyPath(src, dst, cols int) []int {
	sr, sc := src/cols, src%cols
	dr, dc := dst/cols, dst%cols
	path := []int{src}
	r, c := sr, sc
	for c != dc {
		if c < dc {
			c++
		} else {
			c--
		}
		path = append(path, r*cols+c)
	}
	for r != dr {
		if r < dr {
			r++
		} else {
			r--
		}
		path = append(path, r*cols+c)
	}
	return path
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
