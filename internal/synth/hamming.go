package synth

import (
	"fmt"
	"sort"

	"sunmap/internal/graph"
	"sunmap/internal/topology"
)

// SparseHamming synthesizes a radix-bounded sparse Hamming-graph topology
// (after "Sparse Hamming Graph: A Customizable Network-on-Chip Topology",
// arXiv:2211.13980). The dense starting point is the two-dimensional
// Hamming graph H(2, ·) over the squarest grid holding the cores — every
// router linked to every other router in its row and column (a rook's
// graph), so any pair is at most two hops apart. The application's flows
// are then routed row-first over that dense graph and the generator prunes
// it down: links no flow uses are deleted, and remaining links are removed
// in ascending-usage order at any router whose degree exceeds maxRadix.
//
// A mesh-shaped spanning skeleton (row 0 plus every column) is exempt from
// pruning, which guarantees connectivity and, because the skeleton's
// degree never exceeds 3, guarantees the radix bound is reachable for any
// maxRadix >= 3.
func SparseHamming(g *graph.CoreGraph, maxRadix int) (topology.Topology, error) {
	if maxRadix < 3 {
		return nil, fmt.Errorf("synth: sparse Hamming generator needs maxRadix >= 3, got %d", maxRadix)
	}
	n := g.NumCores()
	if n < 2 {
		return nil, fmt.Errorf("synth: %s has %d cores; need at least 2", g.Name(), n)
	}
	rows, cols := gridShape(n)
	nR := rows * cols

	// Dense rook's-graph link set and the protected mesh skeleton.
	links := make(map[[2]int]bool)
	protected := make(map[[2]int]bool)
	for r := 0; r < rows; r++ {
		for c1 := 0; c1 < cols; c1++ {
			for c2 := c1 + 1; c2 < cols; c2++ {
				links[linkKey(r*cols+c1, r*cols+c2)] = true
			}
		}
	}
	for c := 0; c < cols; c++ {
		for r1 := 0; r1 < rows; r1++ {
			for r2 := r1 + 1; r2 < rows; r2++ {
				links[linkKey(r1*cols+c, r2*cols+c)] = true
			}
		}
	}
	for c := 0; c+1 < cols; c++ {
		protected[linkKey(c, c+1)] = true // row 0, adjacent columns
	}
	for c := 0; c < cols; c++ {
		for r := 0; r+1 < rows; r++ {
			protected[linkKey(r*cols+c, (r+1)*cols+c)] = true
		}
	}

	// Place cores and profile usage: row hop to the destination column,
	// then column hop — at most two links per flow on the dense graph.
	hamming := func(a, b int) int {
		d := 0
		if a/cols != b/cols {
			d++
		}
		if a%cols != b%cols {
			d++
		}
		return d
	}
	place := placeCores(g, nR, (rows/2)*cols+cols/2, hamming)
	usage := make(map[[2]int]float64)
	for _, c := range g.Commodities() {
		u, v := place[c.Src], place[c.Dst]
		mid := (u/cols)*cols + v%cols // same row as u, same column as v
		for _, hop := range [][2]int{{u, mid}, {mid, v}} {
			if hop[0] != hop[1] {
				usage[linkKey(hop[0], hop[1])] += c.ValueMBps
			}
		}
	}

	// Prune: drop unused unprotected links outright, then enforce the
	// radix bound by deleting the least-used links at over-budget routers.
	deg := make([]int, nR)
	for l := range links {
		deg[l[0]]++
		deg[l[1]]++
	}
	removable := make([][2]int, 0, len(links))
	for _, l := range sortedLinks(links) {
		if protected[l] {
			continue
		}
		if usage[l] == 0 {
			delete(links, l)
			deg[l[0]]--
			deg[l[1]]--
			continue
		}
		removable = append(removable, l)
	}
	sort.SliceStable(removable, func(i, j int) bool {
		return usage[removable[i]] < usage[removable[j]]
	})
	for _, l := range removable {
		if deg[l[0]] > maxRadix || deg[l[1]] > maxRadix {
			delete(links, l)
			deg[l[0]]--
			deg[l[1]]--
		}
	}

	terminals := make([]int, nR)
	routerPos := make([][2]float64, nR)
	termPos := make([][2]float64, nR)
	for u := 0; u < nR; u++ {
		terminals[u] = u
		routerPos[u] = [2]float64{float64(u % cols), float64(u / cols)}
		termPos[u] = routerPos[u]
	}
	return topology.NewCustom(topology.CustomSpec{
		Name:        fmt.Sprintf("synth-hamming%dx%dr%d-%s", rows, cols, maxRadix, g.Name()),
		NumRouters:  nR,
		BiLinks:     sortedLinks(links),
		Terminals:   terminals,
		RouterPos:   routerPos,
		TerminalPos: termPos,
	})
}
