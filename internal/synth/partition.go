package synth

import (
	"fmt"
	"math"
	"sort"

	"sunmap/internal/graph"
	"sunmap/internal/topology"
)

// Cluster synthesizes a clustered custom topology: the communication graph
// is recursively bipartitioned with a Kernighan–Lin-style min-cut
// refinement until every cluster holds at most clusterSize cores, each
// cluster becomes one switch hosting its cores, and the switches are wired
// by a degree-bounded maximum-bandwidth spanning tree plus extra links for
// the heaviest remaining inter-cluster flows. Heavily communicating cores
// therefore share a switch (zero network hops between them) and heavy
// cluster pairs get direct links — the topology the application's
// communication structure asks for, rather than the nearest library shape.
//
// maxRadix bounds the inter-switch links per switch and must be at least 2
// (a ring is always constructible within that bound, so synthesis never
// fails for connectivity reasons).
func Cluster(g *graph.CoreGraph, clusterSize, maxRadix int) (topology.Topology, error) {
	if clusterSize < 1 {
		return nil, fmt.Errorf("synth: cluster size %d < 1", clusterSize)
	}
	if maxRadix < 2 {
		return nil, fmt.Errorf("synth: cluster generator needs maxRadix >= 2, got %d", maxRadix)
	}
	n := g.NumCores()
	w := commMatrix(g)

	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	clusters := bisectRecursive(all, clusterSize, w)
	// Deterministic cluster order: ascending members, then by first member.
	for _, c := range clusters {
		sort.Ints(c)
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i][0] < clusters[j][0] })
	k := len(clusters)
	if k < 2 {
		return nil, fmt.Errorf("synth: %s collapses to a single %d-core cluster (no network to build)",
			g.Name(), n)
	}

	// Inter-cluster bandwidth matrix.
	cw := make([][]float64, k)
	for i := range cw {
		cw[i] = make([]float64, k)
	}
	coreCluster := make([]int, n)
	for ci, c := range clusters {
		for _, core := range c {
			coreCluster[core] = ci
		}
	}
	for _, e := range g.Edges() {
		a, b := coreCluster[e.From], coreCluster[e.To]
		if a != b {
			cw[a][b] += e.BandwidthMBps
			cw[b][a] += e.BandwidthMBps
		}
	}

	links, deg := spanningLinks(cw, maxRadix)

	// Extra links for the heaviest unconnected cluster pairs, inside the
	// remaining degree budget, in decreasing bandwidth order.
	type pair struct {
		u, v int
		bw   float64
	}
	var extras []pair
	have := make(map[[2]int]bool, len(links))
	for _, l := range links {
		have[linkKey(l[0], l[1])] = true
	}
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			if cw[u][v] > 0 && !have[linkKey(u, v)] {
				extras = append(extras, pair{u, v, cw[u][v]})
			}
		}
	}
	sort.Slice(extras, func(i, j int) bool {
		if extras[i].bw != extras[j].bw {
			return extras[i].bw > extras[j].bw
		}
		if extras[i].u != extras[j].u {
			return extras[i].u < extras[j].u
		}
		return extras[i].v < extras[j].v
	})
	for _, p := range extras {
		if deg[p.u] < maxRadix && deg[p.v] < maxRadix {
			links = append(links, [2]int{p.u, p.v})
			deg[p.u]++
			deg[p.v]++
		}
	}

	// Switches on a near-square grid two units apart; each cluster's cores
	// in a sub-grid around their switch.
	gcols := int(math.Ceil(math.Sqrt(float64(k))))
	routerPos := make([][2]float64, k)
	for i := range routerPos {
		routerPos[i] = [2]float64{2 * float64(i%gcols), 2 * float64(i/gcols)}
	}
	terminals := make([]int, n)
	termPos := make([][2]float64, n)
	member := make([]int, k)
	for t := 0; t < n; t++ {
		ci := coreCluster[t]
		j := member[ci]
		member[ci]++
		dx := -0.5 + float64(j%2) + 0.2*float64(j/4)
		dy := -0.5 + float64((j/2)%2) + 0.2*float64(j/4)
		terminals[t] = ci
		termPos[t] = [2]float64{routerPos[ci][0] + dx, routerPos[ci][1] + dy}
	}

	return topology.NewCustom(topology.CustomSpec{
		// The radix is part of the name because the link structure depends
		// on it: same-named registrations must be structurally identical.
		Name:        fmt.Sprintf("synth-cluster%dr%d-%s", clusterSize, maxRadix, g.Name()),
		NumRouters:  k,
		BiLinks:     links,
		Terminals:   terminals,
		RouterPos:   routerPos,
		TerminalPos: termPos,
	})
}

// bisectRecursive splits the index set in half, refines the cut with
// pairwise swaps, and recurses until parts fit the cluster size.
func bisectRecursive(idx []int, clusterSize int, w [][]float64) [][]int {
	if len(idx) <= clusterSize {
		return [][]int{append([]int(nil), idx...)}
	}
	a, b := klBisect(idx, w)
	return append(bisectRecursive(a, clusterSize, w), bisectRecursive(b, clusterSize, w)...)
}

// klBisect splits idx into two balanced halves and improves the cut with
// Kernighan–Lin-style pairwise swaps: a swap of (a in A, b in B) is applied
// whenever it strictly reduces the cut bandwidth, and passes repeat until
// one completes with no improvement. First-improvement order over the
// deterministic index lists keeps the result reproducible.
func klBisect(idx []int, w [][]float64) (a, b []int) {
	half := (len(idx) + 1) / 2
	a = append([]int(nil), idx[:half]...)
	b = append([]int(nil), idx[half:]...)

	// d(x, own, other) is KL's gain term: external minus internal cost.
	d := func(x int, own, other []int) float64 {
		var external, internal float64
		for _, y := range other {
			external += w[x][y]
		}
		for _, y := range own {
			if y != x {
				internal += w[x][y]
			}
		}
		return external - internal
	}
	const eps = 1e-9
	for pass := 0; pass < len(idx); pass++ {
		improved := false
		for i := range a {
			for j := range b {
				gain := d(a[i], a, b) + d(b[j], b, a) - 2*w[a[i]][b[j]]
				if gain > eps {
					a[i], b[j] = b[j], a[i]
					improved = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return a, b
}

// spanningLinks builds a degree-bounded spanning tree over the k clusters
// maximizing the bandwidth carried on tree links (Prim-style greedy: grow
// from cluster 0, always attaching the non-tree cluster whose connection
// to a degree-feasible tree cluster has the largest bandwidth; ties break
// toward lower indices). With maxRadix >= 2 a feasible attachment always
// exists: a t-vertex tree has total degree 2(t-1) < 2t, so some tree
// vertex is below any bound of at least 2.
func spanningLinks(cw [][]float64, maxRadix int) (links [][2]int, deg []int) {
	k := len(cw)
	deg = make([]int, k)
	inTree := make([]bool, k)
	inTree[0] = true
	for t := 1; t < k; t++ {
		bu, bv, best := -1, -1, -1.0
		for u := 0; u < k; u++ {
			if !inTree[u] || deg[u] >= maxRadix {
				continue
			}
			for v := 0; v < k; v++ {
				if inTree[v] {
					continue
				}
				if cw[u][v] > best {
					bu, bv, best = u, v, cw[u][v]
				}
			}
		}
		links = append(links, [2]int{bu, bv})
		deg[bu]++
		deg[bv]++
		inTree[bv] = true
	}
	return links, deg
}
