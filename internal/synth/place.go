package synth

import (
	"math"
	"sort"

	"sunmap/internal/graph"
)

// commMatrix returns the symmetric core-to-core bandwidth matrix
// m[i][j] = m[j][i] = total MB/s exchanged between cores i and j.
func commMatrix(g *graph.CoreGraph) [][]float64 {
	n := g.NumCores()
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for _, e := range g.Edges() {
		m[e.From][e.To] += e.BandwidthMBps
		m[e.To][e.From] += e.BandwidthMBps
	}
	return m
}

// gridShape returns the squarest rows x cols grid with at least n slots
// (rows <= cols), the shape the mesh-derived generators build on.
func gridShape(n int) (rows, cols int) {
	rows = int(math.Sqrt(float64(n)))
	if rows < 1 {
		rows = 1
	}
	cols = (n + rows - 1) / rows
	return rows, cols
}

// placeCores greedily assigns cores to router slots, mirroring the mapping
// package's initial placement: the core with the largest communication
// volume takes the seed slot; then, repeatedly, the unplaced core
// communicating most with placed cores takes the free slot minimizing its
// bandwidth-weighted distance to its placed communicators. dist measures
// slot-to-slot distance in the target router graph. The result seeds the
// usage profile the trimming generators delete links against — the mapper
// later re-derives its own assignment on the finished topology.
func placeCores(g *graph.CoreGraph, nSlots, seedSlot int, dist func(a, b int) int) []int {
	n := g.NumCores()
	w := commMatrix(g)
	place := make([]int, n)
	for i := range place {
		place[i] = -1
	}
	free := make([]bool, nSlots)
	for s := range free {
		free[s] = true
	}

	seed := 0
	for i := 1; i < n; i++ {
		if g.CommVolume(i) > g.CommVolume(seed) {
			seed = i
		}
	}
	place[seed] = seedSlot
	free[seedSlot] = false

	for placed := 1; placed < n; placed++ {
		next, nextComm := -1, -1.0
		for i := 0; i < n; i++ {
			if place[i] != -1 {
				continue
			}
			var c float64
			for j := 0; j < n; j++ {
				if place[j] != -1 {
					c += w[i][j]
				}
			}
			if c > nextComm || (c == nextComm && next != -1 && g.CommVolume(i) > g.CommVolume(next)) {
				next = i
				nextComm = c
			}
		}
		bestSlot, bestCost := -1, math.Inf(1)
		for s := 0; s < nSlots; s++ {
			if !free[s] {
				continue
			}
			var cost float64
			for j := 0; j < n; j++ {
				if place[j] == -1 || w[next][j] == 0 {
					continue
				}
				cost += w[next][j] * float64(dist(s, place[j]))
			}
			if cost < bestCost {
				bestCost = cost
				bestSlot = s
			}
		}
		place[next] = bestSlot
		free[bestSlot] = false
	}
	return place
}

// linkKey canonicalizes an undirected router pair.
func linkKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// connectedWithout reports whether the undirected graph over n routers,
// given by the kept links, is connected. The trimming generators call it
// before committing each link removal.
func connectedWithout(n int, links map[[2]int]bool) bool {
	if n == 0 {
		return false
	}
	adj := make([][]int, n)
	for l := range links {
		adj[l[0]] = append(adj[l[0]], l[1])
		adj[l[1]] = append(adj[l[1]], l[0])
	}
	seen := make([]bool, n)
	seen[0] = true
	queue := []int{0}
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count == n
}

// sortedLinks returns the kept links in deterministic (u, v) order.
func sortedLinks(links map[[2]int]bool) [][2]int {
	out := make([][2]int, 0, len(links))
	for l := range links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
