package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("test_total", "a counter"); again != c {
		t.Fatal("re-registering a counter must return the same counter")
	}
	g := r.Gauge("test_depth", "a gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash_total", "c")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("clash_total", "g")
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 106 {
		t.Fatalf("sum = %g, want 106", got)
	}
	var buf bytes.Buffer
	writeHistogram(&buf, "h", nil, nil, h)
	want := strings.Join([]string{
		`h_bucket{le="1"} 2`,
		`h_bucket{le="2"} 3`,
		`h_bucket{le="4"} 4`,
		`h_bucket{le="+Inf"} 5`,
		`h_sum 106`,
		`h_count 5`,
	}, "\n") + "\n"
	if buf.String() != want {
		t.Fatalf("histogram exposition:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestWritePrometheusDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	// Register out of name order; exposition must sort.
	r.Counter("zzz_total", "last")
	vec := r.CounterVec("mid_total", "labeled", "op", "outcome")
	vec.With("select", "ok").Add(3)
	vec.With("map", "error").Inc()
	r.GaugeFunc("aaa_depth", "first", func() float64 { return 1.5 })

	var a, b bytes.Buffer
	r.WritePrometheus(&a)
	r.WritePrometheus(&b)
	if a.String() != b.String() {
		t.Fatal("two scrapes of an idle registry must be byte-identical")
	}
	out := a.String()
	ia := strings.Index(out, "aaa_depth")
	im := strings.Index(out, "mid_total")
	iz := strings.Index(out, "zzz_total")
	if ia < 0 || im < 0 || iz < 0 || !(ia < im && im < iz) {
		t.Fatalf("families not sorted by name:\n%s", out)
	}
	for _, want := range []string{
		"# TYPE aaa_depth gauge",
		"aaa_depth 1.5",
		`mid_total{op="map",outcome="error"} 1`,
		`mid_total{op="select",outcome="ok"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	got := labelString([]string{"msg"}, []string{"a\"b\\c\nd"})
	want := `{msg="a\"b\\c\nd"}`
	if got != want {
		t.Fatalf("labelString = %s, want %s", got, want)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	sp := r.Start(StageSelect)
	sp.End()
	r.CacheHit()
	r.CacheMiss()
	r.TryAcquire(true)
	r.BlockedWait(time.Second)
	if ts := r.Snapshot(); len(ts.Stages) != 0 || ts.Blocked != 0 {
		t.Fatalf("nil recorder snapshot not empty: %+v", ts)
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("FromContext on a bare context must be nil")
	}
	if ctx := WithRecorder(context.Background(), nil); FromContext(ctx) != nil {
		t.Fatal("WithRecorder(nil) must keep the context recorder-free")
	}
}

func TestRecorderSnapshotStageOrder(t *testing.T) {
	r := NewRecorder()
	// Record stages in reverse order; the fold must come out in Stage order.
	for _, st := range []Stage{StageSearch, StageEvaluate, StageSelect} {
		sp := r.Start(st)
		sp.End()
	}
	r.CacheHit()
	r.TryAcquire(false)
	ts := r.Snapshot()
	var names []string
	for _, st := range ts.Stages {
		names = append(names, st.Stage)
	}
	want := []string{"select", "search", "evaluate"}
	if len(names) != len(want) {
		t.Fatalf("stages = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("stages = %v, want %v", names, want)
		}
	}
	if ts.CacheHits != 1 || ts.TryMisses != 1 {
		t.Fatalf("counters = %+v", ts)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	ctx := WithRecorder(context.Background(), r)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := FromContext(ctx)
			for i := 0; i < per; i++ {
				sp := rec.Start(StageEvaluate)
				rec.CacheMiss()
				rec.TryAcquire(i%2 == 0)
				sp.End()
			}
		}()
	}
	wg.Wait()
	ts := r.Snapshot()
	if len(ts.Stages) != 1 || ts.Stages[0].Count != workers*per {
		t.Fatalf("snapshot = %+v, want %d evaluate spans", ts, workers*per)
	}
	if ts.CacheMisses != workers*per || ts.TryHits != workers*per/2 {
		t.Fatalf("counters = %+v", ts)
	}
}

func TestRecorderCollector(t *testing.T) {
	r := NewRegistry()
	rec := NewRecorder()
	sp := rec.Start(StageSelect)
	sp.End()
	r.RegisterCollector(rec)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE sunmap_span_seconds_total counter",
		`sunmap_span_count_total{stage="select"} 1`,
		`sunmap_span_count_total{stage="journal-append"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("collector exposition missing %q:\n%s", want, out)
		}
	}
}

func TestNextReqID(t *testing.T) {
	a, b := NextReqID(), NextReqID()
	if a == b || !strings.HasPrefix(a, "r-") {
		t.Fatalf("req ids: %q then %q", a, b)
	}
}

func TestLoggerDiscard(t *testing.T) {
	lg := NewLogger(nil, 0)
	if lg.Enabled(context.Background(), 0) {
		t.Fatal("nil-writer logger must be disabled")
	}
	var buf bytes.Buffer
	lg = NewLogger(&buf, 0)
	lg.Info("hello", KeyReqID, "r-1")
	if !strings.Contains(buf.String(), "req=r-1") {
		t.Fatalf("log line missing req field: %q", buf.String())
	}
}
