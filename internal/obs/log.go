package obs

import (
	"io"
	"log/slog"
	"strconv"
	"sync/atomic"
)

// Logging: one slog construction shared by serve, jobs and the CLI, so
// every diagnostic line carries the same shape — a level, a message,
// and correlation fields (request id at the HTTP edge, job id in the
// worker pool) that let a journal record be tied back to the request
// that submitted it.

// Correlation field keys. Producers and consumers agree on these
// strings, so keep them stable.
const (
	KeyReqID = "req"
	KeyJobID = "job"
	KeyOp    = "op"
)

// NewLogger builds the standard text logger writing to w at the given
// level. A nil writer yields a disabled logger (all records discarded),
// which is the zero-cost default for libraries whose caller didn't ask
// for logging.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	if w == nil {
		return Discard()
	}
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// Discard returns a logger that drops every record without formatting
// it. Enabled() is false at all levels, so callers' slog.Info sites
// skip attribute evaluation entirely.
func Discard() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}

// reqSeq numbers requests process-wide; see NextReqID.
var reqSeq atomic.Uint64

// NextReqID returns a fresh request-correlation id ("r-1", "r-2", ...).
// Ids are unique within a process run and cheap to mint — a counter,
// not a UUID — because their job is correlating one request's log
// lines, metrics, and journal records, not global uniqueness.
func NextReqID() string {
	return "r-" + strconv.FormatUint(reqSeq.Add(1), 10)
}
