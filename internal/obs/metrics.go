package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Inc and Add are single
// atomic operations — safe on hot paths, allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Observe is lock-free: one
// atomic bucket increment, one atomic count increment, and a CAS loop
// folding the observation into the float64-bits sum.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf bucket is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits accumulator
}

// DurationBuckets is the default latency bucketing: 100µs to 60s in
// roughly exponential steps, wide enough for both the µs-scale mapping
// evaluations and multi-second search jobs.
var DurationBuckets = []float64{
	0.0001, 0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60,
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DurationBuckets
	}
	b := append([]float64(nil), buckets...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSeconds records a duration sample in seconds, the exposition
// unit every *_seconds histogram uses.
func (h *Histogram) ObserveSeconds(nanos int64) {
	h.Observe(float64(nanos) / 1e9)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metricKind discriminates exposition TYPE lines.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindFunc // callback-backed gauge or counter
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// family is one registered metric name: either a single unlabeled
// metric or a vec of labeled children.
type family struct {
	name   string
	help   string
	kind   metricKind
	typstr string // overrides kind.String() when set (counter funcs)

	// Exactly one of the following is populated.
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64

	// Vec state: label names plus labeled children.
	labels   []string
	mu       sync.Mutex
	children map[string]*child
}

type child struct {
	labelValues []string
	counter     *Counter
	hist        *Histogram
}

// Collector is the escape hatch for composite sources (the span
// Recorder): WriteMetrics appends fully formed exposition lines. A
// Collector must emit deterministically ordered, well-formed families
// whose names do not collide with registered ones.
type Collector interface {
	WriteMetrics(w io.Writer)
}

// Registry is a set of named metrics with Prometheus text exposition.
// Registration is get-or-create by name: asking twice for the same
// counter returns the same counter, so package-level instrumentation in
// engine/pool/jobs can share the process-wide Default registry without
// double-registration errors. A name registered as one kind cannot be
// re-registered as another (that panics — a programming error).
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	collectors []Collector
}

// Default is the process-wide registry: monotone rates and totals that
// aggregate naturally across sessions and servers. Instantaneous
// per-server state (queue depths, cache sizes) belongs in a per-server
// Registry instead, so concurrent servers in one process don't fight
// over one gauge.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind metricKind, mk func() *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, kind, f.kind))
		}
		return f
	}
	f := mk()
	f.name, f.help, f.kind = name, help, kind
	r.families[name] = f
	return f
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, kindCounter, func() *family {
		return &family{counter: &Counter{}}
	})
	return f.counter
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, kindGauge, func() *family {
		return &family{gauge: &Gauge{}}
	})
	return f.gauge
}

// GaugeFunc registers a callback-backed gauge: fn is evaluated at
// scrape time. It must be fast and must never block on work the scrape
// itself could be queued behind (admission pools, job execution).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.family(name, help, kindFunc, func() *family {
		return &family{fn: fn, typstr: "gauge"}
	})
}

// CounterFunc registers a callback-backed monotone total, for counters
// whose source of truth lives elsewhere (e.g. the serve layer's shed
// count). The same scrape-time constraints as GaugeFunc apply.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.family(name, help, kindFunc, func() *family {
		return &family{fn: fn, typstr: "counter"}
	})
}

// Histogram returns the named histogram, creating it on first use with
// the given upper bounds (nil selects DurationBuckets). Bounds are
// fixed at first registration.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.family(name, help, kindHistogram, func() *family {
		return &family{hist: newHistogram(buckets)}
	})
	return f.hist
}

// CounterVec returns the named labeled-counter family. Label names —
// like every label argument in the tree — must be compile-time
// constants; the obslabel analyzer enforces it, which is what bounds
// exposition cardinality at build time.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := r.family(name, help, kindCounter, func() *family {
		return &family{labels: append([]string(nil), labels...), children: make(map[string]*child)}
	})
	return &CounterVec{f: f}
}

// HistogramVec returns the named labeled-histogram family (nil buckets
// selects DurationBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	f := r.family(name, help, kindHistogram, func() *family {
		return &family{
			labels:   append([]string(nil), labels...),
			children: make(map[string]*child),
			hist:     newHistogram(buckets), // bucket template for children
		}
	})
	return &HistogramVec{f: f}
}

// RegisterCollector appends a raw exposition source (the span
// Recorder). Collectors are written after every registered family, in
// registration order.
func (r *Registry) RegisterCollector(c Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, c)
}

// CounterVec is a labeled counter family.
type CounterVec struct {
	f *family
}

// With returns the child counter for the given label values, creating
// it on first use. Resolve children once, at package or server init —
// never per request — and pass only compile-time-constant values
// (obslabel rejects anything else).
func (v *CounterVec) With(values ...string) *Counter {
	c := v.f.child(values)
	return c.counter
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct {
	f *family
}

// With returns the child histogram for the given label values, creating
// it on first use. The same resolve-once, constants-only contract as
// CounterVec.With applies.
func (v *HistogramVec) With(values ...string) *Histogram {
	c := v.f.child(values)
	return c.hist
}

func (f *family) child(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := &child{labelValues: append([]string(nil), values...)}
	switch f.kind {
	case kindCounter:
		c.counter = &Counter{}
	case kindHistogram:
		c.hist = newHistogram(f.hist.bounds)
	}
	f.children[key] = c
	return c
}

// WritePrometheus writes every registered metric in Prometheus text
// exposition format (families sorted by name, children sorted by label
// values), then every collector. The output order is deterministic for
// a fixed metric population.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	collectors := append([]Collector(nil), r.collectors...)
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		f.write(w)
	}
	for _, c := range collectors {
		c.WriteMetrics(w)
	}
}

// WriteAll writes several registries' metrics as one exposition
// document — the /metrics endpoint merging the process-wide Default
// with a server's own gauges.
func WriteAll(w io.Writer, regs ...*Registry) {
	for _, r := range regs {
		r.WritePrometheus(w)
	}
}

func (f *family) write(w io.Writer) {
	typ := f.kind.String()
	if f.typstr != "" {
		typ = f.typstr
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, typ)
	switch {
	case f.counter != nil:
		fmt.Fprintf(w, "%s %d\n", f.name, f.counter.Value())
	case f.gauge != nil:
		fmt.Fprintf(w, "%s %d\n", f.name, f.gauge.Value())
	case f.fn != nil:
		fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.fn()))
	case f.children != nil:
		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		kids := make([]*child, 0, len(keys))
		for _, k := range keys {
			kids = append(kids, f.children[k])
		}
		f.mu.Unlock()
		for _, c := range kids {
			labels := labelString(f.labels, c.labelValues)
			switch {
			case c.counter != nil:
				fmt.Fprintf(w, "%s%s %d\n", f.name, labels, c.counter.Value())
			case c.hist != nil:
				writeHistogram(w, f.name, f.labels, c.labelValues, c.hist)
			}
		}
	case f.hist != nil:
		writeHistogram(w, f.name, nil, nil, f.hist)
	}
}

func writeHistogram(w io.Writer, name string, labels, values []string, h *Histogram) {
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(append(labels, "le"), append(values, formatFloat(b))), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(append(labels, "le"), append(values, "+Inf")), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labelString(labels, values), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(labels, values), h.Count())
}

func labelString(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
