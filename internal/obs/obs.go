// Package obs is SUNMAP's observability core: the one place the rest of
// the pipeline reaches for metrics, spans, structured logging, and the
// wall clock. It is stdlib-only and designed around the repository's two
// non-negotiables:
//
//   - Free when disabled, near-free when enabled. Span recording hangs
//     off a *Recorder threaded through context; a nil recorder reduces
//     every call to a pointer check. Metric hot paths are single atomic
//     operations on pre-resolved counters — no maps, no locks, no
//     allocation — so the alloc-budget gates (TestSwapEvalAllocFree and
//     friends) hold with instrumentation compiled in.
//
//   - Deterministic folds stay deterministic. The recorder aggregates
//     into a fixed stage table folded in stage order, metric exposition
//     sorts every family and label set, and the wall clock is read only
//     through the audited Now/Since pair — the single //sunmap:wallclock
//     source the detorder analyzer admits inside the deterministic
//     packages. Nothing observable in a Report ever derives from a span.
//
// The three subsystems:
//
//   - metrics.go: a Prometheus-text-format registry (counters, gauges,
//     histograms, fixed-label vecs). Process-wide rates live in Default;
//     per-server gauges live in a per-Server Registry the serve layer
//     owns. The obslabel analyzer holds every label argument to a
//     compile-time constant, so label cardinality is bounded at build
//     time.
//
//   - span.go: hierarchical pipeline stages (session op → engine
//     evaluate → limiter wait → ...) recorded into a lock-free
//     stage-indexed Recorder, threaded via context by WithRecorder.
//
//   - log.go: the leveled slog construction shared by serve, jobs and
//     the CLI, with request-id/job-id correlation fields.
package obs

import "time"

// Now is the audited wall-clock read for the deterministic packages:
// code under core/engine/fault/search/serve/jobs calls obs.Now instead
// of time.Now, so every clock read in a deterministic fold is
// attributable to this one reviewed site. Span boundaries and latency
// metrics are its only consumers; nothing report-visible may derive
// from it.
//
//sunmap:wallclock — the single audited clock source (see detorder)
func Now() time.Time { return time.Now() }

// Since returns the elapsed time since start, measured against the
// monotonic reading Now captured.
func Since(start time.Time) time.Duration { return time.Since(start) }
