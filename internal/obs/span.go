package obs

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Stage identifies one instrumented pipeline stage. The table is fixed
// at compile time: spans aggregate into a flat per-stage array indexed
// by Stage, which is what makes recording lock-free (two atomic adds)
// and the fold deterministic (iterate in Stage order, never map order).
type Stage uint8

const (
	// Session operations, one per request op.
	StageSelect Stage = iota
	StageMap
	StageRoutingSweep
	StagePareto
	StageSimulate
	StageGenerate
	StageFaultSweep
	StageSearch
	// Engine internals.
	StageEvaluate    // one mapping evaluation (cache misses only)
	StageLimiterWait // blocking admission wait ahead of an evaluation
	// Durability layer.
	StageJobRun        // one async job execution
	StageJournalAppend // one fsync'd journal append

	numStages
)

var stageNames = [numStages]string{
	StageSelect:        "select",
	StageMap:           "map",
	StageRoutingSweep:  "routing-sweep",
	StagePareto:        "pareto",
	StageSimulate:      "simulate",
	StageGenerate:      "generate",
	StageFaultSweep:    "fault-sweep",
	StageSearch:        "search",
	StageEvaluate:      "evaluate",
	StageLimiterWait:   "limiter-wait",
	StageJobRun:        "job-run",
	StageJournalAppend: "journal-append",
}

// String returns the stage's exposition name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage-%d", uint8(s))
}

// stageStats is one stage's aggregate. Padded out to its own cache line
// so concurrent workers recording different stages never false-share.
type stageStats struct {
	count atomic.Uint64
	nanos atomic.Int64
	_     [48]byte
}

// Recorder aggregates span durations and pipeline counters. All methods
// are lock-free (plain atomics), nil-safe (a nil recorder is the
// disabled fast path — every operation reduces to one branch), and safe
// for concurrent use from any number of worker goroutines. Snapshot is
// the deterministic fold: stages in Stage order, counters in a fixed
// struct — byte-identical output for identical activity regardless of
// the parallelism that produced it.
type Recorder struct {
	stats [numStages]stageStats

	// Pipeline counters outside the duration table.
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	tryHits     atomic.Uint64
	tryMisses   atomic.Uint64
	blocked     atomic.Uint64
	waitNanos   atomic.Int64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Span is one in-flight stage timing. The zero Span (from a nil
// recorder) is inert: End on it is a single branch.
type Span struct {
	r     *Recorder
	stage Stage
	start time.Time
}

// Start opens a span for the stage. On a nil recorder it returns the
// inert zero Span without reading the clock.
func (r *Recorder) Start(stage Stage) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, stage: stage, start: Now()}
}

// End closes the span, folding its duration into the stage aggregate.
func (s Span) End() {
	if s.r == nil {
		return
	}
	st := &s.r.stats[s.stage]
	st.count.Add(1)
	st.nanos.Add(int64(Since(s.start)))
}

// Observe folds one externally timed duration into a stage — for call
// sites that already read the clock for their own reporting (the
// engine's per-job Elapsed) and shouldn't pay for a second span read.
func (r *Recorder) Observe(stage Stage, d time.Duration) {
	if r == nil {
		return
	}
	st := &r.stats[stage]
	st.count.Add(1)
	st.nanos.Add(int64(d))
}

// CacheHit / CacheMiss record one evaluation-cache lookup outcome.
func (r *Recorder) CacheHit() {
	if r != nil {
		r.cacheHits.Add(1)
	}
}

// CacheMiss records one evaluation-cache miss.
func (r *Recorder) CacheMiss() {
	if r != nil {
		r.cacheMisses.Add(1)
	}
}

// TryAcquire records one opportunistic limiter poll outcome — the
// signal that distinguishes "parallel but starved" (misses dominate)
// from "never asked" (no samples at all).
func (r *Recorder) TryAcquire(hit bool) {
	if r == nil {
		return
	}
	if hit {
		r.tryHits.Add(1)
	} else {
		r.tryMisses.Add(1)
	}
}

// BlockedWait records one blocking limiter acquisition that had to
// queue, and how long it waited. The wait also lands in the
// StageLimiterWait row of the stage table, so FormatSnapshot shows
// admission queueing next to the work it delayed.
func (r *Recorder) BlockedWait(d time.Duration) {
	if r == nil {
		return
	}
	r.blocked.Add(1)
	r.waitNanos.Add(int64(d))
	st := &r.stats[StageLimiterWait]
	st.count.Add(1)
	st.nanos.Add(int64(d))
}

// StageSnapshot is one stage's folded aggregate.
type StageSnapshot struct {
	Stage string `json:"stage"`
	Count uint64 `json:"count"`
	Nanos int64  `json:"nanos"`
}

// TraceSnapshot is a recorder's deterministic fold: stages in Stage
// order (zero-count stages omitted) plus the pipeline counters.
type TraceSnapshot struct {
	Stages      []StageSnapshot `json:"stages"`
	CacheHits   uint64          `json:"cache_hits"`
	CacheMisses uint64          `json:"cache_misses"`
	TryHits     uint64          `json:"try_hits"`
	TryMisses   uint64          `json:"try_misses"`
	Blocked     uint64          `json:"blocked"`
	WaitNanos   int64           `json:"wait_nanos"`
}

// Snapshot folds the recorder. Safe to call while spans are still being
// recorded; the result is a consistent-enough point-in-time view (each
// stage's count and nanos are read independently).
func (r *Recorder) Snapshot() TraceSnapshot {
	var ts TraceSnapshot
	if r == nil {
		return ts
	}
	for st := Stage(0); st < numStages; st++ {
		n := r.stats[st].count.Load()
		if n == 0 {
			continue
		}
		ts.Stages = append(ts.Stages, StageSnapshot{
			Stage: st.String(),
			Count: n,
			Nanos: r.stats[st].nanos.Load(),
		})
	}
	ts.CacheHits = r.cacheHits.Load()
	ts.CacheMisses = r.cacheMisses.Load()
	ts.TryHits = r.tryHits.Load()
	ts.TryMisses = r.tryMisses.Load()
	ts.Blocked = r.blocked.Load()
	ts.WaitNanos = r.waitNanos.Load()
	return ts
}

// StageNanos returns one stage's accumulated nanoseconds (0 on nil).
func (r *Recorder) StageNanos(stage Stage) int64 {
	if r == nil {
		return 0
	}
	return r.stats[stage].nanos.Load()
}

// WaitSummary returns the blocking-acquisition count and total wait —
// the bench harness's limiter-wait summary fields.
func (r *Recorder) WaitSummary() (blocked uint64, wait time.Duration) {
	if r == nil {
		return 0, 0
	}
	return r.blocked.Load(), time.Duration(r.waitNanos.Load())
}

// WriteMetrics exposes the recorder as Prometheus text, implementing
// Collector: span totals by stage plus the pipeline counters. Stage
// label values come from the fixed stageNames table — compile-time
// bounded cardinality by construction.
func (r *Recorder) WriteMetrics(w io.Writer) {
	fmt.Fprint(w, "# HELP sunmap_span_seconds_total accumulated span time by pipeline stage\n# TYPE sunmap_span_seconds_total counter\n")
	for st := Stage(0); st < numStages; st++ {
		fmt.Fprintf(w, "sunmap_span_seconds_total{stage=%q} %s\n", st.String(), formatFloat(float64(r.stats[st].nanos.Load())/1e9))
	}
	fmt.Fprint(w, "# HELP sunmap_span_count_total spans recorded by pipeline stage\n# TYPE sunmap_span_count_total counter\n")
	for st := Stage(0); st < numStages; st++ {
		fmt.Fprintf(w, "sunmap_span_count_total{stage=%q} %d\n", st.String(), r.stats[st].count.Load())
	}
}

// ctxKey carries the recorder through context.
type ctxKey struct{}

// WithRecorder binds a recorder into the context. Pipeline stages below
// (session ops, the engine, the sweepers) pick it up with FromContext;
// a context without one records nothing at zero cost.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext returns the bound recorder, or nil — the disabled path.
func FromContext(ctx context.Context) *Recorder {
	r, _ := ctx.Value(ctxKey{}).(*Recorder)
	return r
}

// FormatSnapshot renders a human-readable per-stage table (the CLI's
// -trace output). Rows follow snapshot order, which is Stage order.
func FormatSnapshot(w io.Writer, ts TraceSnapshot) {
	fmt.Fprintf(w, "%-16s %10s %14s %14s\n", "stage", "count", "total", "mean")
	for _, st := range ts.Stages {
		total := time.Duration(st.Nanos)
		mean := time.Duration(0)
		if st.Count > 0 {
			mean = total / time.Duration(st.Count)
		}
		fmt.Fprintf(w, "%-16s %10d %14s %14s\n", st.Stage, st.Count, total.Round(time.Microsecond), mean.Round(time.Microsecond))
	}
	fmt.Fprintf(w, "cache hits/misses: %d/%d; limiter try hit/miss: %d/%d; blocked %d for %s\n",
		ts.CacheHits, ts.CacheMisses, ts.TryHits, ts.TryMisses,
		ts.Blocked, time.Duration(ts.WaitNanos).Round(time.Microsecond))
}
