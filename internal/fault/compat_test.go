package fault

// Test-only ctx-less entry point: the shipped package exposes only
// SweepContext (ctxdiscipline forbids library code from minting a
// context); the in-package tests keep the shorter sequential spelling.

import (
	"context"

	"sunmap/internal/graph"
	"sunmap/internal/route"
	"sunmap/internal/topology"
)

// Sweep evaluates every scenario sequentially under a background context.
func Sweep(topo topology.Topology, assign []int, comms []graph.Commodity, opts route.Options, scenarios []Scenario, exhaustive bool) (*Report, error) {
	return SweepContext(context.Background(), topo, assign, comms, opts, scenarios, exhaustive, 1, nil)
}
