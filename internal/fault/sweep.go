package fault

import (
	"context"
	"fmt"
	"runtime"

	"sunmap/internal/graph"
	"sunmap/internal/pool"
	"sunmap/internal/route"
	"sunmap/internal/topology"
)

// Degraded lowers the routing options a design was optimized under onto
// the degraded-mode discipline a survivability sweep reroutes with:
// single-path congestion-aware routing (MP) for the single-path
// functions — oblivious DO cannot route around a fault — and traffic
// splitting across all surviving paths (SA) for the splitting ones,
// since a fault may cut the minimum-hop DAG SM is confined to. The
// quadrant restriction is lifted (with links down, surviving paths need
// not stay inside it) and only load aggregates are collected; capacity
// and chunk granularity carry over unchanged.
func Degraded(o route.Options) route.Options {
	switch o.Function {
	case route.SplitMin, route.SplitAll:
		o.Function = route.SplitAll
	default:
		o.Function = route.MinPath
	}
	o.DisableQuadrant = true
	o.LoadsOnly = true
	o.DownLinks = nil
	return o
}

// Outcome is the rerouted state of one design under one failure
// scenario. The zero value is a disconnected outcome.
type Outcome struct {
	// Connected reports every commodity found a surviving route.
	Connected bool
	// Feasible reports the rerouted loads fit the link capacity
	// (always true for connected outcomes when capacity is
	// unconstrained).
	Feasible bool
	// MaxLinkLoadMBps is the rerouted maximum link load.
	MaxLinkLoadMBps float64
	// AvgHops is the rerouted bandwidth-weighted mean hop count.
	AvgHops float64
}

// Evaluator reroutes one mapped design around failure masks. It owns a
// route.Router plus mask and result buffers, so steady-state Eval calls
// on connected scenarios allocate nothing. An Evaluator is
// single-goroutine state; SweepContext hands each worker its own.
type Evaluator struct {
	topo   topology.Topology
	assign []int
	comms  []graph.Commodity
	opts   route.Options

	rt       *route.Router
	res      route.Result
	mask     []bool
	dead     []bool
	baseline Outcome
}

// NewEvaluator builds an evaluator for one design point and routes the
// fault-free baseline, validating that the assignment and commodities
// route at all under the (typically Degraded) options.
func NewEvaluator(topo topology.Topology, assign []int, comms []graph.Commodity, opts route.Options) (*Evaluator, error) {
	e := &Evaluator{
		topo:   topo,
		assign: append([]int(nil), assign...),
		comms:  comms,
		opts:   opts,
		rt:     route.NewRouter(),
		mask:   make([]bool, len(topo.Links())),
		dead:   make([]bool, topo.NumRouters()),
	}
	e.opts.LoadsOnly = true
	e.opts.DownLinks = nil
	base, err := e.eval(Scenario{})
	if err != nil {
		return nil, fmt.Errorf("fault: baseline routing on %s: %w", topo.Name(), err)
	}
	e.baseline = base
	return e, nil
}

// Baseline returns the fault-free outcome the degradation metrics are
// measured against.
func (e *Evaluator) Baseline() Outcome { return e.baseline }

// Eval reroutes every commodity around the scenario's failure mask and
// returns the degraded outcome; scenarios that cut a commodity off come
// back with Connected unset.
func (e *Evaluator) Eval(s Scenario) Outcome {
	out, _ := e.eval(s)
	return out
}

// eval is Eval with the routing error preserved (NewEvaluator surfaces
// it for the baseline; fault scenarios fold it into a disconnected
// outcome, since "no surviving path" is a result, not a failure).
func (e *Evaluator) eval(s Scenario) (Outcome, error) {
	for i := range e.mask {
		e.mask[i] = false
	}
	for _, id := range s.Links {
		e.mask[id] = true
	}
	for i := range e.dead {
		e.dead[i] = false
	}
	for _, r := range s.Switches {
		e.dead[r] = true
	}
	// A failed switch severs its attached cores outright — no rerouting
	// can recover a commodity whose endpoint router is gone.
	if len(s.Switches) > 0 {
		for _, c := range e.comms {
			if e.dead[e.topo.InjectRouter(e.assign[c.Src])] || e.dead[e.topo.EjectRouter(e.assign[c.Dst])] {
				return Outcome{}, fmt.Errorf("fault: commodity %d endpoint switch failed", c.ID)
			}
		}
	}
	opts := e.opts
	opts.DownLinks = e.mask
	if err := e.rt.RouteInto(&e.res, e.topo, e.assign, e.comms, opts); err != nil {
		return Outcome{}, err
	}
	return Outcome{
		Connected:       true,
		Feasible:        e.res.Feasible,
		MaxLinkLoadMBps: e.res.MaxLinkLoad,
		AvgHops:         e.res.AvgHops(),
	}, nil
}

// Report aggregates a sweep over one design point's failure scenarios.
type Report struct {
	// Scenarios is the evaluated scenario count; Exhaustive marks a
	// complete k-subset enumeration (vs a Monte Carlo draw).
	Scenarios  int
	Exhaustive bool
	// Connected counts scenarios under which every commodity still
	// routes; Feasible counts those additionally within link capacity.
	Connected int
	Feasible  int
	// Baseline is the fault-free outcome under the same (degraded)
	// routing options, the yardstick for the degradation metrics below.
	Baseline Outcome
	// Worst-case and expected degradation over the connected scenarios
	// (disconnected scenarios have no meaningful loads; their share is
	// visible through Connected/Scenarios instead).
	WorstMaxLinkLoadMBps float64
	ExpMaxLinkLoadMBps   float64
	WorstAvgHops         float64
	ExpAvgHops           float64
	// WorstCase is the connected scenario with the highest rerouted max
	// link load (first in enumeration order on ties); Disconnecting is
	// the first scenario that cut a commodity off, nil when none did.
	WorstCase     Scenario
	Disconnecting *Scenario
}

// Survivability is the fraction of scenarios the design survives:
// connected and bandwidth-feasible. It is the reliability score
// selection and Pareto exploration consume.
func (r *Report) Survivability() float64 {
	if r.Scenarios == 0 {
		return 1
	}
	return float64(r.Feasible) / float64(r.Scenarios)
}

// ConnectedFrac is the fraction of scenarios with every commodity still
// routable, ignoring the capacity check.
func (r *Report) ConnectedFrac() float64 {
	if r.Scenarios == 0 {
		return 1
	}
	return float64(r.Connected) / float64(r.Scenarios)
}

// Sweep evaluates every scenario sequentially; see SweepContext.
func Sweep(topo topology.Topology, assign []int, comms []graph.Commodity, opts route.Options, scenarios []Scenario, exhaustive bool) (*Report, error) {
	return SweepContext(context.Background(), topo, assign, comms, opts, scenarios, exhaustive, 1, nil)
}

// SweepContext evaluates every failure scenario of one design point and
// folds the outcomes into a Report. Scenarios fan out over up to
// parallelism workers (0 selects GOMAXPROCS); each worker owns its own
// Evaluator, holds one slot of the shared admission limiter while it
// works, and writes outcomes at their scenario index, so the folded
// report is byte-identical at every parallelism setting. ctx aborts the
// sweep between scenario evaluations.
func SweepContext(ctx context.Context, topo topology.Topology, assign []int, comms []graph.Commodity, opts route.Options, scenarios []Scenario, exhaustive bool, parallelism int, limit *pool.Limiter) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ev, err := NewEvaluator(topo, assign, comms, opts)
	if err != nil {
		return nil, err
	}
	outcomes := make([]Outcome, len(scenarios))
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	if workers <= 1 {
		if err := evalChunk(ctx, ev, scenarios, outcomes, 0, len(scenarios)); err != nil {
			return nil, err
		}
	} else {
		errs := make([]error, workers)
		pool.ForEach(ctx, workers, workers, func(w int) {
			if err := limit.Acquire(ctx); err != nil {
				return // canceled while queued; ctx.Err() reported below
			}
			defer limit.Release()
			wev := ev
			if w > 0 {
				// Worker 0 reuses the validated evaluator; the others
				// build their own (evaluators are single-goroutine).
				if wev, errs[w] = NewEvaluator(topo, assign, comms, opts); errs[w] != nil {
					return
				}
			}
			lo, hi := w*len(scenarios)/workers, (w+1)*len(scenarios)/workers
			errs[w] = evalChunk(ctx, wev, scenarios, outcomes, lo, hi)
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return fold(ev.Baseline(), scenarios, outcomes, exhaustive), nil
}

// evalChunk fills outcomes[lo:hi], checking the context between
// evaluations.
func evalChunk(ctx context.Context, ev *Evaluator, scenarios []Scenario, outcomes []Outcome, lo, hi int) error {
	for i := lo; i < hi; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		outcomes[i] = ev.Eval(scenarios[i])
	}
	return nil
}

// fold aggregates per-scenario outcomes in scenario order, so the
// floating-point sums never depend on worker scheduling.
func fold(baseline Outcome, scenarios []Scenario, outcomes []Outcome, exhaustive bool) *Report {
	rep := &Report{Scenarios: len(scenarios), Exhaustive: exhaustive, Baseline: baseline}
	worst := -1
	for i, o := range outcomes {
		if !o.Connected {
			if rep.Disconnecting == nil {
				s := scenarios[i]
				rep.Disconnecting = &s
			}
			continue
		}
		rep.Connected++
		if o.Feasible {
			rep.Feasible++
		}
		rep.ExpMaxLinkLoadMBps += o.MaxLinkLoadMBps
		rep.ExpAvgHops += o.AvgHops
		if worst == -1 || o.MaxLinkLoadMBps > rep.WorstMaxLinkLoadMBps {
			rep.WorstMaxLinkLoadMBps = o.MaxLinkLoadMBps
			worst = i
		}
		if o.AvgHops > rep.WorstAvgHops {
			rep.WorstAvgHops = o.AvgHops
		}
	}
	if rep.Connected > 0 {
		rep.ExpMaxLinkLoadMBps /= float64(rep.Connected)
		rep.ExpAvgHops /= float64(rep.Connected)
	}
	if worst >= 0 {
		rep.WorstCase = scenarios[worst]
	}
	return rep
}
