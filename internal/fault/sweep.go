package fault

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"sunmap/internal/graph"
	"sunmap/internal/pool"
	"sunmap/internal/route"
	"sunmap/internal/topology"
)

// Degraded lowers the routing options a design was optimized under onto
// the degraded-mode discipline a survivability sweep reroutes with:
// single-path congestion-aware routing (MP) for the single-path
// functions — oblivious DO cannot route around a fault — and traffic
// splitting across all surviving paths (SA) for the splitting ones,
// since a fault may cut the minimum-hop DAG SM is confined to. The
// quadrant restriction is lifted (with links down, surviving paths need
// not stay inside it) and only load aggregates are collected; capacity
// and chunk granularity carry over unchanged.
func Degraded(o route.Options) route.Options {
	switch o.Function {
	case route.SplitMin, route.SplitAll:
		o.Function = route.SplitAll
	default:
		o.Function = route.MinPath
	}
	o.DisableQuadrant = true
	o.LoadsOnly = true
	o.DownLinks = nil
	return o
}

// Outcome is the rerouted state of one design under one failure
// scenario. The zero value is a disconnected outcome.
type Outcome struct {
	// Connected reports every commodity found a surviving route.
	Connected bool
	// Feasible reports the rerouted loads fit the link capacity
	// (always true for connected outcomes when capacity is
	// unconstrained).
	Feasible bool
	// MaxLinkLoadMBps is the rerouted maximum link load.
	MaxLinkLoadMBps float64
	// AvgHops is the rerouted bandwidth-weighted mean hop count.
	AvgHops float64
}

// Evaluator reroutes one mapped design around failure masks. It owns a
// route.Router plus mask and result buffers, so steady-state Eval calls
// on connected scenarios allocate nothing. An Evaluator is
// single-goroutine state; SweepContext hands each worker its own.
type Evaluator struct {
	topo   topology.Topology
	assign []int
	comms  []graph.Commodity
	opts   route.Options

	rt       *route.Router
	res      route.Result
	mask     []bool
	dead     []bool
	baseline Outcome
}

// NewEvaluator builds an evaluator for one design point and routes the
// fault-free baseline, validating that the assignment and commodities
// route at all under the (typically Degraded) options.
func NewEvaluator(topo topology.Topology, assign []int, comms []graph.Commodity, opts route.Options) (*Evaluator, error) {
	e := &Evaluator{rt: route.NewRouter()}
	if err := e.bind(topo, assign, comms, opts); err != nil {
		return nil, err
	}
	return e, nil
}

// bind retargets a warm evaluator at a design point, reusing its mask,
// assignment and routing buffers, and re-routes the fault-free baseline —
// the reuse primitive a Sweeper calls once per sweep.
func (e *Evaluator) bind(topo topology.Topology, assign []int, comms []graph.Commodity, opts route.Options) error {
	e.topo = topo
	e.assign = append(e.assign[:0], assign...)
	e.comms = comms
	e.opts = opts
	e.opts.LoadsOnly = true
	e.opts.DownLinks = nil
	e.mask = resizeBools(e.mask, len(topo.Links()))
	e.dead = resizeBools(e.dead, topo.NumRouters())
	base, err := e.eval(Scenario{})
	if err != nil {
		return fmt.Errorf("fault: baseline routing on %s: %w", topo.Name(), err)
	}
	e.baseline = base
	return nil
}

// resizeBools resizes buf to n without zeroing (eval clears the masks it
// uses on every call).
func resizeBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}

// Baseline returns the fault-free outcome the degradation metrics are
// measured against.
func (e *Evaluator) Baseline() Outcome { return e.baseline }

// Eval reroutes every commodity around the scenario's failure mask and
// returns the degraded outcome; scenarios that cut a commodity off come
// back with Connected unset.
//
//sunmap:hotpath
func (e *Evaluator) Eval(s Scenario) Outcome {
	out, _ := e.eval(s)
	return out
}

// errEndpointSevered marks a scenario whose failed switch hosts a
// commodity endpoint — disconnected by construction, no rerouting needed.
var errEndpointSevered = errors.New("fault: commodity endpoint switch failed")

// eval is Eval with the routing error preserved (NewEvaluator surfaces
// it for the baseline; fault scenarios fold it into a disconnected
// outcome, since "no surviving path" is a result, not a failure).
func (e *Evaluator) eval(s Scenario) (Outcome, error) {
	for i := range e.mask {
		e.mask[i] = false
	}
	for _, id := range s.Links {
		e.mask[id] = true
	}
	for i := range e.dead {
		e.dead[i] = false
	}
	for _, r := range s.Switches {
		e.dead[r] = true
	}
	// A failed switch severs its attached cores outright — no rerouting
	// can recover a commodity whose endpoint router is gone. The error is
	// a shared sentinel: switch-failure sweeps hit this branch for a large
	// share of scenarios, and the steady-state loop must not allocate.
	if len(s.Switches) > 0 {
		for _, c := range e.comms {
			if e.dead[e.topo.InjectRouter(e.assign[c.Src])] || e.dead[e.topo.EjectRouter(e.assign[c.Dst])] {
				return Outcome{}, errEndpointSevered
			}
		}
	}
	opts := e.opts
	opts.DownLinks = e.mask
	if err := e.rt.RouteInto(&e.res, e.topo, e.assign, e.comms, opts); err != nil {
		return Outcome{}, err
	}
	return Outcome{
		Connected:       true,
		Feasible:        e.res.Feasible,
		MaxLinkLoadMBps: e.res.MaxLinkLoad,
		AvgHops:         e.res.AvgHops(),
	}, nil
}

// Report aggregates a sweep over one design point's failure scenarios.
type Report struct {
	// Scenarios is the evaluated scenario count; Exhaustive marks a
	// complete k-subset enumeration (vs a Monte Carlo draw).
	Scenarios  int
	Exhaustive bool
	// Connected counts scenarios under which every commodity still
	// routes; Feasible counts those additionally within link capacity.
	Connected int
	Feasible  int
	// Baseline is the fault-free outcome under the same (degraded)
	// routing options, the yardstick for the degradation metrics below.
	Baseline Outcome
	// Worst-case and expected degradation over the connected scenarios
	// (disconnected scenarios have no meaningful loads; their share is
	// visible through Connected/Scenarios instead).
	WorstMaxLinkLoadMBps float64
	ExpMaxLinkLoadMBps   float64
	WorstAvgHops         float64
	ExpAvgHops           float64
	// WorstCase is the connected scenario with the highest rerouted max
	// link load (first in enumeration order on ties); Disconnecting is
	// the first scenario that cut a commodity off, nil when none did.
	WorstCase     Scenario
	Disconnecting *Scenario
}

// Survivability is the fraction of scenarios the design survives:
// connected and bandwidth-feasible. It is the reliability score
// selection and Pareto exploration consume.
func (r *Report) Survivability() float64 {
	if r.Scenarios == 0 {
		return 1
	}
	return float64(r.Feasible) / float64(r.Scenarios)
}

// ConnectedFrac is the fraction of scenarios with every commodity still
// routable, ignoring the capacity check.
func (r *Report) ConnectedFrac() float64 {
	if r.Scenarios == 0 {
		return 1
	}
	return float64(r.Connected) / float64(r.Scenarios)
}

// SweepContext evaluates every failure scenario of one design point and
// folds the outcomes into a Report; see (*Sweeper).SweepContext for the
// admission and determinism contract. Callers sweeping many design
// points should hold a Sweeper instead and reuse its buffers.
func SweepContext(ctx context.Context, topo topology.Topology, assign []int, comms []graph.Commodity, opts route.Options, scenarios []Scenario, exhaustive bool, parallelism int, limit *pool.Limiter) (*Report, error) {
	return NewSweeper().SweepContext(ctx, topo, assign, comms, opts, scenarios, exhaustive, parallelism, limit)
}

// Sweeper owns the reusable state of repeated survivability sweeps: the
// calling goroutine's Evaluator and the index-addressed outcome buffer.
// Once warm, a sequential sweep's steady state allocates only the Report
// it returns (plus the rare disconnected-by-link reroute error). A
// Sweeper is single-goroutine state, like the Evaluator it wraps.
type Sweeper struct {
	ev       *Evaluator
	outcomes []Outcome
}

// NewSweeper returns an empty Sweeper; buffers grow on first use.
func NewSweeper() *Sweeper { return &Sweeper{} }

// SweepContext evaluates every failure scenario of one design point and
// folds the outcomes into a Report.
//
// Work distribution is an atomic next-scenario counter, so any worker
// count yields the same index-addressed outcomes and the sequential fold
// keeps the report byte-identical at every parallelism setting (0
// selects GOMAXPROCS). Worker 0 runs inline on the calling goroutine
// under whatever limiter slot the caller already holds; the extra
// workers are opportunistic — each polls limit.TryAcquire until a slot
// frees, the work runs out, or ctx is done, so a fully subscribed
// limiter never deadlocks on nested acquisition and blocking Acquire
// callers keep strict priority over the sweep's helpers. ctx aborts the
// sweep between scenario evaluations.
func (sw *Sweeper) SweepContext(ctx context.Context, topo topology.Topology, assign []int, comms []graph.Commodity, opts route.Options, scenarios []Scenario, exhaustive bool, parallelism int, limit *pool.Limiter) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if sw.ev == nil {
		sw.ev = &Evaluator{rt: route.NewRouter()}
	}
	if err := sw.ev.bind(topo, assign, comms, opts); err != nil {
		return nil, err
	}
	if cap(sw.outcomes) < len(scenarios) {
		sw.outcomes = make([]Outcome, len(scenarios))
	}
	outcomes := sw.outcomes[:len(scenarios)]
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	var next atomic.Int64
	run := func(ev *Evaluator) error {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(scenarios) {
				return nil
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			outcomes[i] = ev.Eval(scenarios[i])
		}
	}
	var err error
	if workers <= 1 {
		err = run(sw.ev)
	} else {
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 1; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if !pool.PollAcquire(ctx, limit, func() bool { return next.Load() >= int64(len(scenarios)) }) {
					return
				}
				defer limit.Release()
				// Each helper owns its own Evaluator (single-goroutine
				// state); worker 0 already validated the baseline, so a
				// build failure here would be that same deterministic
				// error.
				ev, err := NewEvaluator(topo, assign, comms, opts)
				if err != nil {
					errs[w] = err
					return
				}
				errs[w] = run(ev)
			}(w)
		}
		errs[0] = run(sw.ev)
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				err = e
				break
			}
		}
	}
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return fold(sw.ev.Baseline(), scenarios, outcomes, exhaustive), nil
}

// fold aggregates per-scenario outcomes in scenario order, so the
// floating-point sums never depend on worker scheduling. The scenarios
// quoted in the report (WorstCase, Disconnecting) are copied out of the
// scenario set's shared arenas, so a Report stays valid however its
// producer reuses them.
func fold(baseline Outcome, scenarios []Scenario, outcomes []Outcome, exhaustive bool) *Report {
	rep := &Report{Scenarios: len(scenarios), Exhaustive: exhaustive, Baseline: baseline}
	worst := -1
	for i, o := range outcomes {
		if !o.Connected {
			if rep.Disconnecting == nil {
				s := ownScenario(scenarios[i])
				rep.Disconnecting = &s
			}
			continue
		}
		rep.Connected++
		if o.Feasible {
			rep.Feasible++
		}
		rep.ExpMaxLinkLoadMBps += o.MaxLinkLoadMBps
		rep.ExpAvgHops += o.AvgHops
		if worst == -1 || o.MaxLinkLoadMBps > rep.WorstMaxLinkLoadMBps {
			rep.WorstMaxLinkLoadMBps = o.MaxLinkLoadMBps
			worst = i
		}
		if o.AvgHops > rep.WorstAvgHops {
			rep.WorstAvgHops = o.AvgHops
		}
	}
	if rep.Connected > 0 {
		rep.ExpMaxLinkLoadMBps /= float64(rep.Connected)
		rep.ExpAvgHops /= float64(rep.Connected)
	}
	if worst >= 0 {
		rep.WorstCase = ownScenario(scenarios[worst])
	}
	return rep
}

// ownScenario deep-copies a scenario out of its arena.
func ownScenario(s Scenario) Scenario {
	return Scenario{
		Links:    append([]int(nil), s.Links...),
		Switches: append([]int(nil), s.Switches...),
	}
}
