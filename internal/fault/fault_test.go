package fault

import (
	"context"
	"math"
	"reflect"
	"testing"

	"sunmap/internal/apps"
	"sunmap/internal/graph"
	"sunmap/internal/route"
	"sunmap/internal/topology"
)

func mustTopo(topo topology.Topology, err error) topology.Topology {
	if err != nil {
		panic(err)
	}
	return topo
}

func identityAssign(n int) []int {
	a := make([]int, n)
	for i := range a {
		a[i] = i
	}
	return a
}

func comm(id, src, dst int, bw float64) graph.Commodity {
	return graph.Commodity{ID: id, Src: src, Dst: dst, ValueMBps: bw}
}

// ringComms is a small commodity set on a 2x2 mesh whose survivability
// is strictly between 0 and 1 under tight capacity — the interesting
// regime for the estimator tests.
func ringComms() []graph.Commodity {
	return []graph.Commodity{
		comm(0, 0, 3, 200),
		comm(1, 1, 2, 100),
		comm(2, 2, 0, 50),
	}
}

func TestScenarioCounts(t *testing.T) {
	topo := mustTopo(topology.NewMesh(2, 2)) // 4 channels, 4 switches

	cases := []struct {
		model      Model
		want       int
		exhaustive bool
	}{
		{Model{K: 1, Elements: Links}, 4, true},
		{Model{K: 1, Elements: Switches}, 4, true},
		{Model{K: 2, Elements: Both}, 28, true}, // C(8,2)
		{Model{K: 3, Elements: Links, Samples: 100}, 100, false},
		{Model{K: 1, Elements: Links, ForceSampling: true, Samples: 64}, 64, false},
	}
	for _, tc := range cases {
		scens, exhaustive, err := Scenarios(topo, tc.model)
		if err != nil {
			t.Fatalf("%+v: %v", tc.model, err)
		}
		if len(scens) != tc.want || exhaustive != tc.exhaustive {
			t.Errorf("%+v: %d scenarios (exhaustive=%v), want %d (%v)",
				tc.model, len(scens), exhaustive, tc.want, tc.exhaustive)
		}
	}
	if _, _, err := Scenarios(topo, Model{K: 9, Elements: Both}); err == nil {
		t.Error("k beyond the element count accepted")
	}
}

// TestScenariosDeterministic pins that sampling is a pure function of
// (topology, model): the pre-drawn scenario set never depends on who
// evaluates it.
func TestScenariosDeterministic(t *testing.T) {
	topo := mustTopo(topology.NewMesh(3, 3))
	m := Model{K: 3, Elements: Both, Samples: 200, Seed: 7}
	a, _, err := Scenarios(topo, m)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Scenarios(topo, m)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same model drew different scenario sets")
	}
	m.Seed = 8
	c, _, err := Scenarios(topo, m)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds drew identical scenario sets")
	}
}

// TestMonteCarloMatchesExhaustive is the estimator-consistency gate of
// the acceptance criteria: on a small topology, the Monte Carlo
// survivability and expected-degradation estimates converge to the
// exhaustive k-subset enumeration as the sample count grows.
func TestMonteCarloMatchesExhaustive(t *testing.T) {
	// A 3x3 mesh keeps double faults interesting: some pairs disconnect
	// a corner flow, some merely congest the detours past capacity, and
	// many are survivable.
	topo := mustTopo(topology.NewMesh(3, 3))
	assign := identityAssign(9)
	comms := []graph.Commodity{
		comm(0, 0, 8, 200),
		comm(1, 2, 6, 150),
		comm(2, 6, 0, 100),
	}
	opts := Degraded(route.Options{Function: route.MinPath, CapacityMBps: 300})

	for _, k := range []int{1, 2} {
		exact, exhaustive, err := Scenarios(topo, Model{K: k, Elements: Both})
		if err != nil {
			t.Fatal(err)
		}
		if !exhaustive {
			t.Fatalf("k=%d not enumerated exhaustively", k)
		}
		exRep, err := Sweep(topo, assign, comms, opts, exact, true)
		if err != nil {
			t.Fatal(err)
		}
		if exRep.Survivability() <= 0 || exRep.Survivability() >= 1 {
			t.Fatalf("k=%d exhaustive survivability %g is degenerate; the convergence check needs 0 < p < 1",
				k, exRep.Survivability())
		}

		sampled, _, err := Scenarios(topo, Model{K: k, Elements: Both, ForceSampling: true, Samples: 20000, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		mcRep, err := Sweep(topo, assign, comms, opts, sampled, false)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(mcRep.Survivability() - exRep.Survivability()); d > 0.02 {
			t.Errorf("k=%d: MC survivability %g vs exhaustive %g (|d|=%g)",
				k, mcRep.Survivability(), exRep.Survivability(), d)
		}
		if d := math.Abs(mcRep.ConnectedFrac() - exRep.ConnectedFrac()); d > 0.02 {
			t.Errorf("k=%d: MC connected %g vs exhaustive %g (|d|=%g)",
				k, mcRep.ConnectedFrac(), exRep.ConnectedFrac(), d)
		}
		if ex := exRep.ExpMaxLinkLoadMBps; ex > 0 {
			if d := math.Abs(mcRep.ExpMaxLinkLoadMBps-ex) / ex; d > 0.05 {
				t.Errorf("k=%d: MC expected max load %g vs exhaustive %g (rel %g)",
					k, mcRep.ExpMaxLinkLoadMBps, ex, d)
			}
		}
	}
}

// TestSwitchFaultSeversAttachedCore checks that a failed endpoint switch
// disconnects its commodities outright — no rerouting can save them.
func TestSwitchFaultSeversAttachedCore(t *testing.T) {
	topo := mustTopo(topology.NewMesh(2, 2))
	ev, err := NewEvaluator(topo, identityAssign(4), ringComms(),
		Degraded(route.Options{Function: route.MinPath}))
	if err != nil {
		t.Fatal(err)
	}
	var links []int
	for _, l := range topo.Links() {
		if l.From == 0 || l.To == 0 {
			links = append(links, l.ID)
		}
	}
	out := ev.Eval(Scenario{Links: links, Switches: []int{0}})
	if out.Connected {
		t.Error("design survived losing the switch hosting terminal 0")
	}
	// A non-endpoint fault on a richer mesh stays connected.
	topo9 := mustTopo(topology.NewMesh(3, 3))
	ev9, err := NewEvaluator(topo9, identityAssign(9),
		[]graph.Commodity{comm(0, 0, 2, 100)},
		Degraded(route.Options{Function: route.MinPath}))
	if err != nil {
		t.Fatal(err)
	}
	var mid []int
	for _, l := range topo9.Links() {
		if l.From == 4 || l.To == 4 {
			mid = append(mid, l.ID)
		}
	}
	if out := ev9.Eval(Scenario{Links: mid, Switches: []int{4}}); !out.Connected {
		t.Error("corner-to-corner flow did not survive losing the center switch")
	}
}

// TestDegradedLowering pins the degraded-mode function mapping and the
// option hygiene the sweep depends on.
func TestDegradedLowering(t *testing.T) {
	cases := []struct{ in, want route.Function }{
		{route.DimensionOrdered, route.MinPath},
		{route.MinPath, route.MinPath},
		{route.SplitMin, route.SplitAll},
		{route.SplitAll, route.SplitAll},
	}
	for _, tc := range cases {
		got := Degraded(route.Options{Function: tc.in, CapacityMBps: 500, Chunks: 16,
			DownLinks: make([]bool, 3)})
		if got.Function != tc.want {
			t.Errorf("Degraded(%v).Function = %v, want %v", tc.in, got.Function, tc.want)
		}
		if !got.DisableQuadrant || !got.LoadsOnly || got.DownLinks != nil {
			t.Errorf("Degraded(%v) = %+v: want quadrant off, loads only, no stale mask", tc.in, got)
		}
		if got.CapacityMBps != 500 || got.Chunks != 16 {
			t.Errorf("Degraded(%v) dropped capacity/chunks: %+v", tc.in, got)
		}
	}
}

// vopdMesh returns the VOPD benchmark identity-assigned onto a 3x4 mesh
// with its commodity set — the shared fixture of the alloc gate, the
// parallelism test and the benchmark.
func vopdMesh() (topology.Topology, []int, []graph.Commodity) {
	g := apps.VOPD()
	topo := mustTopo(topology.NewMesh(3, 4))
	return topo, identityAssign(g.NumCores()), g.Commodities()
}

// TestMaskedRerouteAllocFree is the acceptance gate on the sweep's hot
// loop: once the evaluator is warm, rerouting a connected failure
// scenario must not allocate at all — for the single-path and the
// splitting degraded modes alike.
func TestMaskedRerouteAllocFree(t *testing.T) {
	topo, assign, comms := vopdMesh()
	scens, _, err := Scenarios(topo, Model{K: 2, Elements: Both})
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []route.Function{route.MinPath, route.SplitAll} {
		ev, err := NewEvaluator(topo, assign, comms,
			Degraded(route.Options{Function: fn, CapacityMBps: 500}))
		if err != nil {
			t.Fatal(err)
		}
		// Warm every buffer (solver epochs, split arena, path scratch)
		// with a full pass, and pick a connected scenario to gate on —
		// disconnected scenarios build an error and are not the steady
		// state.
		gate := Scenario{}
		for _, s := range scens {
			if ev.Eval(s).Connected {
				gate = s
			}
		}
		if gate.Links == nil && gate.Switches == nil {
			t.Fatalf("%v: no connected scenario to gate on", fn)
		}
		if allocs := testing.AllocsPerRun(200, func() { ev.Eval(gate) }); allocs != 0 {
			t.Errorf("%v: steady-state masked reroute allocates %.1f objects/op, want 0", fn, allocs)
		}
	}
}

// TestSweepSteadyAllocBudget gates the whole-sweep steady state: a warm
// Sweeper re-sweeping a prebuilt scenario set sequentially must stay
// within a small allocation budget — the Report it returns, the copied
// worst-case/disconnecting scenarios, and the handful of reroute errors
// built for link-disconnected scenarios.
func TestSweepSteadyAllocBudget(t *testing.T) {
	topo, assign, comms := vopdMesh()
	opts := Degraded(route.Options{Function: route.MinPath, CapacityMBps: 500})
	ctx := context.Background()
	for _, tc := range []struct {
		name  string
		model Model
	}{
		{"k2-both", Model{K: 2, Elements: Both}},
		{"k3-mc512", Model{K: 3, Elements: Both, Samples: 512}},
	} {
		scens, exhaustive, err := Scenarios(topo, tc.model)
		if err != nil {
			t.Fatal(err)
		}
		sw := NewSweeper()
		if _, err := sw.SweepContext(ctx, topo, assign, comms, opts, scens, exhaustive, 1, nil); err != nil {
			t.Fatal(err) // warm the evaluator and outcome buffers
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := sw.SweepContext(ctx, topo, assign, comms, opts, scens, exhaustive, 1, nil); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 100 {
			t.Errorf("%s: steady-state sweep allocates %.1f objects/op, want <= 100", tc.name, allocs)
		}
	}
}

// TestSweeperReuseMatchesFresh checks the Sweeper's buffer reuse never
// leaks state between design points: re-sweeping different models and
// scenario sets through one Sweeper reports exactly what fresh sweeps do.
func TestSweeperReuseMatchesFresh(t *testing.T) {
	topo, assign, comms := vopdMesh()
	opts := Degraded(route.Options{Function: route.MinPath, CapacityMBps: 500})
	ctx := context.Background()
	sw := NewSweeper()
	for _, model := range []Model{
		{K: 2, Elements: Both},
		{K: 1, Elements: Links},
		{K: 3, Elements: Both, Samples: 256},
	} {
		scens, exhaustive, err := Scenarios(topo, model)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sw.SweepContext(ctx, topo, assign, comms, opts, scens, exhaustive, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Sweep(topo, assign, comms, opts, scens, exhaustive)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%+v: reused sweeper diverged:\ngot:  %+v\nwant: %+v", model, got, want)
		}
	}
}

// TestSweepIdenticalAcrossParallelism checks the determinism contract:
// the folded report is byte-identical no matter how many workers
// evaluated the scenarios.
func TestSweepIdenticalAcrossParallelism(t *testing.T) {
	topo, assign, comms := vopdMesh()
	opts := Degraded(route.Options{Function: route.MinPath, CapacityMBps: 500})
	scens, exhaustive, err := Scenarios(topo, Model{K: 2, Elements: Both})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := SweepContext(context.Background(), topo, assign, comms, opts, scens, exhaustive, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 8} {
		got, err := SweepContext(context.Background(), topo, assign, comms, opts, scens, exhaustive, par, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, got) {
			t.Errorf("parallelism %d report diverged from sequential:\nseq: %+v\ngot: %+v", par, seq, got)
		}
	}
	if seq.Scenarios != len(scens) || seq.Connected == 0 {
		t.Fatalf("implausible report: %+v", seq)
	}
	if seq.Baseline.MaxLinkLoadMBps <= 0 {
		t.Error("baseline carries no load")
	}
	if seq.WorstMaxLinkLoadMBps < seq.Baseline.MaxLinkLoadMBps {
		t.Errorf("worst-case load %g below baseline %g",
			seq.WorstMaxLinkLoadMBps, seq.Baseline.MaxLinkLoadMBps)
	}
	if seq.ExpMaxLinkLoadMBps > seq.WorstMaxLinkLoadMBps {
		t.Errorf("expected load %g above worst case %g",
			seq.ExpMaxLinkLoadMBps, seq.WorstMaxLinkLoadMBps)
	}
}

// TestSweepCancellation checks a canceled context aborts the sweep with
// the context's error.
func TestSweepCancellation(t *testing.T) {
	topo, assign, comms := vopdMesh()
	opts := Degraded(route.Options{Function: route.MinPath, CapacityMBps: 500})
	scens, _, err := Scenarios(topo, Model{K: 2, Elements: Both})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SweepContext(ctx, topo, assign, comms, opts, scens, true, 4, nil); err != context.Canceled {
		t.Errorf("canceled sweep returned %v, want context.Canceled", err)
	}
}
