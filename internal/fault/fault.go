// Package fault is SUNMAP's reliability subsystem. It models failure
// scenarios as masked link/switch sets, replays a mapped design's
// commodities around each mask with degraded-mode rerouting, and
// aggregates survivability — the fraction of scenarios under which the
// design stays connected and bandwidth-feasible — together with the
// worst-case and expected degradation of link load and hop count.
//
// Failure elements are physical channels (both directions of a
// bidirectional connection fail together; see topology.Channels) and/or
// switches (every incident link fails and any core attached to the
// switch is cut off). Scenarios of k simultaneous element failures are
// enumerated exhaustively for k <= 2 and drawn by deterministic seeded
// Monte Carlo above that, pre-drawn before any parallel sweep so the
// scenario set is byte-identical at every parallelism setting.
//
// The approach follows the fault-tolerant application-specific topology
// generation literature (Chen et al., arXiv:1908.00165); feeding the
// resulting reliability score into selection and Pareto exploration as
// an extra objective follows the multi-objective NoC design framing of
// Kao & Fink (arXiv:1807.11607).
package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"sunmap/internal/topology"
)

// Elements selects what can fail.
type Elements int

const (
	// Links fails physical channels: every directed link of one
	// unordered router pair goes down together.
	Links Elements = iota
	// Switches fails routers: all incident links go down and cores
	// attached to the switch are cut off.
	Switches
	// Both draws elements from channels and switches alike.
	Both
)

// String returns the wire spelling of the element class.
func (e Elements) String() string {
	switch e {
	case Links:
		return "links"
	case Switches:
		return "switches"
	case Both:
		return "both"
	default:
		return fmt.Sprintf("elements(%d)", int(e))
	}
}

// ParseElements converts the wire spelling ("links", "switches", "both";
// empty selects links) to an Elements value.
func ParseElements(s string) (Elements, error) {
	switch s {
	case "", "links":
		return Links, nil
	case "switches":
		return Switches, nil
	case "both":
		return Both, nil
	}
	return 0, fmt.Errorf("fault: unknown element class %q (want links, switches or both)", s)
}

// Model parameterizes a failure sweep.
type Model struct {
	// K is the number of simultaneous element failures (default 1).
	K int
	// Elements selects the failable element class (default Links).
	Elements Elements
	// Samples is the Monte Carlo scenario count used when sampling
	// (default 2048).
	Samples int
	// Seed drives the scenario sampling; a given seed always draws the
	// same scenario sequence.
	Seed int64
	// ForceSampling draws Monte Carlo scenarios even when K <= 2 would
	// be enumerated exhaustively — for huge topologies, and for the
	// convergence tests pinning the sampler against the exhaustive set.
	ForceSampling bool
}

func (m Model) withDefaults() Model {
	if m.K <= 0 {
		m.K = 1
	}
	if m.Samples <= 0 {
		m.Samples = 2048
	}
	return m
}

// exhaustiveMaxK is the largest K enumerated exhaustively: singles and
// pairs cover the wear-out and manufacturing-fault cases designers
// actually budget for; beyond that the combination count explodes and
// sampling takes over.
const exhaustiveMaxK = 2

// Scenario is one failure mask: the directed link IDs down (including
// every link incident to a failed switch) and the failed switches, both
// in increasing order.
type Scenario struct {
	Links    []int `json:"links,omitempty"`
	Switches []int `json:"switches,omitempty"`
}

// element is one failable unit of the enumeration universe.
type element struct {
	links []int // directed link IDs this element takes down
	sw    int   // failed router, -1 for a channel element
}

// elementsOf builds the failure universe for a topology: channels first
// (in topology.Channels order), then switches by router index.
func elementsOf(topo topology.Topology, class Elements) []element {
	var els []element
	if class == Links || class == Both {
		for _, ch := range topology.Channels(topo) {
			els = append(els, element{links: ch, sw: -1})
		}
	}
	if class == Switches || class == Both {
		incident := make([][]int, topo.NumRouters())
		for _, l := range topo.Links() {
			incident[l.From] = append(incident[l.From], l.ID)
			incident[l.To] = append(incident[l.To], l.ID)
		}
		for r := 0; r < topo.NumRouters(); r++ {
			els = append(els, element{links: incident[r], sw: r})
		}
	}
	return els
}

// scenarioBuilder assembles a scenario set into shared arenas. Each
// scenario's link list is deduplicated against an epoch-stamped table (a
// channel and an adjacent failed switch can overlap), sorted in a reused
// scratch buffer and appended to a flat arena; the []Scenario headers are
// built only once the arenas are final, so they stay valid across arena
// growth. The old per-scenario map+append+sort build cost O(scenarios·k)
// allocations; the builder costs O(log) arena growths regardless of the
// scenario count.
type scenarioBuilder struct {
	els     []element
	links   []int // flat arena of per-scenario sorted link lists
	sws     []int // flat arena of per-scenario sorted switch lists
	offs    []int // 4 entries per scenario: linkLo, linkHi, swLo, swHi
	stamp   []int // stamp[linkID] == epoch marks a link already gathered
	epoch   int
	scratch []int
	subset  []int
}

func newScenarioBuilder(els []element, numLinks int) *scenarioBuilder {
	return &scenarioBuilder{els: els, stamp: make([]int, numLinks)}
}

// add folds one element subset into the arenas as the next scenario.
func (b *scenarioBuilder) add(subset []int) {
	b.epoch++
	ll, sl := len(b.links), len(b.sws)
	sc := b.scratch[:0]
	for _, ei := range subset {
		e := b.els[ei]
		if e.sw >= 0 {
			b.sws = append(b.sws, e.sw)
		}
		for _, id := range e.links {
			if b.stamp[id] != b.epoch {
				b.stamp[id] = b.epoch
				sc = append(sc, id)
			}
		}
	}
	sort.Ints(sc)
	b.scratch = sc
	b.links = append(b.links, sc...)
	sort.Ints(b.sws[sl:])
	b.offs = append(b.offs, ll, len(b.links), sl, len(b.sws))
}

// scenarios materializes the Scenario headers over the final arenas.
// Empty lists stay nil so scenarios compare equal to their pre-arena
// representation.
func (b *scenarioBuilder) scenarios() []Scenario {
	out := make([]Scenario, len(b.offs)/4)
	for i := range out {
		ll, lh, sl, sh := b.offs[4*i], b.offs[4*i+1], b.offs[4*i+2], b.offs[4*i+3]
		if lh > ll {
			out[i].Links = b.links[ll:lh:lh]
		}
		if sh > sl {
			out[i].Switches = b.sws[sl:sh:sh]
		}
	}
	return out
}

// Scenarios builds the failure-scenario set for a topology under a
// model: every k-subset of the element universe for k <= 2, a
// deterministic Monte Carlo draw of Samples uniform k-subsets above that
// (or when ForceSampling is set). The returned bool reports whether the
// set is exhaustive. Scenario order is deterministic for a given
// (topology, model) pair.
func Scenarios(topo topology.Topology, m Model) ([]Scenario, bool, error) {
	m = m.withDefaults()
	els := elementsOf(topo, m.Elements)
	if len(els) == 0 {
		return nil, false, fmt.Errorf("fault: %s has no %s elements", topo.Name(), m.Elements)
	}
	if m.K > len(els) {
		return nil, false, fmt.Errorf("fault: k=%d exceeds the %d %s elements of %s",
			m.K, len(els), m.Elements, topo.Name())
	}
	bld := newScenarioBuilder(els, len(topo.Links()))
	if m.K <= exhaustiveMaxK && !m.ForceSampling {
		enumerate(bld, m.K)
		return bld.scenarios(), true, nil
	}
	sample(bld, m)
	return bld.scenarios(), false, nil
}

// enumerate adds every k-subset of the element universe, k in {1, 2}.
func enumerate(b *scenarioBuilder, k int) {
	switch k {
	case 1:
		for i := range b.els {
			b.subset = append(b.subset[:0], i)
			b.add(b.subset)
		}
	case 2:
		for i := range b.els {
			for j := i + 1; j < len(b.els); j++ {
				b.subset = append(b.subset[:0], i, j)
				b.add(b.subset)
			}
		}
	default:
		panic(fmt.Sprintf("fault: enumerate called with k=%d", k))
	}
}

// sample adds Samples uniform k-subsets of the element universe drawn
// with a seeded partial Fisher–Yates shuffle. Draws are independent (the
// same subset can recur), which is what makes the per-scenario average an
// unbiased estimator of the exhaustive one.
func sample(b *scenarioBuilder, m Model) {
	rng := rand.New(rand.NewSource(m.Seed))
	idx := make([]int, len(b.els))
	for i := range idx {
		idx[i] = i
	}
	for s := 0; s < m.Samples; s++ {
		for j := 0; j < m.K; j++ {
			k := j + rng.Intn(len(idx)-j)
			idx[j], idx[k] = idx[k], idx[j]
		}
		b.subset = append(b.subset[:0], idx[:m.K]...)
		b.add(b.subset)
	}
}
