// Package fault is SUNMAP's reliability subsystem. It models failure
// scenarios as masked link/switch sets, replays a mapped design's
// commodities around each mask with degraded-mode rerouting, and
// aggregates survivability — the fraction of scenarios under which the
// design stays connected and bandwidth-feasible — together with the
// worst-case and expected degradation of link load and hop count.
//
// Failure elements are physical channels (both directions of a
// bidirectional connection fail together; see topology.Channels) and/or
// switches (every incident link fails and any core attached to the
// switch is cut off). Scenarios of k simultaneous element failures are
// enumerated exhaustively for k <= 2 and drawn by deterministic seeded
// Monte Carlo above that, pre-drawn before any parallel sweep so the
// scenario set is byte-identical at every parallelism setting.
//
// The approach follows the fault-tolerant application-specific topology
// generation literature (Chen et al., arXiv:1908.00165); feeding the
// resulting reliability score into selection and Pareto exploration as
// an extra objective follows the multi-objective NoC design framing of
// Kao & Fink (arXiv:1807.11607).
package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"sunmap/internal/topology"
)

// Elements selects what can fail.
type Elements int

const (
	// Links fails physical channels: every directed link of one
	// unordered router pair goes down together.
	Links Elements = iota
	// Switches fails routers: all incident links go down and cores
	// attached to the switch are cut off.
	Switches
	// Both draws elements from channels and switches alike.
	Both
)

// String returns the wire spelling of the element class.
func (e Elements) String() string {
	switch e {
	case Links:
		return "links"
	case Switches:
		return "switches"
	case Both:
		return "both"
	default:
		return fmt.Sprintf("elements(%d)", int(e))
	}
}

// ParseElements converts the wire spelling ("links", "switches", "both";
// empty selects links) to an Elements value.
func ParseElements(s string) (Elements, error) {
	switch s {
	case "", "links":
		return Links, nil
	case "switches":
		return Switches, nil
	case "both":
		return Both, nil
	}
	return 0, fmt.Errorf("fault: unknown element class %q (want links, switches or both)", s)
}

// Model parameterizes a failure sweep.
type Model struct {
	// K is the number of simultaneous element failures (default 1).
	K int
	// Elements selects the failable element class (default Links).
	Elements Elements
	// Samples is the Monte Carlo scenario count used when sampling
	// (default 2048).
	Samples int
	// Seed drives the scenario sampling; a given seed always draws the
	// same scenario sequence.
	Seed int64
	// ForceSampling draws Monte Carlo scenarios even when K <= 2 would
	// be enumerated exhaustively — for huge topologies, and for the
	// convergence tests pinning the sampler against the exhaustive set.
	ForceSampling bool
}

func (m Model) withDefaults() Model {
	if m.K <= 0 {
		m.K = 1
	}
	if m.Samples <= 0 {
		m.Samples = 2048
	}
	return m
}

// exhaustiveMaxK is the largest K enumerated exhaustively: singles and
// pairs cover the wear-out and manufacturing-fault cases designers
// actually budget for; beyond that the combination count explodes and
// sampling takes over.
const exhaustiveMaxK = 2

// Scenario is one failure mask: the directed link IDs down (including
// every link incident to a failed switch) and the failed switches, both
// in increasing order.
type Scenario struct {
	Links    []int `json:"links,omitempty"`
	Switches []int `json:"switches,omitempty"`
}

// element is one failable unit of the enumeration universe.
type element struct {
	links []int // directed link IDs this element takes down
	sw    int   // failed router, -1 for a channel element
}

// elementsOf builds the failure universe for a topology: channels first
// (in topology.Channels order), then switches by router index.
func elementsOf(topo topology.Topology, class Elements) []element {
	var els []element
	if class == Links || class == Both {
		for _, ch := range topology.Channels(topo) {
			els = append(els, element{links: ch, sw: -1})
		}
	}
	if class == Switches || class == Both {
		incident := make([][]int, topo.NumRouters())
		for _, l := range topo.Links() {
			incident[l.From] = append(incident[l.From], l.ID)
			incident[l.To] = append(incident[l.To], l.ID)
		}
		for r := 0; r < topo.NumRouters(); r++ {
			els = append(els, element{links: incident[r], sw: r})
		}
	}
	return els
}

// scenarioOf folds a set of elements into one Scenario, deduplicating
// links (a channel and an adjacent failed switch can overlap).
func scenarioOf(els []element, subset []int) Scenario {
	var s Scenario
	seen := make(map[int]bool)
	for _, i := range subset {
		e := els[i]
		if e.sw >= 0 {
			s.Switches = append(s.Switches, e.sw)
		}
		for _, id := range e.links {
			if !seen[id] {
				seen[id] = true
				s.Links = append(s.Links, id)
			}
		}
	}
	sort.Ints(s.Links)
	sort.Ints(s.Switches)
	return s
}

// Scenarios builds the failure-scenario set for a topology under a
// model: every k-subset of the element universe for k <= 2, a
// deterministic Monte Carlo draw of Samples uniform k-subsets above that
// (or when ForceSampling is set). The returned bool reports whether the
// set is exhaustive. Scenario order is deterministic for a given
// (topology, model) pair.
func Scenarios(topo topology.Topology, m Model) ([]Scenario, bool, error) {
	m = m.withDefaults()
	els := elementsOf(topo, m.Elements)
	if len(els) == 0 {
		return nil, false, fmt.Errorf("fault: %s has no %s elements", topo.Name(), m.Elements)
	}
	if m.K > len(els) {
		return nil, false, fmt.Errorf("fault: k=%d exceeds the %d %s elements of %s",
			m.K, len(els), m.Elements, topo.Name())
	}
	if m.K <= exhaustiveMaxK && !m.ForceSampling {
		return enumerate(els, m.K), true, nil
	}
	return sample(els, m), false, nil
}

// enumerate lists every k-subset of the element universe, k in {1, 2}.
func enumerate(els []element, k int) []Scenario {
	var out []Scenario
	switch k {
	case 1:
		for i := range els {
			out = append(out, scenarioOf(els, []int{i}))
		}
	case 2:
		for i := range els {
			for j := i + 1; j < len(els); j++ {
				out = append(out, scenarioOf(els, []int{i, j}))
			}
		}
	default:
		panic(fmt.Sprintf("fault: enumerate called with k=%d", k))
	}
	return out
}

// sample draws Samples uniform k-subsets of the element universe with a
// seeded partial Fisher–Yates shuffle. Draws are independent (the same
// subset can recur), which is what makes the per-scenario average an
// unbiased estimator of the exhaustive one.
func sample(els []element, m Model) []Scenario {
	rng := rand.New(rand.NewSource(m.Seed))
	idx := make([]int, len(els))
	for i := range idx {
		idx[i] = i
	}
	out := make([]Scenario, 0, m.Samples)
	subset := make([]int, m.K)
	for s := 0; s < m.Samples; s++ {
		for j := 0; j < m.K; j++ {
			k := j + rng.Intn(len(idx)-j)
			idx[j], idx[k] = idx[k], idx[j]
		}
		copy(subset, idx[:m.K])
		out = append(out, scenarioOf(els, subset))
	}
	return out
}
