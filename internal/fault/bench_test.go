package fault

import (
	"context"
	"testing"

	"sunmap/internal/route"
)

// trackedModels are the fault models the BENCH_*.json snapshots quote.
var trackedModels = []struct {
	name  string
	model Model
}{
	{"k1-links", Model{K: 1, Elements: Links}},
	{"k2-both", Model{K: 2, Elements: Both}},
	{"k3-mc512", Model{K: 3, Elements: Both, Samples: 512}},
}

// BenchmarkFaultSweep times survivability sweeps (VOPD on a 3x4 mesh) at
// the tracked fault models. The "steady" variant is the per-candidate
// steady state reliability-aware selection pays — a warm Sweeper over a
// prebuilt scenario set, the configuration the allocs/op acceptance gate
// reads. The "build+sweep" variant adds scenario enumeration and cold
// evaluator construction on every iteration. Run with:
//
//	go test -bench BenchmarkFaultSweep -benchmem ./internal/fault
func BenchmarkFaultSweep(b *testing.B) {
	topo, assign, comms := vopdMesh()
	opts := Degraded(route.Options{Function: route.MinPath, CapacityMBps: 500})
	ctx := context.Background()
	for _, tc := range trackedModels {
		scens, exhaustive, err := Scenarios(topo, tc.model)
		if err != nil {
			b.Fatal(err)
		}
		sw := NewSweeper()
		b.Run(tc.name+"/steady", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sw.SweepContext(ctx, topo, assign, comms, opts, scens, exhaustive, 1, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tc.name+"/build+sweep", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				scens, exhaustive, err := Scenarios(topo, tc.model)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Sweep(topo, assign, comms, opts, scens, exhaustive); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
