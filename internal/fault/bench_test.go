package fault

import (
	"testing"

	"sunmap/internal/route"
)

// BenchmarkFaultSweep times one full survivability sweep (VOPD on a 3x4
// mesh) at the tracked fault models, scenario enumeration included —
// the per-candidate cost reliability-aware selection pays. Run with:
//
//	go test -bench BenchmarkFaultSweep -benchmem ./internal/fault
func BenchmarkFaultSweep(b *testing.B) {
	topo, assign, comms := vopdMesh()
	opts := Degraded(route.Options{Function: route.MinPath, CapacityMBps: 500})
	for _, tc := range []struct {
		name  string
		model Model
	}{
		{"k1-links", Model{K: 1, Elements: Links}},
		{"k2-both", Model{K: 2, Elements: Both}},
		{"k3-mc512", Model{K: 3, Elements: Both, Samples: 512}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				scens, exhaustive, err := Scenarios(topo, tc.model)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Sweep(topo, assign, comms, opts, scens, exhaustive); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
