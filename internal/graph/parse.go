package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads a core graph from SUNMAP's plain-text format:
//
//	# comment
//	app  vopd
//	core vld    area=3.0
//	core smem   area=6.0 soft aspect=0.5,2.0
//	flow vld -> rld 70
//
// Lines: "app NAME" (optional, first), "core NAME [area=F] [soft]
// [aspect=LO,HI]", "flow SRC -> DST BW". Blank lines and #-comments are
// ignored. Bandwidth is in MB/s, area in mm².
func Parse(r io.Reader) (*CoreGraph, error) {
	g := NewCoreGraph("app")
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "app":
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: want \"app NAME\"", lineNo)
			}
			g.name = fields[1]
		case "core":
			if len(fields) < 2 {
				return nil, fmt.Errorf("graph: line %d: want \"core NAME [attrs]\"", lineNo)
			}
			c := Core{Name: fields[1]}
			for _, attr := range fields[2:] {
				switch {
				case attr == "soft":
					c.Soft = true
				case strings.HasPrefix(attr, "area="):
					v, err := strconv.ParseFloat(attr[len("area="):], 64)
					if err != nil {
						return nil, fmt.Errorf("graph: line %d: bad area %q", lineNo, attr)
					}
					c.AreaMM2 = v
				case strings.HasPrefix(attr, "aspect="):
					parts := strings.Split(attr[len("aspect="):], ",")
					if len(parts) != 2 {
						return nil, fmt.Errorf("graph: line %d: want aspect=LO,HI", lineNo)
					}
					lo, err1 := strconv.ParseFloat(parts[0], 64)
					hi, err2 := strconv.ParseFloat(parts[1], 64)
					if err1 != nil || err2 != nil {
						return nil, fmt.Errorf("graph: line %d: bad aspect %q", lineNo, attr)
					}
					c.MinAspect, c.MaxAspect = lo, hi
				default:
					return nil, fmt.Errorf("graph: line %d: unknown core attribute %q", lineNo, attr)
				}
			}
			if _, err := g.AddCore(c); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
		case "flow":
			// "flow SRC -> DST BW"
			if len(fields) != 5 || fields[2] != "->" {
				return nil, fmt.Errorf("graph: line %d: want \"flow SRC -> DST BW\"", lineNo)
			}
			bw, err := strconv.ParseFloat(fields[4], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad bandwidth %q", lineNo, fields[4])
			}
			if err := g.Connect(fields[1], fields[3], bw); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// ParseString parses a core graph from an in-memory description.
func ParseString(s string) (*CoreGraph, error) {
	return Parse(strings.NewReader(s))
}

// Format renders g in the text format accepted by Parse, so that
// Parse(Format(g)) round-trips.
func Format(g *CoreGraph) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "app %s\n", g.Name())
	for _, c := range g.Cores() {
		fmt.Fprintf(&sb, "core %s area=%g", c.Name, c.AreaMM2)
		if c.Soft {
			sb.WriteString(" soft")
		}
		if c.MinAspect != 0 || c.MaxAspect != 0 {
			fmt.Fprintf(&sb, " aspect=%g,%g", c.MinAspect, c.MaxAspect)
		}
		sb.WriteByte('\n')
	}
	cores := g.Cores()
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "flow %s -> %s %g\n", cores[e.From].Name, cores[e.To].Name, e.BandwidthMBps)
	}
	return sb.String()
}
