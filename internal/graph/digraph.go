package graph

import "fmt"

// Arc is a directed, identified edge of a Digraph. ID indexes auxiliary
// per-arc state kept by callers (link loads, capacities).
type Arc struct {
	To int
	ID int
}

// Digraph is a minimal adjacency-list directed graph used for NoC router
// graphs and quadrant graphs. Arc weights are supplied per query through a
// WeightFunc so that congestion-aware routing can reuse one graph while the
// loads evolve.
type Digraph struct {
	adj     [][]Arc
	numArcs int
}

// NewDigraph returns a graph with n vertices and no arcs.
func NewDigraph(n int) *Digraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Digraph{adj: make([][]Arc, n)}
}

// NumVertices returns the vertex count.
func (d *Digraph) NumVertices() int { return len(d.adj) }

// NumArcs returns the number of arcs added so far.
func (d *Digraph) NumArcs() int { return d.numArcs }

// AddArc inserts a directed arc u->v with external identifier id.
func (d *Digraph) AddArc(u, v, id int) {
	if u < 0 || u >= len(d.adj) || v < 0 || v >= len(d.adj) {
		panic(fmt.Sprintf("graph: arc %d->%d out of range [0,%d)", u, v, len(d.adj)))
	}
	d.adj[u] = append(d.adj[u], Arc{To: v, ID: id})
	d.numArcs++
}

// Out returns the arcs leaving u. The returned slice is owned by the graph
// and must not be modified.
func (d *Digraph) Out(u int) []Arc { return d.adj[u] }

// Reset re-dimensions the graph to n vertices with no arcs, retaining the
// per-vertex adjacency backing arrays. Callers that rebuild a small graph
// every iteration — the topology-search inner loop re-deriving a router
// graph from a mutated edge set — stay allocation-free in steady state.
func (d *Digraph) Reset(n int) {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	if cap(d.adj) < n {
		grown := make([][]Arc, n)
		copy(grown, d.adj[:cap(d.adj)])
		d.adj = grown
	}
	d.adj = d.adj[:n]
	for i := range d.adj {
		d.adj[i] = d.adj[i][:0]
	}
	d.numArcs = 0
}

// WeightFunc maps an arc (by tail vertex and arc value) to a non-negative
// cost. Returning math.Inf(1) removes the arc from consideration.
type WeightFunc func(from int, a Arc) float64

// UnitWeight weighs every arc 1; shortest paths become minimum-hop paths.
func UnitWeight(int, Arc) float64 { return 1 }

// Dijkstra computes single-source shortest paths from src under w. It
// returns the distance vector and, for path recovery, the predecessor
// vertex and the arc ID used to reach each vertex (-1 when unreached or at
// the source). Vertices outside `allowed` (when non-nil) are skipped, which
// is how quadrant-graph restriction is applied without copying graphs.
//
// Each call allocates fresh result slices; hot loops should hold an
// SPSolver instead and query it in place.
func (d *Digraph) Dijkstra(src int, w WeightFunc, allowed []bool) (dist []float64, prevV, prevArc []int) {
	var s SPSolver
	s.Dijkstra(d, src, w, allowed)
	n := len(d.adj)
	dist = make([]float64, n)
	prevV = make([]int, n)
	prevArc = make([]int, n)
	for i := 0; i < n; i++ {
		dist[i] = s.Dist(i)
		prevV[i], prevArc[i] = s.Prev(i)
	}
	return dist, prevV, prevArc
}

// ShortestPath returns the vertex sequence and arc-ID sequence of a
// shortest src->dst path under w restricted to `allowed` (nil = all). The
// boolean reports reachability.
func (d *Digraph) ShortestPath(src, dst int, w WeightFunc, allowed []bool) (verts, arcs []int, ok bool) {
	var s SPSolver
	s.Dijkstra(d, src, w, allowed)
	verts, arcs, ok = s.PathTo(src, dst, nil, nil)
	if !ok {
		return nil, nil, false
	}
	return verts, arcs, true
}

// HopDistance returns the minimum hop count (arc count) from src to dst
// within `allowed`, or -1 if unreachable. It runs a plain BFS.
func (d *Digraph) HopDistance(src, dst int, allowed []bool) int {
	if src == dst {
		return 0
	}
	n := len(d.adj)
	distv := make([]int, n)
	for i := range distv {
		distv[i] = -1
	}
	if allowed != nil && (!allowed[src] || !allowed[dst]) {
		return -1
	}
	distv[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range d.adj[u] {
			if allowed != nil && !allowed[a.To] {
				continue
			}
			if distv[a.To] == -1 {
				distv[a.To] = distv[u] + 1
				if a.To == dst {
					return distv[a.To]
				}
				queue = append(queue, a.To)
			}
		}
	}
	return -1
}

// AllMinHopArcs returns the set of arc IDs that lie on at least one
// minimum-hop src->dst path within `allowed`. Splitting across minimum
// paths (routing function SM) restricts flow to this DAG.
func (d *Digraph) AllMinHopArcs(src, dst int, allowed []bool) map[int]bool {
	distS := d.bfsAll(src, allowed, false)
	distT := d.bfsAll(dst, allowed, true)
	out := make(map[int]bool)
	if distS[dst] < 0 {
		return out
	}
	total := distS[dst]
	for u := range d.adj {
		if distS[u] < 0 {
			continue
		}
		for _, a := range d.adj[u] {
			if allowed != nil && !allowed[a.To] {
				continue
			}
			if distT[a.To] >= 0 && distS[u]+1+distT[a.To] == total {
				out[a.ID] = true
			}
		}
	}
	return out
}

// BFSDistances returns hop distances from src to every vertex
// (-1 unreachable), following arcs forward or, when reverse is set,
// backward (i.e. distances *to* src). Synthesized topologies use the two
// directions to precompute their minimum-path quadrant masks.
func (d *Digraph) BFSDistances(src int, reverse bool) []int {
	return d.bfsAll(src, nil, reverse)
}

// bfsAll returns hop distances from src to every vertex (-1 unreachable),
// following arcs forward or, when reverse is set, backward.
func (d *Digraph) bfsAll(src int, allowed []bool, reverse bool) []int {
	n := len(d.adj)
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	if allowed != nil && !allowed[src] {
		return dist
	}
	var radj [][]Arc
	if reverse {
		radj = make([][]Arc, n)
		for u := range d.adj {
			for _, a := range d.adj[u] {
				radj[a.To] = append(radj[a.To], Arc{To: u, ID: a.ID})
			}
		}
	}
	next := func(u int) []Arc {
		if reverse {
			return radj[u]
		}
		return d.adj[u]
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range next(u) {
			if allowed != nil && !allowed[a.To] {
				continue
			}
			if dist[a.To] == -1 {
				dist[a.To] = dist[u] + 1
				queue = append(queue, a.To)
			}
		}
	}
	return dist
}

func reverseInts(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
