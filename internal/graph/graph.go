// Package graph implements the application core graph of SUNMAP (Definition 1
// of the paper) together with a small generic directed-graph toolkit used by
// the topology and routing layers.
//
// A CoreGraph holds the cores of an SoC and the directed communication
// demands between them. Edge weights are sustained bandwidths in MB/s, the
// unit used throughout the paper. Each edge becomes a single-commodity flow
// (Definition 2's set D) when handed to the mapper.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Core describes one IP block of the SoC. Area and aspect-ratio bounds feed
// the floorplanner; the paper treats per-core area/power as tool inputs
// (Section 5).
type Core struct {
	// Name is the unique identifier of the core (e.g. "idct").
	Name string
	// AreaMM2 is the silicon area of the core in square millimetres.
	AreaMM2 float64
	// Soft marks a block with flexible dimensions. Soft blocks may be
	// resized by the floorplanner within the aspect-ratio bounds below.
	Soft bool
	// MinAspect and MaxAspect bound width/height for soft blocks.
	// Zero values default to [0.5, 2.0].
	MinAspect, MaxAspect float64
}

// AspectBounds returns the effective aspect-ratio interval for the core,
// substituting the defaults for zero values.
func (c Core) AspectBounds() (lo, hi float64) {
	lo, hi = c.MinAspect, c.MaxAspect
	if lo <= 0 {
		lo = 0.5
	}
	if hi <= 0 {
		hi = 2.0
	}
	if lo > hi {
		lo, hi = hi, lo
	}
	return lo, hi
}

// Edge is a directed communication demand between two cores.
type Edge struct {
	// From and To are core indices within the owning CoreGraph.
	From, To int
	// BandwidthMBps is the sustained bandwidth of the flow in MB/s
	// (the comm weight of Definition 1).
	BandwidthMBps float64
}

// Commodity is a single-commodity flow d_k derived from one core-graph edge
// (the set D of the paper). Src and Dst are core indices; the mapper
// translates them to topology nodes through the mapping function.
type Commodity struct {
	// ID is the index of the commodity within the sorted commodity list.
	ID int
	// Src and Dst are core indices.
	Src, Dst int
	// ValueMBps is vl(d_k), the bandwidth of the flow in MB/s.
	ValueMBps float64
}

// CoreGraph is the directed application graph G(V,E) of Definition 1.
// The zero value is an empty graph ready for use.
type CoreGraph struct {
	name  string
	cores []Core
	edges []Edge
	index map[string]int
}

// NewCoreGraph returns an empty core graph with the given name.
func NewCoreGraph(name string) *CoreGraph {
	return &CoreGraph{name: name, index: make(map[string]int)}
}

// Name returns the application name.
func (g *CoreGraph) Name() string { return g.name }

// NumCores returns |V|.
func (g *CoreGraph) NumCores() int { return len(g.cores) }

// NumEdges returns |E|.
func (g *CoreGraph) NumEdges() int { return len(g.edges) }

// Core returns the i-th core. It panics if i is out of range.
func (g *CoreGraph) Core(i int) Core { return g.cores[i] }

// Cores returns a copy of the core list.
func (g *CoreGraph) Cores() []Core {
	out := make([]Core, len(g.cores))
	copy(out, g.cores)
	return out
}

// Edges returns a copy of the edge list.
func (g *CoreGraph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// CoreIndex returns the index of the named core and whether it exists.
func (g *CoreGraph) CoreIndex(name string) (int, bool) {
	i, ok := g.index[name]
	return i, ok
}

// AddCore appends a core and returns its index. Adding a duplicate name is
// an error because names key the text format and the generated netlists.
func (g *CoreGraph) AddCore(c Core) (int, error) {
	if c.Name == "" {
		return 0, fmt.Errorf("graph: core name must not be empty")
	}
	if _, dup := g.index[c.Name]; dup {
		return 0, fmt.Errorf("graph: duplicate core %q", c.Name)
	}
	if c.AreaMM2 < 0 {
		return 0, fmt.Errorf("graph: core %q has negative area %g", c.Name, c.AreaMM2)
	}
	if g.index == nil {
		g.index = make(map[string]int)
	}
	g.cores = append(g.cores, c)
	g.index[c.Name] = len(g.cores) - 1
	return len(g.cores) - 1, nil
}

// MustAddCore is AddCore for statically known inputs; it panics on error.
func (g *CoreGraph) MustAddCore(c Core) int {
	i, err := g.AddCore(c)
	if err != nil {
		panic(err)
	}
	return i
}

// Connect adds a directed flow between two named cores.
func (g *CoreGraph) Connect(from, to string, bwMBps float64) error {
	fi, ok := g.index[from]
	if !ok {
		return fmt.Errorf("graph: unknown core %q", from)
	}
	ti, ok := g.index[to]
	if !ok {
		return fmt.Errorf("graph: unknown core %q", to)
	}
	if fi == ti {
		return fmt.Errorf("graph: self-loop on core %q", from)
	}
	if bwMBps <= 0 {
		return fmt.Errorf("graph: flow %s->%s has non-positive bandwidth %g", from, to, bwMBps)
	}
	g.edges = append(g.edges, Edge{From: fi, To: ti, BandwidthMBps: bwMBps})
	return nil
}

// MustConnect is Connect for statically known inputs; it panics on error.
func (g *CoreGraph) MustConnect(from, to string, bwMBps float64) {
	if err := g.Connect(from, to, bwMBps); err != nil {
		panic(err)
	}
}

// Validate checks structural invariants: non-empty, unique names, in-range
// edges, positive bandwidths. Builders already enforce these; Validate
// guards graphs constructed by deserialization or tests.
func (g *CoreGraph) Validate() error {
	if len(g.cores) == 0 {
		return fmt.Errorf("graph: %q has no cores", g.name)
	}
	seen := make(map[string]bool, len(g.cores))
	for i, c := range g.cores {
		if c.Name == "" {
			return fmt.Errorf("graph: core %d has empty name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("graph: duplicate core name %q", c.Name)
		}
		seen[c.Name] = true
		if c.AreaMM2 < 0 {
			return fmt.Errorf("graph: core %q has negative area", c.Name)
		}
	}
	for _, e := range g.edges {
		if e.From < 0 || e.From >= len(g.cores) || e.To < 0 || e.To >= len(g.cores) {
			return fmt.Errorf("graph: edge %d->%d out of range", e.From, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("graph: self-loop on core %q", g.cores[e.From].Name)
		}
		if e.BandwidthMBps <= 0 {
			return fmt.Errorf("graph: edge %s->%s has non-positive bandwidth",
				g.cores[e.From].Name, g.cores[e.To].Name)
		}
	}
	return nil
}

// Commodities returns the commodity set D sorted by decreasing bandwidth,
// the order the mapping algorithm routes them in (Fig. 5, step 2). Ties
// break on (Src, Dst) so the ordering is deterministic.
func (g *CoreGraph) Commodities() []Commodity {
	out := make([]Commodity, len(g.edges))
	for i, e := range g.edges {
		out[i] = Commodity{Src: e.From, Dst: e.To, ValueMBps: e.BandwidthMBps}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].ValueMBps != out[j].ValueMBps {
			return out[i].ValueMBps > out[j].ValueMBps
		}
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	for i := range out {
		out[i].ID = i
	}
	return out
}

// TotalBandwidthMBps returns the sum of all flow bandwidths.
func (g *CoreGraph) TotalBandwidthMBps() float64 {
	var sum float64
	for _, e := range g.edges {
		sum += e.BandwidthMBps
	}
	return sum
}

// MaxEdgeMBps returns the largest single flow, the lower bound on the link
// capacity any single-path routing needs.
func (g *CoreGraph) MaxEdgeMBps() float64 {
	var m float64
	for _, e := range g.edges {
		if e.BandwidthMBps > m {
			m = e.BandwidthMBps
		}
	}
	return m
}

// CommVolume returns the total bandwidth core i sends plus receives. The
// greedy initial mapping seeds with the core maximizing this value.
func (g *CoreGraph) CommVolume(i int) float64 {
	var sum float64
	for _, e := range g.edges {
		if e.From == i || e.To == i {
			sum += e.BandwidthMBps
		}
	}
	return sum
}

// CommBetween returns the total bandwidth flowing between cores i and j in
// either direction.
func (g *CoreGraph) CommBetween(i, j int) float64 {
	var sum float64
	for _, e := range g.edges {
		if (e.From == i && e.To == j) || (e.From == j && e.To == i) {
			sum += e.BandwidthMBps
		}
	}
	return sum
}

// TotalCoreAreaMM2 returns the summed area of all cores.
func (g *CoreGraph) TotalCoreAreaMM2() float64 {
	var sum float64
	for _, c := range g.cores {
		sum += c.AreaMM2
	}
	return sum
}

// Neighbors returns the indices of cores that core i communicates with
// (either direction), in ascending order without duplicates.
func (g *CoreGraph) Neighbors(i int) []int {
	set := make(map[int]bool)
	for _, e := range g.edges {
		if e.From == i {
			set[e.To] = true
		}
		if e.To == i {
			set[e.From] = true
		}
	}
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Clone returns a deep copy of the graph.
func (g *CoreGraph) Clone() *CoreGraph {
	c := &CoreGraph{
		name:  g.name,
		cores: make([]Core, len(g.cores)),
		edges: make([]Edge, len(g.edges)),
		index: make(map[string]int, len(g.index)),
	}
	copy(c.cores, g.cores)
	copy(c.edges, g.edges)
	for k, v := range g.index {
		c.index[k] = v
	}
	return c
}

// String summarizes the graph for logs and error messages.
func (g *CoreGraph) String() string {
	return fmt.Sprintf("%s: %d cores, %d flows, %.1f MB/s total",
		g.name, len(g.cores), len(g.edges), g.TotalBandwidthMBps())
}

// WriteDOT renders the core graph in Graphviz DOT format with bandwidth
// edge labels, handy for inspecting transcribed benchmarks.
func (g *CoreGraph) WriteDOT(sb *strings.Builder) {
	fmt.Fprintf(sb, "digraph %q {\n", g.name)
	sb.WriteString("  rankdir=LR;\n  node [shape=box];\n")
	for _, c := range g.cores {
		fmt.Fprintf(sb, "  %q [label=\"%s\\n%.1f mm2\"];\n", c.Name, c.Name, c.AreaMM2)
	}
	for _, e := range g.edges {
		fmt.Fprintf(sb, "  %q -> %q [label=\"%g\"];\n",
			g.cores[e.From].Name, g.cores[e.To].Name, e.BandwidthMBps)
	}
	sb.WriteString("}\n")
}

// DOT returns the Graphviz rendering as a string.
func (g *CoreGraph) DOT() string {
	var sb strings.Builder
	g.WriteDOT(&sb)
	return sb.String()
}
