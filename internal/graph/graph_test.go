package graph

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func buildSmall(t *testing.T) *CoreGraph {
	t.Helper()
	g := NewCoreGraph("small")
	for _, n := range []string{"a", "b", "c", "d"} {
		if _, err := g.AddCore(Core{Name: n, AreaMM2: 1}); err != nil {
			t.Fatalf("AddCore(%s): %v", n, err)
		}
	}
	g.MustConnect("a", "b", 100)
	g.MustConnect("b", "c", 50)
	g.MustConnect("c", "a", 50)
	g.MustConnect("a", "d", 25)
	return g
}

func TestAddCoreDuplicate(t *testing.T) {
	g := NewCoreGraph("x")
	if _, err := g.AddCore(Core{Name: "a"}); err != nil {
		t.Fatalf("first add: %v", err)
	}
	if _, err := g.AddCore(Core{Name: "a"}); err == nil {
		t.Fatal("duplicate core accepted")
	}
}

func TestAddCoreRejectsBad(t *testing.T) {
	g := NewCoreGraph("x")
	if _, err := g.AddCore(Core{Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := g.AddCore(Core{Name: "n", AreaMM2: -1}); err == nil {
		t.Error("negative area accepted")
	}
}

func TestConnectErrors(t *testing.T) {
	g := buildSmall(t)
	if err := g.Connect("a", "zz", 1); err == nil {
		t.Error("unknown destination accepted")
	}
	if err := g.Connect("zz", "a", 1); err == nil {
		t.Error("unknown source accepted")
	}
	if err := g.Connect("a", "a", 1); err == nil {
		t.Error("self loop accepted")
	}
	if err := g.Connect("a", "b", 0); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if err := g.Connect("a", "b", -3); err == nil {
		t.Error("negative bandwidth accepted")
	}
}

func TestCommoditiesSortedDescending(t *testing.T) {
	g := buildSmall(t)
	cs := g.Commodities()
	if len(cs) != 4 {
		t.Fatalf("got %d commodities, want 4", len(cs))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i].ValueMBps > cs[i-1].ValueMBps {
			t.Errorf("commodities not sorted: %v before %v", cs[i-1], cs[i])
		}
	}
	if cs[0].ValueMBps != 100 {
		t.Errorf("largest commodity = %g, want 100", cs[0].ValueMBps)
	}
	for i, c := range cs {
		if c.ID != i {
			t.Errorf("commodity %d has ID %d", i, c.ID)
		}
	}
}

func TestCommoditiesDeterministicTieBreak(t *testing.T) {
	g := buildSmall(t)
	a := g.Commodities()
	b := g.Commodities()
	if !reflect.DeepEqual(a, b) {
		t.Error("Commodities not deterministic")
	}
	// b->c and c->a both have 50; (Src,Dst) order must break the tie.
	if !(a[1].Src < a[2].Src || (a[1].Src == a[2].Src && a[1].Dst < a[2].Dst)) {
		t.Errorf("tie not broken deterministically: %v then %v", a[1], a[2])
	}
}

func TestAggregates(t *testing.T) {
	g := buildSmall(t)
	if got := g.TotalBandwidthMBps(); got != 225 {
		t.Errorf("TotalBandwidth = %g, want 225", got)
	}
	if got := g.MaxEdgeMBps(); got != 100 {
		t.Errorf("MaxEdge = %g, want 100", got)
	}
	// a: out 100+25, in 50 -> 175
	if got := g.CommVolume(0); got != 175 {
		t.Errorf("CommVolume(a) = %g, want 175", got)
	}
	if got := g.CommBetween(0, 1); got != 100 {
		t.Errorf("CommBetween(a,b) = %g, want 100", got)
	}
	if got := g.CommBetween(1, 0); got != 100 {
		t.Errorf("CommBetween(b,a) = %g, want 100", got)
	}
	if got := g.TotalCoreAreaMM2(); got != 4 {
		t.Errorf("TotalCoreArea = %g, want 4", got)
	}
}

func TestNeighbors(t *testing.T) {
	g := buildSmall(t)
	got := g.Neighbors(0) // a talks with b, c, d
	want := []int{1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Neighbors(a) = %v, want %v", got, want)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := buildSmall(t)
	c := g.Clone()
	c.MustConnect("d", "a", 7)
	if g.NumEdges() == c.NumEdges() {
		t.Error("clone shares edge storage with original")
	}
	if _, err := c.AddCore(Core{Name: "e"}); err != nil {
		t.Fatalf("clone AddCore: %v", err)
	}
	if _, ok := g.CoreIndex("e"); ok {
		t.Error("clone shares index map with original")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := buildSmall(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	g.edges = append(g.edges, Edge{From: 0, To: 99, BandwidthMBps: 1})
	if err := g.Validate(); err == nil {
		t.Error("out-of-range edge not caught")
	}
	g.edges = g.edges[:len(g.edges)-1]
	g.edges = append(g.edges, Edge{From: 1, To: 1, BandwidthMBps: 1})
	if err := g.Validate(); err == nil {
		t.Error("self-loop not caught")
	}
	var empty CoreGraph
	if err := empty.Validate(); err == nil {
		t.Error("empty graph passed validation")
	}
}

func TestAspectBoundsDefaults(t *testing.T) {
	c := Core{Name: "x"}
	lo, hi := c.AspectBounds()
	if lo != 0.5 || hi != 2.0 {
		t.Errorf("defaults = (%g,%g), want (0.5,2)", lo, hi)
	}
	c = Core{Name: "x", MinAspect: 2, MaxAspect: 1}
	lo, hi = c.AspectBounds()
	if lo != 1 || hi != 2 {
		t.Errorf("swapped bounds = (%g,%g), want (1,2)", lo, hi)
	}
}

func TestDOTContainsAllCoresAndEdges(t *testing.T) {
	g := buildSmall(t)
	dot := g.DOT()
	for _, n := range []string{"\"a\"", "\"b\"", "\"c\"", "\"d\""} {
		if !strings.Contains(dot, n) {
			t.Errorf("DOT missing node %s", n)
		}
	}
	if !strings.Contains(dot, "\"a\" -> \"b\"") {
		t.Error("DOT missing edge a->b")
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `
# VOPD-ish fragment
app frag
core vld  area=3.0
core rld  area=2.5 soft aspect=0.5,2
core mem  area=6
flow vld -> rld 70
flow rld -> mem 362
`
	g, err := ParseString(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if g.Name() != "frag" || g.NumCores() != 3 || g.NumEdges() != 2 {
		t.Fatalf("parsed %s", g)
	}
	i, ok := g.CoreIndex("rld")
	if !ok {
		t.Fatal("rld missing")
	}
	c := g.Core(i)
	if !c.Soft || c.MinAspect != 0.5 || c.MaxAspect != 2 || c.AreaMM2 != 2.5 {
		t.Errorf("rld attrs = %+v", c)
	}
	g2, err := ParseString(Format(g))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !reflect.DeepEqual(g.Cores(), g2.Cores()) || !reflect.DeepEqual(g.Edges(), g2.Edges()) {
		t.Error("Format/Parse did not round-trip")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"core",                           // missing name
		"core a bogus=1",                 // unknown attr
		"core a area=xx",                 // bad float
		"core a aspect=1",                // malformed aspect
		"flow a b 10",                    // missing arrow
		"core a\nflow a -> b 10",         // unknown dest
		"core a\ncore b\nflow a -> b zz", // bad bw
		"wibble 3",                       // unknown directive
		"core a\ncore a",                 // duplicate
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", src)
		}
	}
}

func TestParseIgnoresCommentsAndBlanks(t *testing.T) {
	g, err := ParseString("\n# hi\ncore a area=1 # trailing\n\ncore b\nflow a -> b 5\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if g.NumCores() != 2 || g.NumEdges() != 1 {
		t.Fatalf("got %s", g)
	}
}

// Property: total bandwidth equals the sum over commodities, and commodity
// extraction preserves every edge exactly once.
func TestCommoditiesPreserveEdgesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewCoreGraph("rand")
		n := 2 + rng.Intn(10)
		for i := 0; i < n; i++ {
			g.MustAddCore(Core{Name: string(rune('a' + i)), AreaMM2: 1})
		}
		e := 1 + rng.Intn(20)
		for i := 0; i < e; i++ {
			u := rng.Intn(n)
			v := rng.Intn(n)
			if u == v {
				continue
			}
			g.MustConnect(g.Core(u).Name, g.Core(v).Name, 1+float64(rng.Intn(1000)))
		}
		cs := g.Commodities()
		if len(cs) != g.NumEdges() {
			return false
		}
		var sum float64
		for _, c := range cs {
			sum += c.ValueMBps
		}
		return almostEq(sum, g.TotalBandwidthMBps())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9*(1+abs(a)+abs(b))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
