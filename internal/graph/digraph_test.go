package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// grid builds an r x c grid digraph with bidirectional arcs; arc IDs count
// up in insertion order. Vertex (i,j) has index i*c+j.
func grid(r, c int) *Digraph {
	d := NewDigraph(r * c)
	id := 0
	add := func(u, v int) {
		d.AddArc(u, v, id)
		id++
		d.AddArc(v, u, id)
		id++
	}
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				add(i*c+j, i*c+j+1)
			}
			if i+1 < r {
				add(i*c+j, (i+1)*c+j)
			}
		}
	}
	return d
}

func TestDijkstraUnitGrid(t *testing.T) {
	d := grid(3, 4)
	dist, _, _ := d.Dijkstra(0, UnitWeight, nil)
	// Manhattan distance on grid.
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			want := float64(i + j)
			if got := dist[i*4+j]; got != want {
				t.Errorf("dist(0 -> (%d,%d)) = %g, want %g", i, j, got, want)
			}
		}
	}
}

func TestShortestPathRecovery(t *testing.T) {
	d := grid(3, 4)
	verts, arcs, ok := d.ShortestPath(0, 11, UnitWeight, nil)
	if !ok {
		t.Fatal("no path found")
	}
	if len(verts) != 6 || len(arcs) != 5 {
		t.Fatalf("path length = %d verts %d arcs, want 6/5", len(verts), len(arcs))
	}
	if verts[0] != 0 || verts[len(verts)-1] != 11 {
		t.Errorf("endpoints %d..%d, want 0..11", verts[0], verts[len(verts)-1])
	}
	// consecutive vertices must be adjacent
	for i := 0; i+1 < len(verts); i++ {
		found := false
		for _, a := range d.Out(verts[i]) {
			if a.To == verts[i+1] && a.ID == arcs[i] {
				found = true
			}
		}
		if !found {
			t.Errorf("step %d: %d->%d not an arc", i, verts[i], verts[i+1])
		}
	}
}

func TestDijkstraRespectsAllowed(t *testing.T) {
	d := grid(3, 3)
	// Only allow the top row and right column: 0 1 2, 5, 8.
	allowed := make([]bool, 9)
	for _, v := range []int{0, 1, 2, 5, 8} {
		allowed[v] = true
	}
	dist, _, _ := d.Dijkstra(0, UnitWeight, allowed)
	if dist[8] != 4 {
		t.Errorf("restricted dist = %g, want 4", dist[8])
	}
	if !math.IsInf(dist[4], 1) {
		t.Errorf("forbidden vertex reached: dist=%g", dist[4])
	}
	// Unreachable when the source is excluded.
	allowed[0] = false
	dist, _, _ = d.Dijkstra(0, UnitWeight, allowed)
	if !math.IsInf(dist[8], 1) {
		t.Error("path found from excluded source")
	}
}

func TestDijkstraWeightFunc(t *testing.T) {
	// Two routes 0->3: direct arc cost 10 vs 0->1->2->3 cost 3.
	d := NewDigraph(4)
	d.AddArc(0, 3, 0)
	d.AddArc(0, 1, 1)
	d.AddArc(1, 2, 2)
	d.AddArc(2, 3, 3)
	w := func(_ int, a Arc) float64 {
		if a.ID == 0 {
			return 10
		}
		return 1
	}
	verts, _, ok := d.ShortestPath(0, 3, w, nil)
	if !ok || len(verts) != 4 {
		t.Fatalf("path %v ok=%v, want detour of 4 vertices", verts, ok)
	}
	// Infinite weight removes the arc entirely.
	w2 := func(_ int, a Arc) float64 {
		if a.ID != 0 {
			return math.Inf(1)
		}
		return 10
	}
	verts, _, ok = d.ShortestPath(0, 3, w2, nil)
	if !ok || len(verts) != 2 {
		t.Fatalf("direct path %v ok=%v, want 0->3", verts, ok)
	}
}

func TestHopDistance(t *testing.T) {
	d := grid(4, 4)
	if got := d.HopDistance(0, 15, nil); got != 6 {
		t.Errorf("HopDistance corner-to-corner = %d, want 6", got)
	}
	if got := d.HopDistance(5, 5, nil); got != 0 {
		t.Errorf("HopDistance self = %d, want 0", got)
	}
	// Disconnected when allowed excludes everything but the endpoints.
	allowed := make([]bool, 16)
	allowed[0], allowed[15] = true, true
	if got := d.HopDistance(0, 15, allowed); got != -1 {
		t.Errorf("HopDistance disconnected = %d, want -1", got)
	}
}

func TestAllMinHopArcs(t *testing.T) {
	d := grid(3, 3)
	// 0 -> 8: all monotone right/down paths; the DAG has 12 arcs
	// (each of the 12 rightward/downward arcs inside the box).
	arcs := d.AllMinHopArcs(0, 8, nil)
	if len(arcs) != 12 {
		t.Errorf("min-hop DAG has %d arcs, want 12", len(arcs))
	}
	// Every arc in the DAG lies on a path of length 4: verify by checking
	// dist(src,u)+1+dist(v,dst) == 4 for the arc u->v.
	for u := 0; u < 9; u++ {
		for _, a := range d.Out(u) {
			if !arcs[a.ID] {
				continue
			}
			du := d.HopDistance(0, u, nil)
			dv := d.HopDistance(a.To, 8, nil)
			if du+1+dv != 4 {
				t.Errorf("arc %d->%d on DAG but %d+1+%d != 4", u, a.To, du, dv)
			}
		}
	}
	// Unreachable pair yields an empty set.
	allowed := make([]bool, 9)
	allowed[0], allowed[8] = true, true
	if got := d.AllMinHopArcs(0, 8, allowed); len(got) != 0 {
		t.Errorf("disconnected min-hop DAG has %d arcs, want 0", len(got))
	}
}

func TestAddArcPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddArc out of range did not panic")
		}
	}()
	d := NewDigraph(2)
	d.AddArc(0, 5, 0)
}

func TestDijkstraPanicsOnNegativeWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative weight did not panic")
		}
	}()
	d := NewDigraph(2)
	d.AddArc(0, 1, 0)
	d.Dijkstra(0, func(int, Arc) float64 { return -1 }, nil)
}

// Property: on random graphs with random positive weights, Dijkstra
// distances satisfy the triangle inequality over arcs:
// dist[v] <= dist[u] + w(u,v).
func TestDijkstraTriangleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		d := NewDigraph(n)
		weights := make(map[int]float64)
		id := 0
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			weights[id] = rng.Float64()*10 + 0.01
			d.AddArc(u, v, id)
			id++
		}
		w := func(_ int, a Arc) float64 { return weights[a.ID] }
		dist, _, _ := d.Dijkstra(0, w, nil)
		for u := 0; u < n; u++ {
			if math.IsInf(dist[u], 1) {
				continue
			}
			for _, a := range d.Out(u) {
				if dist[a.To] > dist[u]+weights[a.ID]+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: BFS hop distance equals Dijkstra distance under unit weights.
func TestHopDistanceMatchesDijkstraProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		d := NewDigraph(n)
		id := 0
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			d.AddArc(u, v, id)
			id++
		}
		dist, _, _ := d.Dijkstra(0, UnitWeight, nil)
		for v := 0; v < n; v++ {
			hd := d.HopDistance(0, v, nil)
			if hd == -1 {
				if !math.IsInf(dist[v], 1) {
					return false
				}
				continue
			}
			if float64(hd) != dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
