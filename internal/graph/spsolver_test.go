package graph

import (
	"container/heap"
	"math"
	"math/rand"
	"testing"
)

// oraclePQ is the old container/heap-based priority queue, kept here as the
// reference the boxing-free heap must match pop-for-pop. Equal-distance
// vertices are popped in a heap-shape-dependent order that decides which of
// several equal-cost shortest paths Dijkstra reports; the rewrite must not
// change it, or previously cached/published mapping results would shift.
type oraclePQ []pqItem

func (q oraclePQ) Len() int            { return len(q) }
func (q oraclePQ) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q oraclePQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *oraclePQ) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *oraclePQ) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// oracleDijkstra is the pre-rewrite Dijkstra verbatim (container/heap,
// fresh allocations).
func oracleDijkstra(d *Digraph, src int, w WeightFunc, allowed []bool) (dist []float64, prevV, prevArc []int) {
	n := d.NumVertices()
	dist = make([]float64, n)
	prevV = make([]int, n)
	prevArc = make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevV[i] = -1
		prevArc[i] = -1
	}
	if allowed != nil && !allowed[src] {
		return dist, prevV, prevArc
	}
	dist[src] = 0
	q := oraclePQ{{v: src, dist: 0}}
	done := make([]bool, n)
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		u := it.v
		if done[u] || it.dist > dist[u] {
			continue
		}
		done[u] = true
		for _, a := range d.Out(u) {
			if allowed != nil && !allowed[a.To] {
				continue
			}
			wt := w(u, a)
			if math.IsInf(wt, 1) {
				continue
			}
			if nd := dist[u] + wt; nd < dist[a.To] {
				dist[a.To] = nd
				prevV[a.To] = u
				prevArc[a.To] = a.ID
				heap.Push(&q, pqItem{v: a.To, dist: nd})
			}
		}
	}
	return dist, prevV, prevArc
}

// TestSPSolverMatchesContainerHeapOracle stresses tie-breaking: random
// graphs whose arc weights are drawn from a tiny set, so many equal-cost
// paths exist and the predecessor choice is decided purely by heap pop
// order. The solver (and therefore Digraph.Dijkstra, which wraps it) must
// agree with the container/heap oracle on every distance AND every
// predecessor.
func TestSPSolverMatchesContainerHeapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSPSolver()
	for trial := 0; trial < 200; trial++ {
		n := 4 + rng.Intn(24)
		d := NewDigraph(n)
		weights := make(map[int]float64)
		arcs := 2 * n
		for i := 0; i < arcs; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			id := d.NumArcs()
			d.AddArc(u, v, id)
			weights[id] = float64(rng.Intn(3)) // heavy tie pressure
		}
		var allowed []bool
		if trial%3 == 0 {
			allowed = make([]bool, n)
			for i := range allowed {
				allowed[i] = rng.Intn(4) > 0
			}
		}
		w := func(_ int, a Arc) float64 { return weights[a.ID] }
		src := rng.Intn(n)
		if allowed != nil && !allowed[src] {
			continue
		}
		wantDist, wantPrevV, wantPrevArc := oracleDijkstra(d, src, w, allowed)
		s.Dijkstra(d, src, w, allowed)
		for v := 0; v < n; v++ {
			if got := s.Dist(v); got != wantDist[v] && !(math.IsInf(got, 1) && math.IsInf(wantDist[v], 1)) {
				t.Fatalf("trial %d: dist[%d] = %v, oracle %v", trial, v, got, wantDist[v])
			}
			gotPV, gotPA := s.Prev(v)
			if gotPV != wantPrevV[v] || gotPA != wantPrevArc[v] {
				t.Fatalf("trial %d: prev[%d] = (%d,%d), oracle (%d,%d)",
					trial, v, gotPV, gotPA, wantPrevV[v], wantPrevArc[v])
			}
		}
	}
}

// TestSPSolverReuseAcrossSizes checks the epoch-stamped reset: a solver
// shrunk onto a smaller graph must not leak distances from a previous
// larger run.
func TestSPSolverReuseAcrossSizes(t *testing.T) {
	s := NewSPSolver()
	big := NewDigraph(10)
	for i := 0; i+1 < 10; i++ {
		big.AddArc(i, i+1, i)
	}
	s.Dijkstra(big, 0, UnitWeight, nil)
	if got := s.Dist(9); got != 9 {
		t.Fatalf("chain dist = %v, want 9", got)
	}
	small := NewDigraph(3)
	small.AddArc(0, 1, 0)
	s.Dijkstra(small, 0, UnitWeight, nil)
	if got := s.Dist(1); got != 1 {
		t.Errorf("small dist[1] = %v, want 1", got)
	}
	if got := s.Dist(2); !math.IsInf(got, 1) {
		t.Errorf("small dist[2] = %v, want +Inf (stale state leaked)", got)
	}
	verts, arcs, ok := s.PathTo(0, 1, nil, nil)
	if !ok || len(verts) != 2 || len(arcs) != 1 {
		t.Errorf("PathTo = %v %v %v", verts, arcs, ok)
	}
}
