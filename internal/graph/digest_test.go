package graph

import "testing"

func digestGraph(name string, bw float64) *CoreGraph {
	g := NewCoreGraph(name)
	g.MustAddCore(Core{Name: "a", AreaMM2: 1})
	g.MustAddCore(Core{Name: "b", AreaMM2: 2})
	g.MustConnect("a", "b", bw)
	return g
}

func TestDigestStableAndNameIndependent(t *testing.T) {
	a := digestGraph("one", 100)
	if a.Digest() != a.Digest() {
		t.Fatal("digest not stable across calls")
	}
	if a.Digest() != digestGraph("two", 100).Digest() {
		t.Error("digest depends on the application name; renames should not invalidate the cache")
	}
	if a.Digest() != a.Clone().Digest() {
		t.Error("clone changed the digest")
	}
}

func TestDigestSensitiveToContent(t *testing.T) {
	base := digestGraph("app", 100)
	if base.Digest() == digestGraph("app", 200).Digest() {
		t.Error("bandwidth change did not change the digest")
	}
	moreCores := digestGraph("app", 100)
	moreCores.MustAddCore(Core{Name: "c", AreaMM2: 3})
	if base.Digest() == moreCores.Digest() {
		t.Error("extra core did not change the digest")
	}
	softer := NewCoreGraph("app")
	softer.MustAddCore(Core{Name: "a", AreaMM2: 1, Soft: true})
	softer.MustAddCore(Core{Name: "b", AreaMM2: 2})
	softer.MustConnect("a", "b", 100)
	if base.Digest() == softer.Digest() {
		t.Error("soft-block flag did not change the digest")
	}
}
