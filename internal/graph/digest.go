package graph

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Digest returns a content hash of the core graph: cores (name, area,
// softness, aspect bounds) and edges (endpoints, bandwidth) in insertion
// order. Two graphs with the same digest produce identical mappings under
// identical options, so the digest keys the evaluation cache. The
// application name is deliberately excluded: renaming an app does not
// change its design points.
func (g *CoreGraph) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "cores:%d\n", len(g.cores))
	for _, c := range g.cores {
		lo, hi := c.AspectBounds()
		fmt.Fprintf(h, "%s|%g|%t|%g|%g\n", c.Name, c.AreaMM2, c.Soft, lo, hi)
	}
	fmt.Fprintf(h, "edges:%d\n", len(g.edges))
	for _, e := range g.edges {
		fmt.Fprintf(h, "%d>%d|%g\n", e.From, e.To, e.BandwidthMBps)
	}
	return hex.EncodeToString(h.Sum(nil))
}
