package graph

import (
	"fmt"
	"math"
)

// pqItem is an entry of the Dijkstra priority queue.
type pqItem struct {
	v    int
	dist float64
}

// heapPush and heapPop implement a binary min-heap on a concrete []pqItem,
// replicating the sift rules of container/heap exactly (strict-less
// comparisons, identical child selection). The replication matters: among
// equal-distance vertices the pop order decides which of several equal-cost
// shortest paths Dijkstra reports, and the mapper's byte-identical
// equivalence guarantee relies on that order never changing. The rewrite
// only removes the interface{} boxing (and virtual Less/Swap calls) that
// container/heap forced on every push and pop.
func heapPush(q *[]pqItem, it pqItem) {
	h := append(*q, it) //sunmap:alloc amortized heap growth; steady-state pushes reuse capacity
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
	*q = h
}

func heapPop(q *[]pqItem) pqItem {
	h := *q
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	i := 0
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && h[j2].dist < h[j].dist {
			j = j2
		}
		if !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	it := h[n]
	*q = h[:n]
	return it
}

// SPSolver is reusable scratch state for repeated shortest-path queries on
// graphs of (roughly) one size: the dist/prev/settled arrays and the heap
// are allocated once and recycled, so steady-state Dijkstra runs perform no
// heap allocations. Resets are epoch-stamped — bumping a counter instead of
// clearing O(n) memory — which is what makes the solver cheap enough to sit
// inside the mapper's pairwise-swap loop where thousands of short queries
// run back to back.
//
// A solver is NOT safe for concurrent use; give each worker its own
// (internal/engine pools one per evaluation worker).
type SPSolver struct {
	dist    []float64
	prevV   []int
	prevArc []int
	stamp   []uint32 // dist/prev valid when stamp[v] == epoch
	settled []uint32 // vertex settled when settled[v] == epoch
	epoch   uint32
	heap    []pqItem
}

// NewSPSolver returns an empty solver; arrays grow on first use.
func NewSPSolver() *SPSolver { return &SPSolver{} }

// reset prepares the solver for a run over n vertices.
func (s *SPSolver) reset(n int) {
	if cap(s.dist) < n {
		s.dist = make([]float64, n)   //sunmap:alloc first-use growth, recycled across runs
		s.prevV = make([]int, n)      //sunmap:alloc first-use growth, recycled across runs
		s.prevArc = make([]int, n)    //sunmap:alloc first-use growth, recycled across runs
		s.stamp = make([]uint32, n)   //sunmap:alloc first-use growth, recycled across runs
		s.settled = make([]uint32, n) //sunmap:alloc first-use growth, recycled across runs
	}
	s.dist = s.dist[:n]
	s.prevV = s.prevV[:n]
	s.prevArc = s.prevArc[:n]
	s.stamp = s.stamp[:n]
	s.settled = s.settled[:n]
	s.epoch++
	if s.epoch == 0 {
		// Wrapped: stale stamps could alias the new epoch. Hard-clear the
		// FULL capacity, not just [:n] — indices beyond the current graph
		// may hold stamps from an earlier, larger run that a later regrow
		// would otherwise read as valid.
		full := s.stamp[:cap(s.stamp)]
		for i := range full {
			full[i] = 0
		}
		full = s.settled[:cap(s.settled)]
		for i := range full {
			full[i] = 0
		}
		s.epoch = 1
	}
	s.heap = s.heap[:0]
}

// Dist returns the distance of v computed by the last Dijkstra run
// (+Inf when unreached).
func (s *SPSolver) Dist(v int) float64 {
	if s.stamp[v] != s.epoch {
		return math.Inf(1)
	}
	return s.dist[v]
}

// Prev returns the predecessor vertex and arc ID on the shortest path to v
// from the last run (-1, -1 when unreached or at the source).
func (s *SPSolver) Prev(v int) (prevV, prevArc int) {
	if s.stamp[v] != s.epoch {
		return -1, -1
	}
	return s.prevV[v], s.prevArc[v]
}

// Dijkstra computes single-source shortest paths from src under w,
// restricted to `allowed` (nil = all vertices), leaving the results
// readable through Dist/Prev until the next run. The relaxation rules and
// heap discipline are identical to Digraph.Dijkstra — the two must agree
// bit-for-bit on every path so scratch-based and allocating callers see the
// same routing decisions.
//
//sunmap:hotpath
func (s *SPSolver) Dijkstra(d *Digraph, src int, w WeightFunc, allowed []bool) {
	n := len(d.adj)
	s.reset(n)
	if src < 0 || src >= n {
		panic(fmt.Sprintf("graph: Dijkstra source %d out of range", src)) //sunmap:alloc panic path
	}
	if allowed != nil && !allowed[src] {
		return
	}
	s.dist[src] = 0
	s.prevV[src] = -1
	s.prevArc[src] = -1
	s.stamp[src] = s.epoch
	heapPush(&s.heap, pqItem{v: src, dist: 0})
	for len(s.heap) > 0 {
		it := heapPop(&s.heap)
		u := it.v
		if s.settled[u] == s.epoch || it.dist > s.dist[u] {
			continue
		}
		s.settled[u] = s.epoch
		du := s.dist[u]
		for _, a := range d.adj[u] {
			if allowed != nil && !allowed[a.To] {
				continue
			}
			wt := w(u, a)
			if math.IsInf(wt, 1) {
				continue
			}
			if wt < 0 {
				panic(fmt.Sprintf("graph: negative arc weight %g on %d->%d", wt, u, a.To)) //sunmap:alloc panic path
			}
			if nd := du + wt; nd < s.Dist(a.To) {
				s.dist[a.To] = nd
				s.prevV[a.To] = u
				s.prevArc[a.To] = a.ID
				s.stamp[a.To] = s.epoch
				heapPush(&s.heap, pqItem{v: a.To, dist: nd})
			}
		}
	}
}

// DijkstraTo runs Dijkstra from src but stops as soon as dst is settled.
// Distances and predecessor chains of vertices settled before dst are
// final and identical to a full run's; dst's own chain — the only thing a
// subsequent PathTo(src, dst, ...) reads — is final at settlement, so
// single-destination callers get bit-identical paths at a fraction of the
// work (the router graph's search frontier stops growing at dst instead
// of sweeping the whole topology).
//
//sunmap:hotpath
func (s *SPSolver) DijkstraTo(d *Digraph, src, dst int, w WeightFunc, allowed []bool) {
	n := len(d.adj)
	s.reset(n)
	if src < 0 || src >= n {
		panic(fmt.Sprintf("graph: Dijkstra source %d out of range", src)) //sunmap:alloc panic path
	}
	if allowed != nil && !allowed[src] {
		return
	}
	s.dist[src] = 0
	s.prevV[src] = -1
	s.prevArc[src] = -1
	s.stamp[src] = s.epoch
	heapPush(&s.heap, pqItem{v: src, dist: 0})
	for len(s.heap) > 0 {
		it := heapPop(&s.heap)
		u := it.v
		if s.settled[u] == s.epoch || it.dist > s.dist[u] {
			continue
		}
		s.settled[u] = s.epoch
		if u == dst {
			return
		}
		du := s.dist[u]
		for _, a := range d.adj[u] {
			if allowed != nil && !allowed[a.To] {
				continue
			}
			wt := w(u, a)
			if math.IsInf(wt, 1) {
				continue
			}
			if wt < 0 {
				panic(fmt.Sprintf("graph: negative arc weight %g on %d->%d", wt, u, a.To)) //sunmap:alloc panic path
			}
			if nd := du + wt; nd < s.Dist(a.To) {
				s.dist[a.To] = nd
				s.prevV[a.To] = u
				s.prevArc[a.To] = a.ID
				s.stamp[a.To] = s.epoch
				heapPush(&s.heap, pqItem{v: a.To, dist: nd})
			}
		}
	}
}

// DijkstraLoads is DijkstraTo specialized to the routing hot path's
// congestion weight, loads[arc]+bias, with the weight and its masks
// inlined instead of going through a WeightFunc closure: arcs excluded by
// the dag mask (nil = no restriction) or marked down are unreachable
// (exactly the closure's +Inf), everything else relaxes in the same order
// with the same arithmetic, so paths stay bit-identical to the generic
// solver's. This removes the indirect call per arc from the innermost
// loop of the mapper's swap sweep.
//
//sunmap:hotpath
func (s *SPSolver) DijkstraLoads(d *Digraph, src, dst int, loads []float64, bias float64, dag, down, allowed []bool) {
	n := len(d.adj)
	s.reset(n)
	if src < 0 || src >= n {
		panic(fmt.Sprintf("graph: Dijkstra source %d out of range", src)) //sunmap:alloc panic path
	}
	if allowed != nil && !allowed[src] {
		return
	}
	s.dist[src] = 0
	s.prevV[src] = -1
	s.prevArc[src] = -1
	s.stamp[src] = s.epoch
	heapPush(&s.heap, pqItem{v: src, dist: 0})
	for len(s.heap) > 0 {
		it := heapPop(&s.heap)
		u := it.v
		if s.settled[u] == s.epoch || it.dist > s.dist[u] {
			continue
		}
		s.settled[u] = s.epoch
		if u == dst {
			return
		}
		du := s.dist[u]
		for _, a := range d.adj[u] {
			if allowed != nil && !allowed[a.To] {
				continue
			}
			if dag != nil && !dag[a.ID] {
				continue
			}
			if down != nil && down[a.ID] {
				continue
			}
			wt := loads[a.ID] + bias
			if wt < 0 {
				panic(fmt.Sprintf("graph: negative arc weight %g on %d->%d", wt, u, a.To)) //sunmap:alloc panic path
			}
			if nd := du + wt; nd < s.Dist(a.To) {
				s.dist[a.To] = nd
				s.prevV[a.To] = u
				s.prevArc[a.To] = a.ID
				s.stamp[a.To] = s.epoch
				heapPush(&s.heap, pqItem{v: a.To, dist: nd})
			}
		}
	}
}

// PathTo recovers the src->dst path of the last Dijkstra run, appending the
// vertex sequence and arc-ID sequence into the provided buffers (which are
// truncated first and may be nil). It returns the filled slices and whether
// dst was reached. The returned slices alias the buffers: callers that keep
// a path across runs must copy it out.
//
//sunmap:hotpath
func (s *SPSolver) PathTo(src, dst int, verts, arcs []int) (v, a []int, ok bool) {
	verts, arcs = verts[:0], arcs[:0]
	if math.IsInf(s.Dist(dst), 1) {
		return verts, arcs, false
	}
	for u := dst; u != src; u = s.prevV[u] {
		verts = append(verts, u)          //sunmap:alloc amortized growth into caller-owned buffer
		arcs = append(arcs, s.prevArc[u]) //sunmap:alloc amortized growth into caller-owned buffer
	}
	verts = append(verts, src) //sunmap:alloc amortized growth into caller-owned buffer
	reverseInts(verts)
	reverseInts(arcs)
	return verts, arcs, true
}
