package graph

import (
	"strings"
	"testing"
)

// FuzzParse drives the text-format parser with arbitrary input: it must
// never panic, and any graph it accepts must already be validated.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"# just a comment\n",
		"app vopd\ncore a area=2.0\ncore b area=3.0 soft\nflow a -> b 70\n",
		"core a area=2\ncore b area=6 soft aspect=0.5,2.0\nflow a -> b 100\nflow b -> a 50\n",
		"app x\ncore a\ncore b area=1e3\nflow a -> b 0.5\n",
		"core a area=2 aspect=1,1\nflow a -> a 1\n",
		"flow a -> b 70\n",
		"core a area=nope\n",
		"app\n",
		"bogus line here\n",
		"core a area=2\ncore a area=3\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		if g == nil {
			t.Fatal("Parse returned nil graph and nil error")
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("Parse accepted an invalid graph: %v\ninput: %q", err, src)
		}
	})
}
