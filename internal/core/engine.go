// Package core is SUNMAP's selection policy layer: Phase 1 maps the
// application onto every topology in the library under the chosen routing
// function and objective; Phase 2 evaluates the candidates and selects the
// best feasible topology (Section 3 of the paper). The actual Phase-1
// evaluations run on internal/engine's concurrent worker pool with a
// shared content-addressed cache; core decides what to evaluate (library
// enumeration, application-specific synthesis via internal/synth, routing
// escalation) and how to rank the outcomes. The package also hosts the
// design-space explorers behind Fig. 9: the routing-function bandwidth
// sweep and the area-power Pareto search.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"sunmap/internal/engine"
	"sunmap/internal/fault"
	"sunmap/internal/graph"
	"sunmap/internal/mapping"
	"sunmap/internal/pool"
	"sunmap/internal/route"
	"sunmap/internal/synth"
	"sunmap/internal/topology"
)

// Config drives one Select run.
type Config struct {
	// App is the application core graph.
	App *graph.CoreGraph
	// Library lists the candidate topologies. Nil selects the default
	// library for the app's core count (all mesh/torus/hypercube/
	// butterfly/clos configurations, plus extras per LibraryOpts).
	Library []topology.Topology
	// LibraryOpts tunes the default enumeration when Library is nil.
	LibraryOpts topology.LibraryOptions
	// Synth, when non-nil, augments the candidate set with
	// application-specific topologies synthesized from the core graph
	// (internal/synth): clustered min-cut partitions, a trimmed mesh and a
	// sparse Hamming graph. Synthesized candidates are appended after the
	// library (or after an explicit Library) and compete in Phase 2 on
	// equal terms. Synthesis is deterministic, so results remain
	// independent of Parallelism, and the candidates carry structural
	// digests so Cache memoizes them like any library member.
	Synth *synth.Options
	// Mapping carries the routing function, objective, constraints and
	// technology shared by every Phase 1 mapping.
	Mapping mapping.Options
	// EscalateRouting retries with more flexible routing functions
	// (MP -> SM -> SA) when no topology produces a feasible mapping,
	// mirroring Section 6.1's MPEG4 flow ("So we apply multi-path
	// routing, splitting the traffic across many paths").
	EscalateRouting bool
	// Parallelism bounds the engine worker pool for Phase 1. 0 selects
	// GOMAXPROCS; 1 forces the sequential path. Results are identical at
	// every setting.
	Parallelism int
	// Cache, when non-nil, memoizes Phase-1 evaluations so repeated
	// Select calls, RoutingSweep and ParetoExplore on the same app share
	// work. Nil disables memoization (a single Select never revisits a
	// design point — escalation changes the routing function — so a
	// private cache would buy nothing).
	Cache *engine.Cache
	// Progress, when non-nil, streams one event per evaluated candidate.
	Progress engine.Progress
	// Limit, when non-nil, bounds in-flight mapping evaluations across
	// concurrent Select/explore calls sharing it (see engine.Options.Limit).
	Limit *pool.Limiter
	// Fault, when non-nil, adds a reliability axis to Phase 2: every
	// feasible candidate's survivability under the model's failure
	// scenarios is computed by degraded-mode rerouting (internal/fault)
	// and folded into the final ranking — see ReliabilityWeight. The
	// sweeps run on the engine pool within the same Parallelism/Limit
	// budget as the mapping evaluations.
	Fault *fault.Model
	// ReliabilityWeight scales the reliability term of the fault-aware
	// ranking: feasible candidates order by
	// cost/bestCost + w·(1 − survivability), so w ≈ 1 trades a full
	// connectivity loss against a doubling of the design objective.
	// Zero or negative selects 1.
	ReliabilityWeight float64
}

// Candidate is one evaluated (topology, mapping) pair.
type Candidate struct {
	*mapping.Result
	// MapErr records a hard mapping failure (e.g. too few terminals);
	// the Result is nil in that case.
	MapErr error
	// Survivability is the candidate's fault-sweep report, set for
	// feasible candidates when Config.Fault is active (nil otherwise).
	Survivability *fault.Report
}

// Name returns the candidate topology's name, even for failed candidates.
func (c Candidate) Name() string {
	if c.Result != nil {
		return c.Result.Topology.Name()
	}
	return "unmappable"
}

// Selection is the outcome of the two SUNMAP phases.
type Selection struct {
	// Candidates holds every evaluated mapping, feasible or not, in
	// library order.
	Candidates []Candidate
	// Best points at the selected candidate (nil when nothing feasible).
	Best *mapping.Result
	// RoutingUsed is the routing function the selection was made under
	// (it differs from Config.Mapping.Routing after escalation).
	RoutingUsed route.Function
}

// FeasibleCount returns the number of feasible candidates.
func (s *Selection) FeasibleCount() int {
	n := 0
	for _, c := range s.Candidates {
		if c.Result != nil && c.Feasible() {
			n++
		}
	}
	return n
}

// SynthCount returns the number of evaluated synthesized (Kind Synth)
// candidates, feasible or not.
func (s *Selection) SynthCount() int {
	n := 0
	for _, c := range s.Candidates {
		if c.Result != nil && c.Result.Topology.Kind() == topology.Synth {
			n++
		}
	}
	return n
}

// BestPerKind returns, for each topology family present, the feasible
// candidate with the lowest cost — the per-family rows of Fig. 6/7.
func (s *Selection) BestPerKind() map[topology.Kind]*mapping.Result {
	out := make(map[topology.Kind]*mapping.Result)
	for _, c := range s.Candidates {
		if c.Result == nil || !c.Feasible() {
			continue
		}
		k := c.Result.Topology.Kind()
		if cur, ok := out[k]; !ok || less(c.Result, cur) {
			out[k] = c.Result
		}
	}
	return out
}

// BestComposite re-ranks the feasible candidates with a composite
// judgement across delay, area and power: each metric is normalized by the
// best value any feasible candidate achieves, then combined with the given
// weights. This is Phase 2's multi-objective mode — the reasoning of
// Section 6.1's MPEG4 discussion, where the mesh's "large savings in area
// and power ... overshadow the slightly higher communication delay cost".
// It returns nil when nothing is feasible.
func (s *Selection) BestComposite(wDelay, wArea, wPower float64) *mapping.Result {
	minHops, minArea, minPower := math.Inf(1), math.Inf(1), math.Inf(1)
	for _, c := range s.Candidates {
		if c.Result == nil || !c.Feasible() {
			continue
		}
		minHops = math.Min(minHops, c.Result.AvgHops)
		minArea = math.Min(minArea, c.Result.DesignAreaMM2)
		minPower = math.Min(minPower, c.Result.PowerMW)
	}
	var best *mapping.Result
	bestScore := math.Inf(1)
	for _, c := range s.Candidates {
		if c.Result == nil || !c.Feasible() {
			continue
		}
		r := c.Result
		score := wDelay*safeDiv(r.AvgHops, minHops) +
			wArea*safeDiv(r.DesignAreaMM2, minArea) +
			wPower*safeDiv(r.PowerMW, minPower)
		if score < bestScore || (score == bestScore && best != nil && less(r, best)) {
			bestScore = score
			best = r
		}
	}
	return best
}

func safeDiv(a, b float64) float64 {
	if b <= 0 {
		return 1
	}
	return a / b
}

// escalation orders the routing functions by increasing flexibility.
var escalation = []route.Function{route.DimensionOrdered, route.MinPath, route.SplitMin, route.SplitAll}

// Select runs Phase 1 (map onto every library topology) and Phase 2
// (choose the best feasible candidate under the objective).
func Select(cfg Config) (*Selection, error) {
	return SelectContext(context.Background(), cfg)
}

// SelectContext is Select with cancellation: ctx aborts the Phase-1 sweep
// (including evaluations already in flight on the worker pool) and the
// routing-escalation retries, returning the context's error.
func SelectContext(ctx context.Context, cfg Config) (*Selection, error) {
	if cfg.App == nil {
		return nil, fmt.Errorf("core: nil application")
	}
	if err := cfg.App.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	lib := cfg.Library
	if lib == nil {
		var err error
		lib, err = topology.Library(cfg.App.NumCores(), cfg.LibraryOpts)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	if cfg.Synth != nil {
		cands, err := synth.Candidates(cfg.App, *cfg.Synth)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		lib = append(append([]topology.Topology(nil), lib...), cands...)
	}
	if len(lib) == 0 {
		return nil, fmt.Errorf("core: empty topology library")
	}
	eo := engine.Options{Parallelism: cfg.Parallelism, Cache: cfg.Cache, Progress: cfg.Progress, Limit: cfg.Limit}

	fns := []route.Function{cfg.Mapping.Routing}
	if cfg.EscalateRouting {
		for _, f := range escalation {
			if f > cfg.Mapping.Routing {
				fns = append(fns, f)
			}
		}
	}
	var sel *Selection
	for _, fn := range fns {
		opts := cfg.Mapping
		opts.Routing = fn
		outcomes, err := engine.Sweep(ctx, cfg.App, lib, opts, eo)
		if err != nil {
			return nil, err
		}
		s, err := phase2(outcomes)
		if err != nil {
			return nil, err
		}
		s.RoutingUsed = fn
		sel = s
		if s.Best != nil {
			break
		}
	}
	if cfg.Fault != nil && sel != nil {
		if err := applyReliability(ctx, cfg, sel, eo); err != nil {
			return nil, err
		}
	}
	return sel, nil
}

// applyReliability is the fault-aware half of Phase 2: sweep every
// feasible candidate's failure scenarios (degraded-mode rerouting under
// the selection's routing function) and re-pick Best by the composite
// cost/bestCost + w·(1 − survivability) score. Sweeps fan out on the
// engine pool — one Limit slot per candidate — and each candidate's
// scenario loop runs sequentially, so results are byte-identical at
// every parallelism setting.
func applyReliability(ctx context.Context, cfg Config, sel *Selection, eo engine.Options) error {
	opts := cfg.Mapping
	opts.Routing = sel.RoutingUsed
	ropts := fault.Degraded(opts.RouteOptions())
	comms := cfg.App.Commodities()
	var idxs []int
	for i, c := range sel.Candidates {
		if c.Result != nil && c.Feasible() {
			idxs = append(idxs, i)
		}
	}
	err := engine.Fan(ctx, len(idxs), eo, func(j int) error {
		c := &sel.Candidates[idxs[j]]
		scenarios, exhaustive, err := fault.Scenarios(c.Result.Topology, *cfg.Fault)
		if err != nil {
			return fmt.Errorf("core: reliability of %s: %w", c.Result.Topology.Name(), err)
		}
		rep, err := fault.SweepContext(ctx, c.Result.Topology, c.Result.Assign, comms, ropts, scenarios, exhaustive, 1, nil)
		if err != nil {
			return fmt.Errorf("core: reliability of %s: %w", c.Result.Topology.Name(), err)
		}
		c.Survivability = rep
		return nil
	})
	if err != nil {
		return err
	}
	w := cfg.ReliabilityWeight
	if w <= 0 {
		w = 1
	}
	minCost := math.Inf(1)
	for _, i := range idxs {
		if c := sel.Candidates[i].Result; c.Cost < minCost {
			minCost = c.Cost
		}
	}
	best, bestScore := -1, math.Inf(1)
	const scoreTol = 1e-12
	for _, i := range idxs {
		c := sel.Candidates[i]
		score := safeDiv(c.Result.Cost, minCost) + w*(1-c.Survivability.Survivability())
		switch {
		case best == -1 || score < bestScore-scoreTol:
			best, bestScore = i, score
		case score <= bestScore+scoreTol && less(c.Result, sel.Candidates[best].Result):
			best = i // score tie: fall back to the fault-free ordering
		}
	}
	if best >= 0 {
		sel.Best = sel.Candidates[best].Result
	}
	return nil
}

// phase2 ranks one routing function's library-ordered outcomes: lowest
// cost among feasible candidates; ties break on fewer routers, then name,
// for determinism.
func phase2(outcomes []engine.Outcome) (*Selection, error) {
	s := &Selection{Candidates: make([]Candidate, 0, len(outcomes))}
	for _, o := range outcomes {
		// A per-topology error (too few terminals, structural mismatch) is
		// recorded and skipped; a configuration error in the options
		// themselves fails every topology and surfaces below.
		s.Candidates = append(s.Candidates, Candidate{Result: o.Result, MapErr: o.Err})
	}
	allFailed := true
	for _, c := range s.Candidates {
		if c.Result != nil {
			allFailed = false
			break
		}
	}
	if allFailed {
		return nil, fmt.Errorf("core: every topology failed to map: %w", s.Candidates[0].MapErr)
	}
	best := -1
	for i, c := range s.Candidates {
		if c.Result == nil || !c.Feasible() {
			continue
		}
		if best == -1 || less(c.Result, s.Candidates[best].Result) {
			best = i
		}
	}
	if best >= 0 {
		s.Best = s.Candidates[best].Result
	}
	return s, nil
}

// less orders candidates by objective cost, breaking ties toward lower
// power, then lower area, then fewer routers: among configurations the
// objective cannot distinguish (every Clos is 3 hops), the cheaper network
// wins, as a designer would choose. Costs within the mapper's tiny
// load-balance tie-break term (1e-3) count as equal.
func less(a, b *mapping.Result) bool {
	const tieTol = 2e-3
	if d := a.Cost - b.Cost; d < -tieTol || d > tieTol {
		return d < 0
	}
	if a.PowerMW != b.PowerMW {
		return a.PowerMW < b.PowerMW
	}
	if a.DesignAreaMM2 != b.DesignAreaMM2 {
		return a.DesignAreaMM2 < b.DesignAreaMM2
	}
	if a.Topology.NumRouters() != b.Topology.NumRouters() {
		return a.Topology.NumRouters() < b.Topology.NumRouters()
	}
	return a.Topology.Name() < b.Topology.Name()
}

// SummaryRow is one line of the per-topology comparison tables
// (Fig. 6, Fig. 7b, Fig. 8c/d).
type SummaryRow struct {
	Topology    string
	Kind        topology.Kind
	AvgHops     float64
	AreaMM2     float64
	PowerMW     float64
	Switches    int
	Links       int
	MaxLoadMBps float64
	Feasible    bool
	// Survivability is the candidate's fault-sweep reliability score
	// when Config.Fault was active; HasSurvivability distinguishes a
	// genuine 0 from "not evaluated".
	Survivability    float64
	HasSurvivability bool
}

// Summaries renders every successfully mapped candidate as a table row,
// sorted by kind then name.
func (s *Selection) Summaries() []SummaryRow {
	var rows []SummaryRow
	for _, c := range s.Candidates {
		if c.Result == nil {
			continue
		}
		r := c.Result
		// NI links: direct topologies use one bidirectional core-switch
		// channel; indirect ones wire the core to both an ingress and an
		// egress switch, hence two.
		niLinks := len(r.Assign)
		if !r.Topology.Kind().Direct() {
			niLinks *= 2
		}
		row := SummaryRow{
			Topology:    r.Topology.Name(),
			Kind:        r.Topology.Kind(),
			AvgHops:     r.AvgHops,
			AreaMM2:     r.DesignAreaMM2,
			PowerMW:     r.PowerMW,
			Switches:    r.Topology.NumRouters(),
			Links:       topology.PhysicalLinks(r.Topology) + niLinks,
			MaxLoadMBps: r.Route.MaxLinkLoad,
			Feasible:    r.Feasible(),
		}
		if c.Survivability != nil {
			row.Survivability = c.Survivability.Survivability()
			row.HasSurvivability = true
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Kind != rows[j].Kind {
			return rows[i].Kind < rows[j].Kind
		}
		return rows[i].Topology < rows[j].Topology
	})
	return rows
}
