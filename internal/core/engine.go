// Package core is SUNMAP's selection policy layer: Phase 1 maps the
// application onto every topology in the library under the chosen routing
// function and objective; Phase 2 evaluates the candidates and selects the
// best feasible topology (Section 3 of the paper). The actual Phase-1
// evaluations run on internal/engine's concurrent worker pool with a
// shared content-addressed cache; core decides what to evaluate (library
// enumeration, application-specific synthesis via internal/synth, routing
// escalation) and how to rank the outcomes. The package also hosts the
// design-space explorers behind Fig. 9: the routing-function bandwidth
// sweep and the area-power Pareto search.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"sunmap/internal/engine"
	"sunmap/internal/fault"
	"sunmap/internal/graph"
	"sunmap/internal/mapping"
	"sunmap/internal/pool"
	"sunmap/internal/route"
	"sunmap/internal/synth"
	"sunmap/internal/topology"
)

// Config drives one Select run.
type Config struct {
	// App is the application core graph.
	App *graph.CoreGraph
	// Library lists the candidate topologies. Nil selects the default
	// library for the app's core count (all mesh/torus/hypercube/
	// butterfly/clos configurations, plus extras per LibraryOpts).
	Library []topology.Topology
	// LibraryOpts tunes the default enumeration when Library is nil.
	LibraryOpts topology.LibraryOptions
	// Synth, when non-nil, augments the candidate set with
	// application-specific topologies synthesized from the core graph
	// (internal/synth): clustered min-cut partitions, a trimmed mesh and a
	// sparse Hamming graph. Synthesized candidates are appended after the
	// library (or after an explicit Library) and compete in Phase 2 on
	// equal terms. Synthesis is deterministic, so results remain
	// independent of Parallelism, and the candidates carry structural
	// digests so Cache memoizes them like any library member.
	Synth *synth.Options
	// Mapping carries the routing function, objective, constraints and
	// technology shared by every Phase 1 mapping.
	Mapping mapping.Options
	// EscalateRouting retries with more flexible routing functions
	// (MP -> SM -> SA) when no topology produces a feasible mapping,
	// mirroring Section 6.1's MPEG4 flow ("So we apply multi-path
	// routing, splitting the traffic across many paths").
	EscalateRouting bool
	// Parallelism bounds the engine worker pool for Phase 1. 0 selects
	// GOMAXPROCS; 1 forces the sequential path. Results are identical at
	// every setting.
	Parallelism int
	// Cache, when non-nil, memoizes Phase-1 evaluations so repeated
	// Select calls, RoutingSweep and ParetoExplore on the same app share
	// work. Nil disables memoization (a single Select never revisits a
	// design point — escalation changes the routing function — so a
	// private cache would buy nothing).
	Cache *engine.Cache
	// Progress, when non-nil, streams one event per evaluated candidate.
	Progress engine.Progress
	// Limit, when non-nil, bounds in-flight mapping evaluations across
	// concurrent Select/explore calls sharing it (see engine.Options.Limit).
	Limit *pool.Limiter
	// Fault, when non-nil, adds a reliability axis to Phase 2: every
	// feasible candidate's survivability under the model's failure
	// scenarios is computed by degraded-mode rerouting (internal/fault)
	// and folded into the final ranking — see ReliabilityWeight. The
	// sweeps run on the engine pool within the same Parallelism/Limit
	// budget as the mapping evaluations.
	Fault *fault.Model
	// ReliabilityWeight scales the reliability term of the fault-aware
	// ranking: feasible candidates order by
	// cost/bestCost + w·(1 − survivability), so w ≈ 1 trades a full
	// connectivity loss against a doubling of the design objective.
	// Zero or negative selects 1.
	ReliabilityWeight float64
}

// Candidate is one evaluated (topology, mapping) pair.
type Candidate struct {
	*mapping.Result
	// MapErr records a hard mapping failure (e.g. too few terminals);
	// the Result is nil in that case.
	MapErr error
	// Survivability is the candidate's fault-sweep report, set for
	// feasible candidates when Config.Fault is active (nil otherwise).
	Survivability *fault.Report
}

// Name returns the candidate topology's name, even for failed candidates.
func (c Candidate) Name() string {
	if c.Result != nil {
		return c.Result.Topology.Name()
	}
	return "unmappable"
}

// Selection is the outcome of the two SUNMAP phases.
type Selection struct {
	// Candidates holds every evaluated mapping, feasible or not, in
	// library order.
	Candidates []Candidate
	// Best points at the selected candidate (nil when nothing feasible).
	Best *mapping.Result
	// RoutingUsed is the routing function the selection was made under
	// (it differs from Config.Mapping.Routing after escalation).
	RoutingUsed route.Function
}

// FeasibleCount returns the number of feasible candidates.
func (s *Selection) FeasibleCount() int {
	n := 0
	for _, c := range s.Candidates {
		if c.Result != nil && c.Feasible() {
			n++
		}
	}
	return n
}

// SynthCount returns the number of evaluated synthesized (Kind Synth)
// candidates, feasible or not.
func (s *Selection) SynthCount() int {
	n := 0
	for _, c := range s.Candidates {
		if c.Result != nil && c.Result.Topology.Kind() == topology.Synth {
			n++
		}
	}
	return n
}

// BestPerKind returns, for each topology family present, the feasible
// candidate with the lowest cost — the per-family rows of Fig. 6/7.
func (s *Selection) BestPerKind() map[topology.Kind]*mapping.Result {
	out := make(map[topology.Kind]*mapping.Result)
	for _, c := range s.Candidates {
		if c.Result == nil || !c.Feasible() {
			continue
		}
		k := c.Result.Topology.Kind()
		if cur, ok := out[k]; !ok || less(c.Result, cur) {
			out[k] = c.Result
		}
	}
	return out
}

// BestComposite re-ranks the feasible candidates with a composite
// judgement across delay, area and power: each metric is normalized by the
// best value any feasible candidate achieves, then combined with the given
// weights. This is Phase 2's multi-objective mode — the reasoning of
// Section 6.1's MPEG4 discussion, where the mesh's "large savings in area
// and power ... overshadow the slightly higher communication delay cost".
// It returns nil when nothing is feasible.
func (s *Selection) BestComposite(wDelay, wArea, wPower float64) *mapping.Result {
	minHops, minArea, minPower := math.Inf(1), math.Inf(1), math.Inf(1)
	for _, c := range s.Candidates {
		if c.Result == nil || !c.Feasible() {
			continue
		}
		minHops = math.Min(minHops, c.Result.AvgHops)
		minArea = math.Min(minArea, c.Result.DesignAreaMM2)
		minPower = math.Min(minPower, c.Result.PowerMW)
	}
	var best *mapping.Result
	bestScore := math.Inf(1)
	for _, c := range s.Candidates {
		if c.Result == nil || !c.Feasible() {
			continue
		}
		r := c.Result
		score := wDelay*safeDiv(r.AvgHops, minHops) +
			wArea*safeDiv(r.DesignAreaMM2, minArea) +
			wPower*safeDiv(r.PowerMW, minPower)
		if score < bestScore || (score == bestScore && best != nil && less(r, best)) {
			bestScore = score
			best = r
		}
	}
	return best
}

func safeDiv(a, b float64) float64 {
	if b <= 0 {
		return 1
	}
	return a / b
}

// ReliabilityScore is the composite objective of a fault-aware ranking:
// objective cost normalized by the best feasible cost, plus w·(1 −
// survivability). A non-positive w selects the default weight 1. Phase
// 2's reliability re-pick and the topology search's final fold share this
// function, so a machine-discovered network is judged by exactly the rule
// that ranks library candidates.
func ReliabilityScore(cost, bestCost, survivability, w float64) float64 {
	if w <= 0 {
		w = 1
	}
	return safeDiv(cost, bestCost) + w*(1-survivability)
}

// escalation orders the routing functions by increasing flexibility.
var escalation = []route.Function{route.DimensionOrdered, route.MinPath, route.SplitMin, route.SplitAll}

// SelectContext is the selection entry point with cancellation: it runs
// Phase 1 (map onto every library topology) and Phase 2 (choose the best
// feasible candidate under the objective). ctx aborts the Phase-1 sweep
// (including evaluations already in flight on the worker pool) and the
// routing-escalation retries, returning the context's error.
func SelectContext(ctx context.Context, cfg Config) (*Selection, error) {
	if cfg.App == nil {
		return nil, fmt.Errorf("core: nil application")
	}
	if err := cfg.App.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	lib := cfg.Library
	if lib == nil {
		var err error
		lib, err = topology.Library(cfg.App.NumCores(), cfg.LibraryOpts)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	if cfg.Synth != nil {
		cands, err := synth.Candidates(cfg.App, *cfg.Synth)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		lib = append(append([]topology.Topology(nil), lib...), cands...)
	}
	if len(lib) == 0 {
		return nil, fmt.Errorf("core: empty topology library")
	}
	eo := engine.Options{Parallelism: cfg.Parallelism, Cache: cfg.Cache, Progress: cfg.Progress, Limit: cfg.Limit}
	if eo.Limit == nil {
		// Intra-candidate fan-out (fault-sweep helpers, speculative
		// escalation) admits by borrowing idle slots from the shared
		// limiter; without a session-provided one, Select provisions a
		// run-local limiter sized to its own parallelism so that budget
		// exists. Evaluate's worker pool never exceeds the same bound, so
		// whole-candidate admission still never blocks.
		eo.Limit = pool.NewLimiter(cfg.Parallelism)
	}

	fns := []route.Function{cfg.Mapping.Routing}
	if cfg.EscalateRouting {
		for _, f := range escalation {
			if f > cfg.Mapping.Routing {
				fns = append(fns, f)
			}
		}
	}
	runRound := func(rctx context.Context, fn route.Function, ro engine.Options) ([]engine.Outcome, error) {
		opts := cfg.Mapping
		opts.Routing = fn
		return engine.Sweep(rctx, cfg.App, lib, opts, ro)
	}
	// With spare workers, the next escalation round launches speculatively
	// while the current sweep drains: its jobs only soak up idle limiter
	// slots (engine.Options.Spec), its progress events are buffered, and
	// it is either adopted — the current round found nothing feasible, so
	// the buffered events replay to the real stream — or canceled, drained
	// and dropped before SelectContext returns. Outcomes are
	// index-addressed and phase2 is a pure fold, so an adopted speculative
	// round yields byte-identical results to running it after the fact.
	speculate := len(fns) > 1 && eo.IntraParallelism() > 1
	var spec *specRound
	defer func() { spec.discard() }()
	var sel *Selection
	for i, fn := range fns {
		var cur *specRound
		if spec != nil {
			cur, spec = spec, nil
		}
		if speculate && i+1 < len(fns) {
			spec = launchSpec(ctx, fns[i+1], eo, runRound)
		}
		var outcomes []engine.Outcome
		var err error
		if cur != nil {
			outcomes, err = cur.adopt(eo.Progress)
		} else {
			outcomes, err = runRound(ctx, fn, eo)
		}
		if err != nil {
			return nil, err
		}
		s, err := phase2(outcomes)
		if err != nil {
			return nil, err
		}
		s.RoutingUsed = fn
		sel = s
		if s.Best != nil {
			break
		}
	}
	spec.discard()
	spec = nil
	if cfg.Fault != nil && sel != nil {
		if err := applyReliability(ctx, cfg, sel, eo); err != nil {
			return nil, err
		}
	}
	return sel, nil
}

// specRound is one speculatively launched escalation round: the next
// routing function's Phase-1 sweep, started while the current round
// drains. Progress events are buffered until the round's fate is known —
// a consumer must never see events from work that officially didn't
// happen.
type specRound struct {
	fn      route.Function
	cancel  context.CancelFunc
	promote chan struct{}
	done    chan specResult

	mu     sync.Mutex
	events []engine.Event
}

type specResult struct {
	outcomes []engine.Outcome
	err      error
}

// launchSpec starts fn's sweep on its own goroutine under a cancelable
// child context with opportunistic admission and a buffering progress
// stream.
func launchSpec(ctx context.Context, fn route.Function, eo engine.Options,
	run func(context.Context, route.Function, engine.Options) ([]engine.Outcome, error)) *specRound {
	sctx, cancel := context.WithCancel(ctx)
	sr := &specRound{fn: fn, cancel: cancel, promote: make(chan struct{}), done: make(chan specResult, 1)}
	seo := eo
	seo.Progress = nil
	if eo.Progress != nil {
		seo.Progress = func(ev engine.Event) {
			sr.mu.Lock()
			sr.events = append(sr.events, ev)
			sr.mu.Unlock()
		}
	}
	seo.Spec = sr.promote
	go func() {
		out, err := run(sctx, fn, seo)
		sr.done <- specResult{out, err}
	}()
	return sr
}

// adopt promotes the speculative round to blocking admission — the
// earlier round came up empty, so this is now the real round — waits for
// its outcomes, and replays the buffered progress events to the real
// stream (the engine already numbered them; replay preserves count and
// order exactly as a non-speculative round would have emitted them).
func (s *specRound) adopt(progress engine.Progress) ([]engine.Outcome, error) {
	close(s.promote)
	r := <-s.done
	s.cancel()
	if progress != nil {
		// The run has returned, so the event buffer is final (the done
		// channel receive orders it before these reads).
		for _, ev := range s.events {
			progress(ev)
		}
	}
	return r.outcomes, r.err
}

// discard cancels a speculative round that lost its bet and drains its
// goroutine; results are dropped. Safe on nil.
func (s *specRound) discard() {
	if s == nil {
		return
	}
	s.cancel()
	<-s.done
}

// applyReliability is the fault-aware half of Phase 2: sweep every
// feasible candidate's failure scenarios (degraded-mode rerouting under
// the selection's routing function) and re-pick Best by the composite
// cost/bestCost + w·(1 − survivability) score. Sweeps fan out on the
// engine pool — one Limit slot per candidate — and each candidate's
// scenario loop additionally fans across the session's intra-candidate
// budget, its extra workers borrowing idle limiter slots by TryAcquire.
// Outcomes are index-addressed and folded sequentially, so results stay
// byte-identical at every parallelism setting.
func applyReliability(ctx context.Context, cfg Config, sel *Selection, eo engine.Options) error {
	opts := cfg.Mapping
	opts.Routing = sel.RoutingUsed
	ropts := fault.Degraded(opts.RouteOptions())
	comms := cfg.App.Commodities()
	var idxs []int
	for i, c := range sel.Candidates {
		if c.Result != nil && c.Feasible() {
			idxs = append(idxs, i)
		}
	}
	intra := eo.IntraParallelism()
	sweepers := pool.NewFree(fault.NewSweeper)
	err := engine.Fan(ctx, len(idxs), eo, func(j int) error {
		c := &sel.Candidates[idxs[j]]
		scenarios, exhaustive, err := fault.Scenarios(c.Result.Topology, *cfg.Fault)
		if err != nil {
			return fmt.Errorf("core: reliability of %s: %w", c.Result.Topology.Name(), err)
		}
		sw := sweepers.Get()
		rep, err := sw.SweepContext(ctx, c.Result.Topology, c.Result.Assign, comms, ropts, scenarios, exhaustive, intra, eo.Limit)
		sweepers.Put(sw)
		if err != nil {
			return fmt.Errorf("core: reliability of %s: %w", c.Result.Topology.Name(), err)
		}
		c.Survivability = rep
		return nil
	})
	if err != nil {
		return err
	}
	minCost := math.Inf(1)
	for _, i := range idxs {
		if c := sel.Candidates[i].Result; c.Cost < minCost {
			minCost = c.Cost
		}
	}
	best, bestScore := -1, math.Inf(1)
	const scoreTol = 1e-12
	for _, i := range idxs {
		c := sel.Candidates[i]
		score := ReliabilityScore(c.Result.Cost, minCost, c.Survivability.Survivability(), cfg.ReliabilityWeight)
		switch {
		case best == -1 || score < bestScore-scoreTol:
			best, bestScore = i, score
		case score <= bestScore+scoreTol && less(c.Result, sel.Candidates[best].Result):
			best = i // score tie: fall back to the fault-free ordering
		}
	}
	if best >= 0 {
		sel.Best = sel.Candidates[best].Result
	}
	return nil
}

// phase2 ranks one routing function's library-ordered outcomes: lowest
// cost among feasible candidates; ties break on fewer routers, then name,
// for determinism.
func phase2(outcomes []engine.Outcome) (*Selection, error) {
	s := &Selection{Candidates: make([]Candidate, 0, len(outcomes))}
	for _, o := range outcomes {
		// A per-topology error (too few terminals, structural mismatch) is
		// recorded and skipped; a configuration error in the options
		// themselves fails every topology and surfaces below.
		s.Candidates = append(s.Candidates, Candidate{Result: o.Result, MapErr: o.Err})
	}
	allFailed := true
	for _, c := range s.Candidates {
		if c.Result != nil {
			allFailed = false
			break
		}
	}
	if allFailed {
		return nil, fmt.Errorf("core: every topology failed to map: %w", s.Candidates[0].MapErr)
	}
	best := -1
	for i, c := range s.Candidates {
		if c.Result == nil || !c.Feasible() {
			continue
		}
		if best == -1 || less(c.Result, s.Candidates[best].Result) {
			best = i
		}
	}
	if best >= 0 {
		s.Best = s.Candidates[best].Result
	}
	return s, nil
}

// less orders candidates by objective cost, breaking ties toward lower
// power, then lower area, then fewer routers: among configurations the
// objective cannot distinguish (every Clos is 3 hops), the cheaper network
// wins, as a designer would choose. Costs within the mapper's tiny
// load-balance tie-break term (1e-3) count as equal.
func less(a, b *mapping.Result) bool {
	const tieTol = 2e-3
	if d := a.Cost - b.Cost; d < -tieTol || d > tieTol {
		return d < 0
	}
	if a.PowerMW != b.PowerMW {
		return a.PowerMW < b.PowerMW
	}
	if a.DesignAreaMM2 != b.DesignAreaMM2 {
		return a.DesignAreaMM2 < b.DesignAreaMM2
	}
	if a.Topology.NumRouters() != b.Topology.NumRouters() {
		return a.Topology.NumRouters() < b.Topology.NumRouters()
	}
	return a.Topology.Name() < b.Topology.Name()
}

// SummaryRow is one line of the per-topology comparison tables
// (Fig. 6, Fig. 7b, Fig. 8c/d).
type SummaryRow struct {
	Topology    string
	Kind        topology.Kind
	AvgHops     float64
	AreaMM2     float64
	PowerMW     float64
	Switches    int
	Links       int
	MaxLoadMBps float64
	Feasible    bool
	// Survivability is the candidate's fault-sweep reliability score
	// when Config.Fault was active; HasSurvivability distinguishes a
	// genuine 0 from "not evaluated".
	Survivability    float64
	HasSurvivability bool
}

// Summaries renders every successfully mapped candidate as a table row,
// sorted by kind then name.
func (s *Selection) Summaries() []SummaryRow {
	var rows []SummaryRow
	for _, c := range s.Candidates {
		if c.Result == nil {
			continue
		}
		r := c.Result
		// NI links: direct topologies use one bidirectional core-switch
		// channel; indirect ones wire the core to both an ingress and an
		// egress switch, hence two.
		niLinks := len(r.Assign)
		if !r.Topology.Kind().Direct() {
			niLinks *= 2
		}
		row := SummaryRow{
			Topology:    r.Topology.Name(),
			Kind:        r.Topology.Kind(),
			AvgHops:     r.AvgHops,
			AreaMM2:     r.DesignAreaMM2,
			PowerMW:     r.PowerMW,
			Switches:    r.Topology.NumRouters(),
			Links:       topology.PhysicalLinks(r.Topology) + niLinks,
			MaxLoadMBps: r.Route.MaxLinkLoad,
			Feasible:    r.Feasible(),
		}
		if c.Survivability != nil {
			row.Survivability = c.Survivability.Survivability()
			row.HasSurvivability = true
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Kind != rows[j].Kind {
			return rows[i].Kind < rows[j].Kind
		}
		return rows[i].Topology < rows[j].Topology
	})
	return rows
}
