package core

// Tests for the intra-candidate parallelism plumbing: speculative
// routing-escalation rounds, fault-sweep fan-out inside one candidate,
// and the shared-limiter accounting — all of which must leave results
// byte-identical to the sequential path.

import (
	"context"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"sunmap/internal/apps"
	"sunmap/internal/engine"
	"sunmap/internal/fault"
	"sunmap/internal/mapping"
	"sunmap/internal/pool"
	"sunmap/internal/route"
)

func mpeg4EscalationConfig(par int) Config {
	return Config{
		App: apps.MPEG4(),
		Mapping: mapping.Options{
			Routing:      route.MinPath,
			Objective:    mapping.MinDelay,
			CapacityMBps: apps.DefaultCapacityMBps,
		},
		EscalateRouting: true,
		Parallelism:     par,
	}
}

// sameSurvivability asserts the per-candidate fault reports of two
// selections are byte-identical — the fold order never depends on how
// many workers evaluated the scenarios.
func sameSurvivability(t *testing.T, got, want *Selection) {
	t.Helper()
	for i := range got.Candidates {
		g, w := got.Candidates[i], want.Candidates[i]
		if (g.Survivability == nil) != (w.Survivability == nil) {
			t.Fatalf("candidate %s: fault report presence differs", g.Name())
		}
		if g.Survivability != nil && !reflect.DeepEqual(g.Survivability, w.Survivability) {
			t.Errorf("candidate %s: fault report differs across parallelism:\ngot:  %+v\nwant: %+v",
				g.Name(), g.Survivability, w.Survivability)
		}
	}
}

// TestEscalatedSelectionIdenticalAcrossParallelism pins the speculative
// escalation path: MPEG4 escalates MP -> SM, so any parallel run
// launches (and adopts) speculative rounds, and the selection must stay
// byte-identical to the sequential ladder at every parallelism setting.
func TestEscalatedSelectionIdenticalAcrossParallelism(t *testing.T) {
	seq, err := Select(mpeg4EscalationConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if seq.RoutingUsed == route.MinPath {
		t.Fatal("MPEG4 did not escalate; the test needs a speculative round")
	}
	for _, par := range []int{2, runtime.GOMAXPROCS(0)} {
		got, err := Select(mpeg4EscalationConfig(par))
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		sameSelection(t, got, seq)
		if !reflect.DeepEqual(got.Summaries(), seq.Summaries()) {
			t.Errorf("parallelism %d: summary tables differ from sequential", par)
		}
	}
}

// TestFaultAwareEscalationIdenticalAcrossParallelism composes the two
// intra-candidate mechanisms — speculative escalation rounds and the
// per-candidate fault-sweep fan-out — and pins byte-identical Selection
// and fault.Report results across Parallelism ∈ {1, 2, GOMAXPROCS}.
func TestFaultAwareEscalationIdenticalAcrossParallelism(t *testing.T) {
	cfg := func(par int) Config {
		c := mpeg4EscalationConfig(par)
		c.Fault = &fault.Model{K: 1, Elements: fault.Links}
		c.ReliabilityWeight = 1
		return c
	}
	seq, err := Select(cfg(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, runtime.GOMAXPROCS(0)} {
		got, err := Select(cfg(par))
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		sameSelection(t, got, seq)
		sameSurvivability(t, got, seq)
		if !reflect.DeepEqual(got.Summaries(), seq.Summaries()) {
			t.Errorf("parallelism %d: summary tables differ from sequential", par)
		}
	}
}

// TestSelectCancellationMidSpeculation cancels an escalated parallel
// selection from its progress stream — while the first round is draining
// and the speculative next round is in flight — and checks the
// cancellation surfaces as context.Canceled with every speculative
// goroutine drained (the test would otherwise fail under -race or hang).
func TestSelectCancellationMidSpeculation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := mpeg4EscalationConfig(2)
	var events atomic.Int32
	cfg.Progress = func(engine.Event) {
		if events.Add(1) == 3 {
			cancel() // a few candidates into round 1, speculation launched
		}
	}
	if _, err := SelectContext(ctx, cfg); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestReliabilityRespectsLimiterCap is the regression gate for the old
// hardcoded single-worker fault sweep: a fault-aware selection whose
// parallelism exceeds its shared limiter cap must still complete (the
// sweep's extra workers only TryAcquire — a fully subscribed limiter can
// never deadlock nested fan-out) and must report exactly the sequential
// results.
func TestReliabilityRespectsLimiterCap(t *testing.T) {
	seq, err := SelectContext(context.Background(), faultSelectConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := faultSelectConfig(4)
	cfg.Limit = pool.NewLimiter(2)
	got, err := SelectContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameSelection(t, got, seq)
	sameSurvivability(t, got, seq)
}
