package core

import (
	"testing"

	"sunmap/internal/apps"
	"sunmap/internal/graph"
	"sunmap/internal/mapping"
	"sunmap/internal/route"
	"sunmap/internal/topology"
)

func vopdConfig(obj mapping.Objective) Config {
	return Config{
		App: apps.VOPD(),
		Mapping: mapping.Options{
			Routing:      route.MinPath,
			Objective:    obj,
			CapacityMBps: apps.DefaultCapacityMBps,
		},
	}
}

func TestSelectVOPDMinDelayPicksButterfly(t *testing.T) {
	// Section 6.1 / Fig. 6(a): the 4-ary 2-fly has the least communication
	// delay (2 hops flat) and is feasible for VOPD.
	sel, err := Select(vopdConfig(mapping.MinDelay))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best == nil {
		t.Fatal("no feasible topology for VOPD")
	}
	if sel.Best.Topology.Kind() != topology.Butterfly {
		t.Errorf("best topology = %s, want a butterfly (Fig. 6)", sel.Best.Topology.Name())
	}
	if sel.Best.AvgHops != 2.0 {
		t.Errorf("winning butterfly hops = %g, want 2", sel.Best.AvgHops)
	}
}

func TestSelectVOPDPowerAndAreaFavorButterfly(t *testing.T) {
	// Fig. 6(c,d): the butterfly also wins area and power for VOPD.
	for _, obj := range []mapping.Objective{mapping.MinPower, mapping.MinArea} {
		sel, err := Select(vopdConfig(obj))
		if err != nil {
			t.Fatalf("%v: %v", obj, err)
		}
		if sel.Best == nil {
			t.Fatalf("%v: nothing feasible", obj)
		}
		if sel.Best.Topology.Kind() != topology.Butterfly {
			t.Errorf("%v: best = %s, want butterfly", obj, sel.Best.Topology.Name())
		}
	}
}

func TestVOPDPerKindShape(t *testing.T) {
	// Fig. 6 cross-checks: butterfly has the fewest switches but more
	// links than mesh; mesh/torus/hypercube hops exceed 2; clos is 3.
	sel, err := Select(vopdConfig(mapping.MinDelay))
	if err != nil {
		t.Fatal(err)
	}
	best := sel.BestPerKind()
	for _, k := range []topology.Kind{topology.Mesh, topology.Torus, topology.Hypercube, topology.Butterfly, topology.Clos} {
		if best[k] == nil {
			t.Fatalf("no feasible %v mapping for VOPD", k)
		}
	}
	if best[topology.Butterfly].AvgHops >= best[topology.Mesh].AvgHops {
		t.Error("butterfly hops not below mesh hops")
	}
	if h := best[topology.Clos].AvgHops; h != 3.0 {
		t.Errorf("clos hops = %g, want 3", h)
	}
	if best[topology.Mesh].AvgHops <= 2.0 {
		t.Errorf("mesh hops = %g, want > 2 (adjacent nodes are already 2)", best[topology.Mesh].AvgHops)
	}
	bflySwitches := best[topology.Butterfly].Topology.NumRouters()
	meshSwitches := best[topology.Mesh].Topology.NumRouters()
	if bflySwitches >= meshSwitches {
		t.Errorf("butterfly switches %d >= mesh %d", bflySwitches, meshSwitches)
	}
	// Fig. 6(b): counting NI hookups (two per core for indirect
	// topologies), the butterfly uses more links than the mesh despite
	// fewer switches.
	bflyLinks := topology.PhysicalLinks(best[topology.Butterfly].Topology) + 2*12
	meshLinks := topology.PhysicalLinks(best[topology.Mesh].Topology) + 12
	if bflyLinks <= meshLinks {
		t.Errorf("butterfly links %d <= mesh links %d, Fig. 6(b) shows more", bflyLinks, meshLinks)
	}
	// Power and area: butterfly strictly below mesh (Fig. 6c/d).
	if best[topology.Butterfly].PowerMW >= best[topology.Mesh].PowerMW {
		t.Errorf("butterfly power %g >= mesh %g", best[topology.Butterfly].PowerMW, best[topology.Mesh].PowerMW)
	}
	if best[topology.Butterfly].DesignAreaMM2 >= best[topology.Mesh].DesignAreaMM2 {
		t.Errorf("butterfly area %g >= mesh %g", best[topology.Butterfly].DesignAreaMM2, best[topology.Mesh].DesignAreaMM2)
	}
}

func TestMPEG4EscalatesToSplitAndDropsButterfly(t *testing.T) {
	// Section 6.1: min-path is infeasible everywhere for MPEG4; the tool
	// escalates to split routing, under which every family except the
	// butterfly produces a feasible mapping.
	sel, err := Select(Config{
		App: apps.MPEG4(),
		Mapping: mapping.Options{
			Routing:      route.MinPath,
			Objective:    mapping.MinDelay,
			CapacityMBps: apps.DefaultCapacityMBps,
		},
		EscalateRouting: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best == nil {
		t.Fatal("MPEG4 found nothing feasible even after escalation")
	}
	if sel.RoutingUsed == route.MinPath || sel.RoutingUsed == route.DimensionOrdered {
		t.Errorf("routing used = %v, want a splitting function", sel.RoutingUsed)
	}
	best := sel.BestPerKind()
	if best[topology.Butterfly] != nil {
		t.Errorf("butterfly feasible for MPEG4 (%s), paper says no feasible mapping",
			best[topology.Butterfly].Topology.Name())
	}
	for _, k := range []topology.Kind{topology.Mesh, topology.Torus, topology.Hypercube, topology.Clos} {
		if best[k] == nil {
			t.Errorf("no feasible %v mapping for MPEG4 under split routing", k)
		}
	}
}

func TestSummariesSortedAndComplete(t *testing.T) {
	sel, err := Select(vopdConfig(mapping.MinDelay))
	if err != nil {
		t.Fatal(err)
	}
	rows := sel.Summaries()
	if len(rows) == 0 {
		t.Fatal("no summary rows")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Kind < rows[i-1].Kind {
			t.Error("summaries not sorted by kind")
		}
	}
	for _, r := range rows {
		if r.Switches <= 0 || r.Links <= 0 || r.AvgHops <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
}

func TestSelectErrors(t *testing.T) {
	if _, err := Select(Config{}); err == nil {
		t.Error("nil app accepted")
	}
	var empty graph.CoreGraph
	if _, err := Select(Config{App: &empty}); err == nil {
		t.Error("empty app accepted")
	}
	// A library whose every topology is too small must fail loudly.
	small, err := topology.NewMesh(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Select(Config{App: apps.VOPD(), Library: []topology.Topology{small}}); err == nil {
		t.Error("library of too-small topologies accepted")
	}
}

func TestFeasibleCountAndExtras(t *testing.T) {
	cfg := vopdConfig(mapping.MinDelay)
	cfg.LibraryOpts.IncludeExtras = true
	sel, err := Select(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sel.FeasibleCount() < 5 {
		t.Errorf("only %d feasible candidates for VOPD", sel.FeasibleCount())
	}
	// The star (one giant hub crossbar) must appear among candidates.
	found := false
	for _, c := range sel.Candidates {
		if c.Result != nil && c.Result.Topology.Kind() == topology.Star {
			found = true
		}
	}
	if !found {
		t.Error("extras requested but star missing")
	}
}
