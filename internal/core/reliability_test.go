package core

// Tests for the reliability axis of Phase 2 and the Pareto explorer:
// fault-aware selection must score candidates exactly as documented,
// stay deterministic across parallelism, and mark the three-objective
// front correctly.

import (
	"context"
	"math"
	"reflect"
	"testing"

	"sunmap/internal/apps"
	"sunmap/internal/fault"
	"sunmap/internal/mapping"
	"sunmap/internal/route"
	"sunmap/internal/topology"
)

func mustMesh34(t *testing.T) topology.Topology {
	t.Helper()
	topo, err := topology.NewMesh(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func faultSelectConfig(par int) Config {
	return Config{
		App: apps.VOPD(),
		Mapping: mapping.Options{
			Routing:      route.MinPath,
			Objective:    mapping.MinDelay,
			CapacityMBps: 500,
		},
		Parallelism:       par,
		Fault:             &fault.Model{K: 1, Elements: fault.Links},
		ReliabilityWeight: 1,
	}
}

// TestReliabilityAwareSelection checks every feasible candidate carries
// a fault report and that Best is the argmin of the documented
// composite score cost/bestCost + w·(1 − survivability).
func TestReliabilityAwareSelection(t *testing.T) {
	sel, err := SelectContext(context.Background(), faultSelectConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best == nil {
		t.Fatal("no feasible candidate")
	}
	minCost := math.Inf(1)
	for _, c := range sel.Candidates {
		if c.Result == nil || !c.Feasible() {
			if c.Survivability != nil {
				t.Errorf("%s: infeasible candidate swept for reliability", c.Name())
			}
			continue
		}
		if c.Survivability == nil {
			t.Fatalf("%s: feasible candidate missing fault report", c.Name())
		}
		if s := c.Survivability.Survivability(); s < 0 || s > 1 {
			t.Errorf("%s: survivability %g outside [0,1]", c.Name(), s)
		}
		if c.Result.Cost < minCost {
			minCost = c.Result.Cost
		}
	}
	bestScore := math.Inf(1)
	var bestName string
	for _, c := range sel.Candidates {
		if c.Result == nil || !c.Feasible() {
			continue
		}
		score := c.Result.Cost/minCost + (1 - c.Survivability.Survivability())
		if score < bestScore-1e-12 {
			bestScore = score
			bestName = c.Result.Topology.Name()
		}
	}
	selScore := math.Inf(1)
	for _, c := range sel.Candidates {
		if c.Result == sel.Best {
			selScore = c.Result.Cost/minCost + (1 - c.Survivability.Survivability())
		}
	}
	if selScore > bestScore+1e-9 {
		t.Errorf("selected %s scores %g, but %s scores %g",
			sel.Best.Topology.Name(), selScore, bestName, bestScore)
	}
	// The per-candidate table rows surface the score.
	rows := sel.Summaries()
	withScore := 0
	for _, r := range rows {
		if r.HasSurvivability {
			withScore++
		}
	}
	if withScore == 0 {
		t.Error("no summary row carries a survivability score")
	}
}

// TestReliabilitySelectionDeterministic pins byte-identical selections
// across parallelism, fault sweeps included.
func TestReliabilitySelectionDeterministic(t *testing.T) {
	seq, err := SelectContext(context.Background(), faultSelectConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := SelectContext(context.Background(), faultSelectConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Best.Topology.Name() != par.Best.Topology.Name() {
		t.Errorf("winner differs: %s (sequential) vs %s (parallel)",
			seq.Best.Topology.Name(), par.Best.Topology.Name())
	}
	if !reflect.DeepEqual(seq.Summaries(), par.Summaries()) {
		t.Error("summary tables differ across parallelism")
	}
}

// TestParetoReliabilityAxis checks the fault-aware exploration: every
// point carries a survivability, the plain exploration carries none, and
// three-objective dominance is internally consistent.
func TestParetoReliabilityAxis(t *testing.T) {
	app := apps.VOPD()
	topo := mustMesh34(t)
	opts := mapping.Options{Routing: route.MinPath, CapacityMBps: 500}

	plain, err := ParetoExploreContext(context.Background(), app, topo, opts, 3, ExploreOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plain {
		if p.HasSurvivability {
			t.Fatal("fault-free exploration reports survivability")
		}
	}

	fm := &fault.Model{K: 1, Elements: fault.Links}
	pts, err := ParetoExploreFault(context.Background(), app, topo, opts, 3, fm, ExploreOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no design points")
	}
	front := 0
	for _, p := range pts {
		if !p.HasSurvivability {
			t.Fatalf("point %+v missing survivability", p)
		}
		if p.Survivability < 0 || p.Survivability > 1 {
			t.Errorf("survivability %g outside [0,1]", p.Survivability)
		}
		if p.Dominant {
			front++
		}
	}
	if front == 0 {
		t.Fatal("empty Pareto front")
	}
	// No point on the front may be dominated in all three objectives.
	for i, p := range pts {
		if !p.Dominant {
			continue
		}
		for j, q := range pts {
			if i == j {
				continue
			}
			if q.AreaMM2 < p.AreaMM2-1e-9 && q.PowerMW < p.PowerMW-1e-9 && q.Survivability > p.Survivability+1e-9 {
				t.Errorf("front point %d strictly dominated by %d", i, j)
			}
		}
	}
}
