package core

import (
	"context"
	"testing"

	"sunmap/internal/apps"
	"sunmap/internal/engine"
	"sunmap/internal/mapping"
	"sunmap/internal/route"
	"sunmap/internal/topology"
)

// sameSelection asserts two selections agree on the winner, the candidate
// order and every candidate's cost — the determinism contract of the
// parallel engine.
func sameSelection(t *testing.T, got, want *Selection) {
	t.Helper()
	if (got.Best == nil) != (want.Best == nil) {
		t.Fatalf("best presence differs: got %v, want %v", got.Best != nil, want.Best != nil)
	}
	if got.Best != nil && got.Best.Topology.Name() != want.Best.Topology.Name() {
		t.Errorf("best = %s, want %s", got.Best.Topology.Name(), want.Best.Topology.Name())
	}
	if got.RoutingUsed != want.RoutingUsed {
		t.Errorf("routing used = %v, want %v", got.RoutingUsed, want.RoutingUsed)
	}
	if len(got.Candidates) != len(want.Candidates) {
		t.Fatalf("candidate count %d, want %d", len(got.Candidates), len(want.Candidates))
	}
	for i := range got.Candidates {
		g, w := got.Candidates[i], want.Candidates[i]
		if g.Name() != w.Name() {
			t.Fatalf("candidate %d = %s, want %s (order must be library order)", i, g.Name(), w.Name())
		}
		if g.Result == nil {
			continue
		}
		if g.Result.Cost != w.Result.Cost {
			t.Errorf("candidate %s cost = %g, want %g", g.Name(), g.Result.Cost, w.Result.Cost)
		}
		if g.Result.PowerMW != w.Result.PowerMW || g.Result.DesignAreaMM2 != w.Result.DesignAreaMM2 {
			t.Errorf("candidate %s metrics differ between parallel and sequential", g.Name())
		}
	}
}

func TestSelectParallelMatchesSequential(t *testing.T) {
	cfg := vopdConfig(mapping.MinDelay)
	cfg.Parallelism = 1
	seq, err := Select(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{0, 4} {
		cfg := vopdConfig(mapping.MinDelay)
		cfg.Parallelism = par
		got, err := Select(cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		sameSelection(t, got, seq)
	}
}

func TestSelectContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SelectContext(ctx, vopdConfig(mapping.MinDelay)); err != context.Canceled {
		t.Fatalf("pre-cancelled: err = %v, want context.Canceled", err)
	}

	// Cancel mid-sweep from the progress stream: the pool must abandon
	// the remaining topologies and surface the cancellation.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	cfg := vopdConfig(mapping.MinDelay)
	cfg.Parallelism = 2
	cfg.Progress = func(engine.Event) { cancel2() }
	if _, err := SelectContext(ctx2, cfg); err != context.Canceled {
		t.Fatalf("mid-sweep: err = %v, want context.Canceled", err)
	}
}

func TestEscalationWalksFullLadder(t *testing.T) {
	// A capacity no routing function can satisfy forces the DO -> MP ->
	// SM -> SA ladder to run to its end: the selection comes back with
	// RoutingUsed == SplitAll, nothing feasible, and one full library
	// sweep per rung.
	lib, err := topology.Library(apps.VOPD().NumCores(), topology.LibraryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	evals := 0
	cfg := Config{
		App: apps.VOPD(),
		Mapping: mapping.Options{
			Routing:      route.DimensionOrdered,
			Objective:    mapping.MinDelay,
			CapacityMBps: 1, // unsatisfiable
		},
		EscalateRouting: true,
		Progress:        func(engine.Event) { evals++ },
	}
	sel, err := Select(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best != nil {
		t.Fatalf("best = %s under a 1 MB/s capacity, want nothing feasible", sel.Best.Topology.Name())
	}
	if sel.RoutingUsed != route.SplitAll {
		t.Errorf("routing used = %v, want SA (the ladder's last rung)", sel.RoutingUsed)
	}
	if want := 4 * len(lib); evals != want {
		t.Errorf("saw %d evaluations, want %d (4 routing functions x %d topologies)", evals, want, len(lib))
	}
	if sel.FeasibleCount() != 0 {
		t.Errorf("feasible count = %d, want 0", sel.FeasibleCount())
	}
}

func TestEscalationStopsAtFirstFeasibleRung(t *testing.T) {
	// VOPD is feasible under min-path at 500 MB/s, so escalation must
	// stop at the starting rung without touching SM or SA.
	evals := 0
	cfg := vopdConfig(mapping.MinDelay)
	cfg.EscalateRouting = true
	cfg.Progress = func(engine.Event) { evals++ }
	sel, err := Select(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best == nil {
		t.Fatal("nothing feasible for VOPD at 500 MB/s")
	}
	if sel.RoutingUsed != route.MinPath {
		t.Errorf("routing used = %v, want MP (no escalation needed)", sel.RoutingUsed)
	}
	if evals != len(sel.Candidates) {
		t.Errorf("saw %d evaluations, want %d (a single sweep)", evals, len(sel.Candidates))
	}
}

func TestSharedCacheAcrossSelectAndExplorers(t *testing.T) {
	// One cache spanning an escalated Select, a RoutingSweep and a second
	// Select: the re-visited design points must be served from memory.
	// Parallelism is pinned to 1 because the entry-count assertions below
	// reason about exactly which design points were evaluated; a parallel
	// escalation speculatively maps (and caches) candidates of the next
	// rung, which is timing-dependent by design.
	app := apps.MPEG4()
	opts := mapping.Options{
		Routing:      route.MinPath,
		Objective:    mapping.MinDelay,
		CapacityMBps: apps.DefaultCapacityMBps,
	}
	cache := engine.NewCache()
	sel, err := SelectContext(context.Background(), Config{
		App: app, Mapping: opts, EscalateRouting: true, Cache: cache, Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sel.RoutingUsed == route.MinPath {
		t.Fatal("MPEG4 should escalate past min-path (Fig. 7b)")
	}
	if st := cache.Stats(); st.Hits != 0 {
		t.Fatalf("fresh cache reported %d hits", st.Hits)
	}

	// The routing sweep on the paper's 3x4 mesh revisits the (MP, SM)
	// design points the escalated Select already mapped.
	mesh, err := topology.NewMesh(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RoutingSweepContext(context.Background(), app, mesh, opts, ExploreOptions{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	afterSweep := cache.Stats()
	if afterSweep.Hits < 2 {
		t.Errorf("routing sweep hit the cache %d times, want >= 2 (MP and SM already evaluated)", afterSweep.Hits)
	}

	// Re-running the same Select is a pure replay: no new entries.
	sel2, err := SelectContext(context.Background(), Config{
		App: app, Mapping: opts, EscalateRouting: true, Cache: cache, Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sameSelection(t, sel2, sel)
	if st := cache.Stats(); st.Entries != afterSweep.Entries {
		t.Errorf("replayed Select grew the cache from %d to %d entries", afterSweep.Entries, st.Entries)
	}
}
