package core

import (
	"context"
	"fmt"
	"sort"

	"sunmap/internal/engine"
	"sunmap/internal/graph"
	"sunmap/internal/mapping"
	"sunmap/internal/route"
	"sunmap/internal/tech"
	"sunmap/internal/topology"
)

// ExploreOptions tunes the engine run backing an explorer call: worker
// pool width, shared evaluation cache and progress stream.
type ExploreOptions = engine.Options

// RoutingSweepRow reports the minimum link bandwidth a routing function
// needs on one topology — the bars of Fig. 9(a).
type RoutingSweepRow struct {
	Function      route.Function
	RequiredMBps  float64
	AvgHops       float64
	FeasibleAt500 bool
}

// RoutingSweep maps the application onto topo once per routing function
// (DO, MP, SM, SA) and reports the resulting minimum required link
// bandwidth (the maximum link load of the optimized mapping). The mapping
// itself is re-optimized per function, as the tool does when the designer
// flips the routing input.
func RoutingSweep(app *graph.CoreGraph, topo topology.Topology, opts mapping.Options) ([]RoutingSweepRow, error) {
	return RoutingSweepContext(context.Background(), app, topo, opts, ExploreOptions{})
}

// RoutingSweepContext is RoutingSweep on the engine pool: the four routing
// functions evaluate concurrently (bounded by xo.Parallelism), reusing any
// design points already memoized in xo.Cache — e.g. by an escalated Select
// on the same application.
func RoutingSweepContext(ctx context.Context, app *graph.CoreGraph, topo topology.Topology, opts mapping.Options, xo ExploreOptions) ([]RoutingSweepRow, error) {
	jobs := make([]engine.Job, len(escalation))
	for i, fn := range escalation {
		o := opts
		o.Routing = fn
		jobs[i] = engine.Job{Topo: topo, Opts: o}
	}
	outcomes, err := engine.Evaluate(ctx, app, jobs, xo)
	if err != nil {
		return nil, err
	}
	rows := make([]RoutingSweepRow, 0, len(outcomes))
	for i, o := range outcomes {
		if o.Err != nil {
			return nil, fmt.Errorf("core: routing sweep %v: %w", escalation[i], o.Err)
		}
		res := o.Result
		rows = append(rows, RoutingSweepRow{
			Function:      escalation[i],
			RequiredMBps:  res.Route.MaxLinkLoad,
			AvgHops:       res.AvgHops,
			FeasibleAt500: res.Route.MaxLinkLoad <= 500+1e-6,
		})
	}
	return rows, nil
}

// ParetoPoint is one mapping in the area-power plane (Fig. 9b).
type ParetoPoint struct {
	// Weights are the objective weights that produced the mapping.
	Weights mapping.Weights
	AreaMM2 float64
	PowerMW float64
	AvgHops float64
	// Dominant marks points on the Pareto front.
	Dominant bool
}

// ParetoExplore sweeps weighted delay/area/power objectives and switch
// buffer depths over one topology and returns the evaluated design points
// with the area-power Pareto front marked — the exploration of Fig. 9(b).
// Steps controls the weight-grid resolution (default 5 per axis); buffer
// depths 2, 4 and 8 flits span the switch-configuration axis (deeper
// buffers cost area, shallower ones concentrate traffic onto fewer
// alternatives).
func ParetoExplore(app *graph.CoreGraph, topo topology.Topology, opts mapping.Options, steps int) ([]ParetoPoint, error) {
	return ParetoExploreContext(context.Background(), app, topo, opts, steps, ExploreOptions{})
}

// ParetoExploreContext is ParetoExplore on the engine pool: every
// (weight vector, buffer depth) grid point is an independent evaluation,
// fanned out across xo.Parallelism workers and memoized in xo.Cache, so
// repeated explorations and overlapping grids stop re-mapping identical
// design points. Point order and front marking match the sequential path.
func ParetoExploreContext(ctx context.Context, app *graph.CoreGraph, topo topology.Topology, opts mapping.Options, steps int, xo ExploreOptions) ([]ParetoPoint, error) {
	if steps < 2 {
		steps = 5
	}
	if opts.Tech.FlitBits == 0 {
		opts.Tech = tech.Tech100nm()
	}
	var jobs []engine.Job
	for _, depth := range []int{2, 4, 8} {
		for ai := 0; ai < steps; ai++ {
			for pi := 0; pi < steps-ai; pi++ {
				wa := float64(ai) / float64(steps-1)
				wp := float64(pi) / float64(steps-1)
				wd := 1 - wa - wp
				if wd < 0 {
					continue
				}
				o := opts
				o.Tech.BufDepthFlits = depth
				o.Objective = mapping.Weighted
				o.Weights = mapping.Weights{Delay: wd, Area: wa, Power: wp}
				jobs = append(jobs, engine.Job{Topo: topo, Opts: o})
			}
		}
	}
	outcomes, err := engine.Evaluate(ctx, app, jobs, xo)
	if err != nil {
		return nil, err
	}
	var pts []ParetoPoint
	for i, o := range outcomes {
		if o.Err != nil {
			return nil, fmt.Errorf("core: pareto explore: %w", o.Err)
		}
		res := o.Result
		if !res.Feasible() {
			continue
		}
		pts = append(pts, ParetoPoint{
			Weights: jobs[i].Opts.Weights,
			AreaMM2: res.DesignAreaMM2,
			PowerMW: res.PowerMW,
			AvgHops: res.AvgHops,
		})
	}
	// Different weight vectors often converge to the same mapping; keep
	// one representative per distinct (area, power, hops) point.
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].AreaMM2 != pts[j].AreaMM2 {
			return pts[i].AreaMM2 < pts[j].AreaMM2
		}
		if pts[i].PowerMW != pts[j].PowerMW {
			return pts[i].PowerMW < pts[j].PowerMW
		}
		return pts[i].AvgHops < pts[j].AvgHops
	})
	dedup := pts[:0]
	for _, p := range pts {
		if len(dedup) > 0 {
			q := dedup[len(dedup)-1]
			if nearly(p.AreaMM2, q.AreaMM2) && nearly(p.PowerMW, q.PowerMW) && nearly(p.AvgHops, q.AvgHops) {
				continue
			}
		}
		dedup = append(dedup, p)
	}
	pts = dedup
	markPareto(pts)
	return pts, nil
}

func nearly(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-6*(1+maxAbs(a, b))
}

func maxAbs(a, b float64) float64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}

// markPareto flags the non-dominated points in the (area, power) plane.
func markPareto(pts []ParetoPoint) {
	const tol = 1e-9
	for i := range pts {
		dominated := false
		for j := range pts {
			if i == j {
				continue
			}
			if pts[j].AreaMM2 <= pts[i].AreaMM2+tol && pts[j].PowerMW <= pts[i].PowerMW+tol &&
				(pts[j].AreaMM2 < pts[i].AreaMM2-tol || pts[j].PowerMW < pts[i].PowerMW-tol) {
				dominated = true
				break
			}
		}
		pts[i].Dominant = !dominated
	}
}

// ParetoFront filters the dominant points.
func ParetoFront(pts []ParetoPoint) []ParetoPoint {
	var out []ParetoPoint
	for _, p := range pts {
		if p.Dominant {
			out = append(out, p)
		}
	}
	return out
}
