package core

import (
	"context"
	"fmt"
	"sort"

	"sunmap/internal/engine"
	"sunmap/internal/fault"
	"sunmap/internal/graph"
	"sunmap/internal/mapping"
	"sunmap/internal/pool"
	"sunmap/internal/route"
	"sunmap/internal/tech"
	"sunmap/internal/topology"
)

// ExploreOptions tunes the engine run backing an explorer call: worker
// pool width, shared evaluation cache and progress stream.
type ExploreOptions = engine.Options

// RoutingSweepRow reports the minimum link bandwidth a routing function
// needs on one topology — the bars of Fig. 9(a).
type RoutingSweepRow struct {
	Function      route.Function
	RequiredMBps  float64
	AvgHops       float64
	FeasibleAt500 bool
}

// RoutingSweepContext maps the application onto topo once per routing
// function (DO, MP, SM, SA) and reports the resulting minimum required
// link bandwidth (the maximum link load of the optimized mapping). The
// mapping itself is re-optimized per function, as the tool does when the
// designer flips the routing input. It runs on the engine pool: the four routing
// functions evaluate concurrently (bounded by xo.Parallelism), reusing any
// design points already memoized in xo.Cache — e.g. by an escalated Select
// on the same application.
func RoutingSweepContext(ctx context.Context, app *graph.CoreGraph, topo topology.Topology, opts mapping.Options, xo ExploreOptions) ([]RoutingSweepRow, error) {
	jobs := make([]engine.Job, len(escalation))
	for i, fn := range escalation {
		o := opts
		o.Routing = fn
		jobs[i] = engine.Job{Topo: topo, Opts: o}
	}
	outcomes, err := engine.Evaluate(ctx, app, jobs, xo)
	if err != nil {
		return nil, err
	}
	rows := make([]RoutingSweepRow, 0, len(outcomes))
	for i, o := range outcomes {
		if o.Err != nil {
			return nil, fmt.Errorf("core: routing sweep %v: %w", escalation[i], o.Err)
		}
		res := o.Result
		rows = append(rows, RoutingSweepRow{
			Function:      escalation[i],
			RequiredMBps:  res.Route.MaxLinkLoad,
			AvgHops:       res.AvgHops,
			FeasibleAt500: res.Route.MaxLinkLoad <= 500+1e-6,
		})
	}
	return rows, nil
}

// ParetoPoint is one mapping in the area-power plane (Fig. 9b) —
// extended with a reliability axis when the exploration runs under a
// fault model.
type ParetoPoint struct {
	// Weights are the objective weights that produced the mapping.
	Weights mapping.Weights
	AreaMM2 float64
	PowerMW float64
	AvgHops float64
	// Survivability is the point's fault-sweep reliability score;
	// HasSurvivability marks that a fault model was active (so a genuine
	// 0 is distinguishable from "not evaluated").
	Survivability    float64
	HasSurvivability bool
	// Dominant marks points on the Pareto front: the (area, power)
	// plane normally, the (area, power, survivability) space when the
	// exploration ran under a fault model.
	Dominant bool
}

// ParetoExploreContext sweeps weighted delay/area/power objectives and
// switch buffer depths over one topology and returns the evaluated design
// points with the area-power Pareto front marked — the exploration of
// Fig. 9(b). Steps controls the weight-grid resolution (default 5 per
// axis); buffer depths 2, 4 and 8 flits span the switch-configuration
// axis (deeper buffers cost area, shallower ones concentrate traffic onto
// fewer alternatives). It runs on the engine pool: every
// (weight vector, buffer depth) grid point is an independent evaluation,
// fanned out across xo.Parallelism workers and memoized in xo.Cache, so
// repeated explorations and overlapping grids stop re-mapping identical
// design points. Point order and front marking match the sequential path.
func ParetoExploreContext(ctx context.Context, app *graph.CoreGraph, topo topology.Topology, opts mapping.Options, steps int, xo ExploreOptions) ([]ParetoPoint, error) {
	return ParetoExploreFault(ctx, app, topo, opts, steps, nil, xo)
}

// ParetoExploreFault is ParetoExploreContext with reliability as a third
// objective: when fm is non-nil every surviving design point carries its
// survivability under the fault model (degraded-mode rerouting sweep,
// see internal/fault) and the Pareto front is marked in the
// (area, power, survivability) space, so a designer reads off how much
// area or power buying fault tolerance costs. A nil fm reproduces the
// two-objective exploration exactly.
func ParetoExploreFault(ctx context.Context, app *graph.CoreGraph, topo topology.Topology, opts mapping.Options, steps int, fm *fault.Model, xo ExploreOptions) ([]ParetoPoint, error) {
	if steps < 2 {
		steps = 5
	}
	if opts.Tech.FlitBits == 0 {
		opts.Tech = tech.Tech100nm()
	}
	var jobs []engine.Job
	for _, depth := range []int{2, 4, 8} {
		for ai := 0; ai < steps; ai++ {
			for pi := 0; pi < steps-ai; pi++ {
				wa := float64(ai) / float64(steps-1)
				wp := float64(pi) / float64(steps-1)
				wd := 1 - wa - wp
				if wd < 0 {
					continue
				}
				o := opts
				o.Tech.BufDepthFlits = depth
				o.Objective = mapping.Weighted
				o.Weights = mapping.Weights{Delay: wd, Area: wa, Power: wp}
				jobs = append(jobs, engine.Job{Topo: topo, Opts: o})
			}
		}
	}
	outcomes, err := engine.Evaluate(ctx, app, jobs, xo)
	if err != nil {
		return nil, err
	}
	type candPoint struct {
		pt  ParetoPoint
		res *mapping.Result
	}
	var cands []candPoint
	for i, o := range outcomes {
		if o.Err != nil {
			return nil, fmt.Errorf("core: pareto explore: %w", o.Err)
		}
		res := o.Result
		if !res.Feasible() {
			continue
		}
		cands = append(cands, candPoint{
			pt: ParetoPoint{
				Weights: jobs[i].Opts.Weights,
				AreaMM2: res.DesignAreaMM2,
				PowerMW: res.PowerMW,
				AvgHops: res.AvgHops,
			},
			res: res,
		})
	}
	// Different weight vectors often converge to the same mapping; keep
	// one representative per distinct (area, power, hops) point.
	sort.Slice(cands, func(i, j int) bool {
		pi, pj := cands[i].pt, cands[j].pt
		if pi.AreaMM2 != pj.AreaMM2 {
			return pi.AreaMM2 < pj.AreaMM2
		}
		if pi.PowerMW != pj.PowerMW {
			return pi.PowerMW < pj.PowerMW
		}
		return pi.AvgHops < pj.AvgHops
	})
	dedup := cands[:0]
	for _, c := range cands {
		if len(dedup) > 0 {
			q := dedup[len(dedup)-1].pt
			if nearly(c.pt.AreaMM2, q.AreaMM2) && nearly(c.pt.PowerMW, q.PowerMW) && nearly(c.pt.AvgHops, q.AvgHops) {
				continue
			}
		}
		dedup = append(dedup, c)
	}
	cands = dedup
	if fm != nil {
		// One survivability sweep per surviving (deduplicated) point,
		// fanned out on the engine pool. The degraded rerouting starts
		// from the grid's shared routing function, so every point is
		// judged under the same failure discipline.
		ropts := fault.Degraded(opts.RouteOptions())
		comms := app.Commodities()
		// One scenario set serves every point: the topology and model are
		// shared, so enumerate (or sample) once, outside the fan-out.
		scenarios, exhaustive, err := fault.Scenarios(topo, *fm)
		if err != nil {
			return nil, fmt.Errorf("core: pareto reliability: %w", err)
		}
		intra := xo.IntraParallelism()
		sweepers := pool.NewFree(fault.NewSweeper)
		err = engine.Fan(ctx, len(cands), xo, func(i int) error {
			sw := sweepers.Get()
			rep, err := sw.SweepContext(ctx, topo, cands[i].res.Assign, comms, ropts, scenarios, exhaustive, intra, xo.Limit)
			sweepers.Put(sw)
			if err != nil {
				return fmt.Errorf("core: pareto reliability: %w", err)
			}
			cands[i].pt.Survivability = rep.Survivability()
			cands[i].pt.HasSurvivability = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	pts := make([]ParetoPoint, len(cands))
	for i, c := range cands {
		pts[i] = c.pt
	}
	if fm != nil {
		markParetoReliability(pts)
	} else {
		markPareto(pts)
	}
	return pts, nil
}

func nearly(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-6*(1+maxAbs(a, b))
}

func maxAbs(a, b float64) float64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}

// markParetoReliability flags the non-dominated points in the
// (area, power, survivability) space: j dominates i when it is no worse
// on all three axes (lower-or-equal area and power, higher-or-equal
// survivability) and strictly better on at least one.
func markParetoReliability(pts []ParetoPoint) {
	const tol = 1e-9
	for i := range pts {
		dominated := false
		for j := range pts {
			if i == j {
				continue
			}
			if pts[j].AreaMM2 <= pts[i].AreaMM2+tol && pts[j].PowerMW <= pts[i].PowerMW+tol &&
				pts[j].Survivability >= pts[i].Survivability-tol &&
				(pts[j].AreaMM2 < pts[i].AreaMM2-tol || pts[j].PowerMW < pts[i].PowerMW-tol ||
					pts[j].Survivability > pts[i].Survivability+tol) {
				dominated = true
				break
			}
		}
		pts[i].Dominant = !dominated
	}
}

// markPareto flags the non-dominated points in the (area, power) plane.
func markPareto(pts []ParetoPoint) {
	const tol = 1e-9
	for i := range pts {
		dominated := false
		for j := range pts {
			if i == j {
				continue
			}
			if pts[j].AreaMM2 <= pts[i].AreaMM2+tol && pts[j].PowerMW <= pts[i].PowerMW+tol &&
				(pts[j].AreaMM2 < pts[i].AreaMM2-tol || pts[j].PowerMW < pts[i].PowerMW-tol) {
				dominated = true
				break
			}
		}
		pts[i].Dominant = !dominated
	}
}

// ParetoFront filters the dominant points.
func ParetoFront(pts []ParetoPoint) []ParetoPoint {
	var out []ParetoPoint
	for _, p := range pts {
		if p.Dominant {
			out = append(out, p)
		}
	}
	return out
}
