package core

import (
	"context"
	"testing"

	"sunmap/internal/apps"
	"sunmap/internal/engine"
	"sunmap/internal/mapping"
	"sunmap/internal/route"
	"sunmap/internal/synth"
	"sunmap/internal/topology"
)

// synthConfig is the MPEG-4 selection of Section 6.1 with synthesized
// candidates enabled.
func synthConfig(t *testing.T) Config {
	t.Helper()
	g, err := apps.ByName("mpeg4")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		App: g,
		Mapping: mapping.Options{
			Routing:      route.MinPath,
			Objective:    mapping.MinDelay,
			CapacityMBps: apps.DefaultCapacityMBps,
		},
		EscalateRouting: true,
		Synth:           &synth.Options{},
	}
}

// TestSelectWithSynthCandidates is the end-to-end acceptance check: one
// Select call evaluates at least three synthesized candidates alongside
// the full standard library, in deterministic order after the library.
func TestSelectWithSynthCandidates(t *testing.T) {
	sel, err := Select(synthConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := sel.SynthCount(); got < 3 {
		t.Errorf("SynthCount = %d, want >= 3", got)
	}
	// The library must still be fully present before the synthesized tail.
	lib, err := topology.Library(12, topology.LibraryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Candidates) != len(lib)+sel.SynthCount() {
		t.Errorf("%d candidates for %d library + %d synthesized",
			len(sel.Candidates), len(lib), sel.SynthCount())
	}
	for i, want := range lib {
		if sel.Candidates[i].Name() != want.Name() {
			t.Errorf("candidate %d = %s, want library member %s", i, sel.Candidates[i].Name(), want.Name())
		}
	}
	for _, c := range sel.Candidates[len(lib):] {
		if c.Result == nil || c.Result.Topology.Kind() != topology.Synth {
			t.Errorf("tail candidate %s is not an evaluated synthesized topology", c.Name())
		}
	}
}

// TestSelectWithSynthDeterministic asserts the synthesized sweep returns
// identical selections at every parallelism setting.
func TestSelectWithSynthDeterministic(t *testing.T) {
	cfg := synthConfig(t)
	cfg.Parallelism = 1
	seq, err := Select(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{0, 4} {
		cfg := synthConfig(t)
		cfg.Parallelism = par
		got, err := Select(cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		sameSelection(t, got, seq)
	}
}

// TestSelectWithSynthCacheReplay asserts synthesized candidates are
// memoized like library members: a second Select on a shared cache replays
// every evaluation — including every synthesized one — as a cache hit.
func TestSelectWithSynthCacheReplay(t *testing.T) {
	cache := engine.NewCache()
	cfg := synthConfig(t)
	cfg.Cache = cache
	if _, err := Select(cfg); err != nil {
		t.Fatal(err)
	}

	cfg = synthConfig(t)
	cfg.Cache = cache
	synthHits := 0
	cfg.Progress = func(ev engine.Event) {
		if !ev.CacheHit {
			t.Errorf("warm replay re-evaluated %s under %s", ev.Topology, ev.Routing)
		}
		if topo, err := topology.ByName(ev.Topology); err == nil && topo.Kind() == topology.Synth {
			synthHits++
		}
	}
	sel, err := SelectContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if synthHits < 3 {
		t.Errorf("only %d synthesized cache hits, want >= 3", synthHits)
	}
	if sel.SynthCount() < 3 {
		t.Errorf("SynthCount = %d after warm replay, want >= 3", sel.SynthCount())
	}
}
