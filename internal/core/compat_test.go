package core

// Test-only ctx-less entry points. The shipped package exposes only the
// *Context forms (ctxdiscipline forbids library code from minting a
// context); the in-package tests keep the shorter spellings via these
// wrappers, which exist only in the test binary.

import (
	"context"

	"sunmap/internal/graph"
	"sunmap/internal/mapping"
	"sunmap/internal/topology"
)

// Select runs SelectContext under a background context.
func Select(cfg Config) (*Selection, error) {
	return SelectContext(context.Background(), cfg)
}

// RoutingSweep runs RoutingSweepContext under a background context with
// default exploration options.
func RoutingSweep(app *graph.CoreGraph, topo topology.Topology, opts mapping.Options) ([]RoutingSweepRow, error) {
	return RoutingSweepContext(context.Background(), app, topo, opts, ExploreOptions{})
}

// ParetoExplore runs ParetoExploreContext under a background context with
// default exploration options.
func ParetoExplore(app *graph.CoreGraph, topo topology.Topology, opts mapping.Options, steps int) ([]ParetoPoint, error) {
	return ParetoExploreContext(context.Background(), app, topo, opts, steps, ExploreOptions{})
}
