package core

import (
	"testing"

	"sunmap/internal/apps"
	"sunmap/internal/mapping"
	"sunmap/internal/route"
	"sunmap/internal/topology"
)

func TestRoutingSweepMPEG4Mesh(t *testing.T) {
	// Fig. 9(a): on the mesh, only the splitting functions fit under the
	// 500 MB/s links; single-path functions need >= 910 (the largest
	// commodity).
	topo, err := topology.NewMesh(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RoutingSweep(apps.MPEG4(), topo, mapping.Options{
		Objective:    mapping.MinDelay,
		CapacityMBps: apps.DefaultCapacityMBps,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4 (DO, MP, SM, SA)", len(rows))
	}
	byFn := make(map[route.Function]RoutingSweepRow)
	for _, r := range rows {
		byFn[r.Function] = r
	}
	if byFn[route.DimensionOrdered].RequiredMBps < 910 {
		t.Errorf("DO requires %g, want >= 910", byFn[route.DimensionOrdered].RequiredMBps)
	}
	if byFn[route.MinPath].RequiredMBps < 910 {
		t.Errorf("MP requires %g, want >= 910", byFn[route.MinPath].RequiredMBps)
	}
	if byFn[route.SplitMin].RequiredMBps > 500 {
		t.Errorf("SM requires %g, want <= 500", byFn[route.SplitMin].RequiredMBps)
	}
	if byFn[route.SplitAll].RequiredMBps > 500 {
		t.Errorf("SA requires %g, want <= 500", byFn[route.SplitAll].RequiredMBps)
	}
	if byFn[route.SplitMin].FeasibleAt500 != true || byFn[route.MinPath].FeasibleAt500 != false {
		t.Error("FeasibleAt500 flags wrong")
	}
}

func TestRoutingSweepVOPDAllFeasible(t *testing.T) {
	// VOPD's max flow equals the capacity, so every routing function can
	// reach feasibility on a mesh; single-path functions are bounded
	// below by the 500 MB/s flow, splitting functions may go lower.
	topo, err := topology.NewMesh(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RoutingSweep(apps.VOPD(), topo, mapping.Options{
		Objective:    mapping.MinDelay,
		CapacityMBps: apps.DefaultCapacityMBps,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.RequiredMBps > 500+1e-6 {
			t.Errorf("%v requires %g, want <= 500 for VOPD", r.Function, r.RequiredMBps)
		}
		if (r.Function == route.DimensionOrdered || r.Function == route.MinPath) && r.RequiredMBps < 500 {
			t.Errorf("%v requires %g, single-path cannot go below the 500 flow", r.Function, r.RequiredMBps)
		}
	}
}

func TestParetoExploreMPEG4(t *testing.T) {
	topo, err := topology.NewMesh(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := ParetoExplore(apps.MPEG4(), topo, mapping.Options{
		Routing:      route.SplitMin,
		CapacityMBps: apps.DefaultCapacityMBps,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct points after deduplication; different weight vectors often
	// converge to the same mapping, so a couple of distinct points is the
	// floor.
	if len(pts) < 2 {
		t.Fatalf("only %d design points", len(pts))
	}
	front := ParetoFront(pts)
	if len(front) == 0 {
		t.Fatal("empty Pareto front")
	}
	// No front point may dominate another front point.
	for i, a := range front {
		for j, b := range front {
			if i == j {
				continue
			}
			if a.AreaMM2 < b.AreaMM2-1e-9 && a.PowerMW < b.PowerMW-1e-9 {
				t.Errorf("front point %d dominates front point %d", i, j)
			}
		}
	}
	// Every non-front point must be dominated by some front point.
	for _, p := range pts {
		if p.Dominant {
			continue
		}
		dominated := false
		for _, f := range front {
			if f.AreaMM2 <= p.AreaMM2+1e-9 && f.PowerMW <= p.PowerMW+1e-9 {
				dominated = true
			}
		}
		if !dominated {
			t.Errorf("point (%g, %g) marked dominated but is not", p.AreaMM2, p.PowerMW)
		}
	}
}

func TestParetoExploreStepsClamped(t *testing.T) {
	topo, err := topology.NewMesh(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := ParetoExplore(apps.DSPFilter(), topo, mapping.Options{
		Routing:      route.MinPath,
		CapacityMBps: apps.DSPCapacityMBps,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Error("no points with clamped steps")
	}
}
