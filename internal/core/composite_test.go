package core

import (
	"testing"

	"sunmap/internal/apps"
	"sunmap/internal/mapping"
	"sunmap/internal/route"
)

func TestBestCompositeMPEG4PicksMesh(t *testing.T) {
	// Section 6.1: under split routing the torus has lower hop delay, but
	// the mesh's area and power savings "overshadow the slightly higher
	// communication delay cost"; the equal-weight composite judgement
	// must land on the mesh.
	sel, err := Select(Config{
		App: apps.MPEG4(),
		Mapping: mapping.Options{
			Routing:      route.SplitMin,
			Objective:    mapping.MinDelay,
			CapacityMBps: apps.DefaultCapacityMBps,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	best := sel.BestComposite(1, 1, 1)
	if best == nil {
		t.Fatal("composite found nothing feasible")
	}
	if best.Topology.Kind().String() != "mesh" {
		t.Errorf("composite picked %s, want a mesh", best.Topology.Name())
	}
	// Pure-delay weighting must agree with the delay-objective Phase 2
	// winner's hop count.
	delayBest := sel.BestComposite(1, 0, 0)
	if delayBest == nil {
		t.Fatal("delay-only composite found nothing")
	}
	if sel.Best != nil && delayBest.AvgHops > sel.Best.AvgHops+1e-9 {
		t.Errorf("delay-only composite hops %g above Phase 2 best %g",
			delayBest.AvgHops, sel.Best.AvgHops)
	}
	// Area-only and power-only weightings pick the respective minima.
	areaBest := sel.BestComposite(0, 1, 0)
	powerBest := sel.BestComposite(0, 0, 1)
	for _, c := range sel.Candidates {
		if c.Result == nil || !c.Feasible() {
			continue
		}
		if c.Result.DesignAreaMM2 < areaBest.DesignAreaMM2-1e-9 {
			t.Errorf("area composite missed %s (%g < %g)",
				c.Result.Topology.Name(), c.Result.DesignAreaMM2, areaBest.DesignAreaMM2)
		}
		if c.Result.PowerMW < powerBest.PowerMW-1e-9 {
			t.Errorf("power composite missed %s (%g < %g)",
				c.Result.Topology.Name(), c.Result.PowerMW, powerBest.PowerMW)
		}
	}
}

func TestBestCompositeEmptySelection(t *testing.T) {
	// Infeasible-only selections yield nil, not a panic.
	sel, err := Select(Config{
		App: apps.MPEG4(),
		Mapping: mapping.Options{
			Routing:      route.MinPath, // 910 > 500: nothing feasible
			Objective:    mapping.MinDelay,
			CapacityMBps: apps.DefaultCapacityMBps,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if best := sel.BestComposite(1, 1, 1); best != nil {
		t.Errorf("composite returned %s from an infeasible selection", best.Topology.Name())
	}
}
