// Package apps provides the benchmark applications of the paper's
// Section 6 as core graphs: the Video Object Plane Decoder (VOPD, Fig. 3a),
// the MPEG4 decoder (Fig. 7a), the 16-node network processor (Fig. 8a) and
// the DSP filter (Fig. 10a), plus a seeded synthetic generator for tests
// and benchmarks.
//
// Edge bandwidths are transcribed from the figures; where a figure's
// label-to-edge association is ambiguous in the scanned text, the
// assignment follows the widely used versions of these benchmarks (see
// DESIGN.md Section 5). Per-core areas are tool inputs in the paper
// (Section 5: "area-power values of the cores are an input"); the values
// here are calibrated so design areas land in the paper's reported ranges
// at 0.1 µm (VOPD mesh ≈ 55 mm²).
package apps

import (
	"fmt"
	"math/rand"

	"sunmap/internal/graph"
)

// DefaultCapacityMBps is the paper's conservatively assumed maximum link
// bandwidth for the video experiments (Section 6.1).
const DefaultCapacityMBps = 500

// DSPCapacityMBps is the link capacity used for the DSP filter case study,
// whose 600 MB/s spine exceeds the video experiments' 500 MB/s links.
const DSPCapacityMBps = 1000

// VOPD returns the 12-core Video Object Plane Decoder graph of Fig. 3(a).
// The maximum single flow is 500 MB/s, exactly the link capacity, which is
// why single-path routing remains feasible for VOPD (Section 6.1).
func VOPD() *graph.CoreGraph {
	g := graph.NewCoreGraph("vopd")
	cores := []graph.Core{
		{Name: "vld", AreaMM2: 3.0, Soft: true},
		{Name: "rld", AreaMM2: 2.5, Soft: true},
		{Name: "iscan", AreaMM2: 2.5, Soft: true},
		{Name: "acdc", AreaMM2: 4.0, Soft: true},
		{Name: "smem", AreaMM2: 6.0},
		{Name: "iquant", AreaMM2: 3.5, Soft: true},
		{Name: "idct", AreaMM2: 4.0, Soft: true},
		{Name: "upsamp", AreaMM2: 3.5, Soft: true},
		{Name: "vopr", AreaMM2: 4.0, Soft: true},
		{Name: "vopm", AreaMM2: 5.0},
		{Name: "pad", AreaMM2: 1.9, Soft: true},
		{Name: "arm", AreaMM2: 5.5},
	}
	for _, c := range cores {
		g.MustAddCore(c)
	}
	g.MustConnect("vld", "rld", 70)
	g.MustConnect("rld", "iscan", 362)
	g.MustConnect("iscan", "acdc", 362)
	g.MustConnect("acdc", "iquant", 362)
	g.MustConnect("acdc", "smem", 49)
	g.MustConnect("smem", "iquant", 27)
	g.MustConnect("iquant", "idct", 357)
	g.MustConnect("idct", "upsamp", 353)
	g.MustConnect("upsamp", "vopr", 300)
	g.MustConnect("vopr", "vopm", 313)
	g.MustConnect("vopm", "pad", 313)
	g.MustConnect("pad", "vopr", 500)
	g.MustConnect("arm", "pad", 16)
	g.MustConnect("vopm", "arm", 94)
	return g
}

// MPEG4 returns the MPEG4 decoder graph of Fig. 7(a) with the shared SDRAM
// hub. Three flows exceed the 500 MB/s link capacity (910, 670 and 600
// MB/s), so no single-path routing function can be feasible and the
// butterfly — having no path diversity — stays infeasible even with
// traffic splitting, reproducing Fig. 7(b). The figure's prose says 14
// cores while the drawn benchmark has 12; see DESIGN.md Section 5.
func MPEG4() *graph.CoreGraph {
	g := graph.NewCoreGraph("mpeg4")
	cores := []graph.Core{
		{Name: "vu", AreaMM2: 4.0, Soft: true},
		{Name: "au", AreaMM2: 3.0, Soft: true},
		{Name: "med_cpu", AreaMM2: 5.0},
		{Name: "rast", AreaMM2: 3.5, Soft: true},
		{Name: "adsp", AreaMM2: 4.0, Soft: true},
		{Name: "idct_etc", AreaMM2: 4.5, Soft: true},
		{Name: "upsamp", AreaMM2: 3.0, Soft: true},
		{Name: "bab", AreaMM2: 2.0, Soft: true},
		{Name: "risc", AreaMM2: 5.0},
		{Name: "sdram", AreaMM2: 8.0},
		{Name: "sram1", AreaMM2: 6.0},
		{Name: "sram2", AreaMM2: 6.0},
	}
	for _, c := range cores {
		g.MustAddCore(c)
	}
	g.MustConnect("vu", "sdram", 190)
	g.MustConnect("au", "sdram", 0.5)
	g.MustConnect("med_cpu", "sdram", 60)
	g.MustConnect("rast", "sdram", 600)
	g.MustConnect("idct_etc", "sdram", 500)
	g.MustConnect("sdram", "upsamp", 910)
	g.MustConnect("bab", "sdram", 32)
	g.MustConnect("sdram", "risc", 670)
	g.MustConnect("risc", "sram1", 250)
	g.MustConnect("risc", "sram2", 173)
	g.MustConnect("vu", "au", 40)
	g.MustConnect("au", "adsp", 40)
	g.MustConnect("adsp", "sdram", 0.5)
	return g
}

// NetProc returns the 16-node network processor of Fig. 8(a): identical
// nodes (request generator, scheduler, processor, memory behind one
// switch port) exchanging packet data. The mapping experiments relax
// bandwidth constraints (Section 6.2); the latency study drives the
// simulator with adversarial synthetic traffic instead of this graph.
// Each node sends 200 MB/s to its successor, its quadrant peer and its
// opposite node, giving the all-to-all-ish load the paper describes.
func NetProc() *graph.CoreGraph {
	g := graph.NewCoreGraph("netproc")
	const n = 16
	for i := 0; i < n; i++ {
		g.MustAddCore(graph.Core{Name: fmt.Sprintf("node%02d", i), AreaMM2: 4.5})
	}
	name := func(i int) string { return fmt.Sprintf("node%02d", i%n) }
	for i := 0; i < n; i++ {
		g.MustConnect(name(i), name(i+1), 200)
		g.MustConnect(name(i), name(i+4), 200)
		g.MustConnect(name(i), name(i+8), 200)
	}
	return g
}

// DSPFilter returns the 6-core DSP filter design of Fig. 10(a): six 200
// MB/s flows and the 600 MB/s FFT->Filter->IFFT spine. Use DSPCapacityMBps
// for its link capacity.
func DSPFilter() *graph.CoreGraph {
	g := graph.NewCoreGraph("dsp-filter")
	cores := []graph.Core{
		{Name: "arm", AreaMM2: 4.0},
		{Name: "memory", AreaMM2: 6.0},
		{Name: "fft", AreaMM2: 3.0, Soft: true},
		{Name: "ifft", AreaMM2: 3.0, Soft: true},
		{Name: "filter", AreaMM2: 2.5, Soft: true},
		{Name: "display", AreaMM2: 3.5},
	}
	for _, c := range cores {
		g.MustAddCore(c)
	}
	g.MustConnect("arm", "memory", 200)
	g.MustConnect("memory", "arm", 200)
	g.MustConnect("memory", "fft", 200)
	g.MustConnect("fft", "filter", 600)
	g.MustConnect("filter", "ifft", 600)
	g.MustConnect("ifft", "memory", 200)
	g.MustConnect("memory", "display", 200)
	g.MustConnect("arm", "display", 200)
	return g
}

// Synthetic generates a random application with n cores and roughly
// density*n*(n-1) directed flows with bandwidths in (0, maxBW]. The same
// seed always yields the same graph.
func Synthetic(n int, density float64, maxBW float64, seed int64) *graph.CoreGraph {
	if n < 2 {
		n = 2
	}
	if density <= 0 {
		density = 0.15
	}
	if maxBW <= 0 {
		maxBW = 500
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewCoreGraph(fmt.Sprintf("synthetic-%d-%d", n, seed))
	for i := 0; i < n; i++ {
		g.MustAddCore(graph.Core{
			Name:    fmt.Sprintf("core%02d", i),
			AreaMM2: 1 + rng.Float64()*7,
			Soft:    rng.Intn(2) == 0,
		})
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || rng.Float64() >= density {
				continue
			}
			bw := maxBW * (0.05 + 0.95*rng.Float64())
			g.MustConnect(fmt.Sprintf("core%02d", i), fmt.Sprintf("core%02d", j), bw)
		}
	}
	// Guarantee connectivity of the flow set: chain any isolated cores.
	for i := 0; i < n; i++ {
		if g.CommVolume(i) == 0 {
			g.MustConnect(fmt.Sprintf("core%02d", i), fmt.Sprintf("core%02d", (i+1)%n), maxBW*0.1)
		}
	}
	return g
}

// ByName returns a built-in application by name.
func ByName(name string) (*graph.CoreGraph, error) {
	switch name {
	case "vopd":
		return VOPD(), nil
	case "mpeg4":
		return MPEG4(), nil
	case "netproc":
		return NetProc(), nil
	case "dsp", "dsp-filter":
		return DSPFilter(), nil
	}
	return nil, fmt.Errorf("apps: unknown application %q (want vopd, mpeg4, netproc or dsp)", name)
}

// Names lists the built-in applications.
func Names() []string { return []string{"vopd", "mpeg4", "netproc", "dsp"} }
