package apps

import (
	"testing"

	"sunmap/internal/graph"
)

func TestAllAppsValidate(t *testing.T) {
	for _, name := range Names() {
		g, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestVOPDShape(t *testing.T) {
	g := VOPD()
	if g.NumCores() != 12 {
		t.Errorf("VOPD has %d cores, want 12 (Section 6.1)", g.NumCores())
	}
	if g.NumEdges() != 14 {
		t.Errorf("VOPD has %d flows, want 14", g.NumEdges())
	}
	// Max flow equals the 500 MB/s link capacity: single-path routing
	// stays feasible (the paper's butterfly result depends on this).
	if got := g.MaxEdgeMBps(); got != 500 {
		t.Errorf("VOPD max flow = %g, want 500", got)
	}
	if a := g.TotalCoreAreaMM2(); a < 40 || a > 55 {
		t.Errorf("VOPD core area = %g mm², want ~45 for the paper's 55 mm² design", a)
	}
}

func TestMPEG4Shape(t *testing.T) {
	g := MPEG4()
	if g.NumCores() != 12 {
		t.Errorf("MPEG4 has %d cores, want 12 (drawn benchmark; see DESIGN.md)", g.NumCores())
	}
	// The infeasibility mechanism of Fig. 7(b)/9(a): at least one flow
	// above 500 MB/s...
	if got := g.MaxEdgeMBps(); got != 910 {
		t.Errorf("MPEG4 max flow = %g, want 910", got)
	}
	over := 0
	for _, e := range g.Edges() {
		if e.BandwidthMBps > 500 {
			over++
		}
	}
	if over != 3 {
		t.Errorf("MPEG4 has %d flows above 500 MB/s, want 3 (910, 670, 600)", over)
	}
	// ...but SDRAM's aggregate in/out each fit within four 500 MB/s links,
	// so split routing on a mesh can be feasible.
	sdram, ok := g.CoreIndex("sdram")
	if !ok {
		t.Fatal("sdram missing")
	}
	var in, out float64
	for _, e := range g.Edges() {
		if e.To == sdram {
			in += e.BandwidthMBps
		}
		if e.From == sdram {
			out += e.BandwidthMBps
		}
	}
	if in > 2000 || out > 2000 {
		t.Errorf("sdram in=%g out=%g MB/s, both must fit 4x500 for split feasibility", in, out)
	}
}

func TestNetProcShape(t *testing.T) {
	g := NetProc()
	if g.NumCores() != 16 {
		t.Errorf("NetProc has %d cores, want 16", g.NumCores())
	}
	if g.NumEdges() != 48 {
		t.Errorf("NetProc has %d flows, want 48", g.NumEdges())
	}
	// Homogeneous nodes: every core has the same traffic volume.
	v0 := g.CommVolume(0)
	for i := 1; i < 16; i++ {
		if g.CommVolume(i) != v0 {
			t.Errorf("node %d volume %g != node 0 volume %g", i, g.CommVolume(i), v0)
		}
	}
}

func TestDSPShape(t *testing.T) {
	g := DSPFilter()
	if g.NumCores() != 6 || g.NumEdges() != 8 {
		t.Errorf("DSP = %s, want 6 cores / 8 flows", g)
	}
	if got := g.MaxEdgeMBps(); got != 600 {
		t.Errorf("DSP max flow = %g, want 600 (FFT spine)", got)
	}
	if got := g.TotalBandwidthMBps(); got != 6*200+2*600 {
		t.Errorf("DSP total = %g, want %d", got, 6*200+2*600)
	}
}

func TestSyntheticDeterministicAndValid(t *testing.T) {
	a := Synthetic(10, 0.2, 400, 42)
	b := Synthetic(10, 0.2, 400, 42)
	if graph.Format(a) != graph.Format(b) {
		t.Error("same seed produced different graphs")
	}
	c := Synthetic(10, 0.2, 400, 43)
	if graph.Format(a) == graph.Format(c) {
		t.Error("different seeds produced identical graphs")
	}
	if err := a.Validate(); err != nil {
		t.Errorf("synthetic graph invalid: %v", err)
	}
	// No isolated cores.
	for i := 0; i < a.NumCores(); i++ {
		if a.CommVolume(i) == 0 {
			t.Errorf("core %d isolated", i)
		}
	}
	// Degenerate parameters are clamped, not fatal.
	d := Synthetic(1, -1, -5, 7)
	if d.NumCores() < 2 {
		t.Error("clamping failed")
	}
}
