// Package jobs is the durability layer under `sunmap serve`'s async job
// API: a lifecycle store (queued → running → done/failed/cancelled)
// whose every transition is journaled to an append-only, fsync'd,
// checksum-framed file before it is acknowledged. A process that dies —
// SIGKILL, OOM, power — reopens the journal, truncates the torn tail,
// and finds every acknowledged job either terminal (result intact) or
// re-queued for execution; jobs that published checkpoints resume from
// their latest one instead of restarting, and the checkpoint/resume
// contract upstream (internal/search) makes the resumed result
// bit-identical to an uninterrupted run.
//
// The store is payload-agnostic: payloads, results and checkpoints are
// opaque bytes, and execution is delegated to the Runner the caller
// passes to Open. Robustness policy lives here too: a panicking runner
// is quarantined into a failed job, and a run of consecutive panics
// opens a circuit breaker that sheds new submissions with a retry hint
// until a cooldown passes.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sunmap/internal/obs"
)

// Process-wide job-lifecycle counters. Children are resolved once with
// constant labels (the obslabel contract), so transitions cost one
// atomic add under the store mutex.
var (
	jobEvents     = obs.Default.CounterVec("sunmap_jobs_total", "job lifecycle transitions by event", "event")
	jobSubmitted  = jobEvents.With("submitted")
	jobDone       = jobEvents.With("done")
	jobFailed     = jobEvents.With("failed")
	jobCancelled  = jobEvents.With("cancelled")
	jobPanics     = jobEvents.With("panic")
	jobShed       = jobEvents.With("breaker-shed")
	jobRunSeconds = obs.Default.Histogram("sunmap_job_run_seconds", "wall time of one job execution attempt", nil)
)

// State is a job's lifecycle state.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Sentinel errors.
var (
	// ErrUnknownJob reports an ID the store has never seen (or has
	// already garbage-collected).
	ErrUnknownJob = errors.New("unknown job")
	// ErrNotTerminal reports a result fetch on a job still in flight.
	ErrNotTerminal = errors.New("job not finished")
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("job store closed")
	// ErrPanic marks a job failed by a panicking runner.
	ErrPanic = errors.New("runner panicked")
)

// BreakerOpenError sheds a submission while the panic circuit breaker
// is open. RetryAfter is the remaining cooldown.
type BreakerOpenError struct {
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("jobs: breaker open after repeated runner panics; retry in %s", e.RetryAfter.Round(time.Millisecond))
}

// Runner executes one job. ctx is cancelled on job cancellation and on
// store shutdown; ck carries the job's latest journaled checkpoint (nil
// Latest when none) and accepts new ones via Save. The returned bytes
// are the job's durable result.
type Runner func(ctx context.Context, kind string, payload []byte, ck *Checkpoint) ([]byte, error)

// Options configures a store. Zero values select the defaults.
type Options struct {
	// Dir is the journal directory; empty runs the store memory-only
	// (no durability — useful for tests and ephemeral servers).
	Dir string
	// Workers is the number of concurrent job executors (default 2).
	Workers int
	// Retention is how long terminal jobs stay fetchable before GC
	// (default 1h).
	Retention time.Duration
	// BreakerThreshold is the consecutive-panic count that opens the
	// circuit breaker (default 5); BreakerCooldown how long it sheds
	// submissions before half-opening (default 30s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Clock overrides the wall clock (tests; default obs.Now, the
	// audited source).
	Clock func() time.Time
	// WriteFault, when set, runs before every journal append and fails
	// the append with its error — the chaos harness's fault injector.
	WriteFault func(recType, id string) error
	// Recorder, when set, receives job-lifecycle and journal-append
	// spans (StageJobRun, StageJournalAppend). Nil disables span
	// recording at the cost of one branch.
	Recorder *obs.Recorder
	// Logger receives degraded-path notices (journal write failures,
	// runner panics, breaker transitions), each line carrying the job
	// and request correlation ids. Nil discards them.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.Retention <= 0 {
		o.Retention = time.Hour
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 30 * time.Second
	}
	if o.Clock == nil {
		o.Clock = obs.Now
	}
	if o.Logger == nil {
		o.Logger = obs.Discard()
	}
	return o
}

// Job is a point-in-time snapshot of one job, also the wire shape the
// serve layer returns from GET /v1/jobs/{id}.
type Job struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State State  `json:"state"`
	// Error carries the failure (or cancellation) detail for terminal
	// non-done states.
	Error string `json:"error,omitempty"`
	// Attempts counts executions started, across restarts: 2 means the
	// job was interrupted once and re-run.
	Attempts int `json:"attempts"`
	// HasCheckpoint reports a journaled resume point.
	HasCheckpoint bool `json:"has_checkpoint,omitempty"`
	// ReqID is the request-correlation id the submission carried
	// (SubmitTagged), tying this job's journal records and log lines
	// back to the HTTP request that created it. Durable across restarts.
	ReqID string `json:"req,omitempty"`
}

// Stats snapshots store health.
type Stats struct {
	Jobs    int `json:"jobs"`
	Queued  int `json:"queued"`
	Running int `json:"running"`
	// WriteFailures counts journal appends that failed after the job was
	// already admitted (mid-run records degrade instead of aborting).
	WriteFailures uint64 `json:"write_failures,omitempty"`
	// BreakerOpen reports the panic circuit breaker shedding submissions.
	BreakerOpen bool `json:"breaker_open,omitempty"`
}

// job is the store-internal mutable record.
type job struct {
	id          string
	kind        string
	reqID       string
	payload     []byte
	state       State
	errMsg      string
	result      []byte
	ckpt        []byte
	attempts    int
	submittedAt time.Time
	doneAt      time.Time
	cancelled   bool
	cancel      context.CancelFunc // set while running
	done        chan struct{}      // closed on terminal transition
}

func (jb *job) snapshot() Job {
	return Job{
		ID:            jb.id,
		Kind:          jb.kind,
		State:         jb.state,
		Error:         jb.errMsg,
		Attempts:      jb.attempts,
		HasCheckpoint: len(jb.ckpt) > 0,
		ReqID:         jb.reqID,
	}
}

// Store is a crash-safe job store. All exported methods are safe for
// concurrent use.
type Store struct {
	opts Options
	run  Runner

	mu         sync.Mutex
	j          *journal // nil when memory-only
	jobs       map[string]*job
	order      []string // submission order: the deterministic iteration spine
	queue      []string
	seq        int
	closed     bool
	writeFails uint64
	// Panic circuit breaker: consecutive panics and the shed horizon.
	failures  int
	openUntil time.Time

	wake chan struct{}
	stop context.CancelFunc
	wg   sync.WaitGroup
}

// Open replays the journal in opts.Dir (creating it as needed),
// compacts it, re-queues every non-terminal job, and starts the worker
// and retention-GC goroutines. ctx scopes the open itself; the
// background goroutines detach and run until Close.
func Open(ctx context.Context, opts Options, run Runner) (*Store, error) {
	if run == nil {
		return nil, errors.New("jobs: nil runner")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := &Store{
		opts: opts.withDefaults(),
		run:  run,
		jobs: make(map[string]*job),
	}
	s.wake = make(chan struct{}, s.opts.Workers)
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("jobs: creating journal dir: %w", err)
		}
		j, err := openJournal(filepath.Join(opts.Dir, "jobs.journal"))
		if err != nil {
			return nil, err
		}
		j.rec = s.opts.Recorder
		if s.opts.WriteFault != nil {
			fault := s.opts.WriteFault
			j.fault = func(rec record) error { return fault(rec.Type, rec.ID) }
		}
		recs, err := j.replay()
		if err != nil {
			j.close()
			return nil, err
		}
		s.j = j
		s.rebuild(recs)
		if err := j.rewrite(s.compactRecords()); err != nil {
			j.close()
			return nil, err
		}
	}

	// The workers and the GC ticker outlive Open's ctx by design: jobs
	// keep running after the submitting request disconnects — that is
	// the point of the package. Close cancels them.
	bg, cancel := context.WithCancel(context.Background()) //sunmap:detached
	s.stop = cancel
	for i := 0; i < s.opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker(bg)
	}
	s.wg.Add(1)
	go s.gcLoop(bg)

	// Re-wake workers for replayed work.
	s.mu.Lock()
	pending := len(s.queue)
	s.mu.Unlock()
	for i := 0; i < pending && i < s.opts.Workers; i++ {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
	return s, nil
}

// rebuild reconstitutes in-memory state from replayed records. Jobs
// found queued or running are re-queued: a "running" journal state with
// no terminal record is exactly what a crash mid-execution leaves.
func (s *Store) rebuild(recs []record) {
	for _, rec := range recs {
		switch rec.Type {
		case recSubmit:
			jb := &job{
				id:          rec.ID,
				kind:        rec.Kind,
				reqID:       rec.Req,
				payload:     append([]byte(nil), rec.Payload...),
				state:       StateQueued,
				submittedAt: time.Unix(0, rec.At),
				done:        make(chan struct{}),
			}
			s.jobs[rec.ID] = jb
			s.order = append(s.order, rec.ID)
			var n int
			if _, err := fmt.Sscanf(rec.ID, "j-%d", &n); err == nil && n > s.seq {
				s.seq = n
			}
		case recState:
			if jb := s.jobs[rec.ID]; jb != nil {
				jb.state = rec.State
				jb.errMsg = rec.Error
				if rec.State == StateRunning {
					jb.attempts++
				}
				if rec.State.Terminal() {
					jb.doneAt = time.Unix(0, rec.At)
				}
			}
		case recCkpt:
			if jb := s.jobs[rec.ID]; jb != nil {
				jb.ckpt = append([]byte(nil), rec.Ckpt...)
			}
		case recResult:
			if jb := s.jobs[rec.ID]; jb != nil {
				jb.state = StateDone
				jb.result = append([]byte(nil), rec.Result...)
				jb.doneAt = time.Unix(0, rec.At)
			}
		case recGC:
			delete(s.jobs, rec.ID)
			for i, id := range s.order {
				if id == rec.ID {
					s.order = append(s.order[:i], s.order[i+1:]...)
					break
				}
			}
		}
	}
	for _, id := range s.order {
		jb := s.jobs[id]
		if jb.state.Terminal() {
			close(jb.done)
			continue
		}
		jb.state = StateQueued
		s.queue = append(s.queue, id)
	}
}

// compactRecords flattens current state to one submit + latest
// checkpoint + terminal record per live job, in submission order.
func (s *Store) compactRecords() []record {
	var recs []record
	for _, id := range s.order {
		jb := s.jobs[id]
		recs = append(recs, record{
			Type: recSubmit, ID: id, Kind: jb.kind, Req: jb.reqID, Payload: jb.payload,
			At: jb.submittedAt.UnixNano(),
		})
		for i := 0; i < jb.attempts; i++ {
			recs = append(recs, record{Type: recState, ID: id, State: StateRunning})
		}
		if len(jb.ckpt) > 0 {
			recs = append(recs, record{Type: recCkpt, ID: id, Ckpt: jb.ckpt})
		}
		switch {
		case jb.state == StateDone:
			recs = append(recs, record{Type: recResult, ID: id, Result: jb.result, At: jb.doneAt.UnixNano()})
		case jb.state.Terminal():
			recs = append(recs, record{Type: recState, ID: id, State: jb.state, Error: jb.errMsg, At: jb.doneAt.UnixNano()})
		}
	}
	return recs
}

// appendLocked journals one record with the store mutex held. A false
// return means the record is not durable; the counter is bumped and the
// caller decides whether that is fatal for its operation.
func (s *Store) appendLocked(rec record) bool {
	if s.j == nil {
		return true
	}
	if err := s.j.append(rec); err != nil {
		s.writeFails++
		s.opts.Logger.Warn("jobs: journal append failed; continuing with reduced durability",
			obs.KeyJobID, rec.ID, "record", rec.Type, "error", err)
		return false
	}
	return true
}

// Submit admits a job. It fails with ErrClosed on a closed store, a
// *BreakerOpenError while the panic breaker is shedding, and the
// journal's error when the submit record cannot be made durable — an
// acknowledged submission is always recoverable.
func (s *Store) Submit(ctx context.Context, kind string, payload []byte) (Job, error) {
	return s.SubmitTagged(ctx, kind, payload, "")
}

// SubmitTagged is Submit carrying a request-correlation id: reqID is
// journaled with the submit record and surfaces on every later snapshot
// of the job, so the serve layer's per-request id follows the job into
// the journal and back out across restarts. Empty reqID is Submit.
func (s *Store) SubmitTagged(ctx context.Context, kind string, payload []byte, reqID string) (Job, error) {
	if err := ctx.Err(); err != nil {
		return Job{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Job{}, ErrClosed
	}
	now := s.opts.Clock()
	if s.failures >= s.opts.BreakerThreshold && now.Before(s.openUntil) {
		jobShed.Inc()
		return Job{}, &BreakerOpenError{RetryAfter: s.openUntil.Sub(now)}
	}
	s.seq++
	id := fmt.Sprintf("j-%d", s.seq)
	jb := &job{
		id:          id,
		kind:        kind,
		reqID:       reqID,
		payload:     append([]byte(nil), payload...),
		state:       StateQueued,
		submittedAt: now,
		done:        make(chan struct{}),
	}
	if s.j != nil {
		if err := s.j.append(record{Type: recSubmit, ID: id, Kind: kind, Req: reqID, Payload: jb.payload, At: now.UnixNano()}); err != nil {
			s.seq--
			return Job{}, err
		}
	}
	jobSubmitted.Inc()
	s.jobs[id] = jb
	s.order = append(s.order, id)
	s.queue = append(s.queue, id)
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return jb.snapshot(), nil
}

// Get returns a job snapshot.
func (s *Store) Get(id string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	jb := s.jobs[id]
	if jb == nil {
		return Job{}, fmt.Errorf("jobs: %w: %s", ErrUnknownJob, id)
	}
	return jb.snapshot(), nil
}

// List returns all live jobs in submission order.
func (s *Store) List() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].snapshot())
	}
	return out
}

// Result returns a terminal job's result bytes (nil for failed and
// cancelled jobs) alongside its snapshot; ErrNotTerminal while it is
// still queued or running.
func (s *Store) Result(id string) ([]byte, Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	jb := s.jobs[id]
	if jb == nil {
		return nil, Job{}, fmt.Errorf("jobs: %w: %s", ErrUnknownJob, id)
	}
	if !jb.state.Terminal() {
		return nil, jb.snapshot(), fmt.Errorf("jobs: %w: %s is %s", ErrNotTerminal, id, jb.state)
	}
	return jb.result, jb.snapshot(), nil
}

// Cancel requests cancellation: a queued job transitions immediately, a
// running one has its context cancelled and transitions when the runner
// returns, a terminal one is left as-is.
func (s *Store) Cancel(id string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	jb := s.jobs[id]
	if jb == nil {
		return Job{}, fmt.Errorf("jobs: %w: %s", ErrUnknownJob, id)
	}
	switch jb.state {
	case StateQueued:
		jb.cancelled = true
		s.terminalLocked(jb, StateCancelled, "cancelled before start", nil)
	case StateRunning:
		jb.cancelled = true
		if jb.cancel != nil {
			jb.cancel()
		}
	}
	return jb.snapshot(), nil
}

// Wait blocks until the job is terminal or ctx is done.
func (s *Store) Wait(ctx context.Context, id string) (Job, error) {
	s.mu.Lock()
	jb := s.jobs[id]
	s.mu.Unlock()
	if jb == nil {
		return Job{}, fmt.Errorf("jobs: %w: %s", ErrUnknownJob, id)
	}
	select {
	case <-jb.done:
	case <-ctx.Done():
		return Job{}, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return jb.snapshot(), nil
}

// Stats snapshots store health counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Jobs: len(s.jobs), WriteFailures: s.writeFails}
	for _, jb := range s.jobs { //sunmap:unordered
		switch jb.state {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		}
	}
	st.BreakerOpen = s.failures >= s.opts.BreakerThreshold && s.opts.Clock().Before(s.openUntil)
	return st
}

// Close stops the workers and GC and closes the journal. In-flight jobs
// are interrupted without a terminal record — exactly like a crash — so
// a later Open re-queues them; their journaled checkpoints survive.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.stop()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.j.close()
}

// terminalLocked applies a terminal transition, journals it, and wakes
// waiters. Journal failures degrade (the transition stands in memory).
func (s *Store) terminalLocked(jb *job, st State, msg string, result []byte) {
	jb.state = st
	jb.errMsg = msg
	jb.doneAt = s.opts.Clock()
	if st == StateDone {
		jb.result = result
		s.appendLocked(record{Type: recResult, ID: jb.id, Result: result, At: jb.doneAt.UnixNano()})
	} else {
		s.appendLocked(record{Type: recState, ID: jb.id, State: st, Error: msg, At: jb.doneAt.UnixNano()})
	}
	switch st {
	case StateDone:
		jobDone.Inc()
	case StateFailed:
		jobFailed.Inc()
	case StateCancelled:
		jobCancelled.Inc()
	}
	close(jb.done)
}

func (s *Store) pop() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) > 0 {
		id := s.queue[0]
		s.queue = s.queue[1:]
		if jb := s.jobs[id]; jb != nil && jb.state == StateQueued {
			return jb
		}
	}
	return nil
}

func (s *Store) worker(ctx context.Context) {
	defer s.wg.Done()
	for {
		for ctx.Err() == nil {
			jb := s.pop()
			if jb == nil {
				break
			}
			s.runJob(ctx, jb)
		}
		select {
		case <-ctx.Done():
			return
		case <-s.wake:
		}
	}
}

// runJob executes one job under panic quarantine. On store shutdown
// mid-run it deliberately writes no terminal record: the journal's last
// word stays "running", which the next Open re-queues — the crash-safety
// path and the graceful-shutdown path are the same path.
func (s *Store) runJob(ctx context.Context, jb *job) {
	s.mu.Lock()
	if jb.state != StateQueued {
		s.mu.Unlock()
		return
	}
	jctx, cancel := context.WithCancel(ctx)
	jb.cancel = cancel
	jb.state = StateRunning
	jb.attempts++
	s.appendLocked(record{Type: recState, ID: jb.id, State: StateRunning, At: s.opts.Clock().UnixNano()})
	ck := &Checkpoint{s: s, id: jb.id}
	kind, payload := jb.kind, jb.payload
	s.mu.Unlock()

	start := obs.Now()
	var panicked bool
	result, err := func() (res []byte, rerr error) {
		defer func() {
			if r := recover(); r != nil {
				panicked = true
				rerr = fmt.Errorf("%w: %v", ErrPanic, r)
			}
		}()
		return s.run(jctx, kind, payload, ck)
	}()
	cancel()
	elapsed := obs.Since(start)
	jobRunSeconds.ObserveSeconds(int64(elapsed))
	s.opts.Recorder.Observe(obs.StageJobRun, elapsed)

	s.mu.Lock()
	defer s.mu.Unlock()
	jb.cancel = nil
	switch {
	case jb.cancelled:
		s.terminalLocked(jb, StateCancelled, "cancelled", nil)
		s.failures = 0
	case ctx.Err() != nil && err != nil && !panicked:
		// Shutdown interrupted the run: leave the journal saying
		// "running" so replay re-runs it from its latest checkpoint.
		jb.state = StateQueued
	case err != nil:
		s.terminalLocked(jb, StateFailed, err.Error(), nil)
		if panicked {
			jobPanics.Inc()
			s.failures++
			s.opts.Logger.Warn("jobs: runner panicked; job quarantined",
				obs.KeyJobID, jb.id, obs.KeyReqID, jb.reqID, "kind", jb.kind, "consecutive", s.failures)
			if s.failures >= s.opts.BreakerThreshold {
				s.openUntil = s.opts.Clock().Add(s.opts.BreakerCooldown)
				s.opts.Logger.Warn("jobs: circuit breaker open; shedding submissions",
					"until", s.openUntil, "threshold", s.opts.BreakerThreshold)
			}
		} else {
			s.failures = 0
		}
	default:
		s.terminalLocked(jb, StateDone, "", result)
		s.failures = 0
	}
}

// gcLoop expires terminal jobs past the retention window.
func (s *Store) gcLoop(ctx context.Context) {
	defer s.wg.Done()
	interval := s.opts.Retention / 4
	if interval < time.Second {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.gcOnce()
		}
	}
}

// gcOnce tombstones expired terminal jobs (one gc record each) and
// forgets them. Iteration follows the submission-order spine, so the
// tombstone order is deterministic.
func (s *Store) gcOnce() {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.opts.Clock()
	kept := s.order[:0]
	for _, id := range s.order {
		jb := s.jobs[id]
		if jb.state.Terminal() && now.Sub(jb.doneAt) >= s.opts.Retention {
			s.appendLocked(record{Type: recGC, ID: id, At: now.UnixNano()})
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Checkpoint is the resume-point handle a Runner receives: Latest
// returns the newest journaled checkpoint (nil when none — a fresh
// run), Save journals a new one. Save is safe to call concurrently from
// the runner's own workers.
type Checkpoint struct {
	s  *Store
	id string
}

// Latest returns a copy of the job's newest checkpoint, or nil.
func (c *Checkpoint) Latest() []byte {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	jb := c.s.jobs[c.id]
	if jb == nil || len(jb.ckpt) == 0 {
		return nil
	}
	return append([]byte(nil), jb.ckpt...)
}

// Save journals a new checkpoint. The in-memory copy is updated even
// when the journal write fails (the error reports reduced durability,
// not a lost checkpoint for this process's lifetime).
func (c *Checkpoint) Save(b []byte) error {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	jb := c.s.jobs[c.id]
	if jb == nil {
		return fmt.Errorf("jobs: %w: %s", ErrUnknownJob, c.id)
	}
	jb.ckpt = append([]byte(nil), b...)
	if !c.s.appendLocked(record{Type: recCkpt, ID: c.id, Ckpt: jb.ckpt, At: c.s.opts.Clock().UnixNano()}) {
		return fmt.Errorf("jobs: checkpoint for %s not durable", c.id)
	}
	return nil
}
