package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// This file is the package-level half of the chaos harness: the store
// is killed and reopened mid-job, its journal is truncated at every
// offset, and its writes are made to fail — and in every scenario each
// acknowledged job must reach a terminal state with the right result.
// The HTTP-level kill/restart test (full server, search job,
// bit-identical SearchReport) lives in the root chaos_test.go.

// counterRunner "computes" by counting payload steps one per
// millisecond, checkpointing its progress as a JSON int. Resume picks
// up from the checkpoint, so the result — the step sequence actually
// executed — reveals whether a restart re-ran finished work.
func counterRunner(steps chan<- int) Runner {
	return func(ctx context.Context, kind string, payload []byte, ck *Checkpoint) ([]byte, error) {
		var total int
		if err := json.Unmarshal(payload, &total); err != nil {
			return nil, err
		}
		start := 0
		if raw := ck.Latest(); raw != nil {
			if err := json.Unmarshal(raw, &start); err != nil {
				return nil, err
			}
		}
		for i := start; i < total; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			select {
			case steps <- i:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			b, _ := json.Marshal(i + 1)
			if err := ck.Save(b); err != nil {
				return nil, err
			}
		}
		return json.Marshal(map[string]int{"from": start, "total": total})
	}
}

// TestKillRestartResumesFromCheckpoint is the store-level recovery
// gate: a job interrupted by store teardown (no terminal record — the
// crash path) must be re-queued on reopen and resume from its journaled
// checkpoint, not from zero.
func TestKillRestartResumesFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	steps := make(chan int, 1024)
	s, err := Open(context.Background(), Options{Dir: dir, Workers: 1}, counterRunner(steps))
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := json.Marshal(40)
	jb, err := s.Submit(context.Background(), "count", payload)
	if err != nil {
		t.Fatal(err)
	}
	// Let it make some progress, then kill the store mid-run.
	for i := 0; i < 10; i++ {
		select {
		case <-steps:
		case <-time.After(10 * time.Second):
			t.Fatal("runner never progressed")
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(context.Background(), Options{Dir: dir, Workers: 1}, counterRunner(steps))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Get(jb.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateQueued && got.State != StateRunning {
		t.Fatalf("interrupted job replayed as %s", got.State)
	}
	if !got.HasCheckpoint {
		t.Fatal("checkpoint lost across restart")
	}
	fin := waitTerminal(t, s2, jb.ID)
	if fin.State != StateDone {
		t.Fatalf("recovered job ended %s (%s)", fin.State, fin.Error)
	}
	if fin.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one interrupted, one resumed)", fin.Attempts)
	}
	res, _, err := s2.Result(jb.ID)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]int
	if err := json.Unmarshal(res, &out); err != nil {
		t.Fatal(err)
	}
	if out["total"] != 40 || out["from"] == 0 {
		t.Fatalf("resume started from %d of %d — a restart-from-zero", out["from"], out["total"])
	}
}

// TestTruncatedJournalEveryOffset replays a journal truncated at every
// byte offset: the store must open cleanly on all of them (corrupt
// tails are discarded, never fatal) and keep a prefix of the submitted
// jobs.
func TestTruncatedJournalEveryOffset(t *testing.T) {
	dir := t.TempDir()
	hold := make(chan struct{})
	blocked := func(ctx context.Context, kind string, payload []byte, ck *Checkpoint) ([]byte, error) {
		select {
		case <-hold:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	}
	s, err := Open(context.Background(), Options{Dir: dir, Workers: 1}, blocked)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Submit(context.Background(), "blocked", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	close(hold)
	s.Close()
	journalPath := filepath.Join(dir, "jobs.journal")
	full, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}

	prev := -1
	for cut := 0; cut <= len(full); cut++ {
		sub := filepath.Join(t.TempDir(), "j")
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(sub, "jobs.journal"), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(context.Background(), Options{Dir: sub, Workers: 1}, blocked)
		if err != nil {
			t.Fatalf("cut %d/%d: open failed: %v", cut, len(full), err)
		}
		n := len(re.List())
		if n < prev-4 { // monotone modulo per-frame boundaries
			t.Fatalf("cut %d: recovered %d jobs after %d at a longer prefix", cut, n, prev)
		}
		prev = n
		re.Close()
	}
	// The untouched journal recovers everything.
	re, err := Open(context.Background(), Options{Dir: dir, Workers: 1}, blocked)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if n := len(re.List()); n != 4 {
		t.Fatalf("intact journal recovered %d jobs, want 4", n)
	}
}

// TestGarbageTailDiscarded appends raw garbage after valid frames: the
// replay must keep the valid prefix and truncate the rest, and the
// reopened store must keep journaling correctly.
func TestGarbageTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(context.Background(), Options{Dir: dir}, echoRunner)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := s.Submit(context.Background(), "echo", []byte("ab"))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, jb.ID)
	s.Close()
	journalPath := filepath.Join(dir, "jobs.journal")
	f, err := os.OpenFile(journalPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("\xff\xff\xff\xffgarbage beyond the last frame")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(context.Background(), Options{Dir: dir}, echoRunner)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	res, fin, err := s2.Result(jb.ID)
	if err != nil || fin.State != StateDone || string(res) != "ba" {
		t.Fatalf("after garbage tail: res %q, job %+v, err %v", res, fin, err)
	}
	// And the store still accepts and completes new durable work.
	jb2, err := s2.Submit(context.Background(), "echo", []byte("cd"))
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitTerminal(t, s2, jb2.ID); fin.State != StateDone {
		t.Fatalf("post-recovery job: %+v", fin)
	}
}

// TestJournalFaultsDegradeGracefully injects checkpoint-write failures
// mid-run: the runner sees the error from Save, but jobs already
// admitted still reach terminal states, and the failures are counted.
func TestJournalFaultsDegradeGracefully(t *testing.T) {
	var failCkpts bool
	s, err := Open(context.Background(), Options{
		Dir: t.TempDir(),
		WriteFault: func(recType, id string) error {
			if failCkpts && recType == recCkpt {
				return errors.New("injected ckpt failure")
			}
			return nil
		},
	}, func(ctx context.Context, kind string, payload []byte, ck *Checkpoint) ([]byte, error) {
		if err := ck.Save([]byte("1")); err != nil {
			// Degrade: keep computing without durable checkpoints.
			_ = err
		}
		return []byte("done"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	failCkpts = true
	jb, err := s.Submit(context.Background(), "w", nil)
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitTerminal(t, s, jb.ID); fin.State != StateDone {
		t.Fatalf("job under ckpt faults: %+v", fin)
	}
	if st := s.Stats(); st.WriteFailures == 0 {
		t.Fatalf("write failures not counted: %+v", st)
	}
}
