package jobs

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual clock for retention and breaker
// tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// echoRunner returns its payload reversed — enough to verify result
// plumbing end to end.
func echoRunner(ctx context.Context, kind string, payload []byte, ck *Checkpoint) ([]byte, error) {
	out := make([]byte, len(payload))
	for i, b := range payload {
		out[len(payload)-1-i] = b
	}
	return out, nil
}

func waitTerminal(t *testing.T, s *Store, id string) Job {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	jb, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("waiting for %s: %v", id, err)
	}
	return jb
}

func TestSubmitRunFetch(t *testing.T) {
	s, err := Open(context.Background(), Options{Dir: t.TempDir()}, echoRunner)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	jb, err := s.Submit(context.Background(), "echo", []byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	if jb.ID == "" || jb.State != StateQueued {
		t.Fatalf("submit snapshot: %+v", jb)
	}
	fin := waitTerminal(t, s, jb.ID)
	if fin.State != StateDone || fin.Attempts != 1 {
		t.Fatalf("terminal snapshot: %+v", fin)
	}
	res, _, err := s.Result(jb.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "cba" {
		t.Fatalf("result %q, want %q", res, "cba")
	}
	if _, _, err := s.Result("j-999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown id: %v", err)
	}
}

func TestResultBeforeTerminal(t *testing.T) {
	release := make(chan struct{})
	s, err := Open(context.Background(), Options{}, func(ctx context.Context, kind string, payload []byte, ck *Checkpoint) ([]byte, error) {
		<-release
		return payload, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	jb, err := s.Submit(context.Background(), "slow", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Result(jb.ID); !errors.Is(err, ErrNotTerminal) {
		t.Fatalf("in-flight result fetch: %v, want ErrNotTerminal", err)
	}
	close(release)
	waitTerminal(t, s, jb.ID)
}

func TestCancelQueuedAndRunning(t *testing.T) {
	started := make(chan string, 8)
	s, err := Open(context.Background(), Options{Workers: 1}, func(ctx context.Context, kind string, payload []byte, ck *Checkpoint) ([]byte, error) {
		started <- kind
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	running, err := s.Submit(context.Background(), "running", nil)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := s.Submit(context.Background(), "queued", nil)
	if err != nil {
		t.Fatal(err)
	}
	// The queued job cancels instantly, with the single worker still busy.
	if jb, err := s.Cancel(queued.ID); err != nil || jb.State != StateCancelled {
		t.Fatalf("cancel queued: %+v, %v", jb, err)
	}
	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	if jb := waitTerminal(t, s, running.ID); jb.State != StateCancelled {
		t.Fatalf("cancel running: %+v", jb)
	}
}

func TestPanicQuarantineAndBreaker(t *testing.T) {
	clock := newFakeClock()
	var boom atomic.Bool
	boom.Store(true)
	s, err := Open(context.Background(), Options{
		Workers:          1,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Minute,
		Clock:            clock.Now,
	}, func(ctx context.Context, kind string, payload []byte, ck *Checkpoint) ([]byte, error) {
		if boom.Load() {
			panic("kaboom")
		}
		return []byte("ok"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i := 0; i < 3; i++ {
		jb, err := s.Submit(context.Background(), "boom", nil)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		fin := waitTerminal(t, s, jb.ID)
		if fin.State != StateFailed || !strings.Contains(fin.Error, "panicked") {
			t.Fatalf("panic job %d: %+v", i, fin)
		}
	}
	// Threshold reached: the breaker sheds with a retry hint.
	_, err = s.Submit(context.Background(), "boom", nil)
	var open *BreakerOpenError
	if !errors.As(err, &open) {
		t.Fatalf("submit under open breaker: %v", err)
	}
	if open.RetryAfter <= 0 || open.RetryAfter > time.Minute {
		t.Fatalf("retry hint %v", open.RetryAfter)
	}
	if !s.Stats().BreakerOpen {
		t.Fatal("stats do not report the open breaker")
	}
	// Cooldown passes: half-open admits one; success resets the count.
	clock.Advance(2 * time.Minute)
	boom.Store(false)
	jb, err := s.Submit(context.Background(), "ok", nil)
	if err != nil {
		t.Fatalf("submit after cooldown: %v", err)
	}
	if fin := waitTerminal(t, s, jb.ID); fin.State != StateDone {
		t.Fatalf("half-open probe: %+v", fin)
	}
	if s.Stats().BreakerOpen {
		t.Fatal("breaker still open after a success")
	}
}

func TestRetentionGC(t *testing.T) {
	clock := newFakeClock()
	s, err := Open(context.Background(), Options{
		Dir:       t.TempDir(),
		Retention: time.Hour,
		Clock:     clock.Now,
	}, echoRunner)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	jb, err := s.Submit(context.Background(), "echo", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, jb.ID)
	s.gcOnce()
	if _, err := s.Get(jb.ID); err != nil {
		t.Fatalf("job GC'd before retention: %v", err)
	}
	clock.Advance(2 * time.Hour)
	s.gcOnce()
	if _, err := s.Get(jb.ID); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("job survived retention: %v", err)
	}
	if got := len(s.List()); got != 0 {
		t.Fatalf("%d jobs listed after GC", got)
	}
}

func TestSubmitFailsWhenJournalFails(t *testing.T) {
	var failing atomic.Bool
	s, err := Open(context.Background(), Options{
		Dir: t.TempDir(),
		WriteFault: func(recType, id string) error {
			if failing.Load() && recType == recSubmit {
				return errors.New("disk on fire")
			}
			return nil
		},
	}, echoRunner)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	failing.Store(true)
	if _, err := s.Submit(context.Background(), "echo", nil); err == nil {
		t.Fatal("submit acknowledged without a durable record")
	}
	failing.Store(false)
	jb, err := s.Submit(context.Background(), "echo", []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	// The failed admission must not burn an ID: recovery renumbers
	// cleanly from the last durable sequence.
	if jb.ID != "j-1" {
		t.Fatalf("first durable job got ID %s", jb.ID)
	}
	waitTerminal(t, s, jb.ID)
}

func TestListOrderAndStats(t *testing.T) {
	release := make(chan struct{})
	s, err := Open(context.Background(), Options{Workers: 1}, func(ctx context.Context, kind string, payload []byte, ck *Checkpoint) ([]byte, error) {
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var ids []string
	for i := 0; i < 5; i++ {
		jb, err := s.Submit(context.Background(), "k"+strconv.Itoa(i), nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, jb.ID)
	}
	ls := s.List()
	if len(ls) != 5 {
		t.Fatalf("listed %d jobs", len(ls))
	}
	for i, jb := range ls {
		if jb.ID != ids[i] {
			t.Fatalf("list out of submission order: %v", ls)
		}
	}
	st := s.Stats()
	if st.Jobs != 5 || st.Queued+st.Running != 5 {
		t.Fatalf("stats %+v", st)
	}
	close(release)
	for _, id := range ids {
		waitTerminal(t, s, id)
	}
}

func TestWaitRespectsContext(t *testing.T) {
	s, err := Open(context.Background(), Options{Workers: 1}, func(ctx context.Context, kind string, payload []byte, ck *Checkpoint) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	jb, err := s.Submit(context.Background(), "stuck", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.Wait(ctx, jb.ID); err != context.DeadlineExceeded {
		t.Fatalf("wait on stuck job: %v", err)
	}
}

// BenchmarkSubmitReplay measures the journal round trip: N durable
// submissions, then a full replay-and-compact reopen — the two paths a
// restart exercises.
func BenchmarkSubmitReplay(b *testing.B) {
	dir := b.TempDir()
	hold := make(chan struct{})
	defer close(hold)
	blocked := func(ctx context.Context, kind string, payload []byte, ck *Checkpoint) ([]byte, error) {
		select {
		case <-hold:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	}
	s, err := Open(context.Background(), Options{Dir: dir, Workers: 1}, blocked)
	if err != nil {
		b.Fatal(err)
	}
	payload := []byte(`{"op":"select","app":"vopd"}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Submit(context.Background(), "request", payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	s.Close()
	start := time.Now()
	s2, err := Open(context.Background(), Options{Dir: dir, Workers: 1}, blocked)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "replays/s")
	if got := len(s2.List()); got != b.N {
		b.Fatalf("replayed %d jobs, want %d", got, b.N)
	}
	s2.Close()
}
