package jobs

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"sunmap/internal/obs"
)

// fsyncSeconds distributes the write+fsync latency of journal appends —
// the durability tax every acknowledged submission and lifecycle
// transition pays, and the first suspect when job throughput drops.
var fsyncSeconds = obs.Default.Histogram("sunmap_journal_fsync_seconds", "journal append write+fsync latency", nil)

// The journal is the store's only durable state: an append-only file of
// length- and checksum-framed JSON records, fsync'd per append. Replay
// reads frames until the first one that fails its length or CRC check —
// the torn tail a crash leaves behind — truncates the file there, and
// hands the clean prefix to the store to rebuild from. Compaction
// rewrites the file with one submit + latest checkpoint + terminal
// record per live job, atomically, so the journal stays proportional to
// the job population rather than the append history.
//
// Frame layout: 4-byte big-endian payload length, 4-byte IEEE CRC-32 of
// the payload, payload JSON. The length is bounded (maxFrame) so a
// corrupt length field cannot provoke a giant allocation.

const maxFrame = 64 << 20

// recType enumerates journal record types.
const (
	recSubmit = "submit" // job created: ID, Kind, Payload
	recState  = "state"  // lifecycle transition: ID, State (+ Error for failed)
	recCkpt   = "ckpt"   // resume point: ID, Ckpt
	recResult = "result" // successful completion: ID, Result
	recGC     = "gc"     // retention expiry: ID (job forgotten)
)

// record is one journal entry. At carries the store clock's unix
// nanoseconds at append time — replay uses it to restart retention
// timers, never for ordering (file order is the order).
// Payload, Ckpt and Result are opaque caller bytes (encoding/json
// base64s them), so the journal never assumes job payloads are JSON.
type record struct {
	Type    string `json:"type"`
	ID      string `json:"id"`
	Kind    string `json:"kind,omitempty"`
	Req     string `json:"req,omitempty"` // request-correlation id (submits)
	Payload []byte `json:"payload,omitempty"`
	State   State  `json:"state,omitempty"`
	Error   string `json:"error,omitempty"`
	Ckpt    []byte `json:"ckpt,omitempty"`
	Result  []byte `json:"result,omitempty"`
	At      int64  `json:"at,omitempty"`
}

// journal owns the open journal file. All methods are called with the
// store's mutex held, so the file sees appends in a single total order.
type journal struct {
	path string
	f    *os.File
	// fault, when set, is the chaos hook: it runs before every append
	// and its error is returned as the append's failure.
	fault func(rec record) error
	// rec, when set, receives one StageJournalAppend span per append
	// (nil-safe; mirrors Options.Recorder).
	rec *obs.Recorder
}

func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: opening journal: %w", err)
	}
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, err
	}
	return &journal{path: path, f: f}, nil
}

// replay reads every intact record, truncates any torn tail, and seeks
// to the end for appending.
func (j *journal) replay() ([]record, error) {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("jobs: replaying journal: %w", err)
	}
	var (
		recs []record
		off  int64
		hdr  [8]byte
	)
	for {
		if _, err := io.ReadFull(j.f, hdr[:]); err != nil {
			break // clean EOF or torn header: both end the intact prefix
		}
		n := binary.BigEndian.Uint32(hdr[:4])
		sum := binary.BigEndian.Uint32(hdr[4:])
		if n == 0 || n > maxFrame {
			break
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(j.f, buf); err != nil {
			break
		}
		if crc32.ChecksumIEEE(buf) != sum {
			break
		}
		var rec record
		if err := json.Unmarshal(buf, &rec); err != nil {
			break
		}
		recs = append(recs, rec)
		off += int64(8 + n)
	}
	if err := j.f.Truncate(off); err != nil {
		return nil, fmt.Errorf("jobs: truncating torn journal tail: %w", err)
	}
	if _, err := j.f.Seek(off, io.SeekStart); err != nil {
		return nil, fmt.Errorf("jobs: replaying journal: %w", err)
	}
	return recs, nil
}

// append frames, writes and fsyncs one record. An error means the
// record may not be durable; callers decide whether that fails the
// operation (submits) or degrades it (mid-run progress records).
func (j *journal) append(rec record) error {
	if j == nil {
		return nil
	}
	if j.fault != nil {
		if err := j.fault(rec); err != nil {
			return fmt.Errorf("jobs: journal write: %w", err)
		}
	}
	buf, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: encoding journal record: %w", err)
	}
	frame := make([]byte, 8+len(buf))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(buf)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(buf))
	copy(frame[8:], buf)
	start := obs.Now()
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("jobs: journal write: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("jobs: journal sync: %w", err)
	}
	d := obs.Since(start)
	fsyncSeconds.ObserveSeconds(int64(d))
	j.rec.Observe(obs.StageJournalAppend, d)
	return nil
}

// rewrite atomically replaces the journal with the given records (a
// compaction): write to a temp file in the same directory, fsync,
// rename over the old path, and reopen for appending.
func (j *journal) rewrite(recs []record) error {
	tmp, err := os.CreateTemp(filepath.Dir(j.path), ".journal-*")
	if err != nil {
		return fmt.Errorf("jobs: compacting journal: %w", err)
	}
	defer os.Remove(tmp.Name())
	for _, rec := range recs {
		buf, err := json.Marshal(rec)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("jobs: compacting journal: %w", err)
		}
		frame := make([]byte, 8+len(buf))
		binary.BigEndian.PutUint32(frame[:4], uint32(len(buf)))
		binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(buf))
		copy(frame[8:], buf)
		if _, err := tmp.Write(frame); err != nil {
			tmp.Close()
			return fmt.Errorf("jobs: compacting journal: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("jobs: compacting journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("jobs: compacting journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("jobs: compacting journal: %w", err)
	}
	f, err := os.OpenFile(j.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: reopening compacted journal: %w", err)
	}
	if err := lockFile(f); err != nil {
		f.Close()
		return err
	}
	j.f.Close()
	j.f = f
	return nil
}

func (j *journal) close() error {
	if j == nil {
		return nil
	}
	return j.f.Close()
}
