//go:build unix

package jobs

import (
	"fmt"
	"os"
	"syscall"
)

// lockFile takes an exclusive, non-blocking advisory lock on the open
// journal. Two stores over one directory would silently destroy each
// other's appends (compaction renames the file out from under the
// other's handle), so the second opener must fail fast instead.
func lockFile(f *os.File) error {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		return fmt.Errorf("jobs: journal %s is locked by another process: %w", f.Name(), err)
	}
	return nil
}
