//go:build unix

package jobs

import (
	"context"
	"strings"
	"testing"
)

// Two stores over one directory is the one corruption the journal's
// frame CRCs cannot catch: the second opener's compaction renames the
// file out from under the first's handle, orphaning every append the
// live store makes afterward. The flock taken at open must turn that
// into a fast, explicit failure.
func TestSecondOpenSameDirFails(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(context.Background(), Options{Dir: dir}, echoRunner)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()

	if _, err := Open(context.Background(), Options{Dir: dir}, echoRunner); err == nil {
		t.Fatal("second Open on a live store's dir succeeded; want lock error")
	} else if !strings.Contains(err.Error(), "locked") {
		t.Fatalf("second Open error = %v, want a journal-lock error", err)
	}

	// Releasing the store releases the lock: the dir is reusable.
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(context.Background(), Options{Dir: dir}, echoRunner)
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	s2.Close()
}
