//go:build !unix

package jobs

import "os"

// lockFile is a no-op where flock is unavailable; single-process use
// is unaffected, concurrent stores over one directory are unprotected.
func lockFile(*os.File) error { return nil }
