package floorplan

import (
	"math"
	"testing"

	"sunmap/internal/area"
	"sunmap/internal/graph"
	"sunmap/internal/tech"
	"sunmap/internal/topology"
)

func mustTopo(t topology.Topology, err error) topology.Topology {
	if err != nil {
		panic(err)
	}
	return t
}

func squareCores(n int, areaMM2 float64) []graph.Core {
	cores := make([]graph.Core, n)
	for i := range cores {
		cores[i] = graph.Core{Name: string(rune('a' + i)), AreaMM2: areaMM2}
	}
	return cores
}

func identity(n int) []int {
	a := make([]int, n)
	for i := range a {
		a[i] = i
	}
	return a
}

func switchAreas(topo topology.Topology, assign []int) []float64 {
	tc := tech.Tech100nm()
	cfgs := area.SwitchConfigs(topo, assign, tc)
	out := make([]float64, len(cfgs))
	for i, c := range cfgs {
		out[i] = area.SwitchAreaMM2(c, tc)
	}
	return out
}

// checkNoOverlap verifies no two placed blocks overlap.
func checkNoOverlap(t *testing.T, res *Result) {
	t.Helper()
	for i := 0; i < len(res.Blocks); i++ {
		for j := i + 1; j < len(res.Blocks); j++ {
			a, b := res.Blocks[i], res.Blocks[j]
			overlapX := a.X < b.X+b.W-1e-9 && b.X < a.X+a.W-1e-9
			overlapY := a.Y < b.Y+b.H-1e-9 && b.Y < a.Y+a.H-1e-9
			if overlapX && overlapY {
				t.Errorf("blocks %s and %s overlap: %+v vs %+v", a.Name, b.Name, a, b)
			}
		}
	}
}

// checkInsideChip verifies every block lies in the chip bounding box.
func checkInsideChip(t *testing.T, res *Result) {
	t.Helper()
	for _, b := range res.Blocks {
		if b.X < -1e-9 || b.Y < -1e-9 || b.X+b.W > res.ChipWMM+1e-9 || b.Y+b.H > res.ChipHMM+1e-9 {
			t.Errorf("block %s outside chip: %+v (chip %g x %g)", b.Name, b, res.ChipWMM, res.ChipHMM)
		}
	}
}

func TestMeshFloorplanBasics(t *testing.T) {
	topo := mustTopo(topology.NewMesh(3, 4))
	cores := squareCores(12, 4.0)
	assign := identity(12)
	res, err := Floorplan(topo, assign, cores, switchAreas(topo, assign), Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkNoOverlap(t, res)
	checkInsideChip(t, res)
	// Chip must hold at least the summed block area.
	var blockArea float64
	for _, b := range res.Blocks {
		blockArea += b.W * b.H
	}
	if res.ChipAreaMM2() < blockArea-1e-6 {
		t.Errorf("chip area %g < total block area %g", res.ChipAreaMM2(), blockArea)
	}
	// With 12 4mm² cores plus switches, a sane floorplan lands between
	// 48 (core lower bound) and ~120 mm².
	if a := res.ChipAreaMM2(); a < 48 || a > 120 {
		t.Errorf("chip area = %g mm², want in [48, 120]", a)
	}
	// All link lengths positive and roughly one pitch (~2 mm) for a mesh.
	for id, l := range res.LinkLengthsMM {
		if l <= 0 || l > 10 {
			t.Errorf("link %d length = %g mm, want in (0, 10)", id, l)
		}
	}
	if len(res.AccessLengthsMM) != 12 {
		t.Fatalf("%d access lengths, want 12", len(res.AccessLengthsMM))
	}
	for i, l := range res.AccessLengthsMM {
		if l < 0 || l > 10 {
			t.Errorf("access %d length = %g", i, l)
		}
	}
}

func TestSoftBlocksKeepAreaAndAspect(t *testing.T) {
	topo := mustTopo(topology.NewMesh(2, 2))
	cores := []graph.Core{
		{Name: "a", AreaMM2: 4, Soft: true},
		{Name: "b", AreaMM2: 9, Soft: true, MinAspect: 0.25, MaxAspect: 4},
		{Name: "c", AreaMM2: 1},
		{Name: "d", AreaMM2: 2, Soft: true},
	}
	assign := identity(4)
	res, err := Floorplan(topo, assign, cores, switchAreas(topo, assign), Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkNoOverlap(t, res)
	for i, c := range cores {
		b := res.Blocks[res.CoreBlocks[i]]
		if got := b.W * b.H; math.Abs(got-c.AreaMM2) > 1e-6 {
			t.Errorf("core %s area = %g, want %g", c.Name, got, c.AreaMM2)
		}
		if c.Soft {
			lo, hi := c.AspectBounds()
			ar := b.W / b.H
			if ar < lo-1e-6 || ar > hi+1e-6 {
				t.Errorf("core %s aspect = %g, want in [%g,%g]", c.Name, ar, lo, hi)
			}
		}
	}
}

func TestSoftBlocksShrinkChip(t *testing.T) {
	// A row of mismatched hard blocks wastes slot space; letting them
	// flex must not increase chip area.
	topo := mustTopo(topology.NewMesh(2, 2))
	hard := []graph.Core{
		{Name: "a", AreaMM2: 8}, {Name: "b", AreaMM2: 2},
		{Name: "c", AreaMM2: 8}, {Name: "d", AreaMM2: 2},
	}
	soft := make([]graph.Core, len(hard))
	copy(soft, hard)
	for i := range soft {
		soft[i].Soft = true
		soft[i].MinAspect = 0.25
		soft[i].MaxAspect = 4
	}
	assign := identity(4)
	sa := switchAreas(topo, assign)
	rh, err := Floorplan(topo, assign, hard, sa, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Floorplan(topo, assign, soft, sa, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rs.ChipAreaMM2() > rh.ChipAreaMM2()+1e-6 {
		t.Errorf("soft plan %g mm² worse than hard plan %g mm²", rs.ChipAreaMM2(), rh.ChipAreaMM2())
	}
}

func TestButterflyFloorplanLongerLinks(t *testing.T) {
	// Section 6.1: butterfly links come out ~1.5x longer than mesh links
	// because cores sit in columns flanking the switch stages.
	meshT := mustTopo(topology.NewMesh(3, 4))
	bflyT := mustTopo(topology.NewButterfly(4, 2))
	cores := squareCores(12, 4.0)
	ma := identity(12)
	meshRes, err := Floorplan(meshT, ma, cores, switchAreas(meshT, ma), Options{})
	if err != nil {
		t.Fatal(err)
	}
	bflyRes, err := Floorplan(bflyT, ma, cores, switchAreas(bflyT, ma), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bflyRes.AvgLinkLengthMM() <= meshRes.AvgLinkLengthMM() {
		t.Errorf("butterfly avg link %g mm <= mesh %g mm",
			bflyRes.AvgLinkLengthMM(), meshRes.AvgLinkLengthMM())
	}
	checkNoOverlap(t, bflyRes)
	checkInsideChip(t, bflyRes)
}

func TestPartialOccupancyHypercube(t *testing.T) {
	// 12 cores on a 16-node hypercube: empty terminals leave switches
	// without core blocks; plan must still be valid.
	topo := mustTopo(topology.NewHypercube(4))
	cores := squareCores(12, 3.0)
	assign := identity(12)
	res, err := Floorplan(topo, assign, cores, switchAreas(topo, assign), Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkNoOverlap(t, res)
	checkInsideChip(t, res)
	if len(res.RouterBlocks) != 16 {
		t.Errorf("%d router blocks, want 16", len(res.RouterBlocks))
	}
}

func TestFloorplanErrors(t *testing.T) {
	topo := mustTopo(topology.NewMesh(2, 2))
	cores := squareCores(4, 1)
	if _, err := Floorplan(topo, identity(3), cores, make([]float64, 4), Options{}); err == nil {
		t.Error("mismatched assignment accepted")
	}
	if _, err := Floorplan(topo, identity(4), cores, make([]float64, 3), Options{}); err == nil {
		t.Error("mismatched switch areas accepted")
	}
	bad := identity(4)
	bad[2] = 99
	if _, err := Floorplan(topo, bad, cores, make([]float64, 4), Options{}); err == nil {
		t.Error("invalid terminal accepted")
	}
}

func TestTorusLinksLongerThanMesh(t *testing.T) {
	// Wrap-around channels span the die, so average torus link length
	// must exceed the mesh's on the same shape.
	meshT := mustTopo(topology.NewMesh(3, 4))
	torusT := mustTopo(topology.NewTorus(3, 4))
	cores := squareCores(12, 4.0)
	a := identity(12)
	mr, err := Floorplan(meshT, a, cores, switchAreas(meshT, a), Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Floorplan(torusT, a, cores, switchAreas(torusT, a), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.AvgLinkLengthMM() <= mr.AvgLinkLengthMM() {
		t.Errorf("torus avg link %g <= mesh %g", tr.AvgLinkLengthMM(), mr.AvgLinkLengthMM())
	}
}

func TestEstimateTracksExactFloorplan(t *testing.T) {
	// The fast estimator should agree with the LP floorplan within a
	// factor of ~2 on average link length for a regular mesh.
	topo := mustTopo(topology.NewMesh(3, 4))
	cores := squareCores(12, 4.0)
	assign := identity(12)
	exact, err := Floorplan(topo, assign, cores, switchAreas(topo, assign), Options{})
	if err != nil {
		t.Fatal(err)
	}
	est, access := EstimateLinkLengthsMM(topo, assign, cores, Options{})
	if len(est) != len(exact.LinkLengthsMM) {
		t.Fatalf("estimator returned %d links, want %d", len(est), len(exact.LinkLengthsMM))
	}
	var estAvg, exAvg float64
	for i := range est {
		estAvg += est[i]
		exAvg += exact.LinkLengthsMM[i]
	}
	estAvg /= float64(len(est))
	exAvg /= float64(len(est))
	if ratio := estAvg / exAvg; ratio < 0.5 || ratio > 2.0 {
		t.Errorf("estimate/exact avg link ratio = %g, want within [0.5, 2]", ratio)
	}
	for i, l := range access {
		if l <= 0 {
			t.Errorf("estimated access length %d = %g", i, l)
		}
	}
}

func TestEstimatePitch(t *testing.T) {
	if p := EstimatePitchMM(nil, Options{}); p != 1 {
		t.Errorf("empty pitch = %g, want 1", p)
	}
	p := EstimatePitchMM(squareCores(4, 4), Options{})
	if p < 2 || p > 2.5 {
		t.Errorf("pitch for 4mm² cores = %g, want ~2.1", p)
	}
}

func TestAspectRatioAndChipArea(t *testing.T) {
	r := &Result{ChipWMM: 8, ChipHMM: 2}
	if got := r.AspectRatio(); got != 4 {
		t.Errorf("AspectRatio = %g, want 4", got)
	}
	r2 := &Result{ChipWMM: 2, ChipHMM: 8}
	if got := r2.AspectRatio(); got != 4 {
		t.Errorf("AspectRatio = %g, want 4 (orientation-free)", got)
	}
	if got := r.ChipAreaMM2(); got != 16 {
		t.Errorf("ChipAreaMM2 = %g, want 16", got)
	}
	empty := &Result{}
	if !math.IsInf(empty.AspectRatio(), 1) {
		t.Error("degenerate chip aspect not infinite")
	}
}
