// Package floorplan implements SUNMAP's LP-based floorplanner (Section 5
// of the paper, after Kim & Kim [20] and Sherwani [21]). The mapping fixes
// the relative positions of cores and switches (the topology's placement
// template); the floorplanner computes exact positions and the sizes of
// soft blocks, from which it derives chip area, aspect ratio and the link
// lengths that feed the power model.
//
// The model is a row/column slot LP: blocks are binned into columns and
// rows by their relative coordinates, column widths and row heights become
// LP variables, soft-core sizing uses tangent linearization of the area
// hyperbola h·w >= A, and the objective minimizes the chip half-perimeter.
// After solving, soft heights are re-exactified (h = A/w) so block areas
// hold exactly rather than to linearization tolerance.
package floorplan

import (
	"fmt"
	"math"
	"sort"

	"sunmap/internal/graph"
	"sunmap/internal/lp"
	"sunmap/internal/topology"
)

// Block is one placed rectangle of the floorplan.
type Block struct {
	// Name identifies the block ("core:idct" or "router:5").
	Name string
	// X, Y are the lower-left corner in mm; W, H the dimensions in mm.
	X, Y, W, H float64
	// Soft marks blocks whose shape was chosen by the floorplanner.
	Soft bool
}

// CenterX and CenterY return the block centre.
func (b Block) CenterX() float64 { return b.X + b.W/2 }

// CenterY returns the vertical centre of the block.
func (b Block) CenterY() float64 { return b.Y + b.H/2 }

// Result is a computed floorplan.
type Result struct {
	// Blocks holds every placed rectangle.
	Blocks []Block
	// CoreBlocks[i] indexes the block of core i; RouterBlocks[r] the
	// block of router r.
	CoreBlocks   []int
	RouterBlocks []int
	// ChipWMM and ChipHMM are the bounding dimensions.
	ChipWMM, ChipHMM float64
	// LinkLengthsMM holds per-link Manhattan centre distances, indexed by
	// link ID.
	LinkLengthsMM []float64
	// AccessLengthsMM holds, per core, the Manhattan distance from the
	// core block to its inject router block (the network-interface link).
	AccessLengthsMM []float64
}

// ChipAreaMM2 returns the bounding-box area.
func (r *Result) ChipAreaMM2() float64 { return r.ChipWMM * r.ChipHMM }

// AspectRatio returns max(W,H)/min(W,H), >= 1.
func (r *Result) AspectRatio() float64 {
	if r.ChipWMM <= 0 || r.ChipHMM <= 0 {
		return math.Inf(1)
	}
	ar := r.ChipWMM / r.ChipHMM
	if ar < 1 {
		ar = 1 / ar
	}
	return ar
}

// AvgLinkLengthMM returns the mean router-to-router link length.
func (r *Result) AvgLinkLengthMM() float64 {
	if len(r.LinkLengthsMM) == 0 {
		return 0
	}
	var s float64
	for _, l := range r.LinkLengthsMM {
		s += l
	}
	return s / float64(len(r.LinkLengthsMM))
}

// Options tunes the floorplanner.
type Options struct {
	// SpacingMM is the halo added around every block (default 0.1 mm).
	SpacingMM float64
	// Tangents is the number of tangent lines linearizing each soft
	// block's area curve (default 5).
	Tangents int
}

func (o Options) withDefaults() Options {
	if o.SpacingMM <= 0 {
		o.SpacingMM = 0.1
	}
	if o.Tangents < 2 {
		o.Tangents = 5
	}
	return o
}

// Planner holds the floorplanner's reusable workspace: the LP solver's
// tableau arena, the constraint-coefficient arena, the relative-block and
// binning scratch, and a cache of block-name strings. One Planner serves
// one goroutine; the mapper keeps one per Scratch so its exact
// evaluations stop allocating LP state. Only the returned Result (which
// escapes into mapping results) is freshly allocated per call.
type Planner struct {
	lp     lp.Solver
	blocks []relBlock

	routerNames []string
	coreNames   map[string]string

	colVals, rowVals []float64
	binScratch       []float64
	colOf, rowOf     []int
	softIdx          []int
	hardW, hardH     []float64

	objective   []float64
	coeffArena  []float64
	coeffOff    int
	constraints []lp.Constraint

	slotCount, slotStart, slotNext []int
	slotMembers                    []int

	wOf, hOf               []float64
	colW, rowH, colX, rowY []float64
	stackUsed              []float64
}

// NewPlanner returns a Planner with empty workspace; buffers grow on
// first use.
func NewPlanner() *Planner { return &Planner{coreNames: make(map[string]string)} }

// Floorplan places the cores (via assign: core index -> terminal) and the
// switches of topo with a throwaway Planner. switchAreasMM2 gives the area
// of each router's switch (index = router ID); switches are hard square
// blocks. Callers floorplanning many candidates should hold a Planner.
func Floorplan(topo topology.Topology, assign []int, cores []graph.Core, switchAreasMM2 []float64, opts Options) (*Result, error) {
	return NewPlanner().Floorplan(topo, assign, cores, switchAreasMM2, opts)
}

// routerName returns the cached "router:N" string.
func (pl *Planner) routerName(r int) string {
	for len(pl.routerNames) <= r {
		pl.routerNames = append(pl.routerNames, fmt.Sprintf("router:%d", len(pl.routerNames)))
	}
	return pl.routerNames[r]
}

// coreName returns the cached "core:<name>" string.
func (pl *Planner) coreName(name string) string {
	if s, ok := pl.coreNames[name]; ok {
		return s
	}
	s := "core:" + name
	pl.coreNames[name] = s
	return s
}

// coeff carves one zeroed coefficient row of width n out of the arena.
// ensureCoeffs must have reserved enough rows first; rows stay valid for
// the rest of the call because the arena never regrows mid-build.
func (pl *Planner) coeff(n int) []float64 {
	row := pl.coeffArena[pl.coeffOff : pl.coeffOff+n]
	pl.coeffOff += n
	return row
}

// ensureCoeffs sizes the coefficient arena for at most rows rows of width
// n and zeroes it.
func (pl *Planner) ensureCoeffs(rows, n int) {
	need := rows * n
	if cap(pl.coeffArena) < need {
		pl.coeffArena = make([]float64, need)
	}
	pl.coeffArena = pl.coeffArena[:need]
	for i := range pl.coeffArena {
		pl.coeffArena[i] = 0
	}
	pl.coeffOff = 0
}

// Floorplan is the workspace-reusing form of the package-level Floorplan.
func (pl *Planner) Floorplan(topo topology.Topology, assign []int, cores []graph.Core, switchAreasMM2 []float64, opts Options) (*Result, error) {
	if len(assign) != len(cores) {
		return nil, fmt.Errorf("floorplan: %d assignments for %d cores", len(assign), len(cores))
	}
	if len(switchAreasMM2) != topo.NumRouters() {
		return nil, fmt.Errorf("floorplan: %d switch areas for %d routers", len(switchAreasMM2), topo.NumRouters())
	}
	opts = opts.withDefaults()

	// Collect relative positions: routers at their template positions,
	// cores at their terminal positions.
	blocks := pl.blocks[:0]
	for r := 0; r < topo.NumRouters(); r++ {
		x, y := topo.Position(r)
		blocks = append(blocks, relBlock{
			name: pl.routerName(r),
			rx:   x, ry: y,
			area: switchAreasMM2[r],
			core: -1, router: r,
		})
	}
	for i, c := range cores {
		term := assign[i]
		if term < 0 || term >= topo.NumTerminals() {
			pl.blocks = blocks
			return nil, fmt.Errorf("floorplan: core %d assigned to invalid terminal %d", i, term)
		}
		x, y := topo.TerminalPosition(term)
		lo, hi := c.AspectBounds()
		blocks = append(blocks, relBlock{
			name: pl.coreName(c.Name),
			rx:   x, ry: y,
			area: c.AreaMM2,
			soft: c.Soft,
			arLo: lo, arHi: hi,
			core: i, router: -1,
		})
	}
	pl.blocks = blocks

	// Bin relative coordinates into columns and rows.
	cols := pl.binCoords(&pl.colVals, blocks, func(b relBlock) float64 { return b.rx })
	rows := pl.binCoords(&pl.rowVals, blocks, func(b relBlock) float64 { return b.ry })
	pl.colOf = resizeInts(pl.colOf, len(blocks))
	pl.rowOf = resizeInts(pl.rowOf, len(blocks))
	colOf, rowOf := pl.colOf, pl.rowOf
	for i, b := range blocks {
		colOf[i] = indexOf(cols, b.rx)
		rowOf[i] = indexOf(rows, b.ry)
	}

	// LP variables: [0, nSoft) widths w_i, [nSoft, 2nSoft) heights h_i,
	// then column widths, then row heights.
	pl.softIdx = resizeInts(pl.softIdx, len(blocks)) // block -> soft ordinal or -1
	softIdx := pl.softIdx
	nSoft := 0
	for i, b := range blocks {
		if b.soft && b.area > 0 {
			softIdx[i] = nSoft
			nSoft++
		} else {
			softIdx[i] = -1
		}
	}
	colVar := func(c int) int { return 2*nSoft + c }
	rowVar := func(r int) int { return 2*nSoft + len(cols) + r }
	numVars := 2*nSoft + len(cols) + len(rows)

	pl.objective = resizeFloats(pl.objective, numVars)
	p := lp.Problem{NumVars: numVars, Objective: pl.objective, Constraints: pl.constraints[:0]}
	for c := range cols {
		p.Objective[colVar(c)] = 1
	}
	for r := range rows {
		p.Objective[rowVar(r)] = 1
	}

	// Upper bound on constraint rows: the soft-block rows, one column row
	// per block and at most one slot row per block.
	pl.ensureCoeffs(nSoft*(2+opts.Tangents)+2*len(blocks), numVars)

	sp := opts.SpacingMM
	// Hard block dimensions (squares).
	pl.hardW = resizeFloats(pl.hardW, len(blocks))
	pl.hardH = resizeFloats(pl.hardH, len(blocks))
	hardW, hardH := pl.hardW, pl.hardH
	for i, b := range blocks {
		if softIdx[i] == -1 {
			side := math.Sqrt(math.Max(b.area, 0))
			hardW[i] = side
			hardH[i] = side
		}
	}

	// Soft block constraints: aspect-ratio width bounds and area tangents.
	for i, b := range blocks {
		s := softIdx[i]
		if s == -1 {
			continue
		}
		wv, hv := s, nSoft+s
		wMin := math.Sqrt(b.area * b.arLo)
		wMax := math.Sqrt(b.area * b.arHi)
		cw := pl.coeff(numVars)
		cw[wv] = 1
		p.AddConstraint(cw, lp.GE, wMin)
		cw2 := pl.coeff(numVars)
		cw2[wv] = 1
		p.AddConstraint(cw2, lp.LE, wMax)
		// Tangents of h = A/w at sample widths: h >= 2A/w0 - (A/w0^2) w.
		for k := 0; k < opts.Tangents; k++ {
			w0 := wMin + (wMax-wMin)*float64(k)/float64(opts.Tangents-1)
			if w0 <= 0 {
				continue
			}
			ct := pl.coeff(numVars)
			ct[hv] = 1
			ct[wv] = b.area / (w0 * w0)
			p.AddConstraint(ct, lp.GE, 2*b.area/w0)
		}
	}

	// Column width >= block width (+halo) for every block in the column.
	for i := range blocks {
		c := colOf[i]
		cw := pl.coeff(numVars)
		cw[colVar(c)] = 1
		if s := softIdx[i]; s != -1 {
			cw[s] = -1
			p.AddConstraint(cw, lp.GE, sp)
		} else {
			p.AddConstraint(cw, lp.GE, hardW[i]+sp)
		}
	}
	// Row height >= stacked heights of each slot (col,row). Slots are
	// bucketed densely by slot ID = row*len(cols)+col; iterating rows then
	// columns visits non-empty slots in exactly the (row, col) order the
	// original map-and-sort version produced, with members in block order.
	numSlots := len(cols) * len(rows)
	pl.slotCount = resizeZeroInts(pl.slotCount, numSlots)
	slotCount := pl.slotCount
	for i := range blocks {
		slotCount[rowOf[i]*len(cols)+colOf[i]]++
	}
	pl.slotStart = resizeInts(pl.slotStart, numSlots+1)
	slotStart := pl.slotStart
	sum := 0
	for s := 0; s < numSlots; s++ {
		slotStart[s] = sum
		sum += slotCount[s]
	}
	slotStart[numSlots] = sum
	pl.slotNext = resizeInts(pl.slotNext, numSlots)
	slotNext := pl.slotNext
	copy(slotNext, slotStart[:numSlots])
	pl.slotMembers = resizeInts(pl.slotMembers, len(blocks))
	slotMembers := pl.slotMembers
	for i := range blocks {
		s := rowOf[i]*len(cols) + colOf[i]
		slotMembers[slotNext[s]] = i
		slotNext[s]++
	}
	for s := 0; s < numSlots; s++ {
		members := slotMembers[slotStart[s]:slotStart[s+1]]
		if len(members) == 0 {
			continue
		}
		cw := pl.coeff(numVars)
		cw[rowVar(s/len(cols))] = 1
		rhs := 0.0
		for _, i := range members {
			if si := softIdx[i]; si != -1 {
				cw[nSoft+si] -= 1
			} else {
				rhs += hardH[i]
			}
			rhs += sp
		}
		p.AddConstraint(cw, lp.GE, rhs)
	}
	pl.constraints = p.Constraints[:0]

	sol, err := pl.lp.Solve(p)
	if err != nil {
		return nil, fmt.Errorf("floorplan: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("floorplan: LP %v", sol.Status)
	}

	// Extract dimensions, re-exactifying soft areas: h = A/w.
	pl.wOf = resizeFloats(pl.wOf, len(blocks))
	pl.hOf = resizeFloats(pl.hOf, len(blocks))
	wOf, hOf := pl.wOf, pl.hOf
	for i, b := range blocks {
		if s := softIdx[i]; s != -1 {
			w := sol.X[s]
			if w <= 0 {
				w = math.Sqrt(b.area)
			}
			wOf[i] = w
			hOf[i] = b.area / w
		} else {
			wOf[i] = hardW[i]
			hOf[i] = hardH[i]
		}
	}
	pl.colW = resizeFloats(pl.colW, len(cols))
	colW := pl.colW
	for c := range cols {
		colW[c] = sol.X[colVar(c)]
	}
	pl.rowH = resizeFloats(pl.rowH, len(rows))
	rowH := pl.rowH
	for r := range rows {
		rowH[r] = sol.X[rowVar(r)]
	}
	// Ensure extracted dims still fit after exactification.
	for i := range blocks {
		if wOf[i]+sp > colW[colOf[i]] {
			colW[colOf[i]] = wOf[i] + sp
		}
	}
	for s := 0; s < numSlots; s++ {
		var need float64
		for _, i := range slotMembers[slotStart[s]:slotStart[s+1]] {
			need += hOf[i] + sp
		}
		if need > rowH[s/len(cols)] {
			rowH[s/len(cols)] = need
		}
	}

	// Absolute placement: columns left to right, rows bottom to top,
	// blocks stacked within a slot in deterministic (router-first) order.
	pl.colX = resizeFloats(pl.colX, len(cols))
	colX := pl.colX
	for c := 1; c < len(cols); c++ {
		colX[c] = colX[c-1] + colW[c-1]
	}
	pl.rowY = resizeFloats(pl.rowY, len(rows))
	rowY := pl.rowY
	for r := 1; r < len(rows); r++ {
		rowY[r] = rowY[r-1] + rowH[r-1]
	}

	res := &Result{
		Blocks:       make([]Block, 0, len(blocks)),
		CoreBlocks:   make([]int, len(cores)),
		RouterBlocks: make([]int, topo.NumRouters()),
	}
	pl.stackUsed = resizeFloats(pl.stackUsed, numSlots)
	stackUsed := pl.stackUsed
	for i, b := range blocks {
		s := rowOf[i]*len(cols) + colOf[i]
		yOff := stackUsed[s]
		stackUsed[s] = yOff + hOf[i] + sp
		placed := Block{
			Name: b.name,
			X:    colX[colOf[i]] + (colW[colOf[i]]-wOf[i])/2,
			Y:    rowY[rowOf[i]] + yOff + sp/2,
			W:    wOf[i],
			H:    hOf[i],
			Soft: b.soft,
		}
		res.Blocks = append(res.Blocks, placed)
		if b.core >= 0 {
			res.CoreBlocks[b.core] = len(res.Blocks) - 1
		}
		if b.router >= 0 {
			res.RouterBlocks[b.router] = len(res.Blocks) - 1
		}
	}
	var chipW, chipH float64
	for c := range cols {
		chipW += colW[c]
	}
	for r := range rows {
		chipH += rowH[r]
	}
	res.ChipWMM, res.ChipHMM = chipW, chipH

	// Link lengths: Manhattan distance between router block centres.
	res.LinkLengthsMM = make([]float64, len(topo.Links()))
	for _, l := range topo.Links() {
		a := res.Blocks[res.RouterBlocks[l.From]]
		b := res.Blocks[res.RouterBlocks[l.To]]
		res.LinkLengthsMM[l.ID] = math.Abs(a.CenterX()-b.CenterX()) + math.Abs(a.CenterY()-b.CenterY())
	}
	// Access (NI) link lengths: core block to its inject router block.
	res.AccessLengthsMM = make([]float64, len(cores))
	for i := range cores {
		cb := res.Blocks[res.CoreBlocks[i]]
		rb := res.Blocks[res.RouterBlocks[topo.InjectRouter(assign[i])]]
		res.AccessLengthsMM[i] = math.Abs(cb.CenterX()-rb.CenterX()) + math.Abs(cb.CenterY()-rb.CenterY())
	}
	return res, nil
}

// relBlock is a block in relative (template) coordinates before sizing.
type relBlock struct {
	name       string
	rx, ry     float64
	area       float64
	soft       bool
	arLo, arHi float64 // aspect bounds for soft blocks
	core       int     // core index or -1
	router     int     // router index or -1
}

// binCoords fills *out with the sorted distinct coordinate values (1e-6
// tolerance), reusing its backing array and the planner's sort scratch.
func (pl *Planner) binCoords(out *[]float64, blocks []relBlock, get func(relBlock) float64) []float64 {
	vals := pl.binScratch[:0]
	for _, b := range blocks {
		vals = append(vals, get(b))
	}
	sort.Float64s(vals)
	pl.binScratch = vals
	bins := (*out)[:0]
	for _, v := range vals {
		if len(bins) == 0 || v-bins[len(bins)-1] > 1e-6 {
			bins = append(bins, v)
		}
	}
	*out = bins
	return bins
}

// indexOf finds v in the sorted bin list within tolerance.
func indexOf(bins []float64, v float64) int {
	i := sort.SearchFloat64s(bins, v-1e-6)
	if i < len(bins) && math.Abs(bins[i]-v) <= 1e-6 {
		return i
	}
	if i > 0 && math.Abs(bins[i-1]-v) <= 1e-6 {
		return i - 1
	}
	return i // should not happen; nearest bin
}

// resizeInts returns buf resized to n without zeroing.
func resizeInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// resizeZeroInts returns buf resized to n with every element zeroed.
func resizeZeroInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// resizeFloats returns buf resized to n with every element zeroed.
func resizeFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}
