package floorplan

import (
	"math"

	"sunmap/internal/graph"
	"sunmap/internal/topology"
)

// EstimateLinkLengthsMM approximates link and access (NI) lengths without
// solving the LP: relative template distances scaled by the design pitch
// (the side of the average core block plus spacing). The mapping swap loop
// uses this fast path; the exact LP floorplan runs once per candidate
// mapping at the end (and in paper-faithful mode, inside the loop).
func EstimateLinkLengthsMM(topo topology.Topology, assign []int, cores []graph.Core, opts Options) (linkLens, accessLens []float64) {
	opts = opts.withDefaults()
	pitch := EstimatePitchMM(cores, opts)
	linkLens = make([]float64, len(topo.Links()))
	for _, l := range topo.Links() {
		ax, ay := topo.Position(l.From)
		bx, by := topo.Position(l.To)
		linkLens[l.ID] = (math.Abs(ax-bx) + math.Abs(ay-by)) * pitch
	}
	accessLens = make([]float64, len(assign))
	for i, term := range assign {
		tx, ty := topo.TerminalPosition(term)
		rx, ry := topo.Position(topo.InjectRouter(term))
		d := (math.Abs(tx-rx) + math.Abs(ty-ry)) * pitch
		if d < pitch/2 {
			d = pitch / 2 // same-slot blocks still need a short hookup
		}
		accessLens[i] = d
	}
	return linkLens, accessLens
}

// EstimatePitchMM returns the estimated slot pitch: the side length of the
// average core plus spacing.
func EstimatePitchMM(cores []graph.Core, opts Options) float64 {
	opts = opts.withDefaults()
	if len(cores) == 0 {
		return 1
	}
	var total float64
	for _, c := range cores {
		total += c.AreaMM2
	}
	avg := total / float64(len(cores))
	if avg <= 0 {
		return 1
	}
	return math.Sqrt(avg) + opts.SpacingMM
}
