// Package suite is the registry of every invariant analyzer the
// repository ships. It is the single source of truth shared by the
// sunmap-lint command and the repository's self-lint test, so the CI
// gate and `go test` can never drift apart on which invariants are
// enforced.
package suite

import (
	"sunmap/internal/analysis"
	"sunmap/internal/analysis/ctxdiscipline"
	"sunmap/internal/analysis/detorder"
	"sunmap/internal/analysis/hotpath"
	"sunmap/internal/analysis/limiterdiscipline"
	"sunmap/internal/analysis/obslabel"
	"sunmap/internal/analysis/wrapsentinel"
)

// All returns the full analyzer suite in name order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxdiscipline.Analyzer,
		detorder.Analyzer,
		hotpath.Analyzer,
		limiterdiscipline.Analyzer,
		obslabel.Analyzer,
		wrapsentinel.Analyzer,
	}
}
