// Package obslabel enforces the bounded-cardinality contract of the obs
// metrics registry: every metric name and every label value must be a
// compile-time constant. Prometheus label sets are a cross product —
// one interpolated label value (a topology name, a request id, an error
// string) turns a fixed family into an unbounded one, growing the
// registry without limit and making scrape output nondeterministic.
//
// The contract this enforces is the pre-resolution idiom: vec children
// are resolved once at package init with constant label arguments
// (`opTotal.With(OpSelect, "ok")`), and runtime code selects among the
// pre-built children with a map lookup or switch. Two call classes are
// checked, everywhere in the repository:
//
//  1. metric constructors on *obs.Registry (Counter, Gauge, GaugeFunc,
//     CounterFunc, Histogram, CounterVec, HistogramVec) — the name
//     argument must be constant, and for the vec forms every label-name
//     argument too;
//  2. (*obs.CounterVec).With and (*obs.HistogramVec).With — every label
//     value must be constant.
package obslabel

import (
	"go/ast"
	"go/types"

	"sunmap/internal/analysis"
)

// obsPath is the package whose API the contract governs.
const obsPath = "sunmap/internal/obs"

// constructors maps each Registry constructor method to the index of its
// first label-name argument (-1 = no label arguments; only the metric
// name at index 0 is checked).
var constructors = map[string]int{
	"Counter":      -1,
	"Gauge":        -1,
	"GaugeFunc":    -1,
	"CounterFunc":  -1,
	"Histogram":    -1,
	"CounterVec":   2, // (name, help, labels...)
	"HistogramVec": 3, // (name, help, buckets, labels...)
}

// Analyzer flags non-constant metric names and label values at obs
// registry call sites.
var Analyzer = &analysis.Analyzer{
	Name: "obslabel",
	Doc: "flag non-constant metric names and label values at obs registry calls\n\n" +
		"Label sets are a cross product: one runtime-interpolated label value\n" +
		"makes a metric family unbounded. Names and labels must be compile-time\n" +
		"constants; resolve vec children once at init and select among them.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() != obsPath {
				return true
			}
			recv := recvTypeName(obj)
			switch {
			case recv == "Registry":
				labelStart, ok := constructors[obj.Name()]
				if !ok {
					return true
				}
				checkArg(pass, call, 0, "metric name")
				if labelStart >= 0 {
					for i := labelStart; i < len(call.Args); i++ {
						checkArg(pass, call, i, "label name")
					}
				}
			case (recv == "CounterVec" || recv == "HistogramVec") && obj.Name() == "With":
				for i := range call.Args {
					checkArg(pass, call, i, "label value")
				}
			}
			return true
		})
	}
	return nil
}

// recvTypeName returns the receiver's base type name ("" for package-
// level functions).
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// checkArg flags argument i of call if it is not a compile-time
// constant. A variadic slice expansion (`vec.With(vals...)`) has no
// per-argument constants and is flagged at the call.
func checkArg(pass *analysis.Pass, call *ast.CallExpr, i int, what string) {
	if i >= len(call.Args) {
		// Slice expansion: the ellipsis arg stands for all values.
		return
	}
	arg := call.Args[i]
	if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
		pass.Reportf(arg.Pos(),
			"%s passed by slice expansion is not a compile-time constant; resolve vec children at init with constant labels", what)
		return
	}
	if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
		return
	}
	pass.Reportf(arg.Pos(),
		"%s must be a compile-time constant (got a runtime value); resolve vec children at init and select among them", what)
}
