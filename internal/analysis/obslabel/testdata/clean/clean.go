// Package clean exercises the sanctioned metric idiom: constant names,
// constant label names, and vec children pre-resolved once with
// constant label values, selected among at runtime.
package clean

import "sunmap/internal/obs"

const opSelect = "select"

var (
	reg = obs.NewRegistry()

	ops  = reg.CounterVec("clean_op_total", "operations by op and outcome", "op", "outcome")
	okC  = ops.With(opSelect, "ok")
	errC = ops.With(opSelect, "error")

	lat    = reg.HistogramVec("clean_op_seconds", "latency by op", nil, "op")
	latSel = lat.With(opSelect)

	total = reg.Counter("clean_total", "a plain counter")
)

// Touch selects among the pre-resolved children — the runtime side of
// the idiom obslabel enforces.
func Touch(failed bool) {
	if failed {
		errC.Inc()
	} else {
		okC.Inc()
	}
	latSel.Observe(0.001)
	total.Inc()
}
