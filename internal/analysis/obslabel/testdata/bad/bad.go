// Package bad interpolates runtime values into metric names and label
// values — the unbounded-cardinality leaks obslabel exists to stop.
package bad

import "sunmap/internal/obs"

var reg = obs.NewRegistry()

var fixed = reg.CounterVec("bad_fixed_total", "ok name, abused below", "op")

// Dynamic builds metric identities from runtime data.
func Dynamic(op string, labels []string) {
	vec := reg.CounterVec("bad_"+op+"_total", "interpolated name", "op") // want "metric name must be a compile-time constant"
	vec.With(op).Inc()                                                   // want "label value must be a compile-time constant"
	fixed.With(labels...).Inc()                                          // want "label value passed by slice expansion"
	reg.CounterVec("bad_labels_total", "interpolated label name", op)    // want "label name must be a compile-time constant"
	reg.Counter(op, "runtime counter name")                              // want "metric name must be a compile-time constant"
}
