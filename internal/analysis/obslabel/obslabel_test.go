package obslabel_test

import (
	"testing"

	"sunmap/internal/analysis/analysistest"
	"sunmap/internal/analysis/obslabel"
)

func TestBad(t *testing.T) {
	analysistest.Run(t, "testdata/bad", obslabel.Analyzer)
}

func TestClean(t *testing.T) {
	analysistest.Run(t, "testdata/clean", obslabel.Analyzer)
}
