package hotpath_test

import (
	"testing"

	"sunmap/internal/analysis/analysistest"
	"sunmap/internal/analysis/hotpath"
)

func TestBad(t *testing.T) {
	analysistest.Run(t, "testdata/bad", hotpath.Analyzer)
}

func TestClean(t *testing.T) {
	analysistest.Run(t, "testdata/clean", hotpath.Analyzer)
}
