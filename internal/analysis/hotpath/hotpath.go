// Package hotpath is the static complement to the runtime allocation
// gates (TestSwapEvalAllocFree, TestSearchInnerLoopAllocBudget,
// TestMaskedRerouteAllocFree, ...): functions annotated //sunmap:hotpath
// and everything they reach within their package must not contain
// allocating constructs. The runtime gates prove today's code allocates
// zero bytes in steady state; this analyzer keeps tomorrow's edits from
// quietly reintroducing an allocation the benchmarks only catch later.
//
// Flagged constructs (each suppressible line-by-line with the
// //sunmap:alloc annotation, the audit trail for growth and error paths
// that the steady-state gates have proven cold):
//
//   - make and new
//   - composite literals that must heap-allocate: &T{...}, slice and map
//     literals (plain value composites like Outcome{...} stay legal —
//     they live in registers or the caller's frame)
//   - append, unless its first argument is an explicit reslice
//     (append(buf[:0], ...) — the scratch-reuse discipline)
//   - function literals (closure capture)
//   - any call into package fmt
//   - string concatenation (+ and +=)
//   - interface boxing at call sites: a concrete non-pointer argument
//     passed to an interface parameter
//
// The closure is same-package only: calls that leave the package are
// trusted to carry their own annotations (route.Router.RouteInto is
// itself a root, so fault.Evaluator reaching it is covered in the route
// package's run, not re-traversed from fault's).
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"sunmap/internal/analysis"
)

// Analyzer flags allocating constructs inside //sunmap:hotpath
// functions and their same-package callees.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "flag allocating constructs in //sunmap:hotpath functions and their same-package callees\n\n" +
		"The static complement to the steady-state allocation benchmarks:\n" +
		"make/new, escaping composites, undisciplined append, closures, fmt,\n" +
		"string concatenation and interface boxing are build errors on hot\n" +
		"paths unless audited with //sunmap:alloc.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Index every function declared in this package by its types.Func,
	// and collect the annotated roots.
	decls := make(map[*types.Func]*ast.FuncDecl)
	var roots []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				decls[obj] = fn
			}
			if analysis.FuncAnnotated(fn, analysis.AnnotationHotPath) {
				roots = append(roots, fn)
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}

	// Breadth-first closure over same-package static calls, remembering
	// which root first reached each function for the diagnostic message.
	rootOf := make(map[*ast.FuncDecl]string)
	var queue []*ast.FuncDecl
	for _, r := range roots {
		rootOf[r] = r.Name.Name
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		root := rootOf[fn]
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var id *ast.Ident
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				id = fun
			case *ast.SelectorExpr:
				id = fun.Sel
			default:
				return true
			}
			obj, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || obj.Pkg() != pass.Pkg {
				return true
			}
			callee, ok := decls[obj]
			if !ok {
				return true
			}
			if _, seen := rootOf[callee]; !seen {
				rootOf[callee] = root
				queue = append(queue, callee)
			}
			return true
		})
	}

	for fn, root := range rootOf {
		checkFunc(pass, fn, root)
	}
	return nil
}

// checkFunc flags every allocating construct in one hot function.
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, root string) {
	report := func(pos token.Pos, what string) {
		if pass.LineAnnotated(pos, analysis.AnnotationAlloc) {
			return
		}
		pass.Reportf(pos, "%s in hot path (reachable from //sunmap:hotpath %s); pre-size scratch or audit with %s",
			what, root, analysis.AnnotationAlloc)
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n, report)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n.Pos(), "heap composite literal (&T{...})")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					report(n.Pos(), "slice literal")
				case *types.Map:
					report(n.Pos(), "map literal")
				}
			}
		case *ast.FuncLit:
			report(n.Pos(), "function literal (closure capture)")
			return false // the closure body is cold until it runs; its capture is the cost
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass, n.X) {
				report(n.Pos(), "string concatenation")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pass, n.Lhs[0]) {
				report(n.Pos(), "string concatenation (+=)")
			}
		}
		return true
	})
}

// checkCall flags builtin allocators, fmt calls and interface boxing.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, report func(token.Pos, string)) {
	// Builtins: make, new, undisciplined append.
	if id, ok := unwrapFun(call.Fun); ok {
		switch obj := pass.TypesInfo.Uses[id].(type) {
		case *types.Builtin:
			switch obj.Name() {
			case "make":
				report(call.Pos(), "make")
			case "new":
				report(call.Pos(), "new")
			case "append":
				if len(call.Args) > 0 {
					if _, resliced := call.Args[0].(*ast.SliceExpr); !resliced {
						report(call.Pos(), "append without capacity discipline (append to an explicit reslice like buf[:0])")
					}
				}
			}
			return
		case *types.Func:
			if pkg := obj.Pkg(); pkg != nil && pkg.Path() == "fmt" {
				report(call.Pos(), "fmt."+obj.Name()+" call")
				return
			}
		}
	}
	// Interface boxing: a concrete non-pointer argument passed to an
	// interface parameter allocates when it escapes — and the compiler,
	// not the reader, decides when that is.
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return // conversion, not a call
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			param = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			param = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(param) {
			continue
		}
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.IsNil() || at.Type == nil {
			continue
		}
		t := at.Type
		if types.IsInterface(t) {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue // pointers fit the iface word without allocating
		}
		report(arg.Pos(), "interface boxing at call site (concrete "+t.String()+" into interface parameter)")
	}
}

// isString reports whether the expression has string type.
func isString(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// unwrapFun extracts the identifier a call resolves through.
func unwrapFun(fun ast.Expr) (*ast.Ident, bool) {
	switch f := fun.(type) {
	case *ast.Ident:
		return f, true
	case *ast.SelectorExpr:
		return f.Sel, true
	}
	return nil, false
}
