// Package clean shows every sanctioned hot-path form: scratch reuse via
// reslice, value composites, pointer arguments to interface parameters,
// and //sunmap:alloc-audited growth on cold branches.
package clean

type outcome struct {
	Cost  float64
	Valid bool
}

type evaluator struct {
	scratch []int
	grown   bool
}

// Eval allocates nothing in steady state.
//
//sunmap:hotpath
func (e *evaluator) Eval(xs []int) outcome {
	// Reslice discipline: append into reclaimed capacity.
	e.scratch = append(e.scratch[:0], xs...)
	if !e.grown && cap(e.scratch) < 2*len(xs) {
		e.grow(len(xs))
	}
	total := e.describe()
	for _, x := range e.scratch {
		total += x
	}
	// Value composite returns live in the caller's frame.
	return outcome{Cost: float64(total), Valid: true}
}

// grow is the audited cold branch: it runs once, then Eval reuses.
func (e *evaluator) grow(n int) {
	e.scratch = make([]int, len(e.scratch), 2*n+8) //sunmap:alloc one-time scratch growth, proven cold by the alloc gate
	e.grown = true
}

// describe passes a pointer into an interface parameter — one word, no
// boxing allocation.
func (e *evaluator) describe() int {
	return sink(e)
}

func sink(v any) int {
	if v == nil {
		return 0
	}
	return 1
}

// Cold is outside the hot closure entirely.
func Cold(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
