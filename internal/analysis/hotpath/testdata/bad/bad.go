// Package bad exercises every allocating construct hotpath flags, both
// directly in an annotated root and transitively in a same-package
// callee.
package bad

import "fmt"

type evaluator struct {
	scratch []int
	tag     string
}

// Eval is the annotated root: every construct below must be flagged.
//
//sunmap:hotpath
func (e *evaluator) Eval(xs []int) int {
	buf := make([]int, len(xs))      // want `make in hot path \(reachable from //sunmap:hotpath Eval\)`
	p := new(evaluator)              // want `new in hot path`
	q := &evaluator{}                // want `heap composite literal \(&T\{\.\.\.\}\) in hot path`
	lit := []int{1, 2, 3}            // want `slice literal in hot path`
	m := map[string]int{}            // want `map literal in hot path`
	e.scratch = append(e.scratch, 1) // want `append without capacity discipline`
	f := func() int { return 1 }     // want `function literal \(closure capture\) in hot path`
	s := e.tag + "x"                 // want `string concatenation in hot path`
	s += "y"                         // want `string concatenation \(\+=\) in hot path`
	fmt.Println(s)                   // want `fmt\.Println call in hot path`
	return len(buf) + len(lit) + m["a"] + f() + p.helper(42) + q.helper(1)
}

// helper is reached from Eval, so its allocations are hot too.
func (e *evaluator) helper(n int) int {
	tmp := make([]int, n) // want `make in hot path \(reachable from //sunmap:hotpath Eval\)`
	return len(tmp) + box(n)
}

// box passes a concrete int into an interface parameter.
func box(n int) int {
	return sink(n) // want `interface boxing at call site \(concrete int into interface parameter\)`
}

func sink(v any) int {
	if v == nil {
		return 0
	}
	return 1
}

// Cold is not annotated and not reachable from a root: free to allocate.
func Cold() []int {
	return make([]int, 8)
}
