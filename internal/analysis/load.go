package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct {
		Err string
	}
}

// Load resolves the package patterns with the go command and returns the
// matched packages parsed and type-checked. Dependencies are imported
// from the gc export data `go list -export` produces, so nothing beyond
// the Go toolchain is required and no package is type-checked twice.
// Test files are not loaded: the invariants the analyzers enforce are
// production-code contracts, and tests legitimately violate several of
// them (saturating limiters, wall-clock timeouts).
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %w\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Standard || p.DepOnly {
			continue
		}
		q := p
		targets = append(targets, &q)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			files = append(files, f)
		}
		pkg, info, err := Check(t.ImportPath, fset, files, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, &Package{
			Path:      t.ImportPath,
			Fset:      fset,
			Files:     files,
			Types:     pkg,
			TypesInfo: info,
		})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// Check type-checks one package's parsed files with the given importer,
// returning the package and a fully populated types.Info. It is shared
// by Load and by cmd/sunmap-lint's `go vet -vettool` mode (which gets
// its file list and export map from the vet config instead of go list).
func Check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return pkg, info, nil
}

// Diag is one positioned finding of a driver run.
type Diag struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Run loads the patterns and applies every analyzer to every matched
// package (honoring each analyzer's Match filter), returning the
// diagnostics sorted by position. It is the engine behind both
// cmd/sunmap-lint and the repository self-lint test.
func Run(dir string, analyzers []*Analyzer, patterns ...string) ([]Diag, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var diags []Diag
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d Diagnostic) {
				diags = append(diags, Diag{
					Pos:      pkg.Fset.Position(d.Pos),
					Analyzer: a.Name,
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
