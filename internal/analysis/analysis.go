// Package analysis is SUNMAP's in-tree static-analysis framework: a
// stdlib-only reimplementation of the golang.org/x/tools/go/analysis
// surface the repo's invariant checkers are written against, plus the
// package loader and driver that run them.
//
// The engine's performance story rests on invariants the compiler cannot
// see — byte-identical reports at every parallelism, allocation-free hot
// loops, the two-level limiter discipline (blocking Acquire only at
// candidate admission) — and PRs 4–7 enforced them only with runtime
// tests and convention. The analyzers under this package (see the
// sibling directories limiterdiscipline, detorder, hotpath,
// ctxdiscipline and wrapsentinel, and the cmd/sunmap-lint multichecker)
// turn every one of those invariant classes into a build-breaking
// diagnostic.
//
// The framework mirrors x/tools' API shape — Analyzer, Pass, Diagnostic
// — so the checkers port to the upstream framework verbatim if the
// x/tools dependency ever becomes available. Loading is done with
// `go list -e -deps -export -json`, parsing with go/parser, and type
// checking with go/types over the gc export data the go command already
// produced, so the driver needs nothing beyond the Go toolchain.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one invariant checker: a name for diagnostics, a
// doc string, and the Run function applied to every loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the
	// sunmap-lint command line.
	Name string
	// Doc is the help text: first line is a one-line summary.
	Doc string
	// Match, when non-nil, restricts the analyzer to packages for which
	// it returns true (by import path). Analyzers with repo-specific
	// scopes (e.g. detorder's deterministic-fold packages) use it so the
	// multichecker can still be pointed at ./... wholesale. The
	// analysistest harness bypasses Match — fixtures always run.
	Match func(pkgPath string) bool
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one package's syntax and types through an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic.
	Report func(Diagnostic)

	lines map[string]map[int][]string // filename -> line -> comment texts
}

// Diagnostic is one finding, positioned in the fileset of the pass that
// produced it.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Annotation markers all live in the //sunmap: comment namespace; see
// docs/ARCHITECTURE.md "Static invariants" for the contract.
const (
	// AnnotationHotPath marks a function whose body (and same-package
	// callees) the hotpath analyzer holds to the allocation-free
	// contract.
	AnnotationHotPath = "//sunmap:hotpath"
	// AnnotationAlloc marks one audited allocating line inside a hot
	// path — a growth or error path that the steady-state allocation
	// gates have proven cold.
	AnnotationAlloc = "//sunmap:alloc"
	// AnnotationWallClock marks a function allowed to read time.Now
	// inside the deterministic packages (the engine's timing site).
	AnnotationWallClock = "//sunmap:wallclock"
	// AnnotationUnordered marks a map-range loop whose fold is
	// order-insensitive by construction (e.g. a pure count), exempting
	// it from detorder.
	AnnotationUnordered = "//sunmap:unordered"
	// AnnotationDetached marks an audited context.Background() site that
	// deliberately outlives its caller's context (the server's graceful
	// drain), exempting it from ctxdiscipline.
	AnnotationDetached = "//sunmap:detached"
)

// FuncAnnotated reports whether the function declaration carries the
// given //sunmap: marker in its doc comment.
func FuncAnnotated(decl *ast.FuncDecl, marker string) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), marker) {
			return true
		}
	}
	return false
}

// buildLineComments indexes every comment by (file, line) so analyzers
// can honor line-level suppression markers.
func (p *Pass) buildLineComments() {
	p.lines = make(map[string]map[int][]string)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := p.Fset.Position(c.Pos())
				m := p.lines[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					p.lines[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], c.Text)
			}
		}
	}
}

// LineAnnotated reports whether the source line holding pos (or the line
// just above it) carries the given //sunmap: marker as a comment — the
// line-level escape hatch for audited violations.
func (p *Pass) LineAnnotated(pos token.Pos, marker string) bool {
	if p.lines == nil {
		p.buildLineComments()
	}
	position := p.Fset.Position(pos)
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, text := range p.lines[position.Filename][line] {
			if strings.HasPrefix(strings.TrimSpace(text), marker) {
				return true
			}
		}
	}
	return false
}
