// Package bad violates each of the three context plumbing rules.
package bad

import "context"

// Run takes its context in second position.
func Run(name string, ctx context.Context) error { // want "context.Context must be the first parameter of exported Run"
	_ = name
	return ctx.Err()
}

// Detached mints a context in library code.
func Detached() error {
	ctx := context.Background() // want `context\.Background in library code`
	return ctx.Err()
}

// Todo punts on plumbing entirely.
func Todo() error {
	return context.TODO().Err() // want `context\.TODO in library code`
}

// job squirrels a context away for later.
type job struct {
	ctx  context.Context // want "context.Context stored in a struct outlives the call it scoped"
	name string
}

func (j *job) run() error { return j.ctx.Err() }

var _ = (&job{}).run
