// Command mainpkg is an entrypoint fixture: package main is where
// contexts are born, so Background/TODO are legal here.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = work(ctx)
}

func work(ctx context.Context) error { return ctx.Err() }
