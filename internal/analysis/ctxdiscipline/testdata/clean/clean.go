// Package clean shows the sanctioned context forms.
package clean

import "context"

// Run plumbs its context first.
func Run(ctx context.Context, name string) error {
	_ = name
	return ctx.Err()
}

// NoCtx takes no context at all — nothing to order.
func NoCtx(a, b int) int { return a + b }

// helper is unexported: internal plumbing may order params freely.
func helper(name string, ctx context.Context) error {
	_ = name
	return ctx.Err()
}

// Drain is the audited detachment pattern: shutdown work that must
// outlive the request context that triggered it.
func Drain() error {
	ctx := context.Background() //sunmap:detached graceful drain outlives the triggering request
	_ = helper("drain", ctx)
	return nil
}
