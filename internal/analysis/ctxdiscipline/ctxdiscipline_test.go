package ctxdiscipline_test

import (
	"testing"

	"sunmap/internal/analysis/analysistest"
	"sunmap/internal/analysis/ctxdiscipline"
)

func TestBad(t *testing.T) {
	analysistest.Run(t, "testdata/bad", ctxdiscipline.Analyzer)
}

func TestClean(t *testing.T) {
	analysistest.Run(t, "testdata/clean", ctxdiscipline.Analyzer)
}

// TestMainPackage pins the package-main exemption: entrypoints mint
// contexts, libraries receive them.
func TestMainPackage(t *testing.T) {
	analysistest.Run(t, "testdata/mainpkg", ctxdiscipline.Analyzer)
}
