// Package ctxdiscipline enforces the repo's context plumbing rules,
// introduced when the Session API threaded cancellation through every
// layer (PR 5):
//
//  1. on an exported function or method that takes a context.Context,
//     the context is the first parameter — mixed positions make call
//     sites unreadable and break the mechanical "ctx flows left to
//     right" audit;
//  2. context.Background() and context.TODO() appear only in package
//     main (cmd/ and examples/) and tests — library code receives its
//     context from the caller, it never invents one. The single audited
//     exception is a //sunmap:detached line annotation for sites that
//     deliberately outlive the caller (the server's graceful drain);
//  3. contexts are not stored in struct fields — a stored context
//     outlives the call it scoped, hiding cancellation bugs; pass it
//     per call instead.
//
// Test files are exempt by construction: the loader analyzes a
// package's GoFiles only.
package ctxdiscipline

import (
	"go/ast"
	"go/types"

	"sunmap/internal/analysis"
)

// Analyzer enforces ctx-first signatures, no invented contexts in
// library code, and no contexts in structs.
var Analyzer = &analysis.Analyzer{
	Name: "ctxdiscipline",
	Doc: "enforce context plumbing: ctx first, no Background/TODO in libraries, no ctx struct fields\n\n" +
		"Library code receives its context; only package main and tests may\n" +
		"mint one. //sunmap:detached audits deliberate detachment sites.",
	Run: run,
}

const ctxType = "context.Context"

func run(pass *analysis.Pass) error {
	isMain := pass.Pkg.Name() == "main"
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkSignature(pass, n)
			case *ast.CallExpr:
				if !isMain {
					checkMinted(pass, n)
				}
			case *ast.StructType:
				checkFields(pass, n)
			}
			return true
		})
	}
	return nil
}

// isContext reports whether the expression's type is context.Context.
func isContext(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return tv.Type.String() == ctxType
}

// checkSignature flags an exported func whose context parameter is not
// first.
func checkSignature(pass *analysis.Pass, fn *ast.FuncDecl) {
	if !fn.Name.IsExported() || fn.Type.Params == nil {
		return
	}
	pos := 0 // flat parameter index, counting each name in a group
	for fi, field := range fn.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContext(pass, field.Type) && !(fi == 0 && pos == 0 && n == 1) {
			pass.Reportf(field.Pos(),
				"context.Context must be the first parameter of exported %s", fn.Name.Name)
			return
		}
		pos += n
	}
}

// checkMinted flags context.Background()/TODO() in library code.
func checkMinted(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return
	}
	name := obj.Name()
	if name != "Background" && name != "TODO" {
		return
	}
	if pass.LineAnnotated(call.Pos(), analysis.AnnotationDetached) {
		return
	}
	pass.Reportf(call.Pos(),
		"context.%s in library code: accept a ctx from the caller (or audit detachment with %s)",
		name, analysis.AnnotationDetached)
}

// checkFields flags context.Context struct fields.
func checkFields(pass *analysis.Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if isContext(pass, field.Type) {
			pass.Reportf(field.Pos(),
				"context.Context stored in a struct outlives the call it scoped; pass it per call")
		}
	}
}
