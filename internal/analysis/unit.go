package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"
)

// Config mirrors the vet configuration JSON cmd/go writes for each
// package when a vet tool is invoked via `go vet -vettool` — the same
// contract golang.org/x/tools' unitchecker consumes. Only the fields
// the sunmap-lint driver needs are declared; the rest are ignored by
// encoding/json.
type Config struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string
	ImportMap  map[string]string
	// PackageFile maps package paths to export-data files built by the
	// go command for this vet run — the importer reads these instead of
	// running go list.
	PackageFile map[string]string
	Standard    map[string]bool
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// RunUnit executes one `go vet -vettool` package unit: it loads the vet
// config, type-checks the package against the export data the go
// command already built, and applies the analyzers (honoring Match).
// The VetxOutput file is always written — cmd/go treats its absence as
// tool failure — but sunmap-lint exchanges no facts, so it is empty.
func RunUnit(cfgPath string, analyzers []*Analyzer) ([]Diag, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading vet config: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("analysis: parsing vet config %s: %w", cfgPath, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, fmt.Errorf("analysis: writing vetx output: %w", err)
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}
	// Tests are exempt from the invariants (they mint contexts, stub
	// clocks, and exercise removed APIs on purpose), and the standalone
	// loader analyzes only non-test GoFiles. Under `go vet` in-package
	// test files arrive merged into the package's own unit and external
	// test packages arrive as their own `p_test` unit, so both forms
	// are filtered here to keep the two drivers in agreement.
	if strings.HasSuffix(cfg.ImportPath, "_test") {
		return nil, nil
	}
	goFiles := cfg.GoFiles[:0:0]
	for _, name := range cfg.GoFiles {
		if !strings.HasSuffix(name, "_test.go") {
			goFiles = append(goFiles, name)
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("analysis: vet config has no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, info, err := Check(cfg.ImportPath, fset, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}

	var diags []Diag
	for _, a := range analyzers {
		if a.Match != nil && !a.Match(cfg.ImportPath) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.Report = func(d Diagnostic) {
			diags = append(diags, Diag{
				Pos:      fset.Position(d.Pos),
				Analyzer: a.Name,
				Message:  d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, cfg.ImportPath, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column < b.Pos.Column
	})
	return diags, nil
}
