package limiterdiscipline_test

import (
	"testing"

	"sunmap/internal/analysis/analysistest"
	"sunmap/internal/analysis/limiterdiscipline"
)

func TestBad(t *testing.T) {
	analysistest.Run(t, "testdata/bad", limiterdiscipline.Analyzer)
}

func TestClean(t *testing.T) {
	analysistest.Run(t, "testdata/clean", limiterdiscipline.Analyzer)
}

// TestAllowlisted proves the admission layer itself is exempt: the same
// blocking call that testdata/bad flags is silent when the package is on
// the allowlist.
func TestAllowlisted(t *testing.T) {
	path := "sunmap/internal/analysis/limiterdiscipline/testdata/allowed"
	limiterdiscipline.Allowed[path] = true
	defer delete(limiterdiscipline.Allowed, path)
	analysistest.Run(t, "testdata/allowed", limiterdiscipline.Analyzer)
}
