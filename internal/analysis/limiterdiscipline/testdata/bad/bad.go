// Package bad violates the limiter discipline: it blocks on Acquire
// from outside the admission layer.
package bad

import (
	"context"

	"sunmap/internal/pool"
)

// Nested blocks on the session limiter from nested code — the exact
// shape of the pre-PR-8 internal/sim/routes.go deadlock.
func Nested(ctx context.Context, limit *pool.Limiter) error {
	if err := limit.Acquire(ctx); err != nil { // want "blocking pool.Limiter.Acquire outside the admission layer"
		return err
	}
	defer limit.Release()
	return nil
}

// Indirect is still a violation inside a statement expression.
func Indirect(ctx context.Context, limit *pool.Limiter) {
	_ = limit.Acquire(ctx) // want "blocking pool.Limiter.Acquire"
}
