// Package allowed mimics the admission layer: the test allowlists this
// package, making its blocking Acquire legal.
package allowed

import (
	"context"

	"sunmap/internal/pool"
)

// Admit takes one whole-candidate slot — the admission-layer pattern.
func Admit(ctx context.Context, limit *pool.Limiter) error {
	if err := limit.Acquire(ctx); err != nil {
		return err
	}
	defer limit.Release()
	return nil
}
