// Package clean exercises every legal acquisition shape: opportunistic
// TryAcquire, the PollAcquire helper, Release, and an unrelated type
// that happens to have an Acquire method of its own.
package clean

import (
	"context"

	"sunmap/internal/pool"
)

// Opportunistic takes a slot only if one is free — always legal.
func Opportunistic(limit *pool.Limiter) bool {
	if limit.TryAcquire() {
		limit.Release()
		return true
	}
	return false
}

// Polled uses the shared poll helper — the sanctioned nested pattern.
func Polled(ctx context.Context, limit *pool.Limiter) bool {
	if !pool.PollAcquire(ctx, limit, nil) {
		return false
	}
	limit.Release()
	return true
}

// lock is an unrelated type with its own Acquire; calling it is fine.
type lock struct{}

func (lock) Acquire(context.Context) error { return nil }

// Unrelated calls a same-named method on a different type.
func Unrelated(ctx context.Context) error {
	var l lock
	return l.Acquire(ctx)
}
