// Package limiterdiscipline enforces the two-level limiter discipline
// of PR 6: the session-wide pool.Limiter admits whole candidates with a
// blocking Acquire exactly once, at the admission layer, and everything
// nested underneath may only take slots opportunistically (TryAcquire or
// the pool.PollAcquire helper). A blocking Acquire from nested code can
// deadlock a fully subscribed limiter — the holder waits on work that is
// itself waiting for the holder's slot.
package limiterdiscipline

import (
	"go/ast"
	"go/types"
	"strings"

	"sunmap/internal/analysis"
)

// acquireFullName is the one blocking primitive the discipline governs.
const acquireFullName = "(*sunmap/internal/pool.Limiter).Acquire"

// Allowed is the admission-layer allowlist: the only packages in which a
// blocking pool.Limiter.Acquire is legal. internal/engine is the
// admission layer — Evaluate and Fan take one slot per whole candidate
// before any nested work fans out.
var Allowed = map[string]bool{
	"sunmap/internal/engine": true,
}

// Analyzer flags blocking pool.Limiter.Acquire calls outside the
// admission layer.
var Analyzer = &analysis.Analyzer{
	Name: "limiterdiscipline",
	Doc: "flag blocking pool.Limiter.Acquire outside the admission layer\n\n" +
		"Only internal/engine (candidate admission) may block on the session\n" +
		"limiter; nested layers must use TryAcquire or pool.PollAcquire so a\n" +
		"fully subscribed limiter can never deadlock on nested acquisition.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if Allowed[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || obj.FullName() != acquireFullName {
				return true
			}
			pass.Reportf(call.Pos(),
				"blocking pool.Limiter.Acquire outside the admission layer (%s): nested code must use TryAcquire or pool.PollAcquire",
				allowedList())
			return true
		})
	}
	return nil
}

// allowedList renders the allowlist for the diagnostic message.
func allowedList() string {
	names := make([]string, 0, len(Allowed))
	for p := range Allowed {
		names = append(names, p)
	}
	if len(names) == 1 {
		return names[0]
	}
	// Deterministic order for multi-entry lists.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return strings.Join(names, ", ")
}
