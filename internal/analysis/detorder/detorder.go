// Package detorder guards the determinism contract of the fold/report
// packages: reports must be byte-identical at every parallelism setting
// and across runs, which dies the moment map iteration order, the
// global math/rand source, or the wall clock leaks into an output.
//
// Three construct classes are flagged, in the deterministic packages
// only (core, engine, fault, jobs, obs, search, serve — see DetPackages):
//
//  1. a `range` over a map whose body appends to a slice or sends on a
//     channel — iteration order reaches an ordered sink. Sorting the
//     produced slice after the loop (any sort.*/slices.Sort* call later
//     in the same function) restores determinism and silences the
//     diagnostic, as does the //sunmap:unordered line annotation for
//     folds that are provably order-insensitive (pure counts, max of
//     ints — not float sums, which are order-sensitive);
//  2. the bare top-level math/rand functions (Intn, Float64, Shuffle,
//     ...), which draw from the process-global source; deterministic
//     code seeds an explicit *rand.Rand;
//  3. time.Now outside a function annotated //sunmap:wallclock. The
//     audited readers live in internal/obs (obs.Now/obs.Since); every
//     other deterministic-package clock read should go through them so
//     span timing stays attributable to one reviewed site.
package detorder

import (
	"go/ast"
	"go/types"
	"strings"

	"sunmap/internal/analysis"
)

// DetPackages lists the packages holding deterministic folds: every
// package whose output is pinned byte-identical across parallelism by a
// root equivalence test.
var DetPackages = map[string]bool{
	"sunmap/internal/core":   true,
	"sunmap/internal/engine": true,
	"sunmap/internal/fault":  true,
	"sunmap/internal/jobs":   true,
	"sunmap/internal/obs":    true,
	"sunmap/internal/search": true,
	"sunmap/serve":           true,
	"sunmap/serve/client":    true,
}

// randConstructors are the math/rand package-level functions that build
// explicitly seeded generators rather than drawing from the global
// source — always legal.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

// Analyzer flags nondeterminism leaking into the deterministic fold
// packages.
var Analyzer = &analysis.Analyzer{
	Name: "detorder",
	Doc: "flag map-order, global-rand and wall-clock nondeterminism in the fold packages\n\n" +
		"Reports are byte-identical at every parallelism; map ranges feeding\n" +
		"appends/sends, bare math/rand and un-annotated time.Now break that.",
	Match: func(pkgPath string) bool { return DetPackages[pkgPath] },
	Run:   run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// checkFunc applies all three construct checks inside one function.
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	wallclock := analysis.FuncAnnotated(fn, analysis.AnnotationWallClock)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			checkMapRange(pass, fn, n)
		case *ast.CallExpr:
			checkCall(pass, n, wallclock)
		}
		return true
	})
}

// checkMapRange flags a map-order-dependent fold: a range over a map
// whose body reaches an append or channel send, with no sort downstream
// in the same function.
func checkMapRange(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if pass.LineAnnotated(rng.Pos(), analysis.AnnotationUnordered) {
		return
	}
	var sink string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			sink = "a channel send"
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					sink = "an append"
				}
			}
		}
		return true
	})
	if sink == "" {
		return
	}
	// An intervening sort downstream of the loop restores a canonical
	// order before anything observable is produced.
	sorted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil {
				switch pkg := obj.Pkg().Path(); {
				case pkg == "sort":
					sorted = true
				case pkg == "slices" && strings.HasPrefix(obj.Name(), "Sort"):
					sorted = true
				}
			}
		}
		return true
	})
	if sorted {
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration order reaches %s; iterate sorted keys or sort the result (or annotate %s if the fold is order-insensitive)",
		sink, analysis.AnnotationUnordered)
}

// checkCall flags bare global-source math/rand calls and un-annotated
// time.Now reads.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, wallclock bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return
	}
	// Package-level functions only: methods on an explicit *rand.Rand
	// are the sanctioned deterministic form.
	if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return
	}
	switch pkg := obj.Pkg().Path(); pkg {
	case "math/rand", "math/rand/v2":
		if !randConstructors[obj.Name()] {
			pass.Reportf(call.Pos(),
				"bare %s.%s draws from the process-global source; seed an explicit *rand.Rand",
				pkg, obj.Name())
		}
	case "time":
		if obj.Name() == "Now" && !wallclock {
			pass.Reportf(call.Pos(),
				"time.Now in a deterministic package outside a %s site; read the clock through obs.Now", analysis.AnnotationWallClock)
		}
	}
}
