package detorder_test

import (
	"testing"

	"sunmap/internal/analysis/analysistest"
	"sunmap/internal/analysis/detorder"
)

func TestBad(t *testing.T) {
	analysistest.Run(t, "testdata/bad", detorder.Analyzer)
}

func TestClean(t *testing.T) {
	analysistest.Run(t, "testdata/clean", detorder.Analyzer)
}

// TestMatchScope pins the analyzer to the deterministic fold packages.
func TestMatchScope(t *testing.T) {
	for pkg, want := range map[string]bool{
		"sunmap/internal/core":   true,
		"sunmap/internal/engine": true,
		"sunmap/internal/fault":  true,
		"sunmap/internal/obs":    true,
		"sunmap/internal/search": true,
		"sunmap/serve":           true,
		"sunmap/internal/sim":    false, // seeded RNG is the sim's workload, not a leak
		"sunmap":                 false,
	} {
		if got := detorder.Analyzer.Match(pkg); got != want {
			t.Errorf("Match(%q) = %v, want %v", pkg, got, want)
		}
	}
}
