// Package bad leaks nondeterminism through every construct detorder
// guards against.
package bad

import (
	"math/rand"
	"time"
)

// Collect folds a map into a slice in iteration order — the report
// would differ run to run.
func Collect(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration order reaches an append"
		out = append(out, k)
	}
	return out
}

// Stream sends map entries on a channel in iteration order.
func Stream(m map[int]int, ch chan<- int) {
	for _, v := range m { // want "map iteration order reaches a channel send"
		ch <- v
	}
}

// Draw uses the process-global rand source.
func Draw(n int) int {
	return rand.Intn(n) // want `bare math/rand\.Intn draws from the process-global source`
}

// Stamp reads the wall clock without a wallclock annotation.
func Stamp() time.Time {
	return time.Now() // want `time\.Now in a deterministic package outside a //sunmap:wallclock site`
}
