// Package clean shows every sanctioned form of the constructs detorder
// polices: sorted folds, explicit seeded generators, annotated clock
// reads.
package clean

import (
	"math/rand"
	"sort"
	"time"
)

// SortedCollect folds a map into a slice, then canonicalizes the order
// before anything observes it.
func SortedCollect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Count is order-insensitive by construction and annotated as such.
func Count(m map[string]int) int {
	n := 0
	var hit []string
	//sunmap:unordered — pure membership fold; output is sorted by caller
	for k := range m {
		if len(k) > 3 {
			n++
			hit = append(hit, k)
		}
	}
	sort.Strings(hit)
	return n
}

// SliceFold ranges over a slice — ordered input, no diagnostic.
func SliceFold(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}

// ReadOnly ranges over a map without an ordered sink.
func ReadOnly(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// SeededDraw uses an explicit generator — deterministic for a seed.
func SeededDraw(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// Timed is the audited wall-clock site.
//
//sunmap:wallclock — measures evaluation latency for progress events
func Timed() time.Duration {
	start := time.Now()
	return time.Since(start)
}
