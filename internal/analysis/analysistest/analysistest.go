// Package analysistest runs an analyzer over a fixture package and
// checks its diagnostics against `// want "re"` comment expectations —
// the in-tree equivalent of golang.org/x/tools/go/analysis/analysistest,
// reduced to what the sunmap-lint analyzers need.
//
// Fixture packages live under the analyzer's testdata directory. They
// are real, compiling packages (the go command only hides testdata from
// `./...` wildcards, not from explicit arguments), so fixtures may
// import the repo's internal packages — limiterdiscipline's fixtures
// call the real pool.Limiter.
//
// Expectations are trailing comments on the offending line:
//
//	l.Acquire(ctx) // want "blocking"
//
// The string is a regular expression matched against the diagnostic
// message. Several `// want "a" "b"` patterns on one line expect several
// diagnostics. A fixture with no want comments asserts the analyzer is
// silent (the "clean" fixture of each pair).
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"sunmap/internal/analysis"
)

// wantRe extracts the quoted patterns of one want comment. Patterns are
// double-quoted Go strings or backquoted raw strings (handy for regexps
// full of backslashes).
var wantRe = regexp.MustCompile("//\\s*want((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture package at dir (relative to the test's working
// directory, e.g. "testdata/bad") and applies the analyzer, failing the
// test on any mismatch between diagnostics and want comments. The
// analyzer's Match filter is bypassed: fixtures always run.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkgs, err := analysis.Load(".", "./"+strings.TrimPrefix(dir, "./"))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: loaded %d packages, want 1", dir, len(pkgs))
	}
	pkg := pkgs[0]

	expects := collectWants(t, pkg)

	var unexpected []string
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
	}
	pass.Report = func(d analysis.Diagnostic) {
		pos := pkg.Fset.Position(d.Pos)
		for _, e := range expects {
			if e.matched || e.file != pos.Filename || e.line != pos.Line {
				continue
			}
			if e.pattern.MatchString(d.Message) {
				e.matched = true
				return
			}
		}
		unexpected = append(unexpected, fmt.Sprintf("%s: unexpected diagnostic: %s", pos, d.Message))
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s on fixture %s: %v", a.Name, dir, err)
	}

	for _, msg := range unexpected {
		t.Error(msg)
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.pattern)
		}
	}
}

// collectWants parses the fixture's want comments.
func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var expects []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range splitQuoted(m[1]) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					expects = append(expects, &expectation{
						file:    pos.Filename,
						line:    pos.Line,
						pattern: re,
					})
				}
			}
		}
	}
	return expects
}

// splitQuoted splits the quoted patterns of a want comment tail like
// ` "a" `+"`b`"+` into their quoted forms.
func splitQuoted(s string) []string {
	var out []string
	for {
		i := strings.IndexAny(s, "\"`")
		if i < 0 {
			return out
		}
		s = s[i:]
		if s[0] == '`' {
			j := strings.IndexByte(s[1:], '`')
			if j < 0 {
				return out
			}
			out = append(out, s[:j+2])
			s = s[j+2:]
			continue
		}
		// Scan to the closing double quote, honoring escapes.
		closed := false
		for j := 1; j < len(s); j++ {
			if s[j] == '\\' {
				j++
				continue
			}
			if s[j] == '"' {
				out = append(out, s[:j+1])
				s = s[j+1:]
				closed = true
				break
			}
		}
		if !closed {
			return out
		}
	}
}
