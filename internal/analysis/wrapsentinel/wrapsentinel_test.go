package wrapsentinel_test

import (
	"strings"
	"testing"

	"sunmap/internal/analysis"
	"sunmap/internal/analysis/analysistest"
	"sunmap/internal/analysis/wrapsentinel"
)

// boundary scopes a fixture package into the Session-boundary set for
// the duration of one test, so the minting rules fire on it.
func boundary(t *testing.T, path string) {
	t.Helper()
	wrapsentinel.BoundaryPackages[path] = true
	t.Cleanup(func() { delete(wrapsentinel.BoundaryPackages, path) })
}

func TestBad(t *testing.T) {
	boundary(t, "sunmap/internal/analysis/wrapsentinel/testdata/bad")
	analysistest.Run(t, "testdata/bad", wrapsentinel.Analyzer)
}

func TestClean(t *testing.T) {
	boundary(t, "sunmap/internal/analysis/wrapsentinel/testdata/clean")
	analysistest.Run(t, "testdata/clean", wrapsentinel.Analyzer)
}

// TestFlattenOutsideBoundary pins that the %v/%s rule is module-wide
// even where the minting rules are not: the bad fixture's flatten sites
// still report without boundary scoping, and its minting sites do not.
func TestFlattenOutsideBoundary(t *testing.T) {
	diags, err := analysis.Run(".", []*analysis.Analyzer{wrapsentinel.Analyzer}, "./testdata/bad")
	if err != nil {
		t.Fatal(err)
	}
	flatten := 0
	for _, d := range diags {
		if strings.Contains(d.Message, "flattens the error chain") {
			flatten++
		} else {
			t.Errorf("unexpected non-flatten diagnostic outside boundary: %s", d.Message)
		}
	}
	if flatten != 3 {
		t.Errorf("got %d flatten diagnostics outside boundary, want 3", flatten)
	}
}
