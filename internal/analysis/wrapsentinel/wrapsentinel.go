// Package wrapsentinel keeps the error chain intact from the engine's
// guts to the Session wire format. The serve layer classifies errors
// with errors.Is against the sentinel set (ErrBadRequest, ErrInfeasible,
// ErrUnknownApp, ErrUnknownTopology) to pick the wire error_kind; both
// halves of that contract are easy to break silently:
//
//  1. module-wide, a fmt.Errorf that formats an error-typed argument
//     with any verb but %w (typically %v or %s) flattens the chain —
//     errors.Is stops seeing the sentinel and the wire kind degrades to
//     "internal". Flagged everywhere.
//  2. in the Session boundary package (the root sunmap package — see
//     BoundaryPackages), every error minted inside a function must be
//     classifiable: fmt.Errorf must wrap something with %w (a sentinel
//     or the underlying cause), and bare errors.New is reserved for the
//     package-level sentinel declarations themselves.
package wrapsentinel

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strconv"
	"strings"

	"sunmap/internal/analysis"
)

// BoundaryPackages are the packages whose errors cross the Session
// boundary and therefore must be classifiable to a sentinel. Exported so
// the fixture tests can scope their testdata packages in.
var BoundaryPackages = map[string]bool{
	"sunmap": true,
}

// Analyzer enforces %w wrapping and sentinel classification.
var Analyzer = &analysis.Analyzer{
	Name: "wrapsentinel",
	Doc: "enforce %w error wrapping and sentinel classification at the Session boundary\n\n" +
		"fmt.Errorf must not flatten an error with %v/%s, and errors minted in\n" +
		"the root package must wrap a sentinel or a cause with %w so the wire\n" +
		"error_kind survives.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	boundary := BoundaryPackages[pass.Pkg.Path()]
	for _, f := range pass.Files {
		// Package-level var blocks may errors.New: that is where the
		// sentinels themselves are declared.
		funcBodies := make(map[*ast.FuncDecl]bool)
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				funcBodies[fn] = true
			}
		}
		for fn := range funcBodies {
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkCall(pass, call, boundary)
				return true
			})
		}
	}
	return nil
}

// checkCall applies both rules to one call expression.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, boundary bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return
	}
	switch {
	case obj.Pkg().Path() == "fmt" && obj.Name() == "Errorf":
		checkErrorf(pass, call, boundary)
	case boundary && obj.Pkg().Path() == "errors" && obj.Name() == "New":
		pass.Reportf(call.Pos(),
			"errors.New inside a Session-boundary function is unclassifiable; wrap a sentinel (ErrBadRequest, ErrInfeasible, ...) with fmt.Errorf and %%w")
	}
}

// checkErrorf parses the constant format string and checks every verb
// against its argument's type.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr, boundary bool) {
	if len(call.Args) == 0 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // dynamic format: nothing to check statically
	}
	format := constant.StringVal(tv.Value)
	wraps, flattened := false, false
	for _, v := range parseVerbs(format) {
		if v.letter == 'w' {
			wraps = true
			continue
		}
		argIdx := v.arg + 1 // args[0] is the format
		if argIdx >= len(call.Args) {
			continue // vet's argument-count domain, not ours
		}
		arg := call.Args[argIdx]
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.Type == nil || !implementsError(at.Type) {
			continue
		}
		flattened = true
		pass.Reportf(arg.Pos(),
			"%%%c flattens the error chain (errors.Is loses the sentinel); wrap with %%w", v.letter)
	}
	// A flatten diagnostic already says "use %w"; don't double-report
	// the same call for wrapping nothing.
	if boundary && !wraps && !flattened {
		pass.Reportf(call.Pos(),
			"error minted at the Session boundary wraps nothing; chain a sentinel (ErrBadRequest, ErrInfeasible, ...) or the cause with %%w")
	}
}

// verb is one formatting directive: its verb letter and the flat index
// of the operand it consumes (0-based over the operands after the
// format string).
type verb struct {
	letter byte
	arg    int
}

// parseVerbs walks a fmt format string, tracking operand consumption
// including * width/precision and [n] explicit indexes.
func parseVerbs(format string) []verb {
	var verbs []verb
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		// Flags, width, precision, and explicit argument indexes.
		for i < len(format) {
			c := format[i]
			if c == '*' {
				arg++
				i++
				continue
			}
			if c == '[' {
				j := strings.IndexByte(format[i:], ']')
				if j < 0 {
					return verbs
				}
				if n, err := strconv.Atoi(format[i+1 : i+j]); err == nil && n > 0 {
					arg = n - 1
				}
				i += j + 1
				continue
			}
			if strings.IndexByte("+-# .0123456789", c) >= 0 {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		verbs = append(verbs, verb{letter: format[i], arg: arg})
		arg++
	}
	return verbs
}

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errIface)
}
