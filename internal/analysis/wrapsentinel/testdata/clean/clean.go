// Package clean keeps every error chain intact.
package clean

import (
	"errors"
	"fmt"
)

// ErrNotFound is the package's sentinel.
var ErrNotFound = errors.New("not found")

// Wrap chains the cause with %w.
func Wrap(err error) error {
	return fmt.Errorf("lookup failed: %w", err)
}

// Classify chains a sentinel and the cause — both survive errors.Is.
func Classify(err error) error {
	return fmt.Errorf("%w: %w", ErrNotFound, err)
}

// Detail mixes non-error operands freely: %d and %q never carry chains.
func Detail(name string, n int, err error) error {
	return fmt.Errorf("scanning %q (attempt %d): %w", name, n, err)
}

// Message formats the rendered text, not the error value.
func Message(err error) string {
	return fmt.Sprintf("lookup failed: %v", err)
}
