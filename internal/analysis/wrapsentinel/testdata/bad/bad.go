// Package bad breaks the error chain every way wrapsentinel knows.
package bad

import (
	"errors"
	"fmt"
)

// ErrNotFound is a sentinel: package-level errors.New is the one legal
// minting site.
var ErrNotFound = errors.New("not found")

// Flatten formats the cause with %v: errors.Is loses the sentinel.
func Flatten(err error) error {
	return fmt.Errorf("lookup failed: %v", err) // want `%v flattens the error chain`
}

// Stringify is the same bug with %s.
func Stringify(err error) error {
	return fmt.Errorf("lookup failed: %s", err) // want `%s flattens the error chain`
}

// Mint creates an unclassifiable boundary error with errors.New.
func Mint() error {
	return errors.New("mystery failure") // want `errors\.New inside a Session-boundary function is unclassifiable`
}

// MintErrorf creates an unclassifiable boundary error with fmt.Errorf.
func MintErrorf(n int) error {
	return fmt.Errorf("bad count %d", n) // want `error minted at the Session boundary wraps nothing`
}

// Mixed wraps the sentinel but still flattens the cause.
func Mixed(err error) error {
	return fmt.Errorf("%w: because %v", ErrNotFound, err) // want `%v flattens the error chain`
}
