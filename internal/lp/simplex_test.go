package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p Problem) Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	return s
}

func TestBasicMaximizationAsMinimization(t *testing.T) {
	// max x+y s.t. x+y<=4, x<=2  ->  min -x-y; optimum 4 at (2,2).
	p := Problem{NumVars: 2, Objective: []float64{-1, -1}}
	p.AddConstraint([]float64{1, 1}, LE, 4)
	p.AddConstraint([]float64{1, 0}, LE, 2)
	s := solveOK(t, p)
	if math.Abs(s.Objective-(-4)) > 1e-6 {
		t.Errorf("objective = %g, want -4", s.Objective)
	}
	if math.Abs(s.X[0]+s.X[1]-4) > 1e-6 {
		t.Errorf("x = %v, want on x+y=4", s.X)
	}
}

func TestGEAndEQConstraints(t *testing.T) {
	// min 2x+3y s.t. x+y = 10, x >= 4  -> x=10? No: y free down to 0;
	// best is y=0? x+y=10 forces y=10-x; cost 2x+3(10-x) = 30-x, so push
	// x up to 10: x=10, y=0, cost 20.
	p := Problem{NumVars: 2, Objective: []float64{2, 3}}
	p.AddConstraint([]float64{1, 1}, EQ, 10)
	p.AddConstraint([]float64{1, 0}, GE, 4)
	s := solveOK(t, p)
	if math.Abs(s.Objective-20) > 1e-6 {
		t.Errorf("objective = %g, want 20 (x=%v)", s.Objective, s.X)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x <= -3  is  x >= 3; min x -> 3.
	p := Problem{NumVars: 1, Objective: []float64{1}}
	p.AddConstraint([]float64{-1}, LE, -3)
	s := solveOK(t, p)
	if math.Abs(s.X[0]-3) > 1e-6 {
		t.Errorf("x = %g, want 3", s.X[0])
	}
}

func TestInfeasible(t *testing.T) {
	p := Problem{NumVars: 1, Objective: []float64{1}}
	p.AddConstraint([]float64{1}, GE, 5)
	p.AddConstraint([]float64{1}, LE, 2)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := Problem{NumVars: 2, Objective: []float64{-1, 0}}
	p.AddConstraint([]float64{0, 1}, LE, 5)
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
}

func TestUnboundedWithoutConstraints(t *testing.T) {
	p := Problem{NumVars: 1, Objective: []float64{-1}}
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
	p2 := Problem{NumVars: 1, Objective: []float64{1}}
	s2, err := Solve(p2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Status != Optimal || s2.X[0] != 0 {
		t.Errorf("trivial problem: %+v", s2)
	}
}

func TestDegenerateDoesNotCycle(t *testing.T) {
	// A classically degenerate LP (Beale-like); Bland's rule must
	// terminate at the optimum.
	p := Problem{NumVars: 4, Objective: []float64{-0.75, 150, -0.02, 6}}
	p.AddConstraint([]float64{0.25, -60, -0.04, 9}, LE, 0)
	p.AddConstraint([]float64{0.5, -90, -0.02, 3}, LE, 0)
	p.AddConstraint([]float64{0, 0, 1, 0}, LE, 1)
	s := solveOK(t, p)
	if math.Abs(s.Objective-(-0.05)) > 1e-6 {
		t.Errorf("objective = %g, want -0.05", s.Objective)
	}
}

func TestRedundantEquality(t *testing.T) {
	// Duplicated equality rows leave a zero-level artificial; solver must
	// drop the redundant row and still optimize.
	p := Problem{NumVars: 2, Objective: []float64{1, 1}}
	p.AddConstraint([]float64{1, 1}, EQ, 2)
	p.AddConstraint([]float64{2, 2}, EQ, 4)
	s := solveOK(t, p)
	if math.Abs(s.Objective-2) > 1e-6 {
		t.Errorf("objective = %g, want 2", s.Objective)
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := Solve(Problem{NumVars: 0}); err == nil {
		t.Error("zero variables accepted")
	}
	p := Problem{NumVars: 1, Objective: []float64{1, 2}}
	if _, err := Solve(p); err == nil {
		t.Error("oversized objective accepted")
	}
	p2 := Problem{NumVars: 1}
	p2.AddConstraint([]float64{1, 2}, LE, 1)
	if _, err := Solve(p2); err == nil {
		t.Error("oversized constraint accepted")
	}
}

// feasible reports whether x satisfies p within tolerance.
func feasible(p Problem, x []float64) bool {
	for _, xi := range x {
		if xi < -1e-6 {
			return false
		}
	}
	for _, c := range p.Constraints {
		var lhs float64
		for j, v := range c.Coeffs {
			lhs += v * x[j]
		}
		switch c.Rel {
		case LE:
			if lhs > c.RHS+1e-6 {
				return false
			}
		case GE:
			if lhs < c.RHS-1e-6 {
				return false
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > 1e-6 {
				return false
			}
		}
	}
	return true
}

// bruteForce2D solves a 2-variable LP by enumerating candidate vertices:
// intersections of all constraint boundary pairs (including the axes).
func bruteForce2D(p Problem) (float64, bool) {
	type line struct{ a, b, c float64 } // a x + b y = c
	lines := []line{{1, 0, 0}, {0, 1, 0}}
	for _, cn := range p.Constraints {
		var a, b float64
		if len(cn.Coeffs) > 0 {
			a = cn.Coeffs[0]
		}
		if len(cn.Coeffs) > 1 {
			b = cn.Coeffs[1]
		}
		lines = append(lines, line{a, b, cn.RHS})
	}
	best := math.Inf(1)
	found := false
	for i := 0; i < len(lines); i++ {
		for j := i + 1; j < len(lines); j++ {
			det := lines[i].a*lines[j].b - lines[j].a*lines[i].b
			if math.Abs(det) < 1e-9 {
				continue
			}
			x := (lines[i].c*lines[j].b - lines[j].c*lines[i].b) / det
			y := (lines[i].a*lines[j].c - lines[j].a*lines[i].c) / det
			if !feasible(p, []float64{x, y}) {
				continue
			}
			found = true
			var obj float64
			if len(p.Objective) > 0 {
				obj += p.Objective[0] * x
			}
			if len(p.Objective) > 1 {
				obj += p.Objective[1] * y
			}
			if obj < best {
				best = obj
			}
		}
	}
	return best, found
}

// Property: on random bounded-feasible 2-variable LPs the simplex optimum
// matches brute-force vertex enumeration and the returned point is
// feasible.
func TestSimplexMatchesBruteForce2D(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Problem{
			NumVars:   2,
			Objective: []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2},
		}
		// Bounding box keeps every instance bounded.
		p.AddConstraint([]float64{1, 0}, LE, 5+rng.Float64()*5)
		p.AddConstraint([]float64{0, 1}, LE, 5+rng.Float64()*5)
		for k := 0; k < 3; k++ {
			a := rng.Float64()*4 - 2
			b := rng.Float64()*4 - 2
			rhs := rng.Float64() * 10
			if rng.Intn(2) == 0 {
				p.AddConstraint([]float64{a, b}, LE, rhs)
			} else {
				p.AddConstraint([]float64{a, b}, GE, -rhs)
			}
		}
		s, err := Solve(p)
		if err != nil {
			return false
		}
		want, ok := bruteForce2D(p)
		if s.Status == Infeasible {
			return !ok
		}
		if s.Status != Optimal {
			return false // bounded by the box, must be optimal
		}
		if !feasible(p, s.X) {
			return false
		}
		return math.Abs(s.Objective-want) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDualMatchesTwoPhase is the regression gate for the dual-simplex
// fast path: on random inequality-only problems with non-negative
// objectives (the floorplanner's shape, where solveDual is live) the dual
// and two-phase solvers must agree on status and — optima being unique in
// value even when vertices are not — on the objective. Shapes mimic the
// floorplanner's rows: lower/upper bounds, tangent-style couplings and
// covering constraints, with degenerate ties common.
func TestDualMatchesTwoPhase(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		p := Problem{NumVars: n, Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = float64(rng.Intn(3)) // zeros included
		}
		rows := 2 + rng.Intn(12)
		for k := 0; k < rows; k++ {
			coeffs := make([]float64, n)
			nz := 1 + rng.Intn(3)
			for t := 0; t < nz; t++ {
				coeffs[rng.Intn(n)] = float64(rng.Intn(5) - 2)
			}
			rhs := float64(rng.Intn(7) - 1)
			if rng.Intn(2) == 0 {
				p.AddConstraint(coeffs, LE, rhs)
			} else {
				p.AddConstraint(coeffs, GE, rhs)
			}
		}
		dual, ok := NewSolver().solveDual(p)
		if !ok {
			return true // fell back; nothing to compare
		}
		ref, err := solveTwoPhase(p)
		if err != nil {
			return false
		}
		if dual.Status != ref.Status {
			return false
		}
		if dual.Status != Optimal {
			return true
		}
		if !feasible(p, dual.X) {
			return false
		}
		return math.Abs(dual.Objective-ref.Objective) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
