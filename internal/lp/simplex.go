// Package lp provides a small dense linear-programming solver used by
// SUNMAP's LP-based floorplanner (Section 5 of the paper, after [21]).
// Problems are stated as minimization over non-negative variables with
// <=, >= or = constraints. Inequality-only problems with a non-negative
// objective — the floorplanner's shape — are solved by dual simplex from
// the all-slack basis (no phase-1 artificials); everything else runs
// two-phase primal simplex with a Dantzig entering rule that falls back
// to Bland's anti-cycling rule under degeneracy. The solver targets the
// floorplanner's scale (tens to a few hundred variables); it is exact up
// to floating-point tolerance, not a high-performance general solver.
package lp

import (
	"fmt"
	"math"
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // <=
	GE            // >=
	EQ            // =
)

// Constraint is one row: Coeffs · x  Rel  RHS. Coeffs may be shorter than
// the variable count; missing entries are zero.
type Constraint struct {
	Coeffs []float64
	Rel    Rel
	RHS    float64
}

// Problem is minimize Objective · x subject to Constraints, x >= 0.
type Problem struct {
	// NumVars is the number of decision variables.
	NumVars int
	// Objective holds the cost coefficients (length NumVars; shorter
	// slices are zero-padded).
	Objective []float64
	// Constraints are the rows.
	Constraints []Constraint
}

// AddConstraint appends a row and returns its index.
func (p *Problem) AddConstraint(coeffs []float64, rel Rel, rhs float64) int {
	p.Constraints = append(p.Constraints, Constraint{Coeffs: coeffs, Rel: rel, RHS: rhs})
	return len(p.Constraints) - 1
}

// Status reports the outcome of Solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
}

const eps = 1e-9

// Solver holds reusable dual-simplex workspace: the tableau rows live in
// one flat arena, and the basis, reduced-cost and solution vectors are
// recycled across Solve calls. One Solver serves one goroutine; the
// floorplanner keeps one per mapping Scratch so the per-candidate (and
// final) LP solves perform no steady-state allocations. Solutions
// returned by a Solver alias its scratch (see Solver.Solve).
type Solver struct {
	arena []float64
	tab   [][]float64
	basis []int
	z     []float64
	x     []float64
}

// NewSolver returns a Solver with empty workspace; buffers grow on first
// use.
func NewSolver() *Solver { return &Solver{} }

// Solve minimizes p. Inequality-only problems with a non-negative
// objective — the floorplanner's shape — start from the all-slack basis
// and run dual simplex, which needs no phase-1 artificials at all; every
// other problem (or a dual run hitting its safety cap) takes the general
// two-phase primal path.
//
// The returned Solution's X aliases the Solver's scratch and is valid
// only until the next Solve call on the same Solver; callers keeping it
// must copy it out.
func (s *Solver) Solve(p Problem) (Solution, error) {
	if p.NumVars <= 0 {
		return Solution{}, fmt.Errorf("lp: no variables")
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) > p.NumVars {
			return Solution{}, fmt.Errorf("lp: constraint %d has %d coefficients for %d variables",
				i, len(c.Coeffs), p.NumVars)
		}
	}
	if len(p.Objective) > p.NumVars {
		return Solution{}, fmt.Errorf("lp: objective has %d coefficients for %d variables",
			len(p.Objective), p.NumVars)
	}
	if sol, ok := s.solveDual(p); ok {
		return sol, nil
	}
	return solveTwoPhase(p)
}

// Solve minimizes p with a throwaway Solver; the Solution owns its
// memory. Callers solving many problems should hold a Solver instead.
func Solve(p Problem) (Solution, error) {
	return NewSolver().Solve(p)
}

// rows carves m zeroed rows of the given width out of the Solver's
// arena, growing it only when the problem outgrows every previous one.
func (s *Solver) rows(m, width int) [][]float64 {
	need := m * width
	if cap(s.arena) < need {
		s.arena = make([]float64, need)
	}
	s.arena = s.arena[:need]
	for i := range s.arena {
		s.arena[i] = 0
	}
	if cap(s.tab) < m {
		s.tab = make([][]float64, m)
	}
	s.tab = s.tab[:m]
	for i := 0; i < m; i++ {
		s.tab[i] = s.arena[i*width : (i+1)*width]
	}
	return s.tab
}

func resizeInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func resizeFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// solveDual runs dual simplex from the all-slack basis. It applies only
// when every constraint is an inequality and every objective coefficient
// is non-negative (so the slack basis is dual-feasible and the problem can
// never be unbounded below). Returns ok=false when the problem does not
// qualify or the iteration cap trips, in which case the caller falls back
// to the two-phase primal solver.
func (s *Solver) solveDual(p Problem) (Solution, bool) {
	for _, c := range p.Objective {
		if c < 0 {
			return Solution{}, false
		}
	}
	for _, c := range p.Constraints {
		if c.Rel == EQ {
			return Solution{}, false
		}
	}
	m := len(p.Constraints)
	n := p.NumVars
	if m == 0 {
		s.x = resizeFloats(s.x, n)
		return Solution{Status: Optimal, X: s.x}, true
	}
	total := n + m
	tab := s.rows(m, total+1)
	basis := resizeInts(s.basis, m)
	s.basis = basis
	for i, c := range p.Constraints {
		row := tab[i]
		sign := 1.0
		if c.Rel == GE { // a·x >= b  ⇔  -a·x <= -b
			sign = -1
		}
		for j, v := range c.Coeffs {
			row[j] = sign * v
		}
		row[total] = sign * c.RHS
		row[n+i] = 1
		basis[i] = n + i
	}
	// Reduced costs start at the objective itself (all basis costs are 0)
	// and stay non-negative throughout — the dual-feasibility invariant.
	z := resizeFloats(s.z, total+1)
	s.z = z
	copy(z, p.Objective)
	for iter := 0; ; iter++ {
		if iter > 50000 {
			return Solution{}, false // stalled; let two-phase decide
		}
		// Leaving row: most negative RHS (most violated constraint),
		// ties toward the smallest basis index for determinism.
		leave := -1
		worst := -eps
		for i := 0; i < m; i++ {
			if r := tab[i][total]; r < worst-eps || (r < worst+eps && r < -eps && (leave == -1 || basis[i] < basis[leave])) {
				worst = r
				leave = i
			}
		}
		if leave == -1 {
			// Primal feasible and still dual feasible: optimal.
			x := resizeFloats(s.x, n)
			s.x = x
			for i, b := range basis {
				if b < n {
					x[b] = tab[i][total]
				}
			}
			var objVal float64
			for j := 0; j < n && j < len(p.Objective); j++ {
				objVal += p.Objective[j] * x[j]
			}
			return Solution{Status: Optimal, X: x, Objective: objVal}, true
		}
		// Entering column: dual ratio test over negative row entries,
		// ties toward the smallest column index.
		enter := -1
		best := math.Inf(1)
		row := tab[leave]
		for j := 0; j < total; j++ {
			if a := row[j]; a < -eps {
				if ratio := z[j] / -a; ratio < best-eps {
					best = ratio
					enter = j
				}
			}
		}
		if enter == -1 {
			// The violated row has no negative coefficient: infeasible.
			return Solution{Status: Infeasible}, true
		}
		pivotWithZ(tab, basis, z, leave, enter)
	}
}

// solveTwoPhase is the general two-phase primal simplex.
func solveTwoPhase(p Problem) (Solution, error) {

	m := len(p.Constraints)
	n := p.NumVars

	// Column layout: [0,n) decision vars, then one slack/surplus column
	// per inequality, then one artificial per GE/EQ row.
	numSlack := 0
	for _, c := range p.Constraints {
		if c.Rel != EQ {
			numSlack++
		}
	}
	numArt := 0
	for _, c := range p.Constraints {
		rhsNeg := c.RHS < 0
		rel := c.Rel
		if rhsNeg { // row will be negated below, flipping the relation
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		if rel != LE {
			numArt++
		}
	}
	total := n + numSlack + numArt

	// Build tableau rows; RHS in last column.
	tab := make([][]float64, m)
	basis := make([]int, m)
	slackCol := n
	artCol := n + numSlack
	artStart := artCol
	for i, c := range p.Constraints {
		row := make([]float64, total+1)
		sign := 1.0
		rel := c.Rel
		if c.RHS < 0 {
			sign = -1
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		for j, v := range c.Coeffs {
			row[j] = sign * v
		}
		row[total] = sign * c.RHS
		switch rel {
		case LE:
			row[slackCol] = 1
			basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			basis[i] = artCol
			artCol++
		case EQ:
			if c.Rel != EQ {
				// An inequality consumed its slack column above even
				// when negation turned it into GE handled there; EQ
				// never allocates slack.
				return Solution{}, fmt.Errorf("lp: internal relation bookkeeping error")
			}
			row[artCol] = 1
			basis[i] = artCol
			artCol++
		}
		tab[i] = row
	}

	// Phase 1: minimize the sum of artificials.
	if numArt > 0 {
		cost := make([]float64, total)
		for j := artStart; j < total; j++ {
			cost[j] = 1
		}
		obj, status := simplex(tab, basis, cost, artStart)
		if status == Unbounded {
			return Solution{}, fmt.Errorf("lp: phase 1 unbounded (internal error)")
		}
		if obj > 1e-7 {
			return Solution{Status: Infeasible}, nil
		}
		// Pivot artificials out of the basis where possible; rows where
		// no real column has a nonzero entry are redundant and dropped.
		for i := 0; i < len(tab); i++ {
			if basis[i] < artStart {
				continue
			}
			pivoted := false
			for j := 0; j < artStart; j++ {
				if math.Abs(tab[i][j]) > 1e-7 {
					pivot(tab, basis, i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				tab = append(tab[:i], tab[i+1:]...)
				basis = append(basis[:i], basis[i+1:]...)
				i--
			}
		}
	}

	// With every row gone (or none to begin with), x = 0 is the only
	// basic point; the problem is unbounded iff some cost is negative.
	if len(tab) == 0 {
		for _, c := range p.Objective {
			if c < -eps {
				return Solution{Status: Unbounded}, nil
			}
		}
		return Solution{Status: Optimal, X: make([]float64, n)}, nil
	}

	// Drop the artificial columns before phase 2: they are barred from
	// entering and every basis index is now below artStart, so their
	// entries are dead weight every pivot would still stream over. Moving
	// the RHS down into the first artificial column changes no arithmetic
	// phase 2 performs. With the floorplanner's many >=/= rows this cuts
	// each tableau row by a third.
	if numArt > 0 {
		for i := range tab {
			tab[i][artStart] = tab[i][total]
			tab[i] = tab[i][:artStart+1]
		}
		total = artStart
	}

	// Phase 2: original objective, artificial columns barred.
	cost := make([]float64, total)
	copy(cost, p.Objective)
	_, status := simplex(tab, basis, cost, artStart)
	if status == Unbounded {
		return Solution{Status: Unbounded}, nil
	}
	x := make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = tab[i][len(tab[i])-1]
		}
	}
	var objVal float64
	for j := 0; j < n && j < len(p.Objective); j++ {
		objVal += p.Objective[j] * x[j]
	}
	return Solution{Status: Optimal, X: x, Objective: objVal}, nil
}

// simplex minimizes cost over the tableau in place. Columns with index >=
// barFrom never enter the basis (used to bar artificials in phase 2).
// It returns the final objective value and Optimal or Unbounded.
func simplex(tab [][]float64, basis []int, cost []float64, barFrom int) (float64, Status) {
	m := len(tab)
	if m == 0 {
		return 0, Optimal
	}
	total := len(tab[0]) - 1
	// Reduced-cost row: z_j = c_j - sum over basic rows of c_B * a_ij.
	z := make([]float64, total+1)
	copy(z, cost)
	for i := 0; i < m; i++ {
		cb := 0.0
		if basis[i] < len(cost) {
			cb = cost[basis[i]]
		}
		if cb == 0 {
			continue
		}
		for j := 0; j <= total; j++ {
			z[j] -= cb * tab[i][j]
		}
	}
	// Entering rule: Dantzig (most negative reduced cost) converges in far
	// fewer pivots than Bland on the floorplanner's LPs, but alone it can
	// cycle on degenerate bases. A streak of degenerate (zero-progress)
	// pivots therefore flips the search to Bland's rule, whose
	// anti-cycling guarantee then ensures termination.
	useBland := false
	degenerate := 0
	for iter := 0; ; iter++ {
		if iter > 200000 {
			// Termination belt-and-braces against NaN-poisoned tableaus.
			return -z[total], Optimal
		}
		enter := -1
		if useBland {
			for j := 0; j < barFrom; j++ {
				if z[j] < -eps {
					enter = j
					break
				}
			}
		} else {
			most := -eps
			for j := 0; j < barFrom; j++ {
				if z[j] < most {
					most = z[j]
					enter = j
				}
			}
		}
		if enter == -1 {
			return -z[total], Optimal
		}
		// Ratio test; Bland tie-break on smallest basis variable index.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			a := tab[i][enter]
			if a > eps {
				ratio := tab[i][total] / a
				if ratio < best-eps || (ratio < best+eps && (leave == -1 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return 0, Unbounded
		}
		if best <= eps {
			if degenerate++; degenerate > 256 {
				useBland = true
			}
		} else {
			degenerate = 0
		}
		pivotWithZ(tab, basis, z, leave, enter)
	}
}

// pivot performs a basis change on row r, column c, without an objective
// row (phase-1 cleanup only).
func pivot(tab [][]float64, basis []int, r, c int) {
	norm := tab[r][c]
	for j := range tab[r] {
		tab[r][j] /= norm
	}
	for i := range tab {
		if i == r {
			continue
		}
		f := tab[i][c]
		if f == 0 {
			continue
		}
		for j := range tab[i] {
			tab[i][j] -= f * tab[r][j]
		}
	}
	basis[r] = c
}

// pivotWithZ performs a basis change updating the reduced-cost row too.
func pivotWithZ(tab [][]float64, basis []int, z []float64, r, c int) {
	pivot(tab, basis, r, c)
	f := z[c]
	if f != 0 {
		for j := range z {
			z[j] -= f * tab[r][j]
		}
	}
}
