package topology

import "fmt"

// butterflyTopology is a k-ary n-fly (Fig. 2b): n stages of k^(n-1)
// switches with radix k. Terminal t injects at stage-0 switch t/k and
// ejects at stage-(n-1) switch t/k; there is exactly one path between any
// terminal pair (no path diversity), the property behind the MPEG4
// infeasibility result of Section 6.1.
//
// Stage-i switch s connects to the k stage-(i+1) switches whose index
// equals s with the base-k digit at position n-2-i replaced by each of the
// k possible values. For the 2-ary 3-fly this reproduces Fig. 2(b): stage-1
// switch 0 reaches switches 0 and 2 of stage 2 (maximum distance halves
// with each stage).
type butterflyTopology struct {
	*base
	k, n     int // radix and stage count
	perStage int // switches per stage = k^(n-1)
}

// NewButterfly constructs a k-ary n-fly with k >= 2 and n >= 2.
func NewButterfly(k, n int) (Topology, error) {
	if k < 2 || n < 2 {
		return nil, fmt.Errorf("topology: invalid butterfly %d-ary %d-fly", k, n)
	}
	perStage := 1
	for i := 0; i < n-1; i++ {
		perStage *= k
	}
	numTerm := perStage * k
	if numTerm > 4096 {
		return nil, fmt.Errorf("topology: butterfly %d-ary %d-fly too large (%d terminals)", k, n, numTerm)
	}
	b := &butterflyTopology{
		base:     newBase(fmt.Sprintf("butterfly-%dary%dfly", k, n), Butterfly, perStage*n, numTerm),
		k:        k,
		n:        n,
		perStage: perStage,
	}
	// Router index: stage*perStage + switchIndex.
	for stage := 0; stage < n-1; stage++ {
		digit := n - 2 - stage // base-k digit changed between these stages
		div := 1
		for i := 0; i < digit; i++ {
			div *= k
		}
		for s := 0; s < perStage; s++ {
			u := stage*b.perStage + s
			rest := s - (s/div%k)*div // s with the digit zeroed
			for val := 0; val < k; val++ {
				v := (stage+1)*perStage + rest + val*div
				b.addLink(u, v)
			}
		}
	}
	for t := 0; t < numTerm; t++ {
		b.inject[t] = t / k               // stage-0 switch
		b.eject[t] = (n-1)*perStage + t/k // last-stage switch
	}
	// Placement: stages occupy columns 1..n; terminals alternate between
	// column 0 (even) and column n+1 (odd), spread vertically.
	scaleY := 1.0
	if perStage > 1 {
		scaleY = float64(numTerm/2) / float64(perStage)
	}
	for stage := 0; stage < n; stage++ {
		for s := 0; s < perStage; s++ {
			b.pos[stage*perStage+s] = [2]float64{float64(stage + 1), float64(s) * scaleY}
		}
	}
	for t := 0; t < numTerm; t++ {
		col := 0.0
		if t%2 == 1 {
			col = float64(n + 1)
		}
		b.tpos[t] = [2]float64{col, float64(t / 2)}
	}
	return b, nil
}

// Quadrant returns the switches on the unique source→destination path:
// quadrant formation is "trivial" for butterflies (Section 4.3).
func (b *butterflyTopology) Quadrant(src, dst int) []bool {
	mask := make([]bool, b.NumRouters())
	srcSwitch := src / b.k
	dstSwitch := dst / b.k
	// At stage i the path switch takes its digit at position p from the
	// destination switch when p >= n-1-i, from the source otherwise.
	for stage := 0; stage < b.n; stage++ {
		s := 0
		div := 1
		for p := 0; p < b.n-1; p++ {
			var digit int
			if p >= b.n-1-stage {
				digit = dstSwitch / div % b.k
			} else {
				digit = srcSwitch / div % b.k
			}
			s += digit * div
			div *= b.k
		}
		mask[stage*b.perStage+s] = true
	}
	return mask
}

// Radix returns k and Stages returns n; the physical models and the
// generator use them to size switches.
func (b *butterflyTopology) Radix() int  { return b.k }
func (b *butterflyTopology) Stages() int { return b.n }
