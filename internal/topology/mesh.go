package topology

import "fmt"

// meshTopology is a rows x cols 2-D mesh (Fig. 1a). Router (r,c) has index
// r*cols+c; every router is a terminal.
type meshTopology struct {
	*base
	rows, cols int
}

// NewMesh constructs a rows x cols mesh. Both dimensions must be at least 1
// and the mesh must contain at least 2 routers.
func NewMesh(rows, cols int) (Topology, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("topology: invalid mesh %dx%d", rows, cols)
	}
	m := &meshTopology{
		base: newBase(fmt.Sprintf("mesh-%dx%d", rows, cols), Mesh, rows*cols, rows*cols),
		rows: rows,
		cols: cols,
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			u := r*cols + c
			if c+1 < cols {
				m.addBiLink(u, u+1)
			}
			if r+1 < rows {
				m.addBiLink(u, u+cols)
			}
			m.inject[u] = u
			m.eject[u] = u
			m.pos[u] = [2]float64{float64(c), float64(r)}
			m.tpos[u] = m.pos[u]
		}
	}
	return m, nil
}

// Quadrant returns the bounding box spanned by the source and destination
// rows and columns — the shaded region of Fig. 3(b).
func (m *meshTopology) Quadrant(src, dst int) []bool {
	sr, sc := src/m.cols, src%m.cols
	dr, dc := dst/m.cols, dst%m.cols
	r0, r1 := minInt(sr, dr), maxInt(sr, dr)
	c0, c1 := minInt(sc, dc), maxInt(sc, dc)
	mask := make([]bool, m.NumRouters())
	for r := r0; r <= r1; r++ {
		for c := c0; c <= c1; c++ {
			mask[r*m.cols+c] = true
		}
	}
	return mask
}

// GridDims returns the mesh dimensions; dimension-ordered routing uses it.
func (m *meshTopology) GridDims() (rows, cols int) { return m.rows, m.cols }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
