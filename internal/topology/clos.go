package topology

import "fmt"

// closTopology is a 3-stage Clos network (Fig. 2a): r ingress switches of
// n terminals each, m middle switches, r egress switches. Every ingress
// switch connects to every middle switch and every middle switch to every
// egress switch, giving m disjoint paths between any terminal pair — the
// maximum path diversity exploited in Section 6.2.
type closTopology struct {
	*base
	m, n, r int
}

// NewClos constructs a Clos(m, n, r) with m middle switches, n terminals
// per ingress/egress switch and r ingress (and egress) switches.
func NewClos(m, n, r int) (Topology, error) {
	if m < 1 || n < 1 || r < 1 || n*r < 2 {
		return nil, fmt.Errorf("topology: invalid clos(m=%d,n=%d,r=%d)", m, n, r)
	}
	c := &closTopology{
		base: newBase(fmt.Sprintf("clos-m%dn%dr%d", m, n, r), Clos, 2*r+m, n*r),
		m:    m, n: n, r: r,
	}
	// Router indices: ingress 0..r-1, middle r..r+m-1, egress r+m..2r+m-1.
	for i := 0; i < r; i++ {
		for j := 0; j < m; j++ {
			c.addLink(i, r+j)     // ingress -> middle
			c.addLink(r+j, r+m+i) // middle -> egress
		}
	}
	for t := 0; t < n*r; t++ {
		c.inject[t] = t / n
		c.eject[t] = r + m + t/n
	}
	// Placement: ingress column 1, middle column 2, egress column 3;
	// terminals alternate between columns 0 and 4.
	for i := 0; i < r; i++ {
		c.pos[i] = [2]float64{1, float64(i)}
		c.pos[r+m+i] = [2]float64{3, float64(i)}
	}
	midScale := 1.0
	if m > 1 && r > 1 {
		midScale = float64(r-1) / float64(m-1)
	}
	for j := 0; j < m; j++ {
		c.pos[r+j] = [2]float64{2, float64(j) * midScale}
	}
	for t := 0; t < n*r; t++ {
		col := 0.0
		if t%2 == 1 {
			col = 4
		}
		c.tpos[t] = [2]float64{col, float64(t / 2)}
	}
	return c, nil
}

// Quadrant admits the source ingress switch, every middle switch and the
// destination egress switch: with full inter-stage connectivity every
// minimum path has this shape (Section 4.3 calls the construction trivial).
func (c *closTopology) Quadrant(src, dst int) []bool {
	mask := make([]bool, c.NumRouters())
	mask[src/c.n] = true
	for j := 0; j < c.m; j++ {
		mask[c.r+j] = true
	}
	mask[c.r+c.m+dst/c.n] = true
	return mask
}

// Middles returns the number of middle switches (the path diversity).
func (c *closTopology) Middles() int { return c.m }

// Params returns the (m, n, r) configuration.
func (c *closTopology) Params() (m, n, r int) { return c.m, c.n, c.r }
