package topology

import (
	"fmt"
	"sync"
	"testing"
)

func scopedCustom(t *testing.T, name string) Topology {
	t.Helper()
	topo, err := NewCustom(CustomSpec{
		Name:        name,
		NumRouters:  2,
		BiLinks:     [][2]int{{0, 1}},
		Terminals:   []int{0, 1},
		RouterPos:   [][2]float64{{0, 0}, {2, 0}},
		TerminalPos: [][2]float64{{0, 1}, {2, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestScopeRegisterLookup(t *testing.T) {
	sc := NewScope(0)
	topo := scopedCustom(t, "scoped-a")
	if err := sc.Register(topo); err != nil {
		t.Fatal(err)
	}
	got, ok := sc.Lookup("scoped-a")
	if !ok || got.Name() != "scoped-a" {
		t.Fatalf("Lookup = %v, %v", got, ok)
	}
	if _, ok := sc.Lookup("scoped-missing"); ok {
		t.Error("Lookup found an unregistered name")
	}
	// Scoped entries must stay invisible to the process-wide resolver.
	if _, err := ByName("scoped-a"); err == nil {
		t.Error("scoped entry resolved through the global registry")
	}
	if sc.Len() != 1 {
		t.Errorf("Len = %d, want 1", sc.Len())
	}
}

// TestScopeRejectsUnsafeNames mirrors the global Register safety rules:
// no empty names, no shadowing the library grammar.
func TestScopeRejectsUnsafeNames(t *testing.T) {
	sc := NewScope(0)
	if err := sc.Register(scopedCustom(t, "mesh-1x2")); err == nil {
		t.Error("Register accepted a library-grammar name")
	}
	if sc.Len() != 0 {
		t.Errorf("rejected registration still stored: Len = %d", sc.Len())
	}
}

// TestScopeEviction pins the bounded-memory contract: the oldest entry
// goes first, re-registering refreshes content without growing the scope.
func TestScopeEviction(t *testing.T) {
	sc := NewScope(3)
	for i := 0; i < 4; i++ {
		if err := sc.Register(scopedCustom(t, fmt.Sprintf("scoped-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if sc.Len() != 3 {
		t.Fatalf("Len = %d, want 3", sc.Len())
	}
	if _, ok := sc.Lookup("scoped-0"); ok {
		t.Error("oldest entry survived eviction")
	}
	for i := 1; i < 4; i++ {
		if _, ok := sc.Lookup(fmt.Sprintf("scoped-%d", i)); !ok {
			t.Errorf("scoped-%d missing after eviction", i)
		}
	}
	// Replacing in place keeps the count and the entry's age.
	if err := sc.Register(scopedCustom(t, "scoped-2")); err != nil {
		t.Fatal(err)
	}
	if sc.Len() != 3 {
		t.Errorf("re-registration grew the scope to %d", sc.Len())
	}
	want := []string{"scoped-1", "scoped-2", "scoped-3"}
	names := sc.Names()
	if len(names) != len(want) {
		t.Fatalf("Names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
}

// TestScopeConcurrent hammers one scope from many goroutines — the race
// detector is the assertion.
func TestScopeConcurrent(t *testing.T) {
	sc := NewScope(8)
	topos := make([]Topology, 16)
	for i := range topos {
		topos[i] = scopedCustom(t, fmt.Sprintf("scoped-c%d", i))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				topo := topos[(g*13+i)%len(topos)]
				if err := sc.Register(topo); err != nil {
					t.Error(err)
					return
				}
				sc.Lookup(topo.Name())
				sc.Names()
			}
		}(g)
	}
	wg.Wait()
	if sc.Len() > 8 {
		t.Errorf("Len = %d exceeds limit 8", sc.Len())
	}
}
