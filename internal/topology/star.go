package topology

import "fmt"

// starTopology is the star-connected on-chip network of Lee et al. [10]:
// a single central switch to which every core attaches directly. Every
// route is one hop through the hub, at the price of an n x n crossbar whose
// area and energy grow quadratically — a useful extreme point for design-
// space exploration.
type starTopology struct {
	*base
}

// NewStar constructs a star with n terminals (n >= 2) around one hub.
func NewStar(n int) (Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: invalid star with %d terminals", n)
	}
	s := &starTopology{base: newBase(fmt.Sprintf("star-%d", n), Star, 1, n)}
	// The hub sits at the centre of a ring of cores.
	side := (n + 3) / 4 // cores per side of the surrounding square, roughly
	if side < 1 {
		side = 1
	}
	s.pos[0] = [2]float64{float64(side) / 2, float64(side) / 2}
	for t := 0; t < n; t++ {
		s.inject[t] = 0
		s.eject[t] = 0
		// Spread terminals around the hub on a square spiral.
		angleIdx := t % 4
		ring := t/4 + 1
		var x, y float64
		switch angleIdx {
		case 0:
			x, y = s.pos[0][0]+float64(ring), s.pos[0][1]
		case 1:
			x, y = s.pos[0][0]-float64(ring), s.pos[0][1]
		case 2:
			x, y = s.pos[0][0], s.pos[0][1]+float64(ring)
		default:
			x, y = s.pos[0][0], s.pos[0][1]-float64(ring)
		}
		s.tpos[t] = [2]float64{x, y}
	}
	return s, nil
}

// Quadrant is the single hub router.
func (s *starTopology) Quadrant(src, dst int) []bool {
	return []bool{true}
}
