package topology

import (
	"fmt"
	"math"
	"sort"
)

// LibraryOptions tunes the configuration enumeration of Enumerate and
// Library. The zero value gives the paper's defaults.
type LibraryOptions struct {
	// MaxAspect caps cols/rows for mesh and torus shapes (default 4).
	MaxAspect float64
	// MaxButterflyRadix caps k for k-ary n-fly enumeration (default 4).
	MaxButterflyRadix int
	// MaxClosFanIn caps n (terminals per ingress switch) for Clos
	// enumeration (default 4).
	MaxClosFanIn int
	// IncludeExtras adds the octagon and star extensions to Library.
	IncludeExtras bool
	// MaxTerminalSlack drops configurations whose terminal count exceeds
	// numCores by more than this factor (default 3.0), pruning absurdly
	// oversized networks.
	MaxTerminalSlack float64
}

func (o LibraryOptions) withDefaults() LibraryOptions {
	if o.MaxAspect <= 0 {
		o.MaxAspect = 4
	}
	if o.MaxButterflyRadix < 2 {
		o.MaxButterflyRadix = 4
	}
	if o.MaxClosFanIn < 2 {
		o.MaxClosFanIn = 4
	}
	if o.MaxTerminalSlack <= 0 {
		o.MaxTerminalSlack = 3.0
	}
	return o
}

// Enumerate returns the sensible configurations of one topology family able
// to host numCores cores, ordered by increasing terminal count then name.
// SUNMAP evaluates every returned configuration during Phase 1 and lets the
// objective function pick among them — this is how, e.g., the DSP filter
// ends up on a 3-ary 2-fly (3x3 switches, Fig. 10b) while VOPD lands on a
// 4-ary 2-fly.
func Enumerate(kind Kind, numCores int, opts LibraryOptions) ([]Topology, error) {
	if numCores < 2 {
		return nil, fmt.Errorf("topology: need at least 2 cores, got %d", numCores)
	}
	opts = opts.withDefaults()
	maxTerms := int(math.Ceil(float64(numCores) * opts.MaxTerminalSlack))
	var out []Topology
	add := func(t Topology, err error) error {
		if err != nil {
			return err
		}
		if t.NumTerminals() < numCores || t.NumTerminals() > maxTerms {
			return nil
		}
		out = append(out, t)
		return nil
	}
	switch kind {
	case Mesh, Torus:
		minDim := 1
		if kind == Torus {
			minDim = 3
		}
		for rows := minDim; rows*rows <= numCores+rows; rows++ {
			cols := (numCores + rows - 1) / rows
			if cols < minDim {
				cols = minDim // torus needs >= 3 per dimension
			}
			if cols < rows {
				continue
			}
			if float64(cols)/float64(rows) > opts.MaxAspect {
				continue
			}
			var err error
			if kind == Mesh {
				err = add(NewMesh(rows, cols))
			} else {
				err = add(NewTorus(rows, cols))
			}
			if err != nil {
				return nil, err
			}
		}
	case Hypercube:
		dim := 1
		for 1<<dim < numCores {
			dim++
		}
		if err := add(NewHypercube(dim)); err != nil {
			return nil, err
		}
	case Butterfly:
		for k := 2; k <= opts.MaxButterflyRadix; k++ {
			n := 2
			terms := k * k
			for terms < numCores {
				terms *= k
				n++
			}
			if err := add(NewButterfly(k, n)); err != nil {
				return nil, err
			}
		}
	case Clos:
		for n := 2; n <= opts.MaxClosFanIn; n++ {
			r := (numCores + n - 1) / n
			if r < 2 {
				continue
			}
			for _, m := range []int{n, 2*n - 1} {
				if err := add(NewClos(m, n, r)); err != nil {
					return nil, err
				}
			}
		}
	case Octagon:
		if numCores <= 8 {
			if err := add(NewOctagon()); err != nil {
				return nil, err
			}
		}
	case Star:
		if err := add(NewStar(numCores)); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("topology: unknown kind %v", kind)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].NumTerminals() != out[j].NumTerminals() {
			return out[i].NumTerminals() < out[j].NumTerminals()
		}
		return out[i].Name() < out[j].Name()
	})
	// Deduplicate by name (clos m=n and m=2n-1 collide when n=1, etc.).
	dedup := out[:0]
	seen := make(map[string]bool)
	for _, t := range out {
		if !seen[t.Name()] {
			seen[t.Name()] = true
			dedup = append(dedup, t)
		}
	}
	return dedup, nil
}

// Library returns every configuration of the paper's five-family topology
// library (plus extras when requested) able to host numCores cores.
func Library(numCores int, opts LibraryOptions) ([]Topology, error) {
	kinds := []Kind{Mesh, Torus, Hypercube, Butterfly, Clos}
	if opts.IncludeExtras {
		kinds = append(kinds, Octagon, Star)
	}
	var out []Topology
	for _, k := range kinds {
		ts, err := Enumerate(k, numCores, opts)
		if err != nil {
			return nil, fmt.Errorf("topology: enumerating %v: %v", k, err)
		}
		out = append(out, ts...)
	}
	return out, nil
}

// ByName constructs a topology from its canonical name (e.g. "mesh-3x4",
// "butterfly-4ary2fly", "clos-m4n4r4", "hypercube-4", "octagon",
// "star-12"), the format produced by Topology.Name.
func ByName(name string) (Topology, error) {
	var a, b, c int
	switch {
	case matched(name, "mesh-%dx%d", &a, &b):
		return NewMesh(a, b)
	case matched(name, "torus-%dx%d", &a, &b):
		return NewTorus(a, b)
	case matched(name, "hypercube-%d", &a):
		return NewHypercube(a)
	case matched(name, "butterfly-%dary%dfly", &a, &b):
		return NewButterfly(a, b)
	case matched(name, "clos-m%dn%dr%d", &a, &b, &c):
		return NewClos(a, b, c)
	case name == "octagon":
		return NewOctagon()
	case matched(name, "star-%d", &a):
		return NewStar(a)
	}
	return nil, fmt.Errorf("topology: unrecognized name %q", name)
}

func matched(s, format string, args ...*int) bool {
	ptrs := make([]interface{}, len(args))
	for i, a := range args {
		ptrs[i] = a
	}
	n, err := fmt.Sscanf(s, format, ptrs...)
	if err != nil || n != len(args) {
		return false
	}
	// Sscanf tolerates trailing garbage; rebuild and compare.
	vals := make([]interface{}, len(args))
	for i, a := range args {
		vals[i] = *a
	}
	return fmt.Sprintf(format, vals...) == s
}
