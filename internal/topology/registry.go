package topology

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// LibraryOptions tunes the configuration enumeration of Enumerate and
// Library. The zero value gives the paper's defaults.
type LibraryOptions struct {
	// MaxAspect caps cols/rows for mesh and torus shapes (default 4).
	MaxAspect float64
	// MaxButterflyRadix caps k for k-ary n-fly enumeration (default 4).
	MaxButterflyRadix int
	// MaxClosFanIn caps n (terminals per ingress switch) for Clos
	// enumeration (default 4).
	MaxClosFanIn int
	// IncludeExtras adds the octagon and star extensions to Library.
	IncludeExtras bool
	// MaxTerminalSlack drops configurations whose terminal count exceeds
	// numCores by more than this factor (default 3.0), pruning absurdly
	// oversized networks.
	MaxTerminalSlack float64
}

// withDefaults substitutes the paper's defaults for zero values and
// rejects explicitly invalid settings: a butterfly radix or Clos fan-in
// below 2 describes no constructible network, so such values surface as
// errors instead of being silently coerced to the default.
func (o LibraryOptions) withDefaults() (LibraryOptions, error) {
	if o.MaxAspect <= 0 {
		o.MaxAspect = 4
	}
	switch {
	case o.MaxButterflyRadix == 0:
		o.MaxButterflyRadix = 4
	case o.MaxButterflyRadix < 2:
		return o, fmt.Errorf("topology: MaxButterflyRadix %d is invalid (want 0 for the default, or >= 2)",
			o.MaxButterflyRadix)
	}
	switch {
	case o.MaxClosFanIn == 0:
		o.MaxClosFanIn = 4
	case o.MaxClosFanIn < 2:
		return o, fmt.Errorf("topology: MaxClosFanIn %d is invalid (want 0 for the default, or >= 2)",
			o.MaxClosFanIn)
	}
	if o.MaxTerminalSlack <= 0 {
		o.MaxTerminalSlack = 3.0
	}
	return o, nil
}

// Enumerate returns the sensible configurations of one topology family able
// to host numCores cores, ordered by increasing terminal count then name.
// SUNMAP evaluates every returned configuration during Phase 1 and lets the
// objective function pick among them — this is how, e.g., the DSP filter
// ends up on a 3-ary 2-fly (3x3 switches, Fig. 10b) while VOPD lands on a
// 4-ary 2-fly.
func Enumerate(kind Kind, numCores int, opts LibraryOptions) ([]Topology, error) {
	if numCores < 2 {
		return nil, fmt.Errorf("topology: need at least 2 cores, got %d", numCores)
	}
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	maxTerms := int(math.Ceil(float64(numCores) * opts.MaxTerminalSlack))
	var out []Topology
	add := func(t Topology, err error) error {
		if err != nil {
			return err
		}
		if t.NumTerminals() < numCores || t.NumTerminals() > maxTerms {
			return nil
		}
		out = append(out, t)
		return nil
	}
	switch kind {
	case Mesh, Torus:
		minDim := 1
		if kind == Torus {
			minDim = 3
		}
		for rows := minDim; rows*rows <= numCores+rows; rows++ {
			cols := (numCores + rows - 1) / rows
			if cols < minDim {
				cols = minDim // torus needs >= 3 per dimension
			}
			if cols < rows {
				continue
			}
			if float64(cols)/float64(rows) > opts.MaxAspect {
				continue
			}
			var err error
			if kind == Mesh {
				err = add(NewMesh(rows, cols))
			} else {
				err = add(NewTorus(rows, cols))
			}
			if err != nil {
				return nil, err
			}
		}
	case Hypercube:
		dim := 1
		for 1<<dim < numCores {
			dim++
		}
		if err := add(NewHypercube(dim)); err != nil {
			return nil, err
		}
	case Butterfly:
		for k := 2; k <= opts.MaxButterflyRadix; k++ {
			n := 2
			terms := k * k
			for terms < numCores {
				terms *= k
				n++
			}
			if err := add(NewButterfly(k, n)); err != nil {
				return nil, err
			}
		}
	case Clos:
		for n := 2; n <= opts.MaxClosFanIn; n++ {
			r := (numCores + n - 1) / n
			if r < 2 {
				continue
			}
			for _, m := range []int{n, 2*n - 1} {
				if err := add(NewClos(m, n, r)); err != nil {
					return nil, err
				}
			}
		}
	case Octagon:
		if numCores <= 8 {
			if err := add(NewOctagon()); err != nil {
				return nil, err
			}
		}
	case Star:
		if err := add(NewStar(numCores)); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("topology: unknown kind %v", kind)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].NumTerminals() != out[j].NumTerminals() {
			return out[i].NumTerminals() < out[j].NumTerminals()
		}
		return out[i].Name() < out[j].Name()
	})
	// Deduplicate by name (clos m=n and m=2n-1 collide when n=1, etc.).
	dedup := out[:0]
	seen := make(map[string]bool)
	for _, t := range out {
		if !seen[t.Name()] {
			seen[t.Name()] = true
			dedup = append(dedup, t)
		}
	}
	return dedup, nil
}

// Library returns every configuration of the paper's five-family topology
// library (plus extras when requested) able to host numCores cores.
func Library(numCores int, opts LibraryOptions) ([]Topology, error) {
	kinds := []Kind{Mesh, Torus, Hypercube, Butterfly, Clos}
	if opts.IncludeExtras {
		kinds = append(kinds, Octagon, Star)
	}
	var out []Topology
	for _, k := range kinds {
		ts, err := Enumerate(k, numCores, opts)
		if err != nil {
			return nil, fmt.Errorf("topology: enumerating %v: %w", k, err)
		}
		out = append(out, ts...)
	}
	return out, nil
}

// ByName constructs a topology from its canonical name (e.g. "mesh-3x4",
// "butterfly-4ary2fly", "clos-m4n4r4", "hypercube-4", "octagon",
// "star-12"), the format produced by Topology.Name. Names outside the
// library grammar resolve against the custom-topology registry, so
// synthesized networks registered in this process (internal/synth) are
// addressable the same way as library members.
func ByName(name string) (Topology, error) {
	if t, err := byLibraryName(name); err == nil {
		return t, nil
	}
	if t, ok := lookupCustom(name); ok {
		return t, nil
	}
	return nil, fmt.Errorf("topology: unrecognized name %q", name)
}

// customReg holds custom (synthesized) topologies registered by name.
// Unlike the library families — reconstructible from their name alone —
// custom topologies are application-specific instances, so the registry
// stores them directly for the life of the process.
var customReg struct {
	sync.RWMutex
	m map[string]Topology
}

// Register validates a custom topology and makes it retrievable through
// ByName. Re-registering a name replaces the earlier entry; that is safe
// because the evaluation cache keys on the full structural digest, never
// on the name alone. Library-grammar names are rejected so a custom entry
// can never shadow a standard configuration.
//
// The registry is process-wide and unbounded, which is the right contract
// for the handful of synthesized candidates an interactive run names. It
// is the wrong contract for machine-generated topologies: a long-running
// serve process running topology search would leak one entry per
// discovered candidate and let two sessions silently overwrite each
// other's names. Search workloads register into a per-session Scope
// instead.
func Register(t Topology) error {
	if err := Validate(t); err != nil {
		return err
	}
	name := t.Name()
	if name == "" {
		return fmt.Errorf("topology: cannot register a topology with an empty name")
	}
	if builtin, err := byLibraryName(name); err == nil {
		return fmt.Errorf("topology: cannot register %q: name is taken by library topology %s",
			name, builtin.Name())
	}
	customReg.Lock()
	if customReg.m == nil {
		customReg.m = make(map[string]Topology)
	}
	customReg.m[name] = t
	customReg.Unlock()
	return nil
}

// Registered returns the currently registered custom topologies sorted by
// name.
func Registered() []Topology {
	customReg.RLock()
	out := make([]Topology, 0, len(customReg.m))
	for _, t := range customReg.m {
		out = append(out, t)
	}
	customReg.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Unregister removes a custom topology by name (a no-op for unknown
// names). Tests use it to keep the process-wide registry isolated.
func Unregister(name string) {
	customReg.Lock()
	delete(customReg.m, name)
	customReg.Unlock()
}

func lookupCustom(name string) (Topology, bool) {
	customReg.RLock()
	t, ok := customReg.m[name]
	customReg.RUnlock()
	return t, ok
}

// byLibraryName is ByName restricted to the library grammar (no custom
// registry fallback); Register uses it to detect name collisions.
func byLibraryName(name string) (Topology, error) {
	var a, b, c int
	switch {
	case matched(name, "mesh-%dx%d", &a, &b):
		return NewMesh(a, b)
	case matched(name, "torus-%dx%d", &a, &b):
		return NewTorus(a, b)
	case matched(name, "hypercube-%d", &a):
		return NewHypercube(a)
	case matched(name, "butterfly-%dary%dfly", &a, &b):
		return NewButterfly(a, b)
	case matched(name, "clos-m%dn%dr%d", &a, &b, &c):
		return NewClos(a, b, c)
	case name == "octagon":
		return NewOctagon()
	case matched(name, "star-%d", &a):
		return NewStar(a)
	}
	return nil, fmt.Errorf("topology: unrecognized name %q", name)
}

func matched(s, format string, args ...*int) bool {
	ptrs := make([]interface{}, len(args))
	for i, a := range args {
		ptrs[i] = a
	}
	n, err := fmt.Sscanf(s, format, ptrs...)
	if err != nil || n != len(args) {
		return false
	}
	// Sscanf tolerates trailing garbage; rebuild and compare.
	vals := make([]interface{}, len(args))
	for i, a := range args {
		vals[i] = *a
	}
	return fmt.Sprintf(format, vals...) == s
}
