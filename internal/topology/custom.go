package topology

import "fmt"

// CustomSpec describes an arbitrary topology for NewCustom — the escape
// hatch the synthesized (application-specific) topologies of internal/synth
// are built through. Links are given as undirected router pairs; each
// becomes a bidirectional channel pair, matching the mesh-style links of
// the library's direct topologies.
type CustomSpec struct {
	// Name is the canonical identifier (e.g. "synth-cluster4-mpeg4"); it
	// must be non-empty and should not collide with the library's name
	// grammar (mesh-RxC, clos-mMnNrR, ...).
	Name string
	// NumRouters is the switch count.
	NumRouters int
	// BiLinks lists undirected router pairs; each adds channels both ways.
	// Pairs must not repeat (in either orientation) or self-loop.
	BiLinks [][2]int
	// Terminals[t] is the router terminal t attaches to. Traffic of a core
	// mapped to terminal t both enters and leaves the network there.
	Terminals []int
	// RouterPos holds the relative placement of each router (grid units,
	// consumed by the floorplanner). Length NumRouters.
	RouterPos [][2]float64
	// TerminalPos holds the relative placement of each terminal's core
	// block. Length len(Terminals).
	TerminalPos [][2]float64
}

// customTopology is an arbitrary synthesized network. Unlike the library
// families it has no closed-form quadrant; per-pair masks are precomputed
// from BFS distances so minimum-path routing still searches a restricted
// region (the union of all minimum paths, the defining property of
// Section 4.3).
type customTopology struct {
	*base
	// quad[s*numRouters+d] is the allowed-router mask for traffic entering
	// at router s and leaving at router d.
	quad [][]bool
}

// NewCustom builds and validates a topology from an explicit specification.
// The returned topology has Kind Synth.
func NewCustom(spec CustomSpec) (Topology, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("topology: custom topology needs a name")
	}
	if spec.NumRouters < 1 {
		return nil, fmt.Errorf("topology: custom %s has %d routers", spec.Name, spec.NumRouters)
	}
	if len(spec.Terminals) < 1 {
		return nil, fmt.Errorf("topology: custom %s has no terminals", spec.Name)
	}
	if len(spec.RouterPos) != spec.NumRouters {
		return nil, fmt.Errorf("topology: custom %s has %d router positions, want %d",
			spec.Name, len(spec.RouterPos), spec.NumRouters)
	}
	if len(spec.TerminalPos) != len(spec.Terminals) {
		return nil, fmt.Errorf("topology: custom %s has %d terminal positions, want %d",
			spec.Name, len(spec.TerminalPos), len(spec.Terminals))
	}
	c := &customTopology{base: newBase(spec.Name, Synth, spec.NumRouters, len(spec.Terminals))}
	seen := make(map[[2]int]bool, len(spec.BiLinks))
	for _, l := range spec.BiLinks {
		u, v := l[0], l[1]
		if u < 0 || u >= spec.NumRouters || v < 0 || v >= spec.NumRouters {
			return nil, fmt.Errorf("topology: custom %s link %d-%d out of range", spec.Name, u, v)
		}
		if u == v {
			return nil, fmt.Errorf("topology: custom %s has self-loop on router %d", spec.Name, u)
		}
		key := [2]int{minInt(u, v), maxInt(u, v)}
		if seen[key] {
			return nil, fmt.Errorf("topology: custom %s repeats link %d-%d", spec.Name, u, v)
		}
		seen[key] = true
		c.addBiLink(u, v)
	}
	for t, r := range spec.Terminals {
		if r < 0 || r >= spec.NumRouters {
			return nil, fmt.Errorf("topology: custom %s terminal %d on router %d out of range",
				spec.Name, t, r)
		}
		c.inject[t] = r
		c.eject[t] = r
		c.tpos[t] = spec.TerminalPos[t]
	}
	for r := range spec.RouterPos {
		c.pos[r] = spec.RouterPos[r]
	}
	c.buildQuadrants()
	if err := Validate(c); err != nil {
		return nil, err
	}
	return c, nil
}

// buildQuadrants precomputes, for every router pair (s,d), the set of
// routers lying on at least one minimum-hop s->d path: router u qualifies
// when dist(s,u) + dist(u,d) equals dist(s,d). The masks therefore preserve
// minimum distances by construction. Pairs with no path fall back to the
// full-router mask so the disconnection surfaces as a routing error rather
// than a silently wrong restriction.
func (c *customTopology) buildQuadrants() {
	n := c.NumRouters()
	fwd := make([][]int, n) // fwd[s][u]: hop distance s->u
	bwd := make([][]int, n) // bwd[d][u]: hop distance u->d
	for r := 0; r < n; r++ {
		fwd[r] = c.rg.BFSDistances(r, false)
		bwd[r] = c.rg.BFSDistances(r, true)
	}
	c.quad = make([][]bool, n*n)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			total := fwd[s][d]
			if total < 0 {
				c.quad[s*n+d] = c.allRouters()
				continue
			}
			mask := make([]bool, n)
			for u := 0; u < n; u++ {
				if fwd[s][u] >= 0 && bwd[d][u] >= 0 && fwd[s][u]+bwd[d][u] == total {
					mask[u] = true
				}
			}
			c.quad[s*n+d] = mask
		}
	}
}

// Quadrant returns a copy of the precomputed minimum-path mask for the
// terminal pair's routers.
func (c *customTopology) Quadrant(src, dst int) []bool {
	mask := c.quad[c.inject[src]*c.NumRouters()+c.eject[dst]]
	out := make([]bool, len(mask))
	copy(out, mask)
	return out
}
