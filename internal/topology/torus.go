package topology

import "fmt"

// torusTopology is a rows x cols 2-D torus (Fig. 1b): a mesh plus
// wrap-around channels joining opposite edges.
type torusTopology struct {
	*base
	rows, cols int
}

// NewTorus constructs a rows x cols torus. Each dimension must be at least
// 3 so that wrap-around channels are distinct from mesh channels.
func NewTorus(rows, cols int) (Topology, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("topology: invalid torus %dx%d (dims must be >= 3)", rows, cols)
	}
	t := &torusTopology{
		base: newBase(fmt.Sprintf("torus-%dx%d", rows, cols), Torus, rows*cols, rows*cols),
		rows: rows,
		cols: cols,
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			u := r*cols + c
			right := r*cols + (c+1)%cols
			down := ((r+1)%rows)*cols + c
			t.addBiLink(u, right)
			t.addBiLink(u, down)
			t.inject[u] = u
			t.eject[u] = u
			t.pos[u] = [2]float64{float64(c), float64(r)}
			t.tpos[u] = t.pos[u]
		}
	}
	return t, nil
}

// Quadrant returns the smallest wrap-aware bounding box between source and
// destination (Fig. 3c): per axis the shorter of the direct and wrap-around
// intervals, preferring the direct one on ties.
func (t *torusTopology) Quadrant(src, dst int) []bool {
	sr, sc := src/t.cols, src%t.cols
	dr, dc := dst/t.cols, dst%t.cols
	rowOK := cyclicInterval(sr, dr, t.rows)
	colOK := cyclicInterval(sc, dc, t.cols)
	mask := make([]bool, t.NumRouters())
	for r := 0; r < t.rows; r++ {
		if !rowOK[r] {
			continue
		}
		for c := 0; c < t.cols; c++ {
			if colOK[c] {
				mask[r*t.cols+c] = true
			}
		}
	}
	return mask
}

// GridDims returns the torus dimensions; dimension-ordered routing uses it.
func (t *torusTopology) GridDims() (rows, cols int) { return t.rows, t.cols }

// cyclicInterval marks the coordinates on the shorter cyclic route from a
// to b on a ring of size n (direct route preferred on ties).
func cyclicInterval(a, b, n int) []bool {
	ok := make([]bool, n)
	if a == b {
		ok[a] = true
		return ok
	}
	fwdLen := (b - a + n) % n // steps going +1 from a to b
	bwdLen := (a - b + n) % n // steps going -1
	if fwdLen <= bwdLen {
		for i, x := 0, a; i <= fwdLen; i, x = i+1, (x+1)%n {
			ok[x] = true
		}
	} else {
		for i, x := 0, a; i <= bwdLen; i, x = i+1, (x-1+n)%n {
			ok[x] = true
		}
	}
	return ok
}
