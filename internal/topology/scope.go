package topology

import (
	"fmt"
	"sort"
	"sync"
)

// Scope is a bounded, session-local registry of custom topologies. It
// exists for machine-generated networks — topology search emits one
// candidate per (app, seed, structure) — where the process-wide Register
// map has the wrong lifecycle: entries would accumulate for the life of a
// serve process, and identically named candidates from concurrent
// sessions would overwrite each other. A Scope is owned by one Session,
// so lookups cannot observe another session's candidates, and eviction of
// the oldest entries bounds memory under sustained search load.
//
// Scope applies the same safety rules as Register: entries are validated
// and may not shadow a library-grammar name. All methods are safe for
// concurrent use.
type Scope struct {
	mu    sync.Mutex
	limit int
	m     map[string]Topology
	order []string // registration order, oldest first
}

// DefaultScopeLimit is the entry cap a zero/negative NewScope limit
// resolves to.
const DefaultScopeLimit = 256

// NewScope returns an empty scope holding at most limit entries
// (DefaultScopeLimit when limit <= 0). When full, registering a new name
// evicts the oldest entry.
func NewScope(limit int) *Scope {
	if limit <= 0 {
		limit = DefaultScopeLimit
	}
	return &Scope{limit: limit, m: make(map[string]Topology)}
}

// Register validates t and adds it to the scope. Re-registering an
// existing name replaces the entry in place (keeping its age); a new name
// may evict the scope's oldest entry to stay within the limit.
func (sc *Scope) Register(t Topology) error {
	if err := Validate(t); err != nil {
		return err
	}
	name := t.Name()
	if name == "" {
		return fmt.Errorf("topology: cannot register a topology with an empty name")
	}
	if builtin, err := byLibraryName(name); err == nil {
		return fmt.Errorf("topology: cannot register %q: name is taken by library topology %s",
			name, builtin.Name())
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if _, exists := sc.m[name]; !exists {
		sc.order = append(sc.order, name)
		for len(sc.order) > sc.limit {
			delete(sc.m, sc.order[0])
			copy(sc.order, sc.order[1:])
			sc.order = sc.order[:len(sc.order)-1]
		}
	}
	sc.m[name] = t
	return nil
}

// Lookup returns the scoped topology registered under name, if any.
func (sc *Scope) Lookup(name string) (Topology, bool) {
	sc.mu.Lock()
	t, ok := sc.m[name]
	sc.mu.Unlock()
	return t, ok
}

// Names returns the registered names sorted lexicographically.
func (sc *Scope) Names() []string {
	sc.mu.Lock()
	out := make([]string, 0, len(sc.m))
	for name := range sc.m {
		out = append(out, name)
	}
	sc.mu.Unlock()
	sort.Strings(out)
	return out
}

// Len returns the number of registered entries.
func (sc *Scope) Len() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return len(sc.m)
}
