package topology

// octagonTopology is the OC-768 octagon network of Karim et al. [6]: 8
// routers on a ring with cross links between opposite routers, so any pair
// is at most 2 link hops apart. It is one of the "easily added" library
// extensions mentioned in Section 1.
type octagonTopology struct {
	*base
}

// NewOctagon constructs the 8-node octagon.
func NewOctagon() (Topology, error) {
	o := &octagonTopology{base: newBase("octagon", Octagon, 8, 8)}
	// Octagon placement on the perimeter of a 3x3 grid, clockwise.
	perimeter := [8][2]float64{
		{0, 0}, {1, 0}, {2, 0}, {2, 1}, {2, 2}, {1, 2}, {0, 2}, {0, 1},
	}
	for u := 0; u < 8; u++ {
		o.addBiLink(u, (u+1)%8) // ring
		if u < 4 {
			o.addBiLink(u, u+4) // cross links
		}
		o.inject[u] = u
		o.eject[u] = u
		o.pos[u] = perimeter[u]
		o.tpos[u] = perimeter[u]
	}
	return o, nil
}

// Quadrant admits all 8 routers: the network is small enough that the
// shortest-path search over the whole graph is already cheap, and any
// smaller mask risks excluding the cross links that realize 2-hop routes.
func (o *octagonTopology) Quadrant(src, dst int) []bool {
	return o.allRouters()
}
