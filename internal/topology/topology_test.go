package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// mustMesh and friends build topologies or fail the test.
func mustMesh(t *testing.T, r, c int) Topology {
	t.Helper()
	m, err := NewMesh(r, c)
	if err != nil {
		t.Fatalf("NewMesh(%d,%d): %v", r, c, err)
	}
	return m
}

func mustTorus(t *testing.T, r, c int) Topology {
	t.Helper()
	m, err := NewTorus(r, c)
	if err != nil {
		t.Fatalf("NewTorus(%d,%d): %v", r, c, err)
	}
	return m
}

func mustHypercube(t *testing.T, d int) Topology {
	t.Helper()
	m, err := NewHypercube(d)
	if err != nil {
		t.Fatalf("NewHypercube(%d): %v", d, err)
	}
	return m
}

func mustButterfly(t *testing.T, k, n int) Topology {
	t.Helper()
	m, err := NewButterfly(k, n)
	if err != nil {
		t.Fatalf("NewButterfly(%d,%d): %v", k, n, err)
	}
	return m
}

func mustClos(t *testing.T, m, n, r int) Topology {
	t.Helper()
	c, err := NewClos(m, n, r)
	if err != nil {
		t.Fatalf("NewClos(%d,%d,%d): %v", m, n, r, err)
	}
	return c
}

func TestConstructorRejectsBadParams(t *testing.T) {
	if _, err := NewMesh(0, 5); err == nil {
		t.Error("mesh 0x5 accepted")
	}
	if _, err := NewMesh(1, 1); err == nil {
		t.Error("mesh 1x1 accepted")
	}
	if _, err := NewTorus(2, 4); err == nil {
		t.Error("torus with dim 2 accepted")
	}
	if _, err := NewHypercube(0); err == nil {
		t.Error("hypercube dim 0 accepted")
	}
	if _, err := NewButterfly(1, 3); err == nil {
		t.Error("1-ary butterfly accepted")
	}
	if _, err := NewButterfly(2, 1); err == nil {
		t.Error("1-stage butterfly accepted")
	}
	if _, err := NewClos(0, 2, 2); err == nil {
		t.Error("clos with 0 middles accepted")
	}
	if _, err := NewStar(1); err == nil {
		t.Error("star-1 accepted")
	}
}

func TestAllTopologiesValidate(t *testing.T) {
	topos := []Topology{
		mustMesh(t, 3, 4),
		mustMesh(t, 2, 2),
		mustTorus(t, 3, 4),
		mustTorus(t, 4, 4),
		mustHypercube(t, 3),
		mustHypercube(t, 4),
		mustButterfly(t, 2, 3),
		mustButterfly(t, 4, 2),
		mustButterfly(t, 3, 2),
		mustClos(t, 4, 4, 4),
		mustClos(t, 3, 2, 6),
	}
	oct, err := NewOctagon()
	if err != nil {
		t.Fatalf("NewOctagon: %v", err)
	}
	star, err := NewStar(12)
	if err != nil {
		t.Fatalf("NewStar: %v", err)
	}
	topos = append(topos, oct, star)
	for _, topo := range topos {
		if err := Validate(topo); err != nil {
			t.Errorf("Validate(%s): %v", topo.Name(), err)
		}
	}
}

func TestMeshDegrees(t *testing.T) {
	// Paper Section 4.2: in a mesh, interior nodes have 4 neighbours,
	// corners 2, other edge nodes 3.
	m := mustMesh(t, 3, 3)
	wantDeg := map[int]int{0: 2, 1: 3, 2: 2, 3: 3, 4: 4, 5: 3, 6: 2, 7: 3, 8: 2}
	for r, want := range wantDeg {
		in, out := m.RouterDegree(r)
		if in != want || out != want {
			t.Errorf("mesh router %d degree = (%d,%d), want %d", r, in, out, want)
		}
	}
	// 3x3 mesh has 12 undirected = 24 directed links.
	if got := len(m.Links()); got != 24 {
		t.Errorf("mesh-3x3 has %d directed links, want 24", got)
	}
}

func TestTorusDegreesAndWraps(t *testing.T) {
	// Every torus node has exactly 4 neighbours; node 0 of a 3x3 reaches
	// nodes 2 and 6 through wrap-around channels (Fig. 1b).
	m := mustTorus(t, 3, 3)
	for r := 0; r < 9; r++ {
		in, out := m.RouterDegree(r)
		if in != 4 || out != 4 {
			t.Errorf("torus router %d degree = (%d,%d), want 4", r, in, out)
		}
	}
	if got := len(m.Links()); got != 36 {
		t.Errorf("torus-3x3 has %d directed links, want 36", got)
	}
	neighbors := make(map[int]bool)
	for _, a := range m.Graph().Out(0) {
		neighbors[a.To] = true
	}
	for _, want := range []int{1, 2, 3, 6} {
		if !neighbors[want] {
			t.Errorf("torus node 0 missing neighbor %d (have %v)", want, neighbors)
		}
	}
}

func TestHypercubeNeighbors(t *testing.T) {
	// Section 4.2's example: node 2 = (0,1,0) is adjacent to node 6 =
	// (1,1,0); each node of a 3-cube has 3 neighbours at Hamming distance 1.
	h := mustHypercube(t, 3)
	for u := 0; u < 8; u++ {
		in, out := h.RouterDegree(u)
		if in != 3 || out != 3 {
			t.Errorf("hypercube node %d degree = (%d,%d), want 3", u, in, out)
		}
		for _, a := range h.Graph().Out(u) {
			if x := u ^ a.To; x&(x-1) != 0 {
				t.Errorf("hypercube arc %d->%d not Hamming distance 1", u, a.To)
			}
		}
	}
	found := false
	for _, a := range h.Graph().Out(2) {
		if a.To == 6 {
			found = true
		}
	}
	if !found {
		t.Error("node 2 not adjacent to node 6")
	}
}

func TestButterflyStructure(t *testing.T) {
	// 2-ary 3-fly of Fig. 2(b): 3 stages of 4 switches. Stage-0 switch 0
	// connects to stage-1 switches 0 and 2; stage-1 switch 0 connects to
	// stage-2 switches 0 and 1.
	b := mustButterfly(t, 2, 3)
	if b.NumRouters() != 12 || b.NumTerminals() != 8 {
		t.Fatalf("2-ary 3-fly: %d routers %d terminals, want 12/8",
			b.NumRouters(), b.NumTerminals())
	}
	outOf := func(r int) map[int]bool {
		set := make(map[int]bool)
		for _, a := range b.Graph().Out(r) {
			set[a.To] = true
		}
		return set
	}
	// Router indices: stage*4 + switch.
	s0 := outOf(0)
	if !s0[4+0] || !s0[4+2] || len(s0) != 2 {
		t.Errorf("stage0 switch0 connects to %v, want stage1 {0,2}", s0)
	}
	s1 := outOf(4)
	if !s1[8+0] || !s1[8+1] || len(s1) != 2 {
		t.Errorf("stage1 switch0 connects to %v, want stage2 {0,1}", s1)
	}
	// All terminals are always exactly n hops apart.
	for s := 0; s < b.NumTerminals(); s++ {
		for d := 0; d < b.NumTerminals(); d++ {
			if s == d {
				continue
			}
			if got := b.MinHops(s, d); got != 3 {
				t.Errorf("MinHops(%d,%d) = %d, want 3", s, d, got)
			}
		}
	}
}

func TestButterflyUniquePath(t *testing.T) {
	// The quadrant of a butterfly is the unique path: exactly n routers.
	b := mustButterfly(t, 4, 2)
	for s := 0; s < b.NumTerminals(); s++ {
		for d := 0; d < b.NumTerminals(); d++ {
			if s == d {
				continue
			}
			q := b.Quadrant(s, d)
			count := 0
			for _, ok := range q {
				if ok {
					count++
				}
			}
			if count != 2 {
				t.Errorf("butterfly quadrant %d->%d has %d routers, want 2", s, d, count)
			}
			if !q[b.InjectRouter(s)] || !q[b.EjectRouter(d)] {
				t.Errorf("quadrant %d->%d misses endpoints", s, d)
			}
		}
	}
}

func TestClosStructure(t *testing.T) {
	// Fig. 2(a): clos(4,2,4) — switch 0 of stage 1 connects to all four
	// middle switches; 3 hops between any pair; m disjoint middle choices.
	c := mustClos(t, 4, 2, 4)
	if c.NumRouters() != 12 || c.NumTerminals() != 8 {
		t.Fatalf("clos(4,2,4): %d routers %d terminals, want 12/8",
			c.NumRouters(), c.NumTerminals())
	}
	mids := make(map[int]bool)
	for _, a := range c.Graph().Out(0) {
		mids[a.To] = true
	}
	if len(mids) != 4 {
		t.Errorf("ingress 0 reaches %d middles, want 4", len(mids))
	}
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s == d {
				continue
			}
			if got := c.MinHops(s, d); got != 3 {
				t.Errorf("clos MinHops(%d,%d) = %d, want 3", s, d, got)
			}
		}
	}
}

func TestOctagonTwoHopProperty(t *testing.T) {
	o, err := NewOctagon()
	if err != nil {
		t.Fatal(err)
	}
	// Any pair of octagon nodes is within 2 link hops (3 router hops).
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if s == d {
				continue
			}
			if got := o.MinHops(s, d); got > 3 {
				t.Errorf("octagon MinHops(%d,%d) = %d, want <= 3", s, d, got)
			}
		}
	}
}

func TestStarOneHop(t *testing.T) {
	s, err := NewStar(6)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRouters() != 1 || len(s.Links()) != 0 {
		t.Fatalf("star: %d routers %d links, want 1/0", s.NumRouters(), len(s.Links()))
	}
	if got := s.MinHops(0, 5); got != 1 {
		t.Errorf("star MinHops = %d, want 1", got)
	}
}

func TestMeshQuadrantIsBoundingBox(t *testing.T) {
	m := mustMesh(t, 3, 4).(*meshTopology)
	q := m.Quadrant(1, 11) // (0,1) -> (2,3)
	want := map[int]bool{1: true, 2: true, 3: true, 5: true, 6: true, 7: true, 9: true, 10: true, 11: true}
	for r := 0; r < 12; r++ {
		if q[r] != want[r] {
			t.Errorf("mesh quadrant router %d = %v, want %v", r, q[r], want[r])
		}
	}
}

func TestTorusQuadrantUsesWrap(t *testing.T) {
	// On a 4x4 torus, 0 -> 3 is one hop through the wrap; quadrant must be
	// the two-node wrap interval, not the 4-wide direct interval.
	m := mustTorus(t, 4, 4)
	q := m.Quadrant(0, 3)
	if !q[0] || !q[3] {
		t.Fatal("quadrant misses endpoints")
	}
	if q[1] || q[2] {
		t.Errorf("quadrant took the long way: %v", q[:4])
	}
}

func TestHypercubeQuadrantSubcube(t *testing.T) {
	// Section 4.3's example: src 0 = (0,0,0), dst 3 = (0,1,1): quadrant is
	// the (0,*,*) subcube = nodes {0,1,2,3}.
	h := mustHypercube(t, 3)
	q := h.Quadrant(0, 3)
	for u := 0; u < 8; u++ {
		want := u < 4
		if q[u] != want {
			t.Errorf("hypercube quadrant node %d = %v, want %v", u, q[u], want)
		}
	}
}

func TestEnumerateShapes(t *testing.T) {
	names := func(kind Kind, n int) []string {
		ts, err := Enumerate(kind, n, LibraryOptions{})
		if err != nil {
			t.Fatalf("Enumerate(%v,%d): %v", kind, n, err)
		}
		out := make([]string, len(ts))
		for i, x := range ts {
			out[i] = x.Name()
		}
		return out
	}
	has := func(list []string, want string) bool {
		for _, s := range list {
			if s == want {
				return true
			}
		}
		return false
	}
	m12 := names(Mesh, 12)
	if !has(m12, "mesh-3x4") {
		t.Errorf("mesh configs for 12 cores = %v, want mesh-3x4 present", m12)
	}
	b12 := names(Butterfly, 12)
	if !has(b12, "butterfly-4ary2fly") {
		t.Errorf("butterfly configs for 12 cores = %v, want 4-ary 2-fly (Fig. 6)", b12)
	}
	b6 := names(Butterfly, 6)
	if !has(b6, "butterfly-3ary2fly") {
		t.Errorf("butterfly configs for 6 cores = %v, want 3-ary 2-fly (Fig. 10b)", b6)
	}
	t6 := names(Torus, 6)
	if !has(t6, "torus-3x3") {
		t.Errorf("torus configs for 6 cores = %v, want torus-3x3", t6)
	}
	h12 := names(Hypercube, 12)
	if len(h12) != 1 || h12[0] != "hypercube-4" {
		t.Errorf("hypercube configs for 12 cores = %v, want [hypercube-4]", h12)
	}
	if got := names(Octagon, 9); len(got) != 0 {
		t.Errorf("octagon offered for 9 cores: %v", got)
	}
}

func TestLibraryValidatesAndCoversKinds(t *testing.T) {
	lib, err := Library(12, LibraryOptions{IncludeExtras: true})
	if err != nil {
		t.Fatal(err)
	}
	kinds := make(map[Kind]bool)
	for _, topo := range lib {
		if topo.NumTerminals() < 12 {
			t.Errorf("%s cannot host 12 cores", topo.Name())
		}
		if err := Validate(topo); err != nil {
			t.Errorf("Validate(%s): %v", topo.Name(), err)
		}
		kinds[topo.Kind()] = true
	}
	for _, k := range []Kind{Mesh, Torus, Hypercube, Butterfly, Clos, Star} {
		if !kinds[k] {
			t.Errorf("library missing kind %v", k)
		}
	}
	if kinds[Octagon] {
		t.Error("octagon offered for 12 cores")
	}
}

func TestByNameRoundTrip(t *testing.T) {
	lib, err := Library(8, LibraryOptions{IncludeExtras: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range lib {
		got, err := ByName(topo.Name())
		if err != nil {
			t.Errorf("ByName(%s): %v", topo.Name(), err)
			continue
		}
		if got.Name() != topo.Name() {
			t.Errorf("ByName(%s).Name() = %s", topo.Name(), got.Name())
		}
		if got.NumTerminals() != topo.NumTerminals() || got.NumRouters() != topo.NumRouters() {
			t.Errorf("ByName(%s) rebuilt different topology", topo.Name())
		}
	}
	for _, bad := range []string{"mesh-3", "blah", "mesh-3x4x5", "clos-m1", "mesh-3x4 junk"} {
		if _, err := ByName(bad); err == nil {
			t.Errorf("ByName(%q) succeeded", bad)
		}
	}
}

// Property: for random mesh/torus/hypercube configs and random pairs, the
// quadrant preserves minimum-hop distance and always contains both
// endpoint routers. (Validate checks this exhaustively for fixed sizes;
// here random sizes are covered too.)
func TestQuadrantPreservesDistanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var topo Topology
		var err error
		switch rng.Intn(3) {
		case 0:
			topo, err = NewMesh(2+rng.Intn(4), 2+rng.Intn(4))
		case 1:
			topo, err = NewTorus(3+rng.Intn(3), 3+rng.Intn(3))
		default:
			topo, err = NewHypercube(2 + rng.Intn(3))
		}
		if err != nil {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			s := rng.Intn(topo.NumTerminals())
			d := rng.Intn(topo.NumTerminals())
			if s == d {
				continue
			}
			q := topo.Quadrant(s, d)
			if !q[topo.InjectRouter(s)] || !q[topo.EjectRouter(d)] {
				return false
			}
			qd := topo.Graph().HopDistance(topo.InjectRouter(s), topo.EjectRouter(d), q)
			if qd+1 != topo.MinHops(s, d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestKindStringAndDirect(t *testing.T) {
	cases := map[Kind]string{
		Mesh: "mesh", Torus: "torus", Hypercube: "hypercube",
		Butterfly: "butterfly", Clos: "clos", Octagon: "octagon", Star: "star",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %s, want %s", int(k), k.String(), want)
		}
	}
	if !Mesh.Direct() || Clos.Direct() || Butterfly.Direct() || Star.Direct() {
		t.Error("Direct() misclassifies")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind produced empty string")
	}
}

// TestChannelsGroupDirectedLinks checks the physical-channel grouping the
// fault subsystem's link-failure elements are built from: every directed
// link lands in exactly one channel, both directions of a bidirectional
// connection share a channel, one-way stage links stand alone, and the
// count agrees with PhysicalLinks.
func TestChannelsGroupDirectedLinks(t *testing.T) {
	topos := []Topology{
		mustMesh(t, 2, 3),
		mustTorus(t, 3, 3),
		mustHypercube(t, 3),
		mustButterfly(t, 2, 3),
		mustClos(t, 3, 4, 3),
	}
	for _, topo := range topos {
		chans := Channels(topo)
		if len(chans) != PhysicalLinks(topo) {
			t.Errorf("%s: %d channels, PhysicalLinks %d", topo.Name(), len(chans), PhysicalLinks(topo))
		}
		seen := make(map[int]bool)
		links := topo.Links()
		for ci, ch := range chans {
			if len(ch) == 0 {
				t.Errorf("%s: empty channel %d", topo.Name(), ci)
			}
			a, b := links[ch[0]].From, links[ch[0]].To
			if a > b {
				a, b = b, a
			}
			for i, id := range ch {
				if seen[id] {
					t.Errorf("%s: link %d in two channels", topo.Name(), id)
				}
				seen[id] = true
				la, lb := links[id].From, links[id].To
				if la > lb {
					la, lb = lb, la
				}
				if la != a || lb != b {
					t.Errorf("%s: channel %d mixes router pairs", topo.Name(), ci)
				}
				if i > 0 && ch[i-1] >= id {
					t.Errorf("%s: channel %d link IDs not increasing", topo.Name(), ci)
				}
			}
		}
		if len(seen) != len(links) {
			t.Errorf("%s: channels cover %d of %d links", topo.Name(), len(seen), len(links))
		}
	}
	// Mesh channels are all bidirectional pairs; butterfly stage links are
	// one-way singletons.
	for _, ch := range Channels(mustMesh(t, 2, 3)) {
		if len(ch) != 2 {
			t.Errorf("mesh channel has %d links, want 2", len(ch))
		}
	}
	for _, ch := range Channels(mustButterfly(t, 2, 3)) {
		if len(ch) != 1 {
			t.Errorf("butterfly channel has %d links, want 1", len(ch))
		}
	}
}
