package topology

import (
	"strings"
	"testing"
)

// ringSpec builds a valid 4-router ring with one terminal per router.
func ringSpec(name string) CustomSpec {
	return CustomSpec{
		Name:        name,
		NumRouters:  4,
		BiLinks:     [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
		Terminals:   []int{0, 1, 2, 3},
		RouterPos:   [][2]float64{{0, 0}, {1, 0}, {1, 1}, {0, 1}},
		TerminalPos: [][2]float64{{0, -0.5}, {1, -0.5}, {1, 1.5}, {0, 1.5}},
	}
}

func TestNewCustomRing(t *testing.T) {
	topo, err := NewCustom(ringSpec("custom-ring4"))
	if err != nil {
		t.Fatal(err)
	}
	if topo.Kind() != Synth {
		t.Errorf("kind = %v, want synth", topo.Kind())
	}
	if !topo.Kind().Direct() {
		t.Error("synth kind must count as direct for NI-link accounting")
	}
	if got := topo.MinHops(0, 2); got != 3 {
		t.Errorf("MinHops(0,2) = %d, want 3 (two links + first router)", got)
	}
	// The quadrant for opposite corners must admit both two-link routes
	// around the ring and still preserve the minimum distance (checked by
	// Validate, re-checked here for the precomputed masks).
	q := topo.Quadrant(0, 2)
	for r, ok := range q {
		if !ok {
			t.Errorf("quadrant 0->2 excludes router %d of a symmetric ring", r)
		}
	}
}

func TestNewCustomRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*CustomSpec)
		want string
	}{
		{"empty name", func(s *CustomSpec) { s.Name = "" }, "needs a name"},
		{"self loop", func(s *CustomSpec) { s.BiLinks[0] = [2]int{1, 1} }, "self-loop"},
		{"dup link", func(s *CustomSpec) { s.BiLinks[1] = [2]int{1, 0} }, "repeats link"},
		{"link range", func(s *CustomSpec) { s.BiLinks[0] = [2]int{0, 9} }, "out of range"},
		{"terminal range", func(s *CustomSpec) { s.Terminals[2] = -1 }, "out of range"},
		{"router pos len", func(s *CustomSpec) { s.RouterPos = s.RouterPos[:2] }, "router positions"},
		{"terminal pos len", func(s *CustomSpec) { s.TerminalPos = s.TerminalPos[:1] }, "terminal positions"},
		{"disconnected", func(s *CustomSpec) { s.BiLinks = s.BiLinks[:2] }, "disconnected"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := ringSpec("custom-bad")
			tc.mut(&spec)
			_, err := NewCustom(spec)
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestRegisterAndByName(t *testing.T) {
	const name = "custom-registry-ring"
	topo, err := NewCustom(ringSpec(name))
	if err != nil {
		t.Fatal(err)
	}
	if err := Register(topo); err != nil {
		t.Fatal(err)
	}
	defer Unregister(name)

	got, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != name || got.NumRouters() != 4 {
		t.Errorf("ByName returned %s with %d routers", got.Name(), got.NumRouters())
	}
	found := false
	for _, r := range Registered() {
		if r.Name() == name {
			found = true
		}
	}
	if !found {
		t.Error("Registered() does not list the custom topology")
	}

	// Library names are still resolved by construction, never shadowed.
	if err := Register(mustCustomNamed(t, "mesh-2x2")); err == nil {
		t.Error("registry accepted a library-grammar name")
	}

	Unregister(name)
	if _, err := ByName(name); err == nil {
		t.Error("ByName still resolves an unregistered custom topology")
	}
}

func mustCustomNamed(t *testing.T, name string) Topology {
	t.Helper()
	spec := ringSpec(name)
	c, err := NewCustom(spec)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestLibraryOptionsRejectInvalid is the regression test for the silent
// coercion bug: explicit MaxButterflyRadix/MaxClosFanIn values below 2
// used to be bumped to the default 4; they must surface as errors.
func TestLibraryOptionsRejectInvalid(t *testing.T) {
	for _, opts := range []LibraryOptions{
		{MaxButterflyRadix: 1},
		{MaxButterflyRadix: -3},
		{MaxClosFanIn: 1},
		{MaxClosFanIn: -1},
	} {
		if _, err := Enumerate(Butterfly, 8, opts); err == nil {
			t.Errorf("Enumerate accepted invalid options %+v", opts)
		}
		if _, err := Library(8, opts); err == nil {
			t.Errorf("Library accepted invalid options %+v", opts)
		}
	}
	// Zero still selects the defaults and valid explicit values still work.
	if ts, err := Enumerate(Butterfly, 8, LibraryOptions{}); err != nil || len(ts) == 0 {
		t.Errorf("default options broke: %v (%d topologies)", err, len(ts))
	}
	if ts, err := Enumerate(Butterfly, 8, LibraryOptions{MaxButterflyRadix: 2}); err != nil || len(ts) == 0 {
		t.Errorf("explicit radix 2 broke: %v (%d topologies)", err, len(ts))
	}
}
