package topology

import "fmt"

// hypercubeTopology is a 2-ary n-cube (Fig. 1c): 2^dim routers, each the
// attachment point of one terminal, with neighbours at Hamming distance 1.
type hypercubeTopology struct {
	*base
	dim int
}

// NewHypercube constructs a hypercube of the given dimension (>= 1).
func NewHypercube(dim int) (Topology, error) {
	if dim < 1 || dim > 16 {
		return nil, fmt.Errorf("topology: invalid hypercube dimension %d", dim)
	}
	n := 1 << dim
	h := &hypercubeTopology{
		base: newBase(fmt.Sprintf("hypercube-%d", dim), Hypercube, n, n),
		dim:  dim,
	}
	// Project onto a 2-D grid for placement: the low half of the address
	// bits select the column, the high half the row.
	loBits := (dim + 1) / 2
	for u := 0; u < n; u++ {
		for b := 0; b < dim; b++ {
			v := u ^ (1 << b)
			if u < v { // add each undirected pair once
				h.addBiLink(u, v)
			}
		}
		h.inject[u] = u
		h.eject[u] = u
		h.pos[u] = [2]float64{float64(u & (1<<loBits - 1)), float64(u >> loBits)}
		h.tpos[u] = h.pos[u]
	}
	return h, nil
}

// Dim returns the hypercube dimension; dimension-ordered routing uses it.
func (h *hypercubeTopology) Dim() int { return h.dim }

// Quadrant returns the subcube spanned by the source and destination: all
// routers agreeing with both endpoints on every address bit where the
// endpoints agree (the (0,*,*) example of Section 4.3).
func (h *hypercubeTopology) Quadrant(src, dst int) []bool {
	same := ^(src ^ dst) // bits where src and dst agree
	mask := make([]bool, h.NumRouters())
	for u := 0; u < h.NumRouters(); u++ {
		if (u^src)&same&(1<<h.dim-1) == 0 {
			mask[u] = true
		}
	}
	return mask
}
