// Package topology implements the NoC topology graphs of SUNMAP
// (Definition 2 of the paper): mesh, torus, hypercube (2-ary n-cube),
// k-ary n-fly butterfly and 3-stage Clos, plus the octagon and star
// networks the paper lists as easy library extensions.
//
// A Topology exposes its router-level connectivity, the attachment points
// (terminals) cores can be mapped to, per-pair quadrant graphs (Section 4.3)
// used to restrict shortest-path searches, and a relative placement template
// consumed by the floorplanner.
//
// Hop counts follow the paper's convention of counting routers traversed:
// two adjacent mesh nodes are 2 hops apart, an n-stage butterfly is always
// n hops, a 3-stage Clos always 3.
package topology

import (
	"fmt"
	"sync"

	"sunmap/internal/graph"
)

// Kind enumerates the topology families in the library.
type Kind int

// Topology families. The first five are the paper's library; Octagon and
// Star are the extensions mentioned in Section 1. Synth marks
// application-specific topologies synthesized from a core graph
// (internal/synth) rather than drawn from the standard library.
const (
	Mesh Kind = iota
	Torus
	Hypercube
	Butterfly
	Clos
	Octagon
	Star
	Synth
)

// String returns the lower-case family name.
func (k Kind) String() string {
	switch k {
	case Mesh:
		return "mesh"
	case Torus:
		return "torus"
	case Hypercube:
		return "hypercube"
	case Butterfly:
		return "butterfly"
	case Clos:
		return "clos"
	case Octagon:
		return "octagon"
	case Star:
		return "star"
	case Synth:
		return "synth"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Direct reports whether every terminal has a dedicated router (direct
// topology, Fig. 1) as opposed to switches shared by several cores
// (indirect, Fig. 2).
func (k Kind) Direct() bool {
	switch k {
	case Mesh, Torus, Hypercube, Octagon, Synth:
		// Synthesized topologies attach each core to exactly one switch
		// (inject and eject coincide), so they count one NI link per core
		// like the direct families, even when a switch hosts several cores.
		return true
	default:
		return false
	}
}

// Link is a directed router-to-router channel. ID indexes per-link state
// (loads, capacities) and equals the link's position in Links().
type Link struct {
	ID   int
	From int // source router
	To   int // destination router
}

// Topology is the common contract of every network in the library.
type Topology interface {
	// Name identifies the concrete configuration, e.g. "mesh-3x4".
	Name() string
	// Kind returns the topology family.
	Kind() Kind
	// NumTerminals returns the number of core attachment points. A core
	// graph with |V| cores maps onto the topology when |V| <= NumTerminals.
	NumTerminals() int
	// NumRouters returns the number of switches.
	NumRouters() int
	// Links returns all directed router-to-router channels. The slice is
	// owned by the topology and must not be modified.
	Links() []Link
	// Graph returns the router connectivity as a digraph whose arc IDs are
	// link IDs. Callers must not mutate it.
	Graph() *graph.Digraph
	// InjectRouter returns the router where terminal t's traffic enters.
	InjectRouter(t int) int
	// EjectRouter returns the router where traffic addressed to terminal t
	// leaves the network.
	EjectRouter(t int) int
	// RouterDegree returns the number of inter-router input and output
	// channels of router r (core ports excluded; the physical models add
	// one port per mapped core).
	RouterDegree(r int) (in, out int)
	// Quadrant returns the allowed-router mask for traffic from terminal
	// src to terminal dst: the topology-specific region guaranteed to
	// contain every minimum path (Section 4.3 of the paper).
	Quadrant(src, dst int) []bool
	// MinHops returns the number of routers traversed on a minimum path
	// from terminal src to terminal dst.
	MinHops(src, dst int) int
	// Position returns router r's relative placement in abstract grid
	// units; the floorplanner turns these into exact coordinates.
	Position(r int) (x, y float64)
	// TerminalPosition returns the relative placement of the core block
	// attached to terminal t.
	TerminalPosition(t int) (x, y float64)
}

// GridLike is implemented by mesh and torus topologies; dimension-ordered
// (XY) routing consults the grid shape.
type GridLike interface {
	GridDims() (rows, cols int)
}

// CubeLike is implemented by hypercubes; dimension-ordered routing fixes
// address bits from least to most significant.
type CubeLike interface {
	Dim() int
}

// ClosLike is implemented by Clos networks; oblivious routing picks a
// middle switch deterministically from the terminal pair.
type ClosLike interface {
	Params() (m, n, r int)
}

// FlyLike is implemented by butterflies; the adversarial traffic generator
// scales its group size with the radix.
type FlyLike interface {
	Radix() int
	Stages() int
}

// base carries the state shared by all concrete topologies.
type base struct {
	name         string
	kind         Kind
	numTerminals int
	links        []Link
	rg           *graph.Digraph
	inject       []int
	eject        []int
	pos          [][2]float64
	tpos         [][2]float64
	inDeg        []int
	outDeg       []int

	// minHops memoizes the all-pairs terminal min-hop table. MinHops sits
	// inside the mapper's greedy placement (O(terminals² · cores) lookups
	// per Map call) and topology validation; running a BFS per query made
	// it the dominant setup cost. The table is built once per topology on
	// first use — one BFS per distinct inject router — and topologies are
	// shared across engine workers, hence the sync.Once guard.
	minHopsOnce sync.Once
	minHops     []int // src*numTerminals+dst -> routers traversed (-1 unreachable)
}

func newBase(name string, kind Kind, numRouters, numTerminals int) *base {
	return &base{
		name:         name,
		kind:         kind,
		numTerminals: numTerminals,
		rg:           graph.NewDigraph(numRouters),
		inject:       make([]int, numTerminals),
		eject:        make([]int, numTerminals),
		pos:          make([][2]float64, numRouters),
		tpos:         make([][2]float64, numTerminals),
		inDeg:        make([]int, numRouters),
		outDeg:       make([]int, numRouters),
	}
}

// addLink inserts one directed channel u->v.
func (b *base) addLink(u, v int) {
	id := len(b.links)
	b.links = append(b.links, Link{ID: id, From: u, To: v})
	b.rg.AddArc(u, v, id)
	b.outDeg[u]++
	b.inDeg[v]++
}

// addBiLink inserts channels in both directions.
func (b *base) addBiLink(u, v int) {
	b.addLink(u, v)
	b.addLink(v, u)
}

func (b *base) Name() string          { return b.name }
func (b *base) Kind() Kind            { return b.kind }
func (b *base) NumTerminals() int     { return b.numTerminals }
func (b *base) NumRouters() int       { return b.rg.NumVertices() }
func (b *base) Links() []Link         { return b.links }
func (b *base) Graph() *graph.Digraph { return b.rg }

func (b *base) InjectRouter(t int) int { return b.inject[t] }
func (b *base) EjectRouter(t int) int  { return b.eject[t] }

func (b *base) RouterDegree(r int) (in, out int) { return b.inDeg[r], b.outDeg[r] }

func (b *base) Position(r int) (x, y float64)         { return b.pos[r][0], b.pos[r][1] }
func (b *base) TerminalPosition(t int) (x, y float64) { return b.tpos[t][0], b.tpos[t][1] }

// MinHops counts routers on a shortest path: the router-graph hop distance
// between the inject and eject routers, plus one for the first router. This
// yields dist+1 for direct topologies, the stage count for butterflies and
// 3 for Clos networks, matching Section 6.1's accounting. Answers come from
// a lazily built all-pairs table, so after the first call per topology a
// lookup is O(1) and allocation-free.
func (b *base) MinHops(src, dst int) int {
	b.minHopsOnce.Do(b.buildMinHops)
	return b.minHops[src*b.numTerminals+dst]
}

// buildMinHops fills the terminal-pair table with one BFS per distinct
// inject router.
func (b *base) buildMinHops() {
	t := b.numTerminals
	table := make([]int, t*t)
	distFrom := make(map[int][]int) // inject router -> hop distances
	for s := 0; s < t; s++ {
		r := b.inject[s]
		d, ok := distFrom[r]
		if !ok {
			d = b.rg.BFSDistances(r, false)
			distFrom[r] = d
		}
		for e := 0; e < t; e++ {
			hd := d[b.eject[e]]
			if hd < 0 {
				table[s*t+e] = -1
			} else {
				table[s*t+e] = hd + 1
			}
		}
	}
	b.minHops = table
}

// allRouters returns a mask admitting every router; small topologies use it
// as their quadrant.
func (b *base) allRouters() []bool {
	m := make([]bool, b.NumRouters())
	for i := range m {
		m[i] = true
	}
	return m
}

// PhysicalLinks counts physical channels: bidirectional pairs collapse to
// one (mesh-style links), one-way channels (butterfly/clos stages) count
// individually. Fig. 6(b)'s resource-utilization chart uses this count
// plus one network-interface link per mapped core.
func PhysicalLinks(t Topology) int {
	return len(Channels(t))
}

// Channels groups the directed links into physical channels: every link
// between one unordered router pair belongs to the same channel, so a
// bidirectional mesh connection is one channel of two directed links
// while a one-way butterfly or Clos stage link is a channel of its own.
// A physical fault takes out a whole channel — the fault subsystem's
// link-failure elements are exactly these groups. Channel order is
// deterministic: channels appear in order of their first (lowest-ID)
// member link, and each group lists its link IDs in increasing order.
func Channels(t Topology) [][]int {
	idx := make(map[[2]int]int)
	var chans [][]int
	for _, l := range t.Links() {
		a, b := l.From, l.To
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		ci, ok := idx[key]
		if !ok {
			ci = len(chans)
			idx[key] = ci
			chans = append(chans, nil)
		}
		chans[ci] = append(chans[ci], l.ID)
	}
	return chans
}

// Validate checks structural invariants shared by all topologies. It is
// exercised by tests and by the registry after construction.
func Validate(t Topology) error {
	if t.NumTerminals() <= 0 {
		return fmt.Errorf("topology %s: no terminals", t.Name())
	}
	if t.NumRouters() <= 0 {
		return fmt.Errorf("topology %s: no routers", t.Name())
	}
	for i, l := range t.Links() {
		if l.ID != i {
			return fmt.Errorf("topology %s: link %d has ID %d", t.Name(), i, l.ID)
		}
		if l.From < 0 || l.From >= t.NumRouters() || l.To < 0 || l.To >= t.NumRouters() {
			return fmt.Errorf("topology %s: link %d endpoints out of range", t.Name(), i)
		}
		if l.From == l.To {
			return fmt.Errorf("topology %s: link %d is a self-loop", t.Name(), i)
		}
	}
	for term := 0; term < t.NumTerminals(); term++ {
		if r := t.InjectRouter(term); r < 0 || r >= t.NumRouters() {
			return fmt.Errorf("topology %s: terminal %d inject router %d out of range", t.Name(), term, r)
		}
		if r := t.EjectRouter(term); r < 0 || r >= t.NumRouters() {
			return fmt.Errorf("topology %s: terminal %d eject router %d out of range", t.Name(), term, r)
		}
	}
	// Every terminal pair must be connected and the quadrant must preserve
	// the minimum-hop distance (the defining property of Section 4.3).
	for s := 0; s < t.NumTerminals(); s++ {
		for d := 0; d < t.NumTerminals(); d++ {
			if s == d {
				continue
			}
			mh := t.MinHops(s, d)
			if mh < 0 {
				return fmt.Errorf("topology %s: terminals %d->%d disconnected", t.Name(), s, d)
			}
			q := t.Quadrant(s, d)
			if len(q) != t.NumRouters() {
				return fmt.Errorf("topology %s: quadrant mask has length %d, want %d",
					t.Name(), len(q), t.NumRouters())
			}
			qd := t.Graph().HopDistance(t.InjectRouter(s), t.EjectRouter(d), q)
			if qd < 0 {
				return fmt.Errorf("topology %s: quadrant %d->%d disconnects endpoints", t.Name(), s, d)
			}
			if qd+1 != mh {
				return fmt.Errorf("topology %s: quadrant %d->%d inflates hops: %d vs %d",
					t.Name(), s, d, qd+1, mh)
			}
		}
	}
	return nil
}
