package mapping

import (
	"context"
	"testing"

	"sunmap/internal/apps"
	"sunmap/internal/graph"
	"sunmap/internal/route"
	"sunmap/internal/topology"
)

// TestIncrementalMatchesReference is the regression gate for the
// incremental swap evaluator: over every library topology and three real
// applications, the optimized mapper must reproduce the retained naive
// reference evaluator *exactly* — same assignment, same number of accepted
// swaps, bitwise-equal cost and link loads. Any divergence means the
// splice/dirty-link reasoning in incremental.go is broken for some
// topology shape, so the comparisons use ==, not tolerances.
func TestIncrementalMatchesReference(t *testing.T) {
	cases := []struct {
		app  string
		g    *graph.CoreGraph
		opts []Options
	}{
		{"vopd", apps.VOPD(), []Options{
			{Routing: route.MinPath, Objective: MinDelay, CapacityMBps: 500},
			{Routing: route.MinPath, Objective: Weighted, Weights: Weights{Delay: 1, Area: 1, Power: 1}, CapacityMBps: 500},
			{Routing: route.DimensionOrdered, Objective: MinPower, CapacityMBps: 500},
		}},
		{"dsp", apps.DSPFilter(), []Options{
			{Routing: route.MinPath, Objective: MinDelay, CapacityMBps: 500},
			{Routing: route.MinPath, Objective: MinArea},
			{Routing: route.SplitMin, Objective: MinDelay, CapacityMBps: 500},
		}},
		{"mpeg4", apps.MPEG4(), []Options{
			{Routing: route.MinPath, Objective: MinDelay, CapacityMBps: 500},
			{Routing: route.MinPath, Objective: MinPower, CapacityMBps: 500},
		}},
		// The escalation workload of Section 6.1: split routing, where the
		// incremental evaluator splices whole chunk decompositions.
		{"mpeg4-split", apps.MPEG4(), []Options{
			{Routing: route.SplitMin, Objective: MinDelay, CapacityMBps: 500, SwapPasses: 2},
			{Routing: route.SplitAll, Objective: MinDelay, CapacityMBps: 500, SwapPasses: 1},
		}},
	}
	ctx := context.Background()
	// One shared Scratch across every fast-side run: reuse across apps,
	// topologies and option sets must never leak state between calls.
	sc := NewScratch()
	for _, tc := range cases {
		lib, err := topology.Library(tc.g.NumCores(), topology.LibraryOptions{IncludeExtras: true})
		if err != nil {
			t.Fatalf("%s: library: %v", tc.app, err)
		}
		for _, topo := range lib {
			for _, opts := range tc.opts {
				fast, err := MapContextWith(ctx, tc.g, topo, opts, sc)
				if err != nil {
					t.Fatalf("%s on %s (%v): incremental: %v", tc.app, topo.Name(), opts.Routing, err)
				}
				ref, err := mapContext(ctx, tc.g, topo, opts, nil, true)
				if err != nil {
					t.Fatalf("%s on %s (%v): reference: %v", tc.app, topo.Name(), opts.Routing, err)
				}
				compareResults(t, tc.app, topo.Name(), opts, fast, ref)
			}
		}
	}
}

func compareResults(t *testing.T, app, topo string, opts Options, fast, ref *Result) {
	t.Helper()
	tag := app + " on " + topo + " (" + opts.Routing.String() + "/" + opts.Objective.String() + ")"
	if len(fast.Assign) != len(ref.Assign) {
		t.Fatalf("%s: assign lengths differ", tag)
	}
	for i := range fast.Assign {
		if fast.Assign[i] != ref.Assign[i] {
			t.Fatalf("%s: assignment differs: %v vs %v", tag, fast.Assign, ref.Assign)
		}
	}
	if fast.SwapsApplied != ref.SwapsApplied {
		t.Errorf("%s: swaps applied %d vs %d", tag, fast.SwapsApplied, ref.SwapsApplied)
	}
	if fast.Cost != ref.Cost {
		t.Errorf("%s: cost %v vs %v", tag, fast.Cost, ref.Cost)
	}
	if fast.AvgHops != ref.AvgHops {
		t.Errorf("%s: avg hops %v vs %v", tag, fast.AvgHops, ref.AvgHops)
	}
	if fast.PowerMW != ref.PowerMW {
		t.Errorf("%s: power %v vs %v", tag, fast.PowerMW, ref.PowerMW)
	}
	if fast.DesignAreaMM2 != ref.DesignAreaMM2 {
		t.Errorf("%s: design area %v vs %v", tag, fast.DesignAreaMM2, ref.DesignAreaMM2)
	}
	if len(fast.Route.LinkLoads) != len(ref.Route.LinkLoads) {
		t.Fatalf("%s: link-load lengths differ", tag)
	}
	for i := range fast.Route.LinkLoads {
		if fast.Route.LinkLoads[i] != ref.Route.LinkLoads[i] {
			t.Fatalf("%s: link %d load %v vs %v", tag, i, fast.Route.LinkLoads[i], ref.Route.LinkLoads[i])
		}
	}
	if fast.BandwidthOK != ref.BandwidthOK || fast.AreaOK != ref.AreaOK || fast.AspectOK != ref.AspectOK {
		t.Errorf("%s: feasibility verdicts differ", tag)
	}
}

// TestIncrementalMatchesReferenceSynthetic widens the shape coverage with
// random applications at partial occupancy (free terminals make
// occupied-free swaps common, the case where a commodity's endpoints move
// without a partner core).
func TestIncrementalMatchesReferenceSynthetic(t *testing.T) {
	ctx := context.Background()
	sc := NewScratch()
	for seed := int64(1); seed <= 4; seed++ {
		g := apps.Synthetic(7+int(seed), 0.3, 600, seed)
		for _, mk := range []struct {
			name string
			topo topology.Topology
		}{
			{"mesh", mustTopo(topology.NewMesh(3, 4))},
			{"hypercube", mustTopo(topology.NewHypercube(4))},
			{"clos", mustTopo(topology.NewClos(4, 4, 4))},
			{"star", mustTopo(topology.NewStar(13))},
		} {
			opts := Options{Routing: route.MinPath, Objective: MinDelay, CapacityMBps: 400}
			fast, err := MapContextWith(ctx, g, mk.topo, opts, sc)
			if err != nil {
				t.Fatalf("seed %d on %s: incremental: %v", seed, mk.name, err)
			}
			ref, err := mapContext(ctx, g, mk.topo, opts, nil, true)
			if err != nil {
				t.Fatalf("seed %d on %s: reference: %v", seed, mk.name, err)
			}
			compareResults(t, g.Name(), mk.topo.Name(), opts, fast, ref)
		}
	}
}
