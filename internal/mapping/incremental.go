// Incremental swap evaluation.
//
// The reference sweep evaluates a candidate swap by re-routing every
// commodity from scratch and re-running the whole area/power cost model.
// The incremental evaluator in this file produces *bit-identical* results
// while doing a small fraction of that work. Two facts make this possible:
//
//  1. Routing is a deterministic function of its visible inputs. A
//     commodity's path depends only on its terminal pair and — for the
//     congestion-aware MinPath function — on the link loads inside its
//     quadrant at its position in the fixed decreasing-bandwidth order.
//     When a candidate evaluation replays commodities in that order, any
//     commodity whose endpoints did not move and whose quadrant contains
//     no link where the candidate's load history diverged from the
//     baseline's would run Dijkstra over identical weights and produce the
//     identical path, so its cached baseline path is spliced in instead.
//     Divergence ("dirty" links) only arises from commodities that were
//     actually re-routed onto a different path, which a swap keeps local.
//     Dimension-ordered paths read no loads at all, so only the moved
//     commodities ever re-route. The splitting functions splice at the
//     whole-commodity granularity: a commodity's chunk decomposition is a
//     deterministic function of the loads it can read (the minimum-hop
//     DAG's arcs for SM, everything for SA), so when none of those
//     diverged, the recorded merged-path/chunk structure is replayed with
//     the identical add/undo/commit arithmetic.
//
//  2. The scalar cost folds are replayed, not patched. Candidate link and
//     router loads are rebuilt in commodity order into reusable arrays
//     (bitwise equal to a from-scratch route because each element sees the
//     same additions in the same order), and the area/power aggregation
//     then runs the very same loops over them — same functions, same
//     iteration order, so the floats match to the last ulp and every swap
//     accept/reject decision lands exactly as the reference's would.
//     Assignment-independent terms (estimated link lengths and their
//     wiring area, total core area, NI hookup power) are computed once per
//     Map call; they are constants of the replayed expressions, not
//     approximations, so no drift can accumulate and no periodic full
//     re-evaluation is needed.
//
// Everything the evaluator touches lives in a Scratch so steady-state
// candidate evaluation allocates nothing (BenchmarkMap/swap-eval asserts
// 0 allocs/op).
package mapping

import (
	"context"
	"math"
	"slices"

	"sunmap/internal/area"
	"sunmap/internal/floorplan"
	"sunmap/internal/graph"
	"sunmap/internal/power"
	"sunmap/internal/route"
	"sunmap/internal/topology"
)

// Scratch holds the reusable state of one mapping worker: the routing
// solver, the incremental evaluator's load arrays, path buffers and
// switch-config scratch, the greedy-placement and occupancy buffers, and
// the full-evaluation workspace (a routing Result plus the floorplanner's
// LP workspace) used by every non-incremental cost evaluation — the final
// exact evaluation of each Map call, the reference sweep, and the
// LP-in-the-loop mode. Buffers are bound to a topology per Map call and
// regrown as needed, so one Scratch serves an entire library sweep. It is
// single-goroutine state: give each worker its own (internal/engine pools
// them via internal/pool.Free).
type Scratch struct {
	rt  *route.Router
	inc incState
	fp  *floorplan.Planner

	// Greedy placement / sweep occupancy buffers.
	assign, occupant []int
	greedyFree       []bool

	// Full-evaluation scratch: the routing result every ev.cost call
	// accumulates into (cloned before escaping) and the switch-area list
	// fed to the floorplanner.
	evalRes route.Result
	swAreas []float64
}

// NewScratch returns an empty Scratch; buffers grow on first use.
func NewScratch() *Scratch {
	return &Scratch{rt: route.NewRouter(), fp: floorplan.NewPlanner()}
}

// incState is the incremental candidate evaluator.
type incState struct {
	ev    *evaluator
	rt    *route.Router
	topo  topology.Topology
	comms []graph.Commodity
	links []topology.Link

	oblivious     bool // DO: paths are load-independent
	loadSensitive bool // MP: paths read link loads inside the quadrant
	splitMin      bool // SM: chunk paths read loads on the min-hop DAG
	splitAll      bool // SA: chunk paths read loads anywhere
	effChunks     int  // splitting granularity after defaulting

	// Assignment-independent constants of the cost model.
	cores     []graph.Core
	linkLens  []float64
	linkArea  float64
	coreArea  float64
	niMW      float64
	totalMBps float64

	// Hop-lower-bound pruning scratch: hopSuffix[k] is the
	// bandwidth-weighted minimum-hop sum of commodities k.. under the
	// candidate assignment.
	hopSuffix []float64

	// Baseline: the routed structure of every commodity under the
	// currently accepted assignment.
	base []flowRec

	// Candidate scratch, rebuilt by every eval call.
	res             route.Result // loads + hop/total aggregates
	cand            []flowRec
	reroutedIDs     []int
	dirtyMark       []int
	dirtyIDs        []int
	dirtyEpoch      int
	coreIn, coreOut []int
	cfgs            []area.SwitchConfig
	scratchEval     evalResult
}

// sweepIncremental runs the pairwise-swap improvement with the incremental
// evaluator. It mirrors sweepReference move for move; only the candidate
// evaluation mechanism differs.
func sweepIncremental(ctx context.Context, ev *evaluator, assign, occupant []int, sc *Scratch) (int, error) {
	st := &sc.inc
	st.bind(ev, sc.rt)
	baseCost, _, err := st.eval(assign, -1, -1, true, math.Inf(1))
	if err != nil {
		return 0, err
	}
	st.promote()
	ev.norm = baseCost.raw // normalize weighted objectives by the seed mapping
	curCost := ev.objective(baseCost)
	// Hop-lower-bound pruning applies only under the pure MinDelay
	// objective, where the bound argument (see eval) is certified; other
	// objectives evaluate every candidate, exactly like the reference.
	usePrune := ev.opts.Objective == MinDelay && st.totalMBps > 0
	numT := ev.topo.NumTerminals()
	swaps := 0
	for pass := 0; pass < ev.opts.SwapPasses; pass++ {
		improved := false
		for a := 0; a < numT; a++ {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			for b := a + 1; b < numT; b++ {
				if occupant[a] == -1 && occupant[b] == -1 {
					continue
				}
				bound := math.Inf(1)
				if usePrune {
					bound = curCost
				}
				ca, cb := occupant[a], occupant[b] // the cores about to move
				swapTerminals(assign, occupant, a, b)
				cand, pruned, err := st.eval(assign, ca, cb, false, bound)
				if err != nil {
					return 0, err
				}
				if pruned {
					swapTerminals(assign, occupant, a, b) // undo
					continue
				}
				if c := ev.objective(cand); c < curCost-1e-12 {
					curCost = c
					improved = true
					swaps++
					st.promote()
				} else {
					swapTerminals(assign, occupant, a, b) // undo
				}
			}
		}
		if !improved {
			break
		}
	}
	return swaps, nil
}

// bind attaches the evaluator state to one Map call, resizing buffers and
// precomputing the assignment-independent cost-model terms.
func (st *incState) bind(ev *evaluator, rt *route.Router) {
	st.ev = ev
	st.rt = rt
	st.topo = ev.topo
	st.comms = ev.comms
	st.links = ev.topo.Links()
	rt.Bind(ev.topo)

	fn := ev.opts.Routing
	st.oblivious = fn == route.DimensionOrdered
	st.loadSensitive = fn == route.MinPath
	st.splitMin = fn == route.SplitMin
	st.splitAll = fn == route.SplitAll
	st.effChunks = ev.opts.Chunks
	if st.effChunks <= 0 {
		st.effChunks = route.DefaultChunks
	}

	st.cores = ev.coreList()
	// Estimated link lengths depend only on the topology template and the
	// application's average core pitch — not on the assignment — so the
	// in-loop wiring-area term is a per-Map constant.
	st.linkLens, _ = floorplan.EstimateLinkLengthsMM(st.topo, nil, st.cores, ev.opts.Floorplan)
	st.linkArea = area.LinkAreaMM2(st.linkLens, ev.opts.Tech)
	st.coreArea = ev.g.TotalCoreAreaMM2()
	st.niMW = ev.niHookupMW(st.cores)
	st.totalMBps = 0
	for _, c := range st.comms {
		st.totalMBps += c.ValueMBps
	}

	m := len(st.comms)
	st.base = resizeRecs(st.base, m)
	st.cand = resizeRecs(st.cand, m)
	st.reroutedIDs = st.reroutedIDs[:0]

	l, r := len(st.links), st.topo.NumRouters()
	st.dirtyMark = resizeInts(st.dirtyMark, l)
	st.dirtyIDs = st.dirtyIDs[:0]
	st.dirtyEpoch = 0
	st.coreIn = resizeInts(st.coreIn, r)
	st.coreOut = resizeInts(st.coreOut, r)
	if cap(st.cfgs) < r {
		st.cfgs = make([]area.SwitchConfig, r)
	}
	st.cfgs = st.cfgs[:r]
}

// pruneSlack is the relative safety margin of the hop-lower-bound prune:
// a candidate is rejected without (full) evaluation only when its
// certified lower bound clears the current cost by this margin, which
// exceeds any float divergence between the bound's arithmetic and the
// evaluated objective's by several orders of magnitude. The equivalence
// suite (incremental vs reference, which never prunes) is the regression
// gate on this reasoning.
const pruneSlack = 1e-10

// hopBound returns a certified lower bound on the MinDelay objective of
// the assignment after commodity k-1, given the hop aggregate routed so
// far: every remaining commodity must visit at least its terminal pair's
// MinHops routers, the load tie-break only adds a non-negative term, and
// the overload penalty multiplies by a factor that is monotone in the
// link loads — which at commodity boundaries only ever grow toward the
// final loads. So no completion of this partial evaluation can score
// below the returned value.
func (st *incState) hopBound(res *route.Result, k int) float64 {
	lb := (res.HopSumMBps + st.hopSuffix[k]) / st.totalMBps
	if limit := st.ev.opts.CapacityMBps; limit > 0 {
		var overload float64
		for _, l := range res.LinkLoads {
			if l > limit {
				overload += (l - limit) / limit
			}
		}
		if overload > 0 {
			lb *= 1 + 10*overload
		}
	}
	return lb
}

// eval evaluates the current assignment. ca and cb are the cores the
// preceding swap moved (-1 when a terminal was free); all forces a full
// re-route of every commodity. The returned evalResult is scratch, valid
// until the next eval call.
//
// bound enables hop-lower-bound pruning: when finite (MinDelay sweeps
// pass the current best cost), the evaluation is abandoned — pruned=true,
// nil result — as soon as the certified lower bound shows the candidate
// cannot beat bound. A pruned candidate is exactly one the reference
// sweep would have evaluated and rejected.
//
//sunmap:hotpath
func (st *incState) eval(assign []int, ca, cb int, all bool, bound float64) (e *evalResult, pruned bool, err error) {
	opts := st.ev.opts
	prune := !math.IsInf(bound, 1)
	if prune {
		// Fill the minimum-hop suffix sums for this assignment; the k=0
		// entry is the whole-candidate lower bound, checked before any
		// routing work.
		m := len(st.comms)
		st.hopSuffix = resizeFloats(st.hopSuffix, m+1)
		st.hopSuffix[m] = 0
		for k := m - 1; k >= 0; k-- {
			c := st.comms[k]
			st.hopSuffix[k] = st.hopSuffix[k+1] +
				c.ValueMBps*float64(st.topo.MinHops(assign[c.Src], assign[c.Dst]))
		}
		if st.hopSuffix[0]/st.totalMBps*(1-pruneSlack) >= bound {
			return nil, true, nil
		}
	}
	res := &st.res
	res.Reset(len(st.links), st.topo.NumRouters())
	st.dirtyEpoch++
	st.dirtyIDs = st.dirtyIDs[:0]
	st.reroutedIDs = st.reroutedIDs[:0]

	for k := range st.comms {
		c := st.comms[k]
		reroute := all || c.Src == ca || c.Dst == ca || c.Src == cb || c.Dst == cb
		if !reroute && len(st.dirtyIDs) > 0 {
			// Re-route when a diverged link is one this commodity's
			// search could read a weight from; links outside that region
			// cannot influence the (deterministic) search, so the cached
			// record is provably what a fresh run would produce.
			switch {
			case st.oblivious:
				// DO paths read no loads at all.
			case st.loadSensitive:
				reroute = st.dirtyVisible(st.rt.Quadrant(assign[c.Src], assign[c.Dst]))
			case st.splitMin:
				reroute = st.dirtyOnDAG(st.rt.MinHopDAG(assign[c.Src], assign[c.Dst]))
			case st.splitAll:
				reroute = true
			}
		}
		if !reroute {
			st.applyRec(res, c, &st.base[k])
			if prune && st.hopBound(res, k+1)*(1-pruneSlack) >= bound {
				return nil, true, nil
			}
			continue
		}
		srcT, dstT := assign[c.Src], assign[c.Dst]
		rec := &st.cand[k]
		var err error
		switch {
		case st.splitMin || st.splitAll:
			err = st.rerouteSplit(res, srcT, dstT, c, rec)
		case st.oblivious:
			var verts, arcs []int
			verts, arcs, err = st.rt.PathDO(srcT, dstT, c)
			if err == nil {
				rec.setSingle(verts, arcs)
				st.applySingle(res, c, verts, arcs)
			}
		default:
			var verts, arcs []int
			verts, arcs, err = st.rt.PathMP(srcT, dstT, c, res.LinkLoads, true)
			if err == nil {
				rec.setSingle(verts, arcs)
				st.applySingle(res, c, verts, arcs)
			}
		}
		if err != nil {
			return nil, false, err
		}
		st.reroutedIDs = append(st.reroutedIDs, k) //sunmap:alloc amortized rerouted-ID scratch growth, reset per eval
		if !all && !st.oblivious && !recEqual(rec, &st.base[k]) {
			// The candidate's load history now differs from the
			// baseline's on the symmetric difference of the two records'
			// arcs; marking the union is a conservative superset.
			st.markRecDirty(&st.base[k])
			st.markRecDirty(rec)
		}
		if prune && st.hopBound(res, k+1)*(1-pruneSlack) >= bound {
			return nil, true, nil
		}
	}
	route.FinalizeLoads(res, opts.CapacityMBps)
	e, err = st.buildEval(assign)
	return e, false, err
}

// rerouteSplit routes one split commodity through the scratch router
// (which applies every aggregate itself) and copies the merged structure
// into rec.
func (st *incState) rerouteSplit(res *route.Result, srcT, dstT int, c graph.Commodity, rec *flowRec) error {
	n, err := st.rt.RouteSplitOne(res, srcT, dstT, c, st.effChunks, st.splitMin)
	if err != nil {
		return err
	}
	rec.split = true
	rec.n = n
	rec.verts = resizePathBufs(rec.verts, n)
	rec.arcs = resizePathBufs(rec.arcs, n)
	if cap(rec.fracs) < n {
		rec.fracs = make([]float64, n) //sunmap:alloc first-use growth of split-fraction buffer, kept on the record for reuse
	}
	rec.fracs = rec.fracs[:n]
	for i := 0; i < n; i++ {
		v, a, f := st.rt.SplitPath(i)
		rec.verts[i] = append(rec.verts[i][:0], v...)
		rec.arcs[i] = append(rec.arcs[i][:0], a...)
		rec.fracs[i] = f
	}
	rec.chunkAcc = append(rec.chunkAcc[:0], st.rt.SplitChunkAcc()...)
	return nil
}

// promote adopts the records of the just-evaluated (accepted) candidate
// as the new baseline by swapping buffers — no copies.
func (st *incState) promote() {
	for _, k := range st.reroutedIDs {
		st.base[k], st.cand[k] = st.cand[k], st.base[k]
	}
}

// applyRec replays a commodity's recorded routing into the candidate
// aggregates.
func (st *incState) applyRec(res *route.Result, c graph.Commodity, rec *flowRec) {
	if !rec.split {
		st.applySingle(res, c, rec.verts[0], rec.arcs[0])
		return
	}
	// Replicate routeSplit's arithmetic: per-chunk load application (so
	// every += lands in the same order with the same operand), the
	// per-merged-path undo, then the commit fold.
	frac := 1.0 / float64(st.effChunks)
	for _, ai := range rec.chunkAcc {
		bw := c.ValueMBps * frac
		for _, id := range rec.arcs[ai] {
			res.LinkLoads[id] += bw
		}
	}
	for i := 0; i < rec.n; i++ {
		bw := c.ValueMBps * rec.fracs[i]
		for _, id := range rec.arcs[i] {
			res.LinkLoads[id] -= bw
		}
	}
	for i := 0; i < rec.n; i++ {
		bw := c.ValueMBps * rec.fracs[i]
		for _, id := range rec.arcs[i] {
			res.LinkLoads[id] += bw
		}
		for _, r := range rec.verts[i] {
			res.RouterLoads[r] += bw
		}
		res.HopSumMBps += bw * float64(len(rec.verts[i]))
		res.TotalMBps += bw
	}
}

// applySingle folds one whole-commodity path into the candidate
// aggregates with exactly the arithmetic (and order) of route's commit.
func (st *incState) applySingle(res *route.Result, c graph.Commodity, verts, arcs []int) {
	bw := c.ValueMBps * 1.0
	for _, id := range arcs {
		res.LinkLoads[id] += bw
	}
	for _, r := range verts {
		res.RouterLoads[r] += bw
	}
	res.HopSumMBps += bw * float64(len(verts))
	res.TotalMBps += bw
}

// dirtyVisible reports whether any diverged link is inside the quadrant
// mask (both endpoints allowed — the superset of arcs a restricted
// Dijkstra can query).
func (st *incState) dirtyVisible(mask []bool) bool {
	for _, id := range st.dirtyIDs {
		l := st.links[id]
		if mask == nil || (mask[l.From] && mask[l.To]) {
			return true
		}
	}
	return false
}

// dirtyOnDAG reports whether any diverged link lies on the commodity's
// minimum-hop DAG — the only arcs an SM chunk search reads loads from.
func (st *incState) dirtyOnDAG(dag []bool) bool {
	for _, id := range st.dirtyIDs {
		if dag[id] {
			return true
		}
	}
	return false
}

// markRecDirty records a routing record's links as diverged,
// deduplicated by an epoch stamp.
func (st *incState) markRecDirty(rec *flowRec) {
	for i := 0; i < rec.n; i++ {
		for _, id := range rec.arcs[i] {
			if st.dirtyMark[id] != st.dirtyEpoch {
				st.dirtyMark[id] = st.dirtyEpoch
				st.dirtyIDs = append(st.dirtyIDs, id) //sunmap:alloc amortized dirty-ID scratch growth, reset per eval epoch
			}
		}
	}
}

// buildEval replays the in-loop cost model over the candidate loads: the
// same switch-config derivation, area fold and power fold as ev.cost runs,
// over the same element order, with the per-Map constants substituted for
// the assignment-independent terms. The result is bitwise equal to
// ev.cost(assign, nil)'s metrics.
func (st *incState) buildEval(assign []int) (*evalResult, error) {
	topo := st.topo
	t := st.ev.opts.Tech
	for r := range st.coreIn {
		st.coreIn[r] = 0
		st.coreOut[r] = 0
	}
	for _, term := range assign {
		st.coreIn[topo.InjectRouter(term)]++
		st.coreOut[topo.EjectRouter(term)]++
	}
	for r := range st.cfgs {
		in, out := topo.RouterDegree(r)
		st.cfgs[r] = area.SwitchConfig{
			In:            in + st.coreIn[r],
			Out:           out + st.coreOut[r],
			BufDepthFlits: t.BufDepthFlits,
			FlitBits:      t.FlitBits,
		}
	}
	var swArea float64
	for _, c := range st.cfgs {
		swArea += area.SwitchAreaMM2(c, t)
	}
	bk, err := power.NetworkPowerBreakdown(st.cfgs, st.res.RouterLoads, st.res.LinkLoads, st.linkLens, t)
	if err != nil {
		return nil, err
	}
	bk.LinkMW += st.niMW
	networkArea := swArea + st.linkArea
	designArea := st.coreArea + networkArea

	e := &st.scratchEval
	*e = evalResult{
		route:       &st.res,
		cfgs:        st.cfgs,
		designArea:  designArea,
		networkArea: networkArea,
		powerMW:     bk.TotalMW(),
		powerBk:     bk,
		raw: rawMetrics{
			hops:    st.res.AvgHops(),
			areaMM2: designArea,
			powerMW: bk.TotalMW(),
		},
	}
	return e, nil
}

// flowRec is one commodity's recorded routing under an assignment: a
// single path (split=false, one entry) or the merged-path structure of a
// split routing plus the chunk-to-path assignment needed to replay its
// exact load arithmetic. Buffers are reused across candidates.
type flowRec struct {
	split    bool
	n        int
	verts    [][]int
	arcs     [][]int
	fracs    []float64
	chunkAcc []int
}

// setSingle records a whole-commodity path (copying out of router
// scratch).
func (rec *flowRec) setSingle(verts, arcs []int) {
	rec.split = false
	rec.n = 1
	rec.verts = resizePathBufs(rec.verts, 1)
	rec.arcs = resizePathBufs(rec.arcs, 1)
	rec.verts[0] = append(rec.verts[0][:0], verts...)
	rec.arcs[0] = append(rec.arcs[0][:0], arcs...)
}

// recEqual reports whether two records describe the identical routing
// (same paths, same chunk folding) — in which case their load histories
// coincide and no dirty marking is needed.
func recEqual(a, b *flowRec) bool {
	if a.split != b.split || a.n != b.n {
		return false
	}
	for i := 0; i < a.n; i++ {
		if !slices.Equal(a.arcs[i], b.arcs[i]) {
			return false
		}
	}
	if a.split && !slices.Equal(a.chunkAcc, b.chunkAcc) {
		return false
	}
	return true
}

// resizeRecs grows a flow-record table to n entries, keeping existing
// buffers for reuse.
func resizeRecs(recs []flowRec, n int) []flowRec {
	if cap(recs) < n {
		grown := make([]flowRec, n)
		copy(grown, recs)
		return grown
	}
	return recs[:n]
}

// resizePathBufs grows a per-commodity path-buffer table to n entries,
// keeping existing buffers for reuse.
func resizePathBufs(bufs [][]int, n int) [][]int {
	if cap(bufs) < n {
		grown := make([][]int, n) //sunmap:alloc first-use growth, existing buffers recycled
		copy(grown, bufs)
		return grown
	}
	return bufs[:n]
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// resizeFloats returns s resized to n without zeroing (callers overwrite
// every element).
func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n) //sunmap:alloc first-use growth, recycled
	}
	return s[:n]
}

// resizeBools returns s resized to n without zeroing.
func resizeBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
