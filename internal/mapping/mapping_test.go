package mapping

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sunmap/internal/apps"
	"sunmap/internal/graph"
	"sunmap/internal/route"
	"sunmap/internal/topology"
)

func mustTopo(t topology.Topology, err error) topology.Topology {
	if err != nil {
		panic(err)
	}
	return t
}

// checkValidMapping verifies the one-to-one property of Definition 1's map
// function: every core on a distinct, in-range terminal.
func checkValidMapping(t *testing.T, res *Result, numCores int) {
	t.Helper()
	if len(res.Assign) != numCores {
		t.Fatalf("assignment has %d entries, want %d", len(res.Assign), numCores)
	}
	seen := make(map[int]bool)
	for c, term := range res.Assign {
		if term < 0 || term >= res.Topology.NumTerminals() {
			t.Errorf("core %d on invalid terminal %d", c, term)
		}
		if seen[term] {
			t.Errorf("terminal %d hosts two cores", term)
		}
		seen[term] = true
	}
}

func TestMapVOPDOnMesh(t *testing.T) {
	g := apps.VOPD()
	topo := mustTopo(topology.NewMesh(3, 4))
	res, err := Map(g, topo, Options{
		Routing:      route.MinPath,
		Objective:    MinDelay,
		CapacityMBps: apps.DefaultCapacityMBps,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkValidMapping(t, res, 12)
	if !res.BandwidthOK {
		t.Errorf("VOPD on mesh infeasible (max load %g)", res.Route.MaxLinkLoad)
	}
	// Fig. 3(d): mesh average hops around 2.25; allow a generous band.
	if res.AvgHops < 1.8 || res.AvgHops > 3.0 {
		t.Errorf("VOPD mesh avg hops = %g, want ~2.2", res.AvgHops)
	}
	// Fig. 3(d): design area ~55 mm²; allow a generous band.
	if res.DesignAreaMM2 < 40 || res.DesignAreaMM2 > 85 {
		t.Errorf("VOPD mesh design area = %g mm², want ~55", res.DesignAreaMM2)
	}
	// Fig. 3(d): power ~372 mW; allow a generous band.
	if res.PowerMW < 150 || res.PowerMW > 700 {
		t.Errorf("VOPD mesh power = %g mW, want ~370", res.PowerMW)
	}
	if res.Floorplan == nil {
		t.Error("final result missing exact floorplan")
	}
}

func TestSwapImprovesOverGreedy(t *testing.T) {
	// The swap phase must never worsen the seed mapping, and on VOPD it
	// should strictly improve it.
	g := apps.VOPD()
	topo := mustTopo(topology.NewMesh(3, 4))
	seed, err := Map(g, topo, Options{Routing: route.MinPath, Objective: MinDelay, SwapPasses: -1})
	if err != nil {
		t.Fatal(err)
	}
	_ = seed
	zero, err := Map(g, topo, Options{Routing: route.MinPath, Objective: MinDelay, SwapPasses: 1})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Map(g, topo, Options{Routing: route.MinPath, Objective: MinDelay})
	if err != nil {
		t.Fatal(err)
	}
	if full.AvgHops > zero.AvgHops+1e-9 {
		t.Errorf("more passes worsened hops: %g vs %g", full.AvgHops, zero.AvgHops)
	}
}

func TestMapButterflyConstantHops(t *testing.T) {
	g := apps.VOPD()
	topo := mustTopo(topology.NewButterfly(4, 2))
	res, err := Map(g, topo, Options{
		Routing:      route.MinPath,
		Objective:    MinDelay,
		CapacityMBps: apps.DefaultCapacityMBps,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkValidMapping(t, res, 12)
	// Every butterfly route is exactly 2 hops (Section 6.1).
	if res.AvgHops != 2.0 {
		t.Errorf("butterfly avg hops = %g, want exactly 2", res.AvgHops)
	}
	if !res.BandwidthOK {
		t.Errorf("VOPD on 4-ary 2-fly must be feasible (max load %g)", res.Route.MaxLinkLoad)
	}
}

func TestMPEG4SinglePathInfeasibleSplitFeasible(t *testing.T) {
	// Section 6.1: all topologies violate bandwidth under min-path; the
	// mesh becomes feasible with split traffic; the butterfly never does.
	g := apps.MPEG4()
	mesh := mustTopo(topology.NewMesh(3, 4))
	mp, err := Map(g, mesh, Options{
		Routing:      route.MinPath,
		Objective:    MinDelay,
		CapacityMBps: apps.DefaultCapacityMBps,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mp.BandwidthOK {
		t.Errorf("MPEG4 min-path on mesh reported feasible (max load %g); 910 > 500", mp.Route.MaxLinkLoad)
	}
	sm, err := Map(g, mesh, Options{
		Routing:      route.SplitMin,
		Objective:    MinDelay,
		CapacityMBps: apps.DefaultCapacityMBps,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sm.BandwidthOK {
		t.Errorf("MPEG4 split-min on mesh infeasible (max load %g), paper finds a mapping", sm.Route.MaxLinkLoad)
	}
	bfly := mustTopo(topology.NewButterfly(4, 2))
	bf, err := Map(g, bfly, Options{
		Routing:      route.SplitAll,
		Objective:    MinDelay,
		CapacityMBps: apps.DefaultCapacityMBps,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bf.BandwidthOK {
		t.Error("MPEG4 on butterfly reported feasible; no path diversity exists")
	}
}

func TestObjectivesChangeOutcome(t *testing.T) {
	// Different objectives must evaluate (and usually pick) different
	// cost values; at minimum the reported Cost fields follow their
	// metric.
	g := apps.VOPD()
	topo := mustTopo(topology.NewMesh(3, 4))
	delay, err := Map(g, topo, Options{Routing: route.MinPath, Objective: MinDelay})
	if err != nil {
		t.Fatal(err)
	}
	area, err := Map(g, topo, Options{Routing: route.MinPath, Objective: MinArea})
	if err != nil {
		t.Fatal(err)
	}
	power, err := Map(g, topo, Options{Routing: route.MinPath, Objective: MinPower})
	if err != nil {
		t.Fatal(err)
	}
	// Cost tracks the objective's metric up to the tiny load-balance
	// tie-break term (< 1e-3).
	if diff := delay.Cost - delay.AvgHops; diff < 0 || diff > 1e-3 {
		t.Errorf("delay cost %g vs avg hops %g", delay.Cost, delay.AvgHops)
	}
	if diff := area.Cost - area.DesignAreaMM2; diff < 0 || diff > 1e-3 {
		t.Errorf("area cost %g vs design area %g", area.Cost, area.DesignAreaMM2)
	}
	if diff := power.Cost - power.PowerMW; diff < 0 || diff > 1e-3 {
		t.Errorf("power cost %g vs power %g", power.Cost, power.PowerMW)
	}
	// Both searches are heuristic, so min-power may stumble on a slightly
	// lower-hop mapping than min-delay; they must stay within 15% though,
	// since switch power strongly correlates with hop count.
	if delay.AvgHops > power.AvgHops*1.15 {
		t.Errorf("min-delay hops %g far above min-power hops %g", delay.AvgHops, power.AvgHops)
	}
}

func TestWeightedObjective(t *testing.T) {
	g := apps.VOPD()
	topo := mustTopo(topology.NewMesh(3, 4))
	res, err := Map(g, topo, Options{
		Routing:   route.MinPath,
		Objective: Weighted,
		Weights:   Weights{Delay: 1, Area: 1, Power: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkValidMapping(t, res, 12)
	if res.Cost <= 0 {
		t.Errorf("weighted cost = %g, want positive", res.Cost)
	}
}

func TestMapErrors(t *testing.T) {
	g := apps.VOPD()
	small := mustTopo(topology.NewMesh(2, 2))
	if _, err := Map(g, small, Options{}); err == nil {
		t.Error("12 cores on 4 terminals accepted")
	}
	var empty graph.CoreGraph
	topo := mustTopo(topology.NewMesh(3, 4))
	if _, err := Map(&empty, topo, Options{}); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestDeterminism(t *testing.T) {
	g := apps.MPEG4()
	topo := mustTopo(topology.NewMesh(3, 4))
	a, err := Map(g, topo, Options{Routing: route.SplitMin, Objective: MinPower, CapacityMBps: 500})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Map(g, topo, Options{Routing: route.SplitMin, Objective: MinPower, CapacityMBps: 500})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("non-deterministic mapping: %v vs %v", a.Assign, b.Assign)
		}
	}
	if a.PowerMW != b.PowerMW || a.AvgHops != b.AvgHops {
		t.Error("non-deterministic metrics")
	}
}

func TestExactFloorplanInLoopMatchesShape(t *testing.T) {
	// Paper-faithful mode (LP in the loop) must produce a valid mapping
	// with metrics close to fast mode on a small instance.
	g := apps.DSPFilter()
	topo := mustTopo(topology.NewMesh(2, 3))
	fast, err := Map(g, topo, Options{Routing: route.MinPath, Objective: MinDelay, CapacityMBps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Map(g, topo, Options{
		Routing: route.MinPath, Objective: MinDelay, CapacityMBps: 1000,
		ExactFloorplanInLoop: true, SwapPasses: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkValidMapping(t, exact, 6)
	if ratio := exact.AvgHops / fast.AvgHops; ratio < 0.7 || ratio > 1.4 {
		t.Errorf("exact/fast hops ratio = %g", ratio)
	}
}

func TestGreedyInitialValidProperty(t *testing.T) {
	// Property: greedy initial mapping is a valid injection for random
	// synthetic apps on random topologies.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		g := apps.Synthetic(n, 0.25, 400, seed)
		var topo topology.Topology
		var err error
		switch rng.Intn(4) {
		case 0:
			topo, err = topology.NewMesh(3, 4)
		case 1:
			topo, err = topology.NewHypercube(4)
		case 2:
			topo, err = topology.NewButterfly(2, 4)
		default:
			topo, err = topology.NewClos(4, 4, 4)
		}
		if err != nil || g.NumCores() > topo.NumTerminals() {
			return true // skip impossible combos
		}
		assign := greedyInitial(g, topo, NewScratch())
		seen := make(map[int]bool)
		for _, term := range assign {
			if term < 0 || term >= topo.NumTerminals() || seen[term] {
				return false
			}
			seen[term] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPartialOccupancyHypercubeMapping(t *testing.T) {
	g := apps.VOPD() // 12 cores on 16 terminals
	topo := mustTopo(topology.NewHypercube(4))
	res, err := Map(g, topo, Options{
		Routing:      route.MinPath,
		Objective:    MinDelay,
		CapacityMBps: apps.DefaultCapacityMBps,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkValidMapping(t, res, 12)
	if !res.BandwidthOK {
		t.Errorf("VOPD on hypercube infeasible (max load %g)", res.Route.MaxLinkLoad)
	}
}
