package mapping

// Test-only ctx-less entry point: the shipped package exposes only
// MapContext (ctxdiscipline forbids library code from minting a
// context); the in-package tests keep the shorter spelling.

import (
	"context"

	"sunmap/internal/graph"
	"sunmap/internal/topology"
)

// Map runs MapContext under a background context.
func Map(g *graph.CoreGraph, topo topology.Topology, opts Options) (*Result, error) {
	return MapContext(context.Background(), g, topo, opts)
}
