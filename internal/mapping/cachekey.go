package mapping

import (
	"fmt"
	"strings"

	"sunmap/internal/route"
)

// CacheKey returns a canonical, deterministic encoding of every option
// that influences a Map result. Two Options values with the same key map
// any (app, topology) pair to the same Result, so the key — combined with
// the app digest and topology name — content-addresses the evaluation
// cache used by internal/engine.
//
// Canonicalization applies the same defaulting Map itself performs and
// zeroes fields that are inert under the current settings (Weights outside
// the Weighted objective, Chunks outside the splitting routing functions),
// so semantically identical configurations collide onto one cache entry.
func (o Options) CacheKey() string {
	o = o.withDefaults()
	if o.Objective != Weighted {
		o.Weights = Weights{}
	}
	if o.Routing != route.SplitMin && o.Routing != route.SplitAll {
		o.Chunks = 0
	} else if o.Chunks <= 0 {
		o.Chunks = 32 // route.Options default
	}
	fp := o.Floorplan
	if fp.SpacingMM <= 0 {
		fp.SpacingMM = 0.1
	}
	if fp.Tangents < 2 {
		fp.Tangents = 5
	}
	t := o.Tech
	var sb strings.Builder
	fmt.Fprintf(&sb, "v1|rt=%d|obj=%d|w=%g,%g,%g|cap=%g|maxarea=%g|maxaspect=%g|",
		int(o.Routing), int(o.Objective), o.Weights.Delay, o.Weights.Area, o.Weights.Power,
		o.CapacityMBps, o.MaxAreaMM2, o.MaxChipAspect)
	fmt.Fprintf(&sb, "swaps=%d|exactfp=%t|fp=%g,%d|chunks=%d|", o.SwapPasses, o.ExactFloorplanInLoop,
		fp.SpacingMM, fp.Tangents, o.Chunks)
	fmt.Fprintf(&sb, "tech=%s,%d,%g,%g,%g,%g,%g,%g,%g,%g,%g,%d,%d",
		t.Name, t.FeatureNM, t.XbarAreaMM2, t.BufAreaMM2, t.LogicAreaMM2, t.LinkAreaMM2PerMM,
		t.BufWritePJ, t.BufReadPJ, t.XbarPJ, t.ArbPJ, t.LinkPJPerMM, t.FlitBits, t.BufDepthFlits)
	return sb.String()
}
