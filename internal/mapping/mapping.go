// Package mapping implements SUNMAP's core mapping algorithm (Fig. 5 of
// the paper): a greedy initial placement, per-commodity routing in
// decreasing bandwidth order on quadrant graphs, cost evaluation under the
// chosen design objective with area/power estimates in the loop, and a
// pairwise-swap improvement phase. The mapping problem is intractable
// ([19]), so this is the paper's heuristic, generalized over every
// topology in the library.
package mapping

import (
	"context"
	"fmt"
	"math"

	"sunmap/internal/area"
	"sunmap/internal/floorplan"
	"sunmap/internal/graph"
	"sunmap/internal/power"
	"sunmap/internal/route"
	"sunmap/internal/tech"
	"sunmap/internal/topology"
)

// Objective selects the design objective driving the cost function
// (Section 4.1: "minimizing communication delay, area or power").
type Objective int

const (
	// MinDelay minimizes the bandwidth-weighted average hop count.
	MinDelay Objective = iota
	// MinArea minimizes estimated design area.
	MinArea
	// MinPower minimizes estimated network power.
	MinPower
	// Weighted combines normalized delay, area and power with the
	// Options.Weights coefficients (used by the Pareto explorer).
	Weighted
)

// String names the objective.
func (o Objective) String() string {
	switch o {
	case MinDelay:
		return "min-delay"
	case MinArea:
		return "min-area"
	case MinPower:
		return "min-power"
	case Weighted:
		return "weighted"
	default:
		return fmt.Sprintf("objective(%d)", int(o))
	}
}

// Weights are the coefficients of the Weighted objective; metrics are
// normalized by the initial mapping's values before combination.
type Weights struct {
	Delay, Area, Power float64
}

// Options configures Map.
type Options struct {
	// Routing is the routing function (Fig. 5 shows MinPath; DO/SM/SA
	// variants are "similarly extended", Section 4).
	Routing route.Function
	// Objective selects the cost function; Weights applies when
	// Objective == Weighted.
	Objective Objective
	Weights   Weights
	// CapacityMBps is the uniform link capacity; <= 0 relaxes the
	// bandwidth constraint (Section 6.2 does this for the NetProc study).
	CapacityMBps float64
	// MaxAreaMM2 bounds the floorplanned chip area; <= 0 disables.
	MaxAreaMM2 float64
	// MaxChipAspect bounds the chip aspect ratio; <= 0 disables.
	MaxChipAspect float64
	// Tech is the technology point (zero value -> Tech100nm).
	Tech tech.Tech
	// SwapPasses caps improvement passes. 0 means iterate to convergence
	// (capped internally); 1 reproduces the paper's single sweep.
	SwapPasses int
	// ExactFloorplanInLoop runs the LP floorplanner inside every swap
	// evaluation (the paper's step 7). Off by default: the fast length
	// estimator is used in-loop and the LP runs once on the final
	// mapping, which changes results negligibly and is ~100x faster.
	ExactFloorplanInLoop bool
	// Floorplan tunes the floorplanner.
	Floorplan floorplan.Options
	// Chunks is the traffic-splitting granularity for SM/SA.
	Chunks int
}

// RouteOptions lowers the mapping options onto the routing layer: the
// exact routing configuration every candidate evaluation of a Map call
// runs under. The fault subsystem starts from it (see fault.Degraded) so
// survivability sweeps reroute with the discipline the design was
// actually optimized for.
func (o Options) RouteOptions() route.Options {
	return route.Options{
		Function:     o.Routing,
		CapacityMBps: o.CapacityMBps,
		Chunks:       o.Chunks,
	}
}

func (o Options) withDefaults() Options {
	if o.Tech.FlitBits == 0 {
		o.Tech = tech.Tech100nm()
	}
	if o.SwapPasses <= 0 {
		o.SwapPasses = 16
	}
	return o
}

// Result is a mapped, evaluated design point.
type Result struct {
	// Topology is the network mapped onto.
	Topology topology.Topology
	// Assign maps core index -> terminal.
	Assign []int
	// Route holds link/router loads and flow paths.
	Route *route.Result
	// SwitchConfigs holds the per-router switch configurations.
	SwitchConfigs []area.SwitchConfig
	// Floorplan is the exact LP floorplan of the final mapping.
	Floorplan *floorplan.Result
	// DesignAreaMM2 is the packed design area: cores + switches + link
	// wiring (the quantity reported in the paper's comparison charts;
	// the slot-LP bounding box below additionally carries whitespace).
	DesignAreaMM2 float64
	// ChipAreaMM2 is the floorplan bounding-box area, used for the
	// MaxAreaMM2 and aspect constraints.
	ChipAreaMM2 float64
	// NetworkAreaMM2 is the switch + link wiring area alone.
	NetworkAreaMM2 float64
	// PowerMW is the network power (switches, links and NI hookups).
	PowerMW float64
	// PowerBreakdown splits switch vs link power.
	PowerBreakdown power.Breakdown
	// AvgHops is the bandwidth-weighted mean hop count.
	AvgHops float64
	// Cost is the objective value of the final mapping.
	Cost float64
	// Feasibility verdicts (Section 4.1: bandwidth and area constraints).
	BandwidthOK, AreaOK, AspectOK bool
	// SwapsApplied counts accepted improvement swaps.
	SwapsApplied int
}

// Feasible reports whether all constraints hold.
func (r *Result) Feasible() bool { return r.BandwidthOK && r.AreaOK && r.AspectOK }

// MapContext runs the Fig. 5 algorithm: greedy initial mapping, commodity
// routing in decreasing order, cost evaluation, pairwise-swap improvement,
// and a final exact floorplan + feasibility check. The swap-improvement search checks
// ctx between sweep rows and aborts with the context's error, so a long
// library sweep can be cut short by a deadline or a user interrupt.
func MapContext(ctx context.Context, g *graph.CoreGraph, topo topology.Topology, opts Options) (*Result, error) {
	return mapContext(ctx, g, topo, opts, nil, false)
}

// MapContextWith is MapContext with caller-owned scratch: the routing
// solver, candidate-load arrays and baseline-path buffers of the swap
// search come from sc and are reused by the next call, so a worker mapping
// many design points performs no steady-state allocations. A Scratch
// serves one call at a time; internal/engine keeps a free list with one
// per evaluation worker.
func MapContextWith(ctx context.Context, g *graph.CoreGraph, topo topology.Topology, opts Options, sc *Scratch) (*Result, error) {
	return mapContext(ctx, g, topo, opts, sc, false)
}

// mapContext is the shared implementation. When reference is set, the swap
// sweep evaluates every candidate with the retained naive evaluator
// (full re-route + full cost model per candidate) instead of the
// incremental one — the equivalence tests run both and assert identical
// results, which is the regression gate for the incremental path.
func mapContext(ctx context.Context, g *graph.CoreGraph, topo topology.Topology, opts Options, sc *Scratch, reference bool) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("mapping: %w", err)
	}
	if g.NumCores() > topo.NumTerminals() {
		return nil, fmt.Errorf("mapping: %d cores exceed %d terminals of %s",
			g.NumCores(), topo.NumTerminals(), topo.Name())
	}
	opts = opts.withDefaults()
	if err := opts.Tech.Validate(); err != nil {
		return nil, fmt.Errorf("mapping: %w", err)
	}
	comms := g.Commodities()

	if sc == nil {
		sc = NewScratch()
	}
	ev := &evaluator{g: g, topo: topo, comms: comms, opts: opts, sc: sc}

	assign := greedyInitial(g, topo, sc)
	sc.occupant = resizeInts(sc.occupant, topo.NumTerminals())
	occupant := sc.occupant // terminal -> core or -1
	for t := range occupant {
		occupant[t] = -1
	}
	for c, t := range assign {
		occupant[t] = c
	}

	// Pairwise-swap improvement over all terminal pairs (occupied-occupied
	// and occupied-free), first-improvement sweeps: every swap that lowers
	// the cost is applied immediately, and sweeps repeat until one passes
	// with no improvement (or the pass cap is hit). This generalizes the
	// paper's "repeat steps 2 to 8 for each pair-wise swap of vertices".
	//
	// The incremental sweep re-routes only the commodities a swap can
	// affect and recomputes the cost model from maintained load arrays;
	// it produces bit-identical decisions to the reference sweep (see
	// incremental.go for why). The paper-faithful LP-in-the-loop mode
	// stays on the reference evaluator, which runs the floorplanner.
	var swaps int
	var err error
	if reference || opts.ExactFloorplanInLoop {
		swaps, err = sweepReference(ctx, ev, assign, occupant)
	} else {
		swaps, err = sweepIncremental(ctx, ev, assign, occupant, sc)
	}
	if err != nil {
		return nil, err
	}

	// Final exact evaluation with the LP floorplanner.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	final, err := ev.cost(assign, &exactMode{})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Topology:       topo,
		Assign:         append([]int(nil), assign...),
		Route:          final.route,
		SwitchConfigs:  final.cfgs,
		Floorplan:      final.fp,
		DesignAreaMM2:  final.designArea,
		ChipAreaMM2:    final.fp.ChipAreaMM2(),
		NetworkAreaMM2: final.networkArea,
		PowerMW:        final.powerMW,
		PowerBreakdown: final.powerBk,
		AvgHops:        final.route.AvgHops(),
		Cost:           ev.objective(final),
		BandwidthOK:    final.route.Feasible,
		AreaOK:         opts.MaxAreaMM2 <= 0 || final.fp.ChipAreaMM2() <= opts.MaxAreaMM2,
		AspectOK:       opts.MaxChipAspect <= 0 || final.fp.AspectRatio() <= opts.MaxChipAspect,
		SwapsApplied:   swaps,
	}
	return res, nil
}

// sweepReference is the retained naive swap search: every candidate is
// evaluated by re-routing all commodities from scratch and re-running the
// full cost model (ev.cost). It is the semantic definition the incremental
// sweep must reproduce exactly, the evaluator for the paper-faithful
// LP-in-the-loop mode, and the baseline side of the equivalence tests.
func sweepReference(ctx context.Context, ev *evaluator, assign, occupant []int) (int, error) {
	baseCost, err := ev.cost(assign, nil)
	if err != nil {
		return 0, err
	}
	ev.norm = baseCost.raw // normalize weighted objectives by the seed mapping
	curCost := ev.objective(baseCost)
	numT := ev.topo.NumTerminals()
	swaps := 0
	for pass := 0; pass < ev.opts.SwapPasses; pass++ {
		improved := false
		for a := 0; a < numT; a++ {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			for b := a + 1; b < numT; b++ {
				if occupant[a] == -1 && occupant[b] == -1 {
					continue
				}
				swapTerminals(assign, occupant, a, b)
				cand, err := ev.cost(assign, nil)
				if err != nil {
					return 0, err
				}
				if c := ev.objective(cand); c < curCost-1e-12 {
					curCost = c
					improved = true
					swaps++
				} else {
					swapTerminals(assign, occupant, a, b) // undo
				}
			}
		}
		if !improved {
			break
		}
	}
	return swaps, nil
}

func swapTerminals(assign, occupant []int, a, b int) {
	ca, cb := occupant[a], occupant[b]
	occupant[a], occupant[b] = cb, ca
	if ca != -1 {
		assign[ca] = b
	}
	if cb != -1 {
		assign[cb] = a
	}
}

// greedyInitial implements step 1 of Fig. 5: the core with maximum total
// communication goes to the terminal whose router has the most neighbours;
// then, repeatedly, the unplaced core communicating most with placed cores
// takes the free terminal minimizing bandwidth-weighted hop cost. The
// returned assignment lives in sc and is valid until the next Map call on
// the same Scratch (Result copies it before escaping).
func greedyInitial(g *graph.CoreGraph, topo topology.Topology, sc *Scratch) []int {
	n := g.NumCores()
	sc.assign = resizeInts(sc.assign, n)
	assign := sc.assign
	for i := range assign {
		assign[i] = -1
	}
	sc.greedyFree = resizeBools(sc.greedyFree, topo.NumTerminals())
	free := sc.greedyFree
	for t := range free {
		free[t] = true
	}

	// Seed core: maximum communication volume.
	seed := 0
	for i := 1; i < n; i++ {
		if g.CommVolume(i) > g.CommVolume(seed) {
			seed = i
		}
	}
	// Seed terminal: router with maximum degree (most neighbours), lowest
	// terminal index on ties.
	bestT, bestDeg := 0, -1
	for t := 0; t < topo.NumTerminals(); t++ {
		in, out := topo.RouterDegree(topo.InjectRouter(t))
		if d := in + out; d > bestDeg {
			bestDeg = d
			bestT = t
		}
	}
	assign[seed] = bestT
	free[bestT] = false

	for placed := 1; placed < n; placed++ {
		// Most-communicating unplaced core relative to placed ones.
		next, nextComm := -1, -1.0
		for i := 0; i < n; i++ {
			if assign[i] != -1 {
				continue
			}
			var c float64
			for j := 0; j < n; j++ {
				if assign[j] != -1 {
					c += g.CommBetween(i, j)
				}
			}
			// Ties (including zero communication) break toward the core
			// with the larger total volume, then the lower index.
			if c > nextComm || (c == nextComm && next != -1 && g.CommVolume(i) > g.CommVolume(next)) {
				next = i
				nextComm = c
			}
		}
		// Terminal minimizing weighted hop cost to placed communicators.
		bestT, bestCost := -1, math.Inf(1)
		for t := 0; t < topo.NumTerminals(); t++ {
			if !free[t] {
				continue
			}
			var cost float64
			for j := 0; j < n; j++ {
				if assign[j] == -1 {
					continue
				}
				bw := g.CommBetween(next, j)
				if bw == 0 {
					continue
				}
				cost += bw * float64(topo.MinHops(t, assign[j])+topo.MinHops(assign[j], t)) / 2
			}
			if cost < bestCost {
				bestCost = cost
				bestT = t
			}
		}
		assign[next] = bestT
		free[bestT] = false
	}
	return assign
}

// evalResult carries the metrics of one candidate mapping.
type evalResult struct {
	route       *route.Result
	cfgs        []area.SwitchConfig
	fp          *floorplan.Result
	designArea  float64
	networkArea float64
	powerMW     float64
	powerBk     power.Breakdown
	raw         rawMetrics
}

type rawMetrics struct {
	hops, areaMM2, powerMW float64
}

type exactMode struct{}

// evaluator caches the per-topology state shared by all candidate
// evaluations of one Map call.
type evaluator struct {
	g     *graph.CoreGraph
	topo  topology.Topology
	comms []graph.Commodity
	opts  Options
	norm  rawMetrics // normalization baseline for the weighted objective
	sc    *Scratch   // full-evaluation workspace (router, floorplanner)
	cores []graph.Core
}

// coreList returns the core list, copied out of the graph once per Map
// call.
func (ev *evaluator) coreList() []graph.Core {
	if ev.cores == nil {
		ev.cores = ev.g.Cores()
	}
	return ev.cores
}

// cost evaluates a mapping: route, size switches, estimate (or exactly
// compute, when exact != nil) floorplan lengths, and derive area/power.
// With a Scratch attached, routing and the LP floorplanner run in reused
// workspace and only the escaping result structures are allocated.
func (ev *evaluator) cost(assign []int, exact *exactMode) (*evalResult, error) {
	var res *route.Result
	if sc := ev.sc; sc != nil {
		if err := sc.rt.RouteInto(&sc.evalRes, ev.topo, assign, ev.comms, ev.opts.RouteOptions()); err != nil {
			return nil, err
		}
		res = sc.evalRes.Clone()
	} else {
		var err error
		res, err = route.Route(ev.topo, assign, ev.comms, ev.opts.RouteOptions())
		if err != nil {
			return nil, err
		}
	}
	t := ev.opts.Tech
	cfgs := area.SwitchConfigs(ev.topo, assign, t)
	var swArea float64
	for _, c := range cfgs {
		swArea += area.SwitchAreaMM2(c, t)
	}
	cores := ev.coreList()

	var err error
	var linkLens []float64
	var fp *floorplan.Result
	useExact := exact != nil || ev.opts.ExactFloorplanInLoop
	if useExact {
		var swAreas []float64
		if ev.sc != nil {
			ev.sc.swAreas = resizeFloats(ev.sc.swAreas, len(cfgs))
			swAreas = ev.sc.swAreas
		} else {
			swAreas = make([]float64, len(cfgs))
		}
		for i, c := range cfgs {
			swAreas[i] = area.SwitchAreaMM2(c, t)
		}
		if ev.sc != nil {
			fp, err = ev.sc.fp.Floorplan(ev.topo, assign, cores, swAreas, ev.opts.Floorplan)
		} else {
			fp, err = floorplan.Floorplan(ev.topo, assign, cores, swAreas, ev.opts.Floorplan)
		}
		if err != nil {
			return nil, err
		}
		linkLens = fp.LinkLengthsMM
	} else {
		linkLens, _ = floorplan.EstimateLinkLengthsMM(ev.topo, assign, cores, ev.opts.Floorplan)
	}

	// Design area as reported in the paper's charts: packed blocks plus
	// link wiring. (The slot-LP bounding box additionally charges
	// whitespace that a production floorplanner would recover; it is used
	// only for the chip-level area/aspect constraints.)
	linkArea := area.LinkAreaMM2(linkLens, t)
	networkArea := swArea + linkArea
	designArea := ev.g.TotalCoreAreaMM2() + networkArea

	bk, err := power.NetworkPowerBreakdown(cfgs, res.RouterLoads, res.LinkLoads, linkLens, t)
	if err != nil {
		return nil, err
	}
	bk.LinkMW += ev.niHookupMW(cores)

	return &evalResult{
		route:       res,
		cfgs:        cfgs,
		fp:          fp,
		designArea:  designArea,
		networkArea: networkArea,
		powerMW:     bk.TotalMW(),
		powerBk:     bk,
		raw: rawMetrics{
			hops:    res.AvgHops(),
			areaMM2: designArea,
			powerMW: bk.TotalMW(),
		},
	}, nil
}

// niHookupMW returns the network-interface hookup power: the NI sits
// against its core, so the hookup is a local wire of about half a
// placement pitch; the long global wires are the inter-switch links the
// breakdown already charges. The value depends only on the application and
// tech point — never on the assignment — so the incremental evaluator
// computes it once per Map call.
func (ev *evaluator) niHookupMW(cores []graph.Core) float64 {
	t := ev.opts.Tech
	hookupMM := 0.5 * floorplan.EstimatePitchMM(cores, ev.opts.Floorplan)
	edges := ev.g.Edges()
	var niMW float64
	for i := range cores {
		io := 0.0
		for _, e := range edges {
			if e.From == i || e.To == i {
				io += e.BandwidthMBps
			}
		}
		niMW += io * power.LinkBitEnergyPJ(hookupMM, t) * power.MWPerMBpsPJ
	}
	return niMW
}

// objective folds an evaluation into a scalar cost, adding a proportional
// penalty when the bandwidth constraint is violated so the swap search is
// pulled toward feasibility.
func (ev *evaluator) objective(e *evalResult) float64 {
	var base float64
	switch ev.opts.Objective {
	case MinDelay:
		base = e.raw.hops
	case MinArea:
		base = e.raw.areaMM2
	case MinPower:
		base = e.raw.powerMW
	case Weighted:
		w := ev.opts.Weights
		n := ev.norm
		if n.hops <= 0 {
			n.hops = 1
		}
		if n.areaMM2 <= 0 {
			n.areaMM2 = 1
		}
		if n.powerMW <= 0 {
			n.powerMW = 1
		}
		base = w.Delay*e.raw.hops/n.hops + w.Area*e.raw.areaMM2/n.areaMM2 + w.Power*e.raw.powerMW/n.powerMW
	default:
		base = e.raw.hops
	}
	// Load-balance tie-break: a term far below any real metric difference
	// that steers the search toward spreading traffic when the primary
	// objective is flat (butterflies and Clos networks have constant hop
	// counts, so min-delay alone cannot distinguish their mappings).
	if e.route.TotalMBps > 0 {
		base += 1e-3 * e.route.MaxLinkLoad / e.route.TotalMBps
	}
	// Bandwidth-violation penalty: proportional to the total overload
	// across all links (smoother than penalizing the max alone, so the
	// search can trade one overloaded link for a smaller one and still
	// see progress toward feasibility).
	if limit := ev.opts.CapacityMBps; limit > 0 {
		var overload float64
		for _, l := range e.route.LinkLoads {
			if l > limit {
				overload += (l - limit) / limit
			}
		}
		if overload > 0 {
			base *= 1 + 10*overload
		}
	}
	return base
}
