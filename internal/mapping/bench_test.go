package mapping

import (
	"context"
	"math"
	"testing"

	"sunmap/internal/apps"
	"sunmap/internal/graph"
	"sunmap/internal/route"
	"sunmap/internal/topology"
)

// benchCases are the ISSUE-4 tracked configurations: the two hot apps
// under the two objectives the swap loop most often runs with. Results
// land in BENCH_4.json via scripts/bench.sh.
var benchCases = []struct {
	name string
	app  func() *graph.CoreGraph
	opts Options
}{
	{"vopd/min-delay", apps.VOPD, Options{Routing: route.MinPath, Objective: MinDelay, CapacityMBps: 500}},
	{"vopd/weighted", apps.VOPD, Options{Routing: route.MinPath, Objective: Weighted,
		Weights: Weights{Delay: 1, Area: 1, Power: 1}, CapacityMBps: 500}},
	{"mpeg4/min-delay", apps.MPEG4, Options{Routing: route.MinPath, Objective: MinDelay, CapacityMBps: 500}},
	{"mpeg4/weighted", apps.MPEG4, Options{Routing: route.MinPath, Objective: Weighted,
		Weights: Weights{Delay: 1, Area: 1, Power: 1}, CapacityMBps: 500}},
}

// BenchmarkMap times one full Map call (greedy seed, incremental swap
// search, final LP floorplan) on a 3x4 mesh, and — under the swap-eval
// sub-benchmarks — the steady-state cost of evaluating one candidate swap,
// which must stay at 0 allocs/op. Run with:
//
//	go test -bench BenchmarkMap -benchmem ./internal/mapping
func BenchmarkMap(b *testing.B) {
	for _, tc := range benchCases {
		g := tc.app()
		topo := mustTopo(topology.NewMesh(3, 4))
		b.Run(tc.name+"/full", func(b *testing.B) {
			sc := NewScratch()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := MapContextWith(context.Background(), g, topo, tc.opts, sc); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(tc.name+"/swap-eval", func(b *testing.B) {
			st, assign, occupant := benchSweepState(b, g, topo, tc.opts)
			pairA, pairB := benchSwapPair(occupant)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ca, cb := occupant[pairA], occupant[pairB]
				swapTerminals(assign, occupant, pairA, pairB)
				if _, _, err := st.eval(assign, ca, cb, false, math.Inf(1)); err != nil {
					b.Fatal(err)
				}
				swapTerminals(assign, occupant, pairA, pairB) // reject
			}
		})
	}
}

// benchSweepState builds an incremental evaluator positioned after the
// seed evaluation, the state every in-loop candidate evaluation runs from.
func benchSweepState(tb testing.TB, g *graph.CoreGraph, topo topology.Topology, opts Options) (*incState, []int, []int) {
	tb.Helper()
	opts = opts.withDefaults()
	sc := NewScratch()
	ev := &evaluator{g: g, topo: topo, comms: g.Commodities(), opts: opts}
	st := &sc.inc
	st.bind(ev, sc.rt)
	assign := greedyInitial(g, topo, sc)
	base, _, err := st.eval(assign, -1, -1, true, math.Inf(1))
	if err != nil {
		tb.Fatal(err)
	}
	st.promote()
	ev.norm = base.raw
	occupant := make([]int, topo.NumTerminals())
	for t := range occupant {
		occupant[t] = -1
	}
	for c, t := range assign {
		occupant[t] = c
	}
	return st, assign, occupant
}

// benchSwapPair picks two occupied terminals to toggle.
func benchSwapPair(occupant []int) (int, int) {
	a := -1
	for t, c := range occupant {
		if c == -1 {
			continue
		}
		if a == -1 {
			a = t
			continue
		}
		return a, t
	}
	panic("fewer than two occupied terminals")
}

// TestSwapEvalAllocFree is the hard gate behind the swap-eval benchmark:
// once warmed, evaluating a candidate swap must not allocate at all, for
// every tracked configuration and for dimension-ordered routing.
func TestSwapEvalAllocFree(t *testing.T) {
	cases := benchCases
	cases = append(cases, struct {
		name string
		app  func() *graph.CoreGraph
		opts Options
	}{"vopd/do", apps.VOPD, Options{Routing: route.DimensionOrdered, Objective: MinDelay, CapacityMBps: 500}})
	for _, tc := range cases {
		g := tc.app()
		topo := mustTopo(topology.NewMesh(3, 4))
		st, assign, occupant := benchSweepState(t, g, topo, tc.opts)
		pairA, pairB := benchSwapPair(occupant)
		run := func() {
			ca, cb := occupant[pairA], occupant[pairB]
			swapTerminals(assign, occupant, pairA, pairB)
			if _, _, err := st.eval(assign, ca, cb, false, math.Inf(1)); err != nil {
				t.Fatal(err)
			}
			swapTerminals(assign, occupant, pairA, pairB)
		}
		// Warm caches (quadrant masks, heap/path capacities) with a full
		// sweep's worth of pair positions, then measure.
		for a := 0; a < topo.NumTerminals(); a++ {
			for b := a + 1; b < topo.NumTerminals(); b++ {
				if occupant[a] == -1 && occupant[b] == -1 {
					continue
				}
				ca, cb := occupant[a], occupant[b]
				swapTerminals(assign, occupant, a, b)
				if _, _, err := st.eval(assign, ca, cb, false, math.Inf(1)); err != nil {
					t.Fatal(err)
				}
				swapTerminals(assign, occupant, a, b)
			}
		}
		if allocs := testing.AllocsPerRun(200, run); allocs != 0 {
			t.Errorf("%s: steady-state swap evaluation allocates %.1f objects/op, want 0", tc.name, allocs)
		}
	}
}

// TestFullEvalAllocBudget is the whole-candidate companion of
// TestSwapEvalAllocFree: with a warmed Scratch, one full Map call
// (greedy seed, incremental swap search, final exact evaluation and LP
// floorplan) must stay within 40 allocations per evaluation, for every
// tracked configuration. The fault-sweep steady state has its own gate
// in internal/fault (TestSweepSteadyAllocBudget).
func TestFullEvalAllocBudget(t *testing.T) {
	ctx := context.Background()
	for _, tc := range benchCases {
		g := tc.app()
		topo := mustTopo(topology.NewMesh(3, 4))
		sc := NewScratch()
		run := func() {
			if _, err := MapContextWith(ctx, g, topo, tc.opts, sc); err != nil {
				t.Fatal(err)
			}
		}
		// First call warms the scratch: routing buffers, swap heaps,
		// quadrant masks and the LP workspace all reach steady size.
		run()
		if allocs := testing.AllocsPerRun(20, run); allocs > 40 {
			t.Errorf("%s: scratch-reused full evaluation allocates %.1f objects/op, want <= 40", tc.name, allocs)
		}
	}
}

// TestSplitRouteAllocFree gates the SM rung as the mapper drives it:
// once the router's min-hop DAG caches are warm, re-routing the whole
// commodity set with split-minimal must not allocate at all.
func TestSplitRouteAllocFree(t *testing.T) {
	g := apps.VOPD()
	topo := mustTopo(topology.NewMesh(3, 4))
	assign := greedyInitial(g, topo, NewScratch())
	comms := g.Commodities()
	opts := route.Options{Function: route.SplitMin, CapacityMBps: 500, LoadsOnly: true}
	rt := route.NewRouter()
	var res route.Result
	routeOnce := func() {
		if err := rt.RouteInto(&res, topo, assign, comms, opts); err != nil {
			t.Fatal(err)
		}
	}
	routeOnce() // warm: builds and caches the per-pair min-hop DAGs
	if allocs := testing.AllocsPerRun(200, routeOnce); allocs != 0 {
		t.Errorf("SM split routing allocates %.1f objects/op on a warm router, want 0", allocs)
	}
}

// BenchmarkRoute is covered in internal/route; this sibling measures the
// route stack as the mapper drives it — scratch router, loads only —
// against the allocating public entry point, on the mapped seed
// assignment.
func BenchmarkRouteViaMapper(b *testing.B) {
	g := apps.VOPD()
	topo := mustTopo(topology.NewMesh(3, 4))
	assign := greedyInitial(g, topo, NewScratch())
	comms := g.Commodities()
	opts := route.Options{Function: route.MinPath, CapacityMBps: 500, LoadsOnly: true}
	rt := route.NewRouter()
	var res route.Result
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := rt.RouteInto(&res, topo, assign, comms, opts); err != nil {
			b.Fatal(err)
		}
	}
}
