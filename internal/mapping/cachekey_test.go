package mapping

import (
	"context"
	"testing"
	"time"

	"sunmap/internal/apps"
	"sunmap/internal/route"
	"sunmap/internal/tech"
	"sunmap/internal/topology"
)

func TestCacheKeyCanonicalizesDefaults(t *testing.T) {
	// The zero Options and an Options spelling out every default must
	// collide: Map treats them identically, so the cache must too.
	zero := Options{}
	explicit := Options{
		Routing:    route.DimensionOrdered,
		Objective:  MinDelay,
		Tech:       tech.Tech100nm(),
		SwapPasses: 16,
	}
	if zero.CacheKey() != explicit.CacheKey() {
		t.Errorf("zero options and explicit defaults disagree:\n%s\n%s", zero.CacheKey(), explicit.CacheKey())
	}
}

func TestCacheKeyIgnoresInertFields(t *testing.T) {
	base := Options{Routing: route.MinPath, Objective: MinDelay, CapacityMBps: 500}

	// Weights are inert outside the Weighted objective.
	w := base
	w.Weights = Weights{Delay: 1, Area: 2, Power: 3}
	if base.CacheKey() != w.CacheKey() {
		t.Error("weights changed the key under a non-weighted objective")
	}
	weighted := base
	weighted.Objective = Weighted
	weighted.Weights = Weights{Delay: 1}
	weighted2 := weighted
	weighted2.Weights = Weights{Delay: 1, Area: 1}
	if weighted.CacheKey() == weighted2.CacheKey() {
		t.Error("weights did not change the key under the Weighted objective")
	}

	// Chunks are inert under single-path routing functions.
	c := base
	c.Chunks = 64
	if base.CacheKey() != c.CacheKey() {
		t.Error("chunks changed the key under MinPath")
	}
	sm := base
	sm.Routing = route.SplitMin
	smDefault := sm
	smDefault.Chunks = 32 // the route.Options default
	if sm.CacheKey() != smDefault.CacheKey() {
		t.Error("explicit default chunks changed the key under SplitMin")
	}
	sm64 := sm
	sm64.Chunks = 64
	if sm.CacheKey() == sm64.CacheKey() {
		t.Error("chunks did not change the key under SplitMin")
	}
}

func TestCacheKeyDistinguishesDesignPoints(t *testing.T) {
	base := Options{Routing: route.MinPath, Objective: MinDelay, CapacityMBps: 500}
	variants := []Options{
		{Routing: route.SplitMin, Objective: MinDelay, CapacityMBps: 500},
		{Routing: route.MinPath, Objective: MinPower, CapacityMBps: 500},
		{Routing: route.MinPath, Objective: MinDelay, CapacityMBps: 1000},
		{Routing: route.MinPath, Objective: MinDelay, CapacityMBps: 500, MaxAreaMM2: 60},
		{Routing: route.MinPath, Objective: MinDelay, CapacityMBps: 500, ExactFloorplanInLoop: true},
	}
	seen := map[string]bool{base.CacheKey(): true}
	for i, v := range variants {
		k := v.CacheKey()
		if seen[k] {
			t.Errorf("variant %d collides with an earlier design point", i)
		}
		seen[k] = true
	}
	tech90, err := tech.ByName("90nm")
	if err != nil {
		t.Fatal(err)
	}
	other := base
	other.Tech = tech90
	if other.CacheKey() == base.CacheKey() {
		t.Error("technology point did not change the key")
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mesh, err := topology.NewMesh(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = MapContext(ctx, apps.VOPD(), mesh, Options{Routing: route.MinPath})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapContextDeadlineMidSearch(t *testing.T) {
	// An already-expired deadline must abort inside the swap search, not
	// run the full mapping.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	mesh, err := topology.NewMesh(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = MapContext(ctx, apps.VOPD(), mesh, Options{Routing: route.MinPath})
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
