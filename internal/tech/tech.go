// Package tech holds the technology parameter sets that calibrate SUNMAP's
// area and power models. The paper generates its area-power libraries for a
// 0.1 µm process from ×pipes-style analytical switch models, ORION bit
// energies [22] and the wire parameters of "The Future of Wires" [23];
// this package packages the corresponding coefficients, calibrated so the
// benchmark designs land in the paper's reported ranges (e.g. VOPD on a
// 3x4 mesh ≈ 55 mm² and ≈ 370 mW).
package tech

import "fmt"

// Tech is one technology operating point. Area coefficients are mm² at a
// 32-bit flit baseline; energies are pJ per bit.
type Tech struct {
	// Name labels the node, e.g. "100nm".
	Name string
	// FeatureNM is the drawn feature size in nanometres.
	FeatureNM int

	// XbarAreaMM2 is the crossbar area per crosspoint (input x output
	// pair) at the 32-bit flit baseline; crossbars scale with the square
	// of the flit width.
	XbarAreaMM2 float64
	// BufAreaMM2 is the buffer area per input port per flit of depth.
	BufAreaMM2 float64
	// LogicAreaMM2 is the control/arbitration area per port.
	LogicAreaMM2 float64
	// LinkAreaMM2PerMM is the wiring area per millimetre of link at the
	// 32-bit baseline (repeaters and wire pitch).
	LinkAreaMM2PerMM float64

	// BufWritePJ and BufReadPJ are the buffer write/read energies per bit.
	BufWritePJ float64
	BufReadPJ  float64
	// XbarPJ is the crossbar traversal energy per bit of a reference 5x5
	// switch; it scales with In*Out/25.
	XbarPJ float64
	// ArbPJ is the arbitration energy per bit of a reference 5-input
	// switch; it scales with In/5.
	ArbPJ float64
	// LinkPJPerMM is the link traversal energy per bit per millimetre.
	LinkPJPerMM float64

	// FlitBits is the link/switch datapath width.
	FlitBits int
	// BufDepthFlits is the default input buffer depth.
	BufDepthFlits int
}

// Validate rejects non-physical parameter sets.
func (t Tech) Validate() error {
	if t.FlitBits <= 0 || t.BufDepthFlits <= 0 {
		return fmt.Errorf("tech %s: non-positive flit width or buffer depth", t.Name)
	}
	for _, v := range []float64{
		t.XbarAreaMM2, t.BufAreaMM2, t.LogicAreaMM2, t.LinkAreaMM2PerMM,
		t.BufWritePJ, t.BufReadPJ, t.XbarPJ, t.ArbPJ, t.LinkPJPerMM,
	} {
		if v < 0 {
			return fmt.Errorf("tech %s: negative coefficient", t.Name)
		}
	}
	return nil
}

// Tech100nm returns the paper's 0.1 µm operating point: a reference 5x5
// switch costs ≈ 0.74 mm² and ≈ 5 pJ/bit; optimally repeated links cost
// ≈ 0.35 pJ/bit/mm (after [23]), keeping link power well below switch
// power as Section 6.1 observes. The crossbar term carries most of the
// switch energy so per-bit cost falls steeply with port count, the effect
// behind the butterfly's power win.
func Tech100nm() Tech {
	return Tech{
		Name:             "100nm",
		FeatureNM:        100,
		XbarAreaMM2:      0.012,
		BufAreaMM2:       0.018,
		LogicAreaMM2:     0.008,
		LinkAreaMM2PerMM: 0.020,
		BufWritePJ:       0.6,
		BufReadPJ:        0.6,
		XbarPJ:           3.5,
		ArbPJ:            0.3,
		LinkPJPerMM:      0.35,
		FlitBits:         32,
		BufDepthFlits:    4,
	}
}

// scale derives a node from the 100 nm reference: area scales with the
// square of the linear shrink, energy roughly with the shrink times the
// supply-voltage-squared trend (folded into one energy factor).
func scale(name string, featureNM int, areaFactor, energyFactor float64) Tech {
	t := Tech100nm()
	t.Name = name
	t.FeatureNM = featureNM
	t.XbarAreaMM2 *= areaFactor
	t.BufAreaMM2 *= areaFactor
	t.LogicAreaMM2 *= areaFactor
	t.LinkAreaMM2PerMM *= areaFactor
	t.BufWritePJ *= energyFactor
	t.BufReadPJ *= energyFactor
	t.XbarPJ *= energyFactor
	t.ArbPJ *= energyFactor
	t.LinkPJPerMM *= energyFactor
	return t
}

// Tech130nm returns the 0.13 µm operating point.
func Tech130nm() Tech { return scale("130nm", 130, 1.69, 1.55) }

// Tech90nm returns the 90 nm operating point.
func Tech90nm() Tech { return scale("90nm", 90, 0.81, 0.85) }

// Tech65nm returns the 65 nm operating point.
func Tech65nm() Tech { return scale("65nm", 65, 0.42, 0.60) }

// ByName looks up a predefined node.
func ByName(name string) (Tech, error) {
	switch name {
	case "100nm", "0.1um":
		return Tech100nm(), nil
	case "130nm":
		return Tech130nm(), nil
	case "90nm":
		return Tech90nm(), nil
	case "65nm":
		return Tech65nm(), nil
	}
	return Tech{}, fmt.Errorf("tech: unknown node %q", name)
}
