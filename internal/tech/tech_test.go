package tech

import "testing"

func TestAllNodesValidate(t *testing.T) {
	for _, tc := range []Tech{Tech100nm(), Tech130nm(), Tech90nm(), Tech65nm()} {
		if err := tc.Validate(); err != nil {
			t.Errorf("%s: %v", tc.Name, err)
		}
	}
}

func TestValidateRejectsBad(t *testing.T) {
	tc := Tech100nm()
	tc.FlitBits = 0
	if err := tc.Validate(); err == nil {
		t.Error("zero flit width accepted")
	}
	tc = Tech100nm()
	tc.XbarPJ = -1
	if err := tc.Validate(); err == nil {
		t.Error("negative energy accepted")
	}
}

func TestScalingIsMonotone(t *testing.T) {
	// Newer nodes must be smaller and lower energy, older ones bigger.
	n130, n100, n90, n65 := Tech130nm(), Tech100nm(), Tech90nm(), Tech65nm()
	if !(n130.XbarAreaMM2 > n100.XbarAreaMM2 && n100.XbarAreaMM2 > n90.XbarAreaMM2 && n90.XbarAreaMM2 > n65.XbarAreaMM2) {
		t.Error("area coefficients not monotone across nodes")
	}
	if !(n130.XbarPJ > n100.XbarPJ && n100.XbarPJ > n90.XbarPJ && n90.XbarPJ > n65.XbarPJ) {
		t.Error("energy coefficients not monotone across nodes")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"100nm", "0.1um", "130nm", "90nm", "65nm"} {
		tc, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%s): %v", name, err)
		}
		if tc.FeatureNM == 0 {
			t.Errorf("ByName(%s): zero feature size", name)
		}
	}
	if _, err := ByName("28nm"); err == nil {
		t.Error("unknown node accepted")
	}
}
