// Package engine is the concurrent evaluation engine underneath SUNMAP's
// selection and exploration flows. Phase 1 of the paper maps the
// application onto every topology in the library independently — an
// embarrassingly parallel sweep. The engine runs those evaluations on a
// bounded worker pool, memoizes them in a content-addressed cache so
// routing escalation and the Fig. 9 explorers never re-map an identical
// design point, streams per-candidate progress to interactive consumers,
// and threads context cancellation down into the mapping inner loops.
//
// Results are deterministic and independent of Parallelism: each job's
// outcome lands at its input index, so consumers observe exactly the
// sequential, library-ordered result list.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"sunmap/internal/graph"
	"sunmap/internal/mapping"
	"sunmap/internal/obs"
	"sunmap/internal/pool"
	"sunmap/internal/topology"
)

// evalSeconds distributes mapping-evaluation wall time process-wide
// (cache hits excluded — they never reach the timed path).
var evalSeconds = obs.Default.Histogram("sunmap_evaluate_seconds", "wall time of one mapping evaluation", nil)

// Job is one evaluation request: map the application onto Topo under Opts.
type Job struct {
	Topo topology.Topology
	Opts mapping.Options
}

// Outcome is one evaluated job. Exactly one of Result and Err is set; Err
// records a hard mapping failure (e.g. too few terminals), mirroring
// core.Candidate.
type Outcome struct {
	Result *mapping.Result
	Err    error
}

// Event is one streaming progress notification, emitted after a job
// finishes (successfully, as a cache hit, or with a mapping error).
type Event struct {
	// Index is the job's position in the submitted job list; Total is the
	// list length. Events arrive in completion order, not index order.
	Index, Total int
	// Done counts finished jobs including this one.
	Done int
	// Topology names the evaluated topology.
	Topology string
	// Routing is the routing function the job ran under.
	Routing string
	// CacheHit marks an evaluation served from the shared cache.
	CacheHit bool
	// Err is the job's mapping error, if any.
	Err error
	// Elapsed is the wall time of this evaluation (≈0 for cache hits).
	Elapsed time.Duration
}

// Progress receives streaming Events. Callbacks are serialized by the
// engine (never concurrent) but run on worker goroutines; they must not
// block for long.
type Progress func(Event)

// ErrPanic marks an Outcome.Err produced by recovering a panic in an
// evaluation, distinguishing genuine internal faults from the ordinary
// structural mapping failures (bad client input) sharing the error slot.
var ErrPanic = errors.New("engine: evaluation panic")

// Options tunes one engine run.
type Options struct {
	// Parallelism bounds the worker pool. 0 (or negative) selects
	// GOMAXPROCS; 1 evaluates sequentially in submission order.
	Parallelism int
	// Cache, when non-nil, memoizes evaluations across runs.
	Cache *Cache
	// Progress, when non-nil, streams per-job completion events.
	Progress Progress
	// Limit, when non-nil, is a shared admission semaphore: each mapping
	// evaluation (cache hits excluded) holds one slot while it runs, so
	// several concurrent engine calls — e.g. the requests of one
	// Session.Batch — share a single session-wide parallelism budget
	// instead of multiplying their pools.
	Limit *pool.Limiter
	// Spec, when non-nil, marks the run speculative: jobs admit to Limit
	// by opportunistic TryAcquire polling instead of blocking, so a
	// concurrent non-speculative run keeps strict priority for slots and
	// the speculative work soaks up only idle budget. Closing the channel
	// promotes the run to normal blocking admission (the speculation was
	// adopted). Core's routing-escalation overlap is the one producer.
	Spec <-chan struct{}
}

func (o Options) workers(jobs int) int {
	n := o.IntraParallelism()
	if n > jobs {
		n = jobs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// IntraParallelism resolves the configured Parallelism (0 or negative
// selects GOMAXPROCS) to the concrete worker budget an individual job
// may fan its inner work across — e.g. the per-candidate fault-sweep
// scenarios of a reliability-aware selection. Inner workers beyond the
// first admit opportunistically (Limit.TryAcquire), so intra-job fan-out
// borrows idle budget without ever deadlocking the shared limiter.
func (o Options) IntraParallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// acquire admits one job to the shared limiter: blocking for normal
// runs, TryAcquire polling for speculative ones (~1ms cadence) until a
// slot frees, ctx is done, or spec closes — adoption — at which point it
// falls back to blocking admission.
func acquire(ctx context.Context, limit *pool.Limiter, spec <-chan struct{}) error {
	if spec == nil {
		return limit.Acquire(ctx)
	}
	for {
		if limit.TryAcquire() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-spec:
			return limit.Acquire(ctx)
		case <-time.After(time.Millisecond):
		}
	}
}

// Sweep maps the application onto every topology in lib under one shared
// option set — SUNMAP Phase 1. Outcomes are returned in library order
// regardless of Parallelism.
func Sweep(ctx context.Context, app *graph.CoreGraph, lib []topology.Topology, opts mapping.Options, eo Options) ([]Outcome, error) {
	jobs := make([]Job, len(lib))
	for i, topo := range lib {
		jobs[i] = Job{Topo: topo, Opts: opts}
	}
	return Evaluate(ctx, app, jobs, eo)
}

// Evaluate runs an arbitrary job list (the generalization behind Sweep,
// the routing sweep and the Pareto explorer) on the bounded pool.
// Outcomes are returned in job order regardless of Parallelism. The first
// context cancellation aborts the run and returns the context's error;
// per-job mapping failures do not abort and are recorded in the outcome.
// Elapsed on progress events is advisory wall time, deliberately outside
// the deterministic report surface; it is read through obs.Now, the
// audited clock source.
func Evaluate(ctx context.Context, app *graph.CoreGraph, jobs []Job, eo Options) ([]Outcome, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, nil
	}
	rec := obs.FromContext(ctx)
	var digest string
	if eo.Cache != nil {
		digest = app.Digest() // only the cache key consumes it
	}
	out := make([]Outcome, len(jobs))
	workers := eo.workers(len(jobs))

	// Per-worker mapping scratch: each running evaluation borrows a
	// Scratch (routing solver + swap-loop buffers) for its duration, so a
	// library sweep reuses at most `workers` scratch sets instead of
	// allocating routing state per candidate mapping.
	scratch := pool.NewFree(mapping.NewScratch)

	var progressMu sync.Mutex
	done := 0
	emit := func(ev Event) {
		if eo.Progress == nil {
			return
		}
		progressMu.Lock()
		done++
		ev.Done = done
		eo.Progress(ev)
		progressMu.Unlock()
	}

	runJob := func(i int) {
		j := jobs[i]
		ev := Event{
			Index:    i,
			Total:    len(jobs),
			Topology: j.Topo.Name(),
			Routing:  j.Opts.Routing.String(),
		}
		var key string
		if eo.Cache != nil {
			key = Key(digest, j.Topo, j.Opts)
			if e, ok := eo.Cache.get(key, j.Topo); ok {
				rec.CacheHit()
				out[i] = Outcome{Result: e.res, Err: e.err}
				ev.CacheHit = true
				ev.Err = e.err
				emit(ev)
				return
			}
			rec.CacheMiss()
		}
		if err := acquire(ctx, eo.Limit, eo.Spec); err != nil {
			return // canceled while queued for a session slot
		}
		start := obs.Now() // after Acquire: Elapsed is evaluation time, not queue wait
		res, err := func() (res *mapping.Result, err error) {
			defer eo.Limit.Release()
			// Worker goroutines must not take the process down: a panic in
			// an evaluation (e.g. on an adversarial input) becomes this
			// job's error outcome, preserving the isolation contract that
			// Session.Do/Batch and the serve layer promise.
			defer func() {
				if r := recover(); r != nil {
					res, err = nil, fmt.Errorf("%w evaluating %s: %v", ErrPanic, j.Topo.Name(), r)
				}
			}()
			sc := scratch.Get()
			defer scratch.Put(sc)
			return mapping.MapContextWith(ctx, app, j.Topo, j.Opts, sc)
		}()
		if ctx.Err() != nil {
			return // canceled mid-map: don't cache or report partial work
		}
		eo.Cache.put(key, entry{res: res, err: err})
		out[i] = Outcome{Result: res, Err: err}
		ev.Err = err
		ev.Elapsed = obs.Since(start)
		rec.Observe(obs.StageEvaluate, ev.Elapsed)
		evalSeconds.ObserveSeconds(int64(ev.Elapsed))
		emit(ev)
	}

	pool.ForEach(ctx, len(jobs), workers, runJob)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Fan runs n independent, index-addressed units of non-mapping work
// under the engine's admission contract: up to Parallelism workers, each
// unit holding one Limit slot while it runs, so analysis passes sharing
// a session (e.g. the per-candidate reliability sweeps of a fault-aware
// selection) stay inside the same session-wide budget as the mapping
// evaluations. Unit errors are collected at their index and the first,
// in index order, is returned — deterministic regardless of which worker
// hit it first. Cancellation wins over unit errors, mirroring Evaluate.
func Fan(ctx context.Context, n int, eo Options, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	errs := make([]error, n)
	pool.ForEach(ctx, n, eo.workers(n), func(i int) {
		if err := eo.Limit.Acquire(ctx); err != nil {
			return // canceled while queued; ctx.Err() reported below
		}
		defer eo.Limit.Release()
		errs[i] = fn(i)
	})
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
