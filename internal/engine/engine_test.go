package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sunmap/internal/apps"
	"sunmap/internal/mapping"
	"sunmap/internal/pool"
	"sunmap/internal/route"
	"sunmap/internal/topology"
)

func vopdLib(t *testing.T) []topology.Topology {
	t.Helper()
	lib, err := topology.Library(apps.VOPD().NumCores(), topology.LibraryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(lib) < 4 {
		t.Fatalf("suspiciously small library: %d topologies", len(lib))
	}
	return lib
}

func vopdOpts() mapping.Options {
	return mapping.Options{
		Routing:      route.MinPath,
		Objective:    mapping.MinDelay,
		CapacityMBps: apps.DefaultCapacityMBps,
	}
}

// sameOutcomes asserts two outcome lists agree candidate by candidate.
func sameOutcomes(t *testing.T, got, want []Outcome) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("outcome count %d, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if (g.Err != nil) != (w.Err != nil) {
			t.Fatalf("outcome %d: err %v, want %v", i, g.Err, w.Err)
		}
		if g.Err != nil {
			continue
		}
		if g.Result.Topology.Name() != w.Result.Topology.Name() {
			t.Fatalf("outcome %d: topology %s, want %s", i, g.Result.Topology.Name(), w.Result.Topology.Name())
		}
		if g.Result.Cost != w.Result.Cost {
			t.Errorf("outcome %d (%s): cost %g, want %g", i, g.Result.Topology.Name(), g.Result.Cost, w.Result.Cost)
		}
		if len(g.Result.Assign) != len(w.Result.Assign) {
			t.Fatalf("outcome %d: assign len %d, want %d", i, len(g.Result.Assign), len(w.Result.Assign))
		}
		for c := range g.Result.Assign {
			if g.Result.Assign[c] != w.Result.Assign[c] {
				t.Errorf("outcome %d (%s): core %d -> %d, want %d",
					i, g.Result.Topology.Name(), c, g.Result.Assign[c], w.Result.Assign[c])
			}
		}
	}
}

func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	app := apps.VOPD()
	lib := vopdLib(t)
	opts := vopdOpts()
	seq, err := Sweep(context.Background(), app, lib, opts, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{0, 2, 8} {
		got, err := Sweep(context.Background(), app, lib, opts, Options{Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		sameOutcomes(t, got, seq)
	}
}

func TestEvaluatePreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Sweep(ctx, apps.VOPD(), vopdLib(t), vopdOpts(), Options{})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEvaluateCancelMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel from the progress callback after the first completed job:
	// the remaining evaluations must be abandoned and Sweep must report
	// the cancellation instead of a partial result list.
	_, err := Sweep(ctx, apps.VOPD(), vopdLib(t), vopdOpts(), Options{
		Parallelism: 2,
		Progress:    func(Event) { cancel() },
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCacheReuseAcrossSweeps(t *testing.T) {
	app := apps.VOPD()
	lib := vopdLib(t)
	opts := vopdOpts()
	cache := NewCache()
	first, err := Sweep(context.Background(), app, lib, opts, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Hits != 0 || st.Misses != uint64(len(lib)) || st.Entries != len(lib) {
		t.Fatalf("after first sweep: stats = %+v, want 0 hits / %d misses / %d entries", st, len(lib), len(lib))
	}

	var hits int
	second, err := Sweep(context.Background(), app, lib, opts, Options{
		Cache: cache,
		Progress: func(ev Event) {
			if ev.CacheHit {
				hits++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if hits != len(lib) {
		t.Errorf("second sweep: %d cache hits, want %d", hits, len(lib))
	}
	if st := cache.Stats(); st.Hits != uint64(len(lib)) || st.Entries != len(lib) {
		t.Errorf("after second sweep: stats = %+v, want %d hits and %d entries", st, len(lib), len(lib))
	}
	sameOutcomes(t, second, first)

	// A different option set misses: the key canonicalization must keep
	// distinct design points distinct.
	bigger := opts
	bigger.CapacityMBps = 2 * opts.CapacityMBps
	if _, err := Sweep(context.Background(), app, lib, bigger, Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Entries != 2*len(lib) {
		t.Errorf("after option change: %d entries, want %d", st.Entries, 2*len(lib))
	}
}

func TestCacheSharedUnderConcurrency(t *testing.T) {
	// Concurrent sweeps over one cache must be race-free (validated under
	// -race in CI) and end fully populated.
	app := apps.VOPD()
	lib := vopdLib(t)
	opts := vopdOpts()
	cache := NewCache()
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = Sweep(context.Background(), app, lib, opts, Options{Cache: cache, Parallelism: 2})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() != len(lib) {
		t.Errorf("cache entries = %d, want %d", cache.Len(), len(lib))
	}
}

func TestProgressEventsCoverEveryJob(t *testing.T) {
	app := apps.VOPD()
	lib := vopdLib(t)
	seen := make(map[int]int)
	lastDone := 0
	_, err := Sweep(context.Background(), app, lib, vopdOpts(), Options{
		Parallelism: 4,
		Progress: func(ev Event) {
			seen[ev.Index]++
			if ev.Done != lastDone+1 {
				t.Errorf("Done = %d after %d, want monotonically increasing by 1", ev.Done, lastDone)
			}
			lastDone = ev.Done
			if ev.Total != len(lib) {
				t.Errorf("Total = %d, want %d", ev.Total, len(lib))
			}
			if ev.Topology == "" {
				t.Error("event missing topology name")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(lib) {
		t.Fatalf("progress covered %d jobs, want %d", len(seen), len(lib))
	}
	for idx, n := range seen {
		if n != 1 {
			t.Errorf("job %d reported %d times", idx, n)
		}
	}
}

// renamed wraps a topology under a fixed, colliding Name.
type renamed struct{ topology.Topology }

func (renamed) Name() string { return "impostor" }

func TestCacheKeySeparatesNameCollisions(t *testing.T) {
	// Two structurally different topologies sharing a Name() must not
	// share a cache entry: the key includes a structural digest.
	mesh, err := topology.NewMesh(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	torus, err := topology.NewTorus(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache()
	lib := []topology.Topology{renamed{mesh}, renamed{torus}}
	out, err := Sweep(context.Background(), apps.VOPD(), lib, vopdOpts(), Options{Cache: cache, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != 0 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 0 hits and 2 entries for colliding names", st)
	}
	if out[0].Result.AvgHops == out[1].Result.AvgHops && out[0].Result.PowerMW == out[1].Result.PowerMW {
		t.Error("mesh and torus under a shared name returned identical metrics — cache collision?")
	}
}

func TestEvaluateRecordsStructuralErrors(t *testing.T) {
	// A topology with too few terminals must surface as a per-job error,
	// not abort the run, and must be memoized like a success.
	small, err := topology.NewMesh(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	big, err := topology.NewMesh(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache()
	lib := []topology.Topology{small, big}
	for round := 0; round < 2; round++ {
		out, err := Sweep(context.Background(), apps.VOPD(), lib, vopdOpts(), Options{Cache: cache})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if out[0].Err == nil {
			t.Fatalf("round %d: 2x2 mesh should be unmappable for VOPD", round)
		}
		if out[1].Err != nil || out[1].Result == nil {
			t.Fatalf("round %d: 3x4 mesh failed: %v", round, out[1].Err)
		}
	}
	if st := cache.Stats(); st.Hits != 2 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 2 hits (error + success memoized) and 2 entries", cache.Stats())
	}
}

// TestFan checks the non-mapping fan-out helper: every unit runs, the
// Limit budget is respected, the first error in index order wins, and
// cancellation preempts unit errors.
func TestFan(t *testing.T) {
	var ran [16]bool
	limit := pool.NewLimiter(2)
	var inFlight, maxInFlight atomic.Int32
	err := Fan(context.Background(), len(ran), Options{Parallelism: 8, Limit: limit}, func(i int) error {
		if n := inFlight.Add(1); n > maxInFlight.Load() {
			maxInFlight.Store(n)
		}
		defer inFlight.Add(-1)
		time.Sleep(time.Millisecond)
		ran[i] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ran {
		if !r {
			t.Errorf("unit %d never ran", i)
		}
	}
	if maxInFlight.Load() > 2 {
		t.Errorf("%d units in flight, limiter admits 2", maxInFlight.Load())
	}

	wantErr := errors.New("unit 3 broke")
	err = Fan(context.Background(), 8, Options{Parallelism: 4}, func(i int) error {
		if i == 3 {
			return wantErr
		}
		if i == 6 {
			return errors.New("unit 6 broke")
		}
		return nil
	})
	if err != wantErr {
		t.Errorf("Fan returned %v, want the lowest-index error", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Fan(ctx, 4, Options{}, func(int) error { return errors.New("ran") }); err != context.Canceled {
		t.Errorf("canceled Fan returned %v, want context.Canceled", err)
	}
}
